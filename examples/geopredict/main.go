// Geopredict: profile the geolocation dispersion of attack sources per
// family (§IV-A) and forecast it with ARIMA — the paper's headline result
// that attack-source geometry is predictable (Figs 12-13, Table IV).
package main

import (
	"fmt"
	"log"

	"botscope"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 5, Scale: 0.1})
	if err != nil {
		return fmt.Errorf("generate workload: %w", err)
	}
	a := botscope.NewAnalyzer(store)

	// --- Dispersion profiles (Figs 9-11) --------------------------------
	fmt.Println("geolocation dispersion profiles:")
	fmt.Printf("  %-12s %6s %12s %16s\n", "family", "n", "symmetric", "asym mean (km)")
	for _, f := range botscope.ActiveFamilies() {
		prof, err := a.DispersionProfile(f)
		if err != nil {
			continue
		}
		fmt.Printf("  %-12s %6d %11.1f%% %16.0f\n",
			f, prof.N, prof.SymmetricFrac*100, prof.Asymmetric.Mean)
	}

	// --- ARIMA forecasting (Table IV) -----------------------------------
	fmt.Println("\nper-family ARIMA dispersion forecasts (second half predicted one step ahead):")
	cfg := botscope.PredictConfig{Order: botscope.ARIMAOrder{P: 1}}
	for _, res := range a.PredictAllFamilies(cfg) {
		fmt.Printf("  %-12s %s  similarity %.3f  (pred mean %.0f vs truth mean %.0f km)\n",
			res.Family, res.Order, res.Similarity, res.MeanPred, res.MeanTruth)
	}

	// --- Raw ARIMA usage --------------------------------------------------
	// The ARIMA engine is general purpose: here it forecasts Pandora's
	// dispersion five attacks ahead.
	series := a.DispersionSeries(botscope.Pandora)
	if len(series) >= 60 {
		model, err := botscope.FitARIMA(series, botscope.ARIMAOrder{P: 1})
		if err != nil {
			return err
		}
		fc, err := model.Forecast(5)
		if err != nil {
			return err
		}
		fmt.Printf("\npandora: next 5 expected dispersion values (km):")
		for _, v := range fc {
			if v < 0 {
				v = 0
			}
			fmt.Printf(" %.0f", v)
		}
		fmt.Println()
		fmt.Println("defense hint: a persistent dispersion regime narrows the candidate")
		fmt.Println("source pool before the next attack arrives (paper §IV-A).")
	}
	return nil
}
