// Quickstart: generate a scaled-down synthetic workload and print the
// overview statistics of the paper's Section III — protocol mix, daily
// density, interval and duration summaries.
package main

import (
	"fmt"
	"log"

	"botscope"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Scale 0.05 generates ~2,500 attacks in a couple of seconds; the same
	// seed always reproduces the same workload.
	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 7, Scale: 0.05})
	if err != nil {
		return fmt.Errorf("generate workload: %w", err)
	}
	a := botscope.NewAnalyzer(store)

	sum := a.Summary()
	fmt.Printf("workload: %d attacks by %d botnets from %d bot IPs against %d targets\n",
		sum.Attacks, sum.Botnets, sum.BotIPs, sum.TargetIPs)

	fmt.Println("\nattack types (Fig 1):")
	for _, pc := range a.ProtocolBreakdown() {
		fmt.Printf("  %-13s %6d\n", pc.Category, pc.Count)
	}

	daily, err := a.DailyDistribution()
	if err != nil {
		return err
	}
	fmt.Printf("\ndaily density (Fig 2): avg %.1f attacks/day, peak %d on %s (%s)\n",
		daily.Average, daily.Max, daily.MaxDay.Format("2006-01-02"), daily.MaxDominantFamily)

	intervals, err := a.AnalyzeIntervals(a.AllIntervals())
	if err != nil {
		return err
	}
	fmt.Printf("\nintervals (Fig 3): %.0f%% concurrent (<60s), median %.0fs, P80 %.0fs\n",
		intervals.SimultaneousFrac*100, intervals.Median, intervals.P80)

	durations, err := a.AnalyzeDurations(a.Durations())
	if err != nil {
		return err
	}
	fmt.Printf("durations (Fig 7): median %.0fs, mean %.0fs, %.0f%% under 4 hours\n",
		durations.Median, durations.Mean, durations.FracUnder4h*100)

	fmt.Println("\nmost active families:")
	for i, f := range botscope.ActiveFamilies() {
		n := len(store.ByFamily(f))
		if n > 0 && i < 10 {
			fmt.Printf("  %-12s %6d attacks\n", f, n)
		}
	}
	return nil
}
