// Collabhunt: detect collaborative DDoS attacks — different botnets
// hitting one victim simultaneously with matched durations (§V of the
// paper) — plus multistage chains of back-to-back strikes, and show how a
// defender could use them for attribution and blacklist preparation.
package main

import (
	"fmt"
	"log"
	"time"

	"botscope"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 21, Scale: 0.08})
	if err != nil {
		return fmt.Errorf("generate workload: %w", err)
	}
	a := botscope.NewAnalyzer(store)

	// --- Concurrent collaborations (Table VI) -------------------------
	st := a.Collaborations()
	fmt.Printf("collaborations: %d intra-family, %d inter-family (mean %.2f botnets each)\n",
		st.TotalIntra, st.TotalInter, st.MeanBotnets)

	fmt.Println("\nintra-family leaders:")
	for _, f := range botscope.ActiveFamilies() {
		if n := st.Intra[f]; n > 0 {
			fmt.Printf("  %-12s %4d\n", f, n)
		}
	}

	fmt.Println("\ncross-family pairs:")
	for pair, n := range st.PairCounts {
		fmt.Printf("  %-28s %4d\n", pair, n)
	}

	// The paper's famous pair: Dirtjumper and Pandora coordinated for
	// ~16 weeks against shared victims.
	pair := a.Pair(botscope.Dirtjumper, botscope.Pandora)
	if pair.Count > 0 {
		fmt.Printf("\ndirtjumper x pandora: %d joint attacks on %d targets in %d countries over %.1f weeks\n",
			pair.Count, pair.UniqueTargets, pair.Countries, pair.Span.Hours()/(24*7))
		fmt.Printf("  mean durations: dirtjumper %.0fs, pandora %.0fs\n",
			pair.MeanDurationA, pair.MeanDurationB)
	}

	// --- Multistage chains (Figs 17-18) --------------------------------
	chains := a.Chains()
	fmt.Printf("\nmultistage attacks: %d chains; %.0f%% of strike gaps within 10s\n",
		len(chains.Chains), chains.FracWithin10s*100)
	if chains.Longest != nil {
		c := chains.Longest
		fmt.Printf("longest chain: %d consecutive strikes by %s on %s lasting %s\n",
			c.Length(), c.Family, c.Target, c.Duration().Round(time.Second))
	}

	// A defender holding this model can pre-arm: when strike k of a chain
	// is seen, the next strike is expected within seconds.
	if len(chains.Chains) > 0 {
		cdf := gapQuantile(a, 0.8)
		fmt.Printf("\ndefense hint: after a chain strike ends, the next one starts within %.0fs in 80%% of cases\n", cdf)
	}
	return nil
}

// gapQuantile computes a quantile of the chain-gap distribution.
func gapQuantile(a *botscope.Analyzer, q float64) float64 {
	chains := a.Chains()
	var gaps []float64
	for _, c := range chains.Chains {
		for _, g := range c.Gaps {
			if g < 0 {
				g = 0
			}
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		return 0
	}
	// Simple nearest-rank quantile to avoid importing internals.
	lo, hi := gaps[0], gaps[0]
	for _, g := range gaps {
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	// Binary search the value with >= q mass below it.
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		below := 0
		for _, g := range gaps {
			if g <= mid {
				below++
			}
		}
		if float64(below)/float64(len(gaps)) >= q {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
