// Whatif: the paper's §II-C discussion argues its findings (geolocation
// affinity, collaboration patterns, interval structure) generalize to
// newer botnets such as Mirai. This example builds a custom scenario —
// a Mirai-like IoT family sharing the window with Dirtjumper — and checks
// which of the paper's analyses carry over.
package main

import (
	"fmt"
	"log"

	"botscope"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	store, err := botscope.NewScenario(11).
		AddProfile(botscope.MiraiLikeProfile(600)).
		AddPaperFamily(botscope.Dirtjumper, 0.02).
		AddPaperFamily(botscope.Pandora, 0.02).
		Build()
	if err != nil {
		return fmt.Errorf("build scenario: %w", err)
	}
	a := botscope.NewAnalyzer(store)
	const mirai = botscope.Family("mirailike")

	fmt.Println("scenario: 2013-era families + a Mirai-like IoT botnet")
	for _, f := range []botscope.Family{mirai, botscope.Dirtjumper, botscope.Pandora} {
		n := len(store.ByFamily(f))
		mag, err := a.MagnitudeProfile(f)
		if err != nil {
			continue
		}
		fmt.Printf("  %-12s %5d attacks, median magnitude %4.0f bots\n", f, n, mag.Median)
	}

	// 1. Geolocation affinity: does the IoT family's dispersion still show
	// the paper's regime structure?
	prof, err := a.DispersionProfile(mirai)
	if err != nil {
		return err
	}
	fmt.Printf("\nmirailike dispersion: %.0f%% symmetric, asymmetric mean %.0f km\n",
		prof.SymmetricFrac*100, prof.Asymmetric.Mean)

	// 2. Predictability: is the new family's source geometry forecastable
	// with the same models (paper §IV-A)?
	pred, err := a.PredictDispersion(mirai, botscope.PredictConfig{Order: botscope.ARIMAOrder{P: 1}})
	if err != nil {
		return err
	}
	fmt.Printf("mirailike dispersion forecast similarity: %.3f (paper band: 0.81-0.96)\n", pred.Similarity)

	// 3. Cross-family transfer: does a model trained on a 2013 family
	// predict the IoT family?
	tr, err := a.TransferPredict(botscope.Dirtjumper, mirai, botscope.ARIMAOrder{P: 1}, 60)
	if err != nil {
		return err
	}
	fmt.Printf("dirtjumper-trained model on mirailike: retention %.2f of native skill\n", tr.Retention)

	// 4. Target affinity: concentrated like Table V?
	tc := a.TargetCountries(mirai, 3)
	fmt.Printf("mirailike targets (%d countries):", tc.Countries)
	for _, cc := range tc.Top {
		fmt.Printf(" %s=%d", cc.CC, cc.Count)
	}
	fmt.Println()

	fmt.Println("\nconclusion: the characterization pipeline runs unchanged on the")
	fmt.Println("new family — the paper's methods, not just its numbers, transfer.")
	return nil
}
