// Targetprofile: victim-side analysis — country-level affinity (Table V),
// organization-level hotspots (Fig 14), and next-attack start-time
// prediction for repeatedly hit targets (§III-D's defense insight).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"botscope"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 13, Scale: 0.1})
	if err != nil {
		return fmt.Errorf("generate workload: %w", err)
	}
	a := botscope.NewAnalyzer(store)

	// --- Country-level affinity (Table V) ------------------------------
	fmt.Println("global victim countries:")
	for _, cc := range a.GlobalTargetCountries(5) {
		fmt.Printf("  %-3s %6d attacks\n", cc.CC, cc.Count)
	}

	fmt.Println("\nper-family preferences:")
	for _, f := range []botscope.Family{botscope.Dirtjumper, botscope.Colddeath, botscope.Darkshell, botscope.Ddoser} {
		prof := a.TargetCountries(f, 3)
		if len(prof.Top) == 0 {
			continue
		}
		fmt.Printf("  %-12s (%d countries):", f, prof.Countries)
		for _, cc := range prof.Top {
			fmt.Printf(" %s=%d", cc.CC, cc.Count)
		}
		fmt.Println()
	}

	// --- Organization-level hotspots (Fig 14) ---------------------------
	hotspots := a.OrgHotspots(botscope.Pandora, time.Time{}, time.Time{})
	fmt.Printf("\npandora hit %d organizations; hottest:\n", len(hotspots))
	for i, h := range hotspots {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-34s %s/%s  %4d attacks\n", h.Org, h.CC, h.City, h.Attacks)
	}

	// --- Next-attack prediction (§III-D) --------------------------------
	preds := a.PredictNextAttacks(6)
	if len(preds) > 0 {
		sort.Slice(preds, func(i, j int) bool { return preds[i].AbsError < preds[j].AbsError })
		var sumErr, sumActual float64
		for _, p := range preds {
			sumErr += p.AbsError
			sumActual += p.ActualGap
		}
		fmt.Printf("\nnext-attack start-gap prediction over %d repeat targets:\n", len(preds))
		fmt.Printf("  mean abs error %.0fs against mean true gap %.0fs\n",
			sumErr/float64(len(preds)), sumActual/float64(len(preds)))
		best := preds[0]
		fmt.Printf("  best-predicted target %s: predicted %.0fs, actual %.0fs\n",
			best.Target, best.PredictedGap, best.ActualGap)
		fmt.Println("defense hint: repeatedly attacked infrastructure can pre-provision")
		fmt.Println("mitigation capacity inside the predicted window (paper §III-D).")
	}
	return nil
}
