// Defenseplan: the paper's closing defense insight made operational.
// Train a bot blacklist on the first half of the observation window,
// measure how much of the second half's attack traffic it would have
// pre-blocked, and derive per-target high-alert windows from the
// inter-attack interval patterns (§III-D, §V).
package main

import (
	"fmt"
	"log"
	"time"

	"botscope"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 31, Scale: 0.1})
	if err != nil {
		return fmt.Errorf("generate workload: %w", err)
	}
	a := botscope.NewAnalyzer(store)

	first, last, ok := store.TimeBounds()
	if !ok {
		return fmt.Errorf("empty workload")
	}
	split := first.Add(last.Sub(first) / 2)

	// --- Blacklist: learn from the past, score on the future -----------
	for _, size := range []int{0, 5000, 1000} {
		bl, err := a.BuildBlacklist(time.Time{}, split, size)
		if err != nil {
			return err
		}
		ev, err := a.EvaluateBlacklist(bl, split, time.Time{})
		if err != nil {
			return err
		}
		label := "unbounded"
		if size > 0 {
			label = fmt.Sprintf("top-%d", size)
		}
		fmt.Printf("%-10s blacklist (%6d bots): blocks %.1f%% of future sources, blunts %.1f%% of future attacks\n",
			label, bl.Len(), ev.BotCoverage*100, ev.AttacksBlunted*100)
	}

	// Repeat offenders serving several families are prime candidates.
	bl, err := a.BuildBlacklist(time.Time{}, split, 10)
	if err != nil {
		return err
	}
	fmt.Println("\nmost prolific bots of the first half:")
	for _, e := range bl.Entries() {
		fmt.Printf("  %-16s %3d attacks, %d families\n", e.IP, e.Occurrences, e.Families)
	}

	// --- Mitigation windows ---------------------------------------------
	plans := a.PlanMitigation(6)
	fmt.Printf("\nmitigation windows for %d repeat targets; soonest to arm:\n", len(plans))
	for i, p := range plans {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-16s expect next attack ~%s, arm %s .. %s (%d gaps of history)\n",
			p.Target,
			p.ExpectedNext.Format("2006-01-02 15:04"),
			p.ArmFrom.Format("01-02 15:04"),
			p.ArmUntil.Format("01-02 15:04"),
			p.HistoryGaps)
	}
	fmt.Println("\nThe paper (§III-D): attacks are short (80% under 4h) and repeat within")
	fmt.Println("hours — only automatic, pre-armed defenses can react inside the window.")
	return nil
}
