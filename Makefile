GO ?= go
FUZZTIME ?= 15s

.PHONY: build test vet botvet race verify bench bench-smoke bench-allocs bench-record bench-stream report fmt fmt-check fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# botvet runs the project-specific analyzers (nodeterm, lockguard,
# snapshotalias, floateq) over every package via go vet's -vettool hook.
botvet:
	$(GO) build -o bin/botvet ./cmd/botvet
	$(GO) vet -vettool=$(abspath bin/botvet) ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: build, stock vet, project analyzers,
# formatting, and the race-enabled test suite.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) build -o bin/botvet ./cmd/botvet
	$(GO) vet -vettool=$(abspath bin/botvet) ./...
	@fmtout=$$(gofmt -l . | grep -v '^vendor/' || true); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# bench-smoke compiles and single-shots every benchmark so they cannot
# bit-rot; -short skips the fixed-scale (scale 1/10) kernel benchmarks.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -short -run=^$$

# bench-allocs runs the hot-kernel micro-benchmarks with -benchmem and
# fails when any exceeds its budget in bench_thresholds.json (see
# cmd/benchguard). This is the CI gate against allocation regressions in
# the ARIMA fitter and the dispersion scan.
bench-allocs:
	$(GO) test -run=^$$ -bench 'BenchmarkFit$$|BenchmarkAutoFit$$|BenchmarkDispersionSeries$$' \
		-benchmem -benchtime=10x ./internal/timeseries ./internal/core > bench_allocs.out
	@cat bench_allocs.out
	$(GO) run ./cmd/benchguard -in bench_allocs.out -thresholds bench_thresholds.json
	@rm -f bench_allocs.out

# bench-record runs the trajectory harness and appends the next
# BENCH_<n>.json. BENCH_SCALE=10 BENCH_BASELINE=BENCH_0.json make bench-record
BENCH_SCALE ?= 1
BENCH_BASELINE ?=
bench-record:
	$(GO) run ./cmd/botbench -scale $(BENCH_SCALE) \
		$(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE)) \
		-commit $$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

# bench-stream records streaming ingest throughput (attacks/sec).
bench-stream:
	$(GO) test -bench='BenchmarkStream(Ingest|Snapshot)' -benchmem -run=^$$

# fuzz smoke-runs each dataset decoder fuzzer for FUZZTIME.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecodeCSV -fuzztime=$(FUZZTIME) ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzDecodeJSONL -fuzztime=$(FUZZTIME) ./internal/dataset/

report:
	$(GO) run ./cmd/botreport -scale 0.2

fmt:
	gofmt -l -w cmd examples internal *.go

fmt-check:
	@fmtout=$$(gofmt -l . | grep -v '^vendor/' || true); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
