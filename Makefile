GO ?= go
FUZZTIME ?= 15s

.PHONY: build test vet botvet race verify bench bench-stream report fmt fmt-check fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# botvet runs the project-specific analyzers (nodeterm, lockguard,
# snapshotalias, floateq) over every package via go vet's -vettool hook.
botvet:
	$(GO) build -o bin/botvet ./cmd/botvet
	$(GO) vet -vettool=$(abspath bin/botvet) ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: build, stock vet, project analyzers,
# formatting, and the race-enabled test suite.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) build -o bin/botvet ./cmd/botvet
	$(GO) vet -vettool=$(abspath bin/botvet) ./...
	@fmtout=$$(gofmt -l . | grep -v '^vendor/' || true); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# bench-stream records streaming ingest throughput (attacks/sec).
bench-stream:
	$(GO) test -bench='BenchmarkStream(Ingest|Snapshot)' -benchmem -run=^$$

# fuzz smoke-runs each dataset decoder fuzzer for FUZZTIME.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecodeCSV -fuzztime=$(FUZZTIME) ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzDecodeJSONL -fuzztime=$(FUZZTIME) ./internal/dataset/

report:
	$(GO) run ./cmd/botreport -scale 0.2

fmt:
	gofmt -l -w cmd examples internal *.go

fmt-check:
	@fmtout=$$(gofmt -l . | grep -v '^vendor/' || true); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
