GO ?= go
FUZZTIME ?= 15s

.PHONY: build build-cross test vet botvet botvet-json botvet-sarif botvet-timed race verify verify-race bench bench-smoke bench-allocs bench-update bench-record bench-stream bench-trajectory load-smoke load-record snapshot-smoke report fmt fmt-check fuzz

build:
	$(GO) build ./...

# build-cross type-checks the non-unix build tags: the dataset package
# carries a !unix mmap stub (mmap_other.go), and nothing may grow a
# silent unix-only dependency outside it. Compile-only — no tests run.
build-cross:
	GOOS=windows $(GO) build ./...
	GOOS=darwin $(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# BOTVET_SRC is everything the botvet binary is built from; touching any
# of it invalidates bin/botvet without forcing a rebuild on unrelated
# repo edits.
BOTVET_SRC := go.mod $(wildcard go.sum) $(shell find cmd/botvet internal/analysis vendor -name '*.go' 2>/dev/null)

bin/botvet: $(BOTVET_SRC)
	$(GO) build -o bin/botvet ./cmd/botvet

# botvet runs the project-specific analyzers — the SSA tier (goleak,
# ctxflow, wireframe), the invariant tier (nodeterm, lockguard,
# snapshotalias, floateq, sharedslice, parmerge, hotalloc, rngstream),
# and the columnar-era tier (mmaplife, lazymat, codecsym, memodisc) —
# over every package via go vet's -vettool hook. Exit code 0 means every
# analyzer ran clean; 1 means diagnostics (or build failure); 2 means the
# tool was misused.
#
# The run is stamp-cached: the key hashes go.mod/go.sum, every .go file,
# and the built botvet binary itself (so a tool rebuilt from the same
# sources but a different toolchain re-runs). A no-op invocation skips
# the vet sweep entirely. Delete bin/.botvet-clean to force a re-run.
BOTVET_STAMP := bin/.botvet-clean
botvet: bin/botvet
	@hash=$$( { cat go.mod go.sum 2>/dev/null; cat bin/botvet; find cmd examples internal vendor -name '*.go' -print0 2>/dev/null | sort -z | xargs -0 cat; } | sha256sum | cut -d' ' -f1 ); \
	if [ -f $(BOTVET_STAMP) ] && [ "$$(cat $(BOTVET_STAMP))" = "$$hash" ]; then \
		echo "botvet: clean (cached, key $${hash%??????????????????????????????????????????????????})"; \
	else \
		rm -f $(BOTVET_STAMP); \
		$(GO) vet -vettool=$(abspath bin/botvet) ./... && echo "$$hash" > $(BOTVET_STAMP); \
	fi

# botvet-json is the same gate with machine-readable output: go vet -json
# emits one JSON object per package keyed by analyzer name, suitable for
# editor integrations and CI annotation tooling.
botvet-json: bin/botvet
	$(GO) vet -json -vettool=$(abspath bin/botvet) ./...

# botvet-sarif converts the gate's findings to a SARIF 2.1.0 log for the
# CI code-scanning upload. The log is written even when findings fail the
# target, so the artifact survives a red run.
botvet-sarif: bin/botvet
	$(abspath bin/botvet) -format=sarif ./... > botvet.sarif

# botvet-timed runs each SSA- and columnar-tier analyzer alone and
# reports wall-clock, so a slow interprocedural pass shows up in CI logs
# before it slows the merge gate for everyone.
botvet-timed: bin/botvet
	@for a in goleak ctxflow wireframe mmaplife lazymat codecsym memodisc; do \
		start=$$(date +%s%N); \
		$(GO) vet -vettool=$(abspath bin/botvet) -$$a ./... || exit 1; \
		end=$$(date +%s%N); \
		printf 'botvet[%s]: %d ms\n' "$$a" $$(( (end - start) / 1000000 )); \
	done

race:
	$(GO) test -race ./...

# verify-race is the dynamic complement of the static gate: the worker
# parity, determinism, and concurrent-access tests — everything the
# sharedslice/parmerge analyzers reason about statically — run under the
# race detector with the full machine's parallelism. -count=2 shakes out
# once-per-process caching effects (sync.Once indexes, memoized views).
verify-race:
	$(GO) test -race -count=2 \
		-run 'TestMap|TestChunk|TestWorkers|Parallel|Concurrent|Deterministic|TestParity|TestStoreAccessors|TestStoreSummaryWorkers|TestBotDense|TestDispersionIndex|TestIngest|TestSnapshot' \
		./internal/par/ ./internal/dataset/ ./internal/core/ ./internal/stream/ ./internal/synth/ ./internal/experiments/ ./internal/cluster/

# verify is the full pre-merge gate: build, stock vet, project analyzers,
# formatting, the race-enabled test suite, and the wall-clock trajectory
# gate over the committed BENCH records.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) botvet
	@fmtout=$$(gofmt -l . | grep -v '^vendor/' || true); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) test -race ./...
	$(MAKE) bench-trajectory

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# bench-smoke compiles and single-shots every benchmark so they cannot
# bit-rot; -short skips the fixed-scale (scale 1/10) kernel benchmarks.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -short -run=^$$

# bench-allocs runs the hot-kernel micro-benchmarks with -benchmem and
# fails when any exceeds its budget in bench_thresholds.json (see
# cmd/benchguard). This is the CI gate against allocation regressions in
# the ARIMA fitter, the dispersion scan, the cross-shard merge, and the
# columnar store build. The second pattern segment (scale1) only filters
# sub-benchmarks, so the flat kernel benches are unaffected by it.
BENCH_ALLOC_PATTERN := 'BenchmarkFit$$|BenchmarkAutoFit$$|BenchmarkDispersionSeries$$|BenchmarkMergeSnapshots$$|BenchmarkNewStore$$/scale1$$'
BENCH_ALLOC_PKGS := ./internal/timeseries ./internal/core ./internal/cluster .
bench-allocs:
	$(GO) test -run=^$$ -bench $(BENCH_ALLOC_PATTERN) \
		-benchmem -benchtime=10x $(BENCH_ALLOC_PKGS) > bench_allocs.out
	@cat bench_allocs.out
	$(GO) run ./cmd/benchguard -in bench_allocs.out -thresholds bench_thresholds.json
	@rm -f bench_allocs.out

# bench-update re-measures the budgeted kernels and regenerates
# bench_thresholds.json with headroom (see benchguard -update). Run after
# a deliberate allocation-profile change, then review the diff.
bench-update:
	$(GO) test -run=^$$ -bench $(BENCH_ALLOC_PATTERN) \
		-benchmem -benchtime=10x $(BENCH_ALLOC_PKGS) > bench_allocs.out
	@cat bench_allocs.out
	$(GO) run ./cmd/benchguard -in bench_allocs.out -thresholds bench_thresholds.json -update
	@rm -f bench_allocs.out

# bench-record runs the trajectory harness and appends the next
# BENCH_<n>.json. BENCH_SCALE=10 BENCH_BASELINE=BENCH_0.json make bench-record
BENCH_SCALE ?= 1
BENCH_BASELINE ?=
bench-record:
	$(GO) run ./cmd/botbench -scale $(BENCH_SCALE) \
		$(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE)) \
		-commit $$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

# bench-stream records streaming ingest throughput (attacks/sec).
bench-stream:
	$(GO) test -bench='BenchmarkStream(Ingest|Snapshot)' -benchmem -run=^$$

# load-smoke drives a 2-shard cluster in-process with a small client
# fleet and fails when p99 latency blows the budget. The report lands in
# load_smoke.json (not the committed trajectory) so CI can archive it.
LOAD_P99 ?= 250ms
load-smoke:
	$(GO) run ./cmd/botload -mode direct -shards 2 -clients 256 \
		-duration 3s -scale 0.02 -churn 1s \
		-assert-p99 $(LOAD_P99) -out load_smoke.json

# load-record runs the full-size load test (10k clients over 4 shards)
# and appends the next BENCH_<n>.json to the committed trajectory.
load-record:
	$(GO) run ./cmd/botload -mode direct -shards 4 -clients 10000 \
		-duration 10s -scale 0.05 \
		-commit $$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

# fuzz smoke-runs each decoder fuzzer (dataset codecs and the cluster
# wire protocol) for FUZZTIME.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecodeCSV -fuzztime=$(FUZZTIME) ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzDecodeJSONL -fuzztime=$(FUZZTIME) ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzDecodeSnapshot -fuzztime=$(FUZZTIME) ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzDecodeWire -fuzztime=$(FUZZTIME) ./internal/cluster/

# bench-trajectory enforces the wall-clock regression gate over the
# committed BENCH_<n>.json sequence (see benchguard -trajectory): the two
# newest same-scale reports are compared phase by phase, and the absolute
# ceilings in bench_wall_budgets.json (e.g. scale-10 snapshot load ≤ 5s)
# are checked against the newest matching report.
bench-trajectory:
	$(GO) run ./cmd/benchguard -trajectory . -wall-budgets bench_wall_budgets.json

# snapshot-smoke proves the binary columnar snapshot codec end to end at
# scale 0.2: write a snapshot with botgen, reload it with botreport — once
# over the default mmap path and once with BOTSCOPE_NO_MMAP=1 forcing the
# io.ReadAll fallback — and require both reloaded Table IIIs to match the
# regenerated one byte for byte. The stderr load line pins which path each
# run actually took. The .bscs file is left behind for the CI artifact
# upload.
snapshot-smoke:
	$(GO) run ./cmd/botgen -scale 0.2 -seed 1 -snapshot snapshot_smoke.bscs
	$(GO) run ./cmd/botreport -snapshot snapshot_smoke.bscs -scale 0.2 -only "Table III" > snapshot_smoke_loaded.txt 2> snapshot_smoke_mmap.log
	grep -q "mmap=true" snapshot_smoke_mmap.log
	BOTSCOPE_NO_MMAP=1 $(GO) run ./cmd/botreport -snapshot snapshot_smoke.bscs -scale 0.2 -only "Table III" > snapshot_smoke_nommap.txt 2> snapshot_smoke_nommap.log
	grep -q "mmap=false" snapshot_smoke_nommap.log
	$(GO) run ./cmd/botreport -scale 0.2 -seed 1 -only "Table III" > snapshot_smoke_generated.txt
	cmp snapshot_smoke_loaded.txt snapshot_smoke_generated.txt
	cmp snapshot_smoke_nommap.txt snapshot_smoke_generated.txt
	@rm -f snapshot_smoke_loaded.txt snapshot_smoke_nommap.txt snapshot_smoke_generated.txt snapshot_smoke_mmap.log snapshot_smoke_nommap.log
	@echo "snapshot-smoke: mmap and fallback reloads are byte-identical"

report:
	$(GO) run ./cmd/botreport -scale 0.2

fmt:
	gofmt -l -w cmd examples internal *.go

fmt-check:
	@fmtout=$$(gofmt -l . | grep -v '^vendor/' || true); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
