GO ?= go

.PHONY: build test vet race verify bench bench-stream report fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# bench-stream records streaming ingest throughput (attacks/sec).
bench-stream:
	$(GO) test -bench='BenchmarkStream(Ingest|Snapshot)' -benchmem -run=^$$

report:
	$(GO) run ./cmd/botreport -scale 0.2

fmt:
	gofmt -l -w .
