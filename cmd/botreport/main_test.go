package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"botscope"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.02", "-seed", "2", "-only", "Table II"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Table II") || !strings.Contains(text, "dirtjumper") {
		t.Errorf("experiment output malformed:\n%.300s", text)
	}
	if strings.Contains(text, "Figure 3") {
		t.Error("-only leaked other experiments")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.02", "-only", "Table XIV"}, &out); err == nil {
		t.Error("unknown experiment ID accepted")
	}
}

func TestRunMarkdown(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.02", "-seed", "2", "-markdown"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.HasPrefix(text, "| Experiment | Metric | Measured | Paper |") {
		t.Errorf("markdown header missing:\n%.120s", text)
	}
	for _, id := range []string{"Figure 1", "Table VI", "Figure 18"} {
		if !strings.Contains(text, id) {
			t.Errorf("markdown missing %s", id)
		}
	}
}

func TestRunFromCSV(t *testing.T) {
	// Export a workload, then analyze the file instead of regenerating.
	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 4, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "attacks.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := botscope.WriteCSV(f, store.Attacks()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	// CSV export has no Botlist, so source-side experiments fail; a
	// target-side experiment must still work.
	if err := run([]string{"-in", path, "-scale", "0.02", "-only", "Table V"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table V") {
		t.Errorf("CSV-driven run missing output:\n%.200s", out.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-in", "/nonexistent/file.csv"}, &out); err == nil {
		t.Error("missing input file accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
