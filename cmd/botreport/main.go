// Command botreport regenerates every table and figure of the paper's
// evaluation from a synthetic workload (or a previously exported CSV) and
// prints them with measured-vs-paper metrics.
//
// Usage:
//
//	botreport -scale 1.0 -seed 1              # full paper-size run
//	botreport -scale 0.1 -only "Table VI"     # a single experiment
//	botreport -in attacks.csv -scale 0.1      # analyze an exported workload
//	botreport -snapshot work.bscs -scale 10   # reload a botgen snapshot
//	botreport -markdown > EXPERIMENTS.md      # metric comparison as markdown
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"botscope"
	"botscope/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "botreport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("botreport", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "generation seed")
		scale    = fs.Float64("scale", 1.0, "workload scale; 1.0 = paper size")
		in       = fs.String("in", "", "analyze this attack CSV instead of generating")
		snapshot = fs.String("snapshot", "", "analyze this binary columnar snapshot (.bscs) instead of generating")
		only     = fs.String("only", "", "run only the experiment with this ID (e.g. 'Figure 3')")
		markdown = fs.Bool("markdown", false, "emit a markdown metric comparison instead of full text")
		parallel = fs.Int("parallel", 0, "run experiments concurrently with this many workers (0 = sequential)")
		workers  = fs.Int("workers", 0, "generation worker count (0 = all cores; output is identical either way)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		w   *experiments.Workload
		err error
	)
	if *snapshot != "" && *in != "" {
		return fmt.Errorf("-snapshot and -in are mutually exclusive")
	}
	if *snapshot != "" {
		f, ferr := os.Open(*snapshot)
		if ferr != nil {
			return ferr
		}
		store, serr := botscope.ReadSnapshot(f)
		_ = f.Close()
		if serr != nil {
			return serr
		}
		defer store.Close()
		info := store.SnapshotInfo()
		fmt.Fprintf(os.Stderr, "loaded snapshot %s (v%d, %d bytes, mmap=%t)\n",
			*snapshot, info.Version, info.Bytes, info.Mapped)
		w = experiments.FromStore(store, *scale)
	} else if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		attacks, rerr := botscope.ReadCSV(f)
		if rerr != nil {
			return rerr
		}
		store, serr := botscope.NewStore(attacks, nil, nil)
		if serr != nil {
			return serr
		}
		w = experiments.FromStore(store, *scale)
	} else {
		fmt.Fprintf(os.Stderr, "generating workload (seed %d, scale %.3f)...\n", *seed, *scale)
		w, err = experiments.NewWorkloadWorkers(*seed, *scale, *workers)
		if err != nil {
			return err
		}
	}

	if *markdown {
		return writeMarkdown(stdout, w)
	}

	if *parallel > 0 && *only == "" {
		results, err := w.RunAllParallel(context.Background(), *parallel)
		for _, res := range results {
			fmt.Fprintf(stdout, "== %s — %s\n%s%s\n", res.ID, res.Title, res.Text, res.MetricsText())
		}
		return err
	}

	ran := 0
	for _, e := range w.All() {
		if *only != "" && !strings.EqualFold(e.ID, *only) {
			continue
		}
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(stdout, "== %s: FAILED: %v\n\n", e.ID, err)
			continue
		}
		fmt.Fprintf(stdout, "== %s — %s\n%s%s\n", res.ID, res.Title, res.Text, res.MetricsText())
		ran++
	}
	if *only != "" && ran == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	return nil
}

// writeMarkdown emits the EXPERIMENTS.md comparison table.
func writeMarkdown(w io.Writer, wl *experiments.Workload) error {
	fmt.Fprintln(w, "| Experiment | Metric | Measured | Paper |")
	fmt.Fprintln(w, "|---|---|---:|---:|")
	for _, e := range wl.All() {
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(w, "| %s | (failed: %v) | | |\n", e.ID, err)
			continue
		}
		for _, m := range res.Metrics {
			paper := ""
			if m.PaperKnown {
				paper = fmt.Sprintf("%.3f", m.Paper)
			}
			fmt.Fprintf(w, "| %s | %s | %.3f | %s |\n", res.ID, m.Name, m.Measured, paper)
		}
	}
	return nil
}
