package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"botscope"
)

func TestRunCSVToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.01", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.HasPrefix(text, "ddos_id,botnet_id,family,category,target_ip") {
		t.Errorf("missing CSV header: %.120s", text)
	}
	attacks, err := botscope.ReadCSV(strings.NewReader(text))
	if err != nil {
		t.Fatalf("generated CSV unreadable: %v", err)
	}
	if len(attacks) < 100 {
		t.Errorf("attacks = %d, want hundreds at scale 0.01", len(attacks))
	}
}

func TestRunJSONLToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attacks.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.01", "-format", "jsonl", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	attacks, err := botscope.ReadJSONL(f)
	if err != nil {
		t.Fatalf("generated JSONL unreadable: %v", err)
	}
	if len(attacks) == 0 {
		t.Error("no attacks exported")
	}
	if out.Len() != 0 {
		t.Error("file export also wrote to stdout")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-scale", "0.005", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "0.005", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different exports")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-format", "xml", "-scale", "0.005"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
