// Command botgen generates a synthetic botnet-DDoS workload calibrated to
// the paper and exports it as CSV or JSON lines.
//
// Usage:
//
//	botgen -scale 0.1 -seed 42 -format csv -out attacks.csv
//	botgen -scale 1.0 -format jsonl -out attacks.jsonl   # paper-size
//	botgen -scale 10 -snapshot work.bscs                 # binary snapshot
//
// The export carries the DDoSAttack schema (Table I); use -summary to
// print the Table III entity counts of the generated workload. -snapshot
// writes the full workload (attacks, bots, botnets, indexes) as a binary
// columnar snapshot that botbench/botreport/botserve reload in seconds
// instead of regenerating; when -snapshot is given without -out, the
// record export to stdout is skipped.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"botscope"
	"botscope/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "botgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("botgen", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "generation seed (same seed, same workload)")
		scale    = fs.Float64("scale", 0.1, "workload scale; 1.0 = paper size (50,704 attacks)")
		format   = fs.String("format", "csv", "output format: csv or jsonl")
		out      = fs.String("out", "", "output file (default stdout)")
		summary  = fs.Bool("summary", false, "print Table III-style workload summary to stderr")
		workers  = fs.Int("workers", 0, "generation worker count (0 = all cores; output is identical either way)")
		snapshot = fs.String("snapshot", "", "also write a binary columnar snapshot (.bscs) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := botscope.Generate(botscope.GenerateConfig{Seed: *seed, Scale: *scale, Workers: *workers})
	if err != nil {
		return err
	}

	if *snapshot != "" {
		if err := writeSnapshotFile(*snapshot, store); err != nil {
			return err
		}
	}

	// A snapshot request without an explicit -out means the caller wants the
	// binary artifact, not a CSV dump on stdout.
	if *snapshot == "" || *out != "" {
		var w io.Writer = stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}

		switch *format {
		case "csv":
			err = botscope.WriteCSV(w, store.Attacks())
		case "jsonl":
			err = botscope.WriteJSONL(w, store.Attacks())
		default:
			return fmt.Errorf("unknown format %q (want csv or jsonl)", *format)
		}
		if err != nil {
			return err
		}
	}

	if *summary {
		sum := store.Summary()
		t := report.NewTable("workload summary", "description", "count")
		t.SetAlign(1, report.AlignRight)
		t.AddRow("attacks", report.FormatInt(sum.Attacks))
		t.AddRow("botnets", report.FormatInt(sum.Botnets))
		t.AddRow("bot IPs", report.FormatInt(sum.BotIPs))
		t.AddRow("target IPs", report.FormatInt(sum.TargetIPs))
		t.AddRow("source countries", report.FormatInt(sum.SourceCountries))
		t.AddRow("target countries", report.FormatInt(sum.TargetCountries))
		t.AddRow("traffic types", report.FormatInt(sum.TrafficTypes))
		fmt.Fprint(os.Stderr, t.String())
	}
	return nil
}

func writeSnapshotFile(path string, store *botscope.Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := botscope.WriteSnapshot(f, store); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
