package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"botscope/internal/benchio"
)

// TestRunWritesReport smoke-tests the whole harness at a tiny scale: the
// report must land at the next trajectory index, parse as JSON, and carry
// every pipeline phase plus per-experiment timings.
func TestRunWritesReport(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_3.json"), []byte(`{"schema":"botscope-bench/v1","phases":[{"name":"newstore","seconds":100}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := run([]string{
		"-scale", "0.02", "-seed", "7",
		"-dir", dir,
		"-baseline", filepath.Join(dir, "BENCH_3.json"),
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_4.json"))
	if err != nil {
		t.Fatalf("auto-numbered report not written: %v", err)
	}
	var rep benchio.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "botscope-bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	want := []string{"generate", "newstore", "store_indexes", "collab_seq", "collab_par", "runall"}
	if len(rep.Phases) != len(want) {
		t.Fatalf("got %d phases, want %d: %+v", len(rep.Phases), len(want), rep.Phases)
	}
	for i, name := range want {
		if rep.Phases[i].Name != name {
			t.Errorf("phase %d = %q, want %q", i, rep.Phases[i].Name, name)
		}
	}
	if len(rep.Experiments) == 0 {
		t.Error("no per-experiment timings recorded")
	}
	if rep.Baseline != "BENCH_3.json" {
		t.Errorf("baseline = %q", rep.Baseline)
	}
	for _, p := range rep.Phases {
		if p.Name == "newstore" && p.SpeedupVsBaseline == 0 {
			t.Error("newstore phase missing speedup_vs_baseline despite matching baseline entry")
		}
	}
}

// TestNextBenchPath checks the auto-numbering scan.
func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := benchio.NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_1.json" {
		t.Errorf("empty dir: got %s, want BENCH_1.json", p)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_12.json", "BENCH_notanumber.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = benchio.NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_13.json" {
		t.Errorf("got %s, want BENCH_13.json", p)
	}
}
