// Command botbench records the performance trajectory of the data plane.
//
// It times each pipeline phase — generation, store construction, index
// build, collaboration detection, and the full experiment suite — and
// appends the measurements to the repository's BENCH_<n>.json sequence.
// Passing -baseline with an earlier BENCH file computes per-phase speedups
// against it, so a single committed file documents a before/after.
//
// Usage:
//
//	botbench -scale 1                        # measure, write BENCH_<n>.json
//	botbench -scale 10 -baseline BENCH_0.json
//	botbench -scale 0.1 -out /tmp/probe.json # explicit output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"botscope"
	"botscope/internal/core"
	"botscope/internal/experiments"
)

// Phase is one timed pipeline stage.
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Detail  string  `json:"detail,omitempty"`
	// SpeedupVsBaseline is baseline-seconds / seconds for the phase with the
	// same name in the -baseline file, when one was given and matches.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// Report is the schema of a BENCH_<n>.json file.
type Report struct {
	Schema      string  `json:"schema"`
	GeneratedAt string  `json:"generated_at"`
	Commit      string  `json:"commit,omitempty"`
	Scale       float64 `json:"scale"`
	Seed        int64   `json:"seed"`
	Workers     int     `json:"workers"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Note        string  `json:"note,omitempty"`
	// Baseline names the BENCH file the speedup columns compare against.
	Baseline    string  `json:"baseline,omitempty"`
	Phases      []Phase `json:"phases"`
	Experiments []Phase `json:"experiments,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "botbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("botbench", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "generation seed")
		scale    = fs.Float64("scale", 1.0, "workload scale; 1.0 = paper size")
		workers  = fs.Int("workers", 0, "worker count for parallel phases (0 = all cores)")
		dir      = fs.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
		out      = fs.String("out", "", "explicit output path (overrides auto-numbering)")
		baseline = fs.String("baseline", "", "earlier BENCH_*.json to compute speedups against")
		note     = fs.String("note", "", "free-form note recorded in the report")
		commit   = fs.String("commit", "", "VCS revision recorded in the report")
		skipAll  = fs.Bool("skip-experiments", false, "skip the per-experiment RunAll phase")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf  = fs.String("memprofile", "", "write a post-run heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "botbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows steady state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "botbench: memprofile:", err)
			}
		}()
	}

	rep := &Report{
		Schema:      "botscope-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Commit:      *commit,
		Scale:       *scale,
		Seed:        *seed,
		Workers:     *workers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note:        *note,
	}

	timed := func(name, detail string, f func() error) error {
		start := time.Now()
		err := f()
		sec := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rep.Phases = append(rep.Phases, Phase{Name: name, Seconds: sec, Detail: detail})
		fmt.Fprintf(stdout, "%-16s %10.3fs  %s\n", name, sec, detail)
		return nil
	}

	var (
		attacks []*botscope.Attack
		botnets []*botscope.Botnet
		bots    []*botscope.Bot
		store   *botscope.Store
		w       *experiments.Workload
	)
	if err := timed("generate", fmt.Sprintf("seed %d scale %g workers %d", *seed, *scale, *workers), func() error {
		var err error
		attacks, botnets, bots, err = botscope.GenerateRaw(botscope.GenerateConfig{
			Seed: *seed, Scale: *scale, Workers: *workers,
		})
		return err
	}); err != nil {
		return err
	}
	if err := timed("newstore", fmt.Sprintf("%d attacks, %d bots", len(attacks), len(bots)), func() error {
		var err error
		store, err = botscope.NewStore(attacks, botnets, bots)
		return err
	}); err != nil {
		return err
	}
	if err := timed("store_indexes", "first Targets()+Families() build", func() error {
		store.Targets()
		store.Families()
		return nil
	}); err != nil {
		return err
	}
	if err := timed("collab_seq", "DetectCollaborations, 1 worker", func() error {
		if n := len(core.DetectCollaborationsWindowWorkers(store, core.SimultaneousThreshold, core.CollabDurationWindow, 1)); n == 0 {
			return fmt.Errorf("no collaborations detected")
		}
		return nil
	}); err != nil {
		return err
	}
	if err := timed("collab_par", fmt.Sprintf("DetectCollaborations, %d workers", *workers), func() error {
		if n := len(core.DetectCollaborationsWindowWorkers(store, core.SimultaneousThreshold, core.CollabDurationWindow, *workers)); n == 0 {
			return fmt.Errorf("no collaborations detected")
		}
		return nil
	}); err != nil {
		return err
	}

	if !*skipAll {
		w = experiments.FromStore(store, *scale)
		if err := timed("runall", "all tables, figures, and extensions", func() error {
			for _, e := range w.All() {
				start := time.Now()
				_, err := e.Run()
				sec := time.Since(start).Seconds()
				if err != nil {
					return fmt.Errorf("%s: %w", e.ID, err)
				}
				rep.Experiments = append(rep.Experiments, Phase{Name: e.ID, Seconds: sec})
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if *baseline != "" {
		if err := applyBaseline(rep, *baseline); err != nil {
			return err
		}
	}

	path := *out
	if path == "" {
		var err error
		path, err = nextBenchPath(*dir)
		if err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

// applyBaseline fills SpeedupVsBaseline on every phase (and experiment)
// whose name also appears in the baseline report.
func applyBaseline(rep *Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	rep.Baseline = filepath.Base(path)
	index := func(phases []Phase) map[string]float64 {
		m := make(map[string]float64, len(phases))
		for _, p := range phases {
			m[p.Name] = p.Seconds
		}
		return m
	}
	annotate := func(phases []Phase, base map[string]float64) {
		for i := range phases {
			if sec, ok := base[phases[i].Name]; ok && phases[i].Seconds > 0 {
				phases[i].SpeedupVsBaseline = sec / phases[i].Seconds
			}
		}
	}
	annotate(rep.Phases, index(base.Phases))
	annotate(rep.Experiments, index(base.Experiments))
	return nil
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextBenchPath returns dir/BENCH_<n+1>.json where n is the highest
// existing index in the trajectory (BENCH_1.json when none exist).
func nextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 1
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n+1 > next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}
