// Command botbench records the performance trajectory of the data plane.
//
// It times each pipeline phase — generation, store construction, index
// build, collaboration detection, and the full experiment suite — and
// appends the measurements to the repository's BENCH_<n>.json sequence.
// Passing -baseline with an earlier BENCH file computes per-phase speedups
// against it, so a single committed file documents a before/after.
//
// Usage:
//
//	botbench -scale 1                        # measure, write BENCH_<n>.json
//	botbench -scale 10 -baseline BENCH_0.json
//	botbench -scale 0.1 -out /tmp/probe.json # explicit output path
//	botbench -scale 10 -snapshot work.bscs   # save or reload a snapshot
//
// With -snapshot, a missing file is written after generation (phase
// snapshot_save); an existing file replaces the generate+newstore phases
// with a single snapshot_load phase, so a second run records the
// cold-start trajectory of the binary columnar codec.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"botscope"
	"botscope/internal/benchio"
	"botscope/internal/core"
	"botscope/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "botbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("botbench", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "generation seed")
		scale    = fs.Float64("scale", 1.0, "workload scale; 1.0 = paper size")
		workers  = fs.Int("workers", 0, "worker count for parallel phases (0 = all cores)")
		dir      = fs.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
		out      = fs.String("out", "", "explicit output path (overrides auto-numbering)")
		baseline = fs.String("baseline", "", "earlier BENCH_*.json to compute speedups against")
		note     = fs.String("note", "", "free-form note recorded in the report")
		commit   = fs.String("commit", "", "VCS revision recorded in the report")
		skipAll  = fs.Bool("skip-experiments", false, "skip the per-experiment RunAll phase")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf  = fs.String("memprofile", "", "write a post-run heap profile to this file")
		snapshot = fs.String("snapshot", "", "binary columnar snapshot path: load it if present, else write it after generation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "botbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows steady state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "botbench: memprofile:", err)
			}
		}()
	}

	rep := &benchio.Report{
		Schema:      benchio.Schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Commit:      *commit,
		Scale:       *scale,
		Seed:        *seed,
		Workers:     *workers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note:        *note,
	}

	timed := func(name, detail string, f func() error) error {
		// Settle inherited allocation debt before starting the clock: on
		// multi-GB heaps a single mark cycle costs seconds and lands on
		// whichever phase happens to allocate when the debt comes due,
		// which made per-phase times depend on their predecessors.
		runtime.GC()
		start := time.Now()
		err := f()
		sec := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rep.Phases = append(rep.Phases, benchio.Phase{Name: name, Seconds: sec, Detail: detail})
		fmt.Fprintf(stdout, "%-16s %10.3fs  %s\n", name, sec, detail)
		return nil
	}

	var (
		attacks []*botscope.Attack
		botnets []*botscope.Botnet
		bots    []*botscope.Bot
		store   *botscope.Store
		w       *experiments.Workload
	)
	loadSnapshot := false
	if *snapshot != "" {
		if _, err := os.Stat(*snapshot); err == nil {
			loadSnapshot = true
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("snapshot: %w", err)
		}
	}
	if loadSnapshot {
		if err := timed("snapshot_load", *snapshot, func() error {
			f, err := os.Open(*snapshot)
			if err != nil {
				return err
			}
			defer f.Close()
			store, err = botscope.ReadSnapshot(f)
			return err
		}); err != nil {
			return err
		}
		// Rewrite the detail now that the store exists; the closure above
		// runs before the counts are known.
		info := store.SnapshotInfo()
		rep.Phases[len(rep.Phases)-1].Detail = fmt.Sprintf("%s: %d attacks, %d bots (v%d, mmap=%t)",
			*snapshot, store.NumAttacks(), store.NumBots(), info.Version, info.Mapped)
	} else {
		if err := timed("generate", fmt.Sprintf("seed %d scale %g workers %d", *seed, *scale, *workers), func() error {
			var err error
			attacks, botnets, bots, err = botscope.GenerateRaw(botscope.GenerateConfig{
				Seed: *seed, Scale: *scale, Workers: *workers,
			})
			return err
		}); err != nil {
			return err
		}
		if err := timed("newstore", fmt.Sprintf("%d attacks, %d bots", len(attacks), len(bots)), func() error {
			var err error
			store, err = botscope.NewStore(attacks, botnets, bots)
			return err
		}); err != nil {
			return err
		}
		if *snapshot != "" {
			if err := timed("snapshot_save", *snapshot, func() error {
				f, err := os.Create(*snapshot)
				if err != nil {
					return err
				}
				if err := botscope.WriteSnapshot(f, store); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			}); err != nil {
				return err
			}
		}
	}
	defer store.Close()
	if err := timed("store_indexes", "first Targets()+Families() build", func() error {
		store.Targets()
		store.Families()
		return nil
	}); err != nil {
		return err
	}
	if err := timed("collab_seq", "DetectCollaborations, 1 worker", func() error {
		if n := len(core.DetectCollaborationsWindowWorkers(store, core.SimultaneousThreshold, core.CollabDurationWindow, 1)); n == 0 {
			return fmt.Errorf("no collaborations detected")
		}
		return nil
	}); err != nil {
		return err
	}
	if err := timed("collab_par", fmt.Sprintf("DetectCollaborations, %d workers", *workers), func() error {
		if n := len(core.DetectCollaborationsWindowWorkers(store, core.SimultaneousThreshold, core.CollabDurationWindow, *workers)); n == 0 {
			return fmt.Errorf("no collaborations detected")
		}
		return nil
	}); err != nil {
		return err
	}

	if !*skipAll {
		w = experiments.FromStore(store, *scale)
		if err := timed("runall", "all tables, figures, and extensions", func() error {
			for _, e := range w.All() {
				runtime.GC() // per-experiment quiesce, same reason as timed; stays inside runall's total
				start := time.Now()
				_, err := e.Run()
				sec := time.Since(start).Seconds()
				if err != nil {
					return fmt.Errorf("%s: %w", e.ID, err)
				}
				rep.Experiments = append(rep.Experiments, benchio.Phase{Name: e.ID, Seconds: sec})
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if *baseline != "" {
		if err := benchio.ApplyBaseline(rep, *baseline); err != nil {
			return err
		}
	}

	path := *out
	if path == "" {
		var err error
		path, err = benchio.NextBenchPath(*dir)
		if err != nil {
			return err
		}
	}
	if err := benchio.WriteReport(rep, path); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}
