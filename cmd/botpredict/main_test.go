package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllFamilies(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "similarity") || !strings.Contains(text, "dirtjumper") {
		t.Errorf("prediction table malformed:\n%.300s", text)
	}
	if !strings.Contains(text, "ARIMA(1,0,0)") {
		t.Errorf("order column missing:\n%.300s", text)
	}
}

func TestRunSingleFamily(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-seed", "2", "-family", "pandora"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "pandora") {
		t.Errorf("family row missing:\n%.300s", text)
	}
	if strings.Contains(text, "dirtjumper") {
		t.Error("-family leaked other families")
	}
}

func TestRunUnknownFamily(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-family", "mirai"}, &out); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestRunTargets(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-seed", "2", "-targets", "-min", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "predicted gap") || !strings.Contains(text, "mean abs error") {
		t.Errorf("target prediction output malformed:\n%.300s", text)
	}
}

func TestRunTargetsTooStrict(t *testing.T) {
	var out bytes.Buffer
	// At a tiny scale no target accumulates 500 attacks.
	if err := run([]string{"-scale", "0.01", "-targets", "-min", "500"}, &out); err == nil {
		t.Error("impossible -min accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-zzz"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
