// Command botpredict runs the paper's forecasting experiments: per-family
// geolocation-dispersion prediction with ARIMA (Table IV) and per-target
// next-attack start-time prediction.
//
// Usage:
//
//	botpredict -scale 0.2 -family pandora      # one family's Table IV row
//	botpredict -scale 0.2                      # all families
//	botpredict -scale 0.2 -targets -min 6      # next-attack prediction
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"botscope"
	"botscope/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "botpredict:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("botpredict", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 1, "generation seed")
		scale   = fs.Float64("scale", 0.2, "workload scale; 1.0 = paper size")
		family  = fs.String("family", "", "predict a single family (default: all)")
		targets = fs.Bool("targets", false, "predict next-attack start gaps per repeat target")
		minAtk  = fs.Int("min", 6, "minimum attacks per target for -targets")
		p       = fs.Int("p", 1, "ARIMA AR order (0 with -q 0 selects automatically)")
		d       = fs.Int("d", 0, "ARIMA differencing order")
		q       = fs.Int("q", 0, "ARIMA MA order")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := botscope.Generate(botscope.GenerateConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	analyzer := botscope.NewAnalyzer(store)

	if *targets {
		return predictTargets(stdout, analyzer, *minAtk)
	}

	cfg := botscope.PredictConfig{
		Order:      botscope.ARIMAOrder{P: *p, D: *d, Q: *q},
		TestPoints: int(2700 * *scale),
	}
	var results []*botscope.PredictionResult
	if *family != "" {
		res, err := analyzer.PredictDispersion(botscope.Family(*family), cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	} else {
		results = analyzer.PredictAllFamilies(cfg)
		if len(results) == 0 {
			return fmt.Errorf("no family has enough dispersion data at scale %.3f", *scale)
		}
	}

	t := report.NewTable("geolocation dispersion prediction (Table IV protocol)",
		"family", "order", "mean pred", "mean truth", "std pred", "std truth", "similarity")
	for i := 2; i <= 6; i++ {
		t.SetAlign(i, report.AlignRight)
	}
	for _, r := range results {
		t.AddRow(string(r.Family), r.Order.String(),
			report.FormatFloat(r.MeanPred, 1), report.FormatFloat(r.MeanTruth, 1),
			report.FormatFloat(r.StdPred, 1), report.FormatFloat(r.StdTruth, 1),
			fmt.Sprintf("%.3f", r.Similarity))
	}
	fmt.Fprint(stdout, t.String())
	return nil
}

func predictTargets(stdout io.Writer, analyzer *botscope.Analyzer, minAttacks int) error {
	preds := analyzer.PredictNextAttacks(minAttacks)
	if len(preds) == 0 {
		return fmt.Errorf("no target has %d+ attacks", minAttacks)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i].AbsError < preds[j].AbsError })
	t := report.NewTable("next-attack start-gap prediction per repeat target",
		"target", "predicted gap (s)", "actual gap (s)", "abs error (s)")
	for i := 1; i <= 3; i++ {
		t.SetAlign(i, report.AlignRight)
	}
	show := preds
	if len(show) > 25 {
		show = show[:25]
	}
	for _, p := range show {
		t.AddRow(p.Target,
			report.FormatFloat(p.PredictedGap, 0),
			report.FormatFloat(p.ActualGap, 0),
			report.FormatFloat(p.AbsError, 0))
	}
	fmt.Fprint(stdout, t.String())
	var sumErr float64
	for _, p := range preds {
		sumErr += p.AbsError
	}
	fmt.Fprintf(stdout, "targets evaluated: %d, mean abs error %s s\n",
		len(preds), report.FormatFloat(sumErr/float64(len(preds)), 0))
	return nil
}
