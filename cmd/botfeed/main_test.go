package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"botscope"
	"botscope/internal/serve"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunNegativeSpeedup(t *testing.T) {
	if err := run([]string{"-speedup", "-1"}, &bytes.Buffer{}); err == nil {
		t.Error("negative speedup accepted")
	}
}

func TestRunMissingInputFile(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent/attacks.jsonl"}, &bytes.Buffer{}); err == nil {
		t.Error("missing input file accepted")
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run([]string{"-in", "attacks.xml"}, &bytes.Buffer{}); err == nil {
		t.Error("uninferable format accepted")
	}
}

func TestRunGeneratedInProcess(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.01", "-seed", "3", "-report", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "attacks ingested") || !strings.Contains(text, "peak concurrent") {
		t.Errorf("summary output missing expected rows:\n%s", text)
	}
}

func TestRunJSONLReplay(t *testing.T) {
	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 3, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "attacks.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := botscope.WriteJSONL(f, store.Attacks()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "attacks ingested") {
		t.Errorf("summary output missing:\n%s", out.String())
	}
}

func TestRunRemoteFeed(t *testing.T) {
	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 3, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(store, 0.01)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-scale", "0.01", "-seed", "3", "-url", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	snap := srv.Live().Snapshot()
	if snap.Ingested != store.NumAttacks() {
		t.Errorf("remote ingested %d attacks, want %d", snap.Ingested, store.NumAttacks())
	}
	if !strings.Contains(out.String(), "\"ingested\"") {
		t.Errorf("remote summary output missing:\n%s", out.String())
	}
}
