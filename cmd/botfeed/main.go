// Command botfeed replays an attack workload as a live stream, in
// event-time order, into a streaming analyzer — either in-process or a
// running botserve instance over POST /api/ingest.
//
// Usage:
//
//	botfeed -scale 0.05 -seed 1                      # generate + ingest in-process
//	botfeed -in attacks.jsonl                        # replay a file in-process
//	botfeed -in attacks.csv -url http://localhost:8080   # feed a botserve
//	botfeed -scale 0.05 -speedup 100000              # pace by event time / 100000
//
// With -speedup 0 (the default) the replay runs at maximum speed; any
// other value sleeps the inter-attack event-time gap divided by the
// factor, so -speedup 1 replays in real time. Input files must be sorted
// by start time (botgen output is); out-of-order records abort the feed.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"botscope"
	"botscope/internal/report"
)

// ingestBatch bounds how many records a single POST /api/ingest carries in
// remote mode.
const ingestBatch = 500

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "botfeed:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("botfeed", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 1, "generation seed when no -in file is given")
		scale   = fs.Float64("scale", 0.1, "workload scale; 1.0 = paper size")
		in      = fs.String("in", "", "replay this attack file instead of generating")
		snap    = fs.String("snapshot", "", "replay this BSCS snapshot instead of generating")
		format  = fs.String("format", "", "input format: csv or jsonl (default: by extension)")
		speedup = fs.Float64("speedup", 0, "event-time speedup factor; 0 = max speed, 1 = real time")
		url     = fs.String("url", "", "feed a running botserve at this base URL instead of in-process")
		every   = fs.Int("report", 0, "print progress every N attacks (0 = only the final summary)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *speedup < 0 {
		return fmt.Errorf("speedup must be >= 0, got %v", *speedup)
	}

	var sink feedSink
	if *url != "" {
		sink = &remoteSink{base: strings.TrimRight(*url, "/")}
	} else {
		sink = &localSink{analyzer: botscope.NewStreamAnalyzer()}
	}

	feed := func(fn func(*botscope.Attack) error) error {
		return feedFromFile(*in, *format, fn)
	}
	if *in == "" {
		var store *botscope.Store
		if *snap != "" {
			f, err := os.Open(*snap)
			if err != nil {
				return err
			}
			store, err = botscope.ReadSnapshot(f)
			f.Close()
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "replaying snapshot %s (%d attacks)\n", *snap, store.NumAttacks())
		} else {
			fmt.Fprintf(os.Stderr, "generating workload (seed %d, scale %.3f)...\n", *seed, *scale)
			var err error
			store, err = botscope.Generate(botscope.GenerateConfig{Seed: *seed, Scale: *scale})
			if err != nil {
				return err
			}
		}
		defer store.Close()
		// Replay through the column cursors: each row materializes one
		// attack record on demand, so a snapshot-loaded store streams
		// without ever building the full record arena.
		feed = func(fn func(*botscope.Attack) error) error {
			for i, n := 0, store.AttackRows(); i < n; i++ {
				if err := fn(store.AttackRecordAt(i)); err != nil {
					return err
				}
			}
			return nil
		}
	}

	n := 0
	started := time.Now()
	var prev time.Time
	err := feed(func(a *botscope.Attack) error {
		if *speedup > 0 && !prev.IsZero() {
			if gap := a.Start.Sub(prev); gap > 0 {
				time.Sleep(time.Duration(float64(gap) / *speedup))
			}
		}
		prev = a.Start
		if err := sink.ingest(a); err != nil {
			return err
		}
		n++
		if *every > 0 && n%*every == 0 {
			fmt.Fprintf(os.Stderr, "fed %d attacks (event time %s)\n", n, a.Start.UTC().Format(time.RFC3339))
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("after %d attacks: %w", n, err)
	}
	if err := sink.flush(); err != nil {
		return fmt.Errorf("after %d attacks: %w", n, err)
	}

	elapsed := time.Since(started)
	rate := float64(n) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "fed %d attacks in %s (%.0f attacks/sec)\n", n, elapsed.Round(time.Millisecond), rate)
	return sink.report(stdout)
}

// feedFromFile streams a CSV or JSONL attack file through fn.
func feedFromFile(path, format string, fn func(*botscope.Attack) error) error {
	if format == "" {
		switch filepath.Ext(path) {
		case ".csv":
			format = "csv"
		case ".jsonl", ".json":
			format = "jsonl"
		default:
			return fmt.Errorf("cannot infer format from %q; pass -format csv or jsonl", path)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "csv":
		return botscope.DecodeCSV(f, fn)
	case "jsonl":
		return botscope.DecodeJSONL(f, fn)
	default:
		return fmt.Errorf("unknown format %q (want csv or jsonl)", format)
	}
}

// feedSink abstracts where replayed attacks land: an in-process analyzer or
// a remote botserve's ingest endpoint.
type feedSink interface {
	ingest(a *botscope.Attack) error
	flush() error
	report(w io.Writer) error
}

// localSink ingests into an in-process streaming analyzer.
type localSink struct {
	analyzer *botscope.StreamAnalyzer
}

func (s *localSink) ingest(a *botscope.Attack) error { return s.analyzer.Ingest(a) }
func (s *localSink) flush() error                    { return nil }

func (s *localSink) report(w io.Writer) error {
	snap := s.analyzer.Snapshot()
	t := report.NewTable("live snapshot", "metric", "value")
	t.SetAlign(1, report.AlignRight)
	t.AddRow("attacks ingested", report.FormatInt(snap.Ingested))
	t.AddRow("active attacks", report.FormatInt(snap.ActiveAttacks))
	t.AddRow("peak concurrent", report.FormatInt(snap.Load.Peak))
	t.AddRow("daily max", report.FormatInt(snap.Daily.Max))
	t.AddRow("interval median (s)", fmt.Sprintf("%.0f", snap.Intervals.Median))
	t.AddRow("duration median (s)", fmt.Sprintf("%.0f", snap.Durations.Median))
	t.AddRow("collaborations (intra)", report.FormatInt(snap.Collaborations.TotalIntra))
	t.AddRow("collaborations (inter)", report.FormatInt(snap.Collaborations.TotalInter))
	_, err := fmt.Fprint(w, t.String())
	return err
}

// remoteSink batches attacks as JSONL and POSTs them to /api/ingest.
type remoteSink struct {
	base  string
	buf   bytes.Buffer
	batch []*botscope.Attack
	total int
}

func (s *remoteSink) ingest(a *botscope.Attack) error {
	s.batch = append(s.batch, a)
	if len(s.batch) < ingestBatch {
		return nil
	}
	return s.flush()
}

func (s *remoteSink) flush() error {
	if len(s.batch) == 0 {
		return nil
	}
	s.buf.Reset()
	if err := botscope.WriteJSONL(&s.buf, s.batch); err != nil {
		return err
	}
	resp, err := http.Post(s.base+"/api/ingest", "application/jsonl", &s.buf)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest: %s: %.300s", resp.Status, body)
	}
	s.total += len(s.batch)
	s.batch = s.batch[:0]
	return nil
}

func (s *remoteSink) report(w io.Writer) error {
	resp, err := http.Get(s.base + "/api/live/summary")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("live summary: %s", resp.Status)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
