package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"botscope/internal/benchio"
)

// TestRunDirectCluster smoke-tests the whole harness in-process: a small
// client fleet over a 2-shard tier with churn enabled, landing a report
// with latency quantiles at the next trajectory index.
func TestRunDirectCluster(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-mode", "direct", "-shards", "2",
		"-clients", "32", "-duration", "400ms",
		"-scale", "0.01", "-seed", "3",
		"-churn", "120ms",
		"-dir", dir,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep benchio.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != benchio.Schema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Load == nil {
		t.Fatal("report has no load section")
	}
	if rep.Load.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if rep.Load.Clients != 32 || rep.Load.Shards != 2 || rep.Load.Mode != "direct" {
		t.Errorf("load deployment = %+v", rep.Load)
	}
	if rep.Load.LatencyMsP50 <= 0 || rep.Load.LatencyMsP99 < rep.Load.LatencyMsP50 ||
		rep.Load.LatencyMsP999 < rep.Load.LatencyMsP99 {
		t.Errorf("quantiles not monotone: p50=%v p99=%v p999=%v",
			rep.Load.LatencyMsP50, rep.Load.LatencyMsP99, rep.Load.LatencyMsP999)
	}
	if len(rep.Load.Endpoints) == 0 {
		t.Error("no per-endpoint stats")
	}
	// Churned queries may degrade (flagged by header) but must not error:
	// every request either succeeds or is counted.
	if rep.Load.ErrorRate > 0.01 {
		t.Errorf("error rate %.4f under churn", rep.Load.ErrorRate)
	}
}

// TestRunBadFlags covers the argument guards.
func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-mode", "teleport"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(context.Background(), []string{"-mode", "direct", "-shards", "1", "-churn", "1s"}, &out); err == nil {
		t.Error("churn without a multi-shard cluster accepted")
	}
}
