// Command botload load-tests the live serve tier and records the latency
// distribution it sustained into the BENCH_<n>.json trajectory.
//
// It spins up thousands of concurrent clients that hammer the /api/live/*
// query endpoints for a fixed window, then reports p50/p99/p999 latency,
// throughput, and error rate. Two modes:
//
//   - direct (default): boots the serve tier in-process — an N-shard
//     cluster behind its HTTP handler (or the single-process server with
//     -shards 0) — and drives the handler without kernel sockets, so
//     10k+ concurrent clients measure the software stack, not the
//     loopback.
//   - http: drives a running botserve over real HTTP at -addr.
//
// Usage:
//
//	botload -shards 4 -clients 10000 -duration 10s
//	botload -shards 2 -clients 200 -churn 2s        # leave/rejoin mid-load
//	botload -mode http -addr http://localhost:8080 -clients 500
//	botload -clients 10000 -assert-p99 50ms         # gate for CI
//
// The feed is a seeded synthetic workload ingested before the measurement
// window, so every run queries the same analytics state.
//
// Latencies are closed-loop wall-clock: when the client count
// oversubscribes the CPUs the tail quantiles include scheduler queueing
// under saturation, which is the latency a real client would see — judge
// the tier by p50/p99 and the error rate, and compare runs only on
// equally provisioned hosts.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"botscope/internal/benchio"
	"botscope/internal/cluster"
	"botscope/internal/dataset"
	"botscope/internal/serve"
	"botscope/internal/synth"
)

// defaultEndpoints is the live query mix each client cycles through.
const defaultEndpoints = "/api/live/summary,/api/live/daily,/api/live/intervals,/api/live/durations,/api/live/load,/api/live/collaborations"

func main() {
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "botload:", err)
		os.Exit(1)
	}
}

// target abstracts how a client issues one request: in-process handler
// dispatch or a real HTTP round trip. ctx carries the load window's
// deadline into every request so a cancelled run stops in-flight work.
type target interface {
	do(ctx context.Context, method, path string, body io.Reader) (status int, err error)
}

// handlerTarget drives an http.Handler in-process with a throwaway
// response writer, so client concurrency is bounded by goroutines, not
// sockets.
type handlerTarget struct{ h http.Handler }

// nullWriter discards the response body and keeps only the status.
type nullWriter struct {
	hdr    http.Header
	status int
}

func (w *nullWriter) Header() http.Header { return w.hdr }
func (w *nullWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}
func (w *nullWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(b), nil
}

func (t handlerTarget) do(ctx context.Context, method, path string, body io.Reader) (int, error) {
	req := httptest.NewRequest(method, path, body).WithContext(ctx)
	w := &nullWriter{hdr: make(http.Header)}
	t.h.ServeHTTP(w, req)
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.status, nil
}

// httpTarget drives a live server over the network.
type httpTarget struct {
	base   string
	client *http.Client
}

func (t httpTarget) do(ctx context.Context, method, path string, body io.Reader) (int, error) {
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, body)
	if err != nil {
		return 0, err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// admin is the shard membership surface the churn loop needs; in direct
// mode the frontend serves it without HTTP.
type admin interface {
	ShardLeave(ctx context.Context, id int) error
	ShardJoin(ctx context.Context, id int) error
}

// httpAdmin churns shards through the management routes.
type httpAdmin struct{ t target }

func (a httpAdmin) ShardLeave(ctx context.Context, id int) error {
	st, err := a.t.do(ctx, http.MethodPost, fmt.Sprintf("/api/cluster/shards/%d/leave", id), nil)
	if err == nil && st != http.StatusOK {
		err = fmt.Errorf("leave shard %d: status %d", id, st)
	}
	return err
}

func (a httpAdmin) ShardJoin(ctx context.Context, id int) error {
	st, err := a.t.do(ctx, http.MethodPost, fmt.Sprintf("/api/cluster/shards/%d/join", id), nil)
	if err == nil && st != http.StatusOK {
		err = fmt.Errorf("join shard %d: status %d", id, st)
	}
	return err
}

// clientStats is one worker's tally; workers never share state mid-run.
type clientStats struct {
	latencies []time.Duration
	requests  []int64 // per endpoint index
	errors    []int64 // per endpoint index
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("botload", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "direct", "direct (in-process tier) or http (drive -addr)")
		addr      = fs.String("addr", "http://localhost:8080", "base URL for -mode http")
		shards    = fs.Int("shards", 4, "direct mode: cluster shard count (0 = single-process server)")
		clients   = fs.Int("clients", 10000, "concurrent clients")
		duration  = fs.Duration("duration", 10*time.Second, "measurement window")
		endpoints = fs.String("endpoints", defaultEndpoints, "comma-separated query paths each client cycles")
		seed      = fs.Int64("seed", 1, "feed generation seed")
		scale     = fs.Float64("scale", 0.05, "feed scale; 1.0 = paper size")
		churn     = fs.Duration("churn", 0, "leave+rejoin one shard at this period mid-load (0 = off)")
		assertP99 = fs.Duration("assert-p99", 0, "fail when p99 latency exceeds this (0 = off)")
		dir       = fs.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
		out       = fs.String("out", "", "explicit output path (overrides auto-numbering)")
		note      = fs.String("note", "", "free-form note recorded in the report")
		commit    = fs.String("commit", "", "VCS revision recorded in the report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := strings.Split(*endpoints, ",")
	for i := range paths {
		paths[i] = strings.TrimSpace(paths[i])
	}

	rep := &benchio.Report{
		Schema:      benchio.Schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Commit:      *commit,
		Scale:       *scale,
		Seed:        *seed,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note:        *note,
	}

	// Build the target tier.
	var (
		tgt     target
		churner admin
	)
	switch *mode {
	case "http":
		tgt = httpTarget{base: strings.TrimRight(*addr, "/"), client: &http.Client{Timeout: 30 * time.Second}}
		churner = httpAdmin{t: tgt}
	case "direct":
		h, front, err := buildTier(ctx, *shards)
		if err != nil {
			return err
		}
		tgt = handlerTarget{h: h}
		if front != nil {
			churner = front
		}
	default:
		return fmt.Errorf("unknown mode %q (want direct or http)", *mode)
	}

	// Pre-ingest the seeded feed so queries hit populated analytics.
	feedStart := time.Now()
	records, err := ingestFeed(ctx, tgt, *seed, *scale)
	if err != nil {
		return err
	}
	rep.Phases = append(rep.Phases, benchio.Phase{
		Name: "load_feed", Seconds: time.Since(feedStart).Seconds(),
		Detail: fmt.Sprintf("%d records (seed %d scale %g)", records, *seed, *scale),
	})
	fmt.Fprintf(stdout, "feed: %d records in %.2fs\n", records, time.Since(feedStart).Seconds())

	// Optional churn loop: gracefully bounce the highest shard id.
	loadCtx, stopLoad := context.WithTimeout(ctx, *duration)
	defer stopLoad()
	var churnWG sync.WaitGroup
	if *churn > 0 {
		if churner == nil || *shards < 2 {
			return fmt.Errorf("-churn needs a cluster (direct mode with -shards >= 2, or http mode)")
		}
		victim := *shards - 1
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			ticker := time.NewTicker(*churn)
			defer ticker.Stop()
			// One reusable timer for the mid-cycle rejoin wait: time.After
			// here would allocate a timer per churn cycle that lives until
			// it fires. The select below always drains rejoin.C.
			rejoin := time.NewTimer(*churn)
			if !rejoin.Stop() {
				<-rejoin.C
			}
			defer rejoin.Stop()
			for {
				select {
				case <-loadCtx.Done():
					return
				case <-ticker.C:
				}
				if err := churner.ShardLeave(loadCtx, victim); err != nil {
					fmt.Fprintf(os.Stderr, "botload: churn leave: %v\n", err)
					continue
				}
				rejoin.Reset(*churn / 2)
				select {
				case <-loadCtx.Done():
					// Rejoin on the way out so the tier is whole afterwards;
					// loadCtx is done, so use the run's own context.
					_ = churner.ShardJoin(ctx, victim)
					return
				case <-rejoin.C:
				}
				if err := churner.ShardJoin(loadCtx, victim); err != nil {
					fmt.Fprintf(os.Stderr, "botload: churn join: %v\n", err)
				}
			}
		}()
	}

	// The measurement window: every client cycles the endpoint mix,
	// starting at its own offset so the mix stays uniform.
	fmt.Fprintf(stdout, "load: %d clients for %v (%s mode)\n", *clients, *duration, *mode)
	stats := make([]clientStats, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			st.latencies = make([]time.Duration, 0, 1024)
			st.requests = make([]int64, len(paths))
			st.errors = make([]int64, len(paths))
			for i := c; ; i++ {
				if loadCtx.Err() != nil {
					return
				}
				ep := i % len(paths)
				t0 := time.Now()
				status, err := tgt.do(loadCtx, http.MethodGet, paths[ep], nil)
				lat := time.Since(t0)
				st.latencies = append(st.latencies, lat)
				st.requests[ep]++
				if err != nil || status != http.StatusOK {
					st.errors[ep]++
				}
			}
		}(c)
	}
	wg.Wait()
	churnWG.Wait()
	elapsed := time.Since(start)

	load := aggregate(stats, paths, elapsed)
	load.Mode = *mode
	load.Shards = *shards
	load.Clients = *clients
	rep.Load = load
	rep.Phases = append(rep.Phases, benchio.Phase{
		Name: "load_run", Seconds: elapsed.Seconds(),
		Detail: fmt.Sprintf("%d clients, %d requests", *clients, load.Requests),
	})

	fmt.Fprintf(stdout, "done: %d requests (%.0f/s), errors %.4f%%\n",
		load.Requests, load.RequestsPerSec, load.ErrorRate*100)
	fmt.Fprintf(stdout, "latency: p50 %.3fms  p99 %.3fms  p999 %.3fms  max %.3fms\n",
		load.LatencyMsP50, load.LatencyMsP99, load.LatencyMsP999, load.LatencyMsMax)

	path := *out
	if path == "" {
		if path, err = benchio.NextBenchPath(*dir); err != nil {
			return err
		}
	}
	if err := benchio.WriteReport(rep, path); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)

	if *assertP99 > 0 && load.LatencyMsP99 > float64(*assertP99)/float64(time.Millisecond) {
		return fmt.Errorf("p99 latency %.3fms exceeds -assert-p99 %v", load.LatencyMsP99, *assertP99)
	}
	if load.Requests == 0 {
		return fmt.Errorf("no requests completed within the window")
	}
	return nil
}

// buildTier boots the in-process serve tier: an n-shard cluster behind
// its live HTTP face, or the single-process server when n == 0. The
// returned frontend is nil for the single-process tier.
func buildTier(ctx context.Context, n int) (http.Handler, *cluster.Frontend, error) {
	if n == 0 {
		store, err := synth.GenerateStore(synth.Config{Seed: 1, Scale: 0.01})
		if err != nil {
			return nil, nil, err
		}
		return serve.New(store, 0.01), nil, nil
	}
	local, err := cluster.StartLocal(ctx, n, 0, 0, 0)
	if err != nil {
		return nil, nil, err
	}
	go func() {
		<-ctx.Done()
		local.Close()
	}()
	h := serve.NewLiveServer(local.Frontend, serve.WithClusterAdmin(local.Frontend))
	return h, local.Frontend, nil
}

// ingestFeed generates the seeded workload and streams it into the tier
// as JSONL, returning the record count.
func ingestFeed(ctx context.Context, tgt target, seed int64, scale float64) (int, error) {
	store, err := synth.GenerateStore(synth.Config{Seed: seed, Scale: scale})
	if err != nil {
		return 0, err
	}
	attacks := store.Attacks()
	var buf bytes.Buffer
	if err := dataset.WriteJSONL(&buf, attacks); err != nil {
		return 0, err
	}
	status, err := tgt.do(ctx, http.MethodPost, "/api/ingest", &buf)
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("feed ingest: status %d", status)
	}
	return len(attacks), nil
}

// aggregate folds per-client tallies into the trajectory's load report.
func aggregate(stats []clientStats, paths []string, elapsed time.Duration) *benchio.LoadReport {
	total := 0
	for i := range stats {
		total += len(stats[i].latencies)
	}
	all := make([]time.Duration, 0, total)
	perEP := make([]benchio.EndpointStat, len(paths))
	for i := range perEP {
		perEP[i].Path = paths[i]
	}
	var errs int64
	for i := range stats {
		all = append(all, stats[i].latencies...)
		for ep := range paths {
			if ep < len(stats[i].requests) {
				perEP[ep].Requests += stats[i].requests[ep]
				perEP[ep].Errors += stats[i].errors[ep]
				errs += stats[i].errors[ep]
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	quantile := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(q * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Millisecond)
	}
	load := &benchio.LoadReport{
		DurationSeconds: elapsed.Seconds(),
		Requests:        int64(len(all)),
		Errors:          errs,
		LatencyMsP50:    quantile(0.50),
		LatencyMsP99:    quantile(0.99),
		LatencyMsP999:   quantile(0.999),
		Endpoints:       perEP,
	}
	if len(all) > 0 {
		load.LatencyMsMax = float64(all[len(all)-1]) / float64(time.Millisecond)
		load.ErrorRate = float64(errs) / float64(len(all))
	}
	if sec := elapsed.Seconds(); sec > 0 {
		load.RequestsPerSec = float64(len(all)) / sec
	}
	return load
}
