package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"botscope/internal/benchio"
)

// WallBudget is an absolute wall-clock ceiling for one phase of the
// committed BENCH trajectory at one workload scale. The phase must exist
// in at least one report at that scale: a budget whose phase disappears
// from the trajectory fails the gate rather than silently passing.
type WallBudget struct {
	Phase      string  `json:"phase"`
	Scale      float64 `json:"scale"`
	MaxSeconds float64 `json:"max_seconds"`
}

// benchRecord is one BENCH_<n>.json loaded from the trajectory directory.
type benchRecord struct {
	index int
	path  string
	rep   benchio.Report
}

var trajName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// runTrajectory enforces wall-clock regression budgets over the committed
// BENCH_<n>.json sequence. Reports are grouped by (scale, GOMAXPROCS) so
// only like-for-like runs compare, then the NEWEST pair in each group is
// checked phase by phase: a phase whose time grew by more than
// maxRegress-fold AND by more than minSeconds absolute is a violation.
// Only the newest pair is enforced because older reports are accepted
// history — they were gated when they were committed, and re-judging them
// would turn any grandfathered slowdown into a permanently red gate. The
// absolute floor keeps timer noise on sub-50ms phases from tripping the
// ratio gate. Optional absolute budgets (wallBudgetPath) pin specific
// phases — e.g. snapshot_load at scale 10 — to a hard ceiling, checked
// against the newest matching report.
func runTrajectory(dir string, maxRegress, minSeconds float64, wallBudgetPath string, stdout io.Writer) error {
	records, err := loadTrajectory(dir)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("%s: no BENCH_<n>.json reports found", dir)
	}

	var failures []string

	// Group by (scale, gomaxprocs) so a scale-0.05 load run never compares
	// against a scale-10 pipeline run, and a 4-core record never compares
	// against a 1-core one.
	type groupKey struct {
		scale float64
		procs int
	}
	groups := make(map[groupKey][]benchRecord)
	var keys []groupKey
	for _, r := range records {
		k := groupKey{r.rep.Scale, r.rep.GOMAXPROCS}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], r)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].scale != keys[j].scale {
			return keys[i].scale < keys[j].scale
		}
		return keys[i].procs < keys[j].procs
	})

	checked := 0
	for _, k := range keys {
		group := groups[k]
		if len(group) < 2 {
			continue
		}
		prev, cur := group[len(group)-2], group[len(group)-1]
		fmt.Fprintf(stdout, "%s -> %s (scale %g, %d proc)\n",
			filepath.Base(prev.path), filepath.Base(cur.path), k.scale, k.procs)
		checked++
		failures = append(failures, comparePhases("phase", prev, cur, maxRegress, minSeconds, stdout)...)
		failures = append(failures, compareNamed("experiment", prev.rep.Experiments, cur.rep.Experiments,
			prev, cur, maxRegress, minSeconds, stdout)...)
	}
	if checked == 0 {
		fmt.Fprintln(stdout, "no same-scale report pairs to compare yet")
	}

	if wallBudgetPath != "" {
		wallFailures, err := checkWallBudgets(wallBudgetPath, records, stdout)
		if err != nil {
			return err
		}
		failures = append(failures, wallFailures...)
	}

	if len(failures) > 0 {
		return fmt.Errorf("wall-clock budget violations:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// loadTrajectory reads every BENCH_<n>.json in dir, sorted by index.
func loadTrajectory(dir string) ([]benchRecord, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var records []benchRecord
	for _, e := range entries {
		m := trajName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep benchio.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		records = append(records, benchRecord{index: n, path: path, rep: rep})
	}
	sort.Slice(records, func(i, j int) bool { return records[i].index < records[j].index })
	return records, nil
}

// comparePhases checks cur's pipeline phases against prev's.
func comparePhases(kind string, prev, cur benchRecord, maxRegress, minSeconds float64, stdout io.Writer) []string {
	return compareNamed(kind, prev.rep.Phases, cur.rep.Phases, prev, cur, maxRegress, minSeconds, stdout)
}

// compareNamed flags every name present in both slices whose time grew by
// more than maxRegress-fold and by more than minSeconds absolute.
func compareNamed(kind string, prevPhases, curPhases []benchio.Phase, prev, cur benchRecord,
	maxRegress, minSeconds float64, stdout io.Writer) []string {

	prevSec := make(map[string]float64, len(prevPhases))
	for _, p := range prevPhases {
		prevSec[p.Name] = p.Seconds
	}
	var failures []string
	for _, p := range curPhases {
		before, ok := prevSec[p.Name]
		if !ok || before <= 0 {
			continue
		}
		ratio := p.Seconds / before
		status := "ok"
		if ratio > maxRegress && p.Seconds-before > minSeconds {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s %s: %.3fs -> %.3fs (%.2fx > %.2fx budget, %s -> %s)",
				kind, p.Name, before, p.Seconds, ratio, maxRegress,
				filepath.Base(prev.path), filepath.Base(cur.path)))
		}
		fmt.Fprintf(stdout, "  %-24s %10.3fs -> %10.3fs  %6.2fx  %s\n", p.Name, before, p.Seconds, ratio, status)
	}
	return failures
}

// checkWallBudgets enforces absolute per-phase ceilings against the newest
// trajectory report matching each budget's scale.
func checkWallBudgets(path string, records []benchRecord, stdout io.Writer) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var budgets []WallBudget
	if err := json.Unmarshal(data, &budgets); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("%s: no wall budgets defined", path)
	}

	var failures []string
	for _, b := range budgets {
		sec, from, found := -1.0, "", false
		for _, r := range records { // index order: the last match wins
			if r.rep.Scale != b.Scale {
				continue
			}
			for _, p := range phasesAndExperiments(r.rep) {
				if p.Name == b.Phase {
					sec, from, found = p.Seconds, filepath.Base(r.path), true
				}
			}
		}
		if !found {
			failures = append(failures, fmt.Sprintf("wall budget %s @ scale %g: no trajectory report records this phase",
				b.Phase, b.Scale))
			continue
		}
		status := "ok"
		if sec > b.MaxSeconds {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("wall budget %s @ scale %g: %.3fs exceeds %.3fs ceiling (%s)",
				b.Phase, b.Scale, sec, b.MaxSeconds, from))
		}
		fmt.Fprintf(stdout, "  %-24s scale %-6g %10.3fs (ceiling %.3fs, %s)  %s\n",
			b.Phase, b.Scale, sec, b.MaxSeconds, from, status)
	}
	return failures, nil
}

// phasesAndExperiments flattens a report's timed sections for budget lookup.
func phasesAndExperiments(rep benchio.Report) []benchio.Phase {
	out := make([]benchio.Phase, 0, len(rep.Phases)+len(rep.Experiments))
	out = append(out, rep.Phases...)
	out = append(out, rep.Experiments...)
	return out
}
