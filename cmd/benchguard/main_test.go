package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: botscope/internal/timeseries
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFit-4           	     138	   8123456 ns/op	   98896 B/op	      20 allocs/op
BenchmarkAutoFit-4       	      66	  17200000 ns/op	   52089 B/op	      82 allocs/op
BenchmarkDispersionSeries 	   10000	    116598 ns/op	    9024 B/op	       8 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Result{
		"BenchmarkFit":              {Name: "BenchmarkFit", AllocsPerOp: 20, BytesPerOp: 98896},
		"BenchmarkAutoFit":          {Name: "BenchmarkAutoFit", AllocsPerOp: 82, BytesPerOp: 52089},
		"BenchmarkDispersionSeries": {Name: "BenchmarkDispersionSeries", AllocsPerOp: 8, BytesPerOp: 9024},
	}
	if len(results) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(results), len(want), results)
	}
	for name, w := range want {
		if got := results[name]; got != w {
			t.Errorf("%s = %+v, want %+v", name, got, w)
		}
	}
}

func TestParseBenchKeepsWorstOfRepeats(t *testing.T) {
	repeated := "BenchmarkFit-4 10 100 ns/op 50 B/op 3 allocs/op\n" +
		"BenchmarkFit-4 10 100 ns/op 90 B/op 1 allocs/op\n"
	results, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	got := results["BenchmarkFit"]
	if got.AllocsPerOp != 3 || got.BytesPerOp != 90 {
		t.Errorf("worst-of = %+v, want allocs 3 / bytes 90", got)
	}
}

func writeThresholds(t *testing.T, budgets map[string]Threshold) string {
	t.Helper()
	data, err := json.Marshal(budgets)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "thresholds.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeBenchOutput(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.out")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPassesWithinBudget(t *testing.T) {
	th := writeThresholds(t, map[string]Threshold{
		"BenchmarkFit": {MaxAllocsPerOp: 40, MaxBytesPerOp: 200000},
	})
	out := writeBenchOutput(t, sampleOutput)
	var buf bytes.Buffer
	if err := run([]string{"-in", out, "-thresholds", th}, &buf); err != nil {
		t.Fatalf("run failed within budget: %v\n%s", err, buf.String())
	}
}

func TestRunFailsOverBudget(t *testing.T) {
	th := writeThresholds(t, map[string]Threshold{
		"BenchmarkFit": {MaxAllocsPerOp: 10, MaxBytesPerOp: 200000},
	})
	out := writeBenchOutput(t, sampleOutput)
	var buf bytes.Buffer
	err := run([]string{"-in", out, "-thresholds", th}, &buf)
	if err == nil || !strings.Contains(err.Error(), "allocs/op exceeds budget") {
		t.Fatalf("run = %v, want allocs budget violation", err)
	}
}

func TestUpdateRewritesThresholdsWithHeadroom(t *testing.T) {
	th := writeThresholds(t, map[string]Threshold{
		"BenchmarkFit":              {MaxAllocsPerOp: 1, MaxBytesPerOp: 1},
		"BenchmarkDispersionSeries": {MaxAllocsPerOp: 1, MaxBytesPerOp: 1},
	})
	out := writeBenchOutput(t, sampleOutput)
	var buf bytes.Buffer
	if err := run([]string{"-in", out, "-thresholds", th, "-update"}, &buf); err != nil {
		t.Fatalf("update failed: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(th)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]Threshold
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("rewritten file is not valid JSON: %v\n%s", err, data)
	}
	want := map[string]Threshold{
		// Fit: 20 allocs +25% = 25; 98896 B doubled -> next pow2 = 262144.
		"BenchmarkFit": {MaxAllocsPerOp: 25, MaxBytesPerOp: 262144},
		// DispersionSeries: 8 allocs + minimum slack 4 = 12; 9024*2 -> 32768.
		"BenchmarkDispersionSeries": {MaxAllocsPerOp: 12, MaxBytesPerOp: 32768},
	}
	if len(got) != len(want) {
		t.Fatalf("rewrote %d budgets, want %d: %+v", len(got), len(want), got)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %+v, want %+v", name, got[name], w)
		}
	}
	// The regenerated file must itself pass enforcement on the same run.
	buf.Reset()
	if err := run([]string{"-in", out, "-thresholds", th}, &buf); err != nil {
		t.Fatalf("regenerated thresholds do not pass their own run: %v\n%s", err, buf.String())
	}
}

func TestUpdateFailsOnMissingBenchmark(t *testing.T) {
	th := writeThresholds(t, map[string]Threshold{
		"BenchmarkRenamedAway": {MaxAllocsPerOp: 10, MaxBytesPerOp: 100},
	})
	out := writeBenchOutput(t, sampleOutput)
	var buf bytes.Buffer
	err := run([]string{"-in", out, "-thresholds", th, "-update"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "missing from run") {
		t.Fatalf("update = %v, want missing-benchmark failure", err)
	}
}

func TestRunFailsOnMissingBenchmark(t *testing.T) {
	th := writeThresholds(t, map[string]Threshold{
		"BenchmarkRenamedAway": {MaxAllocsPerOp: 10, MaxBytesPerOp: 100},
	})
	out := writeBenchOutput(t, sampleOutput)
	var buf bytes.Buffer
	err := run([]string{"-in", out, "-thresholds", th}, &buf)
	if err == nil || !strings.Contains(err.Error(), "missing from run") {
		t.Fatalf("run = %v, want missing-benchmark failure", err)
	}
}
