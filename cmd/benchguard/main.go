// Command benchguard enforces the allocation budgets of the hot-kernel
// micro-benchmarks. It parses `go test -bench -benchmem` output and fails
// when any benchmark named in the threshold file exceeds its allocs/op or
// bytes/op ceiling — or when an expected benchmark is missing from the
// run, so a renamed benchmark cannot silently drop its guard.
//
// Usage:
//
//	go test -bench '...' -benchmem ./... > bench.out
//	benchguard -in bench.out -thresholds bench_thresholds.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Threshold is the budget for one benchmark, keyed by its base name
// (without the -GOMAXPROCS suffix).
type Threshold struct {
	MaxAllocsPerOp int64 `json:"max_allocs_per_op"`
	MaxBytesPerOp  int64 `json:"max_bytes_per_op"`
}

// Result is one parsed -benchmem line.
type Result struct {
	Name        string
	AllocsPerOp int64
	BytesPerOp  int64
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "benchmark output file (default stdin)")
		thresholds = fs.String("thresholds", "bench_thresholds.json", "JSON file of per-benchmark budgets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	data, err := os.ReadFile(*thresholds)
	if err != nil {
		return err
	}
	budgets := make(map[string]Threshold)
	if err := json.Unmarshal(data, &budgets); err != nil {
		return fmt.Errorf("%s: %w", *thresholds, err)
	}
	if len(budgets) == 0 {
		return fmt.Errorf("%s: no budgets defined", *thresholds)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	results, err := parseBench(r)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		budget := budgets[name]
		res, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: expected benchmark missing from run", name))
			continue
		}
		status := "ok"
		if res.AllocsPerOp > budget.MaxAllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds budget %d",
				name, res.AllocsPerOp, budget.MaxAllocsPerOp))
			status = "FAIL"
		}
		if res.BytesPerOp > budget.MaxBytesPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d B/op exceeds budget %d",
				name, res.BytesPerOp, budget.MaxBytesPerOp))
			status = "FAIL"
		}
		fmt.Fprintf(stdout, "%-32s %8d allocs/op (budget %d)  %10d B/op (budget %d)  %s\n",
			name, res.AllocsPerOp, budget.MaxAllocsPerOp, res.BytesPerOp, budget.MaxBytesPerOp, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation budget violations:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// parseBench extracts -benchmem results keyed by base benchmark name.
// A benchmark appearing multiple times (e.g. several -count runs) keeps
// its worst observation, so flaky near-budget runs fail rather than pass.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{Name: name, AllocsPerOp: -1, BytesPerOp: -1}
		for i := 2; i < len(fields)-1; i++ {
			switch fields[i+1] {
			case "B/op":
				if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
					res.BytesPerOp = v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
					res.AllocsPerOp = v
				}
			}
		}
		if res.AllocsPerOp < 0 || res.BytesPerOp < 0 {
			continue // not a -benchmem line
		}
		if prev, ok := out[name]; ok {
			if prev.AllocsPerOp > res.AllocsPerOp {
				res.AllocsPerOp = prev.AllocsPerOp
			}
			if prev.BytesPerOp > res.BytesPerOp {
				res.BytesPerOp = prev.BytesPerOp
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}
