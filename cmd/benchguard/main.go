// Command benchguard enforces the allocation budgets of the hot-kernel
// micro-benchmarks. It parses `go test -bench -benchmem` output and fails
// when any benchmark named in the threshold file exceeds its allocs/op or
// bytes/op ceiling — or when an expected benchmark is missing from the
// run, so a renamed benchmark cannot silently drop its guard.
//
// Usage:
//
//	go test -bench '...' -benchmem ./... > bench.out
//	benchguard -in bench.out -thresholds bench_thresholds.json
//
// With -update, instead of enforcing, benchguard rewrites the threshold
// file from the run: each budgeted benchmark gets its observed allocs/op
// plus 25% headroom (minimum +4) and its observed bytes/op rounded up to
// the next power of two at least 2x the observation. The benchmark set is
// taken from the existing file, so a kernel cannot gain or lose its guard
// by accident; a budgeted benchmark missing from the run is still an error.
//
// With -trajectory DIR, benchguard instead enforces wall-clock regression
// budgets over the committed BENCH_<n>.json sequence: the two newest
// reports at the same scale and GOMAXPROCS are compared phase by phase,
// and a phase that slowed by more than -max-regress-fold (and by more
// than -min-seconds absolute, to ignore timer noise) fails the gate. An
// optional -wall-budgets file adds hard per-phase ceilings, e.g. pinning
// snapshot_load at scale 10 under 5 seconds:
//
//	benchguard -trajectory . -wall-budgets bench_wall_budgets.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Threshold is the budget for one benchmark, keyed by its base name
// (without the -GOMAXPROCS suffix).
type Threshold struct {
	MaxAllocsPerOp int64 `json:"max_allocs_per_op"`
	MaxBytesPerOp  int64 `json:"max_bytes_per_op"`
}

// Result is one parsed -benchmem line.
type Result struct {
	Name        string
	AllocsPerOp int64
	BytesPerOp  int64
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "benchmark output file (default stdin)")
		thresholds = fs.String("thresholds", "bench_thresholds.json", "JSON file of per-benchmark budgets")
		update     = fs.Bool("update", false, "rewrite the threshold file from this run with headroom instead of enforcing")

		trajectory  = fs.String("trajectory", "", "enforce wall-clock budgets over the BENCH_<n>.json trajectory in this directory")
		maxRegress  = fs.Float64("max-regress", 1.5, "max slowdown ratio between consecutive same-scale BENCH reports")
		minSeconds  = fs.Float64("min-seconds", 0.05, "ignore regressions smaller than this many absolute seconds")
		wallBudgets = fs.String("wall-budgets", "", "JSON file of absolute {phase, scale, max_seconds} ceilings (with -trajectory)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *trajectory != "" {
		return runTrajectory(*trajectory, *maxRegress, *minSeconds, *wallBudgets, stdout)
	}

	data, err := os.ReadFile(*thresholds)
	if err != nil {
		return err
	}
	budgets := make(map[string]Threshold)
	if err := json.Unmarshal(data, &budgets); err != nil {
		return fmt.Errorf("%s: %w", *thresholds, err)
	}
	if len(budgets) == 0 {
		return fmt.Errorf("%s: no budgets defined", *thresholds)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	results, err := parseBench(r)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)

	if *update {
		return updateThresholds(*thresholds, names, budgets, results, stdout)
	}

	var failures []string
	for _, name := range names {
		budget := budgets[name]
		res, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: expected benchmark missing from run", name))
			continue
		}
		status := "ok"
		if res.AllocsPerOp > budget.MaxAllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds budget %d",
				name, res.AllocsPerOp, budget.MaxAllocsPerOp))
			status = "FAIL"
		}
		if res.BytesPerOp > budget.MaxBytesPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d B/op exceeds budget %d",
				name, res.BytesPerOp, budget.MaxBytesPerOp))
			status = "FAIL"
		}
		fmt.Fprintf(stdout, "%-32s %8d allocs/op (budget %d)  %10d B/op (budget %d)  %s\n",
			name, res.AllocsPerOp, budget.MaxAllocsPerOp, res.BytesPerOp, budget.MaxBytesPerOp, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation budget violations:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// updateThresholds rewrites the threshold file from the observed results,
// keeping the existing benchmark set and applying headroom: allocs get
// +25% (minimum +4), bytes round up to the next power of two at least
// double the observation.
func updateThresholds(path string, names []string, budgets map[string]Threshold,
	results map[string]Result, stdout io.Writer) error {

	next := make(map[string]Threshold, len(budgets))
	for _, name := range names {
		res, ok := results[name]
		if !ok {
			return fmt.Errorf("%s: expected benchmark missing from run; cannot update its budget", name)
		}
		t := Threshold{
			MaxAllocsPerOp: allocHeadroom(res.AllocsPerOp),
			MaxBytesPerOp:  byteHeadroom(res.BytesPerOp),
		}
		next[name] = t
		fmt.Fprintf(stdout, "%-32s %8d allocs/op -> budget %d  %10d B/op -> budget %d\n",
			name, res.AllocsPerOp, t.MaxAllocsPerOp, res.BytesPerOp, t.MaxBytesPerOp)
	}
	var buf bytes.Buffer
	buf.WriteString("{\n")
	for i, name := range names {
		t := next[name]
		fmt.Fprintf(&buf, "  %q: { \"max_allocs_per_op\": %d, \"max_bytes_per_op\": %d }",
			name, t.MaxAllocsPerOp, t.MaxBytesPerOp)
		if i < len(names)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("}\n")
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// allocHeadroom budgets an allocation count with 25% headroom, at least +4.
func allocHeadroom(observed int64) int64 {
	slack := observed / 4
	if slack < 4 {
		slack = 4
	}
	return observed + slack
}

// byteHeadroom rounds up to the next power of two that is at least double
// the observation, matching the existing hand-set budgets' shape.
func byteHeadroom(observed int64) int64 {
	budget := int64(1024)
	for budget < observed*2 {
		budget *= 2
	}
	return budget
}

// parseBench extracts -benchmem results keyed by base benchmark name.
// A benchmark appearing multiple times (e.g. several -count runs) keeps
// its worst observation, so flaky near-budget runs fail rather than pass.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{Name: name, AllocsPerOp: -1, BytesPerOp: -1}
		for i := 2; i < len(fields)-1; i++ {
			switch fields[i+1] {
			case "B/op":
				if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
					res.BytesPerOp = v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
					res.AllocsPerOp = v
				}
			}
		}
		if res.AllocsPerOp < 0 || res.BytesPerOp < 0 {
			continue // not a -benchmem line
		}
		if prev, ok := out[name]; ok {
			if prev.AllocsPerOp > res.AllocsPerOp {
				res.AllocsPerOp = prev.AllocsPerOp
			}
			if prev.BytesPerOp > res.BytesPerOp {
				res.BytesPerOp = prev.BytesPerOp
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}
