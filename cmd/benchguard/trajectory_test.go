package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"botscope/internal/benchio"
)

// writeBench writes one BENCH_<n>.json into dir.
func writeBench(t *testing.T, dir string, n int, rep benchio.Report) {
	t.Helper()
	rep.Schema = benchio.Schema
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "BENCH_"+itoa(n)+".json")
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

func phases(pairs ...any) []benchio.Phase {
	var out []benchio.Phase
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, benchio.Phase{Name: pairs[i].(string), Seconds: pairs[i+1].(float64)})
	}
	return out
}

func TestTrajectoryPassesOnStableTimes(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 0, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 100.0, "runall", 50.0)})
	writeBench(t, dir, 1, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 110.0, "runall", 45.0)})
	var buf bytes.Buffer
	if err := run([]string{"-trajectory", dir}, &buf); err != nil {
		t.Fatalf("stable trajectory failed: %v\n%s", err, buf.String())
	}
}

func TestTrajectoryFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 0, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 100.0)})
	writeBench(t, dir, 1, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 200.0)})
	var buf bytes.Buffer
	err := run([]string{"-trajectory", dir}, &buf)
	if err == nil || !strings.Contains(err.Error(), "generate") {
		t.Fatalf("2x regression passed: %v\n%s", err, buf.String())
	}
}

func TestTrajectoryGrandfathersOldRegressions(t *testing.T) {
	// BENCH_0 -> BENCH_1 regressed 2x, but that pair is accepted history;
	// only the newest pair (BENCH_1 -> BENCH_2, stable) is enforced.
	dir := t.TempDir()
	writeBench(t, dir, 0, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 100.0)})
	writeBench(t, dir, 1, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 200.0)})
	writeBench(t, dir, 2, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 195.0)})
	var buf bytes.Buffer
	if err := run([]string{"-trajectory", dir}, &buf); err != nil {
		t.Fatalf("grandfathered regression failed the gate: %v\n%s", err, buf.String())
	}
}

func TestTrajectoryIgnoresTimerNoise(t *testing.T) {
	// 3x ratio but only 20ms absolute: under the -min-seconds floor.
	dir := t.TempDir()
	writeBench(t, dir, 0, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("store_indexes", 0.01)})
	writeBench(t, dir, 1, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("store_indexes", 0.03)})
	var buf bytes.Buffer
	if err := run([]string{"-trajectory", dir}, &buf); err != nil {
		t.Fatalf("sub-floor noise failed the gate: %v\n%s", err, buf.String())
	}
}

func TestTrajectorySkipsCrossScalePairs(t *testing.T) {
	// A scale-0.05 load run must never compare against a scale-10 pipeline
	// run even though the indexes are consecutive.
	dir := t.TempDir()
	writeBench(t, dir, 0, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 1.0)})
	writeBench(t, dir, 1, benchio.Report{Scale: 0.05, GOMAXPROCS: 1,
		Phases: phases("generate", 99.0)})
	var buf bytes.Buffer
	if err := run([]string{"-trajectory", dir}, &buf); err != nil {
		t.Fatalf("cross-scale pair compared: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no same-scale report pairs") {
		t.Fatalf("expected no comparable pairs, got:\n%s", buf.String())
	}
}

func TestTrajectoryComparesExperiments(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 0, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases:      phases("generate", 1.0),
		Experiments: phases("Table III", 2.0)})
	writeBench(t, dir, 1, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases:      phases("generate", 1.0),
		Experiments: phases("Table III", 8.0)})
	var buf bytes.Buffer
	err := run([]string{"-trajectory", dir}, &buf)
	if err == nil || !strings.Contains(err.Error(), "Table III") {
		t.Fatalf("experiment regression passed: %v\n%s", err, buf.String())
	}
}

func TestTrajectoryCustomRegressBudget(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 0, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 100.0)})
	writeBench(t, dir, 1, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 140.0)})
	var buf bytes.Buffer
	if err := run([]string{"-trajectory", dir}, &buf); err != nil {
		t.Fatalf("1.4x failed the default 1.5x budget: %v\n%s", err, buf.String())
	}
	buf.Reset()
	if err := run([]string{"-trajectory", dir, "-max-regress", "1.2"}, &buf); err == nil {
		t.Fatalf("1.4x passed a 1.2x budget:\n%s", buf.String())
	}
}

func writeWallBudgets(t *testing.T, budgets []WallBudget) string {
	t.Helper()
	data, err := json.Marshal(budgets)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wall.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWallBudgetEnforced(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 0, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("snapshot_load", 3.0)})
	wall := writeWallBudgets(t, []WallBudget{{Phase: "snapshot_load", Scale: 10, MaxSeconds: 5}})
	var buf bytes.Buffer
	if err := run([]string{"-trajectory", dir, "-wall-budgets", wall}, &buf); err != nil {
		t.Fatalf("within-ceiling budget failed: %v\n%s", err, buf.String())
	}

	tight := writeWallBudgets(t, []WallBudget{{Phase: "snapshot_load", Scale: 10, MaxSeconds: 2}})
	buf.Reset()
	err := run([]string{"-trajectory", dir, "-wall-budgets", tight}, &buf)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("over-ceiling budget passed: %v\n%s", err, buf.String())
	}
}

func TestWallBudgetUsesNewestReport(t *testing.T) {
	// BENCH_0 is over the ceiling but BENCH_1 (newer, same scale) is under:
	// the budget tracks the current state of the trajectory, not history.
	dir := t.TempDir()
	writeBench(t, dir, 0, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("snapshot_load", 9.0)})
	writeBench(t, dir, 1, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("snapshot_load", 3.0)})
	wall := writeWallBudgets(t, []WallBudget{{Phase: "snapshot_load", Scale: 10, MaxSeconds: 5}})
	var buf bytes.Buffer
	if err := run([]string{"-trajectory", dir, "-wall-budgets", wall}, &buf); err != nil {
		t.Fatalf("newest report is under the ceiling but the gate failed: %v\n%s", err, buf.String())
	}
}

func TestWallBudgetFailsWhenPhaseMissing(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 0, benchio.Report{Scale: 10, GOMAXPROCS: 1,
		Phases: phases("generate", 1.0)})
	wall := writeWallBudgets(t, []WallBudget{{Phase: "snapshot_load", Scale: 10, MaxSeconds: 5}})
	var buf bytes.Buffer
	err := run([]string{"-trajectory", dir, "-wall-budgets", wall}, &buf)
	if err == nil || !strings.Contains(err.Error(), "no trajectory report records this phase") {
		t.Fatalf("missing budgeted phase passed: %v\n%s", err, buf.String())
	}
}

func TestTrajectoryEmptyDirFails(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-trajectory", t.TempDir()}, &buf)
	if err == nil || !strings.Contains(err.Error(), "no BENCH") {
		t.Fatalf("empty trajectory dir passed: %v", err)
	}
}

func TestTrajectoryOnCommittedRecords(t *testing.T) {
	// The repo's own committed trajectory must pass the default gate —
	// this is the same invocation `make bench-trajectory` runs in CI.
	var buf bytes.Buffer
	if err := run([]string{"-trajectory", "../..", "-wall-budgets", "../../bench_wall_budgets.json"}, &buf); err != nil {
		t.Fatalf("committed BENCH trajectory violates the gate: %v\n%s", err, buf.String())
	}
}
