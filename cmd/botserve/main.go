// Command botserve exposes botscope analyses over HTTP as JSON.
//
// Usage:
//
//	botserve -addr :8080 -scale 0.1 -seed 1
//	botserve -addr :8080 -in attacks.csv
//
// Endpoints:
//
//	GET /healthz                           liveness
//	GET /api/summary                       Table III entity counts
//	GET /api/protocols                     Fig 1 breakdown
//	GET /api/daily                         Fig 2 daily series
//	GET /api/intervals[?family=pandora]    §III-B interval stats
//	GET /api/durations                     §III-C duration stats
//	GET /api/families                      per-family attack counts
//	GET /api/family/{name}/dispersion      §IV-A dispersion profile
//	GET /api/family/{name}/predict         Table IV forecast scores
//	GET /api/family/{name}/targets         Table V profile
//	GET /api/collaborations                Table VI
//	GET /api/chains                        §V-B multistage summary
//	GET /api/experiments                   experiment IDs
//	GET /api/experiments/{id}              one regenerated table/figure
//	POST /api/ingest                       stream JSONL attacks into the live analyzer
//	GET /api/live/summary                  live topline (always 200)
//	GET /api/live/daily                    live Fig 2 daily series
//	GET /api/live/intervals                live §III-B interval stats
//	GET /api/live/durations                live §III-C duration stats
//	GET /api/live/load                     live §II-B concurrent-load stats
//	GET /api/live/collaborations           live §V candidates (Table VI counters)
//
// botserve shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"botscope"
	"botscope/internal/serve"
)

func main() {
	// SIGINT/SIGTERM cancel the context; serve drains in-flight requests
	// and exits cleanly instead of dropping connections mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "botserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("botserve", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", ":8080", "listen address")
		seed  = fs.Int64("seed", 1, "generation seed")
		scale = fs.Float64("scale", 0.1, "workload scale; 1.0 = paper size")
		in    = fs.String("in", "", "serve this attack CSV instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		store *botscope.Store
		err   error
	)
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		attacks, rerr := botscope.ReadCSV(f)
		_ = f.Close()
		if rerr != nil {
			return rerr
		}
		store, err = botscope.NewStore(attacks, nil, nil)
	} else {
		fmt.Fprintf(os.Stderr, "generating workload (seed %d, scale %.3f)...\n", *seed, *scale)
		store, err = botscope.Generate(botscope.GenerateConfig{Seed: *seed, Scale: *scale})
	}
	if err != nil {
		return err
	}

	srv := serve.New(store, *scale)
	fmt.Fprintf(os.Stderr, "serving %d attacks on %s\n", store.NumAttacks(), *addr)
	return srv.ListenAndServeContext(ctx, *addr)
}
