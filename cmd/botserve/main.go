// Command botserve exposes botscope analyses over HTTP as JSON.
//
// Usage:
//
//	botserve -addr :8080 -scale 0.1 -seed 1
//	botserve -addr :8080 -in attacks.csv
//	botserve -addr :8080 -snapshot work.bscs        # reload a botgen snapshot
//	botserve -addr :8080 -shards 4                  # sharded live tier
//	botserve -shard-listen :9001 -shard-id 0        # one shard worker
//	botserve -addr :8080 -join 0=host:9001,1=host:9002
//
// Endpoints (single-process mode):
//
//	GET /healthz                           liveness
//	GET /api/summary                       Table III entity counts
//	GET /api/protocols                     Fig 1 breakdown
//	GET /api/daily                         Fig 2 daily series
//	GET /api/intervals[?family=pandora]    §III-B interval stats
//	GET /api/durations                     §III-C duration stats
//	GET /api/families                      per-family attack counts
//	GET /api/family/{name}/dispersion      §IV-A dispersion profile
//	GET /api/family/{name}/predict         Table IV forecast scores
//	GET /api/family/{name}/targets         Table V profile
//	GET /api/collaborations                Table VI
//	GET /api/chains                        §V-B multistage summary
//	GET /api/experiments                   experiment IDs
//	GET /api/experiments/{id}              one regenerated table/figure
//	POST /api/ingest                       stream JSONL attacks into the live analyzer
//	GET /api/live/summary                  live topline (always 200)
//	GET /api/live/daily                    live Fig 2 daily series
//	GET /api/live/intervals                live §III-B interval stats
//	GET /api/live/durations                live §III-C duration stats
//	GET /api/live/load                     live §II-B concurrent-load stats
//	GET /api/live/collaborations           live §V candidates (Table VI counters)
//
// Cluster modes serve the live plane (POST /api/ingest, /api/live/*,
// /healthz) plus the management surface:
//
//	GET  /api/cluster/status               routing state
//	POST /api/cluster/shards/{id}/leave    graceful leave + rebalance
//	POST /api/cluster/shards/{id}/join     rejoin at the last known address
//
// -shards N boots N in-process shard workers on loopback ports behind one
// frontend; -join connects the frontend to externally running shard
// workers (each started with -shard-listen/-shard-id); responses are
// byte-identical to the single-process live plane for any shard count.
// -rate-limit adds a per-client token bucket over every /api/* route.
//
// botserve shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"botscope"
	"botscope/internal/cluster"
	"botscope/internal/serve"
)

func main() {
	// SIGINT/SIGTERM cancel the context; serve drains in-flight requests
	// and exits cleanly instead of dropping connections mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "botserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("botserve", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", ":8080", "listen address")
		seed  = fs.Int64("seed", 1, "generation seed")
		scale = fs.Float64("scale", 0.1, "workload scale; 1.0 = paper size")
		in    = fs.String("in", "", "serve this attack CSV instead of generating")
		snap  = fs.String("snapshot", "", "serve this binary columnar snapshot (.bscs) instead of generating")

		shards      = fs.Int("shards", 0, "boot an in-process sharded live tier with this many workers")
		join        = fs.String("join", "", "connect to external shard workers: id=host:port,...")
		shardListen = fs.String("shard-listen", "", "run as one shard worker on this address (no HTTP)")
		shardID     = fs.Int("shard-id", 0, "this worker's shard id (with -shard-listen)")
		queueDepth  = fs.Int("queue-depth", 0, "per-shard ingest queue bound (0 = default)")
		rateLimit   = fs.Float64("rate-limit", 0, "per-client requests/sec on /api/* (0 = unlimited)")
		rateBurst   = fs.Int("rate-burst", 10, "per-client burst with -rate-limit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *shardListen != "":
		return runShard(ctx, *shardID, *shardListen, *queueDepth)
	case *shards > 0 || *join != "":
		return runCluster(ctx, *addr, *shards, *join, *queueDepth, *rateLimit, *rateBurst)
	}

	var (
		store *botscope.Store
		err   error
	)
	if *snap != "" && *in != "" {
		return fmt.Errorf("-snapshot and -in are mutually exclusive")
	}
	if *snap != "" {
		f, ferr := os.Open(*snap)
		if ferr != nil {
			return ferr
		}
		store, err = botscope.ReadSnapshot(f)
		_ = f.Close()
	} else if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		attacks, rerr := botscope.ReadCSV(f)
		_ = f.Close()
		if rerr != nil {
			return rerr
		}
		store, err = botscope.NewStore(attacks, nil, nil)
	} else {
		fmt.Fprintf(os.Stderr, "generating workload (seed %d, scale %.3f)...\n", *seed, *scale)
		store, err = botscope.Generate(botscope.GenerateConfig{Seed: *seed, Scale: *scale})
	}
	if err != nil {
		return err
	}
	defer store.Close()

	srv := serve.New(store, *scale)
	fmt.Fprintf(os.Stderr, "serving %d attacks on %s\n", store.NumAttacks(), *addr)
	return srv.ListenAndServeContext(ctx, *addr)
}

// runShard runs this process as one shard worker: it owns a partition of
// the live stream and answers the frontend's wire protocol until
// cancelled.
func runShard(ctx context.Context, id int, listen string, queueDepth int) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shard %d serving wire protocol on %s\n", id, ln.Addr())
	return cluster.NewShard(id, queueDepth).Serve(ctx, ln)
}

// runCluster serves the live plane over a shard fleet: in-process workers
// (-shards) or external ones (-join).
func runCluster(ctx context.Context, addr string, n int, join string, queueDepth int, rateLimit float64, rateBurst int) error {
	var front *cluster.Frontend
	switch {
	case n > 0 && join != "":
		return fmt.Errorf("-shards and -join are mutually exclusive")
	case n > 0:
		local, err := cluster.StartLocal(ctx, n, queueDepth, 0, 0)
		if err != nil {
			return err
		}
		defer local.Close()
		front = local.Frontend
		fmt.Fprintf(os.Stderr, "booted %d in-process shards\n", n)
	default:
		addrs, err := parseJoin(join)
		if err != nil {
			return err
		}
		front = cluster.NewFrontend(0, 0)
		if err := front.Connect(ctx, addrs); err != nil {
			return err
		}
		defer front.Close()
		fmt.Fprintf(os.Stderr, "joined %d external shards\n", len(addrs))
	}

	opts := []serve.LiveOption{serve.WithClusterAdmin(front)}
	if rateLimit > 0 {
		opts = append(opts, serve.WithRateLimiter(cluster.NewRateLimiter(rateLimit, rateBurst)))
	}
	srv := serve.NewLiveServer(front, opts...)
	fmt.Fprintf(os.Stderr, "serving live cluster on %s\n", addr)
	return srv.ListenAndServeContext(ctx, addr)
}

// parseJoin parses "0=host:9001,1=host:9002" into the frontend's address
// map.
func parseJoin(join string) (map[int]string, error) {
	addrs := make(map[int]string)
	for _, part := range strings.Split(join, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, hostport, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-join entry %q: want id=host:port", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("-join entry %q: bad shard id: %w", part, err)
		}
		addrs[n] = strings.TrimSpace(hostport)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-join lists no shards")
	}
	return addrs, nil
}
