package main

import (
	"context"
	"testing"
	"time"
)

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-zzz"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunMissingInputFile(t *testing.T) {
	if err := run(context.Background(), []string{"-in", "/nonexistent/attacks.csv"}); err == nil {
		t.Error("missing input file accepted")
	}
}

func TestRunBadListenAddr(t *testing.T) {
	// A malformed address fails fast after the workload is built; keep the
	// workload tiny so the test stays quick.
	if err := run(context.Background(), []string{"-scale", "0.005", "-addr", "256.0.0.1:bad"}); err == nil {
		t.Error("malformed listen address accepted")
	}
}

func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-scale", "0.005", "-addr", "127.0.0.1:0"})
	}()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("cancelled run returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}
