package main

import "testing"

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunMissingInputFile(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent/attacks.csv"}); err == nil {
		t.Error("missing input file accepted")
	}
}

func TestRunBadListenAddr(t *testing.T) {
	// A malformed address fails fast after the workload is built; keep the
	// workload tiny so the test stays quick.
	if err := run([]string{"-scale", "0.005", "-addr", "256.0.0.1:bad"}); err == nil {
		t.Error("malformed listen address accepted")
	}
}
