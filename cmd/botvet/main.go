// Botvet is the project-specific static-analysis gate. It bundles the
// botscope analyzers — nodeterm, lockguard, snapshotalias, floateq,
// sharedslice, parmerge, hotalloc, rngstream, the SSA-based
// interprocedural tier (goleak, ctxflow, wireframe), plus the
// columnar-era tier (mmaplife, lazymat, codecsym, memodisc) — into a
// unitchecker binary that `go vet` drives over every package:
//
//	go build -o bin/botvet ./cmd/botvet
//	go vet -vettool=$(pwd)/bin/botvet ./...
//
// `make botvet` (and `make verify`) wire this up; `make botvet-json` runs
// the same gate with `go vet -json` for machine-readable output, where
// diagnostics arrive as a JSON object per package keyed by analyzer name.
//
// Invoked as `botvet -format=sarif [packages...]` the binary instead
// drives `go vet -json` over the packages (default ./...) with itself as
// the vettool and converts the diagnostics to SARIF 2.1.0 on stdout, the
// format CI uploads as a code-scanning artifact; see sarif.go.
//
// `botvet -only=a,b [packages...]` runs just the named analyzers and
// `botvet -skip=a,b [packages...]` runs all but them — both re-drive
// `go vet` with itself as the vettool and per-analyzer selection flags.
// The two compose (-only minus -skip) and either combines with
// -format=sarif. Naming an analyzer the gate does not carry, or
// selecting away every analyzer, is misuse (exit 2).
//
// Exit codes follow the `go vet` convention the CI gate relies on:
//
//	0  every analyzer ran and reported nothing
//	1  at least one diagnostic was reported (or a package failed to build)
//	2  the tool itself was misused (bad flags, unreadable vet config)
//
// Each analyzer encodes an invariant the paper reproduction depends on;
// see DESIGN.md for what they enforce and why. Per-line exceptions use
// "//botvet:allow <analyzer>" or "//botvet:ignore <analyzer> <reason>".
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"botscope/internal/analysis/codecsym"
	"botscope/internal/analysis/ctxflow"
	"botscope/internal/analysis/floateq"
	"botscope/internal/analysis/goleak"
	"botscope/internal/analysis/hotalloc"
	"botscope/internal/analysis/lazymat"
	"botscope/internal/analysis/lockguard"
	"botscope/internal/analysis/memodisc"
	"botscope/internal/analysis/mmaplife"
	"botscope/internal/analysis/nodeterm"
	"botscope/internal/analysis/parmerge"
	"botscope/internal/analysis/rngstream"
	"botscope/internal/analysis/sharedslice"
	"botscope/internal/analysis/snapshotalias"
	"botscope/internal/analysis/wireframe"
)

// analyzers is the full gate, in one place so the unitchecker run and the
// SARIF rule table stay in lockstep.
var analyzers = []*analysis.Analyzer{
	codecsym.Analyzer,
	ctxflow.Analyzer,
	floateq.Analyzer,
	goleak.Analyzer,
	hotalloc.Analyzer,
	lazymat.Analyzer,
	lockguard.Analyzer,
	memodisc.Analyzer,
	mmaplife.Analyzer,
	nodeterm.Analyzer,
	parmerge.Analyzer,
	rngstream.Analyzer,
	sharedslice.Analyzer,
	snapshotalias.Analyzer,
	wireframe.Analyzer,
}

func main() {
	if len(os.Args) > 1 && isDriverFlag(os.Args[1]) {
		os.Exit(driverMain(os.Args[1:]))
	}
	unitchecker.Main(analyzers...)
}

// isDriverFlag reports whether arg selects one of botvet's self-driving
// modes rather than the vettool protocol `go vet` speaks to the binary.
func isDriverFlag(arg string) bool {
	a := strings.TrimPrefix(arg, "-")
	a = strings.TrimPrefix(a, "-")
	return a == "format=sarif" || strings.HasPrefix(a, "only=") || strings.HasPrefix(a, "skip=")
}

// driverMain handles the self-driving modes: it peels -format=sarif,
// -only= and -skip= off the front of args, resolves the analyzer
// selection, and re-drives `go vet` (directly or through sarifMain) with
// itself as the vettool. Returns the process exit code.
func driverMain(args []string) int {
	var sarif bool
	var only, skip []string
	for len(args) > 0 && isDriverFlag(args[0]) {
		a := strings.TrimPrefix(strings.TrimPrefix(args[0], "-"), "-")
		switch {
		case a == "format=sarif":
			sarif = true
		case strings.HasPrefix(a, "only="):
			only = append(only, splitNames(strings.TrimPrefix(a, "only="))...)
		case strings.HasPrefix(a, "skip="):
			skip = append(skip, splitNames(strings.TrimPrefix(a, "skip="))...)
		}
		args = args[1:]
	}

	selected, err := selectAnalyzers(only, skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "botvet: %v\n", err)
		return 2
	}
	if sarif {
		return sarifMain(selected, args)
	}
	if selected == nil {
		// No selection flags: plain full-gate run.
		return runVet(nil, args)
	}
	return runVet(selected, args)
}

// splitNames splits a comma-separated analyzer list, dropping empties.
func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// selectAnalyzers resolves -only/-skip lists against the gate. It
// returns nil when no selection was requested (run everything), the
// selected names otherwise, and an error for unknown names or an empty
// result.
func selectAnalyzers(only, skip []string) ([]string, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, n := range append(append([]string(nil), only...), skip...) {
		if !known[n] {
			return nil, fmt.Errorf("unknown analyzer %q (gate carries: %s)", n, analyzerNames())
		}
	}
	if len(only) == 0 && len(skip) == 0 {
		return nil, nil
	}
	base := only
	if len(base) == 0 {
		for _, a := range analyzers {
			base = append(base, a.Name)
		}
	}
	skipped := make(map[string]bool, len(skip))
	for _, n := range skip {
		skipped[n] = true
	}
	var out []string
	seen := make(map[string]bool, len(base))
	for _, n := range base {
		if !skipped[n] && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("selection leaves no analyzers to run")
	}
	return out, nil
}

func analyzerNames() string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// runVet re-drives `go vet` with this binary as the vettool, enabling
// just the selected analyzers (all of them when selected is nil). Output
// passes through verbatim; the exit code mirrors vet's 0/1/2 contract.
func runVet(selected []string, pkgs []string) int {
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "botvet: cannot locate own binary: %v\n", err)
		return 2
	}
	args := []string{"vet", "-vettool=" + self}
	for _, n := range selected {
		args = append(args, "-"+n)
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() > 0 {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "botvet: running go vet: %v\n", err)
		return 2
	}
	return 0
}
