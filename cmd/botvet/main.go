// Botvet is the project-specific static-analysis gate. It bundles the
// botscope analyzers — nodeterm, lockguard, snapshotalias, floateq,
// sharedslice, parmerge, hotalloc, rngstream, plus the SSA-based
// interprocedural tier (goleak, ctxflow, wireframe) — into a unitchecker
// binary that `go vet` drives over every package:
//
//	go build -o bin/botvet ./cmd/botvet
//	go vet -vettool=$(pwd)/bin/botvet ./...
//
// `make botvet` (and `make verify`) wire this up; `make botvet-json` runs
// the same gate with `go vet -json` for machine-readable output, where
// diagnostics arrive as a JSON object per package keyed by analyzer name.
//
// Invoked as `botvet -format=sarif [packages...]` the binary instead
// drives `go vet -json` over the packages (default ./...) with itself as
// the vettool and converts the diagnostics to SARIF 2.1.0 on stdout, the
// format CI uploads as a code-scanning artifact; see sarif.go.
//
// Exit codes follow the `go vet` convention the CI gate relies on:
//
//	0  every analyzer ran and reported nothing
//	1  at least one diagnostic was reported (or a package failed to build)
//	2  the tool itself was misused (bad flags, unreadable vet config)
//
// Each analyzer encodes an invariant the paper reproduction depends on;
// see DESIGN.md for what they enforce and why. Per-line exceptions use
// "//botvet:allow <analyzer>" or "//botvet:ignore <analyzer> <reason>".
package main

import (
	"os"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"botscope/internal/analysis/ctxflow"
	"botscope/internal/analysis/floateq"
	"botscope/internal/analysis/goleak"
	"botscope/internal/analysis/hotalloc"
	"botscope/internal/analysis/lockguard"
	"botscope/internal/analysis/nodeterm"
	"botscope/internal/analysis/parmerge"
	"botscope/internal/analysis/rngstream"
	"botscope/internal/analysis/sharedslice"
	"botscope/internal/analysis/snapshotalias"
	"botscope/internal/analysis/wireframe"
)

// analyzers is the full gate, in one place so the unitchecker run and the
// SARIF rule table stay in lockstep.
var analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	floateq.Analyzer,
	goleak.Analyzer,
	hotalloc.Analyzer,
	lockguard.Analyzer,
	nodeterm.Analyzer,
	parmerge.Analyzer,
	rngstream.Analyzer,
	sharedslice.Analyzer,
	snapshotalias.Analyzer,
	wireframe.Analyzer,
}

func main() {
	if len(os.Args) > 1 && (os.Args[1] == "-format=sarif" || os.Args[1] == "--format=sarif") {
		os.Exit(sarifMain(os.Args[2:]))
	}
	unitchecker.Main(analyzers...)
}
