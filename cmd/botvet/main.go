// Botvet is the project-specific static-analysis gate. It bundles the
// botscope analyzers — nodeterm, lockguard, snapshotalias, floateq — into
// a unitchecker binary that `go vet` drives over every package:
//
//	go build -o bin/botvet ./cmd/botvet
//	go vet -vettool=$(pwd)/bin/botvet ./...
//
// `make botvet` (and `make verify`) wire this up. Each analyzer encodes an
// invariant the paper reproduction depends on; see DESIGN.md for what they
// enforce and why. Per-line exceptions use "//botvet:allow <analyzer>".
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"botscope/internal/analysis/floateq"
	"botscope/internal/analysis/lockguard"
	"botscope/internal/analysis/nodeterm"
	"botscope/internal/analysis/snapshotalias"
)

func main() {
	unitchecker.Main(
		floateq.Analyzer,
		lockguard.Analyzer,
		nodeterm.Analyzer,
		snapshotalias.Analyzer,
	)
}
