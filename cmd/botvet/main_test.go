package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestBotvetCleanOnRepo builds the botvet binary and drives it over the
// whole module with go vet, asserting zero diagnostics: the annotation
// contracts (//botscope:shared, //botscope:parpool, //botscope:hotpath)
// and the determinism scopes must hold on every package at all times.
func TestBotvetCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and re-typechecks the module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}

	tool := filepath.Join(t.TempDir(), "botvet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/botvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/botvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("botvet reported diagnostics on the repo:\n%s", out)
	}
}
