package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildTool compiles the botvet binary once into a temp dir and returns
// its path. Callers share one build per test binary invocation.
func buildTool(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "botvet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/botvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/botvet: %v\n%s", err, out)
	}
	return tool
}

// writeScratchModule materialises a one-file module in a temp dir so the
// exit-code contract can be pinned against go vet's driver behaviour
// rather than assumed.
func writeScratchModule(t *testing.T, mainSrc string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(mainSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const cleanSrc = `package main

func main() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}
`

const dirtySrc = `package main

func main() {
	go func() {
		for {
		}
	}()
	select {}
}
`

const ignoredSrc = `package main

func main() {
	go func() { //botvet:ignore goleak audited: scratch fixture
		for {
		}
	}()
	select {}
}
`

// TestExitCodes pins the gate's observable contract: go vet with the
// botvet vettool exits 0 on clean code, 1 when any analyzer reports, and
// 0 again when the only finding carries a //botvet:ignore audit.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet; skipped in -short")
	}
	tool := buildTool(t)

	cases := []struct {
		name     string
		src      string
		wantExit int
		wantMsg  string
	}{
		{name: "clean", src: cleanSrc, wantExit: 0},
		{name: "dirty", src: dirtySrc, wantExit: 1, wantMsg: "not provably joinable"},
		{name: "ignored", src: ignoredSrc, wantExit: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeScratchModule(t, tc.src)
			vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
			vet.Dir = dir
			out, err := vet.CombinedOutput()
			exit := 0
			if ee, ok := err.(*exec.ExitError); ok {
				exit = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("go vet did not run: %v\n%s", err, out)
			}
			if exit != tc.wantExit {
				t.Errorf("exit = %d, want %d\n%s", exit, tc.wantExit, out)
			}
			if tc.wantMsg != "" && !bytes.Contains(out, []byte(tc.wantMsg)) {
				t.Errorf("output does not mention %q:\n%s", tc.wantMsg, out)
			}
		})
	}
}

// TestSelectionExitCodes pins the -only/-skip wrappers against a module
// whose only finding is goleak's: selecting the analyzer keeps the exit-1
// contract, skipping it silences the gate, and a name the gate does not
// carry (or a selection that empties the gate) is misuse, exit 2.
func TestSelectionExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet; skipped in -short")
	}
	tool := buildTool(t)

	cases := []struct {
		name     string
		args     []string
		wantExit int
		wantMsg  string
	}{
		{name: "only-hit", args: []string{"-only=goleak", "./..."}, wantExit: 1, wantMsg: "not provably joinable"},
		{name: "only-miss", args: []string{"-only=floateq", "./..."}, wantExit: 0},
		{name: "skip-hit", args: []string{"-skip=goleak", "./..."}, wantExit: 0},
		{name: "skip-miss", args: []string{"-skip=floateq", "./..."}, wantExit: 1, wantMsg: "not provably joinable"},
		{name: "unknown", args: []string{"-only=nosuch", "./..."}, wantExit: 2, wantMsg: "unknown analyzer"},
		{name: "empty-selection", args: []string{"-only=goleak", "-skip=goleak", "./..."}, wantExit: 2, wantMsg: "no analyzers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeScratchModule(t, dirtySrc)
			cmd := exec.Command(tool, tc.args...)
			cmd.Dir = dir
			out, err := cmd.CombinedOutput()
			exit := 0
			if ee, ok := err.(*exec.ExitError); ok {
				exit = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("botvet %v did not run: %v\n%s", tc.args, err, out)
			}
			if exit != tc.wantExit {
				t.Errorf("exit = %d, want %d\n%s", exit, tc.wantExit, out)
			}
			if tc.wantMsg != "" && !bytes.Contains(out, []byte(tc.wantMsg)) {
				t.Errorf("output does not mention %q:\n%s", tc.wantMsg, out)
			}
		})
	}

	t.Run("sarif-only", func(t *testing.T) {
		dir := writeScratchModule(t, dirtySrc)
		cmd := exec.Command(tool, "-format=sarif", "-only=goleak", "./...")
		cmd.Dir = dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("botvet -format=sarif -only=goleak did not run: %v\n%s", err, stderr.String())
		}
		if exit != 1 {
			t.Errorf("exit = %d, want 1", exit)
		}
		var log sarifLog
		if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
			t.Fatalf("stdout is not SARIF JSON: %v\n%s", err, stdout.String())
		}
		rules := log.Runs[0].Tool.Driver.Rules
		if len(rules) != 1 || rules[0].ID != "goleak" {
			t.Errorf("selected run's rule table = %+v, want just goleak", rules)
		}
	})
}

// TestSarifExitCodes pins the -format=sarif wrapper: a dirty module still
// writes a parseable SARIF log on stdout (CI uploads it before failing)
// and exits 1; a clean module exits 0 with an empty result set.
func TestSarifExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet; skipped in -short")
	}
	tool := buildTool(t)

	run := func(t *testing.T, src string) (int, *bytes.Buffer) {
		t.Helper()
		dir := writeScratchModule(t, src)
		cmd := exec.Command(tool, "-format=sarif", "./...")
		cmd.Dir = dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("botvet -format=sarif did not run: %v\n%s", err, stderr.String())
		}
		return exit, &stdout
	}

	decode := func(t *testing.T, raw *bytes.Buffer) sarifLog {
		t.Helper()
		var log sarifLog
		if err := json.Unmarshal(raw.Bytes(), &log); err != nil {
			t.Fatalf("stdout is not SARIF JSON: %v\n%s", err, raw.String())
		}
		if log.Version != "2.1.0" || len(log.Runs) != 1 {
			t.Fatalf("malformed SARIF log: version %q, %d runs", log.Version, len(log.Runs))
		}
		return log
	}

	t.Run("dirty", func(t *testing.T) {
		exit, raw := run(t, dirtySrc)
		if exit != 1 {
			t.Errorf("exit = %d, want 1", exit)
		}
		log := decode(t, raw)
		results := log.Runs[0].Results
		if len(results) == 0 {
			t.Fatal("dirty module produced no SARIF results")
		}
		found := false
		for _, r := range results {
			if r.RuleID == "goleak" {
				found = true
				if len(r.Locations) == 0 || r.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" {
					t.Errorf("goleak result lacks a file location: %+v", r)
				}
			}
		}
		if !found {
			t.Errorf("no goleak result in SARIF output: %+v", results)
		}
	})

	t.Run("clean", func(t *testing.T) {
		exit, raw := run(t, cleanSrc)
		if exit != 0 {
			t.Errorf("exit = %d, want 0", exit)
		}
		log := decode(t, raw)
		if n := len(log.Runs[0].Results); n != 0 {
			t.Errorf("clean module produced %d SARIF results", n)
		}
		if len(log.Runs[0].Tool.Driver.Rules) != len(analyzers) {
			t.Errorf("rules = %d, want one per analyzer (%d)", len(log.Runs[0].Tool.Driver.Rules), len(analyzers))
		}
	})
}
