// SARIF output mode: `botvet -format=sarif [packages...]` re-drives the
// gate through `go vet -vettool=<self> -json` and converts the per-package
// JSON diagnostics to a single SARIF 2.1.0 log on stdout. CI uploads that
// log as its code-scanning artifact, so findings land annotated on the PR
// diff instead of buried in a job log.
//
// The exit code mirrors the underlying vet run: 0 clean, 1 findings (the
// SARIF log is still written — CI uploads it before failing the job), 2
// driver misuse.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// vetDiag is one diagnostic as `go vet -json` prints it.
type vetDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// sarifLog is the subset of SARIF 2.1.0 the uploader needs.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifMain drives the gate in SARIF mode. selected restricts the run
// (and the emitted rule table) to the named analyzers; nil means the
// full gate.
func sarifMain(selected []string, pkgs []string) int {
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "botvet: cannot locate own binary: %v\n", err)
		return 2
	}

	args := []string{"vet", "-vettool=" + self, "-json"}
	for _, n := range selected {
		args = append(args, "-"+n)
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var vetOut bytes.Buffer
	cmd.Stdout = &vetOut
	cmd.Stderr = &vetOut // -json diagnostics arrive on stderr
	runErr := cmd.Run()
	if ee, ok := runErr.(*exec.ExitError); ok && ee.ExitCode() > 1 {
		// Misuse: surface vet's output verbatim.
		fmt.Fprint(os.Stderr, vetOut.String())
		return ee.ExitCode()
	}

	results, rules, perr := parseVetJSON(&vetOut)
	if perr != nil {
		// A package that fails to build makes vet emit non-JSON error
		// lines; show them rather than a decoder error alone.
		fmt.Fprintf(os.Stderr, "botvet: parsing go vet -json output: %v\n%s", perr, vetOut.String())
		return 2
	}

	// Under -json vet exits 0 even when analyzers report, so the gate's
	// 0-clean/1-findings contract is enforced from the findings themselves.
	exit := 0
	if len(results) > 0 || runErr != nil {
		exit = 1
	}

	log := buildSarif(selected, results, rules)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		fmt.Fprintf(os.Stderr, "botvet: writing SARIF: %v\n", err)
		return 2
	}
	return exit
}

type finding struct {
	analyzer string
	diag     vetDiag
}

// parseVetJSON decodes the `go vet -json` stream: `# package` comment
// lines interleaved with pretty-printed objects of the form
// {"pkgpath": {"analyzer": [diag, ...]}}.
func parseVetJSON(r io.Reader) ([]finding, map[string]bool, error) {
	var jsonOnly bytes.Buffer
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		jsonOnly.WriteString(line)
		jsonOnly.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}

	var findings []finding
	seen := map[string]bool{}
	dec := json.NewDecoder(&jsonOnly)
	for {
		var pkgObj map[string]map[string][]vetDiag
		if err := dec.Decode(&pkgObj); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, err
		}
		for _, byAnalyzer := range pkgObj {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					findings = append(findings, finding{analyzer: analyzer, diag: d})
					seen[analyzer] = true
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].diag.Posn != findings[j].diag.Posn {
			return findings[i].diag.Posn < findings[j].diag.Posn
		}
		return findings[i].diag.Message < findings[j].diag.Message
	})
	return findings, seen, nil
}

func buildSarif(selected []string, findings []finding, _ map[string]bool) *sarifLog {
	cwd, _ := os.Getwd()

	inRun := func(string) bool { return true }
	if selected != nil {
		sel := make(map[string]bool, len(selected))
		for _, n := range selected {
			sel[n] = true
		}
		inRun = func(n string) bool { return sel[n] }
	}
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		if !inRun(a.Name) {
			continue
		}
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: doc}})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri, line, col := splitPosn(f.diag.Posn, cwd)
		results = append(results, sarifResult{
			RuleID:  f.analyzer,
			Level:   "error",
			Message: sarifText{Text: f.diag.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: line, StartColumn: col},
				},
			}},
		})
	}

	return &sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "botvet", Rules: rules}},
			Results: results,
		}},
	}
}

// splitPosn breaks a "path:line:col" vet position into a repo-relative
// URI and coordinates. Windows drive letters do not occur in this repo's
// CI, so the rightmost two colons delimit line and column.
func splitPosn(posn, cwd string) (uri string, line, col int) {
	uri = posn
	parts := strings.Split(posn, ":")
	if len(parts) >= 3 {
		if l, err := strconv.Atoi(parts[len(parts)-2]); err == nil {
			if c, err := strconv.Atoi(parts[len(parts)-1]); err == nil {
				line, col = l, c
				uri = strings.Join(parts[:len(parts)-2], ":")
			}
		}
	}
	if cwd != "" {
		if rel, err := filepath.Rel(cwd, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
	}
	return filepath.ToSlash(uri), line, col
}
