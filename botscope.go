// Package botscope is a library for characterizing and analyzing
// botnet-launched Internet DDoS attacks, reproducing the measurement study
// "Delving into Internet DDoS Attacks by Botnets: Characterization and
// Analysis" (DSN 2015).
//
// The library has three layers:
//
//   - A workload layer: the Table I attack/bot/botnet schemas, an indexed
//     in-memory store, CSV/JSON codecs, and a calibrated synthetic
//     generator standing in for the paper's proprietary 7-month
//     monitoring feed (50,704 attacks, 674 botnets, 10 active families).
//
//   - An analysis layer (Analyzer): attack overview (protocol mix, daily
//     density, inter-attack intervals, durations), source geolocation
//     analysis (the signed-dispersion metric, weekly shift patterns,
//     ARIMA forecasting), target affinity (country/organization), and
//     collaboration detection (concurrent and multistage).
//
//   - An experiment layer: one regeneration function per table and figure
//     of the paper's evaluation, with measured-vs-paper metrics.
//
//   - A streaming layer (StreamAnalyzer): a bounded-memory online mirror
//     of the core analyses that ingests attacks one at a time, for live
//     feeds where the workload never fits in memory.
//
// Quickstart:
//
//	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 1, Scale: 0.05})
//	if err != nil { ... }
//	a := botscope.NewAnalyzer(store)
//	stats, err := a.DailyDistribution()
package botscope

import (
	"io"
	"time"

	"botscope/internal/botnet"
	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/experiments"
	"botscope/internal/monitor"
	"botscope/internal/stream"
	"botscope/internal/synth"
	"botscope/internal/timeseries"
)

// Core workload types, re-exported from the dataset schemas (Table I).
type (
	// Attack is one DDoSAttack record.
	Attack = dataset.Attack
	// Bot is one Botlist record.
	Bot = dataset.Bot
	// Botnet is one Botnetlist record.
	Botnet = dataset.Botnet
	// Store is an indexed, immutable workload.
	Store = dataset.Store
	// Family is a malware family name.
	Family = dataset.Family
	// Category is an attack's protocol category.
	Category = dataset.Category
	// SummaryCounts mirrors the paper's Table III.
	SummaryCounts = dataset.SummaryCounts
	// Filter selects a sub-workload for Store.Subset.
	Filter = dataset.Filter
)

// The ten active families of the paper's analysis window.
const (
	Aldibot     = dataset.Aldibot
	Blackenergy = dataset.Blackenergy
	Colddeath   = dataset.Colddeath
	Darkshell   = dataset.Darkshell
	Ddoser      = dataset.Ddoser
	Dirtjumper  = dataset.Dirtjumper
	Nitol       = dataset.Nitol
	Optima      = dataset.Optima
	Pandora     = dataset.Pandora
	YZF         = dataset.YZF
)

// Attack categories.
const (
	CategoryHTTP         = dataset.CategoryHTTP
	CategoryTCP          = dataset.CategoryTCP
	CategoryUDP          = dataset.CategoryUDP
	CategoryUndetermined = dataset.CategoryUndetermined
	CategoryICMP         = dataset.CategoryICMP
	CategoryUnknown      = dataset.CategoryUnknown
	CategorySYN          = dataset.CategorySYN
)

// ActiveFamilies lists the paper's ten active families.
func ActiveFamilies() []Family { return append([]Family(nil), dataset.ActiveFamilies...) }

// NewStore indexes a workload from raw records.
func NewStore(attacks []*Attack, botnets []*Botnet, bots []*Bot) (*Store, error) {
	return dataset.NewStore(attacks, botnets, bots)
}

// GenerateConfig parameterizes synthetic workload generation. Scale 1.0
// reproduces the paper-size workload; smaller values generate
// proportionally smaller ones. The same seed reproduces the same workload.
type GenerateConfig = synth.Config

// Generate builds a synthetic workload calibrated to the paper.
func Generate(cfg GenerateConfig) (*Store, error) {
	return synth.GenerateStore(cfg)
}

// Scenario-construction types for custom (what-if) workloads.
type (
	// ScenarioBuilder composes custom workloads family by family.
	ScenarioBuilder = synth.ScenarioBuilder
	// FamilyProfile is the full behavioural parameterization of a family.
	FamilyProfile = botnet.Profile
	// InterCollab stages cross-family coordination in a scenario.
	InterCollab = botnet.InterCollab
	// BurstSpec injects a one-day attack storm into a scenario.
	BurstSpec = botnet.BurstSpec
)

// NewScenario starts a custom-workload builder on the paper's window.
func NewScenario(seed int64) *ScenarioBuilder { return synth.NewScenario(seed) }

// MiraiLikeProfile sketches a Mirai-style IoT botnet for what-if scenarios
// (the paper's §II-C discussion of generality to newer families).
func MiraiLikeProfile(attacks int) *FamilyProfile { return synth.MiraiLikeProfile(attacks) }

// GenerateRaw returns the raw record lists instead of an indexed store.
func GenerateRaw(cfg GenerateConfig) ([]*Attack, []*Botnet, []*Bot, error) {
	out, err := synth.Generate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return out.Attacks, out.Botnets, out.Bots, nil
}

// WriteCSV / ReadCSV / WriteJSONL / ReadJSONL re-export the attack codecs.
func WriteCSV(w io.Writer, attacks []*Attack) error   { return dataset.WriteCSV(w, attacks) }
func ReadCSV(r io.Reader) ([]*Attack, error)          { return dataset.ReadCSV(r) }
func WriteJSONL(w io.Writer, attacks []*Attack) error { return dataset.WriteJSONL(w, attacks) }
func ReadJSONL(r io.Reader) ([]*Attack, error)        { return dataset.ReadJSONL(r) }

// WriteSnapshot writes the store's versioned binary columnar snapshot
// ("BSCS"): the interned string table, the attack/bot/botnet columns, and
// the dense source-IP layer, so a workload reloads in seconds instead of
// being regenerated and re-indexed.
func WriteSnapshot(w io.Writer, s *Store) error { return dataset.WriteSnapshot(w, s) }

// ReadSnapshot reads one BSCS snapshot and materializes the store,
// re-validating every record, so a corrupt snapshot yields an error
// rather than a malformed workload.
func ReadSnapshot(r io.Reader) (*Store, error) { return dataset.ReadSnapshot(r) }

// ErrStoreClosed is returned by snapshot writes on a store whose mapped
// region was released with Store.Close.
var ErrStoreClosed = dataset.ErrStoreClosed

// ErrStop, returned from a Decode* callback, stops decoding early without
// error.
var ErrStop = dataset.ErrStop

// DecodeCSV / DecodeJSONL stream attacks record by record without
// materializing the full slice — the ingestion path for feeds of arbitrary
// length.
func DecodeCSV(r io.Reader, fn func(*Attack) error) error   { return dataset.DecodeCSV(r, fn) }
func DecodeJSONL(r io.Reader, fn func(*Attack) error) error { return dataset.DecodeJSONL(r, fn) }

// Streaming analytics types, re-exported from the stream layer.
type (
	// StreamAnalyzer ingests attacks one at a time and maintains online
	// state mirroring the batch analyses in bounded memory. It is safe for
	// one concurrent writer plus any number of snapshot readers.
	StreamAnalyzer = stream.Analyzer
	// StreamSnapshot is a point-in-time view of a StreamAnalyzer.
	StreamSnapshot = stream.Snapshot
	// StreamCollabCandidate is one live collaborative-attack candidate.
	StreamCollabCandidate = stream.CollabCandidate
	// StreamCollabSummary aggregates live collaboration detection.
	StreamCollabSummary = stream.CollabSummary
)

// ErrOutOfOrder is returned by StreamAnalyzer.Ingest for records that
// regress in event time.
var ErrOutOfOrder = stream.ErrOutOfOrder

// NewStreamAnalyzer builds an empty streaming analyzer.
func NewStreamAnalyzer() *StreamAnalyzer { return stream.New() }

// Analysis result types.
type (
	// ProtocolCount is one row of the Fig 1 breakdown.
	ProtocolCount = core.ProtocolCount
	// DailyStats is the Fig 2 daily distribution with headline numbers.
	DailyStats = core.DailyStats
	// IntervalStats summarizes an inter-attack gap series (§III-B).
	IntervalStats = core.IntervalStats
	// DurationStats summarizes a duration series (§III-C).
	DurationStats = core.DurationStats
	// DispersionProfile is the §IV-A per-family source characterization.
	DispersionProfile = core.DispersionProfile
	// PredictionResult is the Figs 12-13 / Table IV forecasting outcome.
	PredictionResult = core.PredictionResult
	// PredictConfig tunes the forecasting experiment.
	PredictConfig = core.PredictConfig
	// TargetCountryProfile is one family's Table V row group.
	TargetCountryProfile = core.TargetCountryProfile
	// OrgHotspot is one Fig 14 organization-level mark.
	OrgHotspot = core.OrgHotspot
	// Collaboration is one detected §V collaborative attack.
	Collaboration = core.Collaboration
	// CollabStats is Table VI.
	CollabStats = core.CollabStats
	// Chain is one §V-B multistage attack.
	Chain = core.Chain
	// ChainStats summarizes multistage attacks (Figs 17-18).
	ChainStats = core.ChainStats
	// NextAttackPrediction is a per-target start-time forecast.
	NextAttackPrediction = core.NextAttackPrediction
	// Blacklist is a ranked bot blacklist (the paper's §V defense insight).
	Blacklist = core.Blacklist
	// BlacklistEvaluation scores a blacklist on future attacks.
	BlacklistEvaluation = core.BlacklistEvaluation
	// MitigationWindow is a per-target high-alert window (§III-D).
	MitigationWindow = core.MitigationWindow
	// MagnitudeProfile summarizes a family's attack-strength law.
	MagnitudeProfile = core.MagnitudeProfile
	// LoadStats summarizes the concurrent-attack load sweep.
	LoadStats = core.LoadStats
	// TransferResult scores cross-family model transfer.
	TransferResult = core.TransferResult
	// DiurnalAnalysis scores day-shaped timing patterns (§III-A).
	DiurnalAnalysis = core.DiurnalAnalysis
	// ARIMAOrder is an ARIMA(p,d,q) model order.
	ARIMAOrder = timeseries.Order
	// ARIMAModel is a fitted ARIMA model.
	ARIMAModel = timeseries.Model
	// WeekStats is one week of the Fig 8 source aggregation.
	WeekStats = monitor.WeekStats
	// HourlyReport is one snapshot of the paper's collection pipeline.
	HourlyReport = monitor.HourlyReport
	// BotnetActivity profiles one botnet generation's observed behaviour.
	BotnetActivity = monitor.BotnetActivity
	// GenerationChurn measures generation concentration within a family.
	GenerationChurn = monitor.GenerationChurn
)

// Analyzer exposes every analysis of the paper over one workload.
// The zero value is not usable; construct it with NewAnalyzer.
// An Analyzer is safe for concurrent use.
type Analyzer struct {
	store     *Store
	collector *monitor.Collector
}

// NewAnalyzer wraps a workload store.
func NewAnalyzer(store *Store) *Analyzer {
	return &Analyzer{store: store, collector: monitor.NewCollector(store)}
}

// Store returns the underlying workload.
func (a *Analyzer) Store() *Store { return a.store }

// Summary computes the Table III entity counts.
func (a *Analyzer) Summary() SummaryCounts { return a.store.Summary() }

// ProtocolBreakdown counts attacks per category (Fig 1).
func (a *Analyzer) ProtocolBreakdown() []ProtocolCount { return core.ProtocolBreakdown(a.store) }

// DailyDistribution buckets attacks per day (Fig 2).
func (a *Analyzer) DailyDistribution() (DailyStats, error) { return core.DailyDistribution(a.store) }

// AllIntervals returns the global inter-attack gap series in seconds.
func (a *Analyzer) AllIntervals() []float64 { return core.AllIntervals(a.store) }

// FamilyIntervals returns one family's gap series in seconds.
func (a *Analyzer) FamilyIntervals(f Family) []float64 { return core.FamilyIntervals(a.store, f) }

// AnalyzeIntervals summarizes a gap series (§III-B).
func (a *Analyzer) AnalyzeIntervals(gaps []float64) (IntervalStats, error) {
	return core.AnalyzeIntervals(gaps)
}

// Durations returns all attack durations in seconds, time-ordered.
func (a *Analyzer) Durations() []float64 { return core.Durations(a.store) }

// AnalyzeDurations summarizes a duration series (§III-C).
func (a *Analyzer) AnalyzeDurations(durs []float64) (DurationStats, error) {
	return core.AnalyzeDurations(durs)
}

// DispersionProfile characterizes one family's source geometry (§IV-A).
func (a *Analyzer) DispersionProfile(f Family) (DispersionProfile, error) {
	return core.ProfileDispersion(a.store, f)
}

// DispersionSeries returns a family's per-attack dispersion values in km.
func (a *Analyzer) DispersionSeries(f Family) []float64 {
	return core.DispersionValues(core.DispersionSeries(a.store, f))
}

// PredictDispersion runs the §IV-A ARIMA forecasting experiment.
func (a *Analyzer) PredictDispersion(f Family, cfg PredictConfig) (*PredictionResult, error) {
	return core.PredictDispersion(a.store, f, cfg)
}

// PredictAllFamilies runs the forecasting experiment for every family with
// enough data (Table IV).
func (a *Analyzer) PredictAllFamilies(cfg PredictConfig) []*PredictionResult {
	return core.PredictAllFamilies(a.store, cfg)
}

// PredictNextAttacks forecasts the next-attack start gap per repeat target.
func (a *Analyzer) PredictNextAttacks(minAttacks int) []NextAttackPrediction {
	return core.PredictNextAttacks(a.store, minAttacks)
}

// TargetCountries computes one family's Table V profile.
func (a *Analyzer) TargetCountries(f Family, topN int) TargetCountryProfile {
	return core.TargetCountries(a.store, f, topN)
}

// GlobalTargetCountries ranks victim countries across families.
func (a *Analyzer) GlobalTargetCountries(topN int) []core.CountryCount {
	return core.GlobalTargetCountries(a.store, topN)
}

// OrgHotspots computes the Fig 14 organization-level hotspots for one
// family inside [from, to); zero times mean the whole workload.
func (a *Analyzer) OrgHotspots(f Family, from, to time.Time) []OrgHotspot {
	return core.OrgHotspots(a.store, f, from, to)
}

// Collaborations detects and summarizes §V collaborative attacks.
func (a *Analyzer) Collaborations() CollabStats { return core.AnalyzeCollaborations(a.store) }

// Pair analyzes the collaborations between two families (Fig 16).
func (a *Analyzer) Pair(x, y Family) core.PairSummary { return core.AnalyzePair(a.store, x, y) }

// Chains detects and summarizes §V-B multistage attacks.
func (a *Analyzer) Chains() ChainStats { return core.AnalyzeChains(a.store) }

// MagnitudeProfile characterizes one family's attack magnitudes.
func (a *Analyzer) MagnitudeProfile(f Family) (MagnitudeProfile, error) {
	return core.ProfileMagnitudes(a.store, f)
}

// ConcurrentLoad sweeps the workload for the number of simultaneously
// active attacks over time (§II-B's "243 simultaneous attacks" figure).
func (a *Analyzer) ConcurrentLoad() ([]core.LoadPoint, LoadStats, error) {
	return core.ConcurrentLoad(a.store)
}

// TransferPredict applies a dispersion model fitted on one family to
// another (the paper's cross-family learning claim).
func (a *Analyzer) TransferPredict(source, target Family, order ARIMAOrder, minSeries int) (*TransferResult, error) {
	return core.TransferPredict(a.store, source, target, order, minSeries)
}

// AnalyzeDiurnal scores hour-of-day / day-of-week timing concentration
// against a user-driven reference profile (§III-A: DDoS launches show no
// diurnal pattern).
func (a *Analyzer) AnalyzeDiurnal() (DiurnalAnalysis, error) {
	return core.AnalyzeDiurnal(a.store)
}

// BuildBlacklist ranks bots observed in [from, to) by attack participation
// and keeps the top maxSize (0 = all). Zero times mean the whole workload.
func (a *Analyzer) BuildBlacklist(from, to time.Time, maxSize int) (*Blacklist, error) {
	return core.BuildBlacklist(a.store, from, to, maxSize)
}

// EvaluateBlacklist replays the attacks in [from, to) against a blacklist.
func (a *Analyzer) EvaluateBlacklist(bl *Blacklist, from, to time.Time) (BlacklistEvaluation, error) {
	return core.EvaluateBlacklist(a.store, bl, from, to)
}

// PlanMitigation derives per-target high-alert windows from historical
// inter-attack gaps for targets with at least minAttacks attacks.
func (a *Analyzer) PlanMitigation(minAttacks int) []MitigationWindow {
	return core.PlanMitigation(a.store, minAttacks)
}

// WeeklySources computes the Fig 8 week-by-week source aggregation.
func (a *Analyzer) WeeklySources(f Family) ([]WeekStats, error) {
	return a.collector.WeeklySources(f)
}

// HourlyReports replays the paper's hourly collection pipeline (§II-B).
func (a *Analyzer) HourlyReports(f Family) ([]HourlyReport, error) {
	return a.collector.HourlyReports(f)
}

// BotnetActivities profiles every generation of a family (activity spans,
// targets, peak magnitudes), most active first.
func (a *Analyzer) BotnetActivities(f Family) ([]BotnetActivity, error) {
	return a.collector.BotnetActivities(f)
}

// Churn measures how concentrated a family's attacks are across its
// botnet generations.
func (a *Analyzer) Churn(f Family) (GenerationChurn, error) {
	return a.collector.Churn(f)
}

// FitARIMA fits an ARIMA model to an arbitrary series.
func FitARIMA(series []float64, order ARIMAOrder) (*ARIMAModel, error) {
	return timeseries.Fit(series, order)
}

// AutoFitARIMA selects an ARIMA order by BIC over a small grid.
func AutoFitARIMA(series []float64, d, maxP, maxQ int) (*ARIMAModel, error) {
	return timeseries.AutoFit(series, d, maxP, maxQ)
}

// Experiment types, re-exported from the experiments layer.
type (
	// ExperimentResult is the outcome of one table/figure regeneration.
	ExperimentResult = experiments.Result
	// ExperimentWorkload drives per-table/figure regeneration.
	ExperimentWorkload = experiments.Workload
)

// NewExperiments wraps a store for table/figure regeneration; scale is the
// generation scale the count expectations are adjusted by (1.0 = paper).
func NewExperiments(store *Store, scale float64) *ExperimentWorkload {
	return experiments.FromStore(store, scale)
}
