//go:build race

package botscope

// Under the race detector the round trip runs at a tenth of paper scale:
// the byte-identity property is scale-independent, and the full-size run
// would dominate the race-enabled verify gate's wall clock.
const roundTripScale = 0.1
