module botscope

go 1.22
