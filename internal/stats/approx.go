package stats

import "math"

// DefaultEpsilon is the tolerance the analysis layers use when comparing
// derived floating-point statistics for equality.
const DefaultEpsilon = 1e-9

// ApproxEqual reports whether a and b agree within eps, using a mixed
// absolute/relative tolerance: |a-b| <= eps catches values near zero, and
// |a-b| <= eps*max(|a|,|b|) scales with magnitude. NaN equals nothing.
// This is the epsilon helper the floateq analyzer points to: direct ==/!=
// on floats is forbidden in the statistics packages.
func ApproxEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //botvet:allow floateq — fast path; also handles equal infinities
		return true
	}
	d := math.Abs(a - b)
	return d <= eps || d <= eps*math.Max(math.Abs(a), math.Abs(b))
}

// IsZero reports whether x is exactly +0 or -0. It is the sanctioned,
// greppable form of the exact zero test — division guards and
// zero-sentinel counts mean precisely zero, not "small".
func IsZero(x float64) bool {
	return x == 0 //botvet:allow floateq — exact zero is the intended semantics here
}
