package stats

import (
	"math"
	"math/rand"
	"testing"
)

func ar1Series(phi float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	return xs
}

func TestAutocovarianceLagZeroIsVariance(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 6}
	if got, want := Autocovariance(xs, 0), PopVariance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Autocovariance(0) = %v, want population variance %v", got, want)
	}
}

func TestAutocovarianceOutOfRange(t *testing.T) {
	xs := []float64{1, 2, 3}
	for _, k := range []int{-1, 3, 10} {
		if got := Autocovariance(xs, k); !math.IsNaN(got) {
			t.Errorf("Autocovariance(k=%d) = %v, want NaN", k, got)
		}
	}
	if got := Autocovariance(nil, 0); !math.IsNaN(got) {
		t.Errorf("Autocovariance(empty) = %v, want NaN", got)
	}
}

func TestACFLagZeroIsOne(t *testing.T) {
	xs := ar1Series(0.5, 200, 1)
	acf, err := ACF(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(acf[0], 1, 1e-12) {
		t.Errorf("ACF[0] = %v, want 1", acf[0])
	}
	for k, r := range acf {
		if r < -1-1e-9 || r > 1+1e-9 {
			t.Errorf("ACF[%d] = %v outside [-1, 1]", k, r)
		}
	}
}

func TestACFOfAR1DecaysGeometrically(t *testing.T) {
	const phi = 0.8
	xs := ar1Series(phi, 20000, 2)
	acf, err := ACF(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// For AR(1), rho(k) = phi^k.
	for k := 1; k <= 3; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(acf[k]-want) > 0.05 {
			t.Errorf("ACF[%d] = %v, want about %v", k, acf[k], want)
		}
	}
}

func TestACFErrors(t *testing.T) {
	if _, err := ACF([]float64{1}, 0); err == nil {
		t.Error("ACF of singleton succeeded, want error")
	}
	if _, err := ACF([]float64{1, 2, 3}, 3); err == nil {
		t.Error("ACF with lag >= n succeeded, want error")
	}
	if _, err := ACF([]float64{5, 5, 5, 5}, 2); err == nil {
		t.Error("ACF of constant series succeeded, want error")
	}
}

func TestPACFOfAR1CutsOffAfterLagOne(t *testing.T) {
	const phi = 0.7
	xs := ar1Series(phi, 20000, 3)
	pacf, err := PACF(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pacf[0]-phi) > 0.05 {
		t.Errorf("PACF[1] = %v, want about %v", pacf[0], phi)
	}
	for k := 1; k < len(pacf); k++ {
		if math.Abs(pacf[k]) > 0.05 {
			t.Errorf("PACF at lag %d = %v, want about 0 for AR(1)", k+1, pacf[k])
		}
	}
}

func TestPACFOfAR2(t *testing.T) {
	// AR(2): x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + e_t. PACF at lag 2 must be
	// close to 0.3 and near zero at lag 3.
	rng := rand.New(rand.NewSource(4))
	n := 30000
	xs := make([]float64, n)
	for i := 2; i < n; i++ {
		xs[i] = 0.5*xs[i-1] + 0.3*xs[i-2] + rng.NormFloat64()
	}
	pacf, err := PACF(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pacf[1]-0.3) > 0.05 {
		t.Errorf("PACF[2] = %v, want about 0.3", pacf[1])
	}
	if math.Abs(pacf[2]) > 0.05 {
		t.Errorf("PACF[3] = %v, want about 0", pacf[2])
	}
}

func TestPACFZeroMaxLag(t *testing.T) {
	got, err := PACF([]float64{1, 2, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("PACF(maxLag=0) = %v, want nil", got)
	}
}

func TestLjungBoxWhiteNoiseIsSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	q, err := LjungBox(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Q ~ chi-squared with 10 dof for white noise; 99.9th percentile ~ 29.6.
	if q > 35 {
		t.Errorf("LjungBox(white noise) = %v, implausibly large", q)
	}

	// A strongly autocorrelated series must blow far past that.
	ar := ar1Series(0.9, n, 6)
	qAR, err := LjungBox(ar, 10)
	if err != nil {
		t.Fatal(err)
	}
	if qAR < 100 {
		t.Errorf("LjungBox(AR(1) phi=0.9) = %v, want large", qAR)
	}
}
