package stats

import (
	"math"
	"math/rand"
	"testing"
)

func normalSample(rng *rand.Rand, n int, mean, std float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + std*rng.NormFloat64()
	}
	return out
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := normalSample(rng, 800, 0, 1)
	b := normalSample(rng, 800, 0, 1)
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.001) {
		t.Errorf("same distribution rejected: D=%v p=%v", res.Statistic, res.PValue)
	}
	if res.N1 != 800 || res.N2 != 800 {
		t.Errorf("sizes = %d/%d", res.N1, res.N2)
	}
}

func TestKolmogorovSmirnovDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := normalSample(rng, 500, 0, 1)
	b := normalSample(rng, 500, 1.5, 1)
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("shifted distribution not rejected: D=%v p=%v", res.Statistic, res.PValue)
	}
	if res.Statistic < 0.3 {
		t.Errorf("D = %v, want large for a 1.5-sigma shift", res.Statistic)
	}
}

func TestKolmogorovSmirnovIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res, err := KolmogorovSmirnov(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 0 {
		t.Errorf("D on identical samples = %v, want 0", res.Statistic)
	}
	if res.PValue != 1 {
		t.Errorf("p on identical samples = %v, want 1", res.PValue)
	}
}

func TestKolmogorovSmirnovDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{100, 200, 300}
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 1 {
		t.Errorf("D on disjoint samples = %v, want 1", res.Statistic)
	}
}

func TestKolmogorovSmirnovErrors(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Error("empty first sample accepted")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); err == nil {
		t.Error("empty second sample accepted")
	}
}

func TestKSPValueMonotone(t *testing.T) {
	prev := 1.0
	for _, lambda := range []float64{0.1, 0.5, 1.0, 1.5, 2.0, 3.0} {
		p := ksPValue(lambda)
		if p > prev+1e-12 {
			t.Errorf("p-value not decreasing at lambda %v: %v > %v", lambda, p, prev)
		}
		if p < 0 || p > 1 {
			t.Errorf("p-value %v out of range at lambda %v", p, lambda)
		}
		prev = p
	}
	if got := ksPValue(0); got != 1 {
		t.Errorf("ksPValue(0) = %v, want 1", got)
	}
}

func TestWassersteinDistance(t *testing.T) {
	// Point masses at 0 and at 3: distance is exactly 3.
	d, err := WassersteinDistance([]float64{0, 0, 0}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-3) > 1e-12 {
		t.Errorf("W1 = %v, want 3", d)
	}

	// Identical samples: zero distance.
	same := []float64{1, 5, 9}
	d, err = WassersteinDistance(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("W1 on identical samples = %v, want 0", d)
	}

	// Shift invariance: W1(X, X+c) = c.
	rng := rand.New(rand.NewSource(3))
	a := normalSample(rng, 2000, 0, 1)
	b := make([]float64, len(a))
	for i := range a {
		b[i] = a[i] + 2.5
	}
	d, err = WassersteinDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2.5) > 0.05 {
		t.Errorf("W1 of 2.5-shift = %v, want about 2.5", d)
	}

	if _, err := WassersteinDistance(nil, same); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestWassersteinSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := normalSample(rng, 300, 0, 2)
	b := normalSample(rng, 400, 1, 1)
	d1, err := WassersteinDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := WassersteinDistance(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("asymmetric W1: %v vs %v", d1, d2)
	}
}
