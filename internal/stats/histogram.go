package stats

import (
	"errors"
	"fmt"
	"math"
)

// Histogram is a fixed-bin histogram over a half-open interval [Lo, Hi).
// Figures 10 and 11 (geolocation-distance histograms) are built on it.
type Histogram struct {
	lo, hi   float64
	width    float64
	counts   []int
	under    int // observations below lo
	over     int // observations at or above hi
	total    int
	logScale bool
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It returns an error if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram bins must be positive, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram needs hi > lo, got [%g, %g)", lo, hi)
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]int, bins),
	}, nil
}

// NewLogHistogram creates a histogram whose bins are equal-width in
// log-space over [lo, hi); lo must be positive. The paper's duration and
// interval panels use log-scaled axes, which map to log-binned counts.
func NewLogHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if lo <= 0 {
		return nil, errors.New("stats: log histogram needs lo > 0")
	}
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram bins must be positive, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram needs hi > lo, got [%g, %g)", lo, hi)
	}
	return &Histogram{
		lo:       math.Log(lo),
		hi:       math.Log(hi),
		width:    (math.Log(hi) - math.Log(lo)) / float64(bins),
		counts:   make([]int, bins),
		logScale: true,
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	v := x
	if h.logScale {
		if x <= 0 {
			h.under++
			return
		}
		v = math.Log(x)
	}
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		idx := int((v - h.lo) / h.width)
		if idx >= len(h.counts) { // float round-off at the top edge
			idx = len(h.counts) - 1
		}
		h.counts[idx]++
	}
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the number of observations in bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Counts returns a copy of all bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// Underflow returns the number of observations below the range.
func (h *Histogram) Underflow() int { return h.under }

// Overflow returns the number of observations at or above the range.
func (h *Histogram) Overflow() int { return h.over }

// Total returns the number of observations added, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinEdges returns the lower and upper edge of bin i in data space.
func (h *Histogram) BinEdges(i int) (lo, hi float64) {
	lo = h.lo + float64(i)*h.width
	hi = lo + h.width
	if h.logScale {
		return math.Exp(lo), math.Exp(hi)
	}
	return lo, hi
}

// BinCenter returns the midpoint of bin i in data space (geometric mean for
// log-scaled histograms).
func (h *Histogram) BinCenter(i int) float64 {
	lo, hi := h.BinEdges(i)
	if h.logScale {
		return math.Sqrt(lo * hi)
	}
	return (lo + hi) / 2
}

// MaxCount returns the largest bin count (0 for an empty histogram).
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// ModeBin returns the index of the fullest bin, or -1 if all bins are empty.
func (h *Histogram) ModeBin() int {
	best, bestCount := -1, 0
	for i, c := range h.counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return best
}
