package stats

import (
	"fmt"
	"math"
)

// CosineSimilarity returns the cosine of the angle between vectors a and b.
// Table IV of the paper scores ARIMA predictions against ground truth with
// this measure. It returns an error if the lengths differ or either vector
// has zero norm.
func CosineSimilarity(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: cosine similarity needs equal lengths, got %d and %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if IsZero(na) || IsZero(nb) {
		return 0, fmt.Errorf("stats: cosine similarity undefined for zero vector")
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb)), nil
}

// PearsonCorrelation returns the sample Pearson correlation coefficient of
// a and b. It returns an error if the lengths differ, fewer than two points
// are given, or either sample is constant.
func PearsonCorrelation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: correlation needs equal lengths, got %d and %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, fmt.Errorf("stats: correlation needs at least 2 points, got %d", len(a))
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if IsZero(va) || IsZero(vb) {
		return 0, fmt.Errorf("stats: correlation undefined for constant sample")
	}
	return cov / math.Sqrt(va*vb), nil
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("stats: MAE needs equal lengths, got %d and %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - truth[i])
	}
	return sum / float64(len(pred)), nil
}

// RMSE returns the root mean squared error between predictions and truth.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("stats: RMSE needs equal lengths, got %d and %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range pred {
		d := pred[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}
