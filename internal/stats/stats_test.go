package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestSum(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{42}, want: 42},
		{name: "mixed signs", give: []float64{1, -1, 2, -2, 5}, want: 5},
		{name: "kahan stability", give: []float64{1e16, 1, -1e16}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Sum(tt.give); got != tt.want {
				t.Errorf("Sum(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty is NaN", give: nil, want: math.NaN()},
		{name: "constant", give: []float64{3, 3, 3}, want: 3},
		{name: "simple", give: []float64{1, 2, 3, 4}, want: 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known: population variance 4, sample variance 32/7.
	if got := PopVariance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := PopStdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("PopStdDev = %v, want 2", got)
	}
	if got := Variance([]float64{1}); !math.IsNaN(got) {
		t.Errorf("Variance of singleton = %v, want NaN", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		name string
		q    float64
		want float64
	}{
		{name: "min", q: 0, want: 1},
		{name: "max", q: 1, want: 5},
		{name: "median", q: 0.5, want: 3},
		{name: "interpolated", q: 0.25, want: 2},
		{name: "p80", q: 0.8, want: 4.2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
			}
		})
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("Quantile of empty = %v, want NaN", got)
	}
	if got := Quantile(xs, 1.5); !math.IsNaN(got) {
		t.Errorf("Quantile(1.5) = %v, want NaN", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	Quantile(xs, 0.5)
	want := []float64{5, 1, 4, 2, 3}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("Quantile mutated input: %v", xs)
		}
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Median = %v, want 2.5", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := Min(nil); !math.IsNaN(got) {
		t.Errorf("Min(nil) = %v, want NaN", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	s := Summarize(xs)
	if s.N != 5 {
		t.Errorf("N = %d, want 5", s.N)
	}
	if !almostEqual(s.Mean, 30, 1e-12) || !almostEqual(s.Median, 30, 1e-12) {
		t.Errorf("Mean/Median = %v/%v, want 30/30", s.Mean, s.Median)
	}
	if s.Min != 10 || s.Max != 50 {
		t.Errorf("Min/Max = %v/%v, want 10/50", s.Min, s.Max)
	}
	if !almostEqual(s.P80, 42, 1e-12) {
		t.Errorf("P80 = %v, want 42", s.P80)
	}

	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty Summarize = %+v, want N=0 NaN stats", empty)
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := FractionBelow(xs, 3); !almostEqual(got, 0.6, 1e-12) {
		t.Errorf("FractionBelow(3) = %v, want 0.6", got)
	}
	if got := FractionBelow(xs, 0); got != 0 {
		t.Errorf("FractionBelow(0) = %v, want 0", got)
	}
	if got := FractionBelow(nil, 1); !math.IsNaN(got) {
		t.Errorf("FractionBelow(nil) = %v, want NaN", got)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		o.Add(xs[i])
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d, want %d", o.N(), len(xs))
	}
	if !almostEqual(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v != batch mean %v", o.Mean(), Mean(xs))
	}
	if !almostEqual(o.Variance(), Variance(xs), 1e-9) {
		t.Errorf("online variance %v != batch variance %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Errorf("online min/max %v/%v != batch %v/%v", o.Min(), o.Max(), Min(xs), Max(xs))
	}
}

func TestOnlineMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, whole Online
	var xs []float64
	for i := 0; i < 500; i++ {
		x := rng.ExpFloat64()
		xs = append(xs, x)
		if i < 200 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		whole.Add(x)
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean %v != whole mean %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance %v != whole variance %v", a.Variance(), whole.Variance())
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Add(2)
	saved := a
	a.Merge(b) // merging empty is a no-op
	if a != saved {
		t.Errorf("merge with empty changed accumulator: %+v -> %+v", saved, a)
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || !almostEqual(b.Mean(), 1.5, 1e-12) {
		t.Errorf("merge into empty = %+v, want N=2 mean=1.5", b)
	}
}

// Property: for any sample, Min <= Quantile(q) <= Max for q in [0,1], and
// quantiles are monotone in q.
func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(q1, 1))
		qb := math.Abs(math.Mod(q2, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		return va >= Min(xs) && vb <= Max(xs) && va <= vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Online accumulation matches batch statistics for any sample.
func TestOnlineProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		if len(xs) == 0 {
			return o.N() == 0
		}
		tol := 1e-6 * (1 + math.Abs(Mean(xs)))
		if !almostEqual(o.Mean(), Mean(xs), tol) {
			return false
		}
		if len(xs) >= 2 {
			vtol := 1e-6 * (1 + Variance(xs))
			return almostEqual(o.Variance(), Variance(xs), vtol)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
