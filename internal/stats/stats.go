// Package stats provides the descriptive-statistics substrate used by every
// analysis in botscope: moments, quantiles, empirical distributions,
// histograms, similarity measures, and autocorrelation.
//
// The paper's analyses are statistical summaries over attack logs (means,
// standard deviations, CDFs, cosine similarity of prediction vs ground
// truth). Go's standard library has no statistics package, so this one is
// implemented from scratch on stdlib only.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs. The sum of an empty slice is 0.
func Sum(xs []float64) float64 {
	// Neumaier (improved Kahan) summation keeps the long 7-month
	// aggregations accurate even with mixed magnitudes.
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns NaN for samples with fewer than two observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// PopVariance returns the population (n) variance of xs, or NaN if empty.
func PopVariance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// PopStdDev returns the population standard deviation of xs.
func PopStdDev(xs []float64) float64 {
	return math.Sqrt(PopVariance(xs))
}

// Min returns the smallest value in xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the middle value of xs (mean of the two middle values for
// even-sized samples), or NaN if xs is empty. xs is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns NaN if xs is empty or q is outside [0, 1]. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes the type-7 quantile of an already-sorted sample.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the descriptive statistics the paper reports for
// durations and intervals (mean, median, standard deviation, extremes).
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
	P80    float64 // the paper repeatedly reports 80th percentiles
	P95    float64
}

// Summarize computes a Summary of xs. An empty sample yields a Summary with
// N == 0 and NaN statistics.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Median: nan, StdDev: nan, Min: nan, Max: nan, P80: nan, P95: nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: quantileSorted(sorted, 0.5),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P80:    quantileSorted(sorted, 0.8),
		P95:    quantileSorted(sorted, 0.95),
	}
}

// FractionBelow returns the fraction of xs that is strictly less than or
// equal to x. It returns NaN for an empty sample.
func FractionBelow(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	count := 0
	for _, v := range xs {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// Online accumulates streaming moments using Welford's algorithm. The zero
// value is ready to use. It is not safe for concurrent use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations added.
func (o *Online) N() int { return o.n }

// Mean returns the running mean, or NaN before any observation.
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Variance returns the running unbiased variance, or NaN with fewer than two
// observations.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running unbiased standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation, or NaN before any observation.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

// Max returns the largest observation, or NaN before any observation.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}

// Merge folds another accumulator into o (parallel aggregation).
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n := o.n + other.n
	delta := other.mean - o.mean
	o.m2 += other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(n)
	o.mean += delta * float64(other.n) / float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n = n
}
