package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestChiSquareUniformOnUniformCounts(t *testing.T) {
	counts := []int{100, 100, 100, 100}
	res, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 0 {
		t.Errorf("statistic = %v, want 0", res.Statistic)
	}
	if res.PValue != 1 {
		t.Errorf("p = %v, want 1", res.PValue)
	}
	if res.DegreesOfFreedom != 3 {
		t.Errorf("dof = %d, want 3", res.DegreesOfFreedom)
	}
	if res.Reject(0.05) {
		t.Error("uniform counts rejected")
	}
}

func TestChiSquareUniformOnSkewedCounts(t *testing.T) {
	counts := []int{1000, 10, 10, 10}
	res, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.001) {
		t.Errorf("heavily skewed counts not rejected: p = %v", res.PValue)
	}
}

func TestChiSquareUniformSampledUniform(t *testing.T) {
	// Multinomial samples from a uniform distribution should rarely reject.
	rng := rand.New(rand.NewSource(1))
	rejections := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		counts := make([]int, 24)
		for i := 0; i < 2400; i++ {
			counts[rng.Intn(24)]++
		}
		res, err := ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.01) {
			rejections++
		}
	}
	// Expected about 1% rejections; allow generous head room.
	if rejections > 5 {
		t.Errorf("rejections = %d/%d at alpha 0.01, want about 0-2", rejections, trials)
	}
}

func TestChiSquareUniformErrors(t *testing.T) {
	if _, err := ChiSquareUniform([]int{5}); err == nil {
		t.Error("single bin accepted")
	}
	if _, err := ChiSquareUniform([]int{0, 0, 0}); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := ChiSquareUniform([]int{5, -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Chi-square with 1 dof: P(X >= 3.841) = 0.05.
	tests := []struct {
		x, k, want, tol float64
	}{
		{x: 3.841, k: 1, want: 0.05, tol: 1e-3},
		{x: 5.991, k: 2, want: 0.05, tol: 1e-3},
		{x: 16.919, k: 9, want: 0.05, tol: 1e-3},
		{x: 2.558, k: 10, want: 0.99, tol: 1e-3},
		{x: 0, k: 5, want: 1, tol: 0},
	}
	for _, tt := range tests {
		if got := chiSquareSurvival(tt.x, tt.k); math.Abs(got-tt.want) > tt.tol {
			t.Errorf("chiSquareSurvival(%v, %v) = %v, want %v", tt.x, tt.k, got, tt.want)
		}
	}
}

func TestChiSquareSurvivalMonotone(t *testing.T) {
	prev := 1.0
	for x := 0.5; x < 40; x += 0.5 {
		p := chiSquareSurvival(x, 6)
		if p > prev+1e-12 {
			t.Fatalf("survival not decreasing at x=%v: %v > %v", x, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("survival %v out of range at x=%v", p, x)
		}
		prev = p
	}
}

func TestUniformityScore(t *testing.T) {
	flat, err := UniformityScore([]int{50, 50, 50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if flat != 0 {
		t.Errorf("uniform score = %v, want 0", flat)
	}
	// All mass in one bin is the maximal concentration: score 1.
	peaked, err := UniformityScore([]int{200, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peaked-1) > 1e-9 {
		t.Errorf("peaked score = %v, want 1", peaked)
	}
	mild, err := UniformityScore([]int{60, 50, 40, 50})
	if err != nil {
		t.Fatal(err)
	}
	if mild <= 0 || mild >= peaked {
		t.Errorf("mild skew score = %v, want between 0 and 1", mild)
	}
	// Scale invariance: multiplying all counts by 10 keeps the score.
	mild10, err := UniformityScore([]int{600, 500, 400, 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mild-mild10) > 1e-9 {
		t.Errorf("score not scale invariant: %v vs %v", mild, mild10)
	}
}
