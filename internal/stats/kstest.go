package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult is the outcome of a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	// Statistic is the maximum distance between the two empirical CDFs.
	Statistic float64
	// PValue is the asymptotic two-sided p-value (Kolmogorov distribution).
	PValue float64
	// N1, N2 are the sample sizes.
	N1, N2 int
}

// Reject reports whether the null hypothesis (same distribution) is
// rejected at the given significance level.
func (r KSResult) Reject(alpha float64) bool { return r.PValue < alpha }

// KolmogorovSmirnov runs the two-sample KS test. botscope uses it to
// compare generated interval/duration distributions against reference
// shapes. It returns an error when either sample is empty.
func KolmogorovSmirnov(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, fmt.Errorf("stats: KS test needs non-empty samples, got %d and %d", len(a), len(b))
	}
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)

	var (
		d      float64
		i, j   int
		n1, n2 = float64(len(sa)), float64(len(sb))
	)
	for i < len(sa) && j < len(sb) {
		x1, x2 := sa[i], sb[j]
		switch {
		case x1 <= x2:
			i++
		default:
			j++
		}
		if x1 == x2 { //botvet:allow floateq — ties are exact duplicates of sampled values
			// Advance both past ties to evaluate the CDFs after the tie.
			for i < len(sa) && sa[i] == x1 { //botvet:allow floateq — exact-tie scan
				i++
			}
			for j < len(sb) && sb[j] == x1 { //botvet:allow floateq — exact-tie scan
				j++
			}
		}
		diff := math.Abs(float64(i)/n1 - float64(j)/n2)
		if diff > d {
			d = diff
		}
	}

	ne := n1 * n2 / (n1 + n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{Statistic: d, PValue: ksPValue(lambda), N1: len(a), N2: len(b)}, nil
}

// ksPValue evaluates the Kolmogorov distribution's survival function
// Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var (
		sum  float64
		sign = 1.0
	)
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// WassersteinDistance returns the 1-Wasserstein (earth mover's) distance
// between two empirical distributions — a magnitude-aware complement to KS
// used in calibration reports.
func WassersteinDistance(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("stats: wasserstein needs non-empty samples, got %d and %d", len(a), len(b))
	}
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)

	// Integrate |F_a(x) - F_b(x)| dx over the merged support.
	var (
		dist   float64
		i, j   int
		prev   float64
		n1, n2 = float64(len(sa)), float64(len(sb))
		first  = true
	)
	for i < len(sa) || j < len(sb) {
		var x float64
		switch {
		case i >= len(sa):
			x = sb[j]
		case j >= len(sb):
			x = sa[i]
		case sa[i] <= sb[j]:
			x = sa[i]
		default:
			x = sb[j]
		}
		if !first {
			fa := float64(i) / n1
			fb := float64(j) / n2
			dist += math.Abs(fa-fb) * (x - prev)
		}
		first = false
		prev = x
		for i < len(sa) && sa[i] == x { //botvet:allow floateq — exact-tie scan
			i++
		}
		for j < len(sb) && sb[j] == x { //botvet:allow floateq — exact-tie scan
			j++
		}
	}
	return dist, nil
}
