package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFEval(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3, 10})
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{name: "below all", x: 0, want: 0},
		{name: "at first", x: 1, want: 0.2},
		{name: "at tie", x: 2, want: 0.6},
		{name: "between", x: 5, want: 0.8},
		{name: "at max", x: 10, want: 1},
		{name: "above all", x: 100, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := e.Eval(tt.x); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Eval(%v) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.N() != 0 {
		t.Errorf("N = %d, want 0", e.N())
	}
	if got := e.Eval(1); !math.IsNaN(got) {
		t.Errorf("Eval on empty = %v, want NaN", got)
	}
	if got := e.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("Quantile on empty = %v, want NaN", got)
	}
	if pts := e.Points(10); pts != nil {
		t.Errorf("Points on empty = %v, want nil", pts)
	}
	if pts := e.LogPoints(10); pts != nil {
		t.Errorf("LogPoints on empty = %v, want nil", pts)
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	e := NewECDF(xs)
	xs[0] = 100
	if got := e.Eval(3); !almostEqual(got, 1, 1e-12) {
		t.Errorf("ECDF changed after input mutation: Eval(3) = %v, want 1", got)
	}
}

func TestECDFQuantileInvertsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	e := NewECDF(xs)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.8, 0.95} {
		x := e.Quantile(q)
		p := e.Eval(x)
		if p < q-0.01 {
			t.Errorf("Eval(Quantile(%v)) = %v, want >= %v", q, p, q)
		}
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("len(Points) = %d, want 5", len(pts))
	}
	if pts[len(pts)-1].P != 1 {
		t.Errorf("last point P = %v, want 1", pts[len(pts)-1].P)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].P <= pts[i-1].P {
			t.Errorf("points not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestECDFLogPoints(t *testing.T) {
	// Sample spanning several decades, like attack durations.
	e := NewECDF([]float64{0, 0, 1, 10, 100, 1000, 10000})
	pts := e.LogPoints(20)
	if len(pts) != 20 {
		t.Fatalf("len(LogPoints) = %d, want 20", len(pts))
	}
	if !almostEqual(pts[0].X, 1, 1e-9) {
		t.Errorf("first log point X = %v, want 1", pts[0].X)
	}
	if !almostEqual(pts[len(pts)-1].X, 10000, 1e-6) {
		t.Errorf("last log point X = %v, want 10000", pts[len(pts)-1].X)
	}
	if pts[len(pts)-1].P != 1 {
		t.Errorf("last log point P = %v, want 1", pts[len(pts)-1].P)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Errorf("CDF decreasing at %d: %v -> %v", i, pts[i-1].P, pts[i].P)
		}
	}
}

func TestECDFLogPointsAllNonPositive(t *testing.T) {
	e := NewECDF([]float64{0, -1, -5})
	if pts := e.LogPoints(10); pts != nil {
		t.Errorf("LogPoints of non-positive sample = %v, want nil", pts)
	}
}

func TestECDFLogPointsSinglePositiveValue(t *testing.T) {
	e := NewECDF([]float64{0, 5, 5, 5})
	pts := e.LogPoints(10)
	if len(pts) != 1 || pts[0].X != 5 || pts[0].P != 1 {
		t.Errorf("LogPoints = %v, want single point {5 1}", pts)
	}
}

// Property: Eval is a valid CDF — monotone, in [0,1], 0 below min, 1 at max.
func TestECDFProperty(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 || math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		e := NewECDF(xs)
		p := e.Eval(probe)
		if p < 0 || p > 1 {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if probe < sorted[0] && p != 0 {
			return false
		}
		if probe >= sorted[len(sorted)-1] && p != 1 {
			return false
		}
		// Monotone against a nearby probe.
		return e.Eval(probe+1) >= p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
