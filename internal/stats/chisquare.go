package stats

import (
	"fmt"
	"math"
)

// ChiSquareResult is the outcome of a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	Statistic float64
	// DegreesOfFreedom is bins - 1.
	DegreesOfFreedom int
	// PValue is the upper-tail probability of the chi-square distribution.
	PValue float64
}

// Reject reports whether the null hypothesis is rejected at alpha.
func (r ChiSquareResult) Reject(alpha float64) bool { return r.PValue < alpha }

// ChiSquareUniform tests observed bin counts against a uniform expectation.
// botscope uses it for the paper's §III-A observation that daily/hourly
// attack counts show none of the diurnal patterns of user-driven traffic —
// i.e. the *rejection* of uniformity is weak compared to genuinely diurnal
// series. It returns an error for fewer than two bins or zero totals.
func ChiSquareUniform(counts []int) (ChiSquareResult, error) {
	if len(counts) < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square needs >= 2 bins, got %d", len(counts))
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: negative count %d", c)
		}
		total += c
	}
	if total == 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square on empty counts")
	}
	expected := float64(total) / float64(len(counts))
	var stat float64
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	dof := len(counts) - 1
	return ChiSquareResult{
		Statistic:        stat,
		DegreesOfFreedom: dof,
		PValue:           chiSquareSurvival(stat, float64(dof)),
	}, nil
}

// chiSquareSurvival returns P(X >= x) for a chi-square distribution with
// k degrees of freedom, via the regularized upper incomplete gamma
// function Q(k/2, x/2).
func chiSquareSurvival(x, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return upperIncompleteGammaRegularized(k/2, x/2)
}

// upperIncompleteGammaRegularized computes Q(a, x) = Gamma(a, x)/Gamma(a)
// with the series expansion for x < a+1 and the continued fraction
// otherwise (Numerical Recipes style).
func upperIncompleteGammaRegularized(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case IsZero(x):
		return 1
	case x < a+1:
		return 1 - lowerGammaSeries(a, x)
	default:
		return upperGammaContinuedFraction(a, x)
	}
}

// lowerGammaSeries computes P(a, x) by series expansion.
func lowerGammaSeries(a, x float64) float64 {
	lgamma, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgamma)
}

// upperGammaContinuedFraction computes Q(a, x) by Lentz's continued
// fraction.
func upperGammaContinuedFraction(a, x float64) float64 {
	const (
		tiny = 1e-300
		eps  = 1e-14
	)
	lgamma, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgamma) * h
}

// UniformityScore normalizes the chi-square statistic to Cramer's V-style
// effect size in [0, 1]: 0 for perfectly uniform counts, approaching 1 as
// mass concentrates. Unlike the p-value it is sample-size independent, so
// "diurnal or not" comparisons across workload scales stay meaningful.
func UniformityScore(counts []int) (float64, error) {
	res, err := ChiSquareUniform(counts)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(counts) < 2 {
		return 0, nil
	}
	maxStat := float64(total) * float64(len(counts)-1)
	return math.Sqrt(res.Statistic / maxStat), nil
}
