package stats

import (
	"fmt"
	"math"
)

// Autocovariance returns the lag-k sample autocovariance of xs using the
// biased (1/n) normalization conventional in time-series analysis.
// It returns NaN when k is out of range or the series is empty.
func Autocovariance(xs []float64, k int) float64 {
	n := len(xs)
	if n == 0 || k < 0 || k >= n {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for i := 0; i < n-k; i++ {
		sum += (xs[i] - m) * (xs[i+k] - m)
	}
	return sum / float64(n)
}

// ACF returns the autocorrelation function of xs at lags 0..maxLag.
// The lag-0 value is always 1 for a non-constant series. It returns an
// error when the series is too short or constant.
func ACF(xs []float64, maxLag int) ([]float64, error) {
	if len(xs) < 2 {
		return nil, fmt.Errorf("stats: ACF needs at least 2 points, got %d", len(xs))
	}
	if maxLag < 0 || maxLag >= len(xs) {
		return nil, fmt.Errorf("stats: ACF lag %d out of range for series of length %d", maxLag, len(xs))
	}
	c0 := Autocovariance(xs, 0)
	if IsZero(c0) {
		return nil, fmt.Errorf("stats: ACF undefined for constant series")
	}
	out := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		out[k] = Autocovariance(xs, k) / c0
	}
	return out, nil
}

// PACF returns the partial autocorrelation function at lags 1..maxLag via
// the Durbin-Levinson recursion. It is the standard diagnostic for choosing
// the AR order of an ARIMA model.
func PACF(xs []float64, maxLag int) ([]float64, error) {
	acf, err := ACF(xs, maxLag)
	if err != nil {
		return nil, err
	}
	if maxLag == 0 {
		return nil, nil
	}
	// Durbin-Levinson: phi[k][j] are AR(k) coefficients; pacf[k] = phi[k][k].
	pacf := make([]float64, maxLag)
	phi := make([]float64, maxLag+1)
	prev := make([]float64, maxLag+1)

	phi[1] = acf[1]
	pacf[0] = acf[1]
	v := 1 - acf[1]*acf[1]
	for k := 2; k <= maxLag; k++ {
		copy(prev, phi)
		num := acf[k]
		for j := 1; j < k; j++ {
			num -= prev[j] * acf[k-j]
		}
		if v <= 0 {
			// Degenerate (perfectly predictable) series; remaining partials
			// carry no information.
			for i := k - 1; i < maxLag; i++ {
				pacf[i] = 0
			}
			return pacf, nil
		}
		phikk := num / v
		phi[k] = phikk
		for j := 1; j < k; j++ {
			phi[j] = prev[j] - phikk*prev[k-j]
		}
		v *= 1 - phikk*phikk
		pacf[k-1] = phikk
	}
	return pacf, nil
}

// LjungBox returns the Ljung-Box Q statistic over lags 1..maxLag, a
// goodness-of-fit check that ARIMA residuals are white noise.
func LjungBox(residuals []float64, maxLag int) (float64, error) {
	acf, err := ACF(residuals, maxLag)
	if err != nil {
		return 0, err
	}
	n := float64(len(residuals))
	var q float64
	for k := 1; k <= maxLag; k++ {
		q += acf[k] * acf[k] / (n - float64(k))
	}
	return n * (n + 2) * q, nil
}
