package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCosineSimilarity(t *testing.T) {
	tests := []struct {
		name    string
		a, b    []float64
		want    float64
		wantErr bool
	}{
		{name: "identical", a: []float64{1, 2, 3}, b: []float64{1, 2, 3}, want: 1},
		{name: "scaled", a: []float64{1, 2, 3}, b: []float64{2, 4, 6}, want: 1},
		{name: "opposite", a: []float64{1, 0}, b: []float64{-1, 0}, want: -1},
		{name: "orthogonal", a: []float64{1, 0}, b: []float64{0, 1}, want: 0},
		{name: "length mismatch", a: []float64{1}, b: []float64{1, 2}, wantErr: true},
		{name: "empty", a: nil, b: nil, wantErr: true},
		{name: "zero vector", a: []float64{0, 0}, b: []float64{1, 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := CosineSimilarity(tt.a, tt.b)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("CosineSimilarity(%v, %v) = %v, want error", tt.a, tt.b, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("CosineSimilarity = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPearsonCorrelation(t *testing.T) {
	tests := []struct {
		name    string
		a, b    []float64
		want    float64
		wantErr bool
	}{
		{name: "perfect positive", a: []float64{1, 2, 3}, b: []float64{2, 4, 6}, want: 1},
		{name: "perfect negative", a: []float64{1, 2, 3}, b: []float64{3, 2, 1}, want: -1},
		{name: "constant sample", a: []float64{1, 1, 1}, b: []float64{1, 2, 3}, wantErr: true},
		{name: "too short", a: []float64{1}, b: []float64{1}, wantErr: true},
		{name: "length mismatch", a: []float64{1, 2}, b: []float64{1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := PearsonCorrelation(tt.a, tt.b)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("PearsonCorrelation = %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("PearsonCorrelation = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMAEAndRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{2, 2, 5}
	mae, err := MAE(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mae, 1, 1e-12) { // (1+0+2)/3
		t.Errorf("MAE = %v, want 1", mae)
	}
	rmse, err := RMSE(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rmse, math.Sqrt(5.0/3.0), 1e-12) {
		t.Errorf("RMSE = %v, want %v", rmse, math.Sqrt(5.0/3.0))
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("MAE length mismatch succeeded, want error")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("RMSE on empty succeeded, want error")
	}
}

// Property: cosine similarity is symmetric, bounded by [-1, 1], and
// invariant under positive scaling.
func TestCosineSimilarityProperties(t *testing.T) {
	f := func(raw []float64, scale float64) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]float64, 0, len(raw)/2)
		b := make([]float64, 0, len(raw)/2)
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
			if i%2 == 0 {
				a = append(a, x)
			} else {
				b = append(b, x)
			}
		}
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		ab, errAB := CosineSimilarity(a, b)
		ba, errBA := CosineSimilarity(b, a)
		if (errAB == nil) != (errBA == nil) {
			return false
		}
		if errAB != nil {
			return true
		}
		if !almostEqual(ab, ba, 1e-9) {
			return false
		}
		if ab < -1-1e-9 || ab > 1+1e-9 {
			return false
		}
		s := math.Abs(scale)
		if s < 1e-3 || s > 1e3 || math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		scaled := make([]float64, n)
		for i := range a {
			scaled[i] = a[i] * s
		}
		sim, err := CosineSimilarity(scaled, b)
		return err == nil && almostEqual(sim, ab, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
