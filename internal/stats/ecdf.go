package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a fixed sample.
// It backs every CDF figure in the paper (Figures 3, 5, 7, 9, 17).
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied and may be reused by
// the caller. An empty sample yields a valid ECDF whose Eval is always NaN.
func NewECDF(xs []float64) *ECDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Eval returns P(X <= x), or NaN for an empty sample.
func (e *ECDF) Eval(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of the first element > x; everything before it is <= x.
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (type-7 interpolation), or NaN if the
// sample is empty or q is outside [0, 1].
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	return quantileSorted(e.sorted, q)
}

// Min returns the smallest observation, or NaN for an empty sample.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Max returns the largest observation, or NaN for an empty sample.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Point is a single (x, P(X<=x)) pair of a sampled CDF curve.
type Point struct {
	X float64
	P float64
}

// Points samples the CDF at n evenly spaced probabilities in (0, 1], giving
// a plottable curve. n must be positive; fewer points are returned when the
// sample is smaller than n. An empty ECDF yields nil.
func (e *ECDF) Points(n int) []Point {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		pts = append(pts, Point{X: quantileSorted(e.sorted, p), P: p})
	}
	return pts
}

// LogPoints samples the CDF at n x-positions spaced logarithmically between
// the smallest positive observation and the maximum. This matches the
// log-scaled x-axes of the paper's interval and duration CDFs. Observations
// that are <= 0 contribute mass at the left edge of the curve. It returns
// nil when the sample is empty, has no positive values, or n <= 0.
func (e *ECDF) LogPoints(n int) []Point {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	// First positive value.
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(0, math.Inf(1)))
	if idx == len(e.sorted) {
		return nil
	}
	lo, hi := e.sorted[idx], e.sorted[len(e.sorted)-1]
	if IsZero(hi - lo) {
		return []Point{{X: hi, P: 1}}
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		x := math.Exp(logLo + frac*(logHi-logLo))
		pts = append(pts, Point{X: x, P: e.Eval(x)})
	}
	return pts
}
