package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	tests := []struct {
		name   string
		lo, hi float64
		bins   int
	}{
		{name: "zero bins", lo: 0, hi: 10, bins: 0},
		{name: "negative bins", lo: 0, hi: 10, bins: -3},
		{name: "inverted range", lo: 10, hi: 0, bins: 5},
		{name: "empty range", lo: 5, hi: 5, bins: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewHistogram(tt.lo, tt.hi, tt.bins); err == nil {
				t.Errorf("NewHistogram(%v, %v, %d) succeeded, want error", tt.lo, tt.hi, tt.bins)
			}
		})
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 1.9, 2, 5, 9.99, -1, 10, 11})
	if got := h.Count(0); got != 2 { // 0, 1.9
		t.Errorf("bin 0 = %d, want 2", got)
	}
	if got := h.Count(1); got != 1 { // 2
		t.Errorf("bin 1 = %d, want 1", got)
	}
	if got := h.Count(2); got != 1 { // 5
		t.Errorf("bin 2 = %d, want 1", got)
	}
	if got := h.Count(4); got != 1 { // 9.99
		t.Errorf("bin 4 = %d, want 1", got)
	}
	if got := h.Underflow(); got != 1 { // -1
		t.Errorf("underflow = %d, want 1", got)
	}
	if got := h.Overflow(); got != 2 { // 10, 11
		t.Errorf("overflow = %d, want 2", got)
	}
	if got := h.Total(); got != 8 {
		t.Errorf("total = %d, want 8", got)
	}
}

func TestHistogramBinEdgesAndCenter(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := h.BinEdges(3)
	if lo != 30 || hi != 40 {
		t.Errorf("BinEdges(3) = [%v, %v), want [30, 40)", lo, hi)
	}
	if c := h.BinCenter(3); c != 35 {
		t.Errorf("BinCenter(3) = %v, want 35", c)
	}
}

func TestLogHistogram(t *testing.T) {
	h, err := NewLogHistogram(1, 10000, 4) // decade bins
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{2, 5, 20, 200, 2000, 0, -3})
	if got := h.Count(0); got != 2 { // [1,10): 2, 5
		t.Errorf("bin 0 = %d, want 2", got)
	}
	if got := h.Count(1); got != 1 { // [10,100): 20
		t.Errorf("bin 1 = %d, want 1", got)
	}
	if got := h.Count(2); got != 1 { // [100,1000): 200
		t.Errorf("bin 2 = %d, want 1", got)
	}
	if got := h.Count(3); got != 1 { // [1000,10000): 2000
		t.Errorf("bin 3 = %d, want 1", got)
	}
	if got := h.Underflow(); got != 2 { // 0, -3 cannot be logged
		t.Errorf("underflow = %d, want 2", got)
	}
	lo, hi := h.BinEdges(1)
	if !almostEqual(lo, 10, 1e-9) || !almostEqual(hi, 100, 1e-9) {
		t.Errorf("log BinEdges(1) = [%v, %v), want [10, 100)", lo, hi)
	}
	if c := h.BinCenter(1); !almostEqual(c, math.Sqrt(1000), 1e-9) {
		t.Errorf("log BinCenter(1) = %v, want %v", c, math.Sqrt(1000))
	}
}

func TestLogHistogramValidation(t *testing.T) {
	if _, err := NewLogHistogram(0, 100, 5); err == nil {
		t.Error("NewLogHistogram with lo=0 succeeded, want error")
	}
	if _, err := NewLogHistogram(-1, 100, 5); err == nil {
		t.Error("NewLogHistogram with lo<0 succeeded, want error")
	}
	if _, err := NewLogHistogram(1, 100, 0); err == nil {
		t.Error("NewLogHistogram with 0 bins succeeded, want error")
	}
}

func TestHistogramModeAndMax(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.ModeBin(); got != -1 {
		t.Errorf("ModeBin of empty = %d, want -1", got)
	}
	h.AddAll([]float64{1, 3, 3, 3, 7})
	if got := h.ModeBin(); got != 3 {
		t.Errorf("ModeBin = %d, want 3", got)
	}
	if got := h.MaxCount(); got != 3 {
		t.Errorf("MaxCount = %d, want 3", got)
	}
}

func TestHistogramCountsCopy(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1)
	counts := h.Counts()
	counts[0] = 99
	if h.Count(0) != 1 {
		t.Error("Counts() aliases internal state")
	}
}

// Property: every observation lands in exactly one of {bins, under, over},
// so the total always balances.
func TestHistogramConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := NewHistogram(-50, 50, 7)
		if err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			h.Add(rng.NormFloat64() * 60)
		}
		sum := h.Underflow() + h.Overflow()
		for i := 0; i < h.Bins(); i++ {
			sum += h.Count(i)
		}
		return sum == h.Total() && h.Total() == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
