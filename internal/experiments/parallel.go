package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"botscope/internal/par"
)

// RunAllParallel executes every experiment concurrently with at most
// workers goroutines (0 means all cores) and returns the results in All()
// order. The context cancels outstanding work: experiments not yet started
// when ctx is done are reported as failures; running ones finish normally
// (analyses are CPU-bound and short).
func (w *Workload) RunAllParallel(ctx context.Context, workers int) ([]*Result, error) {
	workers = par.Workers(workers)
	all := w.All()
	type slot struct {
		res *Result
		err error
	}
	slots := make([]slot, len(all))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				res, err := all[idx].Run()
				slots[idx] = slot{res: res, err: err}
			}
		}()
	}

feed:
	for i := range all {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(all); j++ {
				slots[j] = slot{err: fmt.Errorf("canceled: %w", ctx.Err())}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	var (
		results []*Result
		errs    []string
	)
	for i, s := range slots {
		if s.err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", all[i].ID, s.err))
			continue
		}
		if s.res != nil {
			results = append(results, s.res)
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return results, fmt.Errorf("experiments: %s", strings.Join(errs, "; "))
	}
	return results, nil
}
