package experiments

import (
	"strings"
	"sync"
	"testing"
)

var (
	wlOnce sync.Once
	wl     *Workload
	wlErr  error
)

func sharedWorkload(t *testing.T) *Workload {
	t.Helper()
	wlOnce.Do(func() {
		wl, wlErr = NewWorkload(17, 0.05)
	})
	if wlErr != nil {
		t.Fatal(wlErr)
	}
	return wl
}

func TestFromStoreNormalizesScale(t *testing.T) {
	w := sharedWorkload(t)
	wrapped := FromStore(w.Store, 0)
	if wrapped.Scale != 1 {
		t.Errorf("Scale = %v, want normalized to 1", wrapped.Scale)
	}
	if wrapped.Store != w.Store {
		t.Error("store not carried through")
	}
}

func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation is slow")
	}
	w := sharedWorkload(t)
	results, err := w.RunAll()
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(results) != len(w.All()) {
		t.Fatalf("results = %d, want %d", len(results), len(w.All()))
	}
	seen := make(map[string]bool)
	for _, r := range results {
		if r.ID == "" || r.Title == "" {
			t.Errorf("incomplete result: %+v", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
		if strings.TrimSpace(r.Text) == "" {
			t.Errorf("%s rendered empty text", r.ID)
		}
		if len(r.Metrics) == 0 {
			t.Errorf("%s reports no metrics", r.ID)
		}
	}
	// Every experiment of the design document must be present.
	for _, id := range []string{
		"Figure 1", "Table II", "Table III", "Figure 2", "Figure 3",
		"Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8",
		"Figure 9", "Figure 10", "Figure 11", "Figure 12", "Figure 13",
		"Table IV", "Table V", "Figure 14", "Table VI", "Figure 15",
		"Figure 16", "Figure 17", "Figure 18",
		"Ext: Load", "Ext: Diurnal", "Ext: Calibration", "Ext: Defense", "Ext: Transfer",
	} {
		if !seen[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestKeyShapeMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation is slow")
	}
	w := sharedWorkload(t)

	// Figure 1: HTTP dominance.
	f1, err := w.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if got := metric(t, f1, "HTTP share"); got < 0.6 {
		t.Errorf("HTTP share = %v, want > 0.6", got)
	}

	// Figure 7: persistence comparison — our attacks outlast the baseline.
	f7, err := w.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if got := metric(t, f7, "share under 4 hours"); got < 0.6 || got > 0.95 {
		t.Errorf("share under 4h = %v, want about 0.8", got)
	}
	if got := metric(t, f7, "baseline share under 1.25 h"); got < 0.77 || got > 0.83 {
		t.Errorf("baseline calibration = %v, want 0.8", got)
	}

	// Figure 17: chain gaps are seconds-scale.
	f17, err := w.Figure17()
	if err != nil {
		t.Fatal(err)
	}
	if got := metric(t, f17, "share within 30 s"); got < 0.5 {
		t.Errorf("share within 30s = %v, want > 0.5", got)
	}

	// Table VI: dirtjumper leads intra-family collaboration.
	t6, err := w.TableVI()
	if err != nil {
		t.Fatal(err)
	}
	dj := metric(t, t6, "intra dirtjumper")
	for _, m := range t6.Metrics {
		if strings.HasPrefix(m.Name, "intra ") && m.Measured > dj {
			t.Errorf("%s = %v exceeds dirtjumper %v", m.Name, m.Measured, dj)
		}
	}
}

func TestMetricsText(t *testing.T) {
	r := &Result{ID: "X", Title: "t"}
	if got := r.MetricsText(); got != "" {
		t.Errorf("empty metrics rendered %q", got)
	}
	r.AddPaperMetric("alpha", 1.5, 2.0)
	r.AddMetric("beta", 3.0)
	out := r.MetricsText()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "paper") {
		t.Errorf("paper metric missing:\n%s", out)
	}
	if !strings.Contains(out, "beta") {
		t.Errorf("measured metric missing:\n%s", out)
	}
}

// metric fetches a named metric or fails the test.
func metric(t *testing.T, r *Result, name string) float64 {
	t.Helper()
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Measured
		}
	}
	t.Fatalf("metric %q not found in %s (have %v)", name, r.ID, r.Metrics)
	return 0
}
