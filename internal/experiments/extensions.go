package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"botscope/internal/core"
	"botscope/internal/report"
	"botscope/internal/stats"
	"botscope/internal/timeseries"
)

// This file holds the extension experiments: analyses the paper proposes
// as insights or future work but does not itself evaluate. They are part
// of All(), so cmd/botreport and the benches cover them too.

// ExtCalibration checks the generated workload's distribution shapes
// against their calibration targets with two-sample KS and Wasserstein
// statistics — a self-test of the substitution argument in DESIGN.md.
func (w *Workload) ExtCalibration() (*Result, error) {
	durs := core.Durations(w.Store)
	if len(durs) == 0 {
		return nil, fmt.Errorf("no durations")
	}
	// Reference: the §III-C lognormal law (median 1,766 s, sigma 1.9),
	// deterministically quantile-sampled like the Fig 7 baseline.
	ref := lognormalQuantiles(len(durs), 1766, 1.9)
	ks, err := stats.KolmogorovSmirnov(durs, ref)
	if err != nil {
		return nil, err
	}
	w1, err := stats.WassersteinDistance(durs, ref)
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Extension — calibration self-test", "check", "value")
	t.AddRow("duration KS statistic vs lognormal target", fmt.Sprintf("%.4f", ks.Statistic))
	t.AddRow("duration W1 distance (s)", report.FormatFloat(w1, 1))
	t.AddRow("duration sample size", report.FormatInt(ks.N1))

	res := &Result{ID: "Ext: Calibration", Title: "Workload calibration self-test", Text: t.String()}
	res.AddMetric("duration KS statistic", ks.Statistic)
	res.AddMetric("duration W1 distance (s)", w1)
	return res, nil
}

// lognormalQuantiles deterministically samples n quantiles of a lognormal
// distribution, truncated like the generator's duration law.
func lognormalQuantiles(n int, median, sigma float64) []float64 {
	out := core.BaselineDurations(n) // baseline is lognormal(900, 1.912)...
	// ...rescale to the requested law: x -> median * (x/900)^(sigma/1.912).
	for i, x := range out {
		out[i] = median * math.Pow(x/900, sigma/1.912)
		if out[i] > 260000 {
			out[i] = 260000
		}
	}
	return out
}

// ExtDefense trains the §V blacklist on the first half of the window and
// scores it on the second half.
func (w *Workload) ExtDefense() (*Result, error) {
	first, last, ok := w.Store.TimeBounds()
	if !ok {
		return nil, fmt.Errorf("empty workload")
	}
	split := first.Add(last.Sub(first) / 2)
	bl, err := core.BuildBlacklist(w.Store, time.Time{}, split, 0)
	if err != nil {
		return nil, err
	}
	ev, err := core.EvaluateBlacklist(w.Store, bl, split, time.Time{})
	if err != nil {
		return nil, err
	}
	capped := bl.Truncate(10000)
	evCapped, err := core.EvaluateBlacklist(w.Store, capped, split, time.Time{})
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Extension — history-based blacklist (train: first half, eval: second half)",
		"blacklist", "size", "future-source coverage", "attacks blunted")
	t.SetAlign(1, report.AlignRight)
	t.AddRow("unbounded", report.FormatInt(bl.Len()),
		report.PercentString(ev.BotCoverage), report.PercentString(ev.AttacksBlunted))
	t.AddRow("top-10k", report.FormatInt(capped.Len()),
		report.PercentString(evCapped.BotCoverage), report.PercentString(evCapped.AttacksBlunted))

	res := &Result{ID: "Ext: Defense", Title: "Blacklist effectiveness on future attacks", Text: t.String()}
	res.AddMetric("future-source coverage", ev.BotCoverage)
	res.AddMetric("attacks blunted", ev.AttacksBlunted)
	res.AddMetric("top-10k coverage", evCapped.BotCoverage)
	return res, nil
}

// ExtTransfer evaluates the paper's cross-family claim: dispersion models
// fitted on one family applied unchanged to others.
func (w *Workload) ExtTransfer() (*Result, error) {
	fams := w.Disp().ActiveFamilies(120)
	if len(fams) > 4 {
		fams = fams[:4]
	}
	results := w.Disp().TransferMatrix(fams, timeseries.Order{P: 1}, 120)
	if len(results) == 0 {
		return nil, fmt.Errorf("no family pair has enough dispersion data")
	}
	t := report.NewTable("Extension — cross-family model transfer (dispersion, ARIMA(1,0,0))",
		"source -> target", "transfer sim", "native sim", "retention")
	for i := 1; i <= 3; i++ {
		t.SetAlign(i, report.AlignRight)
	}
	var retSum float64
	for _, r := range results {
		t.AddRow(string(r.Source)+" -> "+string(r.Target),
			fmt.Sprintf("%.3f", r.TransferSimilarity),
			fmt.Sprintf("%.3f", r.NativeSimilarity),
			fmt.Sprintf("%.3f", r.Retention))
		retSum += r.Retention
	}
	res := &Result{ID: "Ext: Transfer", Title: "Cross-family model transfer", Text: t.String()}
	res.AddMetric("pairs evaluated", float64(len(results)))
	res.AddMetric("mean retention", retSum/float64(len(results)))
	return res, nil
}

// ExtDiurnal regenerates the §III-A claim that attack timing shows no
// diurnal pattern, by scoring hour-of-day concentration against a
// canonical user-driven reference profile.
func (w *Workload) ExtDiurnal() (*Result, error) {
	res0, err := core.AnalyzeDiurnal(w.Store)
	if err != nil {
		return nil, err
	}
	labels := make([]string, 24)
	values := make([]float64, 24)
	for h := 0; h < 24; h++ {
		labels[h] = fmt.Sprintf("%02d:00", h)
		values[h] = float64(res0.HourCounts[h])
	}
	var b strings.Builder
	b.WriteString(report.BarChart("Extension — attacks per hour of day (UTC)", labels, values, 40))
	fmt.Fprintf(&b, "hour concentration %.3f vs user-traffic reference %.3f; diurnal: %v\n",
		res0.HourScore, res0.ReferenceHourScore, res0.Diurnal)
	res := &Result{ID: "Ext: Diurnal", Title: "Timing shows no diurnal pattern", Text: b.String()}
	res.AddMetric("hour concentration score", res0.HourScore)
	res.AddMetric("weekday concentration score", res0.WeekdayScore)
	res.AddMetric("reference (diurnal) score", res0.ReferenceHourScore)
	// The paper claim holds when the workload scores well below diurnal
	// traffic: encode "not diurnal" as 1.
	diurnal := 0.0
	if !res0.Diurnal {
		diurnal = 1
	}
	res.AddPaperMetric("no diurnal pattern", diurnal, 1)
	return res, nil
}

// ExtLoad regenerates the §II-B concurrent-load observation. The paper's
// "243 simultaneous attacks on average" conflates the daily launch count
// (which is 243) with concurrency; the sweep-line here measures true
// concurrency and cross-checks it against Little's law
// (active = launch rate x mean duration).
func (w *Workload) ExtLoad() (*Result, error) {
	pts, st, err := core.ConcurrentLoad(w.Store)
	if err != nil {
		return nil, err
	}
	daily, err := core.DailyDistribution(w.Store)
	if err != nil {
		return nil, err
	}
	durStats, err := core.AnalyzeDurations(core.Durations(w.Store))
	if err != nil {
		return nil, err
	}
	series := make([]float64, len(pts))
	for i, p := range pts {
		series[i] = float64(p.Active)
	}
	var b strings.Builder
	b.WriteString(report.SeriesPanel("Extension — concurrently active attacks over time", series, 72))
	fmt.Fprintf(&b, "peak %s active attacks at %s\n",
		report.FormatInt(st.Peak), st.PeakTime.Format("2006-01-02 15:04"))
	littles := daily.Average / 86400 * durStats.Mean
	fmt.Fprintf(&b, "Little's law check: %.1f/day x %.0fs mean duration -> %.1f expected active (measured %.1f)\n",
		daily.Average, durStats.Mean, littles, st.TimeWeightedMean)
	res := &Result{ID: "Ext: Load", Title: "Concurrent attack load", Text: b.String()}
	res.AddMetric("mean concurrently active attacks", st.TimeWeightedMean)
	res.AddMetric("little's-law expectation", littles)
	res.AddMetric("peak simultaneous attacks", float64(st.Peak))
	// The paper's 243 "simultaneous" figure is its daily launch count.
	res.AddPaperMetric("daily launches (the paper's 243)", daily.Average, 243*w.Scale)
	return res, nil
}
