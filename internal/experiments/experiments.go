// Package experiments regenerates every table and figure of the paper's
// evaluation from a (synthetic) workload. Each experiment returns the
// rendered text plus its headline metrics side by side with the paper's
// published values, so EXPERIMENTS.md can be produced mechanically and the
// benches in the repository root can time each regeneration.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/monitor"
	"botscope/internal/synth"
)

// Metric is one measurable quantity of an experiment, with the paper's
// reference value when the paper publishes one (NaN-free: PaperKnown
// reports whether Paper is meaningful).
type Metric struct {
	Name       string
	Measured   float64
	Paper      float64
	PaperKnown bool
}

// Result is the outcome of regenerating one table or figure.
type Result struct {
	// ID is the paper's label, e.g. "Table II" or "Figure 3".
	ID string
	// Title describes what the experiment shows.
	Title string
	// Text is the rendered table/chart.
	Text string
	// Metrics are the headline numbers, paper-aligned where available.
	Metrics []Metric
}

// AddMetric appends a measured-only metric.
func (r *Result) AddMetric(name string, measured float64) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Measured: measured})
}

// AddPaperMetric appends a metric with the paper's reference value.
func (r *Result) AddPaperMetric(name string, measured, paper float64) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Measured: measured, Paper: paper, PaperKnown: true})
}

// MetricsText renders the metrics block under the experiment.
func (r *Result) MetricsText() string {
	if len(r.Metrics) == 0 {
		return ""
	}
	var b strings.Builder
	for _, m := range r.Metrics {
		if m.PaperKnown {
			fmt.Fprintf(&b, "  %-42s measured %12.3f   paper %12.3f\n", m.Name, m.Measured, m.Paper)
		} else {
			fmt.Fprintf(&b, "  %-42s measured %12.3f\n", m.Name, m.Measured)
		}
	}
	return b.String()
}

// Workload bundles the generated dataset with the knobs experiments need.
//
// Expensive shared aggregates — the per-family dispersion series and the
// collaboration list — are memoized here, because roughly a dozen
// experiments re-derive them from scratch otherwise. Both caches are safe
// for the concurrent experiment runs of RunAllParallel.
type Workload struct {
	Store *dataset.Store
	// Scale is the generation scale (1.0 = paper size); experiments use it
	// to scale count expectations.
	Scale float64
	// collector is lazily shared across source experiments.
	collector *monitor.Collector
	// disp memoizes per-family dispersion series (Figs 9-13, Table IV,
	// Ext: Transfer); it is internally synchronized.
	disp *core.DispersionIndex

	collabOnce sync.Once
	collabs    []*core.Collaboration // written once inside collabOnce.Do; immutable after
}

// Disp returns the workload's shared dispersion index.
func (w *Workload) Disp() *core.DispersionIndex { return w.disp }

// Collabs returns the workload's collaboration list (paper criteria),
// detecting it on first call and serving the shared slice afterwards.
func (w *Workload) Collabs() []*core.Collaboration {
	w.collabOnce.Do(func() {
		w.collabs = core.DetectCollaborations(w.Store)
	})
	return w.collabs
}

// NewWorkload generates a synthetic workload at the given scale, using
// all cores for generation.
func NewWorkload(seed int64, scale float64) (*Workload, error) {
	return NewWorkloadWorkers(seed, scale, 0)
}

// NewWorkloadWorkers is NewWorkload with an explicit generation worker
// count (0 = all cores, 1 = sequential). The workload is byte-identical
// for every worker count.
func NewWorkloadWorkers(seed int64, scale float64, workers int) (*Workload, error) {
	if scale <= 0 {
		scale = 1
	}
	store, err := synth.GenerateStore(synth.Config{Seed: seed, Scale: scale, Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: generate workload: %w", err)
	}
	return FromStore(store, scale), nil
}

// FromStore wraps an existing store (e.g. loaded from CSV).
func FromStore(store *dataset.Store, scale float64) *Workload {
	if scale <= 0 {
		scale = 1
	}
	return &Workload{
		Store:     store,
		Scale:     scale,
		collector: monitor.NewCollector(store),
		disp:      core.NewDispersionIndex(store),
	}
}

// Experiment pairs an ID with its regeneration function.
type Experiment struct {
	ID  string
	Run func() (*Result, error)
}

// All lists every experiment in paper order.
func (w *Workload) All() []Experiment {
	return []Experiment{
		{ID: "Figure 1", Run: w.Figure1},
		{ID: "Table II", Run: w.TableII},
		{ID: "Table III", Run: w.TableIII},
		{ID: "Figure 2", Run: w.Figure2},
		{ID: "Figure 3", Run: w.Figure3},
		{ID: "Figure 4", Run: w.Figure4},
		{ID: "Figure 5", Run: w.Figure5},
		{ID: "Figure 6", Run: w.Figure6},
		{ID: "Figure 7", Run: w.Figure7},
		{ID: "Figure 8", Run: w.Figure8},
		{ID: "Figure 9", Run: w.Figure9},
		{ID: "Figure 10", Run: w.Figure10},
		{ID: "Figure 11", Run: w.Figure11},
		{ID: "Figure 12", Run: w.Figure12},
		{ID: "Figure 13", Run: w.Figure13},
		{ID: "Table IV", Run: w.TableIV},
		{ID: "Table V", Run: w.TableV},
		{ID: "Figure 14", Run: w.Figure14},
		{ID: "Table VI", Run: w.TableVI},
		{ID: "Figure 15", Run: w.Figure15},
		{ID: "Figure 16", Run: w.Figure16},
		{ID: "Figure 17", Run: w.Figure17},
		{ID: "Figure 18", Run: w.Figure18},
		// Extensions: analyses the paper proposes but does not evaluate.
		{ID: "Ext: Load", Run: w.ExtLoad},
		{ID: "Ext: Diurnal", Run: w.ExtDiurnal},
		{ID: "Ext: Calibration", Run: w.ExtCalibration},
		{ID: "Ext: Defense", Run: w.ExtDefense},
		{ID: "Ext: Transfer", Run: w.ExtTransfer},
	}
}

// RunAll executes every experiment, collecting failures by ID.
func (w *Workload) RunAll() ([]*Result, error) {
	var (
		results []*Result
		errs    []string
	)
	for _, e := range w.All() {
		res, err := e.Run()
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", e.ID, err))
			continue
		}
		results = append(results, res)
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return results, fmt.Errorf("experiments: %s", strings.Join(errs, "; "))
	}
	return results, nil
}
