package experiments

import (
	"context"
	"testing"
)

func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation is slow")
	}
	w := sharedWorkload(t)
	seq, err := w.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	par, err := w.RunAllParallel(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel results = %d, sequential = %d", len(par), len(seq))
	}
	// Results arrive in All() order; IDs must match pairwise and metric
	// values must be identical (analyses are deterministic).
	for i := range seq {
		if par[i].ID != seq[i].ID {
			t.Errorf("order mismatch at %d: %s vs %s", i, par[i].ID, seq[i].ID)
			continue
		}
		if len(par[i].Metrics) != len(seq[i].Metrics) {
			t.Errorf("%s metric count differs", par[i].ID)
			continue
		}
		for j := range seq[i].Metrics {
			if par[i].Metrics[j].Measured != seq[i].Metrics[j].Measured {
				t.Errorf("%s metric %q differs: %v vs %v", par[i].ID,
					seq[i].Metrics[j].Name, par[i].Metrics[j].Measured, seq[i].Metrics[j].Measured)
			}
		}
	}
}

func TestRunAllParallelCanceled(t *testing.T) {
	w := sharedWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any work starts
	results, err := w.RunAllParallel(ctx, 2)
	if err == nil {
		t.Fatal("canceled run succeeded")
	}
	// Some experiments may still have been fed before the cancel won the
	// race; none may be duplicated.
	seen := make(map[string]bool)
	for _, r := range results {
		if seen[r.ID] {
			t.Errorf("duplicate result %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestRunAllParallelDefaultWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation is slow")
	}
	w := sharedWorkload(t)
	results, err := w.RunAllParallel(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(w.All()) {
		t.Errorf("results = %d, want %d", len(results), len(w.All()))
	}
}
