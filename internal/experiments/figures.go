package experiments

import (
	"fmt"
	"strings"
	"time"

	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/monitor"
	"botscope/internal/par"
	"botscope/internal/report"
	"botscope/internal/stats"
	"botscope/internal/timeseries"
)

// Figure1 regenerates the attack-type popularity chart.
func (w *Workload) Figure1() (*Result, error) {
	rows := core.ProtocolBreakdown(w.Store)
	if len(rows) == 0 {
		return nil, fmt.Errorf("no attacks in workload")
	}
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	total := 0.0
	for i, r := range rows {
		labels[i] = r.Category.String()
		values[i] = float64(r.Count)
		total += values[i]
	}
	res := &Result{
		ID:    "Figure 1",
		Title: "Popularity of attack types",
		Text:  report.BarChart("Figure 1 — popularity of attack types", labels, values, 50),
	}
	// The paper: HTTP dominates (Table II sums: 47,734/50,704) and most
	// attacks use connection-oriented transports (48,491/50,704).
	res.AddPaperMetric("HTTP share", values[0]/total, 0.941)
	oriented := 0.0
	for i, r := range rows {
		if r.Category.ConnectionOriented() {
			oriented += values[i]
		}
	}
	res.AddPaperMetric("connection-oriented share", oriented/total, 0.956)
	return res, nil
}

// Figure2 regenerates the daily attack distribution.
func (w *Workload) Figure2() (*Result, error) {
	st, err := core.DailyDistribution(w.Store)
	if err != nil {
		return nil, err
	}
	counts := make([]float64, len(st.Days))
	for i, d := range st.Days {
		counts[i] = float64(d.Count)
	}
	var b strings.Builder
	b.WriteString(report.SeriesPanel("Figure 2 — daily attack distribution", counts, 72))
	fmt.Fprintf(&b, "peak day %s with %s attacks, dominated by %s\n",
		st.MaxDay.Format("2006-01-02"), report.FormatInt(st.Max), st.MaxDominantFamily)
	// The figure aggregates multiple families; show each family's activity
	// window (Blackenergy's ~1/3 coverage is a paper observation).
	t := report.NewTable("per-family activity", "family", "attacks", "first", "last", "coverage")
	t.SetAlign(1, report.AlignRight)
	for _, fa := range core.FamilyActivity(w.Store) {
		t.AddRow(string(fa.Family), report.FormatInt(fa.Attacks),
			fa.First.Format("2006-01-02"), fa.Last.Format("2006-01-02"),
			report.PercentString(fa.Coverage))
	}
	b.WriteString(t.String())
	res := &Result{ID: "Figure 2", Title: "Daily attack distribution", Text: b.String()}
	res.AddPaperMetric("average attacks/day", st.Average, 243*w.Scale)
	res.AddPaperMetric("max attacks/day", float64(st.Max), 983*w.Scale)
	if st.MaxDominantFamily == dataset.Dirtjumper {
		res.AddPaperMetric("peak dominated by dirtjumper", 1, 1)
	} else {
		res.AddPaperMetric("peak dominated by dirtjumper", 0, 1)
	}
	return res, nil
}

// Figure3 regenerates the all-vs-family interval CDF comparison.
func (w *Workload) Figure3() (*Result, error) {
	all := core.AllIntervals(w.Store)
	st, err := core.AnalyzeIntervals(all)
	if err != nil {
		return nil, err
	}
	names := []string{"all attacks"}
	cdfs := []*stats.ECDF{core.IntervalCDF(all)}
	var famGaps []float64
	for _, f := range dataset.ActiveFamilies {
		gaps := core.FamilyIntervals(w.Store, f)
		famGaps = append(famGaps, gaps...)
	}
	famStats, err := core.AnalyzeIntervals(famGaps)
	if err != nil {
		return nil, err
	}
	names = append(names, "family-based")
	cdfs = append(cdfs, core.IntervalCDF(famGaps))

	var b strings.Builder
	b.WriteString(report.MultiCDFLandmarks("Figure 3 — attack interval CDF (seconds)",
		names, cdfs, []float64{60, 1081}))
	b.WriteString(report.CDFChart("family-based interval CDF", cdfs[1], 64, 12))
	res := &Result{ID: "Figure 3", Title: "Attack interval CDF", Text: b.String()}
	res.AddPaperMetric("all-attacks concurrent share", st.SimultaneousFrac, 0.55)
	res.AddPaperMetric("family-based concurrent share", famStats.SimultaneousFrac, 0.50)
	// Scaled workloads stretch gaps linearly (same window, fewer attacks);
	// compare against the paper's 1,081 s P80 rescaled accordingly.
	res.AddPaperMetric("family-based P80 (s)", famStats.P80, 1081/w.Scale)
	res.AddPaperMetric("family-based mean (s)", famStats.Mean, 3060/w.Scale)
	return res, nil
}

// Figure4 regenerates the interval-cluster distribution.
func (w *Workload) Figure4() (*Result, error) {
	var famGaps []float64
	for _, f := range dataset.ActiveFamilies {
		famGaps = append(famGaps, core.FamilyIntervals(w.Store, f)...)
	}
	if len(famGaps) == 0 {
		return nil, fmt.Errorf("no intervals in workload")
	}
	clusters := core.ClusterIntervals(famGaps)
	labels := make([]string, len(clusters))
	values := make([]float64, len(clusters))
	var modeMinutes, modeTens, modeHours float64
	for i, c := range clusters {
		labels[i] = c.Label
		values[i] = float64(c.Count)
		switch c.Label {
		case "5-10 min":
			modeMinutes = float64(c.Count)
		case "20-40 min":
			modeTens = float64(c.Count)
		case "1.5-4 hr":
			modeHours = float64(c.Count)
		}
	}
	res := &Result{
		ID:    "Figure 4",
		Title: "Attack interval distributions (non-simultaneous)",
		Text:  report.BarChart("Figure 4 — attack interval clusters", labels, values, 50),
	}
	// The paper's three common modes must all carry mass.
	res.AddMetric("6-7 min mode count", modeMinutes)
	res.AddMetric("20-40 min mode count", modeTens)
	res.AddMetric("2-3 hr mode count", modeHours)
	return res, nil
}

// Figure5 regenerates the per-family interval CDFs.
func (w *Workload) Figure5() (*Result, error) {
	var (
		names []string
		cdfs  []*stats.ECDF
	)
	res := &Result{ID: "Figure 5", Title: "Per-family interval CDF"}
	for _, f := range dataset.ActiveFamilies {
		gaps := core.FamilyIntervals(w.Store, f)
		if len(gaps) == 0 {
			continue
		}
		names = append(names, string(f))
		cdfs = append(cdfs, core.IntervalCDF(gaps))
	}
	if len(cdfs) == 0 {
		return nil, fmt.Errorf("no family intervals")
	}
	res.Text = report.MultiCDFLandmarks("Figure 5 — per-family attack interval CDF (seconds)",
		names, cdfs, []float64{60})
	for i, name := range names {
		frac := cdfs[i].Eval(59.999)
		switch name {
		case string(dataset.Aldibot), string(dataset.Optima):
			// These two families launch nothing within 60 s (paper Fig 5).
			res.AddPaperMetric(name+" share below 60s", frac, 0)
		case string(dataset.Blackenergy):
			res.AddPaperMetric(name+" share below 60s", frac, 0.40)
		case string(dataset.Dirtjumper):
			res.AddPaperMetric(name+" share below 60s", frac, 0.55)
		}
	}
	return res, nil
}

// Figure6 regenerates the duration-over-time panel.
func (w *Workload) Figure6() (*Result, error) {
	durs := core.Durations(w.Store)
	if len(durs) == 0 {
		return nil, fmt.Errorf("no durations")
	}
	st, err := core.AnalyzeDurations(durs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "Figure 6",
		Title: "Attack durations over time",
		Text:  report.SeriesPanel("Figure 6 — attack durations over time (seconds)", durs, 72),
	}
	res.AddPaperMetric("mean duration (s)", st.Mean, 10308)
	res.AddPaperMetric("median duration (s)", st.Median, 1766)
	res.AddPaperMetric("std duration (s)", st.StdDev, 18475)
	return res, nil
}

// Figure7 regenerates the duration CDF with the Mao et al. baseline.
func (w *Workload) Figure7() (*Result, error) {
	durs := core.Durations(w.Store)
	if len(durs) == 0 {
		return nil, fmt.Errorf("no durations")
	}
	st, err := core.AnalyzeDurations(durs)
	if err != nil {
		return nil, err
	}
	ours := core.DurationCDF(durs)
	base := core.DurationCDF(core.BaselineDurations(0))
	var b strings.Builder
	b.WriteString(report.MultiCDFLandmarks("Figure 7 — duration distribution CDF (seconds)",
		[]string{"botscope workload", "single-ISP baseline [24]"},
		[]*stats.ECDF{ours, base}, []float64{60, 4500, 13882}))
	b.WriteString(report.CDFChart("duration CDF", ours, 64, 12))
	res := &Result{ID: "Figure 7", Title: "Duration CDF vs baseline", Text: b.String()}
	res.AddPaperMetric("share under 4 hours", st.FracUnder4h, 0.8)
	res.AddPaperMetric("share under 60 s", st.FracUnder60s, 0.10)
	res.AddPaperMetric("P80 duration (s)", st.P80, 13882)
	res.AddPaperMetric("baseline share under 1.25 h", base.Eval(1.25*3600), 0.8)
	return res, nil
}

// Figure8 regenerates the weekly source shift patterns.
func (w *Workload) Figure8() (*Result, error) {
	type weekAgg struct {
		existing int
		fresh    int
	}
	agg := make(map[int]*weekAgg)
	// The per-family weekly scans are independent; shard them and merge in
	// family order (integer sums, so the merge order cannot change totals).
	famWeeks := par.Map(0, len(dataset.ActiveFamilies), func(i int) []monitor.WeekStats {
		weeks, err := w.collector.WeeklySources(dataset.ActiveFamilies[i])
		if err != nil {
			return nil
		}
		return weeks
	})
	for _, weeks := range famWeeks {
		for _, wk := range weeks {
			a := agg[wk.Week]
			if a == nil {
				a = &weekAgg{}
				agg[wk.Week] = a
			}
			a.existing += wk.ExistingShift()
			a.fresh += wk.NewShift()
		}
	}
	if len(agg) == 0 {
		return nil, fmt.Errorf("no weekly source data")
	}
	maxWeek := 0
	for wk := range agg {
		if wk > maxWeek {
			maxWeek = wk
		}
	}
	var (
		labels               []string
		existVals, freshVals []float64
		totalExist, totalNew float64
	)
	for wk := 0; wk <= maxWeek; wk++ {
		a := agg[wk]
		if a == nil {
			a = &weekAgg{}
		}
		labels = append(labels, fmt.Sprintf("week %02d", wk))
		existVals = append(existVals, float64(a.existing))
		freshVals = append(freshVals, float64(a.fresh))
		totalExist += float64(a.existing)
		totalNew += float64(a.fresh)
	}
	var b strings.Builder
	b.WriteString(report.BarChart("Figure 8 — weekly shifts into existing countries", labels, existVals, 40))
	b.WriteString(report.BarChart("Figure 8 — weekly shifts into new countries", labels, freshVals, 40))
	res := &Result{ID: "Figure 8", Title: "Weekly source shift patterns", Text: b.String()}
	// The paper: existing-country shifts dwarf new-country shifts by about
	// an order of magnitude (left axis 1e4, right axis 1e3).
	ratio := totalExist / (totalNew + 1)
	res.AddPaperMetric("existing/new shift ratio", ratio, 10)
	res.AddMetric("total existing-country bot shifts", totalExist)
	res.AddMetric("total new-country bot shifts", totalNew)
	return res, nil
}

// Figure9 regenerates the per-family dispersion CDFs.
func (w *Workload) Figure9() (*Result, error) {
	fams := w.Disp().ActiveFamilies(10)
	if len(fams) > 6 {
		fams = fams[:6] // the paper reports the six most active
	}
	if len(fams) == 0 {
		return nil, fmt.Errorf("no family has 10+ dispersion points")
	}
	var (
		names []string
		cdfs  []*stats.ECDF
	)
	for _, f := range fams {
		cdf, err := w.Disp().CDF(f)
		if err != nil {
			continue
		}
		names = append(names, string(f))
		cdfs = append(cdfs, cdf)
	}
	res := &Result{
		ID:    "Figure 9",
		Title: "Geolocation dispersion CDF per family",
		Text: report.MultiCDFLandmarks("Figure 9 — geolocation dispersion CDF (km)",
			names, cdfs, []float64{core.SymmetryToleranceKm}),
	}
	for i, name := range names {
		frac := cdfs[i].Eval(core.SymmetryToleranceKm)
		switch name {
		case string(dataset.Dirtjumper), string(dataset.Pandora):
			// ">40% of distances at zero" for these two families.
			res.AddPaperMetric(name+" symmetric share", frac, 0.4)
		default:
			res.AddMetric(name+" symmetric share", frac)
		}
	}
	return res, nil
}

// dispersionHistogram builds the Figs 10/11 result for one family.
func (w *Workload) dispersionHistogram(id string, f dataset.Family, paperMean, paperSymmetric float64) (*Result, error) {
	prof, err := w.Disp().Profile(f)
	if err != nil {
		return nil, err
	}
	h, err := w.Disp().Histogram(f, 12)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s geolocation dispersion histogram (asymmetric values, km)\n", id, f)
	fmt.Fprintf(&b, "symmetric share removed: %s\n", report.PercentString(prof.SymmetricFrac))
	b.WriteString(report.HistogramChart("", h, 50))
	res := &Result{ID: id, Title: fmt.Sprintf("%s dispersion histogram", f), Text: b.String()}
	res.AddPaperMetric("asymmetric mean (km)", prof.Asymmetric.Mean, paperMean)
	res.AddPaperMetric("symmetric share", prof.SymmetricFrac, paperSymmetric)
	return res, nil
}

// Figure10 regenerates Pandora's dispersion histogram.
func (w *Workload) Figure10() (*Result, error) {
	return w.dispersionHistogram("Figure 10", dataset.Pandora, 566, 0.767)
}

// Figure11 regenerates Blackenergy's dispersion histogram.
func (w *Workload) Figure11() (*Result, error) {
	return w.dispersionHistogram("Figure 11", dataset.Blackenergy, 4304, 0.895)
}

// dispersionPrediction builds the Figs 12/13 result for one family.
func (w *Workload) dispersionPrediction(id string, f dataset.Family, paperSim float64) (*Result, error) {
	cfg := core.PredictConfig{
		Order:      timeseries.Order{P: 1},
		TestPoints: int(2700 * w.Scale),
	}
	if cfg.TestPoints < 20 {
		cfg.TestPoints = 20
	}
	pred, err := w.Disp().Predict(f, cfg)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s geolocation distance prediction (%s)\n", id, f, pred.Order)
	b.WriteString(report.SeriesPanel("ground truth (km)", pred.Truth, 72))
	b.WriteString(report.SeriesPanel("prediction (km)", pred.Predicted, 72))
	b.WriteString(report.SeriesPanel("absolute error (km)", pred.Errors, 72))
	res := &Result{ID: id, Title: fmt.Sprintf("%s dispersion prediction", f), Text: b.String()}
	res.AddPaperMetric("cosine similarity", pred.Similarity, paperSim)
	res.AddMetric("mean abs error (km)", stats.Mean(pred.Errors))
	return res, nil
}

// Figure12 regenerates Pandora's prediction panels.
func (w *Workload) Figure12() (*Result, error) {
	return w.dispersionPrediction("Figure 12", dataset.Pandora, 0.946)
}

// Figure13 regenerates Blackenergy's prediction panels.
func (w *Workload) Figure13() (*Result, error) {
	return w.dispersionPrediction("Figure 13", dataset.Blackenergy, 0.960)
}

// Figure14 regenerates the Pandora organization-level hotspot map
// (February 2013 in the paper).
func (w *Workload) Figure14() (*Result, error) {
	feb := time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC)
	mar := time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)
	hs := core.OrgHotspots(w.Store, dataset.Pandora, feb, mar)
	if len(hs) == 0 {
		// Scaled workloads may leave February thin; fall back to the full
		// window, as the figure's purpose is the hotspot structure.
		hs = core.OrgHotspots(w.Store, dataset.Pandora, time.Time{}, time.Time{})
	}
	if len(hs) == 0 {
		return nil, fmt.Errorf("no pandora organization hotspots")
	}
	lats := make([]float64, len(hs))
	lons := make([]float64, len(hs))
	weights := make([]float64, len(hs))
	for i, h := range hs {
		lats[i] = h.Point.Lat
		lons[i] = h.Point.Lon
		weights[i] = float64(h.Attacks)
	}
	var b strings.Builder
	b.WriteString(report.WorldMap("Figure 14 — pandora target organizations (size = attacks)", lats, lons, weights, 72, 22))
	top := hs
	if len(top) > 8 {
		top = top[:8]
	}
	t := report.NewTable("top organizations", "organization", "cc", "city", "attacks")
	t.SetAlign(3, report.AlignRight)
	for _, h := range top {
		t.AddRow(h.Org, h.CC, h.City, report.FormatInt(h.Attacks))
	}
	b.WriteString(t.String())
	res := &Result{ID: "Figure 14", Title: "Pandora organization-level hotspots", Text: b.String()}
	res.AddMetric("organizations attacked", float64(len(hs)))
	res.AddMetric("top hotspot attacks", float64(hs[0].Attacks))
	// RU and US hotspots dominate in the paper.
	ruus := 0
	for _, h := range hs {
		if h.CC == "RU" || h.CC == "US" {
			ruus += h.Attacks
		}
	}
	total := 0
	for _, h := range hs {
		total += h.Attacks
	}
	res.AddMetric("share of attacks on RU+US orgs", float64(ruus)/float64(total))
	return res, nil
}

// Figure15 regenerates the Dirtjumper intra-family collaboration view.
func (w *Workload) Figure15() (*Result, error) {
	st := core.AnalyzeCollaborationsFrom(w.Collabs())
	var events []*core.Collaboration
	for _, c := range st.Collaborations {
		if c.Intra() && c.Families[0] == dataset.Dirtjumper {
			events = append(events, c)
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("no dirtjumper intra-family collaborations")
	}
	totBotnets := 0
	magEqual := 0
	t := report.NewTable("Figure 15 — dirtjumper intra-family collaborations (first rows)",
		"date", "target", "botnets", "magnitudes")
	for i, c := range events {
		mags := make([]string, len(c.Attacks))
		equal := true
		for j, a := range c.Attacks {
			mags[j] = report.FormatInt(a.Magnitude())
			if a.Magnitude() != c.Attacks[0].Magnitude() {
				equal = false
			}
		}
		totBotnets += c.Botnets()
		if equal {
			magEqual++
		}
		if i < 12 {
			t.AddRow(c.Start.Format("2006-01-02"), c.Target,
				report.FormatInt(c.Botnets()), strings.Join(mags, "/"))
		}
	}
	res := &Result{ID: "Figure 15", Title: "Dirtjumper intra-family collaborations", Text: t.String()}
	res.AddPaperMetric("collaborations", float64(len(events)), 756*w.Scale)
	res.AddPaperMetric("mean botnets per collaboration", float64(totBotnets)/float64(len(events)), 2.19)
	// "for most bars along the same timestamp, they have the same height".
	res.AddMetric("share with equal magnitudes", float64(magEqual)/float64(len(events)))
	return res, nil
}

// Figure16 regenerates the Dirtjumper-Pandora inter-family analysis.
func (w *Workload) Figure16() (*Result, error) {
	pair := core.AnalyzePairFrom(w.Collabs(), dataset.Dirtjumper, dataset.Pandora)
	if pair.Count == 0 {
		return nil, fmt.Errorf("no dirtjumper-pandora collaborations")
	}
	var durA, durB, mags []float64
	for _, c := range pair.Events {
		for _, a := range c.Attacks {
			switch a.Family {
			case dataset.Dirtjumper:
				durA = append(durA, a.Duration().Seconds())
			case dataset.Pandora:
				durB = append(durB, a.Duration().Seconds())
			}
			mags = append(mags, float64(a.Magnitude()))
		}
	}
	var b strings.Builder
	b.WriteString("Figure 16 — dirtjumper x pandora collaborations\n")
	b.WriteString(report.SeriesPanel("dirtjumper durations (s)", durA, 60))
	b.WriteString(report.SeriesPanel("pandora durations (s)", durB, 60))
	b.WriteString(report.SeriesPanel("attack magnitudes (bots)", mags, 60))
	t := report.NewTable("pair summary", "quantity", "value")
	t.AddRow("collaborations", report.FormatInt(pair.Count))
	t.AddRow("unique targets", report.FormatInt(pair.UniqueTargets))
	t.AddRow("countries", report.FormatInt(pair.Countries))
	t.AddRow("organizations", report.FormatInt(pair.Organizations))
	t.AddRow("ASes", report.FormatInt(pair.ASNs))
	t.AddRow("span", fmt.Sprintf("%.1f weeks", pair.Span.Hours()/(24*7)))
	b.WriteString(t.String())
	res := &Result{ID: "Figure 16", Title: "Dirtjumper x Pandora collaborations", Text: b.String()}
	res.AddPaperMetric("collaborations", float64(pair.Count), 118*w.Scale)
	res.AddPaperMetric("unique targets", float64(pair.UniqueTargets), 96*w.Scale)
	res.AddPaperMetric("pandora mean duration (s)", pair.MeanDurationB, 6420)
	res.AddPaperMetric("dirtjumper mean duration (s)", pair.MeanDurationA, 5083)
	res.AddPaperMetric("span (weeks)", pair.Span.Hours()/(24*7), 16)
	return res, nil
}

// Figure17 regenerates the consecutive-attack gap CDF.
func (w *Workload) Figure17() (*Result, error) {
	st := core.AnalyzeChains(w.Store)
	if len(st.Chains) == 0 {
		return nil, fmt.Errorf("no multistage chains")
	}
	cdf := core.GapCDF(st.Chains)
	var b strings.Builder
	b.WriteString(report.CDFChart("Figure 17 — consecutive attack gap CDF (seconds)", cdf, 64, 12))
	res := &Result{ID: "Figure 17", Title: "Consecutive attack gap CDF", Text: b.String()}
	res.AddPaperMetric("share within 10 s", st.FracWithin10s, 0.65)
	res.AddPaperMetric("share within 30 s", st.FracWithin30s, 0.80)
	res.AddMetric("chains", float64(len(st.Chains)))
	return res, nil
}

// Figure18 regenerates the consecutive-attack timeline.
func (w *Workload) Figure18() (*Result, error) {
	st := core.AnalyzeChains(w.Store)
	if len(st.Chains) == 0 {
		return nil, fmt.Errorf("no multistage chains")
	}
	events := core.ChainEvents(st.Chains)
	t := report.NewTable("Figure 18 — consecutive attacks over time (first rows)",
		"start", "family", "target", "magnitude")
	t.SetAlign(3, report.AlignRight)
	for i, e := range events {
		if i >= 15 {
			break
		}
		t.AddRow(e.Start.Format("2006-01-02 15:04:05"), string(e.Family), e.Target, report.FormatInt(e.Magnitude))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "chain families: ")
	for i, f := range st.Families {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(f))
	}
	b.WriteByte('\n')
	if st.Longest != nil {
		fmt.Fprintf(&b, "longest chain: %d attacks by %s lasting %s\n",
			st.Longest.Length(), st.Longest.Family, st.Longest.Duration().Round(time.Second))
	}
	res := &Result{ID: "Figure 18", Title: "Consecutive attacks over time", Text: b.String()}
	res.AddMetric("chain events", float64(len(events)))
	res.AddPaperMetric("longest chain length", float64(st.Longest.Length()), 22)
	return res, nil
}
