package experiments

import (
	"fmt"
	"sort"

	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/report"
	"botscope/internal/timeseries"
)

// TableII regenerates the per-(protocol, family) attack counts.
func (w *Workload) TableII() (*Result, error) {
	rows := core.FamilyProtocolTable(w.Store)
	if len(rows) == 0 {
		return nil, fmt.Errorf("no attacks in workload")
	}
	t := report.NewTable("Table II — protocol preferences of each botnet family",
		"protocol", "family", "attacks")
	t.SetAlign(2, report.AlignRight)
	for _, r := range rows {
		t.AddRow(r.Category.String(), string(r.Family), report.FormatInt(r.Count))
	}
	res := &Result{ID: "Table II", Title: "Protocol preferences per family", Text: t.String()}

	// Paper values scale with the workload.
	counts := make(map[string]float64)
	for _, r := range rows {
		counts[r.Category.String()+"/"+string(r.Family)] = float64(r.Count)
	}
	paper := []struct {
		key  string
		want float64
	}{
		{key: "HTTP/dirtjumper", want: 34620},
		{key: "HTTP/pandora", want: 6906},
		{key: "HTTP/blackenergy", want: 3048},
		{key: "UNDETERMINED/darkshell", want: 1530},
		{key: "TCP/nitol", want: 345},
		{key: "UDP/yzf", want: 187},
		{key: "UDP/ddoser", want: 126},
		{key: "SYN/blackenergy", want: 31},
	}
	for _, p := range paper {
		res.AddPaperMetric(p.key, counts[p.key], p.want*w.Scale)
	}
	return res, nil
}

// TableIII regenerates the workload summary counts.
func (w *Workload) TableIII() (*Result, error) {
	sum := w.Store.Summary()
	if sum.Attacks == 0 {
		return nil, fmt.Errorf("no attacks in workload")
	}
	t := report.NewTable("Table III — summary of the workload information",
		"side", "description", "count")
	t.SetAlign(2, report.AlignRight)
	t.AddRow("attackers", "# of bot_ips", report.FormatInt(sum.BotIPs))
	t.AddRow("attackers", "# of cities", report.FormatInt(sum.SourceCities))
	t.AddRow("attackers", "# of countries", report.FormatInt(sum.SourceCountries))
	t.AddRow("attackers", "# of organizations", report.FormatInt(sum.SourceOrgs))
	t.AddRow("attackers", "# of asn", report.FormatInt(sum.SourceASNs))
	t.AddRow("attackers", "# of ddos_id", report.FormatInt(sum.Attacks))
	t.AddRow("attackers", "# of botnet_id", report.FormatInt(sum.Botnets))
	t.AddRow("attackers", "# of traffic types", report.FormatInt(sum.TrafficTypes))
	t.AddRow("victims", "# of target_ip", report.FormatInt(sum.TargetIPs))
	t.AddRow("victims", "# of cities", report.FormatInt(sum.TargetCities))
	t.AddRow("victims", "# of countries", report.FormatInt(sum.TargetCountries))
	t.AddRow("victims", "# of organizations", report.FormatInt(sum.TargetOrgs))
	t.AddRow("victims", "# of asn", report.FormatInt(sum.TargetASNs))

	res := &Result{ID: "Table III", Title: "Workload summary", Text: t.String()}
	res.AddPaperMetric("attacks", float64(sum.Attacks), 50704*w.Scale)
	res.AddPaperMetric("botnets", float64(sum.Botnets), 674*w.Scale)
	res.AddPaperMetric("bot IPs", float64(sum.BotIPs), 310950*w.Scale)
	res.AddPaperMetric("target IPs", float64(sum.TargetIPs), 9026*w.Scale)
	res.AddPaperMetric("target countries", float64(sum.TargetCountries), 84)
	res.AddPaperMetric("target orgs", float64(sum.TargetOrgs), 1074*w.Scale)
	res.AddPaperMetric("traffic types", float64(sum.TrafficTypes), 7)
	return res, nil
}

// TableIV regenerates the geolocation-dispersion prediction statistics.
func (w *Workload) TableIV() (*Result, error) {
	// The paper evaluates on the last 2,700 points of each family series
	// and skips families with too little data (Darkshell).
	cfg := core.PredictConfig{
		Order:      timeseries.Order{P: 1},
		TestPoints: int(2700 * w.Scale),
	}
	if cfg.TestPoints < 20 {
		cfg.TestPoints = 20
	}
	results := w.Disp().PredictAll(cfg, 0)
	if len(results) == 0 {
		return nil, fmt.Errorf("no family had enough dispersion data")
	}
	t := report.NewTable("Table IV — geolocation distance prediction statistics",
		"family", "group", "mean", "std", "similarity")
	for i := 2; i <= 4; i++ {
		t.SetAlign(i, report.AlignRight)
	}
	res := &Result{ID: "Table IV", Title: "Dispersion prediction per family"}
	paperSim := map[dataset.Family]float64{
		dataset.Blackenergy: 0.960,
		dataset.Pandora:     0.946,
		dataset.Dirtjumper:  0.848,
		dataset.Optima:      0.941,
		dataset.Colddeath:   0.809,
	}
	for _, r := range results {
		t.AddRow(string(r.Family), "prediction",
			report.FormatFloat(r.MeanPred, 1), report.FormatFloat(r.StdPred, 1),
			fmt.Sprintf("%.3f", r.Similarity))
		t.AddRow("", "ground truth",
			report.FormatFloat(r.MeanTruth, 1), report.FormatFloat(r.StdTruth, 1), "")
		if paper, ok := paperSim[r.Family]; ok {
			res.AddPaperMetric("similarity "+string(r.Family), r.Similarity, paper)
		} else {
			res.AddMetric("similarity "+string(r.Family), r.Similarity)
		}
	}
	res.Text = t.String()
	return res, nil
}

// TableV regenerates the per-family top target countries.
func (w *Workload) TableV() (*Result, error) {
	t := report.NewTable("Table V — country-level DDoS target statistics",
		"family", "countries", "top 5", "count")
	t.SetAlign(1, report.AlignRight)
	t.SetAlign(3, report.AlignRight)
	res := &Result{ID: "Table V", Title: "Top target countries per family"}
	for _, f := range dataset.ActiveFamilies {
		prof := core.TargetCountries(w.Store, f, 5)
		if prof.Countries == 0 {
			continue
		}
		for i, cc := range prof.Top {
			famCell, cntCell := "", ""
			if i == 0 {
				famCell = string(f)
				cntCell = report.FormatInt(prof.Countries)
			}
			t.AddRow(famCell, cntCell, cc.CC, report.FormatInt(cc.Count))
		}
	}
	global := core.GlobalTargetCountries(w.Store, 5)
	if len(global) == 0 {
		return nil, fmt.Errorf("no attacks in workload")
	}
	res.Text = t.String()
	paperGlobal := map[string]float64{
		"US": 13738, "RU": 11451, "DE": 5048, "UA": 4078, "NL": 2816,
	}
	for _, g := range global {
		if paper, ok := paperGlobal[g.CC]; ok {
			res.AddPaperMetric("global attacks on "+g.CC, float64(g.Count), paper*w.Scale)
		} else {
			res.AddMetric("global attacks on "+g.CC, float64(g.Count))
		}
	}
	res.AddPaperMetric("dirtjumper target countries",
		float64(core.TargetCountries(w.Store, dataset.Dirtjumper, 0).Countries), 71)
	return res, nil
}

// TableVI regenerates the collaboration statistics.
func (w *Workload) TableVI() (*Result, error) {
	st := core.AnalyzeCollaborationsFrom(w.Collabs())
	t := report.NewTable("Table VI — botnets collaboration statistics",
		"family", "intra-family", "inter-family")
	t.SetAlign(1, report.AlignRight)
	t.SetAlign(2, report.AlignRight)
	fams := make([]dataset.Family, 0, len(st.Intra)+len(st.Inter))
	seen := make(map[dataset.Family]bool)
	for f := range st.Intra {
		if !seen[f] {
			fams = append(fams, f)
			seen[f] = true
		}
	}
	for f := range st.Inter {
		if !seen[f] {
			fams = append(fams, f)
			seen[f] = true
		}
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	for _, f := range fams {
		t.AddRow(string(f), report.FormatInt(st.Intra[f]), report.FormatInt(st.Inter[f]))
	}
	res := &Result{ID: "Table VI", Title: "Intra-/inter-family collaborations", Text: t.String()}

	paperIntra := []struct {
		family dataset.Family
		count  float64
	}{
		{family: dataset.Darkshell, count: 253},
		{family: dataset.Ddoser, count: 134},
		{family: dataset.Dirtjumper, count: 756},
		{family: dataset.Nitol, count: 17},
		{family: dataset.Optima, count: 1},
		{family: dataset.Pandora, count: 10},
		{family: dataset.YZF, count: 66},
	}
	for _, p := range paperIntra {
		res.AddPaperMetric("intra "+string(p.family), float64(st.Intra[p.family]), p.count*w.Scale)
	}
	res.AddPaperMetric("inter dirtjumper", float64(st.Inter[dataset.Dirtjumper]), 121*w.Scale)
	res.AddPaperMetric("inter pandora", float64(st.Inter[dataset.Pandora]), 118*w.Scale)
	res.AddPaperMetric("mean botnets per collaboration", st.MeanBotnets, 2.19)
	return res, nil
}
