package stream

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the type-7 quantile the batch stats package uses.
func exactQuantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func TestQuantileSketchLognormal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sk := NewQuantileSketch(0)
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Lognormal roughly matching attack durations (median ~1800 s).
		x := 1800 * math.Exp(1.4*rng.NormFloat64())
		sk.Add(x)
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.8, 0.95, 0.99} {
		want := exactQuantile(xs, q)
		got := sk.Quantile(q)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("q=%.2f: sketch %v, exact %v (rel err %.4f)", q, got, want, math.Abs(got-want)/want)
		}
	}
}

func TestQuantileSketchZeroMass(t *testing.T) {
	sk := NewQuantileSketch(0)
	// 60% zeros (simultaneous launches), 40% positive gaps.
	for i := 0; i < 600; i++ {
		sk.Add(0)
	}
	for i := 0; i < 400; i++ {
		sk.Add(100 + float64(i))
	}
	if got := sk.Quantile(0.5); got != 0 {
		t.Errorf("median with 60%% zero mass = %v, want 0", got)
	}
	if got := sk.Quantile(0.95); got < 100 {
		t.Errorf("p95 = %v, want >= 100", got)
	}
	if sk.Min() != 0 {
		t.Errorf("min = %v, want 0", sk.Min())
	}
}

func TestQuantileSketchEdgeCases(t *testing.T) {
	sk := NewQuantileSketch(0)
	if !math.IsNaN(sk.Quantile(0.5)) {
		t.Error("empty sketch quantile should be NaN")
	}
	sk.Add(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := sk.Quantile(q); got < 42*(1-sk.Alpha()) || got > 42*(1+sk.Alpha()) {
			t.Errorf("single-value quantile(%v) = %v, want ~42", q, got)
		}
	}
	if !math.IsNaN(sk.Quantile(-0.1)) || !math.IsNaN(sk.Quantile(1.1)) {
		t.Error("out-of-range q should be NaN")
	}
	sk.Add(-5) // clamped to zero
	if sk.Min() != 0 {
		t.Errorf("negative input min = %v, want clamp to 0", sk.Min())
	}
}

func TestQuantileSketchMemoryBound(t *testing.T) {
	sk := NewQuantileSketch(0)
	sk.maxBins = 64
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100000; i++ {
		sk.Add(math.Exp(rng.Float64()*20 - 5)) // values across ~11 decades
	}
	if sk.Bins() > 64 {
		t.Errorf("bins = %d, want <= 64 after collapsing", sk.Bins())
	}
	if sk.N() != 100000 {
		t.Errorf("n = %d, want 100000", sk.N())
	}
	// High quantiles stay accurate: collapsing only merges the low end.
	if got := sk.Quantile(0.99); got <= 0 {
		t.Errorf("p99 = %v, want > 0", got)
	}
}

func TestP2QuantileNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, p := range []float64{0.5, 0.8, 0.95} {
		est := NewP2Quantile(p)
		xs := make([]float64, 0, 50000)
		for i := 0; i < 50000; i++ {
			x := 100 + 15*rng.NormFloat64()
			est.Add(x)
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		want := exactQuantile(xs, p)
		got := est.Value()
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("P2(p=%v) = %v, exact %v", p, got, want)
		}
	}
}

func TestP2QuantileSmallSample(t *testing.T) {
	est := NewP2Quantile(0.5)
	if !math.IsNaN(est.Value()) {
		t.Error("empty estimator should be NaN")
	}
	for _, x := range []float64{5, 1, 3} {
		est.Add(x)
	}
	if got := est.Value(); got != 3 {
		t.Errorf("small-sample median = %v, want 3", got)
	}
	if est.N() != 3 {
		t.Errorf("n = %d, want 3", est.N())
	}
}
