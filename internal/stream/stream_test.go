package stream

import (
	"math"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/synth"
)

var (
	parityOnce  sync.Once
	parityStore *dataset.Store
	parityErr   error
)

// parityWorkload shares one seeded workload across the parity tests.
func parityWorkload(t *testing.T) *dataset.Store {
	t.Helper()
	parityOnce.Do(func() {
		parityStore, parityErr = synth.GenerateStore(synth.Config{Seed: 3, Scale: 0.05})
	})
	if parityErr != nil {
		t.Fatal(parityErr)
	}
	return parityStore
}

// ingestAll replays the store's attacks through a fresh analyzer in
// event-time order, the way a feeder would.
func ingestAll(t *testing.T, s *dataset.Store) *Analyzer {
	t.Helper()
	sa := New()
	for _, a := range s.Attacks() {
		if err := sa.Ingest(a); err != nil {
			t.Fatalf("ingest attack %d: %v", a.ID, err)
		}
	}
	return sa
}

// relClose fails unless got is within tol relative error of want (absolute
// for |want| < 1).
func relClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	denom := math.Abs(want)
	if denom < 1 {
		denom = 1
	}
	if math.Abs(got-want)/denom > tol {
		t.Errorf("%s = %v, want %v (tolerance %v)", name, got, want, tol)
	}
}

func TestParityCounters(t *testing.T) {
	store := parityWorkload(t)
	snap := ingestAll(t, store).Snapshot()

	if snap.Ingested != store.NumAttacks() {
		t.Fatalf("ingested %d attacks, store has %d", snap.Ingested, store.NumAttacks())
	}
	if !reflect.DeepEqual(snap.Protocols, core.ProtocolBreakdown(store)) {
		t.Errorf("protocol breakdown mismatch:\n got %v\nwant %v", snap.Protocols, core.ProtocolBreakdown(store))
	}
	if !reflect.DeepEqual(snap.FamilyProtocol, core.FamilyProtocolTable(store)) {
		t.Errorf("family/protocol table mismatch")
	}
}

func TestParityDaily(t *testing.T) {
	store := parityWorkload(t)
	snap := ingestAll(t, store).Snapshot()
	want, err := core.DailyDistribution(store)
	if err != nil {
		t.Fatal(err)
	}

	if snap.Daily.Max != want.Max || !snap.Daily.MaxDay.Equal(want.MaxDay) ||
		snap.Daily.MaxDominantFamily != want.MaxDominantFamily {
		t.Errorf("daily headline = (%d, %v, %s), want (%d, %v, %s)",
			snap.Daily.Max, snap.Daily.MaxDay, snap.Daily.MaxDominantFamily,
			want.Max, want.MaxDay, want.MaxDominantFamily)
	}
	relClose(t, "daily average", snap.Daily.Average, want.Average, 1e-9)
	if len(snap.Daily.Days) != len(want.Days) {
		t.Fatalf("daily series length = %d, want %d", len(snap.Daily.Days), len(want.Days))
	}
	for i, d := range want.Days {
		got := snap.Daily.Days[i]
		if !got.Day.Equal(d.Day) || got.Count != d.Count || !reflect.DeepEqual(got.ByFamily, d.ByFamily) {
			t.Fatalf("day %d mismatch: got %+v, want %+v", i, got, d)
		}
	}
}

func TestParityIntervals(t *testing.T) {
	store := parityWorkload(t)
	snap := ingestAll(t, store).Snapshot()
	want, err := core.AnalyzeIntervals(core.AllIntervals(store))
	if err != nil {
		t.Fatal(err)
	}

	if snap.Intervals.N != want.N {
		t.Fatalf("interval N = %d, want %d", snap.Intervals.N, want.N)
	}
	if snap.Intervals.SimultaneousFrac != want.SimultaneousFrac {
		t.Errorf("simultaneous frac = %v, want %v", snap.Intervals.SimultaneousFrac, want.SimultaneousFrac)
	}
	if snap.Intervals.ExactZeroFrac != want.ExactZeroFrac {
		t.Errorf("zero frac = %v, want %v", snap.Intervals.ExactZeroFrac, want.ExactZeroFrac)
	}
	relClose(t, "interval mean", snap.Intervals.Mean, want.Mean, 1e-6)
	relClose(t, "interval stddev", snap.Intervals.StdDev, want.StdDev, 1e-6)
	if snap.Intervals.Min != want.Min || snap.Intervals.Max != want.Max {
		t.Errorf("interval extremes = (%v, %v), want (%v, %v)",
			snap.Intervals.Min, snap.Intervals.Max, want.Min, want.Max)
	}
	// Sketch quantiles: the acceptance bar is <= 2% relative error.
	relClose(t, "interval median", snap.Intervals.Median, want.Median, 0.02)
	relClose(t, "interval p80", snap.Intervals.P80, want.P80, 0.02)
	relClose(t, "interval p95", snap.Intervals.P95, want.P95, 0.02)
}

func TestParityDurations(t *testing.T) {
	store := parityWorkload(t)
	snap := ingestAll(t, store).Snapshot()
	want, err := core.AnalyzeDurations(core.Durations(store))
	if err != nil {
		t.Fatal(err)
	}

	if snap.Durations.N != want.N {
		t.Fatalf("duration N = %d, want %d", snap.Durations.N, want.N)
	}
	if snap.Durations.FracUnder4h != want.FracUnder4h || snap.Durations.FracUnder60s != want.FracUnder60s {
		t.Errorf("duration fractions = (%v, %v), want (%v, %v)",
			snap.Durations.FracUnder4h, snap.Durations.FracUnder60s,
			want.FracUnder4h, want.FracUnder60s)
	}
	relClose(t, "duration mean", snap.Durations.Mean, want.Mean, 1e-6)
	relClose(t, "duration stddev", snap.Durations.StdDev, want.StdDev, 1e-6)
	if snap.Durations.Min != want.Min || snap.Durations.Max != want.Max {
		t.Errorf("duration extremes = (%v, %v), want (%v, %v)",
			snap.Durations.Min, snap.Durations.Max, want.Min, want.Max)
	}
	relClose(t, "duration median", snap.Durations.Median, want.Median, 0.02)
	relClose(t, "duration p80", snap.Durations.P80, want.P80, 0.02)
	relClose(t, "duration p95", snap.Durations.P95, want.P95, 0.02)
}

func TestParityLoad(t *testing.T) {
	store := parityWorkload(t)
	snap := ingestAll(t, store).Snapshot()
	_, want, err := core.ConcurrentLoad(store)
	if err != nil {
		t.Fatal(err)
	}

	if snap.Load.Peak != want.Peak {
		t.Errorf("load peak = %d, want %d", snap.Load.Peak, want.Peak)
	}
	if !snap.Load.PeakTime.Equal(want.PeakTime) {
		t.Errorf("load peak time = %v, want %v", snap.Load.PeakTime, want.PeakTime)
	}
	relClose(t, "time-weighted mean load", snap.Load.TimeWeightedMean, want.TimeWeightedMean, 1e-6)
}

func TestParityCollaborations(t *testing.T) {
	store := parityWorkload(t)
	snap := ingestAll(t, store).Snapshot()
	want := core.AnalyzeCollaborations(store)

	if snap.Collaborations.TotalIntra != want.TotalIntra {
		t.Errorf("intra collaborations = %d, want %d", snap.Collaborations.TotalIntra, want.TotalIntra)
	}
	if snap.Collaborations.TotalInter != want.TotalInter {
		t.Errorf("inter collaborations = %d, want %d", snap.Collaborations.TotalInter, want.TotalInter)
	}
	relClose(t, "mean botnets", snap.Collaborations.MeanBotnets, want.MeanBotnets, 1e-9)
	if !reflect.DeepEqual(snap.Collaborations.Intra, want.Intra) {
		t.Errorf("intra map = %v, want %v", snap.Collaborations.Intra, want.Intra)
	}
	if !reflect.DeepEqual(snap.Collaborations.Inter, want.Inter) {
		t.Errorf("inter map = %v, want %v", snap.Collaborations.Inter, want.Inter)
	}
	if !reflect.DeepEqual(snap.Collaborations.PairCounts, want.PairCounts) {
		t.Errorf("pair counts = %v, want %v", snap.Collaborations.PairCounts, want.PairCounts)
	}
	if want.TotalIntra+want.TotalInter > 0 && len(snap.Collaborations.Recent) == 0 {
		t.Error("no recent candidates despite detected collaborations")
	}
}

// TestConcurrentSnapshots drives one writer and several snapshot readers
// at once; run under -race this is the §II-B "live dashboard" scenario.
func TestConcurrentSnapshots(t *testing.T) {
	store := parityWorkload(t)
	attacks := store.Attacks()
	sa := New()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := sa.Snapshot()
				if snap.Ingested > 0 && len(snap.Protocols) == 0 {
					t.Error("non-empty snapshot without protocol counts")
					return
				}
				if snap.Load.Peak < 0 || snap.ActiveAttacks < 0 {
					t.Error("negative load in snapshot")
					return
				}
			}
		}()
	}
	for _, a := range attacks {
		if err := sa.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	if got := sa.Snapshot().Ingested; got != len(attacks) {
		t.Fatalf("ingested %d, want %d", got, len(attacks))
	}
}

func mkAttack(id uint64, start time.Time, dur time.Duration) *dataset.Attack {
	return &dataset.Attack{
		ID:       dataset.DDoSID(id),
		BotnetID: dataset.BotnetID(id%7 + 1),
		Family:   dataset.Dirtjumper,
		Category: dataset.CategoryHTTP,
		TargetIP: netip.MustParseAddr("192.0.2.1"),
		Start:    start,
		End:      start.Add(dur),
		BotIPs:   []netip.Addr{netip.MustParseAddr("198.51.100.1")},
	}
}

func TestIngestOutOfOrder(t *testing.T) {
	sa := New()
	t0 := time.Date(2012, 8, 29, 0, 0, 0, 0, time.UTC)
	if err := sa.Ingest(mkAttack(1, t0, time.Hour)); err != nil {
		t.Fatal(err)
	}
	err := sa.Ingest(mkAttack(2, t0.Add(-time.Second), time.Hour))
	if err == nil {
		t.Fatal("out-of-order ingest accepted")
	}
	if snap := sa.Snapshot(); snap.Ingested != 1 {
		t.Errorf("rejected attack counted: ingested = %d", snap.Ingested)
	}
}

func TestIngestInvalidAttack(t *testing.T) {
	sa := New()
	bad := mkAttack(0, time.Date(2012, 8, 29, 0, 0, 0, 0, time.UTC), time.Hour)
	if err := sa.Ingest(bad); err == nil {
		t.Fatal("zero-ID attack accepted")
	}
}

func TestEmptySnapshot(t *testing.T) {
	snap := New().Snapshot()
	if snap.Ingested != 0 || snap.Load.Peak != 0 || len(snap.Protocols) != 0 {
		t.Errorf("empty snapshot = %+v", snap)
	}
}

// TestZeroDurationAttacksDoNotInflateLoad mirrors the batch sweep's tie
// rule: a zero-duration attack never counts as active.
func TestZeroDurationAttacksDoNotInflateLoad(t *testing.T) {
	sa := New()
	t0 := time.Date(2012, 8, 29, 0, 0, 0, 0, time.UTC)
	for i := uint64(1); i <= 3; i++ {
		if err := sa.Ingest(mkAttack(i, t0.Add(time.Duration(i)*time.Minute), 0)); err != nil {
			t.Fatal(err)
		}
	}
	snap := sa.Snapshot()
	if snap.Load.Peak != 0 || snap.ActiveAttacks != 0 {
		t.Errorf("zero-duration load = peak %d active %d, want 0/0", snap.Load.Peak, snap.ActiveAttacks)
	}
	if !snap.Load.PeakTime.IsZero() {
		t.Errorf("peak time = %v, want zero", snap.Load.PeakTime)
	}
}

// TestSnapshotMidStreamMonotone checks that mid-stream snapshots stay
// internally consistent while ingestion continues.
func TestSnapshotMidStreamMonotone(t *testing.T) {
	store := parityWorkload(t)
	attacks := store.Attacks()
	sa := New()
	var lastIngested int
	for i, a := range attacks {
		if err := sa.Ingest(a); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			snap := sa.Snapshot()
			if snap.Ingested < lastIngested {
				t.Fatalf("ingested went backwards: %d -> %d", lastIngested, snap.Ingested)
			}
			if snap.Ingested >= 2 && snap.Intervals.N != snap.Ingested-1 {
				t.Fatalf("interval N = %d with %d ingested", snap.Intervals.N, snap.Ingested)
			}
			lastIngested = snap.Ingested
		}
	}
}
