package stream

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/stats"
)

// ErrOutOfOrder is returned by Ingest when an attack starts before the
// previously ingested attack. The analyzer consumes an event-time-ordered
// feed (the monitoring service emits snapshots chronologically); feeders
// replaying unsorted files should sort first (see cmd/botfeed -sort).
var ErrOutOfOrder = errors.New("stream: attack starts before the previously ingested attack")

// Analyzer is a thread-safe, bounded-memory online analyzer over a live
// attack feed. One writer calls Ingest; any number of readers may call
// Snapshot concurrently (RWMutex-guarded).
//
// Memory grows with the number of distinct (day, family) buckets, sketch
// buckets (hard-capped), currently active attacks, and open collaboration
// windows — never with the total number of ingested attacks.
type Analyzer struct {
	mu sync.RWMutex

	n          int       // guarded by mu
	firstStart time.Time // guarded by mu
	lastStart  time.Time // guarded by mu

	// Protocol / family counters (Figs 1-2, Table II).
	byCategory map[dataset.Category]int                    // guarded by mu
	byCatFam   map[dataset.Category]map[dataset.Family]int // guarded by mu

	// Daily buckets keyed by day index from the UTC midnight of the first
	// attack's day, mirroring core.DailyDistribution's anchoring.
	dayAnchor time.Time          // guarded by mu
	days      map[int]*dayBucket // guarded by mu

	// Inter-attack gaps (§III-B): exact moments + counters, sketched
	// quantiles.
	gaps      stats.Online    // guarded by mu
	gapSketch *QuantileSketch // guarded by mu
	gapZero   int             // guarded by mu
	gapSimult int             // guarded by mu

	// Durations (§III-C).
	durs       stats.Online    // guarded by mu
	durSketch  *QuantileSketch // guarded by mu
	durUnder1m int             // guarded by mu
	durUnder4h int             // guarded by mu

	// Concurrent-load sweep (§II-B): a min-heap of active attacks' end
	// times plus a lazily advanced time-weighted integral.
	ends      endHeap   // guarded by mu
	active    int       // guarded by mu
	peak      int       // guarded by mu
	peakTime  time.Time // guarded by mu
	sweepTime time.Time // guarded by mu
	weightSum float64   // guarded by mu; integral of active count over time, in seconds
	timeSum   float64   // guarded by mu

	// Windowed cross-botnet collaboration detection (§V).
	collab *collabTracker // guarded by mu
}

type dayBucket struct {
	count    int
	byFamily map[dataset.Family]int
}

// New builds an empty streaming analyzer with the paper's collaboration
// windows (60 s start window, 30 min duration window).
func New() *Analyzer {
	return &Analyzer{
		byCategory: make(map[dataset.Category]int),
		byCatFam:   make(map[dataset.Category]map[dataset.Family]int),
		days:       make(map[int]*dayBucket),
		gapSketch:  NewQuantileSketch(0),
		durSketch:  NewQuantileSketch(0),
		collab:     newCollabTracker(core.SimultaneousThreshold, core.CollabDurationWindow),
	}
}

// Ingest folds one attack into the online state. Attacks must arrive in
// event-time order (non-decreasing Start); records are validated like the
// batch store does. The record is retained only inside the active-load
// heap and open collaboration windows, both of which drain as event time
// advances.
func (s *Analyzer) Ingest(a *dataset.Attack) error {
	if err := a.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.n > 0 && a.Start.Before(s.lastStart) {
		return fmt.Errorf("%w: %v < %v (attack %d)", ErrOutOfOrder, a.Start, s.lastStart, a.ID)
	}

	// Counters.
	s.byCategory[a.Category]++
	fams := s.byCatFam[a.Category]
	if fams == nil {
		fams = make(map[dataset.Family]int)
		s.byCatFam[a.Category] = fams
	}
	fams[a.Family]++

	// Daily buckets, anchored like core.DailyDistribution.
	if s.n == 0 {
		s.firstStart = a.Start
		s.dayAnchor = time.Date(a.Start.Year(), a.Start.Month(), a.Start.Day(), 0, 0, 0, 0, time.UTC)
		s.sweepTime = a.Start
	}
	d := int(a.Start.Sub(s.dayAnchor).Hours() / 24)
	db := s.days[d]
	if db == nil {
		db = &dayBucket{byFamily: make(map[dataset.Family]int)}
		s.days[d] = db
	}
	db.count++
	db.byFamily[a.Family]++

	// Inter-attack gap.
	if s.n > 0 {
		gap := a.Start.Sub(s.lastStart).Seconds()
		s.gaps.Add(gap)
		s.gapSketch.Add(gap)
		if a.Start.Equal(s.lastStart) {
			s.gapZero++
		}
		if gap < core.SimultaneousThreshold.Seconds() {
			s.gapSimult++
		}
	}

	// Duration.
	dur := a.Duration().Seconds()
	s.durs.Add(dur)
	s.durSketch.Add(dur)
	if dur <= 60 {
		s.durUnder1m++
	}
	if dur <= 4*3600 {
		s.durUnder4h++
	}

	// Concurrent load: retire every attack that ended at or before this
	// start (ends sort before starts at the same instant, matching the
	// batch sweep's tie rule), then admit the new one. Zero-duration
	// attacks never contribute to the active count, as in the batch sweep.
	now := a.Start.UnixNano()
	for len(s.ends) > 0 && s.ends[0] <= now {
		e := heap.Pop(&s.ends).(int64)
		s.advanceSweep(e)
		s.active--
	}
	s.advanceSweep(now)
	if a.End.After(a.Start) {
		s.active++
		heap.Push(&s.ends, a.End.UnixNano())
		if s.active > s.peak {
			s.peak = s.active
			s.peakTime = a.Start
		}
	}

	// Collaboration windows.
	s.collab.ingest(a)

	s.n++
	s.lastStart = a.Start
	return nil
}

// advanceSweep accumulates the active-count integral up to unix-nano t.
//
//lockguard:held mu
func (s *Analyzer) advanceSweep(t int64) {
	dt := time.Duration(t - s.sweepTime.UnixNano()).Seconds()
	if dt > 0 {
		s.weightSum += float64(s.active) * dt
		s.timeSum += dt
		s.sweepTime = time.Unix(0, t).UTC()
	}
}

// Snapshot is a point-in-time view of the online state, expressed in the
// batch result types so stream/batch parity is directly testable.
type Snapshot struct {
	// Ingested is the number of attacks folded in so far.
	Ingested int
	// FirstStart / LastStart bound the ingested event time.
	FirstStart time.Time
	LastStart  time.Time
	// ActiveAttacks is the number of attacks in progress at LastStart.
	ActiveAttacks int

	// Protocols is the Fig 1 breakdown; FamilyProtocol is Table II.
	Protocols      []core.ProtocolCount
	FamilyProtocol []core.FamilyProtocolRow
	// Daily is the Fig 2 distribution.
	Daily core.DailyStats
	// Intervals summarizes inter-attack gaps (§III-B); Median/P80/P95 come
	// from the quantile sketch, everything else is exact.
	Intervals core.IntervalStats
	// Durations summarizes attack durations (§III-C), same split.
	Durations core.DurationStats
	// Load is the §II-B concurrent-attack load summary. Peak and PeakTime
	// are exact; TimeWeightedMean integrates through the last ingested
	// attack's end, matching the batch sweep at end of stream.
	Load core.LoadStats
	// Collaborations summarizes live §V collaboration candidates.
	Collaborations CollabSummary
}

// Snapshot materializes the current online state. It is safe to call
// concurrently with Ingest and returns fresh slices/maps that never alias
// analyzer state. Unlike the batch summaries, an empty or single-attack
// snapshot reports zero statistics rather than NaNs, keeping the result
// JSON-encodable.
func (s *Analyzer) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()

	snap := Snapshot{
		Ingested:      s.n,
		FirstStart:    s.firstStart,
		LastStart:     s.lastStart,
		ActiveAttacks: s.active,
	}
	if s.n == 0 {
		return snap
	}

	snap.Protocols = s.protocolBreakdown()
	snap.FamilyProtocol = s.familyProtocolTable()
	snap.Daily = s.dailyStats()
	snap.Intervals = s.intervalStats()
	snap.Durations = s.durationStats()
	snap.Load = s.loadStats()
	snap.Collaborations = s.collab.snapshot()
	return snap
}

// protocolBreakdown mirrors core.ProtocolBreakdown's ordering: count
// descending, ties by category display order.
//
//lockguard:held mu
func (s *Analyzer) protocolBreakdown() []core.ProtocolCount {
	out := make([]core.ProtocolCount, 0, len(s.byCategory))
	for _, c := range dataset.Categories {
		if s.byCategory[c] > 0 {
			out = append(out, core.ProtocolCount{Category: c, Count: s.byCategory[c]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// familyProtocolTable mirrors core.FamilyProtocolTable's ordering:
// categories in display order, families alphabetically inside each.
//
//lockguard:held mu
func (s *Analyzer) familyProtocolTable() []core.FamilyProtocolRow {
	var out []core.FamilyProtocolRow
	for _, c := range dataset.Categories {
		fams := make([]dataset.Family, 0, len(s.byCatFam[c]))
		for f := range s.byCatFam[c] {
			fams = append(fams, f)
		}
		sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
		for _, f := range fams {
			out = append(out, core.FamilyProtocolRow{Category: c, Family: f, Count: s.byCatFam[c][f]})
		}
	}
	return out
}

// dailyStats rebuilds core.DailyStats from the daily buckets with the same
// tie rules as core.DailyDistribution (earliest peak day wins; dominant
// family by count, ties alphabetically).
//
//lockguard:held mu
func (s *Analyzer) dailyStats() core.DailyStats {
	idx := make([]int, 0, len(s.days))
	for d := range s.days {
		idx = append(idx, d)
	}
	sort.Ints(idx)

	st := core.DailyStats{Days: make([]core.DailyCount, 0, len(idx))}
	total := 0
	for _, d := range idx {
		db := s.days[d]
		dc := core.DailyCount{
			Day:      s.dayAnchor.AddDate(0, 0, d),
			Count:    db.count,
			ByFamily: make(map[dataset.Family]int, len(db.byFamily)),
		}
		for f, n := range db.byFamily {
			dc.ByFamily[f] = n
		}
		st.Days = append(st.Days, dc)
		total += db.count
		if db.count > st.Max {
			st.Max = db.count
			st.MaxDay = dc.Day
			best, bestN := dataset.Family(""), 0
			for f, n := range db.byFamily {
				if n > bestN || (n == bestN && f < best) {
					best, bestN = f, n
				}
			}
			st.MaxDominantFamily = best
		}
	}
	if len(idx) > 0 {
		span := idx[len(idx)-1] - idx[0] + 1
		st.Average = float64(total) / float64(span)
	}
	return st
}

// summary assembles a stats.Summary from exact online moments plus
// sketched quantiles, with zeros instead of NaNs for tiny samples.
func sketchSummary(o *stats.Online, sk *QuantileSketch) stats.Summary {
	if o.N() == 0 {
		return stats.Summary{}
	}
	sum := stats.Summary{
		N:      o.N(),
		Mean:   o.Mean(),
		Min:    o.Min(),
		Max:    o.Max(),
		Median: sk.Quantile(0.5),
		P80:    sk.Quantile(0.8),
		P95:    sk.Quantile(0.95),
	}
	if o.N() >= 2 {
		sum.StdDev = o.StdDev()
	}
	return sum
}

//lockguard:held mu
func (s *Analyzer) intervalStats() core.IntervalStats {
	st := core.IntervalStats{Summary: sketchSummary(&s.gaps, s.gapSketch)}
	if n := s.gaps.N(); n > 0 {
		st.ExactZeroFrac = float64(s.gapZero) / float64(n)
		st.SimultaneousFrac = float64(s.gapSimult) / float64(n)
	}
	return st
}

//lockguard:held mu
func (s *Analyzer) durationStats() core.DurationStats {
	st := core.DurationStats{Summary: sketchSummary(&s.durs, s.durSketch)}
	if n := s.durs.N(); n > 0 {
		st.FracUnder4h = float64(s.durUnder4h) / float64(n)
		st.FracUnder60s = float64(s.durUnder1m) / float64(n)
	}
	return st
}

// loadStats finishes the time-weighted integral over a copy of the active
// heap (draining the still-active attacks to their ends), so at end of
// stream TimeWeightedMean matches the batch sweep exactly.
//
//lockguard:held mu
func (s *Analyzer) loadStats() core.LoadStats {
	st := core.LoadStats{Peak: s.peak, PeakTime: s.peakTime}
	weight, total := s.weightSum, s.timeSum
	if len(s.ends) > 0 {
		rest := make(endHeap, len(s.ends))
		copy(rest, s.ends)
		active := s.active
		sweep := s.sweepTime.UnixNano()
		for len(rest) > 0 {
			e := heap.Pop(&rest).(int64)
			dt := time.Duration(e - sweep).Seconds()
			if dt > 0 {
				weight += float64(active) * dt
				total += dt
				sweep = e
			}
			active--
		}
	}
	if total > 0 {
		st.TimeWeightedMean = weight / total
	}
	if math.IsNaN(st.TimeWeightedMean) {
		st.TimeWeightedMean = 0
	}
	return st
}

// endHeap is a min-heap of attack end times in unix nanoseconds.
type endHeap []int64

func (h endHeap) Len() int           { return len(h) }
func (h endHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h endHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *endHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
