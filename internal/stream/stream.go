package stream

import (
	"container/heap"
	"errors"
	"sort"
	"sync"
	"time"

	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/stats"
)

// ErrOutOfOrder is returned by Ingest when an attack starts before the
// previously ingested attack. The analyzer consumes an event-time-ordered
// feed (the monitoring service emits snapshots chronologically); feeders
// replaying unsorted files should sort first (see cmd/botfeed -sort).
var ErrOutOfOrder = errors.New("stream: attack starts before the previously ingested attack")

// Analyzer is a thread-safe, bounded-memory online analyzer over a live
// attack feed. One writer calls Ingest; any number of readers may call
// Snapshot concurrently (RWMutex-guarded).
//
// Memory grows with the number of distinct (day, family) buckets, sketch
// buckets (hard-capped), currently active attacks, and open collaboration
// windows — never with the total number of ingested attacks.
//
// The global-order scalar statistics (gaps, durations, load) live in an
// embedded Scalars; the keyed statistics (protocol/family counters, daily
// buckets, collaboration windows) live here. The sharded serve tier
// (internal/cluster) splits along exactly this seam: each shard runs the
// keyed state over its hash partition via IngestAt/Advance, and a
// separate Scalars over the full tick stream.
type Analyzer struct {
	mu sync.RWMutex

	scalars *Scalars // guarded by mu

	// Protocol / family counters (Figs 1-2, Table II).
	byCategory map[dataset.Category]int                    // guarded by mu
	byCatFam   map[dataset.Category]map[dataset.Family]int // guarded by mu

	// Daily buckets keyed by day index from the UTC midnight of the first
	// attack's day, mirroring core.DailyDistribution's anchoring.
	dayAnchor time.Time          // guarded by mu
	days      map[int]*dayBucket // guarded by mu

	// Windowed cross-botnet collaboration detection (§V).
	collab *collabTracker // guarded by mu
}

type dayBucket struct {
	count    int
	byFamily map[dataset.Family]int
}

// New builds an empty streaming analyzer with the paper's collaboration
// windows (60 s start window, 30 min duration window).
func New() *Analyzer {
	return &Analyzer{
		scalars:    NewScalars(),
		byCategory: make(map[dataset.Category]int),
		byCatFam:   make(map[dataset.Category]map[dataset.Family]int),
		days:       make(map[int]*dayBucket),
		collab:     newCollabTracker(core.SimultaneousThreshold, core.CollabDurationWindow),
	}
}

// Ingest folds one attack into the online state. Attacks must arrive in
// event-time order (non-decreasing Start); records are validated like the
// batch store does. The record is retained only inside the active-load
// heap and open collaboration windows, both of which drain as event time
// advances.
func (s *Analyzer) Ingest(a *dataset.Attack) error {
	return s.ingest(a, 0)
}

// IngestAt is Ingest with an explicit global sequence number, for shard
// workers that see only a hash partition of the feed: seq is the record's
// 1-based position in the *global* stream, so collaboration candidates
// detected on different shards can be merged back into the exact order a
// single analyzer over the whole feed would report. Ingest is equivalent
// to IngestAt with the analyzer's own running count.
func (s *Analyzer) IngestAt(a *dataset.Attack, seq uint64) error {
	return s.ingest(a, seq)
}

func (s *Analyzer) ingest(a *dataset.Attack, seq uint64) error {
	if err := a.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	if err := s.scalars.Observe(a.ID, a.Start, a.End); err != nil {
		return err
	}
	if seq == 0 {
		seq = uint64(s.scalars.N())
	}

	// Counters.
	s.byCategory[a.Category]++
	fams := s.byCatFam[a.Category]
	if fams == nil {
		fams = make(map[dataset.Family]int)
		s.byCatFam[a.Category] = fams
	}
	fams[a.Family]++

	// Daily buckets, anchored like core.DailyDistribution. The anchor is
	// the UTC midnight of the first *ingested* attack (not the first tick):
	// bucket d resolves to the absolute date anchor+d either way, so shards
	// with different anchors still agree on every bucket's calendar day.
	if s.dayAnchor.IsZero() {
		s.dayAnchor = time.Date(a.Start.Year(), a.Start.Month(), a.Start.Day(), 0, 0, 0, 0, time.UTC)
	}
	d := int(a.Start.Sub(s.dayAnchor).Hours() / 24)
	db := s.days[d]
	if db == nil {
		db = &dayBucket{byFamily: make(map[dataset.Family]int)}
		s.days[d] = db
	}
	db.count++
	db.byFamily[a.Family]++

	// Collaboration windows.
	s.collab.ingest(a, seq)

	return nil
}

// Advance moves the analyzer's event horizon to t without ingesting an
// attack, expiring collaboration windows no future attack can join. Shard
// workers call it for every foreign tick (an attack homed on another
// shard), so windows close at exactly the same global event times they
// would close at in a single analyzer over the whole feed.
func (s *Analyzer) Advance(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collab.advance(t)
}

// Tick folds a foreign attack's (id, start, end) into the scalar state and
// advances the collaboration horizon, without touching any keyed state.
// Shard workers call it for attacks homed on other shards: every shard
// folds the identical global tick sequence through the identical Scalars
// code, so every shard reports bit-identical global scalar statistics
// while its keyed statistics cover only its own hash partition.
func (s *Analyzer) Tick(id dataset.DDoSID, start, end time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.scalars.Observe(id, start, end); err != nil {
		return err
	}
	s.collab.advance(start)
	return nil
}

// Snapshot is a point-in-time view of the online state, expressed in the
// batch result types so stream/batch parity is directly testable.
type Snapshot struct {
	// Ingested is the number of attacks folded in so far.
	Ingested int
	// FirstStart / LastStart bound the ingested event time.
	FirstStart time.Time
	LastStart  time.Time
	// ActiveAttacks is the number of attacks in progress at LastStart.
	ActiveAttacks int

	// Protocols is the Fig 1 breakdown; FamilyProtocol is Table II.
	Protocols      []core.ProtocolCount
	FamilyProtocol []core.FamilyProtocolRow
	// Daily is the Fig 2 distribution.
	Daily core.DailyStats
	// Intervals summarizes inter-attack gaps (§III-B); Median/P80/P95 come
	// from the quantile sketch, everything else is exact.
	Intervals core.IntervalStats
	// Durations summarizes attack durations (§III-C), same split.
	Durations core.DurationStats
	// Load is the §II-B concurrent-attack load summary. Peak and PeakTime
	// are exact; TimeWeightedMean integrates through the last ingested
	// attack's end, matching the batch sweep at end of stream.
	Load core.LoadStats
	// Collaborations summarizes live §V collaboration candidates.
	Collaborations CollabSummary
}

// Snapshot materializes the current online state. It is safe to call
// concurrently with Ingest and returns fresh slices/maps that never alias
// analyzer state. Unlike the batch summaries, an empty or single-attack
// snapshot reports zero statistics rather than NaNs, keeping the result
// JSON-encodable.
func (s *Analyzer) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()

	snap := Snapshot{
		Ingested:      s.scalars.N(),
		FirstStart:    s.scalars.FirstStart(),
		LastStart:     s.scalars.LastStart(),
		ActiveAttacks: s.scalars.Active(),
	}
	if snap.Ingested == 0 {
		return snap
	}

	snap.Protocols = s.protocolBreakdown()
	snap.FamilyProtocol = s.familyProtocolTable()
	snap.Daily = s.dailyStats()
	snap.Intervals = s.scalars.IntervalStats()
	snap.Durations = s.scalars.DurationStats()
	snap.Load = s.scalars.LoadStats()
	snap.Collaborations = s.collab.snapshot()
	return snap
}

// protocolBreakdown mirrors core.ProtocolBreakdown's ordering: count
// descending, ties by category display order.
//
//lockguard:held mu
func (s *Analyzer) protocolBreakdown() []core.ProtocolCount {
	out := make([]core.ProtocolCount, 0, len(s.byCategory))
	for _, c := range dataset.Categories {
		if s.byCategory[c] > 0 {
			out = append(out, core.ProtocolCount{Category: c, Count: s.byCategory[c]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// familyProtocolTable mirrors core.FamilyProtocolTable's ordering:
// categories in display order, families alphabetically inside each.
//
//lockguard:held mu
func (s *Analyzer) familyProtocolTable() []core.FamilyProtocolRow {
	var out []core.FamilyProtocolRow
	for _, c := range dataset.Categories {
		fams := make([]dataset.Family, 0, len(s.byCatFam[c]))
		for f := range s.byCatFam[c] {
			fams = append(fams, f)
		}
		sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
		for _, f := range fams {
			out = append(out, core.FamilyProtocolRow{Category: c, Family: f, Count: s.byCatFam[c][f]})
		}
	}
	return out
}

// dailyStats rebuilds core.DailyStats from the daily buckets with the same
// tie rules as core.DailyDistribution (earliest peak day wins; dominant
// family by count, ties alphabetically).
//
//lockguard:held mu
func (s *Analyzer) dailyStats() core.DailyStats {
	idx := make([]int, 0, len(s.days))
	for d := range s.days {
		idx = append(idx, d)
	}
	sort.Ints(idx)

	st := core.DailyStats{Days: make([]core.DailyCount, 0, len(idx))}
	total := 0
	for _, d := range idx {
		db := s.days[d]
		dc := core.DailyCount{
			Day:      s.dayAnchor.AddDate(0, 0, d),
			Count:    db.count,
			ByFamily: make(map[dataset.Family]int, len(db.byFamily)),
		}
		for f, n := range db.byFamily {
			dc.ByFamily[f] = n
		}
		st.Days = append(st.Days, dc)
		total += db.count
		if db.count > st.Max {
			st.Max = db.count
			st.MaxDay = dc.Day
			best, bestN := dataset.Family(""), 0
			for f, n := range db.byFamily {
				if n > bestN || (n == bestN && f < best) {
					best, bestN = f, n
				}
			}
			st.MaxDominantFamily = best
		}
	}
	if len(idx) > 0 {
		span := idx[len(idx)-1] - idx[0] + 1
		st.Average = float64(total) / float64(span)
	}
	return st
}

// sketchSummary assembles a stats.Summary from exact online moments plus
// sketched quantiles, with zeros instead of NaNs for tiny samples.
func sketchSummary(o *stats.Online, sk *QuantileSketch) stats.Summary {
	if o.N() == 0 {
		return stats.Summary{}
	}
	sum := stats.Summary{
		N:      o.N(),
		Mean:   o.Mean(),
		Min:    o.Min(),
		Max:    o.Max(),
		Median: sk.Quantile(0.5),
		P80:    sk.Quantile(0.8),
		P95:    sk.Quantile(0.95),
	}
	if o.N() >= 2 {
		sum.StdDev = o.StdDev()
	}
	return sum
}

// endHeap is a min-heap of attack end times in unix nanoseconds.
type endHeap []int64

func (h endHeap) Len() int           { return len(h) }
func (h endHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h endHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *endHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

var _ = heap.Interface(&endHeap{})
