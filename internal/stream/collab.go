package stream

import (
	"net/netip"
	"sort"
	"time"

	"botscope/internal/core"
	"botscope/internal/dataset"
)

// maxRecentCandidates bounds the live candidate ring exposed by snapshots.
const maxRecentCandidates = 32

// CollabCandidate is one detected (or still-open) collaborative attack:
// the live counterpart of a core.Collaboration, trimmed to the fields a
// dashboard needs.
type CollabCandidate struct {
	Target   string           `json:"target"`
	Start    time.Time        `json:"start"`
	Families []dataset.Family `json:"families"`
	Botnets  int              `json:"botnets"`
	Attacks  int              `json:"attacks"`

	// Seq is the global sequence number of the window's first attack and
	// Open marks a candidate qualified read-only from a still-open window.
	// Both exist so the sharded serve tier can interleave candidates from
	// disjoint target partitions back into this tracker's exact emission
	// order; they are internal bookkeeping, not part of the JSON shape.
	Seq  uint64 `json:"-"`
	Open bool   `json:"-"`
}

// CollabSummary aggregates live collaboration detection the way the batch
// core.CollabStats does (Table VI), plus a bounded ring of the most recent
// candidates and the number of still-open windows.
type CollabSummary struct {
	TotalIntra  int                    `json:"total_intra"`
	TotalInter  int                    `json:"total_inter"`
	MeanBotnets float64                `json:"mean_botnets"`
	Intra       map[dataset.Family]int `json:"intra"`
	Inter       map[dataset.Family]int `json:"inter"`
	// PairCounts counts inter-family pairs, keyed "famA+famB" with A < B.
	PairCounts map[string]int `json:"pair_counts"`
	// Recent holds the latest qualified candidates, oldest first.
	Recent []CollabCandidate `json:"recent"`
	// OpenWindows is the number of per-target start windows still inside
	// the 60 s horizon at snapshot time.
	OpenWindows int `json:"open_windows"`

	// Qualified and BotnetTotal are the integer numerator/denominator
	// behind MeanBotnets, exposed (JSON-hidden) so the sharded serve tier
	// can sum them across disjoint target partitions and recompute the
	// mean with the identical division a single tracker performs.
	Qualified   int `json:"-"`
	BotnetTotal int `json:"-"`
}

// collabTracker performs windowed cross-botnet collaboration detection:
// per target it accumulates attacks into 60 s start windows (anchored at
// the window's first attack, exactly like the batch grouping) and
// qualifies each window with core.QualifyCollaboration once event time
// moves past it. Memory is bounded by the attacks arriving inside any
// single start-window horizon.
type collabTracker struct {
	startWindow    time.Duration
	durationWindow time.Duration

	open  map[netip.Addr]*openGroup
	queue []*openGroup // anchor-ordered, for horizon expiry

	totalIntra   int
	totalInter   int
	totalBotnets int
	qualified    int
	intra        map[dataset.Family]int
	inter        map[dataset.Family]int
	pairs        map[string]int
	recent       []CollabCandidate
}

type openGroup struct {
	target  netip.Addr
	anchor  time.Time
	seq     uint64 // global sequence of the window's first attack
	attacks []*dataset.Attack
	closed  bool
}

func newCollabTracker(startWindow, durationWindow time.Duration) *collabTracker {
	return &collabTracker{
		startWindow:    startWindow,
		durationWindow: durationWindow,
		open:           make(map[netip.Addr]*openGroup),
		intra:          make(map[dataset.Family]int),
		inter:          make(map[dataset.Family]int),
		pairs:          make(map[string]int),
	}
}

// ingest routes one attack (arriving in global start order) into its
// target's current window, closing windows the event horizon has passed.
// seq is the attack's global sequence number; it stamps the window a new
// attack anchors so cross-shard merges can restore emission order.
func (t *collabTracker) ingest(a *dataset.Attack, seq uint64) {
	t.advance(a.Start)

	g := t.open[a.TargetIP]
	if g != nil && a.Start.Sub(g.anchor) < t.startWindow {
		g.attacks = append(g.attacks, a)
		return
	}
	if g != nil {
		// The target's previous window is out of range for this attack but
		// still queued; close it now so the new window replaces it.
		t.finalize(g)
	}
	g = &openGroup{target: a.TargetIP, anchor: a.Start, seq: seq, attacks: []*dataset.Attack{a}}
	t.open[a.TargetIP] = g
	t.queue = append(t.queue, g)
}

// advance expires every window whose 60 s horizon precedes event time now:
// no attack at or after now can join it, so it can be finalized and
// released. ingest calls it with each attack's start; shard workers also
// call it (via Analyzer.Advance) for attacks homed on other shards, so
// windows close at the same global event times on every shard layout.
func (t *collabTracker) advance(now time.Time) {
	for len(t.queue) > 0 && now.Sub(t.queue[0].anchor) >= t.startWindow {
		g := t.queue[0]
		t.queue = t.queue[1:]
		t.finalize(g)
	}
}

// finalize qualifies a window once and releases its attack references.
func (t *collabTracker) finalize(g *openGroup) {
	if g.closed {
		return
	}
	g.closed = true
	if t.open[g.target] == g {
		delete(t.open, g.target)
	}
	if c := t.qualify(g); c != nil {
		t.record(c, g.seq)
	}
	g.attacks = nil
}

// qualify applies the batch criteria to one window.
func (t *collabTracker) qualify(g *openGroup) *core.Collaboration {
	if len(g.attacks) < 2 {
		return nil
	}
	return core.QualifyCollaboration(g.target.String(), g.attacks, t.durationWindow)
}

// record folds one qualified collaboration into the Table VI counters.
func (t *collabTracker) record(c *core.Collaboration, seq uint64) {
	t.qualified++
	t.totalBotnets += c.Botnets()
	if c.Intra() {
		t.totalIntra++
		t.intra[c.Families[0]]++
	} else {
		t.totalInter++
		for _, f := range c.Families {
			t.inter[f]++
		}
		for x := 0; x < len(c.Families); x++ {
			for y := x + 1; y < len(c.Families); y++ {
				t.pairs[string(c.Families[x])+"+"+string(c.Families[y])]++
			}
		}
	}
	t.recent = append(t.recent, CollabCandidate{
		Target:   c.Target,
		Start:    c.Start,
		Families: append([]dataset.Family(nil), c.Families...),
		Botnets:  c.Botnets(),
		Attacks:  len(c.Attacks),
		Seq:      seq,
	})
	if len(t.recent) > maxRecentCandidates {
		t.recent = t.recent[len(t.recent)-maxRecentCandidates:]
	}
}

// snapshot aggregates closed windows plus a read-only qualification of the
// still-open ones, so an end-of-stream snapshot matches the batch detector
// exactly. It never mutates tracker state.
func (t *collabTracker) snapshot() CollabSummary {
	out := CollabSummary{
		TotalIntra:  t.totalIntra,
		TotalInter:  t.totalInter,
		Intra:       make(map[dataset.Family]int, len(t.intra)),
		Inter:       make(map[dataset.Family]int, len(t.inter)),
		PairCounts:  make(map[string]int, len(t.pairs)),
		Recent:      append([]CollabCandidate(nil), t.recent...),
		OpenWindows: len(t.open),
	}
	for f, n := range t.intra {
		out.Intra[f] = n
	}
	for f, n := range t.inter {
		out.Inter[f] = n
	}
	for p, n := range t.pairs {
		out.PairCounts[p] = n
	}

	qualified, botnets := t.qualified, t.totalBotnets
	// Qualify open windows as the batch detector would at end of input.
	// Deterministic order (by anchor, then target) keeps Recent stable.
	pending := make([]*openGroup, 0, len(t.open))
	for _, g := range t.open {
		pending = append(pending, g)
	}
	sort.Slice(pending, func(i, j int) bool {
		if !pending[i].anchor.Equal(pending[j].anchor) {
			return pending[i].anchor.Before(pending[j].anchor)
		}
		return pending[i].target.Less(pending[j].target)
	})
	for _, g := range pending {
		c := t.qualify(g)
		if c == nil {
			continue
		}
		qualified++
		botnets += c.Botnets()
		if c.Intra() {
			out.TotalIntra++
			out.Intra[c.Families[0]]++
		} else {
			out.TotalInter++
			for _, f := range c.Families {
				out.Inter[f]++
			}
			for x := 0; x < len(c.Families); x++ {
				for y := x + 1; y < len(c.Families); y++ {
					out.PairCounts[string(c.Families[x])+"+"+string(c.Families[y])]++
				}
			}
		}
		out.Recent = append(out.Recent, CollabCandidate{
			Target:   c.Target,
			Start:    c.Start,
			Families: append([]dataset.Family(nil), c.Families...),
			Botnets:  c.Botnets(),
			Attacks:  len(c.Attacks),
			Seq:      g.seq,
			Open:     true,
		})
	}
	if len(out.Recent) > maxRecentCandidates {
		out.Recent = out.Recent[len(out.Recent)-maxRecentCandidates:]
	}
	out.Qualified = qualified
	out.BotnetTotal = botnets
	if qualified > 0 {
		out.MeanBotnets = float64(botnets) / float64(qualified)
	}
	return out
}
