package stream

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/stats"
)

// Scalars tracks the global-order scalar statistics of an attack feed: the
// statistics whose value depends on the *interleaving* of the whole stream
// rather than on any per-key partition — inter-attack gaps (§III-B),
// durations (§III-C), and the concurrent-load sweep (§II-B), plus the
// ingested count and event-time bounds.
//
// Scalars exists as its own type so the sharded serve tier can replicate
// exactly this state on every shard from a lightweight (id, start, end)
// tick per attack: because every shard folds the identical tick sequence
// through the identical code path, every shard reports bit-identical
// global scalar statistics, and the cross-shard merge can take them from
// any one healthy shard. stream.Analyzer embeds a Scalars for the
// single-process case, so single-process and sharded serving share one
// implementation by construction.
//
// Scalars is not safe for concurrent use; callers guard it (the Analyzer
// with its RWMutex, a shard worker with its own lock).
type Scalars struct {
	n          int
	firstStart time.Time
	lastStart  time.Time

	// Inter-attack gaps (§III-B): exact moments + counters, sketched
	// quantiles.
	gaps      stats.Online
	gapSketch *QuantileSketch
	gapZero   int
	gapSimult int

	// Durations (§III-C).
	durs       stats.Online
	durSketch  *QuantileSketch
	durUnder1m int
	durUnder4h int

	// Concurrent-load sweep (§II-B): a min-heap of active attacks' end
	// times plus a lazily advanced time-weighted integral.
	ends      endHeap
	active    int
	peak      int
	peakTime  time.Time
	sweepTime time.Time
	weightSum float64 // integral of active count over time, in seconds
	timeSum   float64
}

// NewScalars builds an empty scalar accumulator.
func NewScalars() *Scalars {
	return &Scalars{
		gapSketch: NewQuantileSketch(0),
		durSketch: NewQuantileSketch(0),
	}
}

// Observe folds one attack's (start, end) into the scalar state. Attacks
// must arrive in event-time order (non-decreasing start); id only labels
// the ErrOutOfOrder error.
func (sc *Scalars) Observe(id dataset.DDoSID, start, end time.Time) error {
	if sc.n > 0 && start.Before(sc.lastStart) {
		return fmt.Errorf("%w: %v < %v (attack %d)", ErrOutOfOrder, start, sc.lastStart, id)
	}
	if sc.n == 0 {
		sc.firstStart = start
		sc.sweepTime = start
	}

	// Inter-attack gap.
	if sc.n > 0 {
		gap := start.Sub(sc.lastStart).Seconds()
		sc.gaps.Add(gap)
		sc.gapSketch.Add(gap)
		if start.Equal(sc.lastStart) {
			sc.gapZero++
		}
		if gap < core.SimultaneousThreshold.Seconds() {
			sc.gapSimult++
		}
	}

	// Duration.
	dur := end.Sub(start).Seconds()
	sc.durs.Add(dur)
	sc.durSketch.Add(dur)
	if dur <= 60 {
		sc.durUnder1m++
	}
	if dur <= 4*3600 {
		sc.durUnder4h++
	}

	// Concurrent load: retire every attack that ended at or before this
	// start (ends sort before starts at the same instant, matching the
	// batch sweep's tie rule), then admit the new one. Zero-duration
	// attacks never contribute to the active count, as in the batch sweep.
	now := start.UnixNano()
	for len(sc.ends) > 0 && sc.ends[0] <= now {
		e := heap.Pop(&sc.ends).(int64)
		sc.advanceSweep(e)
		sc.active--
	}
	sc.advanceSweep(now)
	if end.After(start) {
		sc.active++
		heap.Push(&sc.ends, end.UnixNano())
		if sc.active > sc.peak {
			sc.peak = sc.active
			sc.peakTime = start
		}
	}

	sc.n++
	sc.lastStart = start
	return nil
}

// advanceSweep accumulates the active-count integral up to unix-nano t.
func (sc *Scalars) advanceSweep(t int64) {
	dt := time.Duration(t - sc.sweepTime.UnixNano()).Seconds()
	if dt > 0 {
		sc.weightSum += float64(sc.active) * dt
		sc.timeSum += dt
		sc.sweepTime = time.Unix(0, t).UTC()
	}
}

// N returns the number of attacks observed.
func (sc *Scalars) N() int { return sc.n }

// FirstStart returns the earliest observed start (zero before the first).
func (sc *Scalars) FirstStart() time.Time { return sc.firstStart }

// LastStart returns the latest observed start (zero before the first).
func (sc *Scalars) LastStart() time.Time { return sc.lastStart }

// Active returns the number of attacks in progress at LastStart.
func (sc *Scalars) Active() int { return sc.active }

// IntervalStats summarizes the inter-attack gaps observed so far.
func (sc *Scalars) IntervalStats() core.IntervalStats {
	st := core.IntervalStats{Summary: sketchSummary(&sc.gaps, sc.gapSketch)}
	if n := sc.gaps.N(); n > 0 {
		st.ExactZeroFrac = float64(sc.gapZero) / float64(n)
		st.SimultaneousFrac = float64(sc.gapSimult) / float64(n)
	}
	return st
}

// DurationStats summarizes the attack durations observed so far.
func (sc *Scalars) DurationStats() core.DurationStats {
	st := core.DurationStats{Summary: sketchSummary(&sc.durs, sc.durSketch)}
	if n := sc.durs.N(); n > 0 {
		st.FracUnder4h = float64(sc.durUnder4h) / float64(n)
		st.FracUnder60s = float64(sc.durUnder1m) / float64(n)
	}
	return st
}

// LoadStats finishes the time-weighted integral over a copy of the active
// heap (draining the still-active attacks to their ends), so at end of
// stream TimeWeightedMean matches the batch sweep exactly.
func (sc *Scalars) LoadStats() core.LoadStats {
	st := core.LoadStats{Peak: sc.peak, PeakTime: sc.peakTime}
	weight, total := sc.weightSum, sc.timeSum
	if len(sc.ends) > 0 {
		rest := make(endHeap, len(sc.ends))
		copy(rest, sc.ends)
		active := sc.active
		sweep := sc.sweepTime.UnixNano()
		for len(rest) > 0 {
			e := heap.Pop(&rest).(int64)
			dt := time.Duration(e - sweep).Seconds()
			if dt > 0 {
				weight += float64(active) * dt
				total += dt
				sweep = e
			}
			active--
		}
	}
	if total > 0 {
		st.TimeWeightedMean = weight / total
	}
	if math.IsNaN(st.TimeWeightedMean) {
		st.TimeWeightedMean = 0
	}
	return st
}
