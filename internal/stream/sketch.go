// Package stream provides bounded-memory online analytics over a live feed
// of DDoS attack records. A stream.Analyzer ingests dataset.Attack records
// one at a time (single writer) and maintains incremental state mirroring
// the batch analyses of internal/core: protocol/family counters and daily
// buckets (Figs 1-2), streaming quantile sketches for inter-attack
// intervals and durations (§III-B/C), a heap-based sweep of concurrently
// active attacks (§II-B), and windowed cross-botnet collaboration
// detection (§V). Snapshot() returns the same result types the batch
// Analyzer produces, so parity is directly testable.
package stream

import (
	"math"
	"sort"
)

// QuantileSketch is a bounded-memory streaming quantile estimator over
// non-negative values, in the DDSketch family: values are counted in
// logarithmically spaced buckets chosen so that every estimate carries a
// guaranteed relative error of at most Alpha. Memory is O(log(max/min) /
// Alpha) buckets regardless of stream length; with the default Alpha and
// second-scaled durations/intervals that is under ~2,000 buckets.
//
// The zero value is not usable; construct with NewQuantileSketch. A sketch
// is not safe for concurrent mutation; Quantile and friends are read-only.
type QuantileSketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64
	maxBins int

	zero   uint64 // count of values <= minIndexable
	counts map[int]uint64
	n      uint64
	min    float64
	max    float64
}

// DefaultAlpha is the relative-error guarantee used by the Analyzer's
// sketches: estimates are within 0.5% of the true sample value, well
// inside the 2% parity tolerance against the batch quantiles.
const DefaultAlpha = 0.005

// minIndexable is the smallest magnitude tracked in log buckets; values at
// or below it (including all zeros, which dominate inter-attack gap series)
// land in a dedicated exact-zero bucket. One microsecond is far below any
// meaningful attack gap or duration.
const minIndexable = 1e-6

// NewQuantileSketch builds a sketch with the given relative-error target
// (0 means DefaultAlpha). Alpha must stay in (0, 1).
func NewQuantileSketch(alpha float64) *QuantileSketch {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if alpha >= 1 {
		alpha = 0.5
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		maxBins: 4096,
		counts:  make(map[int]uint64),
	}
}

// Alpha returns the sketch's relative-error guarantee.
func (s *QuantileSketch) Alpha() float64 { return s.alpha }

// N returns the number of values added.
func (s *QuantileSketch) N() int { return int(s.n) }

// Bins returns the number of live log buckets (excluding the zero bucket),
// the sketch's memory footprint measure.
func (s *QuantileSketch) Bins() int { return len(s.counts) }

// Add folds x into the sketch. Negative values are clamped to zero (the
// analyzer only feeds non-negative gap/duration seconds).
func (s *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < 0 {
		x = 0
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	if x <= minIndexable {
		s.zero++
		return
	}
	key := int(math.Ceil(math.Log(x) / s.lnGamma))
	s.counts[key]++
	if len(s.counts) > s.maxBins {
		s.collapse()
	}
}

// collapse merges the two lowest buckets, trading accuracy at the cheap
// low end for a hard memory cap (the DDSketch collapsing strategy).
func (s *QuantileSketch) collapse() {
	lowest, second := math.MaxInt, math.MaxInt
	for k := range s.counts {
		if k < lowest {
			second = lowest
			lowest = k
		} else if k < second {
			second = k
		}
	}
	if second == math.MaxInt {
		return
	}
	s.counts[second] += s.counts[lowest]
	delete(s.counts, lowest)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of the values added
// so far. It returns NaN for an empty sketch or q outside [0, 1].
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.n == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	// Target the order statistic nearest rank q*(n-1), the same anchor the
	// batch type-7 quantile interpolates around.
	rank := uint64(math.Round(q * float64(s.n-1)))
	if rank < s.zero {
		return 0
	}
	keys := make([]int, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	cum := s.zero
	for _, k := range keys {
		cum += s.counts[k]
		if rank < cum {
			// Mid-bucket estimate: bucket k covers (gamma^(k-1), gamma^k];
			// 2*gamma^k/(gamma+1) is within alpha of every value inside.
			est := 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
			return clamp(est, s.min, s.max)
		}
	}
	return s.max
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Min returns the smallest value added, or NaN for an empty sketch.
func (s *QuantileSketch) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest value added, or NaN for an empty sketch.
func (s *QuantileSketch) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// P2Quantile is the classic P² (Jain & Chlamtac 1985) single-quantile
// estimator: five markers updated with parabolic interpolation, O(1) memory
// and time per observation. It is kept alongside QuantileSketch as the
// constant-memory option when even log-bucket memory is too much (e.g. one
// estimator per tracked target); the Analyzer's snapshots use the sketch,
// whose error is guaranteed rather than distribution-dependent.
//
// The zero value is not usable; construct with NewP2Quantile.
type P2Quantile struct {
	p    float64
	n    int
	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based)
	want [5]float64 // desired marker positions
	dpos [5]float64 // desired position increments per observation
	init []float64  // first five observations
}

// NewP2Quantile builds a P² estimator for quantile p in (0, 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		p = 0.5
	}
	return &P2Quantile{
		p:    p,
		dpos: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
		init: make([]float64, 0, 5),
	}
}

// N returns the number of observations added.
func (e *P2Quantile) N() int { return e.n }

// Add folds x into the estimator.
func (e *P2Quantile) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	e.n++
	if len(e.init) < 5 {
		e.init = append(e.init, x)
		if len(e.init) == 5 {
			sort.Float64s(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.pos[i] = float64(i + 1)
			}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}

	// Locate the cell containing x, extending the extremes when needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dpos[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qn := e.parabolic(i, sign)
			if !(e.q[i-1] < qn && qn < e.q[i+1]) {
				qn = e.linear(i, sign)
			}
			e.q[i] = qn
			e.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic marker update.
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback update when the parabola overshoots a neighbour.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate, or NaN before any
// observation. With fewer than five observations it falls back to the
// exact small-sample quantile.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n < 5 {
		sorted := append([]float64(nil), e.init...)
		sort.Float64s(sorted)
		pos := e.p * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return sorted[lo]
		}
		frac := pos - float64(lo)
		return sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return e.q[2]
}
