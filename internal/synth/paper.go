// Package synth calibrates the botnet simulator to the paper's published
// statistics and generates the synthetic stand-in for its proprietary
// 7-month workload.
//
// Calibration sources, all from the paper:
//   - Table II: exact per-(family, protocol) attack counts (they sum to the
//     50,704 total).
//   - Table III: entity counts on both sides (9,026 victim IPs, 310,950
//     bot IPs, 674 botnets, ...).
//   - Table V: top-5 victim countries and country diversity per family.
//   - Table VI: intra-/inter-family collaboration counts.
//   - §III: interval mixture (simultaneous share, 6-7 min / 20-40 min /
//     2-3 h modes), duration law (median 1,766 s, mean 10,308 s, 80% < 4 h),
//     the 983-attack Dirtjumper burst on 2012-08-30.
//   - §IV: per-family geolocation dispersion (Pandora mean 566 km with
//     76.7% symmetric, Blackenergy 4,304 km with 89.5% symmetric).
//
// Every quantity scales down with Config.Scale so tests can run on small
// workloads while cmd/botreport regenerates the full-size dataset.
//
// Determinism is statically gated: the whole package sits inside the
// nodeterm and rngstream analyzer scopes (see DESIGN.md §7), so the only
// legal randomness here is the per-family seeded *rand.Rand streams the
// simulator threads through internal/botnet, whose sampling inner loops
// carry the //botscope:hotpath allocation contract.
package synth

import (
	"fmt"
	"math"

	"botscope/internal/botnet"
	"botscope/internal/dataset"
	"botscope/internal/geo"
)

// Config parameterizes workload generation.
type Config struct {
	// Seed drives all randomness. The same seed reproduces the workload
	// byte for byte.
	Seed int64
	// Scale multiplies every count; 1.0 is paper scale (50,704 attacks),
	// 0.05 is a fast test workload. Zero means 1.0.
	Scale float64
	// Workers bounds how many families are generated concurrently
	// (0 = all cores, 1 = sequential). Output is byte-identical for every
	// value; see botnet.Config.Workers.
	Workers int
}

// scaled multiplies n by the scale, keeping at least min when n > 0.
func scaled(n int, scale float64, min int) int {
	if n <= 0 {
		return 0
	}
	v := int(math.Round(float64(n) * scale))
	if v < min {
		v = min
	}
	return v
}

// paperIntervals builds a family's interval mixture. zeroShare is the
// simultaneous probability; meanTarget loosely steers the nonzero body so
// the generator's window-fitting rescale stays near 1.
func paperIntervals(zeroShare float64, minSec float64) botnet.IntervalModel {
	modes := []botnet.IntervalMode{
		{Weight: zeroShare, MedianSec: 0},
		// The three modes of Figure 4: 6-7 minutes, 20-40 minutes, 2-3 hours.
		{Weight: (1 - zeroShare) * 0.52, MedianSec: 390, Sigma: 0.25},
		{Weight: (1 - zeroShare) * 0.30, MedianSec: 1800, Sigma: 0.45},
		{Weight: (1 - zeroShare) * 0.15, MedianSec: 9000, Sigma: 0.40},
		// Heavy tail: the longest observed family gap was 59 days.
		{Weight: (1 - zeroShare) * 0.03, MedianSec: 90000, Sigma: 1.1},
	}
	return botnet.IntervalModel{Modes: modes, MinSec: minSec, MaxSec: 59 * 24 * 3600}
}

// Profiles returns the ten active-family profiles calibrated to the paper,
// scaled by scale (<= 0 means 1.0).
func Profiles(scale float64) []*botnet.Profile {
	if scale <= 0 {
		scale = 1
	}
	s := scale
	// Durations shared across families: lognormal with median 1,766 s and
	// sigma 1.9 gives mean ~10.7k s and 80% < ~15k s, matching §III-C.
	const (
		durMedian = 1766.0
		durSigma  = 1.9
		durMax    = 260000.0
	)
	return []*botnet.Profile{
		{
			Family:          dataset.Dirtjumper,
			ActiveStartFrac: 0, ActiveEndFrac: 1,
			Protocols: []botnet.ProtocolShare{
				{Category: dataset.CategoryHTTP, Count: scaled(34620, s, 40)},
			},
			Botnets: scaled(300, s, 6),
			TargetCountries: []botnet.CountryShare{
				{CC: "US", Weight: 9674}, {CC: "RU", Weight: 8391},
				{CC: "DE", Weight: 3750}, {CC: "UA", Weight: 3412},
				{CC: "NL", Weight: 1626},
			},
			TargetCountryCount: 71,
			TargetPoolSize:     scaled(7600, s, 25),
			TargetZipf:         1.0,
			DurationMedianSec:  durMedian, DurationSigma: durSigma, DurationMaxSec: durMax,
			Intervals: paperIntervals(0.48, 0),
			SourceCountries: []botnet.CountryShare{
				{CC: "RU", Weight: 30}, {CC: "UA", Weight: 15}, {CC: "US", Weight: 10},
				{CC: "DE", Weight: 8}, {CC: "RO", Weight: 5}, {CC: "TR", Weight: 5},
				{CC: "IN", Weight: 5}, {CC: "BR", Weight: 5}, {CC: "PL", Weight: 4},
				{CC: "KZ", Weight: 3},
			},
			BotPoolSize:     scaled(190000, s, 4000),
			MagnitudeMedian: 35, MagnitudeSigma: 0.85, MagnitudeMax: 300,
			NewCountryPerWeek:  0.6,
			SymmetricProb:      0.55,
			DispersionTargetKm: 1203,
			IntraCollab:        scaled(756, s, 4),
			ConsecutiveChains:  scaled(50, s, 2),
			ChainLengthMean:    4,
		},
		{
			Family:          dataset.Pandora,
			ActiveStartFrac: 0.10, ActiveEndFrac: 0.95,
			Protocols: []botnet.ProtocolShare{
				{Category: dataset.CategoryHTTP, Count: scaled(6906, s, 30)},
			},
			Botnets: scaled(120, s, 4),
			TargetCountries: []botnet.CountryShare{
				{CC: "RU", Weight: 1700}, {CC: "US", Weight: 1250},
				{CC: "DE", Weight: 800}, {CC: "UA", Weight: 500},
				{CC: "NL", Weight: 260},
			},
			TargetCountryCount: 43,
			TargetPoolSize:     scaled(1700, s, 15),
			TargetZipf:         1.0,
			DurationMedianSec:  2200, DurationSigma: durSigma, DurationMaxSec: durMax,
			Intervals: paperIntervals(0.35, 0),
			SourceCountries: []botnet.CountryShare{
				{CC: "RU", Weight: 40}, {CC: "UA", Weight: 20}, {CC: "BY", Weight: 10},
				{CC: "KZ", Weight: 6}, {CC: "DE", Weight: 4},
			},
			BotPoolSize:     scaled(45000, s, 2500),
			MagnitudeMedian: 30, MagnitudeSigma: 0.8, MagnitudeMax: 250,
			NewCountryPerWeek:  0.4,
			SymmetricProb:      0.767,
			DispersionTargetKm: 566,
			IntraCollab:        scaled(10, s, 1),
		},
		{
			Family:          dataset.Blackenergy,
			ActiveStartFrac: 0.05, ActiveEndFrac: 0.38, // active about a third of the window
			Protocols: []botnet.ProtocolShare{
				{Category: dataset.CategoryHTTP, Count: scaled(3048, s, 20)},
				{Category: dataset.CategoryTCP, Count: scaled(199, s, 4)},
				{Category: dataset.CategoryICMP, Count: scaled(147, s, 3)},
				{Category: dataset.CategoryUDP, Count: scaled(71, s, 2)},
				{Category: dataset.CategorySYN, Count: scaled(31, s, 1)},
			},
			Botnets: scaled(80, s, 3),
			TargetCountries: []botnet.CountryShare{
				{CC: "NL", Weight: 949}, {CC: "US", Weight: 820},
				{CC: "SG", Weight: 729}, {CC: "RU", Weight: 262},
				{CC: "DE", Weight: 219},
			},
			TargetCountryCount: 20,
			TargetPoolSize:     scaled(900, s, 12),
			TargetZipf:         1.0,
			DurationMedianSec:  durMedian, DurationSigma: durSigma, DurationMaxSec: durMax,
			Intervals: paperIntervals(0.40, 0),
			SourceCountries: []botnet.CountryShare{
				{CC: "RU", Weight: 15}, {CC: "US", Weight: 12}, {CC: "CN", Weight: 10},
				{CC: "IN", Weight: 10}, {CC: "BR", Weight: 8}, {CC: "DE", Weight: 6},
				{CC: "TR", Weight: 6}, {CC: "ID", Weight: 6}, {CC: "VN", Weight: 5},
				{CC: "EG", Weight: 4},
			},
			BotPoolSize:     scaled(30000, s, 2500),
			MagnitudeMedian: 40, MagnitudeSigma: 0.8, MagnitudeMax: 300,
			NewCountryPerWeek:  0.5,
			SymmetricProb:      0.895,
			DispersionTargetKm: 4304,
		},
		{
			Family:          dataset.Darkshell,
			ActiveStartFrac: 0, ActiveEndFrac: 0.8,
			Protocols: []botnet.ProtocolShare{
				{Category: dataset.CategoryUndetermined, Count: scaled(1530, s, 10)},
				{Category: dataset.CategoryHTTP, Count: scaled(999, s, 10)},
			},
			Botnets: scaled(60, s, 3),
			TargetCountries: []botnet.CountryShare{
				{CC: "CN", Weight: 1880}, {CC: "KR", Weight: 1004},
				{CC: "US", Weight: 694}, {CC: "HK", Weight: 385},
				{CC: "JP", Weight: 86},
			},
			TargetCountryCount: 13,
			TargetPoolSize:     scaled(600, s, 10),
			TargetZipf:         1.0,
			DurationMedianSec:  durMedian, DurationSigma: durSigma, DurationMaxSec: durMax,
			Intervals: paperIntervals(0.45, 0),
			SourceCountries: []botnet.CountryShare{
				{CC: "CN", Weight: 40}, {CC: "TW", Weight: 10}, {CC: "KR", Weight: 8},
				{CC: "HK", Weight: 6}, {CC: "US", Weight: 5},
			},
			BotPoolSize:     scaled(17000, s, 1500),
			MagnitudeMedian: 28, MagnitudeSigma: 0.8, MagnitudeMax: 200,
			NewCountryPerWeek:  0.3,
			SymmetricProb:      0.5,
			DispersionTargetKm: 900,
			IntraCollab:        scaled(253, s, 2),
			ConsecutiveChains:  scaled(30, s, 1),
			ChainLengthMean:    5,
		},
		{
			Family:          dataset.Colddeath,
			ActiveStartFrac: 0.2, ActiveEndFrac: 0.9,
			Protocols: []botnet.ProtocolShare{
				{Category: dataset.CategoryHTTP, Count: scaled(826, s, 12)},
			},
			Botnets: scaled(25, s, 2),
			TargetCountries: []botnet.CountryShare{
				{CC: "IN", Weight: 801}, {CC: "PK", Weight: 345},
				{CC: "BW", Weight: 125}, {CC: "TH", Weight: 117},
				{CC: "ID", Weight: 112},
			},
			TargetCountryCount: 16,
			TargetPoolSize:     scaled(250, s, 8),
			TargetZipf:         1.0,
			DurationMedianSec:  durMedian, DurationSigma: durSigma, DurationMaxSec: durMax,
			Intervals: paperIntervals(0.30, 0),
			SourceCountries: []botnet.CountryShare{
				{CC: "IN", Weight: 30}, {CC: "PK", Weight: 15}, {CC: "ID", Weight: 10},
				{CC: "TH", Weight: 8}, {CC: "BD", Weight: 6},
			},
			BotPoolSize:     scaled(6000, s, 900),
			MagnitudeMedian: 22, MagnitudeSigma: 0.75, MagnitudeMax: 150,
			NewCountryPerWeek:  0.3,
			SymmetricProb:      0.5,
			DispersionTargetKm: 356,
		},
		{
			Family:          dataset.Nitol,
			ActiveStartFrac: 0.3, ActiveEndFrac: 1,
			Protocols: []botnet.ProtocolShare{
				{Category: dataset.CategoryHTTP, Count: scaled(591, s, 8)},
				{Category: dataset.CategoryTCP, Count: scaled(345, s, 6)},
			},
			Botnets: scaled(25, s, 2),
			TargetCountries: []botnet.CountryShare{
				{CC: "CN", Weight: 778}, {CC: "US", Weight: 176},
				{CC: "CA", Weight: 15}, {CC: "GB", Weight: 10},
				{CC: "NL", Weight: 6},
			},
			TargetCountryCount: 12,
			TargetPoolSize:     scaled(200, s, 8),
			TargetZipf:         1.0,
			DurationMedianSec:  durMedian, DurationSigma: durSigma, DurationMaxSec: durMax,
			Intervals: paperIntervals(0.25, 0),
			SourceCountries: []botnet.CountryShare{
				{CC: "CN", Weight: 35}, {CC: "US", Weight: 8}, {CC: "RU", Weight: 5},
			},
			BotPoolSize:     scaled(6000, s, 900),
			MagnitudeMedian: 20, MagnitudeSigma: 0.75, MagnitudeMax: 150,
			NewCountryPerWeek:  0.2,
			SymmetricProb:      0.5,
			DispersionTargetKm: 1100,
			IntraCollab:        scaled(17, s, 1),
			ConsecutiveChains:  scaled(4, s, 1),
			ChainLengthMean:    4,
		},
		{
			Family:          dataset.Optima,
			ActiveStartFrac: 0, ActiveEndFrac: 0.7,
			Protocols: []botnet.ProtocolShare{
				{Category: dataset.CategoryHTTP, Count: scaled(567, s, 8)},
				{Category: dataset.CategoryUnknown, Count: scaled(126, s, 3)},
			},
			Botnets: scaled(20, s, 2),
			TargetCountries: []botnet.CountryShare{
				{CC: "RU", Weight: 171}, {CC: "DE", Weight: 155},
				{CC: "US", Weight: 123}, {CC: "UA", Weight: 9},
				{CC: "KG", Weight: 7},
			},
			TargetCountryCount: 12,
			TargetPoolSize:     scaled(150, s, 8),
			TargetZipf:         1.0,
			DurationMedianSec:  durMedian, DurationSigma: durSigma, DurationMaxSec: durMax,
			// Optima launches nothing within 60 s of its previous attack
			// (Fig 5) — no simultaneous mode, 60 s floor.
			Intervals: paperIntervals(0, 60),
			SourceCountries: []botnet.CountryShare{
				{CC: "RU", Weight: 20}, {CC: "UA", Weight: 12}, {CC: "DE", Weight: 8},
				{CC: "US", Weight: 8}, {CC: "KZ", Weight: 5},
			},
			BotPoolSize:     scaled(5000, s, 900),
			MagnitudeMedian: 25, MagnitudeSigma: 0.8, MagnitudeMax: 150,
			NewCountryPerWeek:  0.2,
			SymmetricProb:      0.30,
			DispersionTargetKm: 3526,
			IntraCollab:        1,
		},
		{
			Family:          dataset.YZF,
			ActiveStartFrac: 0.4, ActiveEndFrac: 0.9,
			Protocols: []botnet.ProtocolShare{
				{Category: dataset.CategoryUDP, Count: scaled(187, s, 4)},
				{Category: dataset.CategoryTCP, Count: scaled(182, s, 4)},
				{Category: dataset.CategoryHTTP, Count: scaled(177, s, 4)},
			},
			Botnets: scaled(20, s, 2),
			TargetCountries: []botnet.CountryShare{
				{CC: "RU", Weight: 120}, {CC: "UA", Weight: 105},
				{CC: "US", Weight: 65}, {CC: "DE", Weight: 39},
				{CC: "NL", Weight: 19},
			},
			TargetCountryCount: 11,
			TargetPoolSize:     scaled(120, s, 6),
			TargetZipf:         1.0,
			DurationMedianSec:  durMedian, DurationSigma: durSigma, DurationMaxSec: durMax,
			Intervals: paperIntervals(0.30, 0),
			SourceCountries: []botnet.CountryShare{
				{CC: "RU", Weight: 25}, {CC: "UA", Weight: 15}, {CC: "DE", Weight: 5},
			},
			BotPoolSize:     scaled(4000, s, 800),
			MagnitudeMedian: 20, MagnitudeSigma: 0.75, MagnitudeMax: 120,
			NewCountryPerWeek:  0.2,
			SymmetricProb:      0.5,
			DispersionTargetKm: 800,
			IntraCollab:        scaled(66, s, 1),
		},
		{
			Family:          dataset.Ddoser,
			ActiveStartFrac: 0, ActiveEndFrac: 0.15,
			Protocols: []botnet.ProtocolShare{
				{Category: dataset.CategoryUDP, Count: scaled(126, s, 20)},
			},
			Botnets: scaled(14, s, 2),
			TargetCountries: []botnet.CountryShare{
				{CC: "MX", Weight: 452}, {CC: "VE", Weight: 191},
				{CC: "UY", Weight: 83}, {CC: "CL", Weight: 66},
				{CC: "US", Weight: 48},
			},
			TargetCountryCount: 19,
			TargetPoolSize:     scaled(100, s, 6),
			TargetZipf:         1.0,
			DurationMedianSec:  900, DurationSigma: 1.4, DurationMaxSec: durMax,
			Intervals: paperIntervals(0.30, 0),
			SourceCountries: []botnet.CountryShare{
				{CC: "MX", Weight: 20}, {CC: "VE", Weight: 10}, {CC: "CO", Weight: 8},
				{CC: "AR", Weight: 6}, {CC: "US", Weight: 5},
			},
			BotPoolSize:     scaled(6000, s, 900),
			MagnitudeMedian: 18, MagnitudeSigma: 0.7, MagnitudeMax: 100,
			NewCountryPerWeek:  0.2,
			SymmetricProb:      0.5,
			DispersionTargetKm: 1000,
			IntraCollab:        scaled(20, s, 1), // capped: Table VI's 134 exceeds the family's attack budget
			ConsecutiveChains:  scaled(5, s, 2),
			ChainLengthMean:    8,
			RecordChainLength:  22, // the record chain: 22 attacks in 18 minutes
		},
		{
			Family:          dataset.Aldibot,
			ActiveStartFrac: 0.5, ActiveEndFrac: 0.8,
			Protocols: []botnet.ProtocolShare{
				{Category: dataset.CategoryUDP, Count: scaled(26, s, 10)},
			},
			Botnets: scaled(10, s, 2),
			TargetCountries: []botnet.CountryShare{
				{CC: "US", Weight: 32}, {CC: "FR", Weight: 11},
				{CC: "ES", Weight: 8}, {CC: "VE", Weight: 8},
				{CC: "DE", Weight: 4},
			},
			TargetCountryCount: 14,
			TargetPoolSize:     scaled(20, s, 5),
			TargetZipf:         1.0,
			DurationMedianSec:  durMedian, DurationSigma: durSigma, DurationMaxSec: durMax,
			// Aldibot, like Optima, never strikes twice within 60 s (Fig 5).
			Intervals: paperIntervals(0, 60),
			SourceCountries: []botnet.CountryShare{
				{CC: "US", Weight: 10}, {CC: "DE", Weight: 8}, {CC: "FR", Weight: 6},
				{CC: "ES", Weight: 5}, {CC: "BR", Weight: 4},
			},
			BotPoolSize:     scaled(1500, s, 500),
			MagnitudeMedian: 15, MagnitudeSigma: 0.7, MagnitudeMax: 80,
			NewCountryPerWeek:  0.1,
			SymmetricProb:      0.5,
			DispersionTargetKm: 1500,
		},
	}
}

// InterCollabs returns the cross-family coordination calibrated to
// Table VI (strict collaborations) and §III-B (concurrent-only pairs).
func InterCollabs(scale float64) []botnet.InterCollab {
	if scale <= 0 {
		scale = 1
	}
	return []botnet.InterCollab{
		{Initiator: dataset.Dirtjumper, Partner: dataset.Pandora, Pairs: scaled(118, scale, 2), MatchDuration: true, StartFrac: 0.15, EndFrac: 0.70},
		{Initiator: dataset.Dirtjumper, Partner: dataset.Blackenergy, Pairs: scaled(1, scale, 1), MatchDuration: true, StartFrac: 0.08, EndFrac: 0.35},
		{Initiator: dataset.Dirtjumper, Partner: dataset.Colddeath, Pairs: scaled(1, scale, 1), MatchDuration: true, StartFrac: 0.25, EndFrac: 0.85},
		{Initiator: dataset.Dirtjumper, Partner: dataset.Optima, Pairs: scaled(1, scale, 1), MatchDuration: true, StartFrac: 0.05, EndFrac: 0.65},
		// Concurrent but not duration-matched: §III-B's 391 observed
		// Dirtjumper+Blackenergy simultaneous launches.
		{Initiator: dataset.Dirtjumper, Partner: dataset.Blackenergy, Pairs: scaled(390, scale, 2), MatchDuration: false, StartFrac: 0.08, EndFrac: 0.35},
	}
}

// Burst returns the Dirtjumper burst of 2012-08-30 (day offset 1): the
// paper's 983-attack peak day against one Russian subnet.
func Burst(scale float64) *botnet.BurstSpec {
	if scale <= 0 {
		scale = 1
	}
	return &botnet.BurstSpec{
		DayOffset: 1,
		Count:     scaled(720, scale, 10),
		TargetCC:  "RU",
		Targets:   12,
	}
}

// Generate builds the full synthetic workload: geo database, simulator,
// burst, and inter-family coordination.
func Generate(cfg Config) (*botnet.Output, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	db := geo.NewDB(geo.DBConfig{Seed: cfg.Seed})
	sim, err := botnet.New(botnet.Config{
		Seed:         cfg.Seed,
		Window:       botnet.PaperWindow(),
		InterCollabs: InterCollabs(cfg.Scale),
		Workers:      cfg.Workers,
	}, db, Profiles(cfg.Scale))
	if err != nil {
		return nil, fmt.Errorf("synth: build simulator: %w", err)
	}
	sim.SetBurst(dataset.Dirtjumper, Burst(cfg.Scale))
	out, err := sim.Run()
	if err != nil {
		return nil, fmt.Errorf("synth: run simulation: %w", err)
	}
	return out, nil
}

// GenerateStore is Generate followed by store construction.
func GenerateStore(cfg Config) (*dataset.Store, error) {
	out, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	store, err := out.Store()
	if err != nil {
		return nil, fmt.Errorf("synth: index workload: %w", err)
	}
	return store, nil
}
