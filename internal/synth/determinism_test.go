package synth

import (
	"bytes"
	"fmt"
	"testing"

	"botscope/internal/dataset"
)

// TestGenerateDeterministic is the regression gate behind the nodeterm
// analyzer: two independent runs with the same seed must produce
// byte-identical encoded datasets. Any stray time.Now, global rand call, or
// map-iteration-ordered output in the synthesis path shows up here as a
// byte diff.
func TestGenerateDeterministic(t *testing.T) {
	encode := func() (csvOut, jsonlOut []byte) {
		t.Helper()
		store, err := GenerateStore(Config{Seed: 42, Scale: 0.05})
		if err != nil {
			t.Fatalf("GenerateStore: %v", err)
		}
		attacks := store.Attacks()
		var csvBuf, jsonlBuf bytes.Buffer
		if err := dataset.WriteCSV(&csvBuf, attacks); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		if err := dataset.WriteJSONL(&jsonlBuf, attacks); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return csvBuf.Bytes(), jsonlBuf.Bytes()
	}

	csv1, jsonl1 := encode()
	csv2, jsonl2 := encode()

	if !bytes.Equal(csv1, csv2) {
		t.Errorf("two same-seed runs produced different CSV output (%d vs %d bytes)", len(csv1), len(csv2))
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Errorf("two same-seed runs produced different JSONL output (%d vs %d bytes)", len(jsonl1), len(jsonl2))
	}
	if len(csv1) == 0 || len(jsonl1) == 0 {
		t.Fatal("encoded outputs are empty; determinism check is vacuous")
	}

	// A different seed must actually change the output, otherwise the
	// equality assertions above prove nothing about the generator.
	store, err := GenerateStore(Config{Seed: 43, Scale: 0.05})
	if err != nil {
		t.Fatalf("GenerateStore(seed 43): %v", err)
	}
	var other bytes.Buffer
	if err := dataset.WriteCSV(&other, store.Attacks()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if bytes.Equal(csv1, other.Bytes()) {
		t.Error("different seeds produced identical CSV output; generator ignores the seed")
	}
}

// TestGenerateParallelMatchesSequential pins the tentpole invariant of the
// parallel generator: family shards are seeded independently, ID ranges
// are precomputed, and the merge happens in profile order — so any worker
// count must reproduce the sequential output byte for byte, across all
// three record kinds (attacks, botnets, bots).
func TestGenerateParallelMatchesSequential(t *testing.T) {
	encode := func(workers int) []byte {
		t.Helper()
		out, err := Generate(Config{Seed: 7, Scale: 0.05, Workers: workers})
		if err != nil {
			t.Fatalf("Generate(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := dataset.WriteCSV(&buf, out.Attacks); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		for _, b := range out.Botnets {
			fmt.Fprintf(&buf, "%d,%s,%s,%s\n", b.ID, b.Family, b.Hash, b.ControllerIP)
		}
		for _, b := range out.Bots {
			fmt.Fprintf(&buf, "%s,%d,%s,%s\n", b.IP, b.ASN, b.CountryCode, b.City)
		}
		return buf.Bytes()
	}

	seq := encode(1)
	if len(seq) == 0 {
		t.Fatal("sequential generation produced no output; comparison is vacuous")
	}
	for _, workers := range []int{0, 2, 8} {
		if got := encode(workers); !bytes.Equal(seq, got) {
			t.Errorf("workers=%d output differs from sequential (%d vs %d bytes)", workers, len(got), len(seq))
		}
	}
}
