package synth

import (
	"bytes"
	"testing"

	"botscope/internal/dataset"
)

// TestGenerateDeterministic is the regression gate behind the nodeterm
// analyzer: two independent runs with the same seed must produce
// byte-identical encoded datasets. Any stray time.Now, global rand call, or
// map-iteration-ordered output in the synthesis path shows up here as a
// byte diff.
func TestGenerateDeterministic(t *testing.T) {
	encode := func() (csvOut, jsonlOut []byte) {
		t.Helper()
		store, err := GenerateStore(Config{Seed: 42, Scale: 0.05})
		if err != nil {
			t.Fatalf("GenerateStore: %v", err)
		}
		attacks := store.Attacks()
		var csvBuf, jsonlBuf bytes.Buffer
		if err := dataset.WriteCSV(&csvBuf, attacks); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		if err := dataset.WriteJSONL(&jsonlBuf, attacks); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return csvBuf.Bytes(), jsonlBuf.Bytes()
	}

	csv1, jsonl1 := encode()
	csv2, jsonl2 := encode()

	if !bytes.Equal(csv1, csv2) {
		t.Errorf("two same-seed runs produced different CSV output (%d vs %d bytes)", len(csv1), len(csv2))
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Errorf("two same-seed runs produced different JSONL output (%d vs %d bytes)", len(jsonl1), len(jsonl2))
	}
	if len(csv1) == 0 || len(jsonl1) == 0 {
		t.Fatal("encoded outputs are empty; determinism check is vacuous")
	}

	// A different seed must actually change the output, otherwise the
	// equality assertions above prove nothing about the generator.
	store, err := GenerateStore(Config{Seed: 43, Scale: 0.05})
	if err != nil {
		t.Fatalf("GenerateStore(seed 43): %v", err)
	}
	var other bytes.Buffer
	if err := dataset.WriteCSV(&other, store.Attacks()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if bytes.Equal(csv1, other.Bytes()) {
		t.Error("different seeds produced identical CSV output; generator ignores the seed")
	}
}
