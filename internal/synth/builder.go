package synth

import (
	"fmt"
	"time"

	"botscope/internal/botnet"
	"botscope/internal/dataset"
	"botscope/internal/geo"
)

// ScenarioBuilder composes custom workloads: paper families, modified
// families, or entirely new ones (the paper's §II-C discussion argues its
// findings generalize to newer botnets such as Mirai — this builder lets a
// user test such what-if scenarios).
//
// The zero value is not usable; start with NewScenario.
type ScenarioBuilder struct {
	seed     int64
	window   botnet.Window
	workers  int
	profiles []*botnet.Profile
	collabs  []botnet.InterCollab
	bursts   map[dataset.Family]*botnet.BurstSpec
	err      error
}

// NewScenario starts a builder with the paper's observation window.
func NewScenario(seed int64) *ScenarioBuilder {
	return &ScenarioBuilder{
		seed:   seed,
		window: botnet.PaperWindow(),
		bursts: make(map[dataset.Family]*botnet.BurstSpec),
	}
}

// WithWindow overrides the observation window.
func (b *ScenarioBuilder) WithWindow(start, end time.Time) *ScenarioBuilder {
	if b.err != nil {
		return b
	}
	if !end.After(start) {
		b.err = fmt.Errorf("synth: window end %v not after start %v", end, start)
		return b
	}
	b.window = botnet.Window{Start: start, End: end}
	return b
}

// WithWorkers bounds how many families generate concurrently (0 = all
// cores, 1 = sequential). The built workload is identical either way.
func (b *ScenarioBuilder) WithWorkers(n int) *ScenarioBuilder {
	if b.err != nil {
		return b
	}
	b.workers = n
	return b
}

// AddProfile appends a custom family profile.
func (b *ScenarioBuilder) AddProfile(p *botnet.Profile) *ScenarioBuilder {
	if b.err != nil {
		return b
	}
	if err := p.Validate(); err != nil {
		b.err = err
		return b
	}
	b.profiles = append(b.profiles, p)
	return b
}

// AddPaperFamily appends one of the calibrated paper families at the given
// scale.
func (b *ScenarioBuilder) AddPaperFamily(f dataset.Family, scale float64) *ScenarioBuilder {
	if b.err != nil {
		return b
	}
	for _, p := range Profiles(scale) {
		if p.Family == f {
			b.profiles = append(b.profiles, p)
			return b
		}
	}
	b.err = fmt.Errorf("synth: %q is not a calibrated paper family", f)
	return b
}

// AddCollaboration stages cross-family coordination between two added
// families.
func (b *ScenarioBuilder) AddCollaboration(ic botnet.InterCollab) *ScenarioBuilder {
	if b.err != nil {
		return b
	}
	b.collabs = append(b.collabs, ic)
	return b
}

// AddBurst attaches a one-day storm to a family.
func (b *ScenarioBuilder) AddBurst(f dataset.Family, spec *botnet.BurstSpec) *ScenarioBuilder {
	if b.err != nil {
		return b
	}
	b.bursts[f] = spec
	return b
}

// Build runs the simulation and indexes the workload.
func (b *ScenarioBuilder) Build() (*dataset.Store, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.profiles) == 0 {
		return nil, fmt.Errorf("synth: scenario has no families")
	}
	db := geo.NewDB(geo.DBConfig{Seed: b.seed})
	sim, err := botnet.New(botnet.Config{
		Seed:         b.seed,
		Window:       b.window,
		InterCollabs: b.collabs,
		Workers:      b.workers,
	}, db, b.profiles)
	if err != nil {
		return nil, fmt.Errorf("synth: build scenario: %w", err)
	}
	for f, spec := range b.bursts {
		sim.SetBurst(f, spec)
	}
	out, err := sim.Run()
	if err != nil {
		return nil, fmt.Errorf("synth: run scenario: %w", err)
	}
	store, err := out.Store()
	if err != nil {
		return nil, fmt.Errorf("synth: index scenario: %w", err)
	}
	return store, nil
}

// MiraiLikeProfile sketches an IoT botnet in the mold of Mirai (2016):
// enormous bot populations recruited from embedded devices across many
// countries, very large per-attack magnitudes, short high-rate strikes,
// and volumetric transports — the §II-C discussion's test case for whether
// the paper's findings generalize beyond 2013-era families.
//
// attacks scales the family's activity; a few hundred suffices for
// shape analyses.
func MiraiLikeProfile(attacks int) *botnet.Profile {
	if attacks < 20 {
		attacks = 20
	}
	return &botnet.Profile{
		Family:          dataset.Family("mirailike"),
		ActiveStartFrac: 0.5, ActiveEndFrac: 1, // bursts onto the scene late
		Protocols: []botnet.ProtocolShare{
			// Mirai floods are volumetric (UDP/SYN/ACK) with some HTTP.
			{Category: dataset.CategoryUDP, Count: attacks * 5 / 10},
			{Category: dataset.CategorySYN, Count: attacks * 3 / 10},
			{Category: dataset.CategoryHTTP, Count: attacks - attacks*5/10 - attacks*3/10},
		},
		Botnets: 6,
		TargetCountries: []botnet.CountryShare{
			// The Dyn/Krebs-era victims: US infrastructure first.
			{CC: "US", Weight: 60}, {CC: "FR", Weight: 15},
			{CC: "DE", Weight: 10}, {CC: "GB", Weight: 8},
			{CC: "NL", Weight: 7},
		},
		TargetCountryCount: 12,
		TargetPoolSize:     maxInt(attacks/4, 8),
		TargetZipf:         1.3, // strongly concentrated on a few marquee victims
		// Short, violent strikes.
		DurationMedianSec: 600, DurationSigma: 1.2, DurationMaxSec: 86400,
		Intervals: botnet.IntervalModel{
			Modes: []botnet.IntervalMode{
				{Weight: 0.35, MedianSec: 0},
				{Weight: 0.45, MedianSec: 900, Sigma: 0.6},
				{Weight: 0.20, MedianSec: 14400, Sigma: 0.8},
			},
			MaxSec: 30 * 24 * 3600,
		},
		// IoT devices concentrate where cheap cameras/DVRs do.
		SourceCountries: []botnet.CountryShare{
			{CC: "BR", Weight: 16}, {CC: "VN", Weight: 14}, {CC: "CN", Weight: 12},
			{CC: "TR", Weight: 9}, {CC: "KR", Weight: 8}, {CC: "IN", Weight: 8},
			{CC: "RU", Weight: 6}, {CC: "US", Weight: 5}, {CC: "MX", Weight: 5},
			{CC: "ID", Weight: 5},
		},
		BotPoolSize:     maxInt(attacks*120, 3000), // vast device populations
		MagnitudeMedian: 120, MagnitudeSigma: 0.7, MagnitudeMax: 280,
		NewCountryPerWeek: 1.0, // rapid global spread
		SymmetricProb:     0.3,
		// Sources span continents: dispersion far beyond the 2013 families.
		DispersionTargetKm: 6000,
		IntraCollab:        maxInt(attacks/25, 1),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
