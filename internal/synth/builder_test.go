package synth

import (
	"testing"
	"time"

	"botscope/internal/botnet"
	"botscope/internal/dataset"
)

func TestScenarioBuilderPaperFamilies(t *testing.T) {
	store, err := NewScenario(3).
		AddPaperFamily(dataset.Dirtjumper, 0.01).
		AddPaperFamily(dataset.Pandora, 0.01).
		AddCollaboration(botnet.InterCollab{
			Initiator: dataset.Dirtjumper, Partner: dataset.Pandora,
			Pairs: 2, MatchDuration: true,
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(store.Families()); got != 2 {
		t.Errorf("families = %d, want 2", got)
	}
	if store.NumAttacks() < 200 {
		t.Errorf("attacks = %d, want hundreds", store.NumAttacks())
	}
}

func TestScenarioBuilderErrors(t *testing.T) {
	if _, err := NewScenario(1).Build(); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, err := NewScenario(1).AddPaperFamily("mirai", 0.1).Build(); err == nil {
		t.Error("unknown paper family accepted")
	}
	bad := &botnet.Profile{Family: dataset.YZF} // fails validation
	if _, err := NewScenario(1).AddProfile(bad).Build(); err == nil {
		t.Error("invalid profile accepted")
	}
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := NewScenario(1).WithWindow(start, start).Build(); err == nil {
		t.Error("empty window accepted")
	}
	// The first error wins and is sticky across later calls.
	b := NewScenario(1).AddPaperFamily("mirai", 0.1).AddPaperFamily(dataset.Pandora, 0.1)
	if _, err := b.Build(); err == nil {
		t.Error("sticky error lost")
	}
}

func TestScenarioBuilderCustomWindow(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 2, 0)
	store, err := NewScenario(4).
		WithWindow(start, end).
		AddPaperFamily(dataset.Darkshell, 0.02).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	first, _, ok := store.TimeBounds()
	if !ok {
		t.Fatal("empty store")
	}
	if first.Before(start) {
		t.Errorf("first attack %v before custom window start %v", first, start)
	}
}

func TestMiraiLikeScenario(t *testing.T) {
	profile := MiraiLikeProfile(300)
	if err := profile.Validate(); err != nil {
		t.Fatal(err)
	}
	store, err := NewScenario(7).
		AddProfile(profile).
		AddPaperFamily(dataset.Dirtjumper, 0.01).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	mirai := store.ByFamily("mirailike")
	if len(mirai) != 300 {
		t.Fatalf("mirailike attacks = %d, want 300", len(mirai))
	}
	// The IoT profile's signature: much larger magnitudes than the 2013
	// families.
	var miraiMag, djMag float64
	for _, a := range mirai {
		miraiMag += float64(a.Magnitude())
	}
	miraiMag /= float64(len(mirai))
	dj := store.ByFamily(dataset.Dirtjumper)
	for _, a := range dj {
		djMag += float64(a.Magnitude())
	}
	djMag /= float64(len(dj))
	if miraiMag < 2*djMag {
		t.Errorf("mirailike mean magnitude %v not well above dirtjumper %v", miraiMag, djMag)
	}
	// Volumetric transports dominate.
	udpSyn := 0
	for _, a := range mirai {
		if a.Category == dataset.CategoryUDP || a.Category == dataset.CategorySYN {
			udpSyn++
		}
	}
	if frac := float64(udpSyn) / float64(len(mirai)); frac < 0.7 {
		t.Errorf("volumetric share = %v, want ~0.8", frac)
	}
	// US is the top victim country.
	counts := make(map[string]int)
	for _, a := range mirai {
		counts[a.TargetCountry]++
	}
	for cc, n := range counts {
		if cc != "US" && n > counts["US"] {
			t.Errorf("top victim %s (%d) beats US (%d)", cc, n, counts["US"])
		}
	}
}

func TestMiraiLikeMinimumAttacks(t *testing.T) {
	p := MiraiLikeProfile(1)
	if p.TotalAttacks() < 20 {
		t.Errorf("total attacks = %d, want floor of 20", p.TotalAttacks())
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}
