package synth

import (
	"math"
	"sort"
	"testing"
	"time"

	"botscope/internal/botnet"
	"botscope/internal/dataset"
)

// genSmall produces a scaled-down workload shared across tests.
func genSmall(t *testing.T) *dataset.Store {
	t.Helper()
	store, err := GenerateStore(Config{Seed: 42, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestProfilesValid(t *testing.T) {
	for _, scale := range []float64{1, 0.1, 0.02} {
		for _, p := range Profiles(scale) {
			if err := p.Validate(); err != nil {
				t.Errorf("scale %v: %v", scale, err)
			}
		}
	}
}

func TestProfilesCoverActiveFamilies(t *testing.T) {
	seen := make(map[dataset.Family]bool)
	for _, p := range Profiles(1) {
		seen[p.Family] = true
	}
	for _, f := range dataset.ActiveFamilies {
		if !seen[f] {
			t.Errorf("family %s has no profile", f)
		}
	}
	if len(seen) != 10 {
		t.Errorf("profiles cover %d families, want 10", len(seen))
	}
}

func TestPaperScaleCalibration(t *testing.T) {
	profiles := Profiles(1)
	var totalAttacks, totalBotnets, totalTargets, totalBots int
	for _, p := range profiles {
		totalAttacks += p.TotalAttacks()
		totalBotnets += p.Botnets
		totalTargets += p.TargetPoolSize
		totalBots += p.BotPoolSize
	}
	// Table II sums to exactly 50,704 attacks.
	if totalAttacks != 50704 {
		t.Errorf("total attacks = %d, want 50704 (Table II sum)", totalAttacks)
	}
	// Table III: 674 botnets.
	if totalBotnets != 674 {
		t.Errorf("total botnets = %d, want 674 (Table III)", totalBotnets)
	}
	// Table III: 9,026 target IPs. Pools are deliberately ~18% larger than
	// the target because Zipf reuse leaves part of each pool unhit; the
	// distinct-victim count of a generated workload lands near 9,026.
	if totalTargets < 9026 || totalTargets > 9026*13/10 {
		t.Errorf("total target pool = %d, want 9026..%d", totalTargets, 9026*13/10)
	}
	// Table III: 310,950 bot IPs within 5%.
	if math.Abs(float64(totalBots-310950)) > 310950*0.05 {
		t.Errorf("total bot pool = %d, want about 310950", totalBots)
	}
}

func TestPaperProtocolTable(t *testing.T) {
	// Spot-check Table II calibration values at scale 1.
	byFamily := make(map[dataset.Family]map[dataset.Category]int)
	for _, p := range Profiles(1) {
		m := make(map[dataset.Category]int)
		for _, ps := range p.Protocols {
			m[ps.Category] += ps.Count
		}
		byFamily[p.Family] = m
	}
	tests := []struct {
		family dataset.Family
		cat    dataset.Category
		want   int
	}{
		{family: dataset.Dirtjumper, cat: dataset.CategoryHTTP, want: 34620},
		{family: dataset.Pandora, cat: dataset.CategoryHTTP, want: 6906},
		{family: dataset.Blackenergy, cat: dataset.CategoryHTTP, want: 3048},
		{family: dataset.Blackenergy, cat: dataset.CategorySYN, want: 31},
		{family: dataset.Darkshell, cat: dataset.CategoryUndetermined, want: 1530},
		{family: dataset.Nitol, cat: dataset.CategoryTCP, want: 345},
		{family: dataset.Optima, cat: dataset.CategoryUnknown, want: 126},
		{family: dataset.YZF, cat: dataset.CategoryUDP, want: 187},
		{family: dataset.Aldibot, cat: dataset.CategoryUDP, want: 26},
		{family: dataset.Ddoser, cat: dataset.CategoryUDP, want: 126},
	}
	for _, tt := range tests {
		if got := byFamily[tt.family][tt.cat]; got != tt.want {
			t.Errorf("%s/%s = %d, want %d", tt.family, tt.cat, got, tt.want)
		}
	}
}

func TestGenerateSmallWorkload(t *testing.T) {
	store := genSmall(t)
	if store.NumAttacks() < 800 {
		t.Errorf("attacks = %d, want roughly 2%% of 50704", store.NumAttacks())
	}
	sum := store.Summary()
	if sum.TrafficTypes != 7 {
		t.Errorf("traffic types = %d, want 7", sum.TrafficTypes)
	}
	if sum.TargetCountries < 20 {
		t.Errorf("target countries = %d, want dozens", sum.TargetCountries)
	}
	if sum.SourceCountries < 15 {
		t.Errorf("source countries = %d, want many", sum.SourceCountries)
	}
	if sum.BotIPs == 0 || sum.TargetIPs == 0 {
		t.Errorf("empty entity counts: %+v", sum)
	}
	// All ten active families present.
	if got := len(store.Families()); got != 10 {
		t.Errorf("families = %d, want 10", got)
	}
}

func TestGenerateWindowRespected(t *testing.T) {
	store := genSmall(t)
	w := botnet.PaperWindow()
	first, last, ok := store.TimeBounds()
	if !ok {
		t.Fatal("empty store")
	}
	if first.Before(w.Start) {
		t.Errorf("first attack %v before window start %v", first, w.Start)
	}
	// Attacks may run past the end (durations), but not absurdly far.
	if last.After(w.End.Add(7 * 24 * time.Hour)) {
		t.Errorf("last activity %v way past window end %v", last, w.End)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	s1, err := GenerateStore(Config{Seed: 7, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := GenerateStore(Config{Seed: 7, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if s1.NumAttacks() != s2.NumAttacks() {
		t.Fatalf("attack counts differ: %d vs %d", s1.NumAttacks(), s2.NumAttacks())
	}
	a1, a2 := s1.Attacks(), s2.Attacks()
	for i := range a1 {
		if a1[i].ID != a2[i].ID || a1[i].TargetIP != a2[i].TargetIP || !a1[i].Start.Equal(a2[i].Start) {
			t.Fatalf("attack %d differs between identical configs", i)
		}
	}
}

func TestGenerateDirtjumperDominates(t *testing.T) {
	store := genSmall(t)
	dj := len(store.ByFamily(dataset.Dirtjumper))
	if frac := float64(dj) / float64(store.NumAttacks()); frac < 0.5 {
		t.Errorf("dirtjumper share = %v, want > 0.5 (paper: 68%%)", frac)
	}
}

func TestGenerateHTTPDominates(t *testing.T) {
	store := genSmall(t)
	counts := make(map[dataset.Category]int)
	for _, a := range store.Attacks() {
		counts[a.Category]++
	}
	if counts[dataset.CategoryHTTP] <= counts[dataset.CategoryUDP]+counts[dataset.CategoryTCP] {
		t.Errorf("HTTP = %d not dominant over TCP %d + UDP %d (Fig 1)",
			counts[dataset.CategoryHTTP], counts[dataset.CategoryTCP], counts[dataset.CategoryUDP])
	}
	// Connection-oriented transports carry the majority of attacks.
	oriented := 0
	for c, n := range counts {
		if c.ConnectionOriented() {
			oriented += n
		}
	}
	if frac := float64(oriented) / float64(store.NumAttacks()); frac < 0.6 {
		t.Errorf("connection-oriented share = %v, want > 0.6", frac)
	}
}

func TestGenerateDurationShape(t *testing.T) {
	store := genSmall(t)
	var durs []float64
	for _, a := range store.Attacks() {
		durs = append(durs, a.Duration().Seconds())
	}
	// §III-C: median ~1,766 s, mean ~10,308 s, 80% under ~13,882 s. Bands
	// are generous — this is a scaled sample.
	var sum float64
	for _, d := range durs {
		sum += d
	}
	mean := sum / float64(len(durs))
	if mean < 4000 || mean > 25000 {
		t.Errorf("duration mean = %v s, want order 1e4 (paper: 10308)", mean)
	}
	below4h := 0
	for _, d := range durs {
		if d < 4*3600 {
			below4h++
		}
	}
	if frac := float64(below4h) / float64(len(durs)); frac < 0.65 || frac > 0.95 {
		t.Errorf("fraction under 4h = %v, want about 0.8 (Fig 7)", frac)
	}
}

func TestGenerateBurstDay(t *testing.T) {
	store := genSmall(t)
	w := botnet.PaperWindow()
	daily := make(map[int]int)
	for _, a := range store.Attacks() {
		daily[int(a.Start.Sub(w.Start).Hours()/24)]++
	}
	// At scale 0.02 the burst is ~16 attacks; it must stand well above the
	// typical day even if random clustering elsewhere can exceed it. (At
	// scale 1 the burst day is the global maximum; cmd/botreport shows it.)
	var counts []int
	for _, c := range daily {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	median := counts[len(counts)/2]
	if daily[1] < 10 || daily[1] < 5*median/2 {
		t.Errorf("burst day count = %d, want >= 10 and >= 2.5x median day %d", daily[1], median)
	}
}

func TestInterCollabsReferenceProfiles(t *testing.T) {
	fams := make(map[dataset.Family]bool)
	for _, p := range Profiles(1) {
		fams[p.Family] = true
	}
	for _, ic := range InterCollabs(1) {
		if !fams[ic.Initiator] || !fams[ic.Partner] {
			t.Errorf("inter-collab %s/%s references missing profile", ic.Initiator, ic.Partner)
		}
	}
}

func TestScaledHelper(t *testing.T) {
	tests := []struct {
		n     int
		scale float64
		min   int
		want  int
	}{
		{n: 1000, scale: 0.5, min: 1, want: 500},
		{n: 10, scale: 0.01, min: 3, want: 3},
		{n: 0, scale: 0.5, min: 3, want: 0},
		{n: 7, scale: 1, min: 1, want: 7},
	}
	for _, tt := range tests {
		if got := scaled(tt.n, tt.scale, tt.min); got != tt.want {
			t.Errorf("scaled(%d, %v, %d) = %d, want %d", tt.n, tt.scale, tt.min, got, tt.want)
		}
	}
}
