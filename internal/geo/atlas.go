package geo

import (
	"math"
	"sort"
)

// Country describes one country in the atlas: ISO 3166-1 alpha-2 code,
// display name, approximate centroid, and a relative weight used by the
// synthetic GeoIP database when placing bot populations (roughly tracking
// internet-host populations of the 2012-2013 era the paper covers).
type Country struct {
	Code     string
	Name     string
	Centroid LatLon
	Weight   float64
	Cities   []City
}

// City is a populated place inside a country.
type City struct {
	Name string
	Loc  LatLon
}

// atlas is the built-in coordinate table. Coordinates are approximate
// centroids / major-city locations, sufficient for km-scale geospatial
// statistics. The set intentionally covers every country named in the
// paper's Table V plus a broad backdrop so that source populations can
// span the paper's 186 countries when scaled up.
var atlas = []Country{
	{Code: "US", Name: "United States", Centroid: LatLon{39.8, -98.6}, Weight: 100, Cities: []City{
		{Name: "New York", Loc: LatLon{40.71, -74.01}},
		{Name: "Los Angeles", Loc: LatLon{34.05, -118.24}},
		{Name: "Chicago", Loc: LatLon{41.88, -87.63}},
		{Name: "Dallas", Loc: LatLon{32.78, -96.80}},
		{Name: "Ashburn", Loc: LatLon{39.04, -77.49}},
		{Name: "Seattle", Loc: LatLon{47.61, -122.33}},
		{Name: "Miami", Loc: LatLon{25.76, -80.19}},
		{Name: "Atlanta", Loc: LatLon{33.75, -84.39}},
	}},
	{Code: "RU", Name: "Russia", Centroid: LatLon{61.5, 105.3}, Weight: 80, Cities: []City{
		{Name: "Moscow", Loc: LatLon{55.76, 37.62}},
		{Name: "Saint Petersburg", Loc: LatLon{59.93, 30.34}},
		{Name: "Novosibirsk", Loc: LatLon{55.03, 82.92}},
		{Name: "Yekaterinburg", Loc: LatLon{56.84, 60.61}},
		{Name: "Kazan", Loc: LatLon{55.80, 49.11}},
	}},
	{Code: "DE", Name: "Germany", Centroid: LatLon{51.2, 10.4}, Weight: 45, Cities: []City{
		{Name: "Berlin", Loc: LatLon{52.52, 13.40}},
		{Name: "Frankfurt", Loc: LatLon{50.11, 8.68}},
		{Name: "Munich", Loc: LatLon{48.14, 11.58}},
		{Name: "Hamburg", Loc: LatLon{53.55, 9.99}},
	}},
	{Code: "UA", Name: "Ukraine", Centroid: LatLon{48.4, 31.2}, Weight: 30, Cities: []City{
		{Name: "Kyiv", Loc: LatLon{50.45, 30.52}},
		{Name: "Kharkiv", Loc: LatLon{49.99, 36.23}},
		{Name: "Odesa", Loc: LatLon{46.48, 30.73}},
	}},
	{Code: "NL", Name: "Netherlands", Centroid: LatLon{52.1, 5.3}, Weight: 25, Cities: []City{
		{Name: "Amsterdam", Loc: LatLon{52.37, 4.90}},
		{Name: "Rotterdam", Loc: LatLon{51.92, 4.48}},
	}},
	{Code: "CN", Name: "China", Centroid: LatLon{35.9, 104.2}, Weight: 90, Cities: []City{
		{Name: "Beijing", Loc: LatLon{39.90, 116.41}},
		{Name: "Shanghai", Loc: LatLon{31.23, 121.47}},
		{Name: "Guangzhou", Loc: LatLon{23.13, 113.26}},
		{Name: "Shenzhen", Loc: LatLon{22.54, 114.06}},
		{Name: "Chengdu", Loc: LatLon{30.57, 104.07}},
	}},
	{Code: "IN", Name: "India", Centroid: LatLon{20.6, 79.0}, Weight: 60, Cities: []City{
		{Name: "Mumbai", Loc: LatLon{19.08, 72.88}},
		{Name: "Delhi", Loc: LatLon{28.70, 77.10}},
		{Name: "Bangalore", Loc: LatLon{12.97, 77.59}},
		{Name: "Chennai", Loc: LatLon{13.08, 80.27}},
	}},
	{Code: "PK", Name: "Pakistan", Centroid: LatLon{30.4, 69.3}, Weight: 18, Cities: []City{
		{Name: "Karachi", Loc: LatLon{24.86, 67.01}},
		{Name: "Lahore", Loc: LatLon{31.55, 74.34}},
		{Name: "Islamabad", Loc: LatLon{33.68, 73.05}},
	}},
	{Code: "MX", Name: "Mexico", Centroid: LatLon{23.6, -102.6}, Weight: 22, Cities: []City{
		{Name: "Mexico City", Loc: LatLon{19.43, -99.13}},
		{Name: "Guadalajara", Loc: LatLon{20.66, -103.35}},
		{Name: "Monterrey", Loc: LatLon{25.69, -100.32}},
	}},
	{Code: "KR", Name: "South Korea", Centroid: LatLon{35.9, 127.8}, Weight: 28, Cities: []City{
		{Name: "Seoul", Loc: LatLon{37.57, 126.98}},
		{Name: "Busan", Loc: LatLon{35.18, 129.08}},
	}},
	{Code: "HK", Name: "Hong Kong", Centroid: LatLon{22.3, 114.2}, Weight: 12, Cities: []City{
		{Name: "Hong Kong", Loc: LatLon{22.32, 114.17}},
	}},
	{Code: "JP", Name: "Japan", Centroid: LatLon{36.2, 138.3}, Weight: 35, Cities: []City{
		{Name: "Tokyo", Loc: LatLon{35.68, 139.65}},
		{Name: "Osaka", Loc: LatLon{34.69, 135.50}},
	}},
	{Code: "SG", Name: "Singapore", Centroid: LatLon{1.35, 103.8}, Weight: 10, Cities: []City{
		{Name: "Singapore", Loc: LatLon{1.35, 103.82}},
	}},
	{Code: "FR", Name: "France", Centroid: LatLon{46.2, 2.2}, Weight: 32, Cities: []City{
		{Name: "Paris", Loc: LatLon{48.86, 2.35}},
		{Name: "Lyon", Loc: LatLon{45.76, 4.84}},
		{Name: "Marseille", Loc: LatLon{43.30, 5.37}},
	}},
	{Code: "ES", Name: "Spain", Centroid: LatLon{40.5, -3.7}, Weight: 20, Cities: []City{
		{Name: "Madrid", Loc: LatLon{40.42, -3.70}},
		{Name: "Barcelona", Loc: LatLon{41.39, 2.17}},
	}},
	{Code: "VE", Name: "Venezuela", Centroid: LatLon{6.4, -66.6}, Weight: 10, Cities: []City{
		{Name: "Caracas", Loc: LatLon{10.48, -66.90}},
		{Name: "Maracaibo", Loc: LatLon{10.65, -71.65}},
	}},
	{Code: "GB", Name: "United Kingdom", Centroid: LatLon{55.4, -3.4}, Weight: 30, Cities: []City{
		{Name: "London", Loc: LatLon{51.51, -0.13}},
		{Name: "Manchester", Loc: LatLon{53.48, -2.24}},
	}},
	{Code: "CA", Name: "Canada", Centroid: LatLon{56.1, -106.3}, Weight: 20, Cities: []City{
		{Name: "Toronto", Loc: LatLon{43.65, -79.38}},
		{Name: "Montreal", Loc: LatLon{45.50, -73.57}},
		{Name: "Vancouver", Loc: LatLon{49.28, -123.12}},
	}},
	{Code: "TH", Name: "Thailand", Centroid: LatLon{15.9, 101.0}, Weight: 14, Cities: []City{
		{Name: "Bangkok", Loc: LatLon{13.76, 100.50}},
	}},
	{Code: "ID", Name: "Indonesia", Centroid: LatLon{-0.8, 113.9}, Weight: 20, Cities: []City{
		{Name: "Jakarta", Loc: LatLon{-6.21, 106.85}},
		{Name: "Surabaya", Loc: LatLon{-7.26, 112.75}},
	}},
	{Code: "BW", Name: "Botswana", Centroid: LatLon{-22.3, 24.7}, Weight: 2, Cities: []City{
		{Name: "Gaborone", Loc: LatLon{-24.63, 25.92}},
	}},
	{Code: "UY", Name: "Uruguay", Centroid: LatLon{-32.5, -55.8}, Weight: 4, Cities: []City{
		{Name: "Montevideo", Loc: LatLon{-34.90, -56.16}},
	}},
	{Code: "CL", Name: "Chile", Centroid: LatLon{-35.7, -71.5}, Weight: 8, Cities: []City{
		{Name: "Santiago", Loc: LatLon{-33.45, -70.67}},
	}},
	{Code: "KG", Name: "Kyrgyzstan", Centroid: LatLon{41.2, 74.8}, Weight: 2, Cities: []City{
		{Name: "Bishkek", Loc: LatLon{42.87, 74.59}},
	}},
	{Code: "BR", Name: "Brazil", Centroid: LatLon{-14.2, -51.9}, Weight: 40, Cities: []City{
		{Name: "Sao Paulo", Loc: LatLon{-23.55, -46.63}},
		{Name: "Rio de Janeiro", Loc: LatLon{-22.91, -43.17}},
		{Name: "Brasilia", Loc: LatLon{-15.79, -47.88}},
	}},
	{Code: "TR", Name: "Turkey", Centroid: LatLon{39.0, 35.2}, Weight: 22, Cities: []City{
		{Name: "Istanbul", Loc: LatLon{41.01, 28.98}},
		{Name: "Ankara", Loc: LatLon{39.93, 32.86}},
	}},
	{Code: "IT", Name: "Italy", Centroid: LatLon{41.9, 12.6}, Weight: 24, Cities: []City{
		{Name: "Rome", Loc: LatLon{41.90, 12.50}},
		{Name: "Milan", Loc: LatLon{45.46, 9.19}},
	}},
	{Code: "PL", Name: "Poland", Centroid: LatLon{51.9, 19.1}, Weight: 18, Cities: []City{
		{Name: "Warsaw", Loc: LatLon{52.23, 21.01}},
		{Name: "Krakow", Loc: LatLon{50.06, 19.95}},
	}},
	{Code: "RO", Name: "Romania", Centroid: LatLon{45.9, 24.9}, Weight: 12, Cities: []City{
		{Name: "Bucharest", Loc: LatLon{44.43, 26.10}},
	}},
	{Code: "CZ", Name: "Czechia", Centroid: LatLon{49.8, 15.5}, Weight: 10, Cities: []City{
		{Name: "Prague", Loc: LatLon{50.08, 14.44}},
	}},
	{Code: "SE", Name: "Sweden", Centroid: LatLon{60.1, 18.6}, Weight: 10, Cities: []City{
		{Name: "Stockholm", Loc: LatLon{59.33, 18.07}},
	}},
	{Code: "NO", Name: "Norway", Centroid: LatLon{60.5, 8.5}, Weight: 6, Cities: []City{
		{Name: "Oslo", Loc: LatLon{59.91, 10.75}},
	}},
	{Code: "FI", Name: "Finland", Centroid: LatLon{61.9, 25.7}, Weight: 6, Cities: []City{
		{Name: "Helsinki", Loc: LatLon{60.17, 24.94}},
	}},
	{Code: "DK", Name: "Denmark", Centroid: LatLon{56.3, 9.5}, Weight: 6, Cities: []City{
		{Name: "Copenhagen", Loc: LatLon{55.68, 12.57}},
	}},
	{Code: "CH", Name: "Switzerland", Centroid: LatLon{46.8, 8.2}, Weight: 8, Cities: []City{
		{Name: "Zurich", Loc: LatLon{47.38, 8.54}},
	}},
	{Code: "AT", Name: "Austria", Centroid: LatLon{47.5, 14.6}, Weight: 7, Cities: []City{
		{Name: "Vienna", Loc: LatLon{48.21, 16.37}},
	}},
	{Code: "BE", Name: "Belgium", Centroid: LatLon{50.5, 4.5}, Weight: 8, Cities: []City{
		{Name: "Brussels", Loc: LatLon{50.85, 4.35}},
	}},
	{Code: "PT", Name: "Portugal", Centroid: LatLon{39.4, -8.2}, Weight: 7, Cities: []City{
		{Name: "Lisbon", Loc: LatLon{38.72, -9.14}},
	}},
	{Code: "GR", Name: "Greece", Centroid: LatLon{39.1, 21.8}, Weight: 7, Cities: []City{
		{Name: "Athens", Loc: LatLon{37.98, 23.73}},
	}},
	{Code: "HU", Name: "Hungary", Centroid: LatLon{47.2, 19.5}, Weight: 7, Cities: []City{
		{Name: "Budapest", Loc: LatLon{47.50, 19.04}},
	}},
	{Code: "BG", Name: "Bulgaria", Centroid: LatLon{42.7, 25.5}, Weight: 6, Cities: []City{
		{Name: "Sofia", Loc: LatLon{42.70, 23.32}},
	}},
	{Code: "RS", Name: "Serbia", Centroid: LatLon{44.0, 21.0}, Weight: 5, Cities: []City{
		{Name: "Belgrade", Loc: LatLon{44.79, 20.45}},
	}},
	{Code: "BY", Name: "Belarus", Centroid: LatLon{53.7, 27.9}, Weight: 8, Cities: []City{
		{Name: "Minsk", Loc: LatLon{53.90, 27.57}},
	}},
	{Code: "KZ", Name: "Kazakhstan", Centroid: LatLon{48.0, 66.9}, Weight: 8, Cities: []City{
		{Name: "Almaty", Loc: LatLon{43.22, 76.85}},
	}},
	{Code: "UZ", Name: "Uzbekistan", Centroid: LatLon{41.4, 64.6}, Weight: 4, Cities: []City{
		{Name: "Tashkent", Loc: LatLon{41.30, 69.24}},
	}},
	{Code: "MD", Name: "Moldova", Centroid: LatLon{47.4, 28.4}, Weight: 3, Cities: []City{
		{Name: "Chisinau", Loc: LatLon{47.01, 28.86}},
	}},
	{Code: "GE", Name: "Georgia", Centroid: LatLon{42.3, 43.4}, Weight: 3, Cities: []City{
		{Name: "Tbilisi", Loc: LatLon{41.72, 44.83}},
	}},
	{Code: "AM", Name: "Armenia", Centroid: LatLon{40.1, 45.0}, Weight: 2, Cities: []City{
		{Name: "Yerevan", Loc: LatLon{40.18, 44.51}},
	}},
	{Code: "AZ", Name: "Azerbaijan", Centroid: LatLon{40.1, 47.6}, Weight: 3, Cities: []City{
		{Name: "Baku", Loc: LatLon{40.41, 49.87}},
	}},
	{Code: "IR", Name: "Iran", Centroid: LatLon{32.4, 53.7}, Weight: 15, Cities: []City{
		{Name: "Tehran", Loc: LatLon{35.69, 51.39}},
	}},
	{Code: "IQ", Name: "Iraq", Centroid: LatLon{33.2, 43.7}, Weight: 5, Cities: []City{
		{Name: "Baghdad", Loc: LatLon{33.31, 44.37}},
	}},
	{Code: "SA", Name: "Saudi Arabia", Centroid: LatLon{23.9, 45.1}, Weight: 10, Cities: []City{
		{Name: "Riyadh", Loc: LatLon{24.71, 46.68}},
	}},
	{Code: "AE", Name: "United Arab Emirates", Centroid: LatLon{23.4, 53.8}, Weight: 6, Cities: []City{
		{Name: "Dubai", Loc: LatLon{25.20, 55.27}},
	}},
	{Code: "IL", Name: "Israel", Centroid: LatLon{31.0, 34.9}, Weight: 6, Cities: []City{
		{Name: "Tel Aviv", Loc: LatLon{32.09, 34.78}},
	}},
	{Code: "EG", Name: "Egypt", Centroid: LatLon{26.8, 30.8}, Weight: 12, Cities: []City{
		{Name: "Cairo", Loc: LatLon{30.04, 31.24}},
	}},
	{Code: "ZA", Name: "South Africa", Centroid: LatLon{-30.6, 22.9}, Weight: 10, Cities: []City{
		{Name: "Johannesburg", Loc: LatLon{-26.20, 28.05}},
		{Name: "Cape Town", Loc: LatLon{-33.92, 18.42}},
	}},
	{Code: "NG", Name: "Nigeria", Centroid: LatLon{9.1, 8.7}, Weight: 8, Cities: []City{
		{Name: "Lagos", Loc: LatLon{6.52, 3.38}},
	}},
	{Code: "KE", Name: "Kenya", Centroid: LatLon{-0.0, 37.9}, Weight: 4, Cities: []City{
		{Name: "Nairobi", Loc: LatLon{-1.29, 36.82}},
	}},
	{Code: "MA", Name: "Morocco", Centroid: LatLon{31.8, -7.1}, Weight: 5, Cities: []City{
		{Name: "Casablanca", Loc: LatLon{33.57, -7.59}},
	}},
	{Code: "DZ", Name: "Algeria", Centroid: LatLon{28.0, 1.7}, Weight: 5, Cities: []City{
		{Name: "Algiers", Loc: LatLon{36.74, 3.09}},
	}},
	{Code: "TN", Name: "Tunisia", Centroid: LatLon{33.9, 9.6}, Weight: 3, Cities: []City{
		{Name: "Tunis", Loc: LatLon{36.81, 10.18}},
	}},
	{Code: "AR", Name: "Argentina", Centroid: LatLon{-38.4, -63.6}, Weight: 14, Cities: []City{
		{Name: "Buenos Aires", Loc: LatLon{-34.60, -58.38}},
	}},
	{Code: "CO", Name: "Colombia", Centroid: LatLon{4.6, -74.3}, Weight: 10, Cities: []City{
		{Name: "Bogota", Loc: LatLon{4.71, -74.07}},
	}},
	{Code: "PE", Name: "Peru", Centroid: LatLon{-9.2, -75.0}, Weight: 6, Cities: []City{
		{Name: "Lima", Loc: LatLon{-12.05, -77.04}},
	}},
	{Code: "EC", Name: "Ecuador", Centroid: LatLon{-1.8, -78.2}, Weight: 4, Cities: []City{
		{Name: "Quito", Loc: LatLon{-0.18, -78.47}},
	}},
	{Code: "BO", Name: "Bolivia", Centroid: LatLon{-16.3, -63.6}, Weight: 3, Cities: []City{
		{Name: "La Paz", Loc: LatLon{-16.49, -68.12}},
	}},
	{Code: "PY", Name: "Paraguay", Centroid: LatLon{-23.4, -58.4}, Weight: 3, Cities: []City{
		{Name: "Asuncion", Loc: LatLon{-25.26, -57.58}},
	}},
	{Code: "VN", Name: "Vietnam", Centroid: LatLon{14.1, 108.3}, Weight: 16, Cities: []City{
		{Name: "Hanoi", Loc: LatLon{21.03, 105.85}},
		{Name: "Ho Chi Minh City", Loc: LatLon{10.82, 106.63}},
	}},
	{Code: "PH", Name: "Philippines", Centroid: LatLon{12.9, 121.8}, Weight: 12, Cities: []City{
		{Name: "Manila", Loc: LatLon{14.60, 120.98}},
	}},
	{Code: "MY", Name: "Malaysia", Centroid: LatLon{4.2, 102.0}, Weight: 10, Cities: []City{
		{Name: "Kuala Lumpur", Loc: LatLon{3.14, 101.69}},
	}},
	{Code: "TW", Name: "Taiwan", Centroid: LatLon{23.7, 121.0}, Weight: 12, Cities: []City{
		{Name: "Taipei", Loc: LatLon{25.03, 121.57}},
	}},
	{Code: "AU", Name: "Australia", Centroid: LatLon{-25.3, 133.8}, Weight: 16, Cities: []City{
		{Name: "Sydney", Loc: LatLon{-33.87, 151.21}},
		{Name: "Melbourne", Loc: LatLon{-37.81, 144.96}},
	}},
	{Code: "NZ", Name: "New Zealand", Centroid: LatLon{-40.9, 174.9}, Weight: 4, Cities: []City{
		{Name: "Auckland", Loc: LatLon{-36.85, 174.76}},
	}},
	{Code: "BD", Name: "Bangladesh", Centroid: LatLon{23.7, 90.4}, Weight: 8, Cities: []City{
		{Name: "Dhaka", Loc: LatLon{23.81, 90.41}},
	}},
	{Code: "LK", Name: "Sri Lanka", Centroid: LatLon{7.9, 80.8}, Weight: 3, Cities: []City{
		{Name: "Colombo", Loc: LatLon{6.93, 79.85}},
	}},
	{Code: "NP", Name: "Nepal", Centroid: LatLon{28.4, 84.1}, Weight: 2, Cities: []City{
		{Name: "Kathmandu", Loc: LatLon{27.72, 85.32}},
	}},
	{Code: "MM", Name: "Myanmar", Centroid: LatLon{21.9, 95.9}, Weight: 3, Cities: []City{
		{Name: "Yangon", Loc: LatLon{16.87, 96.20}},
	}},
	{Code: "KH", Name: "Cambodia", Centroid: LatLon{12.6, 104.9}, Weight: 2, Cities: []City{
		{Name: "Phnom Penh", Loc: LatLon{11.56, 104.92}},
	}},
	{Code: "LT", Name: "Lithuania", Centroid: LatLon{55.2, 23.9}, Weight: 4, Cities: []City{
		{Name: "Vilnius", Loc: LatLon{54.69, 25.28}},
	}},
	{Code: "LV", Name: "Latvia", Centroid: LatLon{56.9, 24.6}, Weight: 3, Cities: []City{
		{Name: "Riga", Loc: LatLon{56.95, 24.11}},
	}},
	{Code: "EE", Name: "Estonia", Centroid: LatLon{58.6, 25.0}, Weight: 3, Cities: []City{
		{Name: "Tallinn", Loc: LatLon{59.44, 24.75}},
	}},
	{Code: "SK", Name: "Slovakia", Centroid: LatLon{48.7, 19.7}, Weight: 4, Cities: []City{
		{Name: "Bratislava", Loc: LatLon{48.15, 17.11}},
	}},
	{Code: "SI", Name: "Slovenia", Centroid: LatLon{46.2, 15.0}, Weight: 3, Cities: []City{
		{Name: "Ljubljana", Loc: LatLon{46.06, 14.51}},
	}},
	{Code: "HR", Name: "Croatia", Centroid: LatLon{45.1, 15.2}, Weight: 4, Cities: []City{
		{Name: "Zagreb", Loc: LatLon{45.82, 15.98}},
	}},
	{Code: "BA", Name: "Bosnia and Herzegovina", Centroid: LatLon{43.9, 17.7}, Weight: 2, Cities: []City{
		{Name: "Sarajevo", Loc: LatLon{43.86, 18.41}},
	}},
	{Code: "MK", Name: "North Macedonia", Centroid: LatLon{41.6, 21.7}, Weight: 2, Cities: []City{
		{Name: "Skopje", Loc: LatLon{42.00, 21.43}},
	}},
	{Code: "AL", Name: "Albania", Centroid: LatLon{41.2, 20.2}, Weight: 2, Cities: []City{
		{Name: "Tirana", Loc: LatLon{41.33, 19.82}},
	}},
	{Code: "IE", Name: "Ireland", Centroid: LatLon{53.4, -8.2}, Weight: 5, Cities: []City{
		{Name: "Dublin", Loc: LatLon{53.35, -6.26}},
	}},
	{Code: "IS", Name: "Iceland", Centroid: LatLon{64.96, -19.0}, Weight: 1, Cities: []City{
		{Name: "Reykjavik", Loc: LatLon{64.15, -21.94}},
	}},
	{Code: "CU", Name: "Cuba", Centroid: LatLon{21.5, -77.8}, Weight: 2, Cities: []City{
		{Name: "Havana", Loc: LatLon{23.11, -82.37}},
	}},
	{Code: "DO", Name: "Dominican Republic", Centroid: LatLon{18.7, -70.2}, Weight: 2, Cities: []City{
		{Name: "Santo Domingo", Loc: LatLon{18.49, -69.93}},
	}},
	{Code: "GT", Name: "Guatemala", Centroid: LatLon{15.8, -90.2}, Weight: 2, Cities: []City{
		{Name: "Guatemala City", Loc: LatLon{14.63, -90.51}},
	}},
	{Code: "CR", Name: "Costa Rica", Centroid: LatLon{9.7, -83.8}, Weight: 2, Cities: []City{
		{Name: "San Jose", Loc: LatLon{9.93, -84.08}},
	}},
	{Code: "PA", Name: "Panama", Centroid: LatLon{8.5, -80.8}, Weight: 2, Cities: []City{
		{Name: "Panama City", Loc: LatLon{8.98, -79.52}},
	}},
}

// Atlas provides indexed access to the built-in country table.
type Atlas struct {
	byCode  map[string]*Country
	ordered []*Country // sorted by code for deterministic iteration
	total   float64    // sum of weights
	// cum[i] is the left-to-right prefix sum of ordered[:i+1] weights,
	// accumulated in exactly the order the old linear PickByWeight scan
	// added them — so binary-searching cum picks byte-identical countries.
	cum []float64
}

// NewAtlas builds the lookup structures over the built-in country table.
func NewAtlas() *Atlas {
	a := &Atlas{byCode: make(map[string]*Country, len(atlas))}
	for i := range atlas {
		c := &atlas[i]
		a.byCode[c.Code] = c
		a.ordered = append(a.ordered, c)
		a.total += c.Weight
	}
	sort.Slice(a.ordered, func(i, j int) bool { return a.ordered[i].Code < a.ordered[j].Code })
	a.cum = make([]float64, len(a.ordered))
	var acc float64
	for i, c := range a.ordered {
		acc += c.Weight
		a.cum[i] = acc
	}
	return a
}

// Country returns the country with the given ISO code.
func (a *Atlas) Country(code string) (*Country, bool) {
	c, ok := a.byCode[code]
	return c, ok
}

// Countries returns all countries ordered by ISO code.
func (a *Atlas) Countries() []*Country {
	out := make([]*Country, len(a.ordered))
	copy(out, a.ordered)
	return out
}

// Len returns the number of countries in the atlas.
func (a *Atlas) Len() int { return len(a.ordered) }

// TotalWeight returns the sum of all country weights.
func (a *Atlas) TotalWeight() float64 { return a.total }

// PickByWeight maps u in [0, 1) to a country proportionally to weight,
// giving the synthetic GeoIP database its population-realistic placement.
func (a *Atlas) PickByWeight(u float64) *Country {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	target := u * a.total
	// First index whose prefix sum exceeds target. cum is strictly
	// increasing (weights are positive), so this returns the same country
	// the old linear accumulation scan did, including on boundary values.
	i := sort.Search(len(a.cum), func(i int) bool { return target < a.cum[i] })
	if i == len(a.cum) {
		// target fell past the final prefix sum: a.total is accumulated in
		// table order and cum in code order, so their last ulp can differ.
		return a.ordered[len(a.ordered)-1]
	}
	return a.ordered[i]
}
