package geo

import (
	"math/rand"
	"testing"
)

func randPoints(rng *rand.Rand, n int) []LatLon {
	pts := make([]LatLon, n)
	for i := range pts {
		pts[i] = LatLon{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
	}
	return pts
}

func cachePoints(pts []LatLon) []CachedPoint {
	out := make([]CachedPoint, len(pts))
	for i, p := range pts {
		out[i] = NewCachedPoint(p)
	}
	return out
}

// TestCachedVariantsBitIdentical pins the contract the dispersion index
// relies on: every *Cached function returns the exact float64 bits of its
// uncached original, so switching the scan kernels to cached points cannot
// move any statistic by even one ulp.
func TestCachedVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		pts := randPoints(rng, 2+rng.Intn(30))
		cached := cachePoints(pts)

		a, b := pts[0], pts[1]
		ca, cb := cached[0], cached[1]
		if got, want := HaversineCached(ca, cb), Haversine(a, b); got != want {
			t.Fatalf("HaversineCached = %v, Haversine = %v", got, want)
		}
		gc, gok := CenterCached(cached)
		wc, wok := Center(pts)
		if gok != wok || gc != wc {
			t.Fatalf("CenterCached = %v,%v; Center = %v,%v", gc, gok, wc, wok)
		}
		cc := NewCachedPoint(wc)
		for i := range pts {
			if got, want := SignedDistanceCached(cc, cached[i]), SignedDistance(wc, pts[i]); got != want {
				t.Fatalf("SignedDistanceCached = %v, SignedDistance = %v", got, want)
			}
			if got, want := SignedDistanceTo(wc, cached[i]), SignedDistance(wc, pts[i]); got != want {
				t.Fatalf("SignedDistanceTo = %v, SignedDistance = %v", got, want)
			}
		}
		gd, gok := DispersionCached(cached)
		wd, wok := Dispersion(pts)
		if gok != wok || gd != wd {
			t.Fatalf("DispersionCached = %v,%v; Dispersion = %v,%v", gd, gok, wd, wok)
		}
		wa, wb := rng.Float64()*10, rng.Float64()*10
		gwc, gok := WeightedCenterCached(ca, cb, wa, wb)
		wwc, wok := WeightedCenter(a, b, wa, wb)
		if gok != wok || gwc != wwc {
			t.Fatalf("WeightedCenterCached = %v,%v; WeightedCenter = %v,%v", gwc, gok, wwc, wok)
		}
	}
}

// TestPickByWeightMatchesLinearScan pins the binary-searched PickByWeight
// to the old linear accumulation scan on a dense sweep plus random draws:
// the synthetic GeoIP database is seeded through this function, so any
// difference would change every generated workload byte.
func TestPickByWeightMatchesLinearScan(t *testing.T) {
	a := NewAtlas()
	linear := func(u float64) *Country {
		if u < 0 {
			u = 0
		}
		if u >= 1 {
			u = 0.9999999999999999
		}
		target := u * a.total
		var acc float64
		for _, c := range a.ordered {
			acc += c.Weight
			if target < acc {
				return c
			}
		}
		return a.ordered[len(a.ordered)-1]
	}
	check := func(u float64) {
		if got, want := a.PickByWeight(u), linear(u); got != want {
			t.Fatalf("PickByWeight(%v) = %s, linear scan gives %s", u, got.Code, want.Code)
		}
	}
	for i := 0; i <= 100000; i++ {
		check(float64(i) / 100000)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		check(rng.Float64())
	}
	// Exact cumulative boundaries are where a search off-by-one would bite.
	var acc float64
	for _, c := range a.ordered {
		acc += c.Weight
		check(acc / a.total)
		check(acc/a.total - 1e-16)
	}
}
