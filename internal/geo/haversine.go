// Package geo provides the geolocation substrate of botscope: great-circle
// math, a country/city coordinate atlas, a deterministic synthetic GeoIP
// database, and the signed-dispersion metric the paper uses to profile
// attack sources (§IV-A).
//
// The paper relied on a commercial geo-mapping service (Digital Envoy).
// That service is proprietary, so this package substitutes a deterministic
// synthetic mapping from IPv4 addresses to locations, organizations, and
// autonomous systems. All analyses consume only (lat, lon, country, city,
// org, ASN), so the substitution preserves every geospatial statistic.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0

// LatLon is a point on the Earth's surface in decimal degrees.
type LatLon struct {
	Lat float64
	Lon float64
}

// String renders the point as "lat,lon" with 4 decimal places.
func (p LatLon) String() string {
	return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon)
}

// Valid reports whether the point lies in the legal coordinate ranges.
func (p LatLon) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func degToRad(d float64) float64 { return d * math.Pi / 180 }

// Haversine returns the great-circle distance between a and b in km, using
// the haversine formula the paper cites for its distance computations.
func Haversine(a, b LatLon) float64 {
	lat1, lon1 := degToRad(a.Lat), degToRad(a.Lon)
	lat2, lon2 := degToRad(b.Lat), degToRad(b.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Center returns the geographic center (spherical centroid) of the points,
// computed by averaging 3-D unit vectors. It returns the zero point and
// false when pts is empty.
func Center(pts []LatLon) (LatLon, bool) {
	if len(pts) == 0 {
		return LatLon{}, false
	}
	var x, y, z float64
	for _, p := range pts {
		lat, lon := degToRad(p.Lat), degToRad(p.Lon)
		x += math.Cos(lat) * math.Cos(lon)
		y += math.Cos(lat) * math.Sin(lon)
		z += math.Sin(lat)
	}
	n := float64(len(pts))
	x, y, z = x/n, y/n, z/n
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm < 1e-12 {
		// Antipodal cancellation; fall back to the first point to keep the
		// result deterministic rather than undefined.
		return pts[0], true
	}
	lat := math.Asin(z / norm)
	lon := math.Atan2(y, x)
	return LatLon{Lat: lat * 180 / math.Pi, Lon: lon * 180 / math.Pi}, true
}

// WeightedCenter returns the spherical centroid of two points with the
// given non-negative weights. It is the allocation-free two-point analogue
// of Center, used on the workload generator's hot path.
func WeightedCenter(a, b LatLon, wa, wb float64) (LatLon, bool) {
	total := wa + wb
	if total <= 0 {
		return LatLon{}, false
	}
	latA, lonA := degToRad(a.Lat), degToRad(a.Lon)
	latB, lonB := degToRad(b.Lat), degToRad(b.Lon)
	x := (wa*math.Cos(latA)*math.Cos(lonA) + wb*math.Cos(latB)*math.Cos(lonB)) / total
	y := (wa*math.Cos(latA)*math.Sin(lonA) + wb*math.Cos(latB)*math.Sin(lonB)) / total
	z := (wa*math.Sin(latA) + wb*math.Sin(latB)) / total
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm < 1e-12 {
		return a, true // antipodal cancellation; stay deterministic
	}
	lat := math.Asin(z / norm)
	lon := math.Atan2(y, x)
	return LatLon{Lat: lat * 180 / math.Pi, Lon: lon * 180 / math.Pi}, true
}

// SignedDistance returns the haversine distance from center to p with the
// paper's sign convention: positive for points east (or, on the same
// meridian, north) of the center, negative for west/south. Longitude
// differences are taken the short way around the antimeridian.
func SignedDistance(center, p LatLon) float64 {
	d := Haversine(center, p)
	dLon := p.Lon - center.Lon
	// Normalize to (-180, 180] so "east" means the short way around.
	for dLon > 180 {
		dLon -= 360
	}
	for dLon <= -180 {
		dLon += 360
	}
	switch {
	case dLon > 0:
		return d
	case dLon < 0:
		return -d
	case p.Lat >= center.Lat:
		return d
	default:
		return -d
	}
}

// Dispersion computes the paper's geolocation-distribution value for a set
// of bot locations: the absolute value of the sum of signed distances from
// the geographic center. Zero means the participating bots are
// geographically symmetric around their center. The boolean is false when
// pts is empty.
func Dispersion(pts []LatLon) (float64, bool) {
	center, ok := Center(pts)
	if !ok {
		return 0, false
	}
	var sum float64
	for _, p := range pts {
		sum += SignedDistance(center, p)
	}
	return math.Abs(sum), true
}

// MeanDistanceToCenter is the ablation alternative to Dispersion: the mean
// unsigned distance from each point to the geographic center. Unlike
// Dispersion it cannot distinguish symmetric from concentrated layouts.
func MeanDistanceToCenter(pts []LatLon) (float64, bool) {
	center, ok := Center(pts)
	if !ok {
		return 0, false
	}
	var sum float64
	for _, p := range pts {
		sum += Haversine(center, p)
	}
	return sum / float64(len(pts)), true
}
