package geo

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strconv"
)

// OrgKind classifies the organization that owns an address block. The
// paper's organization-level target analysis (Fig 14) found attacks aimed
// mostly at web hosting services, cloud providers, data centers, domain
// registrars and backbone ASes — kinds that the synthetic database must be
// able to represent so targets can be drawn from them.
type OrgKind int

// Organization kinds, from eyeball networks to infrastructure providers.
const (
	OrgTelecom OrgKind = iota + 1
	OrgBroadband
	OrgHosting
	OrgCloud
	OrgDatacenter
	OrgRegistrar
	OrgBackbone
	OrgEnterprise
)

// String returns the human-readable kind name.
func (k OrgKind) String() string {
	switch k {
	case OrgTelecom:
		return "telecom"
	case OrgBroadband:
		return "broadband"
	case OrgHosting:
		return "hosting"
	case OrgCloud:
		return "cloud"
	case OrgDatacenter:
		return "datacenter"
	case OrgRegistrar:
		return "registrar"
	case OrgBackbone:
		return "backbone"
	case OrgEnterprise:
		return "enterprise"
	default:
		return fmt.Sprintf("OrgKind(%d)", int(k))
	}
}

// InfrastructureKind reports whether the kind is the sort of massive-
// resource infrastructure organization the paper found targeted most.
func (k OrgKind) InfrastructureKind() bool {
	switch k {
	case OrgHosting, OrgCloud, OrgDatacenter, OrgRegistrar, OrgBackbone:
		return true
	default:
		return false
	}
}

// Org is an organization owning one or more address blocks.
type Org struct {
	Name        string
	Kind        OrgKind
	CountryCode string
	ASN         int
}

// Location is the full geo answer for an IP: what the commercial mapping
// service of the paper would have returned.
type Location struct {
	IP          netip.Addr
	Point       LatLon
	CountryCode string
	Country     string
	City        string
	Org         string
	OrgKind     OrgKind
	ASN         int
}

// block is one /16 allocation: 65536 addresses in a single city and org.
type block struct {
	prefix  uint32 // high 16 bits of the IPv4 address, shifted down
	country *Country
	city    City
	org     *Org
}

// DBConfig parameterizes the synthetic GeoIP database.
type DBConfig struct {
	// Seed drives all allocation randomness; identical seeds produce
	// byte-identical databases.
	Seed int64
	// BlocksPerWeight scales how many /16 blocks each country receives per
	// unit of weight. The default (0) means 4.
	BlocksPerWeight float64
	// CityJitterDeg is the maximum +/- degree offset applied to an address
	// inside its city, so individual bots do not collapse onto one point.
	// The default (0) means 0.35 degrees (roughly a metro area).
	CityJitterDeg float64
}

// DB is a deterministic synthetic GeoIP database. It allocates /16 blocks
// of IPv4 space to (country, city, organization, ASN) tuples and answers
// lookups in O(1). It also supports sampling addresses with constraints,
// which the workload generator uses to place bots and victims.
//
// DB is immutable after construction and safe for concurrent use.
type DB struct {
	cfg      DBConfig
	atlas    *Atlas
	blocks   map[uint32]*block // by high-16 prefix
	byCC     map[string][]*block
	infraCC  map[string][]*block // infrastructure-kind blocks by country
	orgs     []*Org
	prefixes []uint32 // sorted, for deterministic iteration
}

var orgNameTemplates = []struct {
	suffix string
	kind   OrgKind
}{
	{suffix: "Telecom", kind: OrgTelecom},
	{suffix: "Broadband", kind: OrgBroadband},
	{suffix: "Net", kind: OrgBroadband},
	{suffix: "Hosting", kind: OrgHosting},
	{suffix: "Web Services", kind: OrgHosting},
	{suffix: "Cloud", kind: OrgCloud},
	{suffix: "Datacenter", kind: OrgDatacenter},
	{suffix: "Registry", kind: OrgRegistrar},
	{suffix: "Backbone", kind: OrgBackbone},
	{suffix: "Systems", kind: OrgEnterprise},
}

// NewDB allocates the synthetic address space.
func NewDB(cfg DBConfig) *DB {
	if cfg.BlocksPerWeight <= 0 {
		cfg.BlocksPerWeight = 4
	}
	if cfg.CityJitterDeg <= 0 {
		cfg.CityJitterDeg = 0.35
	}
	db := &DB{
		cfg:     cfg,
		atlas:   NewAtlas(),
		blocks:  make(map[uint32]*block),
		byCC:    make(map[string][]*block),
		infraCC: make(map[string][]*block),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Shuffle the /16 prefix space (skip 0.x and 127.x and >=224.x to stay
	// plausible) and hand prefixes out country by country.
	var pool []uint32
	for hi := uint32(1 << 8); hi < 224<<8; hi++ {
		if hi>>8 == 127 || hi>>8 == 10 || hi>>8 == 192 {
			continue // loopback/private-ish space stays unallocated
		}
		pool = append(pool, hi)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	next := 0
	asn := 1000
	for _, c := range db.atlas.Countries() {
		n := int(c.Weight*cfg.BlocksPerWeight + 0.5)
		if n < 1 {
			n = 1
		}
		// Extend the hand-curated city list with synthetic regional
		// centers so city-level entity counts reach realistic scale (the
		// paper observed 2,897 source cities; a handful of metro areas per
		// country cannot carry that).
		cities := append([]City(nil), c.Cities...)
		for extra := 0; extra < int(c.Weight/1.5)+1; extra++ {
			base := c.Cities[extra%len(c.Cities)]
			cities = append(cities, City{
				Name: c.Name + " Region " + strconv.Itoa(extra+1),
				Loc: LatLon{
					Lat: clampLat(base.Loc.Lat + (rng.Float64()-0.5)*5),
					Lon: wrapLon(base.Loc.Lon + (rng.Float64()-0.5)*7),
				},
			})
		}
		// Each country gets a pool of organizations; roughly one org per
		// 1.5 blocks so multiple blocks share owners, and some orgs get a
		// second ASN to mirror the paper's orgs < ASNs relation.
		numOrgs := (n*2 + 2) / 3
		if numOrgs < 1 {
			numOrgs = 1
		}
		orgs := make([]*Org, 0, numOrgs)
		for i := 0; i < numOrgs; i++ {
			tpl := orgNameTemplates[rng.Intn(len(orgNameTemplates))]
			base := c.Name
			if len(c.Cities) > 0 && rng.Intn(2) == 0 {
				base = c.Cities[rng.Intn(len(c.Cities))].Name
			}
			asn++
			org := &Org{
				Name:        base + " " + tpl.suffix + " " + strconv.Itoa(i+1),
				Kind:        tpl.kind,
				CountryCode: c.Code,
				ASN:         asn,
			}
			if rng.Float64() < 0.12 { // a slice of orgs announce 2 ASNs
				asn++
			}
			orgs = append(orgs, org)
			db.orgs = append(db.orgs, org)
		}
		// Guarantee every country has at least one infrastructure org so
		// victims can always be placed.
		hasInfra := false
		for _, o := range orgs {
			if o.Kind.InfrastructureKind() {
				hasInfra = true
				break
			}
		}
		if !hasInfra {
			asn++
			org := &Org{
				Name:        fmt.Sprintf("%s Hosting 0", c.Name),
				Kind:        OrgHosting,
				CountryCode: c.Code,
				ASN:         asn,
			}
			orgs = append(orgs, org)
			db.orgs = append(db.orgs, org)
		}

		for i := 0; i < n && next < len(pool); i++ {
			prefix := pool[next]
			next++
			city := cities[rng.Intn(len(cities))]
			b := &block{
				prefix:  prefix,
				country: c,
				city:    city,
				org:     orgs[rng.Intn(len(orgs))],
			}
			db.blocks[prefix] = b
			db.byCC[c.Code] = append(db.byCC[c.Code], b)
			if b.org.Kind.InfrastructureKind() {
				db.infraCC[c.Code] = append(db.infraCC[c.Code], b)
			}
			db.prefixes = append(db.prefixes, prefix)
		}
		// Countries whose random block assignment produced no
		// infrastructure block get one forced, so target sampling works.
		if len(db.infraCC[c.Code]) == 0 && next < len(pool) {
			prefix := pool[next]
			next++
			var infraOrg *Org
			for _, o := range orgs {
				if o.Kind.InfrastructureKind() {
					infraOrg = o
					break
				}
			}
			b := &block{
				prefix:  prefix,
				country: c,
				city:    cities[0],
				org:     infraOrg,
			}
			db.blocks[prefix] = b
			db.byCC[c.Code] = append(db.byCC[c.Code], b)
			db.infraCC[c.Code] = append(db.infraCC[c.Code], b)
			db.prefixes = append(db.prefixes, prefix)
		}
	}
	sort.Slice(db.prefixes, func(i, j int) bool { return db.prefixes[i] < db.prefixes[j] })
	return db
}

// NumBlocks returns how many /16 blocks are allocated.
func (db *DB) NumBlocks() int { return len(db.blocks) }

// NumOrgs returns how many organizations exist.
func (db *DB) NumOrgs() int { return len(db.orgs) }

// Countries returns the underlying atlas.
func (db *DB) Countries() *Atlas { return db.atlas }

// Lookup resolves an IPv4 address to its location. The boolean is false
// for non-IPv4 addresses and for addresses in unallocated space.
func (db *DB) Lookup(ip netip.Addr) (Location, bool) {
	if !ip.Is4() {
		return Location{}, false
	}
	raw := ip.As4()
	v := uint32(raw[0])<<24 | uint32(raw[1])<<16 | uint32(raw[2])<<8 | uint32(raw[3])
	b, ok := db.blocks[v>>16]
	if !ok {
		return Location{}, false
	}
	return db.locate(b, v), true
}

// locate computes the deterministic jittered point for an address within
// its block. The jitter is a pure function of the address, so repeated
// lookups agree — mirroring the stability of a real GeoIP snapshot.
func (db *DB) locate(b *block, v uint32) Location {
	low := v & 0xffff
	// splitmix-style scramble of the low bits for jitter.
	h := uint64(low)*0x9e3779b97f4a7c15 + uint64(db.cfg.Seed)
	h ^= h >> 31
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	jLat := (float64(h&0xffff)/65535 - 0.5) * 2 * db.cfg.CityJitterDeg
	jLon := (float64((h>>16)&0xffff)/65535 - 0.5) * 2 * db.cfg.CityJitterDeg
	pt := LatLon{Lat: b.city.Loc.Lat + jLat, Lon: b.city.Loc.Lon + jLon}
	if pt.Lat > 90 {
		pt.Lat = 90
	}
	if pt.Lat < -90 {
		pt.Lat = -90
	}
	if pt.Lon > 180 {
		pt.Lon -= 360
	}
	if pt.Lon < -180 {
		pt.Lon += 360
	}
	return Location{
		IP:          addrFromUint32(v),
		Point:       pt,
		CountryCode: b.country.Code,
		Country:     b.country.Name,
		City:        b.city.Name,
		Org:         b.org.Name,
		OrgKind:     b.org.Kind,
		ASN:         b.org.ASN,
	}
}

// SampleIP draws a uniformly random allocated address.
func (db *DB) SampleIP(rng *rand.Rand) netip.Addr {
	prefix := db.prefixes[rng.Intn(len(db.prefixes))]
	return addrFromUint32(prefix<<16 | uint32(rng.Intn(1<<16)))
}

// SampleIPInCountry draws a random address allocated to the country. The
// boolean is false for unknown countries.
func (db *DB) SampleIPInCountry(rng *rand.Rand, cc string) (netip.Addr, bool) {
	blocks := db.byCC[cc]
	if len(blocks) == 0 {
		return netip.Addr{}, false
	}
	b := blocks[rng.Intn(len(blocks))]
	return addrFromUint32(b.prefix<<16 | uint32(rng.Intn(1<<16))), true
}

// SampleInfrastructureIP draws a random address in the country that belongs
// to an infrastructure organization (hosting, cloud, datacenter, registrar,
// backbone) — where the paper found DDoS victims concentrated.
func (db *DB) SampleInfrastructureIP(rng *rand.Rand, cc string) (netip.Addr, bool) {
	blocks := db.infraCC[cc]
	if len(blocks) == 0 {
		return netip.Addr{}, false
	}
	b := blocks[rng.Intn(len(blocks))]
	return addrFromUint32(b.prefix<<16 | uint32(rng.Intn(1<<16))), true
}

func clampLat(v float64) float64 {
	if v > 90 {
		return 90
	}
	if v < -90 {
		return -90
	}
	return v
}

func wrapLon(v float64) float64 {
	for v > 180 {
		v -= 360
	}
	for v < -180 {
		v += 360
	}
	return v
}

func addrFromUint32(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}
