package geo

import (
	"math/rand"
	"net/netip"
	"testing"
)

func TestAtlasLookup(t *testing.T) {
	a := NewAtlas()
	tests := []struct {
		code     string
		wantName string
	}{
		{code: "US", wantName: "United States"},
		{code: "RU", wantName: "Russia"},
		{code: "KG", wantName: "Kyrgyzstan"},
		{code: "BW", wantName: "Botswana"},
	}
	for _, tt := range tests {
		t.Run(tt.code, func(t *testing.T) {
			c, ok := a.Country(tt.code)
			if !ok {
				t.Fatalf("country %q missing from atlas", tt.code)
			}
			if c.Name != tt.wantName {
				t.Errorf("Name = %q, want %q", c.Name, tt.wantName)
			}
			if !c.Centroid.Valid() {
				t.Errorf("centroid %v invalid", c.Centroid)
			}
			if len(c.Cities) == 0 {
				t.Error("country has no cities")
			}
			for _, city := range c.Cities {
				if !city.Loc.Valid() {
					t.Errorf("city %q location %v invalid", city.Name, city.Loc)
				}
			}
		})
	}
	if _, ok := a.Country("XX"); ok {
		t.Error("unknown country XX resolved")
	}
}

func TestAtlasCoversPaperCountries(t *testing.T) {
	// Every country in the paper's Table V must exist in the atlas.
	paperCountries := []string{
		"US", "FR", "ES", "VE", "DE", "NL", "SG", "RU", "IN", "PK", "BW",
		"TH", "ID", "CN", "KR", "HK", "JP", "MX", "UY", "CL", "CA", "GB",
		"UA", "KG",
	}
	a := NewAtlas()
	for _, cc := range paperCountries {
		if _, ok := a.Country(cc); !ok {
			t.Errorf("paper country %q missing from atlas", cc)
		}
	}
}

func TestAtlasPickByWeight(t *testing.T) {
	a := NewAtlas()
	if got := a.PickByWeight(0); got == nil {
		t.Fatal("PickByWeight(0) = nil")
	}
	if got := a.PickByWeight(0.99999); got == nil {
		t.Fatal("PickByWeight(~1) = nil")
	}
	// Clamped out-of-range inputs still return a country.
	if got := a.PickByWeight(-1); got == nil {
		t.Fatal("PickByWeight(-1) = nil")
	}
	if got := a.PickByWeight(2); got == nil {
		t.Fatal("PickByWeight(2) = nil")
	}

	// High-weight countries must be picked far more often than low-weight.
	rng := rand.New(rand.NewSource(1))
	counts := make(map[string]int)
	for i := 0; i < 20000; i++ {
		counts[a.PickByWeight(rng.Float64()).Code]++
	}
	if counts["US"] < counts["IS"]*10 {
		t.Errorf("US picked %d times vs Iceland %d; weighting looks broken", counts["US"], counts["IS"])
	}
}

func TestDBDeterminism(t *testing.T) {
	db1 := NewDB(DBConfig{Seed: 42})
	db2 := NewDB(DBConfig{Seed: 42})
	if db1.NumBlocks() != db2.NumBlocks() || db1.NumOrgs() != db2.NumOrgs() {
		t.Fatalf("same seed produced different databases: %d/%d blocks, %d/%d orgs",
			db1.NumBlocks(), db2.NumBlocks(), db1.NumOrgs(), db2.NumOrgs())
	}
	ip := netip.MustParseAddr("93.158.1.7")
	l1, ok1 := db1.Lookup(ip)
	l2, ok2 := db2.Lookup(ip)
	if ok1 != ok2 {
		t.Fatalf("lookup disagreement: %v vs %v", ok1, ok2)
	}
	if ok1 && l1 != l2 {
		t.Errorf("same seed, same IP, different locations: %+v vs %+v", l1, l2)
	}

	db3 := NewDB(DBConfig{Seed: 43})
	diff := 0
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		probe := db1.SampleIP(rng)
		a, _ := db1.Lookup(probe)
		b, okB := db3.Lookup(probe)
		if !okB || a.CountryCode != b.CountryCode {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced an identical allocation; suspicious")
	}
}

func TestDBLookupConsistency(t *testing.T) {
	db := NewDB(DBConfig{Seed: 7})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		ip := db.SampleIP(rng)
		loc, ok := db.Lookup(ip)
		if !ok {
			t.Fatalf("sampled IP %v not found in DB", ip)
		}
		if !loc.Point.Valid() {
			t.Errorf("IP %v mapped to invalid point %v", ip, loc.Point)
		}
		if loc.CountryCode == "" || loc.City == "" || loc.Org == "" || loc.ASN == 0 {
			t.Errorf("IP %v has incomplete location: %+v", ip, loc)
		}
		// Lookup must be stable.
		again, _ := db.Lookup(ip)
		if again != loc {
			t.Errorf("unstable lookup for %v", ip)
		}
	}
}

func TestDBLookupRejectsUnknown(t *testing.T) {
	db := NewDB(DBConfig{Seed: 7})
	if _, ok := db.Lookup(netip.MustParseAddr("127.0.0.1")); ok {
		t.Error("loopback resolved, want miss")
	}
	if _, ok := db.Lookup(netip.MustParseAddr("10.1.2.3")); ok {
		t.Error("private 10/8 resolved, want miss")
	}
	if _, ok := db.Lookup(netip.MustParseAddr("::1")); ok {
		t.Error("IPv6 resolved, want miss")
	}
	if _, ok := db.Lookup(netip.MustParseAddr("255.255.255.255")); ok {
		t.Error("reserved space resolved, want miss")
	}
}

func TestDBSampleIPInCountry(t *testing.T) {
	db := NewDB(DBConfig{Seed: 7})
	rng := rand.New(rand.NewSource(4))
	for _, cc := range []string{"US", "RU", "CN", "KG"} {
		for i := 0; i < 50; i++ {
			ip, ok := db.SampleIPInCountry(rng, cc)
			if !ok {
				t.Fatalf("no blocks for %s", cc)
			}
			loc, ok := db.Lookup(ip)
			if !ok {
				t.Fatalf("sampled %s IP %v not resolvable", cc, ip)
			}
			if loc.CountryCode != cc {
				t.Errorf("sampled IP for %s resolved to %s", cc, loc.CountryCode)
			}
		}
	}
	if _, ok := db.SampleIPInCountry(rng, "ZZ"); ok {
		t.Error("sampled IP in nonexistent country")
	}
}

func TestDBSampleInfrastructureIP(t *testing.T) {
	db := NewDB(DBConfig{Seed: 7})
	rng := rand.New(rand.NewSource(5))
	for _, c := range db.Countries().Countries() {
		ip, ok := db.SampleInfrastructureIP(rng, c.Code)
		if !ok {
			t.Errorf("country %s has no infrastructure blocks", c.Code)
			continue
		}
		loc, ok := db.Lookup(ip)
		if !ok {
			t.Fatalf("infrastructure IP %v not resolvable", ip)
		}
		if !loc.OrgKind.InfrastructureKind() {
			t.Errorf("infrastructure sample in %s landed on org kind %v", c.Code, loc.OrgKind)
		}
	}
}

func TestDBScale(t *testing.T) {
	db := NewDB(DBConfig{Seed: 1})
	// Rough scale check against the paper's source-side statistics:
	// thousands of orgs, thousands of blocks across all countries.
	if db.NumBlocks() < 500 {
		t.Errorf("NumBlocks = %d, want >= 500", db.NumBlocks())
	}
	if db.NumOrgs() < 300 {
		t.Errorf("NumOrgs = %d, want >= 300", db.NumOrgs())
	}
}

func TestOrgKindString(t *testing.T) {
	tests := []struct {
		kind OrgKind
		want string
	}{
		{kind: OrgTelecom, want: "telecom"},
		{kind: OrgHosting, want: "hosting"},
		{kind: OrgBackbone, want: "backbone"},
		{kind: OrgKind(99), want: "OrgKind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestInfrastructureKind(t *testing.T) {
	infra := []OrgKind{OrgHosting, OrgCloud, OrgDatacenter, OrgRegistrar, OrgBackbone}
	eyeball := []OrgKind{OrgTelecom, OrgBroadband, OrgEnterprise}
	for _, k := range infra {
		if !k.InfrastructureKind() {
			t.Errorf("%v should be infrastructure", k)
		}
	}
	for _, k := range eyeball {
		if k.InfrastructureKind() {
			t.Errorf("%v should not be infrastructure", k)
		}
	}
}
