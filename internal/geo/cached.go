package geo

import "math"

// CachedPoint is a LatLon with its trigonometry precomputed: radians,
// cos(lat), and the 3-D unit vector. The dispersion kernels evaluate the
// same bot locations across thousands of attacks, so hoisting the
// per-point trig out of Center/Haversine removes most of the scan's math
// work. Every cached field is derived with exactly the expressions (and
// operation order) of the uncached functions, so the *Cached variants
// below are bit-identical to their originals — callers may mix them
// freely without perturbing any statistic.
type CachedPoint struct {
	Deg    LatLon  // original coordinates in degrees
	LatRad float64 // degToRad(Deg.Lat)
	LonRad float64 // degToRad(Deg.Lon)
	CosLat float64 // math.Cos(LatRad)
	X      float64 // math.Cos(LatRad) * math.Cos(LonRad)
	Y      float64 // math.Cos(LatRad) * math.Sin(LonRad)
	Z      float64 // math.Sin(LatRad)
}

// NewCachedPoint precomputes the trigonometry of p.
func NewCachedPoint(p LatLon) CachedPoint {
	lat, lon := degToRad(p.Lat), degToRad(p.Lon)
	cosLat := math.Cos(lat)
	return CachedPoint{
		Deg:    p,
		LatRad: lat,
		LonRad: lon,
		CosLat: cosLat,
		X:      cosLat * math.Cos(lon),
		Y:      cosLat * math.Sin(lon),
		Z:      math.Sin(lat),
	}
}

// HaversineCached is Haversine over precomputed points; bit-identical to
// Haversine(a.Deg, b.Deg).
//
//botscope:hotpath
func HaversineCached(a, b CachedPoint) float64 {
	dLat := b.LatRad - a.LatRad
	dLon := b.LonRad - a.LonRad
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + a.CosLat*b.CosLat*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// CenterCached is Center over precomputed points; bit-identical to
// Center over the same points in degrees.
//
//botscope:hotpath
func CenterCached(pts []CachedPoint) (LatLon, bool) {
	if len(pts) == 0 {
		return LatLon{}, false
	}
	var x, y, z float64
	for _, p := range pts {
		x += p.X
		y += p.Y
		z += p.Z
	}
	n := float64(len(pts))
	x, y, z = x/n, y/n, z/n
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm < 1e-12 {
		// Antipodal cancellation; fall back to the first point to keep the
		// result deterministic rather than undefined.
		return pts[0].Deg, true
	}
	lat := math.Asin(z / norm)
	lon := math.Atan2(y, x)
	return LatLon{Lat: lat * 180 / math.Pi, Lon: lon * 180 / math.Pi}, true
}

// SignedDistanceCached is SignedDistance from a precomputed center to a
// precomputed point; bit-identical to SignedDistance(center.Deg, p.Deg).
//
//botscope:hotpath
func SignedDistanceCached(center, p CachedPoint) float64 {
	d := HaversineCached(center, p)
	dLon := p.Deg.Lon - center.Deg.Lon
	// Normalize to (-180, 180] so "east" means the short way around.
	for dLon > 180 {
		dLon -= 360
	}
	for dLon <= -180 {
		dLon += 360
	}
	switch {
	case dLon > 0:
		return d
	case dLon < 0:
		return -d
	case p.Deg.Lat >= center.Deg.Lat:
		return d
	default:
		return -d
	}
}

// DispersionCached is Dispersion over precomputed points; bit-identical to
// Dispersion over the same points in degrees. The center's trigonometry is
// computed once instead of once per point.
//
//botscope:hotpath
func DispersionCached(pts []CachedPoint) (float64, bool) {
	center, ok := CenterCached(pts)
	if !ok {
		return 0, false
	}
	cc := NewCachedPoint(center)
	var sum float64
	for _, p := range pts {
		sum += SignedDistanceCached(cc, p)
	}
	return math.Abs(sum), true
}

// WeightedCenterCached is WeightedCenter over precomputed points;
// bit-identical to WeightedCenter(a.Deg, b.Deg, wa, wb). The generator's
// cluster-selection loop evaluates every cluster against a fixed anchor,
// so caching both endpoints' trig halves the loop's math.
//
//botscope:hotpath
func WeightedCenterCached(a, b CachedPoint, wa, wb float64) (LatLon, bool) {
	total := wa + wb
	if total <= 0 {
		return LatLon{}, false
	}
	x := (wa*a.CosLat*math.Cos(a.LonRad) + wb*b.CosLat*math.Cos(b.LonRad)) / total
	y := (wa*a.CosLat*math.Sin(a.LonRad) + wb*b.CosLat*math.Sin(b.LonRad)) / total
	z := (wa*math.Sin(a.LatRad) + wb*math.Sin(b.LatRad)) / total
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm < 1e-12 {
		return a.Deg, true // antipodal cancellation; stay deterministic
	}
	lat := math.Asin(z / norm)
	lon := math.Atan2(y, x)
	return LatLon{Lat: lat * 180 / math.Pi, Lon: lon * 180 / math.Pi}, true
}

// SignedDistanceTo is SignedDistance from an uncached center (typically a
// freshly computed centroid) to a precomputed point; bit-identical to
// SignedDistance(center, p.Deg).
//
//botscope:hotpath
func SignedDistanceTo(center LatLon, p CachedPoint) float64 {
	lat1, lon1 := degToRad(center.Lat), degToRad(center.Lon)
	dLat := p.LatRad - lat1
	dLon := p.LonRad - lon1
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*p.CosLat*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	d := 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
	dLonDeg := p.Deg.Lon - center.Lon
	for dLonDeg > 180 {
		dLonDeg -= 360
	}
	for dLonDeg <= -180 {
		dLonDeg += 360
	}
	switch {
	case dLonDeg > 0:
		return d
	case dLonDeg < 0:
		return -d
	case p.Deg.Lat >= center.Lat:
		return d
	default:
		return -d
	}
}
