package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	moscow   = LatLon{Lat: 55.76, Lon: 37.62}
	newYork  = LatLon{Lat: 40.71, Lon: -74.01}
	london   = LatLon{Lat: 51.51, Lon: -0.13}
	sydney   = LatLon{Lat: -33.87, Lon: 151.21}
	equator0 = LatLon{Lat: 0, Lon: 0}
)

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name   string
		a, b   LatLon
		wantKm float64
		tolKm  float64
	}{
		{name: "same point", a: moscow, b: moscow, wantKm: 0, tolKm: 0.001},
		{name: "london-newyork", a: london, b: newYork, wantKm: 5570, tolKm: 30},
		{name: "moscow-newyork", a: moscow, b: newYork, wantKm: 7520, tolKm: 40},
		{name: "sydney-london", a: sydney, b: london, wantKm: 16990, tolKm: 80},
		{name: "one degree longitude at equator", a: equator0, b: LatLon{Lat: 0, Lon: 1}, wantKm: 111.2, tolKm: 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Haversine(tt.a, tt.b)
			if math.Abs(got-tt.wantKm) > tt.tolKm {
				t.Errorf("Haversine = %.1f km, want %.1f +/- %.1f", got, tt.wantKm, tt.tolKm)
			}
		})
	}
}

func TestHaversineSymmetric(t *testing.T) {
	if d1, d2 := Haversine(moscow, sydney), Haversine(sydney, moscow); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestLatLonValid(t *testing.T) {
	tests := []struct {
		name string
		p    LatLon
		want bool
	}{
		{name: "origin", p: LatLon{}, want: true},
		{name: "poles", p: LatLon{Lat: 90, Lon: 180}, want: true},
		{name: "bad lat", p: LatLon{Lat: 91}, want: false},
		{name: "bad lon", p: LatLon{Lon: -181}, want: false},
		{name: "nan", p: LatLon{Lat: math.NaN()}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Valid(); got != tt.want {
				t.Errorf("Valid(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestCenterOfSinglePoint(t *testing.T) {
	c, ok := Center([]LatLon{moscow})
	if !ok {
		t.Fatal("Center of one point reported not ok")
	}
	if Haversine(c, moscow) > 0.001 {
		t.Errorf("Center of single point = %v, want %v", c, moscow)
	}
}

func TestCenterEmpty(t *testing.T) {
	if _, ok := Center(nil); ok {
		t.Error("Center(nil) reported ok")
	}
}

func TestCenterOfSymmetricPair(t *testing.T) {
	a := LatLon{Lat: 0, Lon: -10}
	b := LatLon{Lat: 0, Lon: 10}
	c, ok := Center([]LatLon{a, b})
	if !ok {
		t.Fatal("not ok")
	}
	if math.Abs(c.Lat) > 1e-6 || math.Abs(c.Lon) > 1e-6 {
		t.Errorf("Center = %v, want equator origin", c)
	}
}

func TestCenterAntipodalFallback(t *testing.T) {
	a := LatLon{Lat: 0, Lon: 0}
	b := LatLon{Lat: 0, Lon: 180}
	c, ok := Center([]LatLon{a, b})
	if !ok {
		t.Fatal("not ok")
	}
	if !c.Valid() {
		t.Errorf("antipodal center invalid: %v", c)
	}
}

func TestSignedDistanceConvention(t *testing.T) {
	center := LatLon{Lat: 50, Lon: 10}
	tests := []struct {
		name     string
		p        LatLon
		wantSign float64
	}{
		{name: "east is positive", p: LatLon{Lat: 50, Lon: 20}, wantSign: 1},
		{name: "west is negative", p: LatLon{Lat: 50, Lon: 0}, wantSign: -1},
		{name: "due north is positive", p: LatLon{Lat: 60, Lon: 10}, wantSign: 1},
		{name: "due south is negative", p: LatLon{Lat: 40, Lon: 10}, wantSign: -1},
		{name: "same point is non-negative", p: center, wantSign: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := SignedDistance(center, tt.p)
			if tt.p == center {
				if got != 0 {
					t.Errorf("SignedDistance to self = %v, want 0", got)
				}
				return
			}
			if math.Signbit(got) != (tt.wantSign < 0) {
				t.Errorf("SignedDistance = %v, want sign %v", got, tt.wantSign)
			}
			if math.Abs(math.Abs(got)-Haversine(center, tt.p)) > 1e-9 {
				t.Errorf("|SignedDistance| = %v != Haversine %v", math.Abs(got), Haversine(center, tt.p))
			}
		})
	}
}

func TestSignedDistanceAntimeridian(t *testing.T) {
	// A point just across the antimeridian to the east must be positive.
	center := LatLon{Lat: 0, Lon: 175}
	east := LatLon{Lat: 0, Lon: -175} // 10 degrees east the short way
	if got := SignedDistance(center, east); got <= 0 {
		t.Errorf("SignedDistance across antimeridian = %v, want positive", got)
	}
}

func TestDispersionSymmetricIsZero(t *testing.T) {
	pts := []LatLon{
		{Lat: 0, Lon: -10},
		{Lat: 0, Lon: 10},
	}
	d, ok := Dispersion(pts)
	if !ok {
		t.Fatal("not ok")
	}
	if d > 1 { // within a km of perfect symmetry
		t.Errorf("Dispersion of symmetric pair = %v km, want about 0", d)
	}
}

func TestDispersionAsymmetric(t *testing.T) {
	// A meridian arrangement with a far-north outlier: the spherical
	// centroid does not balance great-circle distances, so the signed sum
	// is clearly nonzero. (Collinear symmetric layouts balance to ~0 —
	// which is why the paper observed so many zero dispersions.)
	pts := []LatLon{
		{Lat: 0, Lon: 0},
		{Lat: 10, Lon: 0},
		{Lat: 80, Lon: 0},
	}
	d, ok := Dispersion(pts)
	if !ok {
		t.Fatal("not ok")
	}
	if d < 100 {
		t.Errorf("Dispersion of asymmetric layout = %v km, want large", d)
	}
}

func TestDispersionEmpty(t *testing.T) {
	if _, ok := Dispersion(nil); ok {
		t.Error("Dispersion(nil) reported ok")
	}
	if _, ok := MeanDistanceToCenter(nil); ok {
		t.Error("MeanDistanceToCenter(nil) reported ok")
	}
}

func TestMeanDistanceToCenter(t *testing.T) {
	pts := []LatLon{
		{Lat: 0, Lon: -1},
		{Lat: 0, Lon: 1},
	}
	m, ok := MeanDistanceToCenter(pts)
	if !ok {
		t.Fatal("not ok")
	}
	want := Haversine(LatLon{}, LatLon{Lat: 0, Lon: 1})
	if math.Abs(m-want) > 0.5 {
		t.Errorf("MeanDistanceToCenter = %v, want about %v", m, want)
	}
}

// Property: haversine is a metric-ish function — non-negative, symmetric,
// zero on identical points, bounded by half the Earth's circumference.
func TestHaversineProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := LatLon{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
		b := LatLon{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
		d := Haversine(a, b)
		if d < 0 || d > math.Pi*EarthRadiusKm+1 {
			return false
		}
		if math.Abs(d-Haversine(b, a)) > 1e-9 {
			return false
		}
		return Haversine(a, a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: |SignedDistance| always equals Haversine distance.
func TestSignedDistanceMagnitudeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := LatLon{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
		p := LatLon{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
		return math.Abs(math.Abs(SignedDistance(c, p))-Haversine(c, p)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
