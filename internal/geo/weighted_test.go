package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightedCenterEqualWeightsMatchesCenter(t *testing.T) {
	a := LatLon{Lat: 40, Lon: -70}
	b := LatLon{Lat: 50, Lon: 10}
	wc, ok := WeightedCenter(a, b, 1, 1)
	if !ok {
		t.Fatal("not ok")
	}
	c, ok := Center([]LatLon{a, b})
	if !ok {
		t.Fatal("not ok")
	}
	if Haversine(wc, c) > 0.001 {
		t.Errorf("WeightedCenter = %v, Center = %v, want identical", wc, c)
	}
}

func TestWeightedCenterPullsTowardHeavier(t *testing.T) {
	a := LatLon{Lat: 0, Lon: 0}
	b := LatLon{Lat: 0, Lon: 40}
	wc, ok := WeightedCenter(a, b, 9, 1)
	if !ok {
		t.Fatal("not ok")
	}
	if da, db := Haversine(wc, a), Haversine(wc, b); da >= db {
		t.Errorf("center %v not closer to the heavy point: %v vs %v", wc, da, db)
	}
}

func TestWeightedCenterDegenerateWeights(t *testing.T) {
	a := LatLon{Lat: 10, Lon: 10}
	b := LatLon{Lat: 20, Lon: 20}
	if _, ok := WeightedCenter(a, b, 0, 0); ok {
		t.Error("zero total weight reported ok")
	}
	wc, ok := WeightedCenter(a, b, 5, 0)
	if !ok {
		t.Fatal("not ok")
	}
	if Haversine(wc, a) > 0.001 {
		t.Errorf("all-weight-on-a center = %v, want %v", wc, a)
	}
}

func TestWeightedCenterAntipodal(t *testing.T) {
	a := LatLon{Lat: 0, Lon: 0}
	b := LatLon{Lat: 0, Lon: 180}
	wc, ok := WeightedCenter(a, b, 1, 1)
	if !ok {
		t.Fatal("not ok")
	}
	if !wc.Valid() {
		t.Errorf("antipodal weighted center invalid: %v", wc)
	}
}

// Property: WeightedCenter with integer weights equals Center over the
// equivalent multiset of points.
func TestWeightedCenterMatchesMultisetCenter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*340 - 170}
		b := LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*340 - 170}
		wa := 1 + rng.Intn(20)
		wb := 1 + rng.Intn(20)
		wc, ok1 := WeightedCenter(a, b, float64(wa), float64(wb))
		var pts []LatLon
		for i := 0; i < wa; i++ {
			pts = append(pts, a)
		}
		for i := 0; i < wb; i++ {
			pts = append(pts, b)
		}
		c, ok2 := Center(pts)
		if ok1 != ok2 {
			return false
		}
		return Haversine(wc, c) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the weighted center lies on the shorter great-circle arc, so
// its distance to each endpoint never exceeds their separation.
func TestWeightedCenterBetweenness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*340 - 170}
		b := LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*340 - 170}
		w := rng.Float64()*9 + 0.5
		wc, ok := WeightedCenter(a, b, w, 10-w)
		if !ok {
			return false
		}
		sep := Haversine(a, b)
		return Haversine(wc, a) <= sep+1e-6 && Haversine(wc, b) <= sep+1e-6 &&
			!math.IsNaN(wc.Lat) && !math.IsNaN(wc.Lon)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
