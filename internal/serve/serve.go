// Package serve exposes botscope analyses over HTTP as JSON — the
// integration surface a monitoring operation would embed in dashboards.
// The batch routes are read-only over a workload loaded once; the
// streaming routes (POST /api/ingest, GET /api/live/*) feed and query a
// bounded-memory online analyzer for live telemetry.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/experiments"
	"botscope/internal/monitor"
	"botscope/internal/stream"
	"botscope/internal/timeseries"
)

// shutdownGrace bounds how long in-flight requests may run after the serve
// context is cancelled.
const shutdownGrace = 10 * time.Second

// Server serves analysis endpoints over one workload plus a live ingest
// stream.
type Server struct {
	store     *dataset.Store
	collector *monitor.Collector
	workload  *experiments.Workload
	live      *stream.Analyzer
	mux       *http.ServeMux
	h         http.Handler

	// Ingest telemetry: how the live feed is being driven, independent of
	// the event-time analytics the stream analyzer owns.
	statsMu        sync.Mutex
	ingestRequests int       // guarded by statsMu
	ingestRecords  int       // guarded by statsMu
	ingestRejected int       // guarded by statsMu
	lastIngest     time.Time // guarded by statsMu
}

// New builds a server for the workload; scale feeds the experiment layer's
// count expectations (1.0 = paper size). The live analyzer starts empty
// and fills through POST /api/ingest.
func New(store *dataset.Store, scale float64) *Server {
	s := &Server{
		store:     store,
		collector: monitor.NewCollector(store),
		workload:  experiments.FromStore(store, scale),
		live:      stream.New(),
		mux:       http.NewServeMux(),
	}
	s.routes()
	s.h = jsonErrors(s.mux)
	return s
}

// Live returns the server's streaming analyzer (for in-process feeders).
func (s *Server) Live() *stream.Analyzer { return s.live }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.h.ServeHTTP(w, r) }

// LiveSnapshot implements LiveSource over the in-process analyzer: a
// single process is never degraded.
func (s *Server) LiveSnapshot(context.Context) (stream.Snapshot, []int, error) {
	return s.live.Snapshot(), nil, nil
}

// LiveIngest implements LiveSource: it streams JSONL records from body
// into the live analyzer without materializing them. Records preceding a
// malformed or out-of-order record stay applied.
func (s *Server) LiveIngest(_ context.Context, body io.Reader) (int, int, error) {
	ingested := 0
	err := dataset.DecodeJSONL(body, func(a *dataset.Attack) error {
		if err := s.live.Ingest(a); err != nil {
			return err
		}
		ingested++
		return nil
	})
	return ingested, s.live.Snapshot().Ingested, err
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/summary", s.handleSummary)
	s.mux.HandleFunc("GET /api/protocols", s.handleProtocols)
	s.mux.HandleFunc("GET /api/daily", s.handleDaily)
	s.mux.HandleFunc("GET /api/intervals", s.handleIntervals)
	s.mux.HandleFunc("GET /api/durations", s.handleDurations)
	s.mux.HandleFunc("GET /api/families", s.handleFamilies)
	s.mux.HandleFunc("GET /api/family/{name}/dispersion", s.handleDispersion)
	s.mux.HandleFunc("GET /api/family/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("GET /api/family/{name}/targets", s.handleTargets)
	s.mux.HandleFunc("GET /api/collaborations", s.handleCollaborations)
	s.mux.HandleFunc("GET /api/chains", s.handleChains)
	s.mux.HandleFunc("GET /api/experiments", s.handleExperimentList)
	s.mux.HandleFunc("GET /api/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("POST /api/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /api/live/summary", s.handleLiveSummary)
	s.mux.HandleFunc("GET /api/live/daily", s.handleLiveDaily)
	s.mux.HandleFunc("GET /api/live/intervals", s.handleLiveIntervals)
	s.mux.HandleFunc("GET /api/live/durations", s.handleLiveDurations)
	s.mux.HandleFunc("GET /api/live/load", s.handleLiveLoad)
	s.mux.HandleFunc("GET /api/live/collaborations", s.handleLiveCollaborations)
	s.mux.HandleFunc("GET /api/live/ingeststats", s.handleIngestStats)
	s.mux.HandleFunc("GET /healthz", handleHealthz)
}

// writeJSON encodes v with a 200 status.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing sensible left to do.
		return
	}
}

// writeError encodes a JSON error payload.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleSummary(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.store.Summary())
}

func (s *Server) handleProtocols(w http.ResponseWriter, _ *http.Request) {
	rows := core.ProtocolBreakdown(s.store)
	type row struct {
		Protocol string `json:"protocol"`
		Count    int    `json:"count"`
	}
	out := make([]row, len(rows))
	for i, r := range rows {
		out[i] = row{Protocol: r.Category.String(), Count: r.Count}
	}
	writeJSON(w, out)
}

func (s *Server) handleDaily(w http.ResponseWriter, _ *http.Request) {
	st, err := core.DailyDistribution(s.store)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	type day struct {
		Day   string `json:"day"`
		Count int    `json:"count"`
	}
	out := struct {
		Average float64 `json:"average"`
		Max     int     `json:"max"`
		MaxDay  string  `json:"max_day"`
		Days    []day   `json:"days"`
	}{Average: st.Average, Max: st.Max, MaxDay: st.MaxDay.Format("2006-01-02")}
	for _, d := range st.Days {
		out.Days = append(out.Days, day{Day: d.Day.Format("2006-01-02"), Count: d.Count})
	}
	writeJSON(w, out)
}

func (s *Server) handleIntervals(w http.ResponseWriter, r *http.Request) {
	gaps := core.AllIntervals(s.store)
	if fam := r.URL.Query().Get("family"); fam != "" {
		gaps = core.FamilyIntervals(s.store, dataset.Family(fam))
	}
	st, err := core.AnalyzeIntervals(gaps)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleDurations(w http.ResponseWriter, _ *http.Request) {
	st, err := core.AnalyzeDurations(core.Durations(s.store))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleFamilies(w http.ResponseWriter, _ *http.Request) {
	type famRow struct {
		Family  string `json:"family"`
		Attacks int    `json:"attacks"`
	}
	var out []famRow
	for _, fc := range s.store.FamilyCounts() {
		out = append(out, famRow{Family: string(fc.Family), Attacks: fc.Attacks})
	}
	writeJSON(w, out)
}

// family resolves the path's family and 404s when it launched no attacks.
func (s *Server) family(w http.ResponseWriter, r *http.Request) (dataset.Family, bool) {
	f := dataset.Family(r.PathValue("name"))
	if len(s.store.RowsByFamily(f)) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("family %q has no attacks", f))
		return "", false
	}
	return f, true
}

func (s *Server) handleDispersion(w http.ResponseWriter, r *http.Request) {
	f, ok := s.family(w, r)
	if !ok {
		return
	}
	prof, err := s.workload.Disp().Profile(f)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, prof)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	f, ok := s.family(w, r)
	if !ok {
		return
	}
	testPoints := 0
	if v := r.URL.Query().Get("test_points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid test_points %q", v))
			return
		}
		testPoints = n
	}
	res, err := s.workload.Disp().Predict(f, core.PredictConfig{
		Order:      timeseries.Order{P: 1},
		TestPoints: testPoints,
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Truth/prediction series can be long; expose the scores plus tails.
	const tail = 50
	trim := func(xs []float64) []float64 {
		if len(xs) > tail {
			return xs[len(xs)-tail:]
		}
		return xs
	}
	writeJSON(w, struct {
		Family     string    `json:"family"`
		Order      string    `json:"order"`
		Similarity float64   `json:"similarity"`
		MeanPred   float64   `json:"mean_pred"`
		MeanTruth  float64   `json:"mean_truth"`
		TruthTail  []float64 `json:"truth_tail"`
		PredTail   []float64 `json:"pred_tail"`
	}{
		Family:     string(res.Family),
		Order:      res.Order.String(),
		Similarity: res.Similarity,
		MeanPred:   res.MeanPred,
		MeanTruth:  res.MeanTruth,
		TruthTail:  trim(res.Truth),
		PredTail:   trim(res.Predicted),
	})
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	f, ok := s.family(w, r)
	if !ok {
		return
	}
	writeJSON(w, core.TargetCountries(s.store, f, 10))
}

func (s *Server) handleCollaborations(w http.ResponseWriter, _ *http.Request) {
	st := core.AnalyzeCollaborationsFrom(s.workload.Collabs())
	writeJSON(w, struct {
		TotalIntra  int                    `json:"total_intra"`
		TotalInter  int                    `json:"total_inter"`
		MeanBotnets float64                `json:"mean_botnets"`
		Intra       map[dataset.Family]int `json:"intra"`
		Inter       map[dataset.Family]int `json:"inter"`
		Pairs       map[string]int         `json:"pairs"`
	}{
		TotalIntra:  st.TotalIntra,
		TotalInter:  st.TotalInter,
		MeanBotnets: st.MeanBotnets,
		Intra:       st.Intra,
		Inter:       st.Inter,
		Pairs:       st.PairCounts,
	})
}

func (s *Server) handleChains(w http.ResponseWriter, _ *http.Request) {
	st := core.AnalyzeChains(s.store)
	out := struct {
		Chains        int     `json:"chains"`
		FracWithin10s float64 `json:"frac_within_10s"`
		FracWithin30s float64 `json:"frac_within_30s"`
		LongestLength int     `json:"longest_length"`
		LongestFamily string  `json:"longest_family"`
	}{
		Chains:        len(st.Chains),
		FracWithin10s: st.FracWithin10s,
		FracWithin30s: st.FracWithin30s,
	}
	if st.Longest != nil {
		out.LongestLength = st.Longest.Length()
		out.LongestFamily = string(st.Longest.Family)
	}
	writeJSON(w, out)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	var ids []string
	for _, e := range s.workload.All() {
		ids = append(ids, e.ID)
	}
	writeJSON(w, ids)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, e := range s.workload.All() {
		if e.ID != id {
			continue
		}
		res, err := e.Run()
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, res)
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
}

// handleIngest streams JSONL attack records from the request body into the
// live analyzer without materializing them. The response reports how many
// records this request ingested and the analyzer's running total. A
// malformed or out-of-order record aborts the request with 422 after the
// preceding records have been applied.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ingested, total, err := s.LiveIngest(r.Context(), r.Body)
	s.recordIngest(ingested, err != nil)
	if err != nil {
		writeIngestError(w, err, ingested, total)
		return
	}
	writeJSON(w, map[string]any{"ingested": ingested, "total": total})
}

// recordIngest folds one POST /api/ingest outcome into the telemetry
// counters.
func (s *Server) recordIngest(records int, rejected bool) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.ingestRequests++
	s.ingestRecords += records
	if rejected {
		s.ingestRejected++
	}
	s.lastIngest = time.Now()
}

// handleIngestStats reports feed-driving telemetry: requests served,
// records accepted, rejected requests, and the wall-clock time of the last
// ingest call (zero until the first one).
func (s *Server) handleIngestStats(w http.ResponseWriter, _ *http.Request) {
	s.statsMu.Lock()
	requests, records, rejected, last := s.ingestRequests, s.ingestRecords, s.ingestRejected, s.lastIngest
	s.statsMu.Unlock()
	writeIngestStats(w, requests, records, rejected, last)
}

// liveSnapshot fetches the current snapshot, 422-ing when nothing has been
// ingested yet (mirroring the batch handlers' empty-workload behaviour).
func (s *Server) liveSnapshot(w http.ResponseWriter) (stream.Snapshot, bool) {
	snap := s.live.Snapshot()
	if snap.Ingested == 0 {
		writeError(w, http.StatusUnprocessableEntity, errNoIngest)
		return snap, false
	}
	return snap, true
}

// The live handlers delegate to the shared writeLive* formatters in
// live.go — the same functions the cluster LiveServer uses — so both
// deployment shapes emit byte-identical bodies by construction.

func (s *Server) handleLiveSummary(w http.ResponseWriter, _ *http.Request) {
	writeLiveSummary(w, s.live.Snapshot())
}

func (s *Server) handleLiveDaily(w http.ResponseWriter, _ *http.Request) {
	snap, ok := s.liveSnapshot(w)
	if !ok {
		return
	}
	writeLiveDaily(w, snap)
}

func (s *Server) handleLiveIntervals(w http.ResponseWriter, _ *http.Request) {
	snap, ok := s.liveSnapshot(w)
	if !ok {
		return
	}
	writeLiveIntervals(w, snap)
}

func (s *Server) handleLiveDurations(w http.ResponseWriter, _ *http.Request) {
	snap, ok := s.liveSnapshot(w)
	if !ok {
		return
	}
	writeLiveDurations(w, snap)
}

func (s *Server) handleLiveLoad(w http.ResponseWriter, _ *http.Request) {
	snap, ok := s.liveSnapshot(w)
	if !ok {
		return
	}
	writeLiveLoad(w, snap)
}

func (s *Server) handleLiveCollaborations(w http.ResponseWriter, _ *http.Request) {
	snap, ok := s.liveSnapshot(w)
	if !ok {
		return
	}
	writeLiveCollaborations(w, snap)
}

// ListenAndServe runs the server with sane timeouts until the listener
// fails. It is the non-cancellable entry point; long-lived callers should
// prefer ListenAndServeContext.
func (s *Server) ListenAndServe(addr string) error {
	return s.ListenAndServeContext(context.Background(), addr) //botvet:ignore ctxflow audited: documented non-cancellable entry point
}

// ListenAndServeContext runs the server until the listener fails or ctx is
// cancelled. On cancellation it shuts down gracefully, letting in-flight
// requests finish within shutdownGrace, and returns nil.
func (s *Server) ListenAndServeContext(ctx context.Context, addr string) error {
	return listenAndServe(ctx, addr, s)
}
