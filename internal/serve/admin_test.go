package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"botscope/internal/stream"
)

// ctxAdmin records the context the admin surface was called with.
type ctxAdmin struct{ got context.Context }

func (a *ctxAdmin) ClusterStatus() any { return map[string]any{} }
func (a *ctxAdmin) ShardLeave(ctx context.Context, id int) error {
	a.got = ctx
	return nil
}
func (a *ctxAdmin) ShardJoin(ctx context.Context, id int) error {
	a.got = ctx
	return nil
}

// nullSource is the minimal live source the admin routes need to mount.
type nullSource struct{}

func (nullSource) LiveSnapshot(ctx context.Context) (stream.Snapshot, []int, error) {
	return stream.Snapshot{}, nil, errNoIngest
}
func (nullSource) LiveIngest(ctx context.Context, body io.Reader) (int, int, error) {
	return 0, 0, nil
}

type ctxKey struct{}

// TestShardChangeThreadsRequestContext pins the edge contract: the admin
// handlers hand the request's own context to the cluster, so its deadline
// and disconnect propagate into the shard RPCs.
func TestShardChangeThreadsRequestContext(t *testing.T) {
	for _, verb := range []AdminVerb{AdminLeave, AdminJoin} {
		a := &ctxAdmin{}
		live := NewLiveServer(nullSource{}, WithClusterAdmin(a))

		ctx := context.WithValue(context.Background(), ctxKey{}, "edge")
		req := httptest.NewRequest(http.MethodPost, "/api/cluster/shards/7/"+string(verb), nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		live.ServeHTTP(rec, req)

		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", verb, rec.Code, rec.Body.String())
		}
		if a.got == nil || a.got.Value(ctxKey{}) != "edge" {
			t.Errorf("%s: admin did not receive the request's context", verb)
		}
	}
}
