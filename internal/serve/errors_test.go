package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// stubAdmin backs the cluster admin routes for shape testing.
type stubAdmin struct{}

func (stubAdmin) ClusterStatus() any { return map[string]any{"shards": []int{}} }
func (stubAdmin) ShardLeave(ctx context.Context, id int) error {
	return fmt.Errorf("shard %d not connected", id)
}
func (stubAdmin) ShardJoin(ctx context.Context, id int) error {
	return fmt.Errorf("shard %d has no known address", id)
}

// TestErrorShapesAllRoutes drives every route into a failure and checks
// the contract: the response is application/json with a non-empty "error"
// string, regardless of whether the failure came from a handler, the
// mux's 404/405 machinery, or the live plane. Routes without an
// addressable failure of their own are exercised through the method
// check they all share.
func TestErrorShapesAllRoutes(t *testing.T) {
	// A fresh server so the live plane is in its pre-ingest state.
	s := New(testServer(t).store, 0.03)
	live := NewLiveServer(s, WithClusterAdmin(stubAdmin{}))

	cases := []struct {
		name   string
		h      http.Handler
		method string
		path   string
		body   string
		want   int
	}{
		// Handler-level failures.
		{"intervals unknown family", s, "GET", "/api/intervals?family=mirai", "", 404},
		{"dispersion unknown family", s, "GET", "/api/family/mirai/dispersion", "", 404},
		{"predict unknown family", s, "GET", "/api/family/mirai/predict", "", 404},
		{"predict bad test_points", s, "GET", "/api/family/dirtjumper/predict?test_points=bogus", "", 400},
		{"targets unknown family", s, "GET", "/api/family/mirai/targets", "", 404},
		{"experiment unknown id", s, "GET", "/api/experiments/nope", "", 404},
		{"ingest malformed payload", s, "POST", "/api/ingest", "{not json}\n", 422},
		{"live daily before ingest", s, "GET", "/api/live/daily", "", 422},
		{"live intervals before ingest", s, "GET", "/api/live/intervals", "", 422},
		{"live durations before ingest", s, "GET", "/api/live/durations", "", 422},
		{"live load before ingest", s, "GET", "/api/live/load", "", 422},
		{"live collaborations before ingest", s, "GET", "/api/live/collaborations", "", 422},

		// Mux-level failures rewritten by the jsonErrors middleware.
		{"unknown route", s, "GET", "/api/nope", "", 404},
		{"summary wrong method", s, "POST", "/api/summary", "", 405},
		{"protocols wrong method", s, "POST", "/api/protocols", "", 405},
		{"daily wrong method", s, "POST", "/api/daily", "", 405},
		{"durations wrong method", s, "POST", "/api/durations", "", 405},
		{"families wrong method", s, "POST", "/api/families", "", 405},
		{"collaborations wrong method", s, "POST", "/api/collaborations", "", 405},
		{"chains wrong method", s, "POST", "/api/chains", "", 405},
		{"experiments wrong method", s, "POST", "/api/experiments", "", 405},
		{"ingest wrong method", s, "GET", "/api/ingest", "", 405},
		{"live summary wrong method", s, "POST", "/api/live/summary", "", 405},
		{"ingeststats wrong method", s, "POST", "/api/live/ingeststats", "", 405},
		{"healthz wrong method", s, "POST", "/healthz", "", 405},

		// The live-plane server shares the contract, including its admin
		// routes.
		{"cluster: live daily before ingest", live, "GET", "/api/live/daily", "", 422},
		{"cluster: unknown route", live, "GET", "/api/nope", "", 404},
		{"cluster: ingest wrong method", live, "GET", "/api/ingest", "", 405},
		{"cluster: shard id not a number", live, "POST", "/api/cluster/shards/abc/leave", "", 400},
		{"cluster: leave fails", live, "POST", "/api/cluster/shards/7/leave", "", 422},
		{"cluster: join fails", live, "POST", "/api/cluster/shards/7/join", "", 422},
		{"cluster: status wrong method", live, "POST", "/api/cluster/status", "", 405},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req := httptest.NewRequest(tc.method, tc.path, body)
			rec := httptest.NewRecorder()
			tc.h.ServeHTTP(rec, req)

			if rec.Code != tc.want {
				t.Fatalf("%s %s = %d, want %d (body: %.200s)", tc.method, tc.path, rec.Code, tc.want, rec.Body.String())
			}
			ct := rec.Header().Get("Content-Type")
			if !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want application/json (body: %.200s)", ct, rec.Body.String())
			}
			var payload struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
				t.Fatalf("body is not JSON: %v (%.200s)", err, rec.Body.String())
			}
			if payload.Error == "" {
				t.Fatalf("missing error field: %.200s", rec.Body.String())
			}
		})
	}
}
