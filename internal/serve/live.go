package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"botscope/internal/stream"
)

// LiveSource is the live analytics plane behind the /api/live/* and
// /api/ingest routes. The single-process server backs it with one
// stream.Analyzer; a cluster frontend backs it with a deterministic merge
// over shard partials (internal/cluster implements this interface
// structurally — the signatures use only stdlib and stream types, so
// neither package imports the other).
//
// LiveSnapshot returns the current view plus the ids of shards whose data
// is missing or stale in it (always empty for a single process); the
// handlers surface those as X-Botscope-* degradation headers, never in
// the body, so response bodies stay byte-identical across deployments.
// LiveIngest applies a JSONL batch and reports (records applied by this
// call, running total).
type LiveSource interface {
	LiveSnapshot(ctx context.Context) (stream.Snapshot, []int, error)
	LiveIngest(ctx context.Context, body io.Reader) (ingested, total int, err error)
}

// ClusterAdmin is the optional management surface a clustered live source
// exposes: routing status plus graceful shard leave/join. Leave and join
// receive the admin request's context so its deadline and disconnect
// propagate into the shard RPCs instead of being dropped at this boundary.
type ClusterAdmin interface {
	ClusterStatus() any
	ShardLeave(ctx context.Context, id int) error
	ShardJoin(ctx context.Context, id int) error
}

// AdminVerb names one cluster shard-management action. The set is closed:
// botvet's wireframe analyzer keeps every switch over an AdminVerb
// exhaustive, so a new verb cannot reach the mux without every dispatch
// point handling it.
//
//botvet:wire
type AdminVerb string

// Cluster management verbs, as they appear in the route path.
const (
	AdminLeave AdminVerb = "leave"
	AdminJoin  AdminVerb = "join"
)

// RateLimiter admits or refuses a request for a client key, returning a
// retry hint when refused. internal/cluster's token bucket implements it.
type RateLimiter interface {
	Allow(key string) (bool, time.Duration)
}

// Degradation headers: partial results are flagged out-of-band so bodies
// remain byte-identical to a fully healthy (or single-process) server.
const (
	// HeaderDegraded is "true" when any shard's data is missing or stale.
	HeaderDegraded = "X-Botscope-Degraded"
	// HeaderMissingShards lists the affected shard ids, comma-separated.
	HeaderMissingShards = "X-Botscope-Missing-Shards"
)

// errNoIngest is the shared empty-feed error, identical on every
// deployment shape.
var errNoIngest = errors.New("serve: no attacks ingested yet")

// LiveServer serves the live plane only — ingest, live queries, health,
// and (when the source supports it) cluster administration. It is the
// HTTP face of a cluster frontend: all analytics state lives behind the
// LiveSource.
type LiveServer struct {
	src   LiveSource
	admin ClusterAdmin
	limit RateLimiter
	mux   *http.ServeMux
	h     http.Handler

	statsMu        sync.Mutex
	ingestRequests int       // guarded by statsMu
	ingestRecords  int       // guarded by statsMu
	ingestRejected int       // guarded by statsMu
	lastIngest     time.Time // guarded by statsMu
}

// LiveOption configures a LiveServer.
type LiveOption func(*LiveServer)

// WithClusterAdmin mounts the /api/cluster/* management routes.
func WithClusterAdmin(a ClusterAdmin) LiveOption {
	return func(s *LiveServer) { s.admin = a }
}

// WithRateLimiter enforces a per-client admission limit on every /api/*
// route; refused requests get 429 with a Retry-After hint.
func WithRateLimiter(l RateLimiter) LiveOption {
	return func(s *LiveServer) { s.limit = l }
}

// NewLiveServer builds the live-plane HTTP server over src.
func NewLiveServer(src LiveSource, opts ...LiveOption) *LiveServer {
	s := &LiveServer{src: src, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	s.routes()
	s.h = jsonErrors(http.HandlerFunc(s.limited))
	return s
}

// ServeHTTP implements http.Handler.
func (s *LiveServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.h.ServeHTTP(w, r) }

// ListenAndServeContext runs the server until ctx is cancelled (graceful)
// or the listener fails.
func (s *LiveServer) ListenAndServeContext(ctx context.Context, addr string) error {
	return listenAndServe(ctx, addr, s)
}

func (s *LiveServer) routes() {
	s.mux.HandleFunc("POST /api/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /api/live/summary", s.handleLive(writeLiveSummary))
	s.mux.HandleFunc("GET /api/live/daily", s.handleLiveGuarded(writeLiveDaily))
	s.mux.HandleFunc("GET /api/live/intervals", s.handleLiveGuarded(writeLiveIntervals))
	s.mux.HandleFunc("GET /api/live/durations", s.handleLiveGuarded(writeLiveDurations))
	s.mux.HandleFunc("GET /api/live/load", s.handleLiveGuarded(writeLiveLoad))
	s.mux.HandleFunc("GET /api/live/collaborations", s.handleLiveGuarded(writeLiveCollaborations))
	s.mux.HandleFunc("GET /api/live/ingeststats", s.handleIngestStats)
	s.mux.HandleFunc("GET /healthz", handleHealthz)
	if s.admin != nil {
		s.mux.HandleFunc("GET /api/cluster/status", s.handleClusterStatus)
		s.mux.HandleFunc("POST /api/cluster/shards/{id}/leave", s.handleShardChange(AdminLeave))
		s.mux.HandleFunc("POST /api/cluster/shards/{id}/join", s.handleShardChange(AdminJoin))
	}
}

// limited applies the per-client admission check in front of the mux.
func (s *LiveServer) limited(w http.ResponseWriter, r *http.Request) {
	if s.limit != nil && strings.HasPrefix(r.URL.Path, "/api/") {
		key := r.RemoteAddr
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			key = host
		}
		if ok, retry := s.limit.Allow(key); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())+1))
			writeError(w, http.StatusTooManyRequests, fmt.Errorf("serve: rate limit exceeded"))
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

// snapshot fetches the merged view, writes degradation headers, and maps
// source failures; ok is false when a response was already written.
func (s *LiveServer) snapshot(w http.ResponseWriter, r *http.Request) (stream.Snapshot, bool) {
	snap, degraded, err := s.src.LiveSnapshot(r.Context())
	if err != nil {
		writeSourceError(w, err, http.StatusServiceUnavailable)
		return snap, false
	}
	setDegraded(w, degraded)
	return snap, true
}

// setDegraded flags partial results out-of-band.
func setDegraded(w http.ResponseWriter, degraded []int) {
	if len(degraded) == 0 {
		return
	}
	ids := make([]string, len(degraded))
	for i, id := range degraded {
		ids[i] = strconv.Itoa(id)
	}
	w.Header().Set(HeaderDegraded, "true")
	w.Header().Set(HeaderMissingShards, strings.Join(ids, ","))
}

// handleLive serves an endpoint that renders even an empty feed.
func (s *LiveServer) handleLive(write func(http.ResponseWriter, stream.Snapshot)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap, ok := s.snapshot(w, r)
		if !ok {
			return
		}
		write(w, snap)
	}
}

// handleLiveGuarded serves an endpoint that 422s until the first ingest,
// mirroring the single-process server.
func (s *LiveServer) handleLiveGuarded(write func(http.ResponseWriter, stream.Snapshot)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap, ok := s.snapshot(w, r)
		if !ok {
			return
		}
		if snap.Ingested == 0 {
			writeError(w, http.StatusUnprocessableEntity, errNoIngest)
			return
		}
		write(w, snap)
	}
}

func (s *LiveServer) handleIngest(w http.ResponseWriter, r *http.Request) {
	ingested, total, err := s.src.LiveIngest(r.Context(), r.Body)
	s.recordIngest(ingested, err != nil)
	if err != nil {
		writeIngestError(w, err, ingested, total)
		return
	}
	writeJSON(w, map[string]any{"ingested": ingested, "total": total})
}

func (s *LiveServer) recordIngest(records int, rejected bool) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.ingestRequests++
	s.ingestRecords += records
	if rejected {
		s.ingestRejected++
	}
	s.lastIngest = time.Now()
}

func (s *LiveServer) handleIngestStats(w http.ResponseWriter, _ *http.Request) {
	s.statsMu.Lock()
	requests, records, rejected, last := s.ingestRequests, s.ingestRecords, s.ingestRejected, s.lastIngest
	s.statsMu.Unlock()
	writeIngestStats(w, requests, records, rejected, last)
}

func (s *LiveServer) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.admin.ClusterStatus())
}

// handleShardChange adapts a management verb into a handler, threading the
// request's context into the shard RPC.
func (s *LiveServer) handleShardChange(verb AdminVerb) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid shard id %q", r.PathValue("id")))
			return
		}
		switch verb {
		case AdminLeave:
			err = s.admin.ShardLeave(r.Context(), id)
		case AdminJoin:
			err = s.admin.ShardJoin(r.Context(), id)
		}
		if err != nil {
			writeSourceError(w, err, http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, map[string]any{"ok": true, "shard": id})
	}
}

// writeSourceError maps a live-source failure onto HTTP: errors that
// carry their own status (the cluster's busy/unavailable signals) keep
// it, everything else gets fallback.
func writeSourceError(w http.ResponseWriter, err error, fallback int) {
	status := fallback
	var sc interface{ HTTPStatus() int }
	if errors.As(err, &sc) {
		status = sc.HTTPStatus()
	}
	var ra interface{ RetryAfter() int }
	if errors.As(err, &ra) && ra.RetryAfter() > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ra.RetryAfter()))
	}
	writeError(w, status, err)
}

// writeIngestError emits the ingest failure shape shared by every
// deployment: the error plus how much of the batch was applied. Errors
// carrying their own HTTP status (backpressure → 503) keep it; malformed
// or out-of-order input reports 422.
func writeIngestError(w http.ResponseWriter, err error, ingested, total int) {
	status := http.StatusUnprocessableEntity
	var sc interface{ HTTPStatus() int }
	if errors.As(err, &sc) {
		status = sc.HTTPStatus()
	}
	var ra interface{ RetryAfter() int }
	if errors.As(err, &ra) && ra.RetryAfter() > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ra.RetryAfter()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error":    err.Error(),
		"ingested": ingested,
		"total":    total,
	})
}

// handleHealthz is the shared liveness probe.
func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok"))
}

// writeIngestStats renders the feed-driving telemetry shared by both
// server shapes.
func writeIngestStats(w http.ResponseWriter, requests, records, rejected int, last time.Time) {
	out := struct {
		Requests   int    `json:"requests"`
		Records    int    `json:"records"`
		Rejected   int    `json:"rejected"`
		LastIngest string `json:"last_ingest,omitempty"`
	}{Requests: requests, Records: records, Rejected: rejected}
	if !last.IsZero() {
		out.LastIngest = last.UTC().Format(time.RFC3339)
	}
	writeJSON(w, out)
}

// The writeLive* functions format one snapshot for one route. Both the
// single-process server and the cluster LiveServer call exactly these, so
// their response bodies are byte-identical by construction.

func writeLiveSummary(w http.ResponseWriter, snap stream.Snapshot) {
	type protoRow struct {
		Protocol string `json:"protocol"`
		Count    int    `json:"count"`
	}
	out := struct {
		Ingested      int        `json:"ingested"`
		FirstStart    string     `json:"first_start,omitempty"`
		LastStart     string     `json:"last_start,omitempty"`
		ActiveAttacks int        `json:"active_attacks"`
		PeakActive    int        `json:"peak_active"`
		Protocols     []protoRow `json:"protocols"`
	}{Ingested: snap.Ingested, ActiveAttacks: snap.ActiveAttacks, PeakActive: snap.Load.Peak}
	if snap.Ingested > 0 {
		out.FirstStart = snap.FirstStart.UTC().Format(time.RFC3339)
		out.LastStart = snap.LastStart.UTC().Format(time.RFC3339)
	}
	for _, p := range snap.Protocols {
		out.Protocols = append(out.Protocols, protoRow{Protocol: p.Category.String(), Count: p.Count})
	}
	writeJSON(w, out)
}

func writeLiveDaily(w http.ResponseWriter, snap stream.Snapshot) {
	type day struct {
		Day   string `json:"day"`
		Count int    `json:"count"`
	}
	out := struct {
		Average float64 `json:"average"`
		Max     int     `json:"max"`
		MaxDay  string  `json:"max_day"`
		Days    []day   `json:"days"`
	}{Average: snap.Daily.Average, Max: snap.Daily.Max, MaxDay: snap.Daily.MaxDay.Format("2006-01-02")}
	for _, d := range snap.Daily.Days {
		out.Days = append(out.Days, day{Day: d.Day.Format("2006-01-02"), Count: d.Count})
	}
	writeJSON(w, out)
}

func writeLiveIntervals(w http.ResponseWriter, snap stream.Snapshot) {
	writeJSON(w, snap.Intervals)
}

func writeLiveDurations(w http.ResponseWriter, snap stream.Snapshot) {
	writeJSON(w, snap.Durations)
}

func writeLiveLoad(w http.ResponseWriter, snap stream.Snapshot) {
	writeJSON(w, struct {
		Active           int     `json:"active"`
		Peak             int     `json:"peak"`
		PeakTime         string  `json:"peak_time"`
		TimeWeightedMean float64 `json:"time_weighted_mean"`
	}{
		Active:           snap.ActiveAttacks,
		Peak:             snap.Load.Peak,
		PeakTime:         snap.Load.PeakTime.UTC().Format(time.RFC3339),
		TimeWeightedMean: snap.Load.TimeWeightedMean,
	})
}

func writeLiveCollaborations(w http.ResponseWriter, snap stream.Snapshot) {
	writeJSON(w, snap.Collaborations)
}

// jsonErrors wraps a handler so every error response leaves as JSON: any
// status >= 400 written without an application/json content type (the
// mux's built-in 404/405 text, for instance) is buffered and re-emitted
// as a structured {"error": ...} body.
func jsonErrors(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		jw := &jsonErrorWriter{rw: w}
		h.ServeHTTP(jw, r)
		jw.finish()
	})
}

type jsonErrorWriter struct {
	rw          http.ResponseWriter
	wroteHeader bool
	buffering   bool
	status      int
	buf         bytes.Buffer
}

func (w *jsonErrorWriter) Header() http.Header { return w.rw.Header() }

func (w *jsonErrorWriter) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	if code >= 400 && !strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.buffering = true
		w.status = code
		return
	}
	w.rw.WriteHeader(code)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.buffering {
		return w.buf.Write(b)
	}
	return w.rw.Write(b)
}

// finish rewrites a buffered plain error as the structured JSON shape.
func (w *jsonErrorWriter) finish() {
	if !w.buffering {
		return
	}
	msg := strings.TrimSpace(w.buf.String())
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Del("Content-Length")
	w.rw.WriteHeader(w.status)
	_ = json.NewEncoder(w.rw).Encode(map[string]string{"error": msg})
}

// listenAndServe runs handler h on addr with the package's timeouts until
// ctx cancels (graceful shutdown within shutdownGrace) or the listener
// fails.
func listenAndServe(ctx context.Context, addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// The shutdown deadline must outlive ctx — ctx's cancellation is what
	// triggered the shutdown — so detach explicitly rather than minting a
	// fresh background context.
	shutCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	<-errc // drain the http.ErrServerClosed from Serve
	return nil
}
