package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"botscope/internal/dataset"
	"botscope/internal/synth"
)

var (
	srvOnce  sync.Once
	srvValue *Server
	srvErr   error
)

// testServer shares one small workload across all handler tests.
func testServer(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() {
		var store *dataset.Store
		store, srvErr = synth.GenerateStore(synth.Config{Seed: 6, Scale: 0.03})
		if srvErr == nil {
			srvValue = New(store, 0.03)
		}
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srvValue
}

// get performs a request and decodes the JSON body into out.
func get(t *testing.T, s *Server, path string, wantStatus int, out any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body: %.200s)", path, rec.Code, wantStatus, rec.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s returned invalid JSON: %v", path, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

func TestSummaryEndpoint(t *testing.T) {
	s := testServer(t)
	var out struct {
		Attacks      int `json:"Attacks"`
		TrafficTypes int `json:"TrafficTypes"`
	}
	get(t, s, "/api/summary", http.StatusOK, &out)
	if out.Attacks == 0 || out.TrafficTypes != 7 {
		t.Errorf("summary = %+v", out)
	}
}

func TestProtocolsEndpoint(t *testing.T) {
	s := testServer(t)
	var out []struct {
		Protocol string `json:"protocol"`
		Count    int    `json:"count"`
	}
	get(t, s, "/api/protocols", http.StatusOK, &out)
	if len(out) == 0 || out[0].Protocol != "HTTP" {
		t.Errorf("protocols = %+v, want HTTP first", out)
	}
}

func TestDailyEndpoint(t *testing.T) {
	s := testServer(t)
	var out struct {
		Average float64 `json:"average"`
		Max     int     `json:"max"`
		Days    []struct {
			Day   string `json:"day"`
			Count int    `json:"count"`
		} `json:"days"`
	}
	get(t, s, "/api/daily", http.StatusOK, &out)
	if out.Max == 0 || len(out.Days) == 0 {
		t.Errorf("daily = %+v", out)
	}
}

func TestIntervalsEndpoint(t *testing.T) {
	s := testServer(t)
	var out struct {
		SimultaneousFrac float64 `json:"SimultaneousFrac"`
		N                int     `json:"N"`
	}
	get(t, s, "/api/intervals", http.StatusOK, &out)
	if out.N == 0 {
		t.Errorf("intervals = %+v", out)
	}
	get(t, s, "/api/intervals?family=dirtjumper", http.StatusOK, &out)
	if out.N == 0 {
		t.Errorf("family intervals = %+v", out)
	}
	get(t, s, "/api/intervals?family=mirai", http.StatusNotFound, nil)
}

func TestFamilyEndpoints(t *testing.T) {
	s := testServer(t)

	var fams []struct {
		Family  string `json:"family"`
		Attacks int    `json:"attacks"`
	}
	get(t, s, "/api/families", http.StatusOK, &fams)
	if len(fams) != 10 {
		t.Errorf("families = %d, want 10", len(fams))
	}

	var disp struct {
		SymmetricFrac float64 `json:"SymmetricFrac"`
		N             int     `json:"N"`
	}
	get(t, s, "/api/family/pandora/dispersion", http.StatusOK, &disp)
	if disp.N == 0 {
		t.Errorf("dispersion = %+v", disp)
	}
	get(t, s, "/api/family/mirai/dispersion", http.StatusNotFound, nil)

	var pred struct {
		Family     string    `json:"family"`
		Similarity float64   `json:"similarity"`
		TruthTail  []float64 `json:"truth_tail"`
	}
	get(t, s, "/api/family/dirtjumper/predict", http.StatusOK, &pred)
	if pred.Family != "dirtjumper" || len(pred.TruthTail) == 0 {
		t.Errorf("predict = %+v", pred)
	}
	if len(pred.TruthTail) > 50 {
		t.Errorf("truth tail = %d values, want trimmed to 50", len(pred.TruthTail))
	}
	get(t, s, "/api/family/dirtjumper/predict?test_points=oops", http.StatusBadRequest, nil)
	// Aldibot has too little dispersion data to fit at this scale.
	get(t, s, "/api/family/aldibot/predict", http.StatusUnprocessableEntity, nil)

	var targets struct {
		Countries int `json:"Countries"`
	}
	get(t, s, "/api/family/darkshell/targets", http.StatusOK, &targets)
	if targets.Countries == 0 {
		t.Errorf("targets = %+v", targets)
	}
}

func TestCollaborationsAndChainsEndpoints(t *testing.T) {
	s := testServer(t)
	var collab struct {
		TotalIntra int `json:"total_intra"`
	}
	get(t, s, "/api/collaborations", http.StatusOK, &collab)
	if collab.TotalIntra == 0 {
		t.Errorf("collaborations = %+v", collab)
	}
	var chains struct {
		Chains        int    `json:"chains"`
		LongestFamily string `json:"longest_family"`
	}
	get(t, s, "/api/chains", http.StatusOK, &chains)
	if chains.Chains == 0 || chains.LongestFamily == "" {
		t.Errorf("chains = %+v", chains)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	s := testServer(t)
	var ids []string
	get(t, s, "/api/experiments", http.StatusOK, &ids)
	if len(ids) < 25 {
		t.Errorf("experiment IDs = %d, want the full catalog", len(ids))
	}
	var res struct {
		ID      string `json:"ID"`
		Text    string `json:"Text"`
		Metrics []struct {
			Name     string  `json:"Name"`
			Measured float64 `json:"Measured"`
		} `json:"Metrics"`
	}
	get(t, s, "/api/experiments/Table%20II", http.StatusOK, &res)
	if res.ID != "Table II" || res.Text == "" || len(res.Metrics) == 0 {
		t.Errorf("experiment result = %+v", res)
	}
	get(t, s, "/api/experiments/Table%20XL", http.StatusNotFound, nil)
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/api/summary", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/summary = %d, want 405", rec.Code)
	}
}
