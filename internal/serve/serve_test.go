package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/synth"
)

var (
	srvOnce  sync.Once
	srvValue *Server
	srvErr   error
)

// testServer shares one small workload across all handler tests.
func testServer(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() {
		var store *dataset.Store
		store, srvErr = synth.GenerateStore(synth.Config{Seed: 6, Scale: 0.03})
		if srvErr == nil {
			srvValue = New(store, 0.03)
		}
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srvValue
}

// get performs a request and decodes the JSON body into out.
func get(t *testing.T, s *Server, path string, wantStatus int, out any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body: %.200s)", path, rec.Code, wantStatus, rec.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s returned invalid JSON: %v", path, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

func TestSummaryEndpoint(t *testing.T) {
	s := testServer(t)
	var out struct {
		Attacks      int `json:"Attacks"`
		TrafficTypes int `json:"TrafficTypes"`
	}
	get(t, s, "/api/summary", http.StatusOK, &out)
	if out.Attacks == 0 || out.TrafficTypes != 7 {
		t.Errorf("summary = %+v", out)
	}
}

func TestProtocolsEndpoint(t *testing.T) {
	s := testServer(t)
	var out []struct {
		Protocol string `json:"protocol"`
		Count    int    `json:"count"`
	}
	get(t, s, "/api/protocols", http.StatusOK, &out)
	if len(out) == 0 || out[0].Protocol != "HTTP" {
		t.Errorf("protocols = %+v, want HTTP first", out)
	}
}

func TestDailyEndpoint(t *testing.T) {
	s := testServer(t)
	var out struct {
		Average float64 `json:"average"`
		Max     int     `json:"max"`
		Days    []struct {
			Day   string `json:"day"`
			Count int    `json:"count"`
		} `json:"days"`
	}
	get(t, s, "/api/daily", http.StatusOK, &out)
	if out.Max == 0 || len(out.Days) == 0 {
		t.Errorf("daily = %+v", out)
	}
}

func TestIntervalsEndpoint(t *testing.T) {
	s := testServer(t)
	var out struct {
		SimultaneousFrac float64 `json:"SimultaneousFrac"`
		N                int     `json:"N"`
	}
	get(t, s, "/api/intervals", http.StatusOK, &out)
	if out.N == 0 {
		t.Errorf("intervals = %+v", out)
	}
	get(t, s, "/api/intervals?family=dirtjumper", http.StatusOK, &out)
	if out.N == 0 {
		t.Errorf("family intervals = %+v", out)
	}
	get(t, s, "/api/intervals?family=mirai", http.StatusNotFound, nil)
}

func TestFamilyEndpoints(t *testing.T) {
	s := testServer(t)

	var fams []struct {
		Family  string `json:"family"`
		Attacks int    `json:"attacks"`
	}
	get(t, s, "/api/families", http.StatusOK, &fams)
	if len(fams) != 10 {
		t.Errorf("families = %d, want 10", len(fams))
	}

	var disp struct {
		SymmetricFrac float64 `json:"SymmetricFrac"`
		N             int     `json:"N"`
	}
	get(t, s, "/api/family/pandora/dispersion", http.StatusOK, &disp)
	if disp.N == 0 {
		t.Errorf("dispersion = %+v", disp)
	}
	get(t, s, "/api/family/mirai/dispersion", http.StatusNotFound, nil)

	var pred struct {
		Family     string    `json:"family"`
		Similarity float64   `json:"similarity"`
		TruthTail  []float64 `json:"truth_tail"`
	}
	get(t, s, "/api/family/dirtjumper/predict", http.StatusOK, &pred)
	if pred.Family != "dirtjumper" || len(pred.TruthTail) == 0 {
		t.Errorf("predict = %+v", pred)
	}
	if len(pred.TruthTail) > 50 {
		t.Errorf("truth tail = %d values, want trimmed to 50", len(pred.TruthTail))
	}
	get(t, s, "/api/family/dirtjumper/predict?test_points=oops", http.StatusBadRequest, nil)
	// Aldibot has too little dispersion data to fit at this scale.
	get(t, s, "/api/family/aldibot/predict", http.StatusUnprocessableEntity, nil)

	var targets struct {
		Countries int `json:"Countries"`
	}
	get(t, s, "/api/family/darkshell/targets", http.StatusOK, &targets)
	if targets.Countries == 0 {
		t.Errorf("targets = %+v", targets)
	}
}

func TestCollaborationsAndChainsEndpoints(t *testing.T) {
	s := testServer(t)
	var collab struct {
		TotalIntra int `json:"total_intra"`
	}
	get(t, s, "/api/collaborations", http.StatusOK, &collab)
	if collab.TotalIntra == 0 {
		t.Errorf("collaborations = %+v", collab)
	}
	var chains struct {
		Chains        int    `json:"chains"`
		LongestFamily string `json:"longest_family"`
	}
	get(t, s, "/api/chains", http.StatusOK, &chains)
	if chains.Chains == 0 || chains.LongestFamily == "" {
		t.Errorf("chains = %+v", chains)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	s := testServer(t)
	var ids []string
	get(t, s, "/api/experiments", http.StatusOK, &ids)
	if len(ids) < 25 {
		t.Errorf("experiment IDs = %d, want the full catalog", len(ids))
	}
	var res struct {
		ID      string `json:"ID"`
		Text    string `json:"Text"`
		Metrics []struct {
			Name     string  `json:"Name"`
			Measured float64 `json:"Measured"`
		} `json:"Metrics"`
	}
	get(t, s, "/api/experiments/Table%20II", http.StatusOK, &res)
	if res.ID != "Table II" || res.Text == "" || len(res.Metrics) == 0 {
		t.Errorf("experiment result = %+v", res)
	}
	get(t, s, "/api/experiments/Table%20XL", http.StatusNotFound, nil)
}

// liveServer builds an unshared server: ingest tests mutate live state, so
// they must not reuse the sync.Once instance the read-only tests share.
func liveServer(t *testing.T) (*Server, []*dataset.Attack) {
	t.Helper()
	store, err := synth.GenerateStore(synth.Config{Seed: 6, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return New(store, 0.02), store.Attacks()
}

// post performs a POST request and decodes the JSON body into out.
func post(t *testing.T, s *Server, path, body string, wantStatus int, out any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("POST %s = %d, want %d (body: %.200s)", path, rec.Code, wantStatus, rec.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("POST %s returned invalid JSON: %v", path, err)
		}
	}
}

func TestIngestAndLiveEndpoints(t *testing.T) {
	s, attacks := liveServer(t)

	// Before any ingest: summary reports zero, analysis sections 422.
	var summary struct {
		Ingested      int `json:"ingested"`
		ActiveAttacks int `json:"active_attacks"`
		PeakActive    int `json:"peak_active"`
	}
	get(t, s, "/api/live/summary", http.StatusOK, &summary)
	if summary.Ingested != 0 {
		t.Fatalf("pre-ingest summary = %+v, want empty", summary)
	}
	for _, path := range []string{
		"/api/live/daily", "/api/live/intervals", "/api/live/durations",
		"/api/live/load", "/api/live/collaborations",
	} {
		get(t, s, path, http.StatusUnprocessableEntity, nil)
	}

	// Ingest the full workload as JSONL in two batches.
	var buf bytes.Buffer
	half := len(attacks) / 2
	if err := dataset.WriteJSONL(&buf, attacks[:half]); err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Ingested int `json:"ingested"`
		Total    int `json:"total"`
	}
	post(t, s, "/api/ingest", buf.String(), http.StatusOK, &resp)
	if resp.Ingested != half || resp.Total != half {
		t.Fatalf("first batch = %+v, want ingested=total=%d", resp, half)
	}
	buf.Reset()
	if err := dataset.WriteJSONL(&buf, attacks[half:]); err != nil {
		t.Fatal(err)
	}
	post(t, s, "/api/ingest", buf.String(), http.StatusOK, &resp)
	if resp.Total != len(attacks) {
		t.Fatalf("second batch total = %d, want %d", resp.Total, len(attacks))
	}

	// Live sections now match the batch endpoints over the same store.
	get(t, s, "/api/live/summary", http.StatusOK, &summary)
	if summary.Ingested != len(attacks) || summary.PeakActive == 0 {
		t.Errorf("post-ingest summary = %+v", summary)
	}
	var daily struct {
		Max  int `json:"max"`
		Days []struct {
			Day   string `json:"day"`
			Count int    `json:"count"`
		} `json:"days"`
	}
	get(t, s, "/api/live/daily", http.StatusOK, &daily)
	if daily.Max == 0 || len(daily.Days) == 0 {
		t.Errorf("live daily = %+v", daily)
	}
	var intervals struct {
		N int `json:"N"`
	}
	get(t, s, "/api/live/intervals", http.StatusOK, &intervals)
	if intervals.N != len(attacks)-1 {
		t.Errorf("live intervals N = %d, want %d", intervals.N, len(attacks)-1)
	}
	var load struct {
		Peak     int    `json:"peak"`
		PeakTime string `json:"peak_time"`
	}
	get(t, s, "/api/live/load", http.StatusOK, &load)
	if load.Peak == 0 || load.PeakTime == "" {
		t.Errorf("live load = %+v", load)
	}
	var collab struct {
		TotalIntra int `json:"total_intra"`
		TotalInter int `json:"total_inter"`
	}
	get(t, s, "/api/live/collaborations", http.StatusOK, &collab)
	if collab.TotalIntra == 0 {
		t.Errorf("live collaborations = %+v", collab)
	}
	get(t, s, "/api/live/durations", http.StatusOK, nil)
}

func TestIngestRejectsBadPayload(t *testing.T) {
	s, attacks := liveServer(t)

	var resp struct {
		Error    string `json:"error"`
		Ingested int    `json:"ingested"`
	}
	post(t, s, "/api/ingest", "{not json}\n", http.StatusUnprocessableEntity, &resp)
	if resp.Error == "" || resp.Ingested != 0 {
		t.Errorf("malformed payload response = %+v", resp)
	}

	// Out-of-order: ingest a later attack, then replay an earlier one.
	var buf bytes.Buffer
	if err := dataset.WriteJSONL(&buf, []*dataset.Attack{attacks[10]}); err != nil {
		t.Fatal(err)
	}
	post(t, s, "/api/ingest", buf.String(), http.StatusOK, nil)
	buf.Reset()
	if err := dataset.WriteJSONL(&buf, []*dataset.Attack{attacks[0]}); err != nil {
		t.Fatal(err)
	}
	post(t, s, "/api/ingest", buf.String(), http.StatusUnprocessableEntity, &resp)
	if resp.Error == "" {
		t.Errorf("out-of-order response = %+v, want error", resp)
	}
}

func TestListenAndServeContextShutdown(t *testing.T) {
	s, _ := liveServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServeContext(ctx, "127.0.0.1:0") }()
	// Give the listener a moment to come up, then trigger shutdown.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down after context cancellation")
	}
}

func TestListenAndServeContextBadAddr(t *testing.T) {
	s, _ := liveServer(t)
	if err := s.ListenAndServeContext(context.Background(), "256.0.0.1:bogus"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/api/summary", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/summary = %d, want 405", rec.Code)
	}
}

func TestIngestStatsEndpoint(t *testing.T) {
	s, attacks := liveServer(t)

	var st struct {
		Requests   int    `json:"requests"`
		Records    int    `json:"records"`
		Rejected   int    `json:"rejected"`
		LastIngest string `json:"last_ingest"`
	}
	get(t, s, "/api/live/ingeststats", http.StatusOK, &st)
	if st.Requests != 0 || st.Records != 0 || st.LastIngest != "" {
		t.Fatalf("pre-ingest stats = %+v, want zeros", st)
	}

	var buf bytes.Buffer
	if err := dataset.WriteJSONL(&buf, attacks[:3]); err != nil {
		t.Fatal(err)
	}
	post(t, s, "/api/ingest", buf.String(), http.StatusOK, nil)
	post(t, s, "/api/ingest", "not json\n", http.StatusUnprocessableEntity, nil)

	get(t, s, "/api/live/ingeststats", http.StatusOK, &st)
	if st.Requests != 2 || st.Records != 3 || st.Rejected != 1 {
		t.Fatalf("post-ingest stats = %+v, want requests=2 records=3 rejected=1", st)
	}
	if _, err := time.Parse(time.RFC3339, st.LastIngest); err != nil {
		t.Fatalf("last_ingest %q not RFC3339: %v", st.LastIngest, err)
	}
}
