// Package timeseries implements the time-series forecasting substrate for
// botscope: ARIMA(p,d,q) fitted by conditional sum of squares with a
// Nelder-Mead optimizer, Yule-Walker initialization, AIC order selection,
// and the naive baselines the ablation benches compare against.
//
// The paper predicts per-family geolocation-dispersion series with ARIMA
// (§IV-A, Figures 12-13, Table IV). Go has no ARIMA library, so this
// package provides one on the standard library alone.
package timeseries

import "fmt"

// Difference applies d-th order differencing to xs and returns the
// differenced series of length len(xs)-d. It returns an error when the
// series is too short or d is negative.
func Difference(xs []float64, d int) ([]float64, error) {
	if d < 0 {
		return nil, fmt.Errorf("timeseries: negative differencing order %d", d)
	}
	if len(xs) <= d {
		return nil, fmt.Errorf("timeseries: series of length %d too short for d=%d", len(xs), d)
	}
	cur := make([]float64, len(xs))
	copy(cur, xs)
	for i := 0; i < d; i++ {
		next := make([]float64, len(cur)-1)
		for j := 1; j < len(cur); j++ {
			next[j-1] = cur[j] - cur[j-1]
		}
		cur = next
	}
	return cur, nil
}

// Integrate undoes d-th order differencing of a forecast: given the last d
// "heads" of the original series (the values consumed by differencing) and
// the forecast steps in differenced space, it rebuilds level-space values.
//
// tail must hold the final d observations of the original series in
// chronological order. For d == 0 the forecasts are returned unchanged.
func Integrate(forecast []float64, tail []float64, d int) ([]float64, error) {
	if d < 0 {
		return nil, fmt.Errorf("timeseries: negative differencing order %d", d)
	}
	if len(tail) < d {
		return nil, fmt.Errorf("timeseries: need %d tail values to integrate, got %d", d, len(tail))
	}
	out := make([]float64, len(forecast))
	copy(out, forecast)
	// Undo one differencing level at a time, innermost first. At each
	// level, the cumulative sum is anchored at the appropriate tail value
	// differenced (d-1-i) times.
	for level := d - 1; level >= 0; level-- {
		// anchor = last value of the original series differenced `level`
		// times. Compute it from the tail.
		anchorSeries := make([]float64, len(tail))
		copy(anchorSeries, tail)
		for i := 0; i < level; i++ {
			next := make([]float64, len(anchorSeries)-1)
			for j := 1; j < len(anchorSeries); j++ {
				next[j-1] = anchorSeries[j] - anchorSeries[j-1]
			}
			anchorSeries = next
		}
		anchor := anchorSeries[len(anchorSeries)-1]
		acc := anchor
		for i := range out {
			acc += out[i]
			out[i] = acc
		}
	}
	return out, nil
}
