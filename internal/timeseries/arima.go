package timeseries

import (
	"fmt"
	"math"

	"botscope/internal/stats"
)

// Order is an ARIMA(p,d,q) model order.
type Order struct {
	P int // autoregressive terms
	D int // differencing order
	Q int // moving-average terms
}

// String renders the order in the conventional ARIMA(p,d,q) form.
func (o Order) String() string { return fmt.Sprintf("ARIMA(%d,%d,%d)", o.P, o.D, o.Q) }

func (o Order) validate() error {
	if o.P < 0 || o.D < 0 || o.Q < 0 {
		return fmt.Errorf("timeseries: invalid order %v", o)
	}
	if o.P == 0 && o.Q == 0 && o.D == 0 {
		return fmt.Errorf("timeseries: order (0,0,0) has nothing to fit")
	}
	return nil
}

// Model is a fitted ARIMA model.
type Model struct {
	Order Order
	// Mu is the mean of the differenced series.
	Mu float64
	// AR holds phi_1..phi_p.
	AR []float64
	// MA holds theta_1..theta_q.
	MA []float64
	// Sigma2 is the innovation variance estimated from CSS residuals.
	Sigma2 float64
	// AIC is the Akaike information criterion of the fit.
	AIC float64
	// BIC is the Bayesian information criterion; AutoFit minimizes it
	// because its stronger parsimony penalty resists the ARMA-redundancy
	// overfitting that plain AIC permits on near-white series.
	BIC float64
	// N is the number of observations the model was fitted on.
	N int

	series []float64 // original (undifferenced) training series
	diffed []float64 // differenced, for forecasting state
}

// fitScratch is the working memory of one fit (or one AutoFit grid): the
// CSS residual buffer reused by every objective evaluation. Nelder-Mead
// calls the objective thousands of times per fit, so allocating the
// residual slice inside cssObjective used to dominate the fit's profile.
type fitScratch struct {
	resid []float64
}

func (sc *fitScratch) residBuf(n int) []float64 {
	if cap(sc.resid) < n {
		sc.resid = make([]float64, n)
	}
	return sc.resid[:n]
}

// Fit estimates an ARIMA model on xs by conditional sum of squares.
// AR coefficients start at Yule-Walker estimates, MA coefficients at zero,
// and Nelder-Mead refines everything jointly.
func Fit(xs []float64, order Order) (*Model, error) {
	m, err := fitDiffed(xs, nil, order, nil, &fitScratch{})
	if err != nil {
		return nil, err
	}
	m.series = append([]float64(nil), xs...)
	return m, nil
}

// fitDiffed is Fit over a possibly pre-differenced series. w may be nil
// (it is then derived from xs), warm may be nil (Yule-Walker cold start),
// and sc supplies reusable working memory. The returned model has no
// series copy: callers that keep the model attach one (Fit, AutoFit's
// winner), so losing grid candidates never copy the input.
func fitDiffed(xs, w []float64, order Order, warm []float64, sc *fitScratch) (*Model, error) {
	if err := order.validate(); err != nil {
		return nil, err
	}
	minLen := order.P + order.Q + order.D + 3
	if len(xs) < minLen {
		return nil, fmt.Errorf("timeseries: series of length %d too short for %v (need >= %d)", len(xs), order, minLen)
	}
	if w == nil {
		var err error
		w, err = Difference(xs, order.D)
		if err != nil {
			return nil, err
		}
	}
	if stats.PopVariance(w) == 0 {
		return nil, fmt.Errorf("timeseries: differenced series is constant; nothing to fit")
	}

	p, q := order.P, order.Q

	// Parameter vector layout: [mu, phi_1..phi_p, theta_1..theta_q].
	x0 := make([]float64, 1+p+q)
	if len(warm) == len(x0) {
		copy(x0, warm)
	} else {
		x0[0] = stats.Mean(w)
		// Initial AR estimate via Yule-Walker (Durbin-Levinson on the ACF).
		if p > 0 {
			if pacfPhi, ywErr := yuleWalker(w, p); ywErr == nil {
				copy(x0[1:1+p], pacfPhi)
			}
		}
	}

	resid := sc.residBuf(len(w))
	css := func(params []float64) float64 {
		return cssObjective(w, p, q, params, resid)
	}

	best, _, err := NelderMead(css, x0, NelderMeadConfig{MaxIter: 4000, Tol: 1e-12, Step: 0.2})
	if err != nil {
		return nil, fmt.Errorf("timeseries: fit %v: %w", order, err)
	}

	m := &Model{
		Order:  order,
		Mu:     best[0],
		AR:     append([]float64(nil), best[1:1+p]...),
		MA:     append([]float64(nil), best[1+p:]...),
		N:      len(xs),
		diffed: w,
	}
	sse := 0.0
	for _, e := range m.residualsInto(w, resid) {
		sse += e * e
	}
	n := float64(len(w))
	m.Sigma2 = sse / n
	k := float64(1 + p + q + 1) // mu + AR + MA + sigma2
	if m.Sigma2 <= 0 {
		m.Sigma2 = 1e-300
	}
	m.AIC = n*math.Log(m.Sigma2) + 2*k
	m.BIC = n*math.Log(m.Sigma2) + k*math.Log(n)
	return m, nil
}

// cssObjective computes the conditional sum of squares for the parameter
// vector [mu, phi..., theta...] on the differenced series w, writing the
// recursion state into resid (len(w) scratch owned by the caller) so the
// evaluation itself allocates nothing. Exploding recursions
// (non-stationary/non-invertible parameters) return +Inf.
//
//botscope:hotpath
func cssObjective(w []float64, p, q int, params, resid []float64) float64 {
	mu := params[0]
	phi := params[1 : 1+p]
	theta := params[1+p:]
	var sse float64
	for t := range w {
		pred := mu
		for i := 0; i < p; i++ {
			if t-1-i < 0 {
				break
			}
			pred += phi[i] * (w[t-1-i] - mu)
		}
		for j := 0; j < q; j++ {
			if t-1-j < 0 {
				break
			}
			pred += theta[j] * resid[t-1-j]
		}
		e := w[t] - pred
		if math.IsNaN(e) || math.Abs(e) > 1e150 {
			return math.Inf(1)
		}
		resid[t] = e
		sse += e * e
	}
	if math.IsNaN(sse) || math.IsInf(sse, 0) {
		return math.Inf(1)
	}
	return sse
}

// residuals runs the CSS recursion with the fitted parameters.
func (m *Model) residuals(w []float64) []float64 {
	return m.residualsInto(w, make([]float64, len(w)))
}

// residualsInto is residuals writing into caller-owned scratch.
//
//botscope:hotpath
func (m *Model) residualsInto(w, resid []float64) []float64 {
	p, q := m.Order.P, m.Order.Q
	resid = resid[:len(w)]
	for t := range w {
		pred := m.Mu
		for i := 0; i < p; i++ {
			if t-1-i < 0 {
				break
			}
			pred += m.AR[i] * (w[t-1-i] - m.Mu)
		}
		for j := 0; j < q; j++ {
			if t-1-j < 0 {
				break
			}
			pred += m.MA[j] * resid[t-1-j]
		}
		resid[t] = w[t] - pred
	}
	return resid
}

// Residuals returns the in-sample CSS residuals in differenced space.
func (m *Model) Residuals() []float64 {
	return m.residuals(m.diffed)
}

// Forecast returns h future values in the original (level) space.
func (m *Model) Forecast(h int) ([]float64, error) {
	if h <= 0 {
		return nil, fmt.Errorf("timeseries: forecast horizon must be positive, got %d", h)
	}
	p, q := m.Order.P, m.Order.Q
	resid := m.residuals(m.diffed)
	// Extended differenced series: history + forecasts, preallocated to the
	// final n+h size so the forecast loop never regrows either slice.
	n := len(m.diffed)
	w := make([]float64, n, n+h)
	copy(w, m.diffed)
	e := make([]float64, n, n+h)
	copy(e, resid)
	for t := n; t < n+h; t++ {
		pred := m.Mu
		for i := 0; i < p; i++ {
			if t-1-i < 0 {
				break
			}
			pred += m.AR[i] * (w[t-1-i] - m.Mu)
		}
		for j := 0; j < q; j++ {
			idx := t - 1 - j
			if idx < 0 {
				break
			}
			var ev float64
			if idx < len(e) {
				ev = e[idx]
			}
			pred += m.MA[j] * ev
		}
		w = append(w, pred)
		e = append(e, 0) // future innovations are zero in expectation
	}
	diffForecast := w[n:]
	tail := m.series
	if len(tail) > m.Order.D && m.Order.D > 0 {
		tail = tail[len(tail)-m.Order.D:]
	}
	return Integrate(diffForecast, tail, m.Order.D)
}

// OneStepForecasts produces one-step-ahead level-space predictions for
// full[start:], using the fitted parameters and the observed history up to
// each point — the protocol behind the paper's Figures 12-13, where the
// second half of each series is predicted point by point.
func (m *Model) OneStepForecasts(full []float64, start int) ([]float64, error) {
	d := m.Order.D
	if start <= d {
		return nil, fmt.Errorf("timeseries: start %d must exceed differencing order %d", start, d)
	}
	if start >= len(full) {
		return nil, fmt.Errorf("timeseries: start %d out of range for series of length %d", start, len(full))
	}
	w, err := Difference(full, d)
	if err != nil {
		return nil, err
	}
	resid := m.residuals(w)
	p, q := m.Order.P, m.Order.Q
	preds := make([]float64, 0, len(full)-start)
	for t := start; t < len(full); t++ {
		wi := t - d // index of full[t] in differenced space
		pred := m.Mu
		for i := 0; i < p; i++ {
			if wi-1-i < 0 {
				break
			}
			pred += m.AR[i] * (w[wi-1-i] - m.Mu)
		}
		for j := 0; j < q; j++ {
			if wi-1-j < 0 {
				break
			}
			pred += m.MA[j] * resid[wi-1-j]
		}
		// Undo differencing: x_t = w_t + sum of lower-order tails. For the
		// common d in {0,1}, this is pred (+ full[t-1]).
		level := pred
		if d > 0 {
			// Rebuild by integrating the single-step forecast on the
			// observed tail ending at t-1.
			tail := full[t-d : t]
			lv, intErr := Integrate([]float64{pred}, tail, d)
			if intErr != nil {
				return nil, intErr
			}
			level = lv[0]
		}
		preds = append(preds, level)
	}
	return preds, nil
}

// yuleWalker solves the Yule-Walker equations for an AR(p) fit via the
// Durbin-Levinson recursion, returning phi_1..phi_p.
func yuleWalker(w []float64, p int) ([]float64, error) {
	acf, err := stats.ACF(w, p)
	if err != nil {
		return nil, err
	}
	phi := make([]float64, p+1)
	prev := make([]float64, p+1)
	phi[1] = acf[1]
	v := 1 - acf[1]*acf[1]
	for k := 2; k <= p; k++ {
		copy(prev, phi)
		num := acf[k]
		for j := 1; j < k; j++ {
			num -= prev[j] * acf[k-j]
		}
		if v <= 0 {
			break
		}
		phikk := num / v
		phi[k] = phikk
		for j := 1; j < k; j++ {
			phi[j] = prev[j] - phikk*prev[k-j]
		}
		v *= 1 - phikk*phikk
	}
	return phi[1 : p+1], nil
}

// AutoFit tries every order in the grid p in [0,maxP], q in [0,maxQ] with
// the given d, and returns the model with the lowest BIC. Orders that fail
// to fit are skipped; an error is returned only if every order fails.
//
// The grid shares one differenced series and one residual scratch across
// every candidate, defers the training-series copy to the single winner,
// and warm-starts each fit from the parameters of its already-fitted
// neighbor ((p, q-1), falling back to (p-1, q)) padded with a zero for the
// new coefficient — neighboring ARMA orders have near-identical optima, so
// the simplex starts close and converges in far fewer evaluations than a
// cold Yule-Walker start.
func AutoFit(xs []float64, d, maxP, maxQ int) (*Model, error) {
	if maxP < 0 || maxQ < 0 {
		return nil, fmt.Errorf("timeseries: negative auto-fit grid bounds (%d, %d)", maxP, maxQ)
	}
	var (
		best    *Model
		lastErr error
	)
	w, err := Difference(xs, d)
	if err != nil {
		return nil, fmt.Errorf("timeseries: auto fit found no viable order: %w", err)
	}
	sc := &fitScratch{}
	// prevRow[q] holds the fitted parameter vector of (p-1, q); left holds
	// the current row's (p, q-1).
	prevRow := make([][]float64, maxQ+1)
	curRow := make([][]float64, maxQ+1)
	for p := 0; p <= maxP; p++ {
		var left []float64
		for q := 0; q <= maxQ; q++ {
			curRow[q] = nil
			if p == 0 && q == 0 && d == 0 {
				continue
			}
			warm := warmStart(left, prevRow[q], p, q)
			m, err := fitDiffed(xs, w, Order{P: p, D: d, Q: q}, warm, sc)
			if err != nil {
				lastErr = err
				left = nil
				continue
			}
			params := make([]float64, 1+p+q)
			params[0] = m.Mu
			copy(params[1:1+p], m.AR)
			copy(params[1+p:], m.MA)
			curRow[q] = params
			left = params
			if best == nil || m.BIC < best.BIC {
				best = m
			}
		}
		prevRow, curRow = curRow, prevRow
	}
	if best == nil {
		if lastErr == nil {
			lastErr = fmt.Errorf("timeseries: empty order grid")
		}
		return nil, fmt.Errorf("timeseries: auto fit found no viable order: %w", lastErr)
	}
	best.series = append([]float64(nil), xs...)
	return best, nil
}

// warmStart builds the initial parameter vector for order (p, q) from a
// fitted neighbor: left is (p, q-1), up is (p-1, q). The returned vector
// has layout [mu, phi_1..p, theta_1..q] with a zero in the slot the
// neighbor lacks; nil means no neighbor fitted (cold start).
func warmStart(left, up []float64, p, q int) []float64 {
	if len(left) == 1+p+q-1 {
		warm := make([]float64, 1+p+q)
		copy(warm, left) // theta_q starts at zero
		return warm
	}
	if len(up) == 1+p+q-1 {
		warm := make([]float64, 1+p+q)
		copy(warm[:p], up[:p]) // mu, phi_1..p-1; phi_p starts at zero
		copy(warm[1+p:], up[p:])
		return warm
	}
	return nil
}
