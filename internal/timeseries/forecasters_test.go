package timeseries

import (
	"math"
	"testing"
)

func TestNaive(t *testing.T) {
	var f Naive
	if got := f.Predict([]float64{1, 2, 9}); got != 9 {
		t.Errorf("Naive.Predict = %v, want 9", got)
	}
	if f.Name() != "naive" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestHistoricalMean(t *testing.T) {
	var f HistoricalMean
	if got := f.Predict([]float64{2, 4, 6}); got != 4 {
		t.Errorf("HistoricalMean.Predict = %v, want 4", got)
	}
}

func TestDrift(t *testing.T) {
	var f Drift
	// Slope (10-0)/4 = 2.5, so next = 10 + 2.5.
	if got := f.Predict([]float64{0, 2, 5, 8, 10}); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("Drift.Predict = %v, want 12.5", got)
	}
	if got := f.Predict([]float64{7}); got != 7 {
		t.Errorf("Drift.Predict on singleton = %v, want 7", got)
	}
}

func TestSES(t *testing.T) {
	f := SES{Alpha: 1} // alpha=1 degenerates to naive
	if got := f.Predict([]float64{1, 2, 3}); got != 3 {
		t.Errorf("SES(1).Predict = %v, want 3", got)
	}
	f0 := SES{Alpha: 0} // invalid alpha falls back to default, still finite
	if got := f0.Predict([]float64{1, 2, 3}); math.IsNaN(got) {
		t.Errorf("SES(0).Predict = NaN")
	}
	f5 := SES{Alpha: 0.5}
	// level: 1 -> 1.5 -> 2.25
	if got := f5.Predict([]float64{1, 2, 3}); math.Abs(got-2.25) > 1e-12 {
		t.Errorf("SES(0.5).Predict = %v, want 2.25", got)
	}
}

func TestSlidingWindowMean(t *testing.T) {
	f := SlidingWindowMean{Window: 2}
	if got := f.Predict([]float64{100, 1, 3}); got != 2 {
		t.Errorf("SlidingWindowMean.Predict = %v, want 2", got)
	}
	fBig := SlidingWindowMean{Window: 50}
	if got := fBig.Predict([]float64{2, 4}); got != 3 {
		t.Errorf("oversized window Predict = %v, want 3", got)
	}
}

func TestRolling(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	preds, err := Rolling(Naive{}, xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4} // naive predicts previous value
	if len(preds) != len(want) {
		t.Fatalf("len = %d, want %d", len(preds), len(want))
	}
	for i := range want {
		if preds[i] != want[i] {
			t.Errorf("preds[%d] = %v, want %v", i, preds[i], want[i])
		}
	}
}

func TestRollingValidation(t *testing.T) {
	xs := []float64{1, 2, 3}
	if _, err := Rolling(Naive{}, xs, 0); err == nil {
		t.Error("start=0 succeeded, want error")
	}
	if _, err := Rolling(Naive{}, xs, 3); err == nil {
		t.Error("start=len succeeded, want error")
	}
}

func TestEvaluate(t *testing.T) {
	preds := []float64{1, 2, 3}
	truth := []float64{1, 2, 3}
	ev, err := Evaluate("perfect", preds, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MAE != 0 || ev.RMSE != 0 {
		t.Errorf("perfect forecast MAE/RMSE = %v/%v, want 0/0", ev.MAE, ev.RMSE)
	}
	if math.Abs(ev.CosineSimilarity-1) > 1e-12 {
		t.Errorf("perfect forecast similarity = %v, want 1", ev.CosineSimilarity)
	}
	if ev.Forecaster != "perfect" {
		t.Errorf("Forecaster = %q", ev.Forecaster)
	}
	if ev.MeanPred != 2 || ev.MeanTruth != 2 {
		t.Errorf("means = %v/%v, want 2/2", ev.MeanPred, ev.MeanTruth)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate("x", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch succeeded, want error")
	}
	if _, err := Evaluate("x", nil, nil); err == nil {
		t.Error("empty evaluation succeeded, want error")
	}
}
