package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

// genARMA simulates an ARMA(p,q) process with the given coefficients.
func genARMA(phi, theta []float64, mu float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	burn := 200
	xs := make([]float64, n+burn)
	es := make([]float64, n+burn)
	for t := range xs {
		e := rng.NormFloat64()
		es[t] = e
		v := mu + e
		for i, p := range phi {
			if t-1-i >= 0 {
				v += p * (xs[t-1-i] - mu)
			}
		}
		for j, q := range theta {
			if t-1-j >= 0 {
				v += q * es[t-1-j]
			}
		}
		xs[t] = v
	}
	return xs[burn:]
}

func TestOrderString(t *testing.T) {
	if got := (Order{P: 2, D: 1, Q: 1}).String(); got != "ARIMA(2,1,1)" {
		t.Errorf("String = %q", got)
	}
}

func TestFitValidation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		name  string
		give  []float64
		order Order
	}{
		{name: "negative order", give: xs, order: Order{P: -1}},
		{name: "empty order", give: xs, order: Order{}},
		{name: "too short", give: []float64{1, 2}, order: Order{P: 2, Q: 2}},
		{name: "constant series", give: []float64{5, 5, 5, 5, 5, 5, 5, 5, 5, 5}, order: Order{P: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Fit(tt.give, tt.order); err == nil {
				t.Errorf("Fit(%v) succeeded, want error", tt.order)
			}
		})
	}
}

func TestFitAR1RecoversCoefficient(t *testing.T) {
	const phi = 0.7
	xs := genARMA([]float64{phi}, nil, 10, 4000, 1)
	m, err := Fit(xs, Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AR[0]-phi) > 0.08 {
		t.Errorf("fitted phi = %v, want about %v", m.AR[0], phi)
	}
	if math.Abs(m.Mu-10) > 1 {
		t.Errorf("fitted mu = %v, want about 10", m.Mu)
	}
	if m.Sigma2 < 0.7 || m.Sigma2 > 1.4 {
		t.Errorf("fitted sigma2 = %v, want about 1", m.Sigma2)
	}
}

func TestFitMA1RecoversCoefficient(t *testing.T) {
	const theta = 0.6
	xs := genARMA(nil, []float64{theta}, 0, 4000, 2)
	m, err := Fit(xs, Order{Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MA[0]-theta) > 0.1 {
		t.Errorf("fitted theta = %v, want about %v", m.MA[0], theta)
	}
}

func TestFitARMA11(t *testing.T) {
	xs := genARMA([]float64{0.5}, []float64{0.3}, 5, 6000, 3)
	m, err := Fit(xs, Order{P: 1, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AR[0]-0.5) > 0.15 {
		t.Errorf("fitted phi = %v, want about 0.5", m.AR[0])
	}
	if math.Abs(m.MA[0]-0.3) > 0.15 {
		t.Errorf("fitted theta = %v, want about 0.3", m.MA[0])
	}
}

func TestFitWithDifferencing(t *testing.T) {
	// Random walk with AR(1) increments: ARIMA(1,1,0).
	incr := genARMA([]float64{0.6}, nil, 0, 3000, 4)
	xs := make([]float64, len(incr)+1)
	for i, v := range incr {
		xs[i+1] = xs[i] + v
	}
	m, err := Fit(xs, Order{P: 1, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AR[0]-0.6) > 0.1 {
		t.Errorf("fitted phi on differenced series = %v, want about 0.6", m.AR[0])
	}
}

func TestForecastMeanReversion(t *testing.T) {
	// An AR(1) forecast must converge to the series mean as h grows.
	xs := genARMA([]float64{0.8}, nil, 20, 3000, 5)
	m, err := Fit(xs, Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 100 {
		t.Fatalf("forecast length = %d, want 100", len(fc))
	}
	if math.Abs(fc[99]-m.Mu) > 0.5 {
		t.Errorf("long-horizon forecast = %v, want near mu %v", fc[99], m.Mu)
	}
}

func TestForecastRandomWalkIsFlat(t *testing.T) {
	// ARIMA(0,1,0)-style models forecast a continuation near the last
	// level. Use ARIMA(1,1,0) and verify the forecast stays in a sane band.
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 800)
	for i := 1; i < len(xs); i++ {
		xs[i] = xs[i-1] + rng.NormFloat64()
	}
	m, err := Fit(xs, Order{P: 1, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(10)
	if err != nil {
		t.Fatal(err)
	}
	last := xs[len(xs)-1]
	for i, v := range fc {
		if math.Abs(v-last) > 10 {
			t.Errorf("forecast[%d] = %v, wildly off last level %v", i, v, last)
		}
	}
}

func TestForecastValidation(t *testing.T) {
	xs := genARMA([]float64{0.5}, nil, 0, 200, 7)
	m, err := Fit(xs, Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); err == nil {
		t.Error("Forecast(0) succeeded, want error")
	}
	if _, err := m.Forecast(-5); err == nil {
		t.Error("Forecast(-5) succeeded, want error")
	}
}

func TestOneStepForecastsBeatNaiveOnAR(t *testing.T) {
	xs := genARMA([]float64{0.8}, nil, 0, 3000, 8)
	split := len(xs) / 2
	m, err := Fit(xs[:split], Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := m.OneStepForecasts(xs, split)
	if err != nil {
		t.Fatal(err)
	}
	truth := xs[split:]
	if len(preds) != len(truth) {
		t.Fatalf("preds length %d, want %d", len(preds), len(truth))
	}
	arimaEval, err := Evaluate("arima", preds, truth)
	if err != nil {
		t.Fatal(err)
	}
	meanPreds, err := Rolling(HistoricalMean{}, xs, split)
	if err != nil {
		t.Fatal(err)
	}
	meanEval, err := Evaluate("mean", meanPreds, truth)
	if err != nil {
		t.Fatal(err)
	}
	if arimaEval.RMSE >= meanEval.RMSE {
		t.Errorf("ARIMA RMSE %v not better than mean-forecast RMSE %v on AR(1) data",
			arimaEval.RMSE, meanEval.RMSE)
	}
}

func TestOneStepForecastsValidation(t *testing.T) {
	xs := genARMA([]float64{0.5}, nil, 0, 100, 9)
	m, err := Fit(xs, Order{P: 1, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.OneStepForecasts(xs, 0); err == nil {
		t.Error("start <= d succeeded, want error")
	}
	if _, err := m.OneStepForecasts(xs, len(xs)); err == nil {
		t.Error("start beyond series succeeded, want error")
	}
}

func TestResidualsAreWhiteForCorrectModel(t *testing.T) {
	xs := genARMA([]float64{0.7}, nil, 0, 3000, 10)
	m, err := Fit(xs, Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	resid := m.Residuals()
	// Lag-1 autocorrelation of residuals should be near zero.
	var num, den, mean float64
	for _, e := range resid {
		mean += e
	}
	mean /= float64(len(resid))
	for i := 1; i < len(resid); i++ {
		num += (resid[i] - mean) * (resid[i-1] - mean)
	}
	for _, e := range resid {
		den += (e - mean) * (e - mean)
	}
	if r := num / den; math.Abs(r) > 0.08 {
		t.Errorf("residual lag-1 autocorrelation = %v, want about 0", r)
	}
}

func TestAutoFitPicksReasonableOrder(t *testing.T) {
	xs := genARMA([]float64{0.75}, nil, 0, 2000, 11)
	m, err := AutoFit(xs, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order.P == 0 {
		t.Errorf("AutoFit picked %v for an AR(1) process, want P >= 1", m.Order)
	}
	// The dominant AR coefficient must still be recovered.
	if math.Abs(m.AR[0]-0.75) > 0.2 {
		t.Errorf("AutoFit AR[0] = %v, want about 0.75", m.AR[0])
	}
}

func TestAutoFitAllFail(t *testing.T) {
	if _, err := AutoFit([]float64{1, 1}, 0, 2, 2); err == nil {
		t.Error("AutoFit on 2-point series succeeded, want error")
	}
}

func TestAICPrefersParsimony(t *testing.T) {
	// On pure white noise, AIC of ARMA(2,2) must not be much better than
	// ARMA(1,0) — and AutoFit should not pick a huge order.
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 1500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	m, err := AutoFit(xs, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order.P+m.Order.Q > 2 {
		t.Errorf("AutoFit picked %v on white noise, want a small order", m.Order)
	}
}
