package timeseries

import (
	"fmt"
	"math"
)

// Objective is a function to minimize. It may return +Inf to mark an
// infeasible point.
type Objective func(x []float64) float64

// NelderMeadConfig tunes the downhill-simplex optimizer.
type NelderMeadConfig struct {
	// MaxIter bounds the number of simplex iterations; default 2000.
	MaxIter int
	// Tol is the convergence tolerance on the objective spread; default 1e-10.
	Tol float64
	// Step is the initial simplex edge length; default 0.1.
	Step float64
}

// NelderMead minimizes f starting from x0 using the Nelder-Mead downhill
// simplex method (reflection, expansion, contraction, shrink). It returns
// the best point found and its objective value. The ARIMA fitter uses it
// because CSS is non-differentiable at stability boundaries, where
// gradient methods misbehave.
func NelderMead(f Objective, x0 []float64, cfg NelderMeadConfig) ([]float64, float64, error) {
	n := len(x0)
	if n == 0 {
		return nil, 0, fmt.Errorf("timeseries: nelder-mead needs at least one dimension")
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 2000
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-10
	}
	if cfg.Step <= 0 {
		cfg.Step = 0.1
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	for i := range simplex {
		x := make([]float64, n)
		copy(x, x0)
		if i > 0 {
			if x[i-1] != 0 {
				x[i-1] += cfg.Step * math.Abs(x[i-1])
			} else {
				x[i-1] = cfg.Step
			}
		}
		simplex[i] = vertex{x: x, f: f(x)}
	}

	centroid := make([]float64, n)
	reflected := make([]float64, n)
	expanded := make([]float64, n)
	contracted := make([]float64, n)

	// sortSimplex orders the n+1 vertices by objective value. Insertion
	// sort: the simplex is nearly sorted between iterations (at most one
	// vertex moved), and unlike sort.Slice it allocates nothing — this
	// runs once per iteration on the fitter's hottest path.
	sortSimplex := func() {
		for i := 1; i < len(simplex); i++ {
			v := simplex[i]
			j := i - 1
			for j >= 0 && simplex[j].f > v.f {
				simplex[j+1] = simplex[j]
				j--
			}
			simplex[j+1] = v
		}
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		sortSimplex()
		best, worst := simplex[0], simplex[n]
		if spread := math.Abs(worst.f - best.f); spread < cfg.Tol && !math.IsInf(best.f, 1) {
			// Equal objective values can still mean a wide simplex (e.g.
			// symmetric points around a V-shaped minimum); require the
			// simplex itself to have collapsed too.
			diam := 0.0
			for i := 1; i <= n; i++ {
				for j := 0; j < n; j++ {
					if d := math.Abs(simplex[i].x[j] - best.x[j]); d > diam {
						diam = d
					}
				}
			}
			if diam < 1e-8 {
				break
			}
		}

		// Centroid of all but the worst vertex.
		for j := 0; j < n; j++ {
			centroid[j] = 0
			for i := 0; i < n; i++ {
				centroid[j] += simplex[i].x[j]
			}
			centroid[j] /= float64(n)
		}

		for j := 0; j < n; j++ {
			reflected[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := f(reflected)

		switch {
		case fr < best.f:
			// Try to expand further in the same direction.
			for j := 0; j < n; j++ {
				expanded[j] = centroid[j] + gamma*(reflected[j]-centroid[j])
			}
			fe := f(expanded)
			if fe < fr {
				copy(simplex[n].x, expanded)
				simplex[n].f = fe
			} else {
				copy(simplex[n].x, reflected)
				simplex[n].f = fr
			}
		case fr < simplex[n-1].f:
			copy(simplex[n].x, reflected)
			simplex[n].f = fr
		default:
			// Contract toward the centroid.
			for j := 0; j < n; j++ {
				contracted[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			fc := f(contracted)
			if fc < worst.f {
				copy(simplex[n].x, contracted)
				simplex[n].f = fc
			} else {
				// Shrink everything toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = best.x[j] + sigma*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}

	sortSimplex()
	out := make([]float64, n)
	copy(out, simplex[0].x)
	if math.IsInf(simplex[0].f, 1) {
		return out, simplex[0].f, fmt.Errorf("timeseries: nelder-mead found no feasible point")
	}
	return out, simplex[0].f, nil
}
