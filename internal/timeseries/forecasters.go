package timeseries

import (
	"fmt"

	"botscope/internal/stats"
)

// Forecaster is a one-step-ahead predictor over a series. Implementations
// receive the observed history and return the prediction for the next
// point. The ablation benches compare ARIMA against these baselines.
type Forecaster interface {
	// Name identifies the forecaster in reports.
	Name() string
	// Predict returns the forecast for the value following history.
	// history is never empty.
	Predict(history []float64) float64
}

// Naive predicts the last observed value (random-walk forecast).
type Naive struct{}

var _ Forecaster = Naive{}

// Name implements Forecaster.
func (Naive) Name() string { return "naive" }

// Predict implements Forecaster.
func (Naive) Predict(history []float64) float64 { return history[len(history)-1] }

// HistoricalMean predicts the mean of the full history.
type HistoricalMean struct{}

var _ Forecaster = HistoricalMean{}

// Name implements Forecaster.
func (HistoricalMean) Name() string { return "mean" }

// Predict implements Forecaster.
func (HistoricalMean) Predict(history []float64) float64 { return stats.Mean(history) }

// Drift extrapolates the average historical slope from the last value.
type Drift struct{}

var _ Forecaster = Drift{}

// Name implements Forecaster.
func (Drift) Name() string { return "drift" }

// Predict implements Forecaster.
func (Drift) Predict(history []float64) float64 {
	n := len(history)
	if n < 2 {
		return history[n-1]
	}
	slope := (history[n-1] - history[0]) / float64(n-1)
	return history[n-1] + slope
}

// SES is simple exponential smoothing with smoothing factor Alpha in (0,1].
type SES struct {
	Alpha float64
}

var _ Forecaster = SES{}

// Name implements Forecaster.
func (s SES) Name() string { return fmt.Sprintf("ses(%.2f)", s.Alpha) }

// Predict implements Forecaster.
func (s SES) Predict(history []float64) float64 {
	alpha := s.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	level := history[0]
	for _, x := range history[1:] {
		level = alpha*x + (1-alpha)*level
	}
	return level
}

// SlidingWindowMean predicts the mean of the last Window observations.
type SlidingWindowMean struct {
	Window int
}

var _ Forecaster = SlidingWindowMean{}

// Name implements Forecaster.
func (s SlidingWindowMean) Name() string { return fmt.Sprintf("window-mean(%d)", s.Window) }

// Predict implements Forecaster.
func (s SlidingWindowMean) Predict(history []float64) float64 {
	w := s.Window
	if w <= 0 || w > len(history) {
		w = len(history)
	}
	return stats.Mean(history[len(history)-w:])
}

// Rolling evaluates a forecaster one-step-ahead over full[start:], feeding
// it the true observed history at each step, and returns the predictions.
func Rolling(f Forecaster, full []float64, start int) ([]float64, error) {
	if start <= 0 || start >= len(full) {
		return nil, fmt.Errorf("timeseries: rolling start %d out of range (series length %d)", start, len(full))
	}
	preds := make([]float64, 0, len(full)-start)
	for t := start; t < len(full); t++ {
		preds = append(preds, f.Predict(full[:t]))
	}
	return preds, nil
}

// Evaluation summarizes forecast accuracy against ground truth.
type Evaluation struct {
	Forecaster string
	MAE        float64
	RMSE       float64
	// CosineSimilarity is the paper's Table IV headline measure.
	CosineSimilarity float64
	MeanPred         float64
	StdPred          float64
	MeanTruth        float64
	StdTruth         float64
}

// Evaluate scores predictions against truth with the measures of Table IV.
func Evaluate(name string, preds, truth []float64) (Evaluation, error) {
	if len(preds) != len(truth) {
		return Evaluation{}, fmt.Errorf("timeseries: evaluate needs equal lengths, got %d and %d", len(preds), len(truth))
	}
	if len(preds) == 0 {
		return Evaluation{}, fmt.Errorf("timeseries: evaluate on empty prediction set")
	}
	mae, err := stats.MAE(preds, truth)
	if err != nil {
		return Evaluation{}, err
	}
	rmse, err := stats.RMSE(preds, truth)
	if err != nil {
		return Evaluation{}, err
	}
	cos, err := stats.CosineSimilarity(preds, truth)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{
		Forecaster:       name,
		MAE:              mae,
		RMSE:             rmse,
		CosineSimilarity: cos,
		MeanPred:         stats.Mean(preds),
		StdPred:          stats.StdDev(preds),
		MeanTruth:        stats.Mean(truth),
		StdTruth:         stats.StdDev(truth),
	}, nil
}
