package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDifference(t *testing.T) {
	tests := []struct {
		name    string
		give    []float64
		d       int
		want    []float64
		wantErr bool
	}{
		{name: "d=0 identity", give: []float64{1, 2, 3}, d: 0, want: []float64{1, 2, 3}},
		{name: "d=1", give: []float64{1, 3, 6, 10}, d: 1, want: []float64{2, 3, 4}},
		{name: "d=2", give: []float64{1, 3, 6, 10}, d: 2, want: []float64{1, 1}},
		{name: "too short", give: []float64{1}, d: 1, wantErr: true},
		{name: "negative d", give: []float64{1, 2}, d: -1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Difference(tt.give, tt.d)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("Difference = %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tt.want))
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("got[%d] = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestDifferenceDoesNotMutate(t *testing.T) {
	xs := []float64{5, 2, 8}
	if _, err := Difference(xs, 1); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 2 || xs[2] != 8 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestIntegrateUndoesDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{0, 1, 2, 3} {
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		w, err := Difference(xs, d)
		if err != nil {
			t.Fatal(err)
		}
		// Treat the final part of w as a "forecast" and rebuild it.
		split := 30
		head := xs[:split+d] // original values up to the forecast point
		forecast := w[split:]
		tail := head
		if d > 0 {
			tail = head[len(head)-d:]
		}
		rebuilt, err := Integrate(forecast, tail, d)
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range rebuilt {
			want := xs[split+d+i]
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("d=%d: rebuilt[%d] = %v, want %v", d, i, got, want)
			}
		}
	}
}

func TestIntegrateErrors(t *testing.T) {
	if _, err := Integrate([]float64{1}, nil, 1); err == nil {
		t.Error("Integrate with missing tail succeeded, want error")
	}
	if _, err := Integrate([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("Integrate with negative d succeeded, want error")
	}
}

func TestIntegrateD0IsIdentity(t *testing.T) {
	got, err := Integrate([]float64{1, 2, 3}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if got[i] != want {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want)
		}
	}
}

// Property: Integrate(Difference(xs, d)) reproduces the original series for
// any d in range.
func TestDifferenceIntegrateRoundTrip(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		d := int(dRaw % 3)
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		w, err := Difference(xs, d)
		if err != nil {
			return false
		}
		tail := xs[:d]
		rebuilt, err := Integrate(w, tail, d)
		if err != nil {
			return false
		}
		for i := range rebuilt {
			if math.Abs(rebuilt[i]-xs[d+i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
