package timeseries

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	// f(x) = (x0-3)^2 + (x1+2)^2 has its minimum at (3, -2).
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+2)*(x[1]+2)
	}
	got, val, err := NelderMead(f, []float64{0, 0}, NelderMeadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-3) > 1e-4 || math.Abs(got[1]+2) > 1e-4 {
		t.Errorf("minimum at %v, want (3, -2)", got)
	}
	if val > 1e-6 {
		t.Errorf("objective = %v, want about 0", val)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	// The banana function: minimum at (1, 1), famously hard for simplex
	// methods started far away.
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	got, val, err := NelderMead(f, []float64{-1.2, 1}, NelderMeadConfig{MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if val > 1e-4 {
		t.Errorf("Rosenbrock objective = %v at %v, want near 0", val, got)
	}
}

func TestNelderMeadOneDimension(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0] - 7) }
	got, _, err := NelderMead(f, []float64{0}, NelderMeadConfig{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-7) > 1e-3 {
		t.Errorf("minimum at %v, want 7", got[0])
	}
}

func TestNelderMeadInfeasibleRegion(t *testing.T) {
	// Objective is +Inf left of x=5, quadratic right of it: the optimizer
	// must escape the infeasible start and converge near the boundary
	// minimum at x=5.
	f := func(x []float64) float64 {
		if x[0] < 5 {
			return math.Inf(1)
		}
		return (x[0] - 5) * (x[0] - 5)
	}
	got, val, err := NelderMead(f, []float64{6}, NelderMeadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if val > 1e-6 || got[0] < 5 {
		t.Errorf("minimum %v at %v, want 0 at >= 5", val, got)
	}
}

func TestNelderMeadAllInfeasible(t *testing.T) {
	f := func(x []float64) float64 { return math.Inf(1) }
	if _, _, err := NelderMead(f, []float64{0}, NelderMeadConfig{MaxIter: 50}); err == nil {
		t.Error("fully infeasible objective succeeded, want error")
	}
}

func TestNelderMeadEmptyDimension(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	if _, _, err := NelderMead(f, nil, NelderMeadConfig{}); err == nil {
		t.Error("zero-dimensional optimization succeeded, want error")
	}
}
