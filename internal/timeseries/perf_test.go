package timeseries

import (
	"testing"
)

// TestCSSObjectiveZeroAlloc pins the tentpole property of the fitter: one
// objective evaluation with a caller-owned residual buffer allocates
// nothing. Nelder-Mead calls the objective thousands of times per fit and
// the transfer matrix runs 2n fits, so a single allocation here multiplies
// into millions.
func TestCSSObjectiveZeroAlloc(t *testing.T) {
	xs := genARMA([]float64{0.6}, []float64{0.3}, 5, 2000, 21)
	params := []float64{5, 0.6, 0.3}
	resid := make([]float64, len(xs))
	allocs := testing.AllocsPerRun(100, func() {
		cssObjective(xs, 1, 1, params, resid)
	})
	if allocs != 0 {
		t.Errorf("cssObjective allocates %.1f objects per evaluation, want 0", allocs)
	}
}

// TestAutoFitMatchesFitSelection guards the shared-scratch/warm-start grid:
// the winner AutoFit returns must carry a usable series copy (Forecast
// needs it) and the same order must refit standalone.
func TestAutoFitWinnerIsSelfContained(t *testing.T) {
	xs := genARMA([]float64{0.7}, nil, 3, 1500, 22)
	m, err := AutoFit(xs, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(5); err != nil {
		t.Errorf("AutoFit winner cannot forecast: %v", err)
	}
	if _, err := Fit(xs, m.Order); err != nil {
		t.Errorf("winning order %v does not refit standalone: %v", m.Order, err)
	}
}

func BenchmarkFit(b *testing.B) {
	xs := genARMA([]float64{0.6}, []float64{0.3}, 5, 4000, 23)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(xs, Order{P: 1, Q: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutoFit(b *testing.B) {
	xs := genARMA([]float64{0.6}, []float64{0.3}, 5, 2000, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AutoFit(xs, 0, 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}
