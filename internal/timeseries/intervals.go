package timeseries

import (
	"fmt"
	"math"
)

// ForecastInterval is a point forecast with a symmetric confidence band.
type ForecastInterval struct {
	Point float64
	Lower float64
	Upper float64
	// StdErr is the forecast standard error at this horizon.
	StdErr float64
}

// PsiWeights returns the first n coefficients of the model's MA(infinity)
// representation (psi_0 = 1), from which multi-step forecast variances
// follow: Var(h) = sigma^2 * sum_{i<h} psi_i^2.
//
// The recursion is psi_j = theta_j + sum_{i=1..min(j,p)} phi_i psi_{j-i},
// with theta_j = 0 beyond q. Differencing is handled by composing the AR
// polynomial with (1-B)^d.
func (m *Model) PsiWeights(n int) []float64 {
	if n <= 0 {
		return nil
	}
	// Effective AR polynomial: phi(B) * (1-B)^d expanded.
	phi := composeWithDifferencing(m.AR, m.Order.D)
	psi := make([]float64, n)
	psi[0] = 1
	for j := 1; j < n; j++ {
		var v float64
		if j-1 < len(m.MA) {
			v = m.MA[j-1]
		}
		for i := 1; i <= j && i <= len(phi); i++ {
			v += phi[i-1] * psi[j-i]
		}
		psi[j] = v
	}
	return psi
}

// composeWithDifferencing expands phi(B)*(1-B)^d into an AR-style
// coefficient vector a such that the model reads
// x_t = sum a_i x_{t-i} + MA terms + e_t.
func composeWithDifferencing(ar []float64, d int) []float64 {
	// Polynomial in B: 1 - ar_1 B - ar_2 B^2 - ...
	poly := make([]float64, len(ar)+1)
	poly[0] = 1
	for i, a := range ar {
		poly[i+1] = -a
	}
	// Multiply by (1 - B) d times.
	for k := 0; k < d; k++ {
		next := make([]float64, len(poly)+1)
		for i, c := range poly {
			next[i] += c
			next[i+1] -= c
		}
		poly = next
	}
	// Back to coefficient form: x_t = sum a_i x_{t-i} + ...
	out := make([]float64, len(poly)-1)
	for i := 1; i < len(poly); i++ {
		out[i-1] = -poly[i]
	}
	return out
}

// ForecastWithIntervals returns h forecasts with confidence bands at the
// given level (e.g. 0.95). It returns an error for invalid horizons or
// levels outside (0, 1).
func (m *Model) ForecastWithIntervals(h int, level float64) ([]ForecastInterval, error) {
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("timeseries: confidence level %v outside (0, 1)", level)
	}
	points, err := m.Forecast(h)
	if err != nil {
		return nil, err
	}
	psi := m.PsiWeights(h)
	z := normalQuantile((1 + level) / 2)
	out := make([]ForecastInterval, h)
	var cum float64
	for i := 0; i < h; i++ {
		cum += psi[i] * psi[i]
		se := math.Sqrt(m.Sigma2 * cum)
		out[i] = ForecastInterval{
			Point:  points[i],
			Lower:  points[i] - z*se,
			Upper:  points[i] + z*se,
			StdErr: se,
		}
	}
	return out, nil
}

// normalQuantile is the standard normal inverse CDF (Acklam's rational
// approximation, relative error ~1e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
