package timeseries

import (
	"math"
	"testing"
)

func TestPsiWeightsAR1(t *testing.T) {
	// For AR(1) with phi, psi_j = phi^j.
	m := &Model{Order: Order{P: 1}, AR: []float64{0.6}}
	psi := m.PsiWeights(5)
	for j, got := range psi {
		want := math.Pow(0.6, float64(j))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("psi[%d] = %v, want %v", j, got, want)
		}
	}
}

func TestPsiWeightsMA1(t *testing.T) {
	// For MA(1) with theta, psi = [1, theta, 0, 0, ...].
	m := &Model{Order: Order{Q: 1}, MA: []float64{0.4}}
	psi := m.PsiWeights(4)
	want := []float64{1, 0.4, 0, 0}
	for j := range want {
		if math.Abs(psi[j]-want[j]) > 1e-12 {
			t.Errorf("psi[%d] = %v, want %v", j, psi[j], want[j])
		}
	}
}

func TestPsiWeightsARMA11(t *testing.T) {
	// ARMA(1,1): psi_1 = phi + theta, psi_j = phi psi_{j-1} for j >= 2.
	m := &Model{Order: Order{P: 1, Q: 1}, AR: []float64{0.5}, MA: []float64{0.3}}
	psi := m.PsiWeights(4)
	if math.Abs(psi[1]-0.8) > 1e-12 {
		t.Errorf("psi[1] = %v, want 0.8", psi[1])
	}
	if math.Abs(psi[2]-0.4) > 1e-12 {
		t.Errorf("psi[2] = %v, want 0.4", psi[2])
	}
	if math.Abs(psi[3]-0.2) > 1e-12 {
		t.Errorf("psi[3] = %v, want 0.2", psi[3])
	}
}

func TestPsiWeightsRandomWalk(t *testing.T) {
	// ARIMA(0,1,0): x_t = x_{t-1} + e_t, so psi_j = 1 for all j and the
	// forecast variance grows linearly.
	m := &Model{Order: Order{D: 1}}
	psi := m.PsiWeights(5)
	for j, got := range psi {
		if math.Abs(got-1) > 1e-12 {
			t.Errorf("psi[%d] = %v, want 1 for a random walk", j, got)
		}
	}
}

func TestPsiWeightsEmpty(t *testing.T) {
	m := &Model{Order: Order{P: 1}, AR: []float64{0.5}}
	if got := m.PsiWeights(0); got != nil {
		t.Errorf("PsiWeights(0) = %v, want nil", got)
	}
}

func TestComposeWithDifferencing(t *testing.T) {
	// AR(1) phi=0.5 with d=1: (1-0.5B)(1-B) = 1 - 1.5B + 0.5B^2,
	// so effective coefficients are [1.5, -0.5].
	got := composeWithDifferencing([]float64{0.5}, 1)
	want := []float64{1.5, -0.5}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("coef[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// d=0 passes through.
	got = composeWithDifferencing([]float64{0.7}, 0)
	if len(got) != 1 || got[0] != 0.7 {
		t.Errorf("d=0 composition = %v, want [0.7]", got)
	}
}

func TestForecastWithIntervals(t *testing.T) {
	xs := genARMA([]float64{0.7}, nil, 10, 2000, 20)
	m, err := Fit(xs, Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.ForecastWithIntervals(10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 10 {
		t.Fatalf("len = %d, want 10", len(fc))
	}
	for i, f := range fc {
		if f.Lower >= f.Point || f.Point >= f.Upper {
			t.Errorf("interval %d not ordered: %v < %v < %v", i, f.Lower, f.Point, f.Upper)
		}
		if i > 0 && f.StdErr < fc[i-1].StdErr-1e-9 {
			t.Errorf("stderr decreasing at %d: %v -> %v", i, fc[i-1].StdErr, f.StdErr)
		}
	}
	// One-step stderr equals sqrt(sigma2).
	if math.Abs(fc[0].StdErr-math.Sqrt(m.Sigma2)) > 1e-9 {
		t.Errorf("one-step stderr = %v, want sqrt(sigma2) = %v", fc[0].StdErr, math.Sqrt(m.Sigma2))
	}
	// 95% band is about +/- 1.96 sigma at one step.
	want := 1.959964 * fc[0].StdErr
	if math.Abs((fc[0].Upper-fc[0].Point)-want) > 1e-6*want {
		t.Errorf("band half-width = %v, want %v", fc[0].Upper-fc[0].Point, want)
	}
}

func TestForecastWithIntervalsWiderAtLowerConfidence(t *testing.T) {
	xs := genARMA([]float64{0.5}, nil, 0, 500, 21)
	m, err := Fit(xs, Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	fc95, err := m.ForecastWithIntervals(3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	fc50, err := m.ForecastWithIntervals(3, 0.50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fc95 {
		w95 := fc95[i].Upper - fc95[i].Lower
		w50 := fc50[i].Upper - fc50[i].Lower
		if w50 >= w95 {
			t.Errorf("50%% band %v not narrower than 95%% band %v", w50, w95)
		}
	}
}

func TestForecastWithIntervalsValidation(t *testing.T) {
	xs := genARMA([]float64{0.5}, nil, 0, 200, 22)
	m, err := Fit(xs, Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ForecastWithIntervals(5, 0); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := m.ForecastWithIntervals(5, 1); err == nil {
		t.Error("level 1 accepted")
	}
	if _, err := m.ForecastWithIntervals(0, 0.9); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want, tol float64
	}{
		{p: 0.5, want: 0, tol: 1e-8},
		{p: 0.975, want: 1.959964, tol: 1e-5},
		{p: 0.995, want: 2.575829, tol: 1e-5},
		{p: 0.025, want: -1.959964, tol: 1e-5},
	}
	for _, tt := range tests {
		if got := normalQuantile(tt.p); math.Abs(got-tt.want) > tt.tol {
			t.Errorf("normalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("boundary quantiles not infinite")
	}
}
