package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client errors.
var (
	// ErrShardBusy is a shard's backpressure refusal: its bounded ingest
	// queue was full. The caller may retry after backing off.
	ErrShardBusy = errors.New("cluster: shard busy (ingest queue full)")
	// ErrShardDown marks a shard whose connection is gone.
	ErrShardDown = errors.New("cluster: shard connection down")
)

// shardClient is the frontend's session with one shard: a single TCP
// connection multiplexing concurrent requests by ReqID (a reader
// goroutine routes acks back to waiting callers).
type shardClient struct {
	id   int
	addr string

	wmu  sync.Mutex // serializes frame writes
	conn net.Conn

	mu      sync.Mutex
	nextReq uint32
	pending map[uint32]chan Frame // guarded by mu
	closed  bool                  // guarded by mu
}

// dialShard connects, performs the hello exchange, and verifies the shard
// answers with the expected identity.
func dialShard(ctx context.Context, id int, addr string) (*shardClient, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &shardClient{id: id, addr: addr, conn: conn, pending: make(map[uint32]chan Frame)}
	// The reader's loop has no channel receive to prove cancellation, but
	// close() (run on any error, by Frontend teardown, and by markDown)
	// closes the conn, which fails ReadFrame and ends the loop; reply
	// sends target the per-request 1-buffered channels and cannot block.
	go c.readLoop() //botvet:ignore goleak audited: terminated by conn close, sends are buffered per request
	ack, err := c.hello(ctx)
	if err != nil {
		c.close()
		return nil, err
	}
	if ack.ShardID != id {
		c.close()
		return nil, fmt.Errorf("cluster: shard at %s identifies as %d, want %d", addr, ack.ShardID, id)
	}
	return c, nil
}

func (c *shardClient) readLoop() {
	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			c.close()
			return
		}
		c.mu.Lock()
		ch := c.pending[f.ReqID]
		delete(c.pending, f.ReqID)
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// close tears the session down and fails every waiting caller.
func (c *shardClient) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pending := c.pending
	c.pending = make(map[uint32]chan Frame)
	c.mu.Unlock()
	_ = c.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// call sends one request frame and waits for its ack (or ctx expiry).
func (c *shardClient) call(ctx context.Context, typ FrameKind, payload []byte) (Frame, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Frame{}, ErrShardDown
	}
	c.nextReq++
	reqID := c.nextReq
	ch := make(chan Frame, 1)
	c.pending[reqID] = ch
	c.mu.Unlock()

	f := Frame{Type: typ, ReqID: reqID, Payload: payload}
	c.wmu.Lock()
	_, err := c.conn.Write(AppendFrame(nil, &f))
	c.wmu.Unlock()
	if err != nil {
		c.drop(reqID)
		c.close()
		return Frame{}, fmt.Errorf("%w: %v", ErrShardDown, err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return Frame{}, ErrShardDown
		}
		if resp.Flags&flagBusy != 0 {
			return Frame{}, ErrShardBusy
		}
		if resp.Flags&flagError != 0 {
			return Frame{}, fmt.Errorf("cluster: shard %d: %s", c.id, resp.Payload)
		}
		return resp, nil
	case <-ctx.Done():
		c.drop(reqID)
		return Frame{}, ctx.Err()
	}
}

// drop abandons a pending request (timeout or write failure).
func (c *shardClient) drop(reqID uint32) {
	c.mu.Lock()
	delete(c.pending, reqID)
	c.mu.Unlock()
}

func (c *shardClient) hello(ctx context.Context) (helloAck, error) {
	resp, err := c.call(ctx, msgHello, nil)
	if err != nil {
		return helloAck{}, err
	}
	return decodeHelloAck(resp.Payload)
}

// sendIngest ships one ordered batch and waits for the applied ack,
// retrying busy refusals with a short backoff until ctx expires — the
// shard's bounded queue propagates as latency here and as 503 at the
// HTTP edge above.
func (c *shardClient) sendIngest(ctx context.Context, payload []byte) (ingestAck, error) {
	backoff := 2 * time.Millisecond
	// One timer reused across retries: time.After would allocate a timer
	// per iteration that the runtime holds until it fires. The select
	// always drains timer.C (the other branch returns), so a plain Reset
	// is safe.
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		resp, err := c.call(ctx, msgIngest, payload)
		if err == nil {
			return decodeIngestAck(resp.Payload)
		}
		if !errors.Is(err, ErrShardBusy) {
			return ingestAck{}, err
		}
		if timer == nil {
			timer = time.NewTimer(backoff)
		} else {
			timer.Reset(backoff)
		}
		select {
		case <-ctx.Done():
			return ingestAck{}, fmt.Errorf("%w: %v", ErrShardBusy, ctx.Err())
		case <-timer.C:
		}
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

// snapshot fetches and decodes the shard's current view.
func (c *shardClient) snapshot(ctx context.Context) (ShardSnapshot, error) {
	resp, err := c.call(ctx, msgSnap, nil)
	if err != nil {
		return ShardSnapshot{}, err
	}
	return decodeSnapshot(resp.Payload)
}

// leave asks the shard to drop state for a clean future rejoin.
func (c *shardClient) leave(ctx context.Context) error {
	_, err := c.call(ctx, msgLeave, nil)
	return err
}
