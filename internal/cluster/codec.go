package cluster

import (
	"fmt"
	"net/netip"
	"time"

	"botscope/internal/dataset"
)

// IngestEntry is one element of an msgIngest payload: either a full attack
// record (the shard owns this attack's target partition) or a lightweight
// (id, start, end) tick (the attack is homed elsewhere; the shard folds it
// into its replicated scalar state only). Entries arrive in global stream
// order; Seq is the record's 1-based position in the global stream.
type IngestEntry struct {
	Seq    uint64
	Record *dataset.Attack // nil for a tick
	ID     dataset.DDoSID
	Start  time.Time
	End    time.Time
}

// Tick reports whether the entry is a scalar tick rather than a record.
func (e *IngestEntry) Tick() bool { return e.Record == nil }

const (
	entryTick   byte = 0
	entryRecord byte = 1
)

// encodeIngest appends the msgIngest payload for entries to w.
//
//botvet:codec encode ingest
func encodeIngest(w *wireWriter, entries []IngestEntry) {
	w.uvarint(uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		if e.Record == nil {
			w.buf = append(w.buf, entryTick)
			w.uvarint(e.Seq)
			w.uvarint(uint64(e.ID))
			w.varint(e.Start.UnixNano())
			w.varint(e.End.UnixNano())
			continue
		}
		w.buf = append(w.buf, entryRecord)
		w.uvarint(e.Seq)
		encodeAttack(w, e.Record)
	}
}

// decodeIngest parses an msgIngest payload.
//
//botvet:codec decode ingest
func decodeIngest(payload []byte) ([]IngestEntry, error) {
	r := &wireReader{buf: payload}
	// A tick costs at least 5 bytes (kind + 4 varints).
	n := r.count(5)
	entries := make([]IngestEntry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		if len(r.buf) < 1 {
			r.fail()
			break
		}
		kind := r.buf[0]
		r.buf = r.buf[1:]
		switch kind {
		case entryTick:
			seq := r.uvarint()
			id := dataset.DDoSID(r.uvarint())
			start := time.Unix(0, r.varint()).UTC()
			end := time.Unix(0, r.varint()).UTC()
			entries = append(entries, IngestEntry{Seq: seq, ID: id, Start: start, End: end})
		case entryRecord:
			seq := r.uvarint()
			a := decodeAttack(r)
			if r.err != nil {
				break
			}
			entries = append(entries, IngestEntry{
				Seq: seq, Record: a, ID: a.ID, Start: a.Start, End: a.End,
			})
		default:
			return nil, fmt.Errorf("cluster: unknown ingest entry kind %d", kind)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return entries, nil
}

// encodeAttack appends one full dataset.Attack. Times cross as UTC
// unix-nanoseconds; every string and address round-trips verbatim so the
// shard's analyzer sees exactly the record the frontend validated.
//
//botvet:codec encode attack
func encodeAttack(w *wireWriter, a *dataset.Attack) {
	w.uvarint(uint64(a.ID))
	w.uvarint(uint64(a.BotnetID))
	w.str(string(a.Family))
	w.varint(int64(a.Category))
	w.addr(a.TargetIP)
	w.varint(a.Start.UnixNano())
	w.varint(a.End.UnixNano())
	w.uvarint(uint64(len(a.BotIPs)))
	for _, ip := range a.BotIPs {
		w.addr(ip)
	}
	w.varint(int64(a.TargetASN))
	w.str(a.TargetCountry)
	w.str(a.TargetCity)
	w.str(a.TargetOrg)
	w.f64(a.TargetLat)
	w.f64(a.TargetLon)
}

// decodeAttack parses one full record; on malformed input it sets r.err
// and returns an undefined record.
//
//botvet:codec decode attack
func decodeAttack(r *wireReader) *dataset.Attack {
	a := &dataset.Attack{
		ID:       dataset.DDoSID(r.uvarint()),
		BotnetID: dataset.BotnetID(r.uvarint()),
		Family:   dataset.Family(r.str()),
		Category: dataset.Category(r.varint()),
		TargetIP: r.addr(),
		Start:    time.Unix(0, r.varint()).UTC(),
		End:      time.Unix(0, r.varint()).UTC(),
	}
	n := r.count(5) // every bot IP costs at least 5 bytes
	if n > 0 && r.err == nil {
		a.BotIPs = make([]netip.Addr, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		a.BotIPs = append(a.BotIPs, r.addr())
	}
	a.TargetASN = int(r.varint())
	a.TargetCountry = r.str()
	a.TargetCity = r.str()
	a.TargetOrg = r.str()
	a.TargetLat = r.f64()
	a.TargetLon = r.f64()
	return a
}

// helloAck is the shard's session greeting: its identity and how many
// ingest entries it has applied (the frontend uses the latter to spot a
// lagging or freshly reset shard).
type helloAck struct {
	ShardID int
	Applied uint64
}

//botvet:codec encode helloAck
func encodeHelloAck(w *wireWriter, h helloAck) {
	w.varint(int64(h.ShardID))
	w.uvarint(h.Applied)
}

//botvet:codec decode helloAck
func decodeHelloAck(payload []byte) (helloAck, error) {
	r := &wireReader{buf: payload}
	h := helloAck{ShardID: int(r.varint()), Applied: r.uvarint()}
	return h, r.err
}

// ingestAck reports how many entries the shard has applied in total after
// this batch.
type ingestAck struct {
	Applied uint64
}

//botvet:codec encode ingestAck
func encodeIngestAck(w *wireWriter, a ingestAck) {
	w.uvarint(a.Applied)
}

//botvet:codec decode ingestAck
func decodeIngestAck(payload []byte) (ingestAck, error) {
	r := &wireReader{buf: payload}
	a := ingestAck{Applied: r.uvarint()}
	return a, r.err
}
