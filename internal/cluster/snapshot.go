package cluster

import (
	"net/netip"
	"sort"
	"time"

	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/stats"
	"botscope/internal/stream"
)

// ShardSnapshot is one shard's contribution to a merged live view: the
// shard's identity, how many ingest entries it has applied, and its
// stream.Snapshot. The snapshot's scalar half (Ingested, time bounds,
// Intervals, Durations, Load) covers the *global* stream — every shard
// replicates it from the tick feed — while the keyed half (Protocols,
// FamilyProtocol, Daily, Collaborations) covers only the shard's target
// partition.
type ShardSnapshot struct {
	ShardID int
	Applied uint64
	Snap    stream.Snapshot
}

// encodeSnapshot appends s's wire encoding. Every float crosses as its
// IEEE-754 bits and every time as UTC unix-nanoseconds, so the frontend
// reconstructs values bit-exactly.
//
//botvet:codec encode snapshot
func encodeSnapshot(w *wireWriter, s *ShardSnapshot) {
	w.varint(int64(s.ShardID))
	w.uvarint(s.Applied)
	sn := &s.Snap

	w.varint(int64(sn.Ingested))
	w.varint(sn.FirstStart.UnixNano())
	w.varint(sn.LastStart.UnixNano())
	w.varint(int64(sn.ActiveAttacks))

	w.uvarint(uint64(len(sn.Protocols)))
	for _, p := range sn.Protocols {
		w.varint(int64(p.Category))
		w.varint(int64(p.Count))
	}

	w.uvarint(uint64(len(sn.FamilyProtocol)))
	for _, fp := range sn.FamilyProtocol {
		w.varint(int64(fp.Category))
		w.str(string(fp.Family))
		w.varint(int64(fp.Count))
	}

	encodeDaily(w, &sn.Daily)
	encodeSummary(w, &sn.Intervals.Summary)
	w.f64(sn.Intervals.SimultaneousFrac)
	w.f64(sn.Intervals.ExactZeroFrac)
	encodeSummary(w, &sn.Durations.Summary)
	w.f64(sn.Durations.FracUnder4h)
	w.f64(sn.Durations.FracUnder60s)
	w.varint(int64(sn.Load.Peak))
	w.varint(sn.Load.PeakTime.UnixNano())
	w.f64(sn.Load.TimeWeightedMean)
	encodeCollab(w, &sn.Collaborations)
}

//botvet:codec encode daily
func encodeDaily(w *wireWriter, d *core.DailyStats) {
	w.f64(d.Average)
	w.varint(int64(d.Max))
	w.varint(d.MaxDay.UnixNano())
	w.str(string(d.MaxDominantFamily))
	w.uvarint(uint64(len(d.Days)))
	for _, dc := range d.Days {
		w.varint(dc.Day.UnixNano())
		w.varint(int64(dc.Count))
		encodeFamilyCounts(w, dc.ByFamily)
	}
}

//botvet:codec encode summary
func encodeSummary(w *wireWriter, s *stats.Summary) {
	w.varint(int64(s.N))
	w.f64(s.Mean)
	w.f64(s.Median)
	w.f64(s.StdDev)
	w.f64(s.Min)
	w.f64(s.Max)
	w.f64(s.P80)
	w.f64(s.P95)
}

//botvet:codec encode collab
func encodeCollab(w *wireWriter, c *stream.CollabSummary) {
	w.varint(int64(c.TotalIntra))
	w.varint(int64(c.TotalInter))
	w.f64(c.MeanBotnets)
	encodeFamilyCounts(w, c.Intra)
	encodeFamilyCounts(w, c.Inter)

	pairs := make([]string, 0, len(c.PairCounts))
	for p := range c.PairCounts {
		pairs = append(pairs, p)
	}
	sort.Strings(pairs)
	w.uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		w.str(p)
		w.varint(int64(c.PairCounts[p]))
	}

	w.uvarint(uint64(len(c.Recent)))
	for _, cand := range c.Recent {
		w.str(cand.Target)
		w.varint(cand.Start.UnixNano())
		w.uvarint(uint64(len(cand.Families)))
		for _, f := range cand.Families {
			w.str(string(f))
		}
		w.varint(int64(cand.Botnets))
		w.varint(int64(cand.Attacks))
		w.uvarint(cand.Seq)
		w.bool(cand.Open)
	}
	w.varint(int64(c.OpenWindows))
	w.varint(int64(c.Qualified))
	w.varint(int64(c.BotnetTotal))
}

// encodeFamilyCounts writes a family→count map in sorted-family order so
// the encoding is deterministic regardless of map iteration.
//
//botvet:codec encode familyCounts
func encodeFamilyCounts(w *wireWriter, m map[dataset.Family]int) {
	fams := make([]dataset.Family, 0, len(m))
	for f := range m {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	w.uvarint(uint64(len(fams)))
	for _, f := range fams {
		w.str(string(f))
		w.varint(int64(m[f]))
	}
}

// decodeSnapshot parses a msgSnapResp payload.
//
//botvet:codec decode snapshot
func decodeSnapshot(payload []byte) (ShardSnapshot, error) {
	r := &wireReader{buf: payload}
	var s ShardSnapshot
	s.ShardID = int(r.varint())
	s.Applied = r.uvarint()
	sn := &s.Snap

	sn.Ingested = int(r.varint())
	sn.FirstStart = wireTime(r.varint())
	sn.LastStart = wireTime(r.varint())
	sn.ActiveAttacks = int(r.varint())

	n := r.count(2)
	for i := 0; i < n && r.err == nil; i++ {
		sn.Protocols = append(sn.Protocols, core.ProtocolCount{
			Category: dataset.Category(r.varint()),
			Count:    int(r.varint()),
		})
	}

	n = r.count(3)
	for i := 0; i < n && r.err == nil; i++ {
		sn.FamilyProtocol = append(sn.FamilyProtocol, core.FamilyProtocolRow{
			Category: dataset.Category(r.varint()),
			Family:   dataset.Family(r.str()),
			Count:    int(r.varint()),
		})
	}

	decodeDaily(r, &sn.Daily)
	decodeSummary(r, &sn.Intervals.Summary)
	sn.Intervals.SimultaneousFrac = r.f64()
	sn.Intervals.ExactZeroFrac = r.f64()
	decodeSummary(r, &sn.Durations.Summary)
	sn.Durations.FracUnder4h = r.f64()
	sn.Durations.FracUnder60s = r.f64()
	sn.Load.Peak = int(r.varint())
	sn.Load.PeakTime = wireTime(r.varint())
	sn.Load.TimeWeightedMean = r.f64()
	decodeCollab(r, &sn.Collaborations)
	return s, r.err
}

// wireTime reconstructs a wire timestamp; the zero time round-trips as
// itself so "never set" survives the trip.
func wireTime(nanos int64) time.Time {
	var zero time.Time
	if nanos == zero.UnixNano() {
		return zero
	}
	return time.Unix(0, nanos).UTC()
}

//botvet:codec decode daily
func decodeDaily(r *wireReader, d *core.DailyStats) {
	d.Average = r.f64()
	d.Max = int(r.varint())
	d.MaxDay = wireTime(r.varint())
	d.MaxDominantFamily = dataset.Family(r.str())
	n := r.count(3)
	for i := 0; i < n && r.err == nil; i++ {
		dc := core.DailyCount{
			Day:      wireTime(r.varint()),
			Count:    int(r.varint()),
			ByFamily: decodeFamilyCounts(r),
		}
		d.Days = append(d.Days, dc)
	}
}

//botvet:codec decode summary
func decodeSummary(r *wireReader, s *stats.Summary) {
	s.N = int(r.varint())
	s.Mean = r.f64()
	s.Median = r.f64()
	s.StdDev = r.f64()
	s.Min = r.f64()
	s.Max = r.f64()
	s.P80 = r.f64()
	s.P95 = r.f64()
}

//botvet:codec decode collab
func decodeCollab(r *wireReader, c *stream.CollabSummary) {
	c.TotalIntra = int(r.varint())
	c.TotalInter = int(r.varint())
	c.MeanBotnets = r.f64()
	c.Intra = decodeFamilyCounts(r)
	c.Inter = decodeFamilyCounts(r)

	n := r.count(2)
	c.PairCounts = make(map[string]int, n)
	for i := 0; i < n && r.err == nil; i++ {
		p := r.str()
		c.PairCounts[p] = int(r.varint())
	}

	n = r.count(6)
	for i := 0; i < n && r.err == nil; i++ {
		cand := stream.CollabCandidate{
			Target: r.str(),
			Start:  wireTime(r.varint()),
		}
		fn := r.count(1)
		for j := 0; j < fn && r.err == nil; j++ {
			cand.Families = append(cand.Families, dataset.Family(r.str()))
		}
		cand.Botnets = int(r.varint())
		cand.Attacks = int(r.varint())
		cand.Seq = r.uvarint()
		cand.Open = r.bool()
		c.Recent = append(c.Recent, cand)
	}
	c.OpenWindows = int(r.varint())
	c.Qualified = int(r.varint())
	c.BotnetTotal = int(r.varint())
}

//botvet:codec decode familyCounts
func decodeFamilyCounts(r *wireReader) map[dataset.Family]int {
	n := r.count(2)
	m := make(map[dataset.Family]int, n)
	for i := 0; i < n && r.err == nil; i++ {
		f := dataset.Family(r.str())
		m[f] = int(r.varint())
	}
	return m
}

// maxRecent mirrors internal/stream's bound on the live candidate ring.
const maxRecent = 32

// MergeSnapshots reassembles a single-process stream.Snapshot from shard
// partials. The scalar half comes verbatim from the most advanced shard
// (highest Ingested, ties to the lowest shard id) — every up-to-date shard
// replicated the identical tick stream, so their scalars are bit-identical
// and any one of them is the global truth. The keyed half is summed across
// the disjoint target partitions and reordered with exactly the tie rules
// internal/stream applies, so the merged snapshot is byte-identical to the
// one a single analyzer over the whole feed would produce, for any shard
// count.
//
// Snapshots must be sorted by ShardID (the frontend's fan-out preserves
// that order). An empty input or an all-empty cluster yields the zero
// snapshot, matching an analyzer that has ingested nothing.
func MergeSnapshots(snaps []*ShardSnapshot) stream.Snapshot {
	var out stream.Snapshot
	var src *ShardSnapshot
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if src == nil || s.Snap.Ingested > src.Snap.Ingested {
			src = s
		}
	}
	if src == nil || src.Snap.Ingested == 0 {
		return out
	}

	// Global scalar statistics: verbatim from the most advanced shard.
	out.Ingested = src.Snap.Ingested
	out.FirstStart = src.Snap.FirstStart
	out.LastStart = src.Snap.LastStart
	out.ActiveAttacks = src.Snap.ActiveAttacks
	out.Intervals = src.Snap.Intervals
	out.Durations = src.Snap.Durations
	out.Load = src.Snap.Load

	out.Protocols = mergeProtocols(snaps)
	out.FamilyProtocol = mergeFamilyProtocol(snaps)
	out.Daily = mergeDaily(snaps)
	out.Collaborations = mergeCollab(snaps)
	return out
}

// mergeProtocols sums the per-category counts and rebuilds the breakdown
// with core.ProtocolBreakdown's ordering: count descending, ties by
// category display order.
func mergeProtocols(snaps []*ShardSnapshot) []core.ProtocolCount {
	counts := make(map[dataset.Category]int)
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, p := range s.Snap.Protocols {
			counts[p.Category] += p.Count
		}
	}
	out := make([]core.ProtocolCount, 0, len(counts))
	for _, c := range dataset.Categories {
		if counts[c] > 0 {
			out = append(out, core.ProtocolCount{Category: c, Count: counts[c]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// mergeFamilyProtocol sums the per-(category, family) counts and rebuilds
// the Table II ordering: categories in display order, families
// alphabetically inside each.
func mergeFamilyProtocol(snaps []*ShardSnapshot) []core.FamilyProtocolRow {
	counts := make(map[dataset.Category]map[dataset.Family]int)
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, fp := range s.Snap.FamilyProtocol {
			m := counts[fp.Category]
			if m == nil {
				m = make(map[dataset.Family]int)
				counts[fp.Category] = m
			}
			m[fp.Family] += fp.Count
		}
	}
	var out []core.FamilyProtocolRow
	for _, c := range dataset.Categories {
		fams := make([]dataset.Family, 0, len(counts[c]))
		for f := range counts[c] {
			fams = append(fams, f)
		}
		sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
		for _, f := range fams {
			out = append(out, core.FamilyProtocolRow{Category: c, Family: f, Count: counts[c][f]})
		}
	}
	return out
}

// mergeDaily sums the day buckets by calendar day and recomputes the
// headline statistics with the Analyzer's exact tie rules (earliest peak
// day wins; dominant family by count, ties alphabetically; the average
// spans first day through last day inclusive).
func mergeDaily(snaps []*ShardSnapshot) core.DailyStats {
	type bucket struct {
		count    int
		byFamily map[dataset.Family]int
	}
	days := make(map[int64]*bucket)
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, dc := range s.Snap.Daily.Days {
			key := dc.Day.UnixNano()
			b := days[key]
			if b == nil {
				b = &bucket{byFamily: make(map[dataset.Family]int)}
				days[key] = b
			}
			b.count += dc.Count
			for f, n := range dc.ByFamily {
				b.byFamily[f] += n
			}
		}
	}

	keys := make([]int64, 0, len(days))
	for k := range days {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	st := core.DailyStats{Days: make([]core.DailyCount, 0, len(keys))}
	total := 0
	for _, k := range keys {
		b := days[k]
		dc := core.DailyCount{
			Day:      time.Unix(0, k).UTC(),
			Count:    b.count,
			ByFamily: make(map[dataset.Family]int, len(b.byFamily)),
		}
		for f, n := range b.byFamily {
			dc.ByFamily[f] = n
		}
		st.Days = append(st.Days, dc)
		total += b.count
		if b.count > st.Max {
			st.Max = b.count
			st.MaxDay = dc.Day
			best, bestN := dataset.Family(""), 0
			for f, n := range b.byFamily {
				if n > bestN || (n == bestN && f < best) {
					best, bestN = f, n
				}
			}
			st.MaxDominantFamily = best
		}
	}
	if len(keys) > 0 {
		span := int(time.Unix(0, keys[len(keys)-1]).UTC().Sub(time.Unix(0, keys[0]).UTC()).Hours()/24) + 1
		st.Average = float64(total) / float64(span)
	}
	return st
}

// mergeCollab sums the Table VI counters over the disjoint target
// partitions and interleaves the candidate rings back into the exact
// order a single tracker emits: closed candidates by global sequence of
// their window's first attack (finalization follows window-creation
// order, which is seq order), then still-open candidates by (start,
// target address) — the snapshot's pending sort.
func mergeCollab(snaps []*ShardSnapshot) stream.CollabSummary {
	out := stream.CollabSummary{
		Intra:      make(map[dataset.Family]int),
		Inter:      make(map[dataset.Family]int),
		PairCounts: make(map[string]int),
	}
	var closed, open []stream.CollabCandidate
	for _, s := range snaps {
		if s == nil {
			continue
		}
		c := &s.Snap.Collaborations
		out.TotalIntra += c.TotalIntra
		out.TotalInter += c.TotalInter
		out.OpenWindows += c.OpenWindows
		out.Qualified += c.Qualified
		out.BotnetTotal += c.BotnetTotal
		for f, n := range c.Intra {
			out.Intra[f] += n
		}
		for f, n := range c.Inter {
			out.Inter[f] += n
		}
		for p, n := range c.PairCounts {
			out.PairCounts[p] += n
		}
		for _, cand := range c.Recent {
			if cand.Open {
				open = append(open, cand)
			} else {
				closed = append(closed, cand)
			}
		}
	}
	sort.Slice(closed, func(i, j int) bool { return closed[i].Seq < closed[j].Seq })
	sort.Slice(open, func(i, j int) bool {
		if !open[i].Start.Equal(open[j].Start) {
			return open[i].Start.Before(open[j].Start)
		}
		return lessTarget(open[i].Target, open[j].Target)
	})
	out.Recent = append(closed, open...)
	if len(out.Recent) > maxRecent {
		out.Recent = out.Recent[len(out.Recent)-maxRecent:]
	}
	if len(out.Recent) == 0 {
		// A single-process snapshot reports null, not [], when no
		// candidates exist; keep the merged JSON identical.
		out.Recent = nil
	}
	if out.Qualified > 0 {
		out.MeanBotnets = float64(out.BotnetTotal) / float64(out.Qualified)
	}
	return out
}

// lessTarget orders candidate targets the way the tracker's pending sort
// does — by address value, not lexically ("9.0.0.1" sorts before
// "10.0.0.1"). Unparseable targets fall back to string order.
func lessTarget(a, b string) bool {
	ia, errA := netip.ParseAddr(a)
	ib, errB := netip.ParseAddr(b)
	if errA != nil || errB != nil {
		return a < b
	}
	return ia.Less(ib)
}
