package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"botscope/internal/cluster"
	"botscope/internal/dataset"
	"botscope/internal/serve"
	"botscope/internal/synth"
)

// liveRoutes are the live query endpoints whose bodies must be
// byte-identical across deployment shapes. /api/live/ingeststats is
// excluded: it reports wall-clock feeder telemetry, not event-time
// analytics.
var liveRoutes = []string{
	"/api/live/summary",
	"/api/live/daily",
	"/api/live/intervals",
	"/api/live/durations",
	"/api/live/load",
	"/api/live/collaborations",
}

var (
	feedOnce    sync.Once
	feedStore   *dataset.Store
	feedBatches [][]byte // the replayed feed, split into ordered JSONL batches
	feedErr     error
)

// replayFeed shares one seeded workload, encoded as two ordered JSONL
// batches, across the determinism tests.
func replayFeed(t *testing.T) (*dataset.Store, [][]byte) {
	t.Helper()
	feedOnce.Do(func() {
		feedStore, feedErr = synth.GenerateStore(synth.Config{Seed: 11, Scale: 0.04})
		if feedErr != nil {
			return
		}
		attacks := feedStore.Attacks()
		half := len(attacks) / 2
		for _, part := range [][]*dataset.Attack{attacks[:half], attacks[half:]} {
			var buf bytes.Buffer
			if feedErr = dataset.WriteJSONL(&buf, part); feedErr != nil {
				return
			}
			feedBatches = append(feedBatches, buf.Bytes())
		}
	})
	if feedErr != nil {
		t.Fatal(feedErr)
	}
	return feedStore, feedBatches
}

// getBody performs a GET against h and returns status, headers, and body.
func getBody(t *testing.T, h http.Handler, path string) (int, http.Header, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Result().Header, rec.Body.String()
}

// postIngest replays one JSONL batch and returns the decoded response.
func postIngest(t *testing.T, h http.Handler, batch []byte, wantStatus int) (ingested, total int) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/ingest", bytes.NewReader(batch))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("POST /api/ingest = %d, want %d (body: %.200s)", rec.Code, wantStatus, rec.Body.String())
	}
	var resp struct {
		Ingested int `json:"ingested"`
		Total    int `json:"total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("ingest response: %v", err)
	}
	return resp.Ingested, resp.Total
}

// startCluster boots an n-shard loopback cluster and its HTTP face.
func startCluster(t *testing.T, n int) (*cluster.Local, *serve.LiveServer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	local, err := cluster.StartLocal(ctx, n, 0, 0, 0)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { local.Close(); cancel() })
	return local, serve.NewLiveServer(local.Frontend, serve.WithClusterAdmin(local.Frontend))
}

// TestClusterDeterministicAcrossShardCounts is the central property of the
// sharded tier: replaying the same ordered feed through 1, 2, 4, and 7
// shards yields responses byte-identical to a single-process server — at
// every batch boundary, not just at the end.
func TestClusterDeterministicAcrossShardCounts(t *testing.T) {
	store, batches := replayFeed(t)

	// Baseline: the single-process server, checkpointed after each batch.
	single := serve.New(store, 0.04)
	checkpoints := make([]map[string]string, len(batches))
	for i, batch := range batches {
		postIngest(t, single, batch, http.StatusOK)
		checkpoints[i] = make(map[string]string)
		for _, route := range liveRoutes {
			code, _, body := getBody(t, single, route)
			if code != http.StatusOK {
				t.Fatalf("single-process GET %s = %d (%.200s)", route, code, body)
			}
			checkpoints[i][route] = body
		}
	}

	total := 0
	for _, batch := range batches {
		total += bytes.Count(batch, []byte("\n"))
	}

	for _, n := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			_, h := startCluster(t, n)
			got := 0
			for i, batch := range batches {
				ingested, running := postIngest(t, h, batch, http.StatusOK)
				got += ingested
				if running != got {
					t.Fatalf("batch %d: running total = %d, want %d", i, running, got)
				}
				for _, route := range liveRoutes {
					code, hdr, body := getBody(t, h, route)
					if code != http.StatusOK {
						t.Fatalf("GET %s = %d (%.200s)", route, code, body)
					}
					if hdr.Get(serve.HeaderDegraded) != "" {
						t.Fatalf("GET %s unexpectedly degraded: %s", route, hdr.Get(serve.HeaderMissingShards))
					}
					if body != checkpoints[i][route] {
						t.Errorf("GET %s diverges from single-process after batch %d:\n cluster: %.400s\n single:  %.400s",
							route, i, body, checkpoints[i][route])
					}
				}
			}
			if got != total {
				t.Fatalf("ingested %d records, want %d", got, total)
			}
		})
	}
}

// TestClusterDeterministicEmptyFeed checks the pre-ingest shapes match the
// single-process server exactly, including the guarded 422s.
func TestClusterDeterministicEmptyFeed(t *testing.T) {
	store, _ := replayFeed(t)
	single := serve.New(store, 0.04)
	_, h := startCluster(t, 3)

	for _, route := range liveRoutes {
		wantCode, _, wantBody := getBody(t, single, route)
		code, _, body := getBody(t, h, route)
		if code != wantCode || body != wantBody {
			t.Errorf("empty GET %s = %d %q, single-process %d %q", route, code, body, wantCode, wantBody)
		}
	}
}

// TestClusterLeaveRejoinUnderLoad drives the membership lifecycle mid-feed:
// the cluster must keep serving through a graceful leave, report the
// rejoined shard's refilling partition as degraded, and keep exact ingest
// totals throughout.
func TestClusterLeaveRejoinUnderLoad(t *testing.T) {
	_, batches := replayFeed(t)
	local, h := startCluster(t, 4)

	ingested, _ := postIngest(t, h, batches[0], http.StatusOK)

	// Graceful leave via the admin route.
	req := httptest.NewRequest(http.MethodPost, "/api/cluster/shards/2/leave", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("leave = %d (%.200s)", rec.Code, rec.Body.String())
	}

	// The survivors keep serving queries and ingest.
	code, _, body := getBody(t, h, "/api/live/summary")
	if code != http.StatusOK {
		t.Fatalf("summary during leave = %d (%.200s)", code, body)
	}
	more, running := postIngest(t, h, batches[1], http.StatusOK)
	if running != ingested+more {
		t.Fatalf("total after leave = %d, want %d", running, ingested+more)
	}

	var st cluster.Status
	code, _, body = getBody(t, h, "/api/cluster/status")
	if code != http.StatusOK {
		t.Fatalf("cluster status = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.RingSize != 3 {
		t.Fatalf("ring size after leave = %d, want 3", st.RingSize)
	}

	// Rejoin: the shard comes back clean and refills from here on, so
	// queries flag its partition as degraded (stale) data.
	req = httptest.NewRequest(http.MethodPost, "/api/cluster/shards/2/join", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("join = %d (%.200s)", rec.Code, rec.Body.String())
	}
	if got := local.Frontend.ClusterStatus().(cluster.Status); got.RingSize != 4 {
		t.Fatalf("ring size after join = %d, want 4", got.RingSize)
	}

	code, hdr, body := getBody(t, h, "/api/live/summary")
	if code != http.StatusOK {
		t.Fatalf("summary after rejoin = %d (%.200s)", code, body)
	}
	if hdr.Get(serve.HeaderDegraded) != "true" || !strings.Contains(hdr.Get(serve.HeaderMissingShards), "2") {
		t.Errorf("rejoined shard not flagged: degraded=%q missing=%q",
			hdr.Get(serve.HeaderDegraded), hdr.Get(serve.HeaderMissingShards))
	}

	// Leaving a shard that is not connected is a clean 404.
	req = httptest.NewRequest(http.MethodPost, "/api/cluster/shards/9/leave", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("leave unknown shard = %d, want 404", rec.Code)
	}
}

// TestFrontendIngestBusy pins the backpressure contract: a second ingest
// arriving while one is in flight is refused whole with a 503-shaped
// error, applying nothing.
func TestFrontendIngestBusy(t *testing.T) {
	local, h := startCluster(t, 1)

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		_, _, err := local.Frontend.LiveIngest(context.Background(), pr)
		done <- err
	}()

	// The pipe blocks the first ingest inside the critical section; poll
	// until the second caller observes it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, err := local.Frontend.LiveIngest(context.Background(), strings.NewReader(""))
		if errors.Is(err, cluster.ErrIngestBusy) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed ErrIngestBusy")
		}
		time.Sleep(time.Millisecond)
	}

	// The HTTP face maps it to 503 + Retry-After with the shared error
	// shape, without applying any records.
	req := httptest.NewRequest(http.MethodPost, "/api/ingest", strings.NewReader(""))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("busy ingest = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("busy ingest missing Retry-After")
	}
	var resp struct {
		Error    string `json:"error"`
		Ingested int    `json:"ingested"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Error == "" {
		t.Fatalf("busy body = %q (%v)", rec.Body.String(), err)
	}
	if resp.Ingested != 0 {
		t.Errorf("busy ingest applied %d records, want 0", resp.Ingested)
	}

	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("first ingest failed: %v", err)
	}
}

// TestFrontendShardLossDegrades kills a shard out from under the frontend
// and checks queries degrade to partial results instead of failing.
func TestFrontendShardLossDegrades(t *testing.T) {
	_, batches := replayFeed(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Boot two shards with independent lifetimes so one can die alone.
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	addrs := make(map[int]string)
	for id := 0; id < 2; id++ {
		sctx := ctx
		if id == 1 {
			sctx = victimCtx
		}
		sh := cluster.NewShard(id, 0)
		addr, _, err := cluster.ListenLocal(sctx, sh)
		if err != nil {
			t.Fatal(err)
		}
		addrs[id] = addr
	}
	f := cluster.NewFrontend(500*time.Millisecond, time.Second)
	if err := f.Connect(ctx, addrs); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := serve.NewLiveServer(f)

	postIngest(t, h, batches[0], http.StatusOK)
	killVictim()

	// The dead shard times out or errors; the next query must still answer
	// from the survivor and flag the loss.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, hdr, body := getBody(t, h, "/api/live/summary")
		if code == http.StatusOK && hdr.Get(serve.HeaderDegraded) == "true" {
			if !strings.Contains(hdr.Get(serve.HeaderMissingShards), "1") {
				t.Fatalf("missing-shards = %q, want it to include 1", hdr.Get(serve.HeaderMissingShards))
			}
			break
		}
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Fatalf("summary after shard loss = %d (%.200s)", code, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("shard loss never surfaced as degraded")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Ingest keeps working against the survivor.
	postIngest(t, h, batches[1], http.StatusOK)
}

// TestLiveServerRateLimit checks per-client admission: requests beyond the
// burst get 429 with a Retry-After hint and the shared JSON error shape,
// and /healthz stays exempt.
func TestLiveServerRateLimit(t *testing.T) {
	local, _ := startCluster(t, 1)
	h := serve.NewLiveServer(local.Frontend, serve.WithRateLimiter(cluster.NewRateLimiter(0.001, 2)))

	limited := false
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest(http.MethodGet, "/api/live/summary", nil)
		req.RemoteAddr = "10.1.2.3:4444"
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			limited = true
			if rec.Header().Get("Retry-After") == "" {
				t.Error("429 missing Retry-After")
			}
			var resp struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Error == "" {
				t.Fatalf("429 body = %q (%v)", rec.Body.String(), err)
			}
		default:
			t.Fatalf("request %d = %d", i, rec.Code)
		}
	}
	if !limited {
		t.Fatal("burst of 3 over burst=2 was never limited")
	}

	// A different client has its own bucket.
	req := httptest.NewRequest(http.MethodGet, "/api/live/summary", nil)
	req.RemoteAddr = "10.9.9.9:1"
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fresh client = %d, want 200", rec.Code)
	}

	// Health stays reachable for probes regardless of the limiter.
	for i := 0; i < 5; i++ {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		req.RemoteAddr = "10.1.2.3:4444"
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("healthz under limit = %d", rec.Code)
		}
	}
}
