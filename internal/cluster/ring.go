package cluster

import (
	"net/netip"
	"sort"
	"sync"
)

// ringReplicas is the number of virtual nodes per shard. 64 points per
// shard keeps the partition imbalance of an FNV-placed ring within a few
// percent for small clusters while the ring stays tiny (a 16-shard ring is
// 1024 points).
const ringReplicas = 64

// Ring is a consistent-hash ring mapping target IPs to shard ids. Targets
// are the partition key because every keyed statistic the shards maintain
// — protocol and family counters, daily buckets, and above all the
// collaboration windows, which join attacks *by target* — stays exact
// when the stream is split by target and summed back.
//
// The ring is safe for concurrent use. Version increments on every
// membership change so snapshot caches can be invalidated.
type Ring struct {
	mu      sync.RWMutex
	version uint64
	members []int       // sorted shard ids, guarded by mu
	points  []ringPoint // sorted by hash, guarded by mu
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over the given shard ids.
func NewRing(shards ...int) *Ring {
	r := &Ring{}
	for _, id := range shards {
		r.Add(id)
	}
	return r
}

// Add inserts a shard's virtual nodes. Adding a present member is a no-op.
func (r *Ring) Add(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		if m == id {
			return
		}
	}
	r.members = append(r.members, id)
	sort.Ints(r.members)
	for rep := 0; rep < ringReplicas; rep++ {
		r.points = append(r.points, ringPoint{hash: pointHash(id, rep), shard: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.version++
}

// Remove deletes a shard's virtual nodes, rerouting its keys to the
// surviving members. Removing an absent member is a no-op.
func (r *Ring) Remove(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	found := false
	for i, m := range r.members {
		if m == id {
			r.members = append(r.members[:i], r.members[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return
	}
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.version++
}

// Members returns the sorted live shard ids.
func (r *Ring) Members() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]int(nil), r.members...)
}

// Size returns the number of live shards.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Version returns the membership generation, incremented on every Add or
// Remove that changes the ring.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Owner returns the shard owning addr's partition: the first virtual node
// clockwise from the target's hash point. It returns -1 for an empty
// ring. Ownership depends only on the membership set, never on join
// order.
//
//botscope:hotpath
func (r *Ring) Owner(addr netip.Addr) int {
	h := addrHash(addr)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return -1
	}
	// First point with hash >= h, wrapping to the start of the ring.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.points[lo].shard
}

// fnv64 constants (FNV-1a).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// addrHash hashes a target address (its 16-byte form, so a v4 target and
// its v4-mapped form land identically) with FNV-1a.
//
//botscope:hotpath
func addrHash(a netip.Addr) uint64 {
	b := a.As16()
	h := uint64(fnvOffset)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime
	}
	return h
}

// pointHash places virtual node rep of a shard on the ring.
//
//botscope:hotpath
func pointHash(id, rep int) uint64 {
	h := uint64(fnvOffset)
	v := uint64(id)<<16 | uint64(uint16(rep))
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}
