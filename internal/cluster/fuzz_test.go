package cluster

import (
	"reflect"
	"testing"
	"time"
)

// FuzzDecodeWire throws arbitrary bytes at the frame parser and, for
// frames that parse, at the payload decoders behind each message type. The
// invariants: never panic, never allocate unboundedly, and any frame that
// decodes re-encodes into bytes that decode to the same frame.
func FuzzDecodeWire(f *testing.F) {
	f.Add(AppendFrame(nil, &Frame{Type: msgHello, ReqID: 1}))
	f.Add(AppendFrame(nil, &Frame{Type: msgPing, ReqID: 2}))
	f.Add([]byte("BSCW\x01"))
	f.Add([]byte("XXXX\x01\x01\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00"))

	{
		w := &wireWriter{}
		start := time.Date(2012, 8, 1, 12, 0, 0, 0, time.UTC)
		encodeIngest(w, []IngestEntry{
			{Seq: 1, ID: 5, Start: start, End: start.Add(time.Hour)},
			{Seq: 2, Record: testAttack(6, "198.51.100.9", start.Add(time.Minute)),
				ID: 6, Start: start.Add(time.Minute), End: start.Add(91 * time.Minute)},
		})
		f.Add(AppendFrame(nil, &Frame{Type: msgIngest, ReqID: 3, Payload: w.buf}))
	}
	{
		w := &wireWriter{}
		encodeIngestAck(w, ingestAck{Applied: 10000})
		f.Add(AppendFrame(nil, &Frame{Type: msgIngestAck, ReqID: 4, Payload: w.buf}))
	}
	{
		w := &wireWriter{}
		encodeHelloAck(w, helloAck{ShardID: 2, Applied: 7})
		f.Add(AppendFrame(nil, &Frame{Type: msgHelloAck, ReqID: 5, Payload: w.buf}))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		re := AppendFrame(nil, &fr)
		fr2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if fr.Type != fr2.Type || fr.Flags != fr2.Flags || fr.ReqID != fr2.ReqID ||
			!reflect.DeepEqual(fr.Payload, fr2.Payload) {
			t.Fatalf("frame round trip: %+v != %+v", fr, fr2)
		}

		switch fr.Type {
		case msgIngest:
			entries, err := decodeIngest(fr.Payload)
			if err != nil {
				return
			}
			// A decoded batch always re-encodes into a decodable payload.
			w := &wireWriter{}
			encodeIngest(w, entries)
			if _, err := decodeIngest(w.buf); err != nil {
				t.Fatalf("re-encoded ingest does not decode: %v", err)
			}
		case msgSnapResp:
			if s, err := decodeSnapshot(fr.Payload); err == nil {
				w := &wireWriter{}
				encodeSnapshot(w, &s)
				if _, err := decodeSnapshot(w.buf); err != nil {
					t.Fatalf("re-encoded snapshot does not decode: %v", err)
				}
			}
		case msgHelloAck:
			_, _ = decodeHelloAck(fr.Payload)
		case msgIngestAck:
			_, _ = decodeIngestAck(fr.Payload)
		}
	})
}
