package cluster

import "testing"

// TestFrameKindAck pins the request→ack table the busy-refusal path and
// the wireframe-checked dispatch switches rely on.
func TestFrameKindAck(t *testing.T) {
	reqAck := map[FrameKind]FrameKind{
		msgHello:  msgHelloAck,
		msgIngest: msgIngestAck,
		msgSnap:   msgSnapResp,
		msgLeave:  msgLeaveAck,
		msgPing:   msgPong,
	}
	for req, want := range reqAck {
		if got := req.ack(); got != want {
			t.Errorf("ack(%d) = %d, want %d", req, got, want)
		}
		if !req.isRequest() {
			t.Errorf("isRequest(%d) = false, want true", req)
		}
	}
	for _, k := range []FrameKind{msgHelloAck, msgIngestAck, msgSnapResp, msgLeaveAck, msgPong} {
		if k.isRequest() {
			t.Errorf("isRequest(%d) = true, want false", k)
		}
		if k.ack() != k {
			t.Errorf("ack(%d) = %d, want identity for ack kinds", k, k.ack())
		}
	}
	if unknown := FrameKind(200); unknown.ack() != unknown || unknown.isRequest() {
		t.Errorf("unknown kind must map to itself and not be a request")
	}
}
