package cluster

import (
	"bytes"
	"errors"
	"net"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"botscope/internal/dataset"
)

// netPipe returns an in-memory connection pair torn down with the test.
func netPipe(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	c, s := net.Pipe()
	t.Cleanup(func() { _ = c.Close(); _ = s.Close() })
	return c, s
}

func TestFrameRoundTrip(t *testing.T) {
	in := Frame{Type: msgIngest, Flags: flagBusy | flagError, ReqID: 0xdeadbeef, Payload: []byte("hello")}
	buf := AppendFrame(nil, &in)
	if len(buf) != headerLen+len(in.Payload) {
		t.Fatalf("encoded length = %d, want %d", len(buf), headerLen+len(in.Payload))
	}

	out, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("ReadFrame = %+v, want %+v", out, in)
	}

	out2, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out2) {
		t.Errorf("DecodeFrame = %+v, want %+v", out2, in)
	}
}

func TestDecodeFrameRejectsMalformedHeaders(t *testing.T) {
	valid := AppendFrame(nil, &Frame{Type: msgPing, ReqID: 7})

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short", valid[:headerLen-1], ErrTruncated},
		{"bad magic", append([]byte("XSCW"), valid[4:]...), ErrBadMagic},
		{"bad version", append(append([]byte{}, valid[:4]...), append([]byte{99}, valid[5:]...)...), ErrBadVersion},
		{"payload past end", func() []byte {
			b := append([]byte{}, valid...)
			b[15] = 10 // declares 10 payload bytes that are not there
			return b
		}(), ErrTruncated},
		{"oversized payload", func() []byte {
			b := append([]byte{}, valid...)
			b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
			return b
		}(), ErrFrameTooBig},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func testAttack(id uint64, target string, start time.Time) *dataset.Attack {
	return &dataset.Attack{
		ID:            dataset.DDoSID(id),
		BotnetID:      dataset.BotnetID(id%97 + 1),
		Family:        "dirtjumper",
		Category:      dataset.CategoryHTTP,
		TargetIP:      netip.MustParseAddr(target),
		Start:         start,
		End:           start.Add(90 * time.Minute),
		BotIPs:        []netip.Addr{netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("2001:db8::1")},
		TargetASN:     64500,
		TargetCountry: "US",
		TargetCity:    "Chicago",
		TargetOrg:     "Example Org",
		TargetLat:     41.88,
		TargetLon:     -87.63,
	}
}

func TestIngestCodecRoundTrip(t *testing.T) {
	start := time.Date(2012, 8, 1, 12, 0, 0, 0, time.UTC)
	entries := []IngestEntry{
		{Seq: 1, ID: 5, Start: start, End: start.Add(time.Hour)},
		{Seq: 2, Record: testAttack(6, "198.51.100.9", start.Add(time.Minute)),
			ID: 6, Start: start.Add(time.Minute), End: start.Add(time.Minute + 90*time.Minute)},
		{Seq: 3, ID: 7, Start: start.Add(2 * time.Minute), End: start.Add(2 * time.Minute)},
	}
	w := &wireWriter{}
	encodeIngest(w, entries)

	got, err := decodeIngest(w.buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entries, got) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, entries)
	}
	if !got[0].Tick() || got[1].Tick() {
		t.Errorf("tick flags = %v, %v; want true, false", got[0].Tick(), got[1].Tick())
	}

	// Every truncation of a valid payload must fail cleanly, never panic.
	for i := 0; i < len(w.buf); i++ {
		if _, err := decodeIngest(w.buf[:i]); err == nil && i < len(w.buf) {
			// A strict prefix can only be valid if it still decodes the
			// declared count; decodeIngest checks r.err, so any nil error
			// on a truncation is a bug.
			t.Fatalf("decodeIngest accepted truncation at %d bytes", i)
		}
	}
}

func TestHelloAndIngestAckRoundTrip(t *testing.T) {
	w := &wireWriter{}
	encodeHelloAck(w, helloAck{ShardID: 42, Applied: 1 << 40})
	h, err := decodeHelloAck(w.buf)
	if err != nil || h.ShardID != 42 || h.Applied != 1<<40 {
		t.Errorf("helloAck = %+v, %v", h, err)
	}

	w = &wireWriter{}
	encodeIngestAck(w, ingestAck{Applied: 12345})
	a, err := decodeIngestAck(w.buf)
	if err != nil || a.Applied != 12345 {
		t.Errorf("ingestAck = %+v, %v", a, err)
	}
}

// TestShardBusyAckWhenQueueFull pins the backpressure signal at the wire
// level: with the work queue full (no applier draining it), stateful
// frames are refused immediately with a busy-flagged ack of the matching
// type, while stateless control frames still answer inline.
func TestShardBusyAckWhenQueueFull(t *testing.T) {
	s := NewShard(3, 1)
	s.work <- shardJob{} // fill the queue; no applier is running

	client, server := netPipe(t)
	go s.readLoop(&shardConn{conn: server})

	roundTrip := func(req Frame) Frame {
		t.Helper()
		if _, err := client.Write(AppendFrame(nil, &req)); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadFrame(client)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ReqID != req.ReqID {
			t.Fatalf("response req id = %d, want %d", resp.ReqID, req.ReqID)
		}
		return resp
	}

	// Hello answers inline even under full queue.
	resp := roundTrip(Frame{Type: msgHello, ReqID: 1})
	if resp.Type != msgHelloAck || resp.Flags != 0 {
		t.Fatalf("hello resp = %+v", resp)
	}
	h, err := decodeHelloAck(resp.Payload)
	if err != nil || h.ShardID != 3 {
		t.Fatalf("hello ack = %+v, %v", h, err)
	}

	// Stateful frames get busy acks of the matching type.
	for _, tc := range []struct{ req, ack FrameKind }{
		{msgIngest, msgIngestAck},
		{msgSnap, msgSnapResp},
		{msgLeave, msgLeaveAck},
	} {
		resp := roundTrip(Frame{Type: tc.req, ReqID: uint32(tc.req)})
		if resp.Type != tc.ack || resp.Flags&flagBusy == 0 {
			t.Errorf("type %d: resp = %+v, want busy %d", tc.req, resp, tc.ack)
		}
	}

	// Ping still answers.
	if resp := roundTrip(Frame{Type: msgPing, ReqID: 9}); resp.Type != msgPong {
		t.Errorf("ping resp = %+v", resp)
	}
}

func TestRateLimiterTokenBucket(t *testing.T) {
	l := NewRateLimiter(1, 2)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("third request within burst allowed")
	}
	if retry <= 0 {
		t.Fatalf("retry hint = %v, want > 0", retry)
	}

	// Other clients are unaffected.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("independent client refused")
	}

	// A second's worth of refill earns exactly one token back.
	now = now.Add(time.Second)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("refilled request refused")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("over-refilled: second request allowed after 1s at 1 rps")
	}

	// Idling never accrues past the burst.
	now = now.Add(time.Hour)
	allowed := 0
	for i := 0; i < 5; i++ {
		if ok, _ := l.Allow("a"); ok {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("after idle, %d allowed; want burst of 2", allowed)
	}
}
