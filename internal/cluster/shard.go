package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"botscope/internal/stream"
)

// DefaultQueueDepth bounds a shard's ingest queue: batches past this many
// in flight are refused with a busy ack rather than buffered without
// limit, which is the backpressure signal the frontend surfaces as 503.
const DefaultQueueDepth = 64

// Shard is one worker of the sharded serve tier. It owns a target
// partition of the live feed in a stream.Analyzer (full records for its
// own partition, scalar ticks for everything else) and speaks the wire
// protocol over TCP: ingest batches and snapshot requests queue through a
// single applier goroutine, so reads observe every batch acked before
// them (FIFO read-your-writes).
type Shard struct {
	id         int
	queueDepth int

	an      *stream.Analyzer // applier goroutine only, after Serve starts
	applied atomic.Uint64    // total ingest entries applied

	work chan shardJob

	// Snapshot cache, applier-local: the encoded response is rebuilt only
	// when a batch or reset has been applied since the cached build.
	cacheKey     uint64 // applied+1 at build time (0 = no cache)
	cachePayload []byte
	resets       uint64 // bumped on msgLeave so the cache key never reuses

	mu    sync.Mutex
	conns map[net.Conn]bool // guarded by mu
}

type shardJob struct {
	frame Frame
	conn  *shardConn
}

// shardConn serializes writes to one accepted connection: the applier
// goroutine writes acks while the reader goroutine writes busy refusals.
type shardConn struct {
	conn net.Conn
	wmu  sync.Mutex
}

func (c *shardConn) writeFrame(f *Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.conn.Write(AppendFrame(nil, f))
	return err
}

// NewShard builds a shard worker. queueDepth bounds the ingest queue
// (<= 0 means DefaultQueueDepth).
func NewShard(id, queueDepth int) *Shard {
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	return &Shard{
		id:         id,
		queueDepth: queueDepth,
		an:         stream.New(),
		work:       make(chan shardJob, queueDepth),
		conns:      make(map[net.Conn]bool),
	}
}

// ID returns the shard's identity.
func (s *Shard) ID() int { return s.id }

// Applied returns the total number of ingest entries applied.
func (s *Shard) Applied() uint64 { return s.applied.Load() }

// Serve accepts frontend connections on ln until ctx is cancelled, then
// closes every connection and returns. It runs the applier goroutine for
// the shard's lifetime.
func (s *Shard) Serve(ctx context.Context, ln net.Listener) error {
	defer close(s.work)
	go s.applier()

	go func() {
		<-ctx.Done()
		_ = ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
	}()

	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.readLoop(&shardConn{conn: conn})
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			_ = conn.Close()
		}()
	}
}

// readLoop dispatches frames from one connection. Stateless control
// frames (hello, ping) answer inline; stateful work (ingest, snapshot,
// leave) queues for the applier, and a full queue is refused immediately
// with a busy ack — never buffered past the bound.
func (s *Shard) readLoop(c *shardConn) {
	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			return
		}
		switch f.Type {
		case msgHello:
			w := &wireWriter{}
			encodeHelloAck(w, helloAck{ShardID: s.id, Applied: s.applied.Load()})
			if c.writeFrame(&Frame{Type: msgHelloAck, ReqID: f.ReqID, Payload: w.buf}) != nil {
				return
			}
		case msgPing:
			if c.writeFrame(&Frame{Type: msgPong, ReqID: f.ReqID}) != nil {
				return
			}
		case msgIngest, msgSnap, msgLeave:
			select {
			case s.work <- shardJob{frame: f, conn: c}:
			default:
				if c.writeFrame(&Frame{Type: f.Type.ack(), Flags: flagBusy, ReqID: f.ReqID}) != nil {
					return
				}
			}
		case msgHelloAck, msgIngestAck, msgSnapResp, msgLeaveAck, msgPong:
			// A shard never receives acks: the peer has its roles reversed.
			// Drop the connection so it renegotiates.
			return
		default:
			// Unknown frame kind: protocol error; drop the connection so
			// the peer renegotiates rather than desynchronizing.
			return
		}
	}
}

// applier is the single goroutine that mutates shard state, draining the
// bounded queue in FIFO order.
func (s *Shard) applier() {
	for job := range s.work {
		switch job.frame.Type {
		case msgIngest:
			s.applyIngest(job)
		case msgSnap:
			s.applySnap(job)
		case msgLeave:
			s.applyLeave(job)
		case msgHello, msgHelloAck, msgIngestAck, msgSnapResp, msgLeaveAck, msgPing, msgPong:
			// Never queued: readLoop answers hello/ping inline and rejects
			// acks before this point. Listed so the wireframe gate forces a
			// decision here whenever the protocol grows a kind.
		}
	}
}

func (s *Shard) applyIngest(job shardJob) {
	entries, err := decodeIngest(job.frame.Payload)
	if err == nil {
		err = s.apply(entries)
	}
	if err != nil {
		_ = job.conn.writeFrame(&Frame{
			Type: msgIngestAck, Flags: flagError, ReqID: job.frame.ReqID,
			Payload: []byte(err.Error()),
		})
		return
	}
	w := &wireWriter{}
	encodeIngestAck(w, ingestAck{Applied: s.applied.Load()})
	_ = job.conn.writeFrame(&Frame{Type: msgIngestAck, ReqID: job.frame.ReqID, Payload: w.buf})
}

// apply folds an ordered batch into the analyzer: full records for the
// shard's own partition, ticks for the rest.
func (s *Shard) apply(entries []IngestEntry) error {
	for i := range entries {
		e := &entries[i]
		var err error
		if e.Record != nil {
			err = s.an.IngestAt(e.Record, e.Seq)
		} else {
			err = s.an.Tick(e.ID, e.Start, e.End)
		}
		if err != nil {
			return fmt.Errorf("cluster: shard %d entry %d: %w", s.id, i, err)
		}
		s.applied.Add(1)
	}
	return nil
}

func (s *Shard) applySnap(job shardJob) {
	key := s.resets<<32 | s.applied.Load() + 1
	if key != s.cacheKey {
		snap := ShardSnapshot{ShardID: s.id, Applied: s.applied.Load(), Snap: s.an.Snapshot()}
		w := &wireWriter{}
		encodeSnapshot(w, &snap)
		s.cacheKey = key
		s.cachePayload = w.buf
	}
	_ = job.conn.writeFrame(&Frame{Type: msgSnapResp, ReqID: job.frame.ReqID, Payload: s.cachePayload})
}

// applyLeave resets the shard to empty for a clean rejoin: a shard that
// left the ring missed ticks while away, so its scalar replica and its
// collaboration horizon are unrecoverable — the honest state to rejoin
// with is none, reported as degraded data until the partition refills.
func (s *Shard) applyLeave(job shardJob) {
	s.an = stream.New()
	s.applied.Store(0)
	s.resets++
	s.cacheKey = 0
	s.cachePayload = nil
	_ = job.conn.writeFrame(&Frame{Type: msgLeaveAck, ReqID: job.frame.ReqID})
}

// ListenLocal starts the shard on an ephemeral loopback port and returns
// its address. Serve errors surface on errc (closed listener on shutdown
// reports nil).
func ListenLocal(ctx context.Context, s *Shard) (string, <-chan error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	errc := make(chan error, 1)
	go func() {
		err := s.Serve(ctx, ln)
		if err != nil && !errors.Is(err, net.ErrClosed) {
			errc <- err
		}
		close(errc)
	}()
	return ln.Addr().String(), errc, nil
}
