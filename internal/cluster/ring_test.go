package cluster

import (
	"encoding/binary"
	"net/netip"
	"reflect"
	"testing"
)

// testAddrs generates a deterministic spread of IPv4 and IPv6 addresses.
func testAddrs(n int) []netip.Addr {
	addrs := make([]netip.Addr, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			var b [16]byte
			b[0] = 0x20
			b[1] = 0x01
			binary.BigEndian.PutUint32(b[12:], uint32(i*2654435761))
			addrs = append(addrs, netip.AddrFrom16(b))
			continue
		}
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(i*2654435761))
		addrs = append(addrs, netip.AddrFrom4(b))
	}
	return addrs
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing()
	if got := r.Owner(netip.MustParseAddr("1.2.3.4")); got != -1 {
		t.Fatalf("empty ring owner = %d, want -1", got)
	}
	v0 := r.Version()
	r.Add(2)
	r.Add(0)
	r.Add(1)
	r.Add(1) // idempotent
	if got := r.Members(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("members = %v, want [0 1 2]", got)
	}
	if r.Size() != 3 {
		t.Fatalf("size = %d", r.Size())
	}
	if r.Version() == v0 {
		t.Fatal("version did not advance on membership change")
	}
}

// TestRingConsistentReassignment is the consistent-hash property: removing
// one member only reroutes the keys that member owned, and adding it back
// restores the original assignment exactly.
func TestRingConsistentReassignment(t *testing.T) {
	r := NewRing()
	for id := 0; id < 4; id++ {
		r.Add(id)
	}
	addrs := testAddrs(512)

	before := make([]int, len(addrs))
	counts := make(map[int]int)
	for i, a := range addrs {
		before[i] = r.Owner(a)
		if before[i] < 0 || before[i] > 3 {
			t.Fatalf("owner(%v) = %d", a, before[i])
		}
		counts[before[i]]++
	}
	// Every member should own a nontrivial share of a 512-key spread.
	for id := 0; id < 4; id++ {
		if counts[id] == 0 {
			t.Fatalf("member %d owns no keys: %v", id, counts)
		}
	}

	r.Remove(2)
	for i, a := range addrs {
		after := r.Owner(a)
		if after == 2 {
			t.Fatalf("removed member still owns %v", a)
		}
		if before[i] != 2 && after != before[i] {
			t.Fatalf("key %v moved %d → %d though its owner stayed", a, before[i], after)
		}
	}

	r.Add(2)
	for i, a := range addrs {
		if got := r.Owner(a); got != before[i] {
			t.Fatalf("after rejoin, owner(%v) = %d, want %d", a, got, before[i])
		}
	}
}

// TestRingOwnerDeterministic: the same address maps to the same owner on
// an independently built ring with the same membership.
func TestRingOwnerDeterministic(t *testing.T) {
	build := func(order []int) *Ring {
		r := NewRing()
		for _, id := range order {
			r.Add(id)
		}
		return r
	}
	a := build([]int{0, 1, 2, 3, 4})
	b := build([]int{4, 2, 0, 3, 1}) // insertion order must not matter
	for _, addr := range testAddrs(256) {
		if ao, bo := a.Owner(addr), b.Owner(addr); ao != bo {
			t.Fatalf("owner(%v) differs across build orders: %d vs %d", addr, ao, bo)
		}
	}
}
