package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/par"
	"botscope/internal/stream"
)

// Frontend defaults.
const (
	// DefaultQueryTimeout bounds one shard's snapshot fetch; a slower
	// shard is dropped from that response and flagged as degraded rather
	// than stalling the request.
	DefaultQueryTimeout = 2 * time.Second
	// DefaultIngestTimeout bounds one chunk's fan-out (including busy
	// retries); a shard that cannot ack within it is marked down.
	DefaultIngestTimeout = 5 * time.Second
	// ingestChunk is how many records the frontend batches per fan-out.
	ingestChunk = 256
)

// StatusError is an error that chooses its own HTTP status; the serve
// layer maps it without importing this package.
type StatusError struct {
	Status  int
	Message string
	// RetryAfterSec is surfaced as a Retry-After header when > 0.
	RetryAfterSec int
}

func (e *StatusError) Error() string   { return e.Message }
func (e *StatusError) HTTPStatus() int { return e.Status }
func (e *StatusError) RetryAfter() int { return e.RetryAfterSec }

// ErrIngestBusy is the frontend's backpressure signal: an ingest request
// arrived while another was still being applied. Nothing was accepted;
// the client should retry after a short pause.
var ErrIngestBusy = &StatusError{Status: 503, Message: "cluster: ingest in progress, retry", RetryAfterSec: 1}

// ErrNoShards means no shard could serve the request.
var ErrNoShards = &StatusError{Status: 503, Message: "cluster: no shards reachable", RetryAfterSec: 5}

// Frontend is the stateless query/ingest tier over a set of shard
// workers. It validates and orders the global ingest stream, fans each
// chunk out as records-plus-ticks, and answers live queries by merging
// shard snapshots deterministically. The only state it holds is routing
// (the ring and shard sessions) and the global stream cursor — all
// analytics state lives on the shards.
type Frontend struct {
	ring          *Ring
	queryTimeout  time.Duration
	ingestTimeout time.Duration

	mu      sync.RWMutex
	clients map[int]*shardClient // connected shards, guarded by mu
	addrs   map[int]string       // every shard ever seen, for rejoin; guarded by mu

	ingestMu  sync.Mutex    // serializes ingest (the stream is globally ordered)
	seq       atomic.Uint64 // written under ingestMu; read lock-free by status
	lastStart time.Time     // guarded by ingestMu

	// gen invalidates the merged-snapshot cache: bumped on every applied
	// chunk and every membership change.
	gen    atomic.Uint64
	snapMu sync.Mutex // serializes cache rebuilds only
	// cache holds the merged snapshot for the current generation,
	// lock-free on the read path. Rebuilds publish with
	// CompareAndSwap against the value loaded under snapMu so a
	// racing writer can never clobber a newer snapshot.
	//
	//botscope:memo
	cache atomic.Pointer[mergedSnap]
}

type mergedSnap struct {
	gen      uint64
	snap     stream.Snapshot
	degraded []int
}

// NewFrontend builds a frontend with the given per-shard timeouts (<= 0
// picks the defaults).
func NewFrontend(queryTimeout, ingestTimeout time.Duration) *Frontend {
	if queryTimeout <= 0 {
		queryTimeout = DefaultQueryTimeout
	}
	if ingestTimeout <= 0 {
		ingestTimeout = DefaultIngestTimeout
	}
	return &Frontend{
		ring:          NewRing(),
		queryTimeout:  queryTimeout,
		ingestTimeout: ingestTimeout,
		clients:       make(map[int]*shardClient),
		addrs:         make(map[int]string),
	}
}

// Connect dials every shard in addrs (id → host:port) and adds the ones
// that answer to the ring. It fails if any shard is unreachable — a
// cluster should boot whole.
func (f *Frontend) Connect(ctx context.Context, addrs map[int]string) error {
	ids := make([]int, 0, len(addrs))
	for id := range addrs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := f.join(ctx, id, addrs[id]); err != nil {
			return fmt.Errorf("cluster: connecting shard %d at %s: %w", id, addrs[id], err)
		}
	}
	return nil
}

// Close tears down every shard session.
func (f *Frontend) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, c := range f.clients {
		c.close()
		delete(f.clients, id)
		f.ring.Remove(id)
	}
	f.gen.Add(1)
}

// join dials and registers one shard.
func (f *Frontend) join(ctx context.Context, id int, addr string) error {
	c, err := dialShard(ctx, id, addr)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if old := f.clients[id]; old != nil {
		old.close()
	}
	f.clients[id] = c
	f.addrs[id] = addr
	f.ring.Add(id)
	f.mu.Unlock()
	f.gen.Add(1)
	return nil
}

// markDown removes a shard that failed mid-operation: its keys reroute to
// the survivors and queries report it as degraded until it rejoins.
func (f *Frontend) markDown(id int) {
	f.mu.Lock()
	if c := f.clients[id]; c != nil {
		c.close()
		delete(f.clients, id)
	}
	f.ring.Remove(id)
	f.mu.Unlock()
	f.gen.Add(1)
}

// members returns the live shard ids (sorted) and their sessions.
func (f *Frontend) members() ([]int, []*shardClient) {
	ids := f.ring.Members()
	clients := make([]*shardClient, len(ids))
	f.mu.RLock()
	for i, id := range ids {
		clients[i] = f.clients[id]
	}
	f.mu.RUnlock()
	return ids, clients
}

// LiveSnapshot returns the merged live view plus the ids of shards whose
// data is missing or stale in it (unreachable, timed out, or freshly
// rejoined and still refilling). The error is non-nil only when no shard
// answered at all.
//
// Responses are cached per (ingest, membership) generation: between
// writes, every query is served from the same merged snapshot, so a read
// storm costs one fan-out. Cache hits take no lock at all — only the
// rebuild after a generation change serializes.
func (f *Frontend) LiveSnapshot(ctx context.Context) (stream.Snapshot, []int, error) {
	if c := f.cache.Load(); c != nil && c.gen == f.gen.Load() {
		return c.snap, c.degraded, nil
	}
	f.snapMu.Lock()
	defer f.snapMu.Unlock()
	gen := f.gen.Load()
	prev := f.cache.Load()
	if prev != nil && prev.gen == gen {
		return prev.snap, prev.degraded, nil
	}

	ids, clients := f.members()
	if len(ids) == 0 {
		return stream.Snapshot{}, nil, ErrNoShards
	}
	snaps := par.Map(0, len(ids), func(i int) *ShardSnapshot {
		c := clients[i]
		if c == nil {
			return nil
		}
		sctx, cancel := context.WithTimeout(ctx, f.queryTimeout)
		defer cancel()
		s, err := c.snapshot(sctx)
		if err != nil {
			return nil
		}
		return &s
	})

	merged := MergeSnapshots(snaps)
	var degraded []int
	ok := 0
	for i, s := range snaps {
		switch {
		case s == nil:
			degraded = append(degraded, ids[i])
		case s.Snap.Ingested < merged.Ingested:
			// The shard answered but has not replicated the full tick
			// stream (it rejoined after a leave): its partition is
			// underfilled, so the merged keyed stats undercount.
			degraded = append(degraded, ids[i])
			ok++
		default:
			ok++
		}
	}
	if ok == 0 {
		return stream.Snapshot{}, degraded, ErrNoShards
	}

	if f.gen.Load() == gen {
		f.cache.CompareAndSwap(prev, &mergedSnap{gen: gen, snap: merged, degraded: degraded})
	}
	return merged, degraded, nil
}

// LiveIngest streams JSONL records from body into the cluster: validate
// and order-check at the edge, assign global sequence numbers, fan each
// chunk out with full records to the owning shard and ticks to the rest,
// and wait for every ack. It returns how many records this call applied
// and the cluster's running total.
//
// Semantics match the single-process ingest endpoint: records preceding a
// malformed or out-of-order record stay applied. A concurrent ingest is
// refused outright with ErrIngestBusy (nothing applied) — the global
// stream has one writer by construction. A shard that cannot ack a chunk
// within the ingest timeout is marked down and its partition degrades;
// the chunk still counts as applied on the survivors.
func (f *Frontend) LiveIngest(ctx context.Context, body io.Reader) (int, int, error) {
	if !f.ingestMu.TryLock() {
		return 0, 0, ErrIngestBusy
	}
	defer f.ingestMu.Unlock()

	ingested := 0
	chunk := make([]*dataset.Attack, 0, ingestChunk)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if err := f.flushChunk(ctx, chunk); err != nil {
			return err
		}
		ingested += len(chunk)
		chunk = chunk[:0]
		return nil
	}

	decErr := dataset.DecodeJSONL(body, func(a *dataset.Attack) error {
		if err := a.Validate(); err != nil {
			return err
		}
		if f.seq.Load() > 0 && a.Start.Before(f.lastStart) {
			return fmt.Errorf("%w: %v < %v (attack %d)", stream.ErrOutOfOrder, a.Start, f.lastStart, a.ID)
		}
		f.seq.Add(1)
		f.lastStart = a.Start
		chunk = append(chunk, a)
		if len(chunk) >= ingestChunk {
			return flush()
		}
		return nil
	})
	flushErr := flush()

	total := int(f.seq.Load())
	if decErr != nil {
		return ingested, total, decErr
	}
	return ingested, total, flushErr
}

// flushChunk fans one ordered chunk out to every live shard and waits for
// all acks.
func (f *Frontend) flushChunk(ctx context.Context, chunk []*dataset.Attack) error {
	ids, clients := f.members()
	if len(ids) == 0 {
		return ErrNoShards
	}

	// The chunk entered the stream before the fan-out; seq for record i is
	// f.seq - len(chunk) + 1 + i.
	base := f.seq.Load() - uint64(len(chunk))

	// Build each shard's payload: the owner gets the full record, everyone
	// else gets its scalar tick, all in global order.
	owners := make([]int, len(chunk))
	for i, a := range chunk {
		owners[i] = f.ring.Owner(a.TargetIP)
	}
	payloads := make([][]byte, len(ids))
	for si, id := range ids {
		w := &wireWriter{}
		entries := make([]IngestEntry, len(chunk))
		for i, a := range chunk {
			e := IngestEntry{Seq: base + 1 + uint64(i), ID: a.ID, Start: a.Start, End: a.End}
			if owners[i] == id {
				e.Record = a
			}
			entries[i] = e
		}
		encodeIngest(w, entries)
		payloads[si] = w.buf
	}

	errs := par.Map(0, len(ids), func(i int) error {
		c := clients[i]
		if c == nil {
			return ErrShardDown
		}
		ictx, cancel := context.WithTimeout(ctx, f.ingestTimeout)
		defer cancel()
		_, err := c.sendIngest(ictx, payloads[i])
		return err
	})

	acked := 0
	for i, err := range errs {
		if err == nil {
			acked++
			continue
		}
		if errors.Is(err, context.Canceled) {
			return err
		}
		f.markDown(ids[i])
	}
	if acked == 0 {
		return ErrNoShards
	}
	f.gen.Add(1)
	return nil
}

// ShardStatus describes one shard the frontend knows about.
type ShardStatus struct {
	ID        int    `json:"id"`
	Addr      string `json:"addr"`
	InRing    bool   `json:"in_ring"`
	Connected bool   `json:"connected"`
}

// Status describes the cluster's routing state.
type Status struct {
	Shards      []ShardStatus `json:"shards"`
	RingVersion uint64        `json:"ring_version"`
	RingSize    int           `json:"ring_size"`
	Ingested    uint64        `json:"ingested"`
}

// ClusterStatus reports the routing state for the admin endpoint.
func (f *Frontend) ClusterStatus() any {
	f.mu.RLock()
	ids := make([]int, 0, len(f.addrs))
	for id := range f.addrs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	inRing := make(map[int]bool)
	for _, id := range f.ring.Members() {
		inRing[id] = true
	}
	st := Status{RingVersion: f.ring.Version(), RingSize: f.ring.Size(), Ingested: f.seq.Load()}
	for _, id := range ids {
		st.Shards = append(st.Shards, ShardStatus{
			ID:        id,
			Addr:      f.addrs[id],
			InRing:    inRing[id],
			Connected: f.clients[id] != nil,
		})
	}
	f.mu.RUnlock()
	return st
}

// ShardLeave gracefully removes a shard: its keys reroute to the
// survivors, its state is dropped (so a rejoin starts clean), and queries
// report its partition as degraded until a rejoin refills it. ctx is the
// caller's (typically the admin request's) deadline, tightened to the
// ingest timeout.
func (f *Frontend) ShardLeave(ctx context.Context, id int) error {
	f.mu.Lock()
	c := f.clients[id]
	f.mu.Unlock()
	if c == nil {
		return &StatusError{Status: 404, Message: fmt.Sprintf("cluster: shard %d not connected", id)}
	}
	ctx, cancel := context.WithTimeout(ctx, f.ingestTimeout)
	defer cancel()
	_ = c.leave(ctx) // best effort: a dead shard is removed regardless
	f.markDown(id)
	return nil
}

// ShardJoin (re)connects a shard at its last known address and adds it
// back to the ring, under the caller's deadline tightened to the ingest
// timeout.
func (f *Frontend) ShardJoin(ctx context.Context, id int) error {
	f.mu.RLock()
	addr, known := f.addrs[id]
	f.mu.RUnlock()
	if !known {
		return &StatusError{Status: 404, Message: fmt.Sprintf("cluster: shard %d has no known address", id)}
	}
	ctx, cancel := context.WithTimeout(ctx, f.ingestTimeout)
	defer cancel()
	return f.join(ctx, id, addr)
}
