package cluster_test

import (
	"context"
	"testing"

	"botscope/internal/cluster"
)

// TestShardAdminHonorsCallerContext pins the deadline-threading contract
// of the admin surface: leave/join run under the caller's context, so a
// cancelled admin request cannot start an unbounded reconnect.
func TestShardAdminHonorsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	local, err := cluster.StartLocal(ctx, 2, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	if err := local.Frontend.ShardLeave(ctx, 1); err != nil {
		t.Fatalf("ShardLeave: %v", err)
	}

	dead, kill := context.WithCancel(context.Background())
	kill()
	if err := local.Frontend.ShardJoin(dead, 1); err == nil {
		t.Fatal("ShardJoin with a cancelled context succeeded; the caller's deadline is being dropped")
	}

	if err := local.Frontend.ShardJoin(ctx, 1); err != nil {
		t.Fatalf("ShardJoin after cancelled attempt: %v", err)
	}
}
