// Package cluster implements botscope's sharded serve tier: N shard
// workers each own a consistent-hash partition of the live ingest stream
// (reusing internal/stream's online analyzer per shard), and a stateless
// frontend fans /api/live/* queries and /api/ingest batches out over a
// versioned binary wire protocol, merging shard responses so the cluster's
// output is byte-identical to a single-process server for any shard count.
//
// The determinism argument has two halves. Keyed statistics (protocol and
// family counters, daily buckets, collaboration windows) are partitioned
// by target IP — the same key the collaboration detector groups by — so
// each shard's partial is exact over a disjoint partition and the merge is
// integer addition plus a canonical reorder. Global-order scalar
// statistics (inter-attack gaps, durations, the concurrent-load sweep)
// depend on the interleaving of the whole stream and cannot be merged from
// partitioned accumulators without float reassociation; instead every
// attack's (id, start, end) tick is replicated to every shard, each shard
// folds the identical tick sequence through the identical stream.Scalars
// code, and the merge takes the scalars from any up-to-date shard.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/netip"
)

// Wire protocol constants. The magic and version lead every frame so a
// frontend and shard from different builds fail fast instead of
// misinterpreting each other.
const (
	wireMagic   = "BSCW"
	wireVersion = 1

	// headerLen is magic(4) + version(1) + type(1) + flags(2) + reqID(4) +
	// payload length(4).
	headerLen = 16

	// maxPayload bounds a frame's payload so a corrupt or malicious length
	// prefix cannot force an arbitrary allocation.
	maxPayload = 64 << 20
)

// FrameKind identifies one BSCW frame type. The set is closed: botvet's
// wireframe analyzer checks every switch over a FrameKind against the
// constants below, so adding a kind forces every dispatch point to decide
// how to handle it — protocol drift fails the gate instead of silently
// falling through a default.
//
//botvet:wire
type FrameKind byte

// Frame kinds.
const (
	msgHello     FrameKind = 1 // frontend → shard: open a session
	msgHelloAck  FrameKind = 2 // shard → frontend: shard id + applied count
	msgIngest    FrameKind = 3 // frontend → shard: ordered batch of records/ticks
	msgIngestAck FrameKind = 4 // shard → frontend: batch applied (or busy)
	msgSnap      FrameKind = 5 // frontend → shard: request a snapshot
	msgSnapResp  FrameKind = 6 // shard → frontend: encoded ShardSnapshot
	msgLeave     FrameKind = 7 // frontend → shard: reset state for a clean rejoin
	msgLeaveAck  FrameKind = 8 // shard → frontend: state dropped
	msgPing      FrameKind = 9 // liveness probe
	msgPong      FrameKind = 10
)

// ack maps a request kind to the kind acknowledging it. Ack kinds map to
// themselves: they acknowledge nothing, and answering an ack is a peer
// role violation callers reject before consulting this table.
func (k FrameKind) ack() FrameKind {
	switch k {
	case msgHello:
		return msgHelloAck
	case msgIngest:
		return msgIngestAck
	case msgSnap:
		return msgSnapResp
	case msgLeave:
		return msgLeaveAck
	case msgPing:
		return msgPong
	case msgHelloAck, msgIngestAck, msgSnapResp, msgLeaveAck, msgPong:
		return k
	}
	return k
}

// isRequest reports whether k is a frontend-originated request kind (as
// opposed to a shard-originated ack).
func (k FrameKind) isRequest() bool {
	switch k {
	case msgHello, msgIngest, msgSnap, msgLeave, msgPing:
		return true
	case msgHelloAck, msgIngestAck, msgSnapResp, msgLeaveAck, msgPong:
		return false
	}
	return false
}

// Frame flags.
const (
	// flagBusy marks an ack for a request the shard had to refuse because
	// its bounded ingest queue was full — the backpressure signal.
	flagBusy uint16 = 1 << 0
	// flagError marks an ack whose payload is an error string.
	flagError uint16 = 1 << 1
)

// Frame is one wire protocol message.
type Frame struct {
	Type    FrameKind
	Flags   uint16
	ReqID   uint32
	Payload []byte
}

// Wire protocol errors.
var (
	ErrBadMagic    = errors.New("cluster: bad wire magic")
	ErrBadVersion  = errors.New("cluster: unsupported wire version")
	ErrFrameTooBig = errors.New("cluster: frame payload exceeds limit")
	ErrTruncated   = errors.New("cluster: truncated wire payload")
)

// AppendFrame appends f's wire encoding to dst and returns the extended
// slice (caller owns the buffer).
//
//botscope:hotpath
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = append(dst, wireMagic...)
	dst = append(dst, wireVersion, byte(f.Type))
	dst = binary.BigEndian.AppendUint16(dst, f.Flags)
	dst = binary.BigEndian.AppendUint32(dst, f.ReqID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	return append(dst, f.Payload...)
}

// ReadFrame reads one frame from r, allocating the payload.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	f, n, err := parseHeader(hdr[:])
	if err != nil {
		return Frame{}, err
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("cluster: reading %d-byte payload: %w", n, err)
		}
	}
	return f, nil
}

// parseHeader decodes the fixed header, returning the frame shell and the
// declared payload length.
func parseHeader(hdr []byte) (Frame, int, error) {
	if string(hdr[:4]) != wireMagic {
		return Frame{}, 0, ErrBadMagic
	}
	if hdr[4] != wireVersion {
		return Frame{}, 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, hdr[4], wireVersion)
	}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > maxPayload {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	return Frame{
		Type:  FrameKind(hdr[5]),
		Flags: binary.BigEndian.Uint16(hdr[6:8]),
		ReqID: binary.BigEndian.Uint32(hdr[8:12]),
	}, int(n), nil
}

// DecodeFrame parses one frame from a byte slice (the fuzzer's entry
// point; the streaming path uses ReadFrame). The returned frame's payload
// aliases data.
func DecodeFrame(data []byte) (Frame, error) {
	if len(data) < headerLen {
		return Frame{}, ErrTruncated
	}
	f, n, err := parseHeader(data[:headerLen])
	if err != nil {
		return Frame{}, err
	}
	if len(data)-headerLen < n {
		return Frame{}, ErrTruncated
	}
	f.Payload = data[headerLen : headerLen+n]
	return f, nil
}

// wireWriter appends primitive values to a reusable buffer. All integers
// are unsigned varints (signed values zigzag first), floats cross as their
// IEEE-754 bit patterns so they survive the wire bit-exactly, strings and
// byte blobs are length-prefixed.
type wireWriter struct {
	buf []byte
}

//botscope:hotpath
func (w *wireWriter) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

//botscope:hotpath
func (w *wireWriter) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

//botscope:hotpath
func (w *wireWriter) f64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}

//botscope:hotpath
func (w *wireWriter) str(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

//botscope:hotpath
func (w *wireWriter) bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// addr encodes a netip.Addr as a 1-byte length (4 or 16) plus raw bytes.
func (w *wireWriter) addr(a netip.Addr) {
	if a.Is4() {
		b := a.As4()
		w.buf = append(w.buf, 4)
		w.buf = append(w.buf, b[:]...)
		return
	}
	b := a.As16()
	w.buf = append(w.buf, 16)
	w.buf = append(w.buf, b[:]...)
}

// wireReader consumes primitives from a payload with a sticky error, so
// decode paths read linearly and check once at the end.
type wireReader struct {
	buf []byte
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *wireReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v
}

func (r *wireReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.fail()
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *wireReader) bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) < 1 {
		r.fail()
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b != 0
}

func (r *wireReader) addr() netip.Addr {
	if r.err != nil {
		return netip.Addr{}
	}
	if len(r.buf) < 1 {
		r.fail()
		return netip.Addr{}
	}
	n := int(r.buf[0])
	r.buf = r.buf[1:]
	if n != 4 && n != 16 {
		r.fail()
		return netip.Addr{}
	}
	if len(r.buf) < n {
		r.fail()
		return netip.Addr{}
	}
	var a netip.Addr
	if n == 4 {
		a = netip.AddrFrom4([4]byte(r.buf[:4]))
	} else {
		a = netip.AddrFrom16([16]byte(r.buf[:16]))
	}
	r.buf = r.buf[n:]
	return a
}

// count reads a collection length and sanity-checks it against the bytes
// remaining (every element costs at least minBytes), so a corrupt count
// cannot force an arbitrary allocation.
func (r *wireReader) count(minBytes int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(len(r.buf)/minBytes) {
		r.fail()
		return 0
	}
	return int(n)
}
