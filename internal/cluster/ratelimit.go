package cluster

import (
	"sync"
	"time"
)

// maxLimiterKeys bounds the per-client bucket map. When the map fills
// (an address churn attack, exactly the traffic a DDoS analytics tier
// should expect), all buckets reset — a brief amnesty is cheaper than
// unbounded memory.
const maxLimiterKeys = 65536

// RateLimiter is a per-key token bucket: each client key earns rate
// tokens per second up to burst, and each request spends one. It is safe
// for concurrent use.
type RateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket // guarded by mu
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter granting rate requests per second with
// the given burst (burst < 1 is raised to 1 so a conforming client is
// never starved). A nil or zero limiter is not usable; callers wanting
// "unlimited" skip the limiter entirely.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*tokenBucket),
	}
}

// Allow spends one token for key. It returns whether the request may
// proceed and, when refused, how long until a token accrues (the
// Retry-After hint).
func (l *RateLimiter) Allow(key string) (bool, time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()

	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxLimiterKeys {
			l.buckets = make(map[string]*tokenBucket)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}

	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}
