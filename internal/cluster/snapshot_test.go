package cluster

import (
	"encoding/json"
	"sync"
	"testing"

	"botscope/internal/dataset"
	"botscope/internal/stream"
	"botscope/internal/synth"
)

var (
	mergeOnce   sync.Once
	mergeStore  *dataset.Store
	mergeSingle stream.Snapshot
	mergeSnaps  []*ShardSnapshot
	mergeErr    error
)

// mergeFixture partitions one seeded workload across 4 shard analyzers the
// way the frontend would (owner gets the record, everyone else the tick)
// and snapshots all of them, plus the single-analyzer reference.
func mergeFixture(t testing.TB) ([]*ShardSnapshot, stream.Snapshot) {
	mergeOnce.Do(func() {
		mergeStore, mergeErr = synth.GenerateStore(synth.Config{Seed: 17, Scale: 0.04})
		if mergeErr != nil {
			return
		}
		const nShards = 4
		ring := NewRing()
		shards := make([]*stream.Analyzer, nShards)
		for id := 0; id < nShards; id++ {
			ring.Add(id)
			shards[id] = stream.New()
		}
		single := stream.New()
		seq := uint64(0)
		for _, a := range mergeStore.Attacks() {
			if mergeErr = single.Ingest(a); mergeErr != nil {
				return
			}
			seq++
			owner := ring.Owner(a.TargetIP)
			for id, an := range shards {
				if id == owner {
					mergeErr = an.IngestAt(a, seq)
				} else {
					mergeErr = an.Tick(a.ID, a.Start, a.End)
				}
				if mergeErr != nil {
					return
				}
			}
		}
		mergeSingle = single.Snapshot()
		for id, an := range shards {
			s := ShardSnapshot{ShardID: id, Applied: seq, Snap: an.Snapshot()}
			// Round-trip through the wire codec so the fixture covers
			// exactly what the frontend merges: decoded snapshots.
			w := &wireWriter{}
			encodeSnapshot(w, &s)
			dec, err := decodeSnapshot(w.buf)
			if err != nil {
				mergeErr = err
				return
			}
			mergeSnaps = append(mergeSnaps, &dec)
		}
	})
	if mergeErr != nil {
		t.Fatal(mergeErr)
	}
	return mergeSnaps, mergeSingle
}

// asJSON renders a snapshot the way the serve layer would observe it —
// hidden merge bookkeeping (json:"-" fields) is excluded by design.
func asJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMergeSnapshotsDeterministic: merging 4 wire-decoded shard partials
// reproduces the single-analyzer snapshot exactly, and the merge is
// invariant under shard order.
func TestMergeSnapshotsDeterministic(t *testing.T) {
	snaps, single := mergeFixture(t)
	want := asJSON(t, single)

	merged := MergeSnapshots(snaps)
	if got := asJSON(t, merged); got != want {
		t.Errorf("merged snapshot diverges from single analyzer:\n got %.600s\nwant %.600s", got, want)
	}

	reversed := make([]*ShardSnapshot, len(snaps))
	for i, s := range snaps {
		reversed[len(snaps)-1-i] = s
	}
	if got := asJSON(t, MergeSnapshots(reversed)); got != want {
		t.Error("merge is sensitive to shard order")
	}

	// A nil entry (unreachable shard) degrades the data but must not
	// crash or corrupt the merge shape.
	partial := []*ShardSnapshot{snaps[0], nil, snaps[2], snaps[3]}
	p := MergeSnapshots(partial)
	if p.Ingested != single.Ingested {
		t.Errorf("partial merge Ingested = %d, want %d (ticks are replicated)", p.Ingested, single.Ingested)
	}
}

func TestMergeSnapshotsEmpty(t *testing.T) {
	if got := MergeSnapshots(nil); got.Ingested != 0 {
		t.Errorf("empty merge = %+v", got)
	}
	if got := MergeSnapshots([]*ShardSnapshot{nil, nil}); got.Ingested != 0 {
		t.Errorf("all-nil merge = %+v", got)
	}
	// Shards that exist but saw no traffic merge to the empty snapshot.
	empty := []*ShardSnapshot{
		{ShardID: 0, Snap: stream.New().Snapshot()},
		{ShardID: 1, Snap: stream.New().Snapshot()},
	}
	want := asJSON(t, stream.New().Snapshot())
	if got := asJSON(t, MergeSnapshots(empty)); got != want {
		t.Errorf("idle-shard merge = %s, want %s", got, want)
	}
}

// BenchmarkMergeSnapshots measures the frontend's merge hot path: 4 shard
// partials over a synthetic workload, as exercised once per (ingest,
// membership) generation.
func BenchmarkMergeSnapshots(b *testing.B) {
	snaps, _ := mergeFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := MergeSnapshots(snaps)
		if merged.Ingested == 0 {
			b.Fatal("empty merge")
		}
	}
}
