package cluster

import (
	"context"
	"fmt"
	"time"
)

// Local is an n-shard cluster running inside one process: every shard
// listens on its own loopback TCP port and the frontend talks to them
// over the real wire protocol, so `botserve -shards N` (and every test)
// exercises exactly the code path a multi-node deployment would.
type Local struct {
	Frontend *Frontend
	Shards   []*Shard
	Addrs    map[int]string

	cancel context.CancelFunc
}

// StartLocal boots n shard workers on loopback listeners and a frontend
// connected to all of them. queueDepth bounds each shard's ingest queue
// (<= 0 means DefaultQueueDepth); the timeouts configure the frontend
// (<= 0 picks defaults). Close (or cancelling ctx) stops everything.
func StartLocal(ctx context.Context, n, queueDepth int, queryTimeout, ingestTimeout time.Duration) (*Local, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", n)
	}
	ctx, cancel := context.WithCancel(ctx)
	l := &Local{Addrs: make(map[int]string), cancel: cancel}
	for id := 0; id < n; id++ {
		sh := NewShard(id, queueDepth)
		addr, _, err := ListenLocal(ctx, sh)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("cluster: starting shard %d: %w", id, err)
		}
		l.Shards = append(l.Shards, sh)
		l.Addrs[id] = addr
	}
	l.Frontend = NewFrontend(queryTimeout, ingestTimeout)
	if err := l.Frontend.Connect(ctx, l.Addrs); err != nil {
		cancel()
		return nil, err
	}
	return l, nil
}

// Close shuts the frontend and every shard down.
func (l *Local) Close() {
	l.Frontend.Close()
	l.cancel()
}
