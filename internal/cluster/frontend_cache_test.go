package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"botscope/internal/stream"
)

// TestLiveSnapshotCacheFastPath pins the merged-snapshot cache contract:
// a cached value for the current generation is served without touching
// the (empty) membership, and a generation bump invalidates it.
func TestLiveSnapshotCacheFastPath(t *testing.T) {
	f := NewFrontend(time.Second, time.Second)
	defer f.Close()

	want := stream.Snapshot{Ingested: 42}
	f.cache.Store(&mergedSnap{gen: f.gen.Load(), snap: want})

	got, degraded, err := f.LiveSnapshot(context.Background())
	if err != nil {
		t.Fatalf("LiveSnapshot with warm cache: %v", err)
	}
	if got.Ingested != want.Ingested {
		t.Fatalf("cached snapshot: Ingested = %d, want %d", got.Ingested, want.Ingested)
	}
	if len(degraded) != 0 {
		t.Fatalf("cached snapshot reported degraded shards %v", degraded)
	}

	// Bumping the generation invalidates the cache; with no shards the
	// rebuild must fail rather than serve the stale snapshot.
	f.gen.Add(1)
	if _, _, err := f.LiveSnapshot(context.Background()); !errors.Is(err, ErrNoShards) {
		t.Fatalf("stale cache served after generation bump: err = %v, want ErrNoShards", err)
	}
}

// TestSnapshotCachePublishDiscipline pins the CompareAndSwap publish on
// the memo slot: a rebuild that loaded prev before a newer snapshot was
// published must lose the race, never clobber the newer value. The
// production path in LiveSnapshot follows exactly this sequence; reverting
// it to a plain Store also trips the memodisc analyzer in make botvet.
func TestSnapshotCachePublishDiscipline(t *testing.T) {
	f := NewFrontend(time.Second, time.Second)
	defer f.Close()

	prev := f.cache.Load() // what a stale rebuild observed (nil: cold cache)
	newer := &mergedSnap{gen: 2, snap: stream.Snapshot{Ingested: 99}}
	if !f.cache.CompareAndSwap(prev, newer) {
		t.Fatal("publishing the newer snapshot failed on a cold cache")
	}

	stale := &mergedSnap{gen: 1, snap: stream.Snapshot{Ingested: 7}}
	if f.cache.CompareAndSwap(prev, stale) {
		t.Fatal("stale rebuild clobbered a newer published snapshot")
	}
	if got := f.cache.Load(); got != newer {
		t.Fatalf("cache holds %+v, want the newer snapshot", got)
	}
}
