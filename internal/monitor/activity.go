package monitor

import (
	"fmt"
	"sort"
	"time"

	"botscope/internal/dataset"
)

// BotnetActivity summarizes one botnet generation's observed behaviour:
// the paper marks generations by binary hashes and tracks their activity
// through the monitoring feed.
type BotnetActivity struct {
	ID     dataset.BotnetID
	Family dataset.Family
	// Hash is the generation fingerprint from the Botnetlist record, when
	// available.
	Hash string
	// Attacks is the number of attacks attributed to the generation.
	Attacks int
	// FirstAttack/LastAttack bound its observed attack activity.
	FirstAttack time.Time
	LastAttack  time.Time
	// UniqueTargets is the number of distinct victims.
	UniqueTargets int
	// PeakMagnitude is the largest single-attack source count.
	PeakMagnitude int
}

// Lifetime returns the observed active span of the generation.
func (b BotnetActivity) Lifetime() time.Duration {
	return b.LastAttack.Sub(b.FirstAttack)
}

// BotnetActivities profiles every attack-launching botnet of a family,
// ordered by attack count descending. The error is non-nil when the
// family launched nothing.
func (c *Collector) BotnetActivities(family dataset.Family) ([]BotnetActivity, error) {
	rows := c.store.RowsByFamily(family)
	if len(rows) == 0 {
		return nil, fmt.Errorf("monitor: family %s has no attacks", family)
	}
	acc := make(map[dataset.BotnetID]*BotnetActivity)
	targets := make(map[dataset.BotnetID]map[string]bool)
	for _, row := range rows {
		v := c.store.AttackAt(int(row))
		id := v.BotnetID()
		start := v.Start()
		act := acc[id]
		if act == nil {
			act = &BotnetActivity{
				ID:          id,
				Family:      family,
				FirstAttack: start,
				LastAttack:  start,
			}
			if rec, ok := c.store.BotnetByID(id); ok {
				act.Hash = rec.Hash()
			}
			acc[id] = act
			targets[id] = make(map[string]bool)
		}
		act.Attacks++
		if start.Before(act.FirstAttack) {
			act.FirstAttack = start
		}
		if start.After(act.LastAttack) {
			act.LastAttack = start
		}
		if m := v.Magnitude(); m > act.PeakMagnitude {
			act.PeakMagnitude = m
		}
		targets[id][v.TargetIP().String()] = true
	}
	out := make([]BotnetActivity, 0, len(acc))
	for id, act := range acc {
		act.UniqueTargets = len(targets[id])
		out = append(out, *act)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attacks != out[j].Attacks {
			return out[i].Attacks > out[j].Attacks
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// GenerationChurn measures how a family's attack volume is distributed
// over its generations: the fraction launched by the single most active
// generation, and the number of generations covering 90% of attacks. The
// paper notes a few generations dominate each family.
type GenerationChurn struct {
	Family      dataset.Family
	Generations int
	// TopShare is the most active generation's share of the family's
	// attacks.
	TopShare float64
	// P90Generations is how many generations it takes to cover 90% of
	// the family's attacks.
	P90Generations int
}

// Churn computes generation concentration for a family.
func (c *Collector) Churn(family dataset.Family) (GenerationChurn, error) {
	acts, err := c.BotnetActivities(family)
	if err != nil {
		return GenerationChurn{}, err
	}
	total := 0
	for _, a := range acts {
		total += a.Attacks
	}
	out := GenerationChurn{Family: family, Generations: len(acts)}
	if total == 0 {
		return out, nil
	}
	out.TopShare = float64(acts[0].Attacks) / float64(total)
	cum := 0
	for i, a := range acts {
		cum += a.Attacks
		if float64(cum) >= 0.9*float64(total) {
			out.P90Generations = i + 1
			break
		}
	}
	return out, nil
}
