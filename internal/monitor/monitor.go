// Package monitor reproduces the collection semantics of the paper's
// botnet-monitoring service (§II-B): hourly reports per family whose bot
// sets are cumulative over the trailing 24 hours, plus the weekly
// source-country aggregation behind the shift-pattern analysis (Fig 8).
package monitor

import (
	"fmt"
	"sort"
	"time"

	"botscope/internal/dataset"
)

// HourlyReport is one snapshot of one family: how much bot activity the
// monitoring service would have logged during the trailing 24 hours.
type HourlyReport struct {
	Family dataset.Family
	Time   time.Time
	// ActiveAttacks is the number of attacks overlapping the hour.
	ActiveAttacks int
	// BotRefs counts bot participations in the trailing 24 h window
	// (a bot attacking twice counts twice, as in raw traffic logs).
	BotRefs int
	// CountryRefs breaks BotRefs down by source country.
	CountryRefs map[string]int
}

// Collector derives monitoring reports from a workload store.
type Collector struct {
	store *dataset.Store
	// Lookback is the cumulative window per report; the paper's service
	// used 24 hours.
	Lookback time.Duration
	// Step is the report cadence; the paper's service reported hourly.
	Step time.Duration
}

// NewCollector builds a collector with the paper's 24-hour/1-hour cadence.
func NewCollector(store *dataset.Store) *Collector {
	return &Collector{store: store, Lookback: 24 * time.Hour, Step: time.Hour}
}

// HourlyReports replays the window and emits one report per step for the
// family. It returns an error for an empty workload or non-positive cadence.
func (c *Collector) HourlyReports(family dataset.Family) ([]HourlyReport, error) {
	if c.Step <= 0 || c.Lookback <= 0 {
		return nil, fmt.Errorf("monitor: non-positive step or lookback")
	}
	first, last, ok := c.store.TimeBounds()
	if !ok {
		return nil, fmt.Errorf("monitor: empty workload")
	}
	rows := c.store.RowsByFamily(family)
	if len(rows) == 0 {
		return nil, fmt.Errorf("monitor: family %s has no attacks", family)
	}

	// Sweep: every attack contributes its bot references to reports in
	// [Start, End+Lookback). Build per-step deltas, then prefix-sum.
	steps := int(last.Add(c.Lookback).Sub(first)/c.Step) + 1
	addDeltas := make([]delta, steps+1)
	subDeltas := make([]delta, steps+1)
	activeAdd := make([]int, steps+1)
	activeSub := make([]int, steps+1)

	stepIdx := func(t time.Time) int {
		i := int(t.Sub(first) / c.Step)
		if i < 0 {
			i = 0
		}
		if i > steps {
			i = steps
		}
		return i
	}

	ix := c.store.BotDense()
	for _, row := range rows {
		v := c.store.AttackAt(int(row))
		countries := make(map[string]int)
		refs := 0
		for _, id := range ix.RefsRow(int(row)) {
			refs++
			if ix.Resolved(id) {
				countries[ix.CountryOf(id)]++
			}
		}
		from := stepIdx(v.Start())
		to := stepIdx(v.End().Add(c.Lookback))
		mergeDelta(&addDeltas[from], refs, countries)
		mergeDelta(&subDeltas[to], refs, countries)
		activeAdd[from]++
		activeSub[stepIdx(v.End())]++
	}

	reports := make([]HourlyReport, 0, steps)
	curRefs := 0
	curActive := 0
	curCountries := make(map[string]int)
	for i := 0; i < steps; i++ {
		applyDelta(curCountries, &curRefs, addDeltas[i], 1)
		applyDelta(curCountries, &curRefs, subDeltas[i], -1)
		curActive += activeAdd[i] - activeSub[i]
		snapshot := make(map[string]int, len(curCountries))
		for cc, n := range curCountries {
			if n > 0 {
				snapshot[cc] = n
			}
		}
		reports = append(reports, HourlyReport{
			Family:        family,
			Time:          first.Add(time.Duration(i) * c.Step),
			ActiveAttacks: curActive,
			BotRefs:       curRefs,
			CountryRefs:   snapshot,
		})
	}
	return reports, nil
}

// delta is one sweep-line increment of the hourly-report accumulator.
type delta struct {
	refs    int
	country map[string]int
}

func mergeDelta(d *delta, refs int, countries map[string]int) {
	d.refs += refs
	if d.country == nil {
		d.country = make(map[string]int, len(countries))
	}
	for cc, n := range countries {
		d.country[cc] += n
	}
}

func applyDelta(cur map[string]int, curRefs *int, d delta, sign int) {
	*curRefs += sign * d.refs
	for cc, n := range d.country {
		cur[cc] += sign * n
	}
}

// WeekStats aggregates one family's attack sources over one week: the
// unique bots seen per country, and which countries are new relative to
// every earlier week. This is the raw material of Fig 8.
type WeekStats struct {
	Week int // 0-based week index from the first attack
	// BotsByCountry counts unique bots per source country.
	BotsByCountry map[string]int
	// NewCountries lists countries never seen in any earlier week.
	NewCountries []string
}

// ExistingShift returns the number of bot observations in countries
// already known from earlier weeks.
func (w WeekStats) ExistingShift() int {
	newSet := make(map[string]bool, len(w.NewCountries))
	for _, cc := range w.NewCountries {
		newSet[cc] = true
	}
	n := 0
	for cc, c := range w.BotsByCountry {
		if !newSet[cc] {
			n += c
		}
	}
	return n
}

// NewShift returns the number of bot observations in newly seen countries.
func (w WeekStats) NewShift() int {
	newSet := make(map[string]bool, len(w.NewCountries))
	for _, cc := range w.NewCountries {
		newSet[cc] = true
	}
	n := 0
	for cc, c := range w.BotsByCountry {
		if newSet[cc] {
			n += c
		}
	}
	return n
}

// WeeklySources computes the week-by-week source aggregation for a family.
// An error is returned when the family has no attacks.
//
// The family's attacks arrive sorted by start time, so week indexes are
// nondecreasing along the scan. That ordering invariant lets a single
// stamp array over the dense bot index ("which week was this bot last
// counted in") replace the per-week map[ip]country the old scan built —
// no per-bot map writes, no per-week map allocations, and unresolved bots
// still deduplicate without being counted, exactly as before.
func (c *Collector) WeeklySources(family dataset.Family) ([]WeekStats, error) {
	rows := c.store.RowsByFamily(family)
	if len(rows) == 0 {
		return nil, fmt.Errorf("monitor: family %s has no attacks", family)
	}
	first, _, _ := c.store.TimeBounds()
	weekOf := func(t time.Time) int {
		return int(t.Sub(first).Hours() / (24 * 7))
	}
	ix := c.store.BotDense()
	stamp := make([]int32, ix.NumIDs()) // 0 = never seen; week+1 otherwise

	seen := make(map[string]bool)
	out := make([]WeekStats, 0, 8)
	curWeek := -1
	var byCountry map[string]int
	flush := func() {
		if curWeek < 0 {
			return
		}
		var fresh []string
		for cc := range byCountry {
			if !seen[cc] {
				fresh = append(fresh, cc)
			}
		}
		sort.Strings(fresh)
		for _, cc := range fresh {
			seen[cc] = true
		}
		out = append(out, WeekStats{Week: curWeek, BotsByCountry: byCountry, NewCountries: fresh})
	}
	for _, row := range rows {
		w := weekOf(c.store.AttackAt(int(row)).Start())
		if w != curWeek {
			flush()
			curWeek = w
			byCountry = make(map[string]int)
		}
		for _, id := range ix.RefsRow(int(row)) {
			if stamp[id] == int32(w+1) {
				continue
			}
			stamp[id] = int32(w + 1)
			if ix.Resolved(id) {
				byCountry[ix.CountryOf(id)]++
			}
		}
	}
	flush()
	return out, nil
}
