package monitor

import (
	"net/netip"
	"testing"
	"time"

	"botscope/internal/dataset"
)

var t0 = time.Date(2012, 8, 29, 0, 0, 0, 0, time.UTC)

// buildStore creates a small workload: two attacks by one family, with
// bots in two countries.
func buildStore(t *testing.T) *dataset.Store {
	t.Helper()
	bots := []*dataset.Bot{
		{IP: netip.MustParseAddr("9.0.0.1"), CountryCode: "RU", City: "Moscow", Org: "o1", ASN: 1},
		{IP: netip.MustParseAddr("9.0.0.2"), CountryCode: "RU", City: "Moscow", Org: "o1", ASN: 1},
		{IP: netip.MustParseAddr("9.0.0.3"), CountryCode: "UA", City: "Kyiv", Org: "o2", ASN: 2},
	}
	attacks := []*dataset.Attack{
		{
			ID: 1, BotnetID: 1, Family: dataset.Dirtjumper, Category: dataset.CategoryHTTP,
			TargetIP: netip.MustParseAddr("5.5.5.5"),
			Start:    t0, End: t0.Add(2 * time.Hour),
			BotIPs:        []netip.Addr{bots[0].IP, bots[1].IP},
			TargetCountry: "US", TargetCity: "x", TargetOrg: "y", TargetASN: 3,
		},
		{
			ID: 2, BotnetID: 1, Family: dataset.Dirtjumper, Category: dataset.CategoryHTTP,
			TargetIP: netip.MustParseAddr("5.5.5.5"),
			Start:    t0.Add(10 * 24 * time.Hour), End: t0.Add(10*24*time.Hour + time.Hour),
			BotIPs:        []netip.Addr{bots[0].IP, bots[2].IP},
			TargetCountry: "US", TargetCity: "x", TargetOrg: "y", TargetASN: 3,
		},
	}
	s, err := dataset.NewStore(attacks, nil, bots)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHourlyReportsWindowing(t *testing.T) {
	s := buildStore(t)
	c := NewCollector(s)
	reports, err := c.HourlyReports(dataset.Dirtjumper)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	// At hour 0 the first attack (2 bots) is active.
	r0 := reports[0]
	if r0.BotRefs != 2 {
		t.Errorf("hour 0 BotRefs = %d, want 2", r0.BotRefs)
	}
	if r0.ActiveAttacks != 1 {
		t.Errorf("hour 0 ActiveAttacks = %d, want 1", r0.ActiveAttacks)
	}
	if r0.CountryRefs["RU"] != 2 {
		t.Errorf("hour 0 RU refs = %d, want 2", r0.CountryRefs["RU"])
	}

	// At hour 10 (attack over, still inside 24h lookback) refs persist
	// but no attack is active.
	r10 := reports[10]
	if r10.BotRefs != 2 {
		t.Errorf("hour 10 BotRefs = %d, want 2 (24h cumulative)", r10.BotRefs)
	}
	if r10.ActiveAttacks != 0 {
		t.Errorf("hour 10 ActiveAttacks = %d, want 0", r10.ActiveAttacks)
	}

	// At hour 30 the lookback has expired.
	r30 := reports[30]
	if r30.BotRefs != 0 {
		t.Errorf("hour 30 BotRefs = %d, want 0", r30.BotRefs)
	}
	if len(r30.CountryRefs) != 0 {
		t.Errorf("hour 30 CountryRefs = %v, want empty", r30.CountryRefs)
	}

	// Day 10: the second attack brings one RU and one UA bot.
	r240 := reports[240]
	if r240.BotRefs != 2 || r240.CountryRefs["RU"] != 1 || r240.CountryRefs["UA"] != 1 {
		t.Errorf("hour 240 = %+v, want 1 RU + 1 UA ref", r240)
	}
}

func TestHourlyReportsErrors(t *testing.T) {
	s := buildStore(t)
	c := NewCollector(s)
	if _, err := c.HourlyReports(dataset.Optima); err == nil {
		t.Error("family without attacks succeeded")
	}
	c.Step = 0
	if _, err := c.HourlyReports(dataset.Dirtjumper); err == nil {
		t.Error("zero step succeeded")
	}

	empty, err := dataset.NewStore(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCollector(empty).HourlyReports(dataset.Dirtjumper); err == nil {
		t.Error("empty store succeeded")
	}
}

func TestWeeklySources(t *testing.T) {
	s := buildStore(t)
	c := NewCollector(s)
	weeks, err := c.WeeklySources(dataset.Dirtjumper)
	if err != nil {
		t.Fatal(err)
	}
	if len(weeks) != 2 {
		t.Fatalf("weeks = %d, want 2", len(weeks))
	}
	w0, w1 := weeks[0], weeks[1]
	if w0.Week != 0 || w1.Week != 1 {
		t.Errorf("week indices = %d, %d, want 0, 1", w0.Week, w1.Week)
	}
	// Week 0: 2 unique RU bots, RU is new.
	if w0.BotsByCountry["RU"] != 2 {
		t.Errorf("week 0 RU bots = %d, want 2", w0.BotsByCountry["RU"])
	}
	if len(w0.NewCountries) != 1 || w0.NewCountries[0] != "RU" {
		t.Errorf("week 0 new countries = %v, want [RU]", w0.NewCountries)
	}
	if w0.NewShift() != 2 || w0.ExistingShift() != 0 {
		t.Errorf("week 0 shifts = new %d / existing %d, want 2/0", w0.NewShift(), w0.ExistingShift())
	}
	// Week 1: RU existing (1 bot), UA new (1 bot).
	if w1.ExistingShift() != 1 || w1.NewShift() != 1 {
		t.Errorf("week 1 shifts = new %d / existing %d, want 1/1", w1.NewShift(), w1.ExistingShift())
	}
	if len(w1.NewCountries) != 1 || w1.NewCountries[0] != "UA" {
		t.Errorf("week 1 new countries = %v, want [UA]", w1.NewCountries)
	}
}

func TestWeeklySourcesUnknownFamily(t *testing.T) {
	s := buildStore(t)
	if _, err := NewCollector(s).WeeklySources(dataset.Pandora); err == nil {
		t.Error("family without attacks succeeded")
	}
}

func TestWeeklySourcesDedupWithinWeek(t *testing.T) {
	// A bot attacking twice in one week counts once.
	bot := &dataset.Bot{IP: netip.MustParseAddr("9.0.0.1"), CountryCode: "RU", City: "m", Org: "o", ASN: 1}
	mk := func(id dataset.DDoSID, offset time.Duration) *dataset.Attack {
		return &dataset.Attack{
			ID: id, BotnetID: 1, Family: dataset.Pandora, Category: dataset.CategoryHTTP,
			TargetIP: netip.MustParseAddr("5.5.5.5"),
			Start:    t0.Add(offset), End: t0.Add(offset + time.Hour),
			BotIPs:        []netip.Addr{bot.IP},
			TargetCountry: "US", TargetCity: "x", TargetOrg: "y", TargetASN: 3,
		}
	}
	s, err := dataset.NewStore([]*dataset.Attack{mk(1, 0), mk(2, 3*time.Hour)}, nil, []*dataset.Bot{bot})
	if err != nil {
		t.Fatal(err)
	}
	weeks, err := NewCollector(s).WeeklySources(dataset.Pandora)
	if err != nil {
		t.Fatal(err)
	}
	if weeks[0].BotsByCountry["RU"] != 1 {
		t.Errorf("RU bots = %d, want 1 (dedup)", weeks[0].BotsByCountry["RU"])
	}
}
