package monitor

import (
	"net/netip"
	"testing"
	"time"

	"botscope/internal/dataset"
)

// activityFixture: botnet 1 launches 3 attacks (2 targets), botnet 2 one.
func activityFixture(t *testing.T) *dataset.Store {
	t.Helper()
	mk := func(id dataset.DDoSID, botnet dataset.BotnetID, target string, offset time.Duration, bots int) *dataset.Attack {
		ips := make([]netip.Addr, bots)
		for i := range ips {
			ips[i] = netip.AddrFrom4([4]byte{9, 0, byte(id), byte(i + 1)})
		}
		return &dataset.Attack{
			ID: id, BotnetID: botnet, Family: dataset.Darkshell, Category: dataset.CategoryHTTP,
			TargetIP: netip.MustParseAddr(target),
			Start:    t0.Add(offset), End: t0.Add(offset + time.Hour),
			BotIPs:        ips,
			TargetCountry: "CN", TargetCity: "x", TargetOrg: "y", TargetASN: 1,
		}
	}
	attacks := []*dataset.Attack{
		mk(1, 1, "5.5.5.1", 0, 2),
		mk(2, 1, "5.5.5.1", 24*time.Hour, 5),
		mk(3, 1, "5.5.5.2", 48*time.Hour, 3),
		mk(4, 2, "5.5.5.3", 10*time.Hour, 4),
	}
	botnets := []*dataset.Botnet{
		{ID: 1, Family: dataset.Darkshell, Hash: "aaa111"},
		{ID: 2, Family: dataset.Darkshell, Hash: "bbb222"},
	}
	s, err := dataset.NewStore(attacks, botnets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBotnetActivities(t *testing.T) {
	s := activityFixture(t)
	acts, err := NewCollector(s).BotnetActivities(dataset.Darkshell)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2 {
		t.Fatalf("activities = %d, want 2", len(acts))
	}
	top := acts[0]
	if top.ID != 1 || top.Attacks != 3 {
		t.Errorf("top = %+v, want botnet 1 with 3 attacks", top)
	}
	if top.Hash != "aaa111" {
		t.Errorf("hash = %q, want aaa111", top.Hash)
	}
	if top.UniqueTargets != 2 {
		t.Errorf("unique targets = %d, want 2", top.UniqueTargets)
	}
	if top.PeakMagnitude != 5 {
		t.Errorf("peak magnitude = %d, want 5", top.PeakMagnitude)
	}
	if top.Lifetime() != 48*time.Hour {
		t.Errorf("lifetime = %v, want 48h", top.Lifetime())
	}
	if _, err := NewCollector(s).BotnetActivities(dataset.Optima); err == nil {
		t.Error("family without attacks succeeded")
	}
}

func TestChurn(t *testing.T) {
	s := activityFixture(t)
	churn, err := NewCollector(s).Churn(dataset.Darkshell)
	if err != nil {
		t.Fatal(err)
	}
	if churn.Generations != 2 {
		t.Errorf("generations = %d, want 2", churn.Generations)
	}
	if churn.TopShare != 0.75 {
		t.Errorf("top share = %v, want 0.75", churn.TopShare)
	}
	if churn.P90Generations != 2 {
		t.Errorf("P90 generations = %d, want 2 (3/4 then 4/4)", churn.P90Generations)
	}
	if _, err := NewCollector(s).Churn(dataset.Nitol); err == nil {
		t.Error("family without attacks succeeded")
	}
}
