// Package par provides the bounded-parallelism primitives behind the
// sharded analysis kernels and the parallel workload generator.
//
// Every helper preserves determinism by construction: work is addressed
// by index, results are written into index-addressed slots, and callers
// merge shards in canonical (index) order. The only thing parallelism may
// change is wall-clock time — never output bytes. Each helper also has a
// true sequential fallback (workers == 1 runs inline on the calling
// goroutine), so single-core environments pay no scheduling overhead.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map computes out[i] = f(i) for i in [0, n) using at most workers
// goroutines and returns the results in index order. workers <= 0 means
// GOMAXPROCS; a single worker (or n <= 1) runs inline with no goroutines.
// f must be safe for concurrent invocation on distinct indexes.
//
//botscope:parpool
func Map[T any](workers, n int, f func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				out[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// ChunkMap splits [0, n) into contiguous chunks of roughly equal size —
// one per worker, boundaries independent of scheduling — and computes
// out[c] = f(lo, hi) for each chunk [lo, hi). Use it for reduction-style
// scans (counting, summing) where per-index goroutines would cost more
// than the work itself; merge the per-chunk partials in slice order.
//
//botscope:parpool
func ChunkMap[T any](workers, n int, f func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	bounds := chunkBounds(n, w)
	return Map(w, len(bounds), func(c int) T {
		return f(bounds[c].lo, bounds[c].hi)
	})
}

type span struct{ lo, hi int }

// chunkBounds cuts [0, n) into chunks contiguous, non-empty chunks. The
// boundaries depend only on n and chunks, never on scheduling.
func chunkBounds(n, chunks int) []span {
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	out := make([]span, 0, chunks)
	size := n / chunks
	rem := n % chunks
	lo := 0
	for c := 0; c < chunks; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		out = append(out, span{lo: lo, hi: hi})
		lo = hi
	}
	return out
}
