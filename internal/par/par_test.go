package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		out := Map(workers, 100, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d, want 100", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("Map over empty range = %v, want nil", out)
	}
	if out := ChunkMap(4, 0, func(lo, hi int) int { return hi - lo }); out != nil {
		t.Fatalf("ChunkMap over empty range = %v, want nil", out)
	}
}

// TestMapEveryIndexOnce runs under -race and checks each index is visited
// exactly once, no matter the worker count.
func TestMapEveryIndexOnce(t *testing.T) {
	const n = 10000
	var visits [n]int32
	Map(8, n, func(i int) struct{} {
		atomic.AddInt32(&visits[i], 1)
		return struct{}{}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestChunkMapCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{1, 1}, {1, 8}, {5, 2}, {10, 3}, {100, 7}, {100, 200},
	} {
		sum := 0
		for _, part := range ChunkMap(tc.workers, tc.n, func(lo, hi int) int {
			if lo >= hi {
				t.Fatalf("n=%d workers=%d: empty chunk [%d,%d)", tc.n, tc.workers, lo, hi)
			}
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			return s
		}) {
			sum += part
		}
		want := tc.n * (tc.n - 1) / 2
		if sum != want {
			t.Fatalf("n=%d workers=%d: chunk sum = %d, want %d", tc.n, tc.workers, sum, want)
		}
	}
}

func TestChunkBoundsDeterministic(t *testing.T) {
	a := chunkBounds(1000, 7)
	b := chunkBounds(1000, 7)
	if len(a) != len(b) {
		t.Fatal("nondeterministic chunk count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Contiguity and full coverage.
	lo := 0
	for i, s := range a {
		if s.lo != lo {
			t.Fatalf("chunk %d starts at %d, want %d", i, s.lo, lo)
		}
		lo = s.hi
	}
	if lo != 1000 {
		t.Fatalf("chunks end at %d, want 1000", lo)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
