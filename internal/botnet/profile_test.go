package botnet

import (
	"testing"
	"time"

	"botscope/internal/dataset"
)

func TestProfileTotalAttacks(t *testing.T) {
	p := testProfile(dataset.YZF, 10)
	p.Protocols = []ProtocolShare{
		{Category: dataset.CategoryUDP, Count: 7},
		{Category: dataset.CategoryTCP, Count: 5},
	}
	if got := p.TotalAttacks(); got != 12 {
		t.Errorf("TotalAttacks = %d, want 12", got)
	}
}

func TestProfileValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{name: "empty family", mutate: func(p *Profile) { p.Family = "" }},
		{name: "no attacks", mutate: func(p *Profile) { p.Protocols = nil }},
		{name: "inverted window", mutate: func(p *Profile) { p.ActiveStartFrac = 0.9; p.ActiveEndFrac = 0.1 }},
		{name: "negative window", mutate: func(p *Profile) { p.ActiveStartFrac = -0.1 }},
		{name: "window past one", mutate: func(p *Profile) { p.ActiveEndFrac = 1.5 }},
		{name: "no botnets", mutate: func(p *Profile) { p.Botnets = 0 }},
		{name: "no target countries", mutate: func(p *Profile) { p.TargetCountries = nil }},
		{name: "no target pool", mutate: func(p *Profile) { p.TargetPoolSize = 0 }},
		{name: "no source countries", mutate: func(p *Profile) { p.SourceCountries = nil }},
		{name: "no bot pool", mutate: func(p *Profile) { p.BotPoolSize = 0 }},
		{name: "bad duration median", mutate: func(p *Profile) { p.DurationMedianSec = 0 }},
		{name: "bad duration sigma", mutate: func(p *Profile) { p.DurationSigma = 0 }},
		{name: "magnitude below one", mutate: func(p *Profile) { p.MagnitudeMedian = 0.5 }},
		{name: "no interval modes", mutate: func(p *Profile) { p.Intervals.Modes = nil }},
		{name: "negative symmetric prob", mutate: func(p *Profile) { p.SymmetricProb = -0.1 }},
		{name: "symmetric prob above one", mutate: func(p *Profile) { p.SymmetricProb = 1.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testProfile(dataset.YZF, 10)
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("invalid profile accepted")
			}
		})
	}
	if err := testProfile(dataset.YZF, 10).Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestWindowHelpers(t *testing.T) {
	start := time.Date(2012, 8, 29, 0, 0, 0, 0, time.UTC)
	w := Window{Start: start, End: start.AddDate(0, 0, 10)}
	if got := w.Duration(); got != 240*time.Hour {
		t.Errorf("Duration = %v, want 240h", got)
	}
	if got := w.Days(); got != 10 {
		t.Errorf("Days = %d, want 10", got)
	}
}

func TestPaperWindow(t *testing.T) {
	w := PaperWindow()
	// The paper's window: 2012-08-29 through 2013-03-24, 207 days.
	if got := w.Days(); got != 207 {
		t.Errorf("paper window = %d days, want 207", got)
	}
	if w.Start.Year() != 2012 || w.End.Year() != 2013 {
		t.Errorf("window = %v .. %v", w.Start, w.End)
	}
}
