package botnet

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/geo"
)

// victim is one prepared target with its resolved geolocation.
type victim struct {
	ip  netip.Addr
	loc geo.Location
}

// targetCountry is a victim country with its weighted victim pool.
type targetCountry struct {
	cc            string
	weight        float64
	victims       []victim
	victimWeights []float64
}

// eventKind classifies one scheduled emission in a family's stream.
type eventKind int

const (
	evSingle eventKind = iota + 1
	evGroup            // intra-family collaboration group
	evChain            // multistage consecutive chain
)

// event is one planned emission; size is the group or chain length.
type event struct {
	kind eventKind
	size int
}

// familyGen generates one family's attack stream.
type familyGen struct {
	p      *Profile
	rng    *rand.Rand
	db     *geo.DB
	window Window
	burst  *BurstSpec

	pool          *Pool
	targets       []targetCountry
	countryW      []float64
	catRemaining  map[dataset.Category]int
	catOrder      []dataset.Category
	botnets       []*dataset.Botnet
	botnetWeights []float64
	newCountries  []string
	lastWeek      int

	// catWeights and permBuf are per-draw scratch reused across attacks;
	// they replace allocations only and never alter the RNG stream.
	catWeights []float64
	permBuf    []int

	// symInit/symState implement the persistent symmetric/asymmetric
	// formation regime (see nextSymmetric). curAnchor persists the source
	// anchor country across a regime run so consecutive attacks share
	// recruitment geography (tight dispersion runs, as in Figs 10-13).
	symInit   bool
	symState  bool
	curAnchor string
	flipRate  float64
}

// genResult is the per-family output.
type genResult struct {
	attacks []*dataset.Attack
	botnets []*dataset.Botnet
	singles []*dataset.Attack
}

func (g *familyGen) run(used map[netip.Addr]bool, nextBotnetID *dataset.BotnetID, nextDDoSID *dataset.DDoSID) (*genResult, error) {
	p := g.p
	res := &genResult{}

	// Botnet generations, Zipf-weighted so a few dominate each family.
	for i := 0; i < p.Botnets; i++ {
		hash := make([]byte, 16)
		g.rng.Read(hash)
		b := &dataset.Botnet{
			ID:           *nextBotnetID,
			Family:       p.Family,
			Hash:         hex.EncodeToString(hash),
			ControllerIP: g.db.SampleIP(g.rng),
			FirstSeen:    g.window.Start,
			LastSeen:     g.window.End,
		}
		*nextBotnetID++
		g.botnets = append(g.botnets, b)
	}
	g.botnetWeights = ZipfWeights(len(g.botnets), 1.1)
	res.botnets = g.botnets

	pool, err := NewPool(g.rng, g.db, p, p.BotPoolSize, used)
	if err != nil {
		return nil, err
	}
	g.pool = pool

	if err := g.buildTargets(); err != nil {
		return nil, err
	}

	// Regime-flip rate: campaigns persist, but every family must see a
	// handful of regime switches within its own stream so train/test
	// splits of its dispersion series cover both regimes.
	pSym := p.SymmetricProb
	if pSym > 0 && pSym < 1 {
		wantSwitches := 12.0
		g.flipRate = wantSwitches / (float64(p.TotalAttacks())*2*pSym*(1-pSym) + 1)
		if g.flipRate < 0.015 {
			g.flipRate = 0.015
		}
		if g.flipRate > 0.5 {
			g.flipRate = 0.5
		}
	} else {
		g.flipRate = 0.015
	}

	g.catRemaining = make(map[dataset.Category]int, len(p.Protocols))
	for _, ps := range p.Protocols {
		g.catRemaining[ps.Category] += ps.Count
		g.catOrder = append(g.catOrder, ps.Category)
	}

	// --- Plan the event stream ---------------------------------------
	total := p.TotalAttacks()
	burstCount := 0
	if g.burst != nil {
		burstCount = g.burst.Count
		if burstCount > total/2 {
			burstCount = total / 2
		}
	}
	remaining := total - burstCount

	var events []event
	consumed := 0
	for i := 0; i < p.ConsecutiveChains; i++ {
		length := g.chainLength()
		if i == 0 && p.RecordChainLength > 1 {
			// The record chain (Ddoser's 22 strikes) is emitted whenever
			// the family can afford it at all; ordinary chains stay within
			// half the budget.
			length = p.RecordChainLength
			if length <= remaining*3/4 {
				events = append(events, event{kind: evChain, size: length})
				consumed += length
			}
			continue
		}
		if consumed+length > remaining/2 {
			break
		}
		events = append(events, event{kind: evChain, size: length})
		consumed += length
	}
	for i := 0; i < p.IntraCollab; i++ {
		size := 2
		if g.rng.Float64() < 0.19 { // mean group size 2.19, as observed
			size = 3
		}
		if consumed+size > remaining*3/4 {
			break
		}
		events = append(events, event{kind: evGroup, size: size})
		consumed += size
	}
	for i := 0; i < remaining-consumed; i++ {
		events = append(events, event{kind: evSingle, size: 1})
	}
	g.rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

	// --- Gap schedule --------------------------------------------------
	winDur := g.window.Duration().Seconds()
	activeStart := g.window.Start.Add(time.Duration(p.ActiveStartFrac * winDur * float64(time.Second)))
	activeSpan := (p.ActiveEndFrac - p.ActiveStartFrac) * winDur

	gaps := make([]float64, len(events))
	var rawSum float64
	for i := range gaps {
		gaps[i] = p.Intervals.Sample(g.rng)
		rawSum += gaps[i]
	}
	if rawSum > 0 {
		// Fit the stream into the activity window while preserving the
		// zero-gap (simultaneous) share exactly and the relative shape of
		// the nonzero gaps. Re-clamp to the model floor afterwards: some
		// families (Aldibot, Optima) never strike twice within 60 s, and
		// rescaling must not break that invariant.
		scale := activeSpan * 0.92 / rawSum
		for i := range gaps {
			gaps[i] *= scale
			if gaps[i] > 0 && gaps[i] < p.Intervals.MinSec {
				gaps[i] = p.Intervals.MinSec
			}
		}
	}

	// --- Emission -------------------------------------------------------
	t := activeStart
	for i, ev := range events {
		t = t.Add(time.Duration(gaps[i] * float64(time.Second)))
		if t.After(g.window.End) {
			t = g.window.End.Add(-time.Minute)
		}
		g.advanceWeeks(t)
		switch ev.kind {
		case evSingle:
			a := g.emitAttack(t, nextDDoSID, g.pickBotnet(), g.drawDuration(), -1)
			res.attacks = append(res.attacks, a)
			res.singles = append(res.singles, a)
		case evGroup:
			group := g.emitGroup(t, ev.size, nextDDoSID)
			res.attacks = append(res.attacks, group...)
		case evChain:
			chain := g.emitChain(t, ev.size, nextDDoSID)
			res.attacks = append(res.attacks, chain...)
		}
	}

	if g.burst != nil && burstCount > 0 {
		burst, burstErr := g.emitBurst(burstCount, nextDDoSID)
		if burstErr != nil {
			return nil, burstErr
		}
		res.attacks = append(res.attacks, burst...)
	}
	return res, nil
}

// chainLength samples a multistage chain length around the profile mean.
func (g *familyGen) chainLength() int {
	mean := g.p.ChainLengthMean
	if mean < 2 {
		mean = 2
	}
	// Geometric around the mean, floor 2.
	length := 2
	for float64(length) < mean*4 && g.rng.Float64() < 1-1/(mean-1+1e-9) {
		length++
	}
	if length < 2 {
		length = 2
	}
	return length
}

// buildTargets prepares the per-country victim pools.
func (g *familyGen) buildTargets() error {
	p := g.p
	base := append([]CountryShare(nil), p.TargetCountries...)
	minW := base[0].Weight
	for _, cs := range base {
		if cs.Weight < minW {
			minW = cs.Weight
		}
	}
	if minW <= 0 {
		minW = 1
	}
	// Top the list up with extra atlas countries until the family's
	// country diversity matches its Table V count.
	if p.TargetCountryCount > len(base) {
		present := make(map[string]bool, len(base))
		for _, cs := range base {
			present[cs.CC] = true
		}
		all := g.db.Countries().Countries()
		order := g.rng.Perm(len(all))
		for _, i := range order {
			if len(base) >= p.TargetCountryCount {
				break
			}
			cc := all[i].Code
			if present[cc] {
				continue
			}
			present[cc] = true
			base = append(base, CountryShare{
				CC:     cc,
				Weight: minW / float64(2+len(base)-len(p.TargetCountries)),
			})
		}
	}

	var totalW float64
	for _, cs := range base {
		totalW += cs.Weight
	}
	for _, cs := range base {
		n := int(float64(p.TargetPoolSize) * cs.Weight / totalW)
		if n < 1 {
			n = 1
		}
		tc := targetCountry{cc: cs.CC, weight: cs.Weight}
		for v := 0; v < n; v++ {
			ip, ok := g.db.SampleInfrastructureIP(g.rng, cs.CC)
			if !ok {
				return fmt.Errorf("botnet: no infrastructure blocks in %s", cs.CC)
			}
			loc, ok := g.db.Lookup(ip)
			if !ok {
				return fmt.Errorf("botnet: unresolvable victim IP %v", ip)
			}
			tc.victims = append(tc.victims, victim{ip: ip, loc: loc})
		}
		tc.victimWeights = ZipfWeights(len(tc.victims), p.TargetZipf)
		g.targets = append(g.targets, tc)
		g.countryW = append(g.countryW, cs.Weight)
	}
	return nil
}

// pickTarget draws a victim: country by Table V weights, then a
// Zipf-concentrated victim within the country.
func (g *familyGen) pickTarget() victim {
	ci := WeightedChoice(g.rng, g.countryW)
	if ci < 0 {
		ci = 0
	}
	tc := g.targets[ci]
	vi := WeightedChoice(g.rng, tc.victimWeights)
	if vi < 0 {
		vi = 0
	}
	return tc.victims[vi]
}

// pickBotnet draws a generation, Zipf-weighted.
func (g *familyGen) pickBotnet() dataset.BotnetID {
	i := WeightedChoice(g.rng, g.botnetWeights)
	if i < 0 {
		i = 0
	}
	return g.botnets[i].ID
}

// drawCategory consumes one unit of the per-protocol budget, keeping the
// final per-category counts exactly at the Table II calibration.
func (g *familyGen) drawCategory() dataset.Category {
	weights := g.catWeights[:0]
	for _, c := range g.catOrder {
		weights = append(weights, float64(g.catRemaining[c]))
	}
	g.catWeights = weights
	i := WeightedChoice(g.rng, weights)
	if i < 0 {
		// Budget exhausted (possible only through rounding drift); fall
		// back to the family's first protocol.
		return g.catOrder[0]
	}
	cat := g.catOrder[i]
	g.catRemaining[cat]--
	return cat
}

func (g *familyGen) drawDuration() time.Duration {
	sec := LogNormal(g.rng, g.p.DurationMedianSec, g.p.DurationSigma, g.p.DurationMaxSec)
	if sec < 1 {
		sec = 1
	}
	return time.Duration(sec * float64(time.Second))
}

func (g *familyGen) drawMagnitude() int {
	m := int(LogNormal(g.rng, g.p.MagnitudeMedian, g.p.MagnitudeSigma, g.p.MagnitudeMax))
	if m < 2 {
		m = 2
	}
	return m
}

// nextSymmetric advances the formation-regime Markov chain. Botmaster
// recruitment strategy persists over consecutive attacks (a campaign keeps
// its formation style for a stretch), so the symmetric/asymmetric choice is
// a two-state chain whose stationary distribution equals SymmetricProb.
// The persistence is what makes the per-family dispersion series
// predictable with ARIMA (Figs 12-13) instead of white noise.
func (g *familyGen) nextSymmetric() bool {
	p := g.p.SymmetricProb
	if !g.symInit {
		g.symInit = true
		g.symState = g.rng.Float64() < p
		g.curAnchor = g.pickAnchorCountry()
		return g.symState
	}
	prev := g.symState
	// Transition rates scaled by flipRate keep the stationary probability
	// at p while giving campaign-length runs in each regime.
	if g.symState {
		if g.rng.Float64() < g.flipRate*(1-p) {
			g.symState = false
		}
	} else {
		if g.rng.Float64() < g.flipRate*p {
			g.symState = true
		}
	}
	if g.symState != prev {
		// New campaign: re-anchor the recruitment geography.
		g.curAnchor = g.pickAnchorCountry()
	}
	return g.symState
}

// pickAnchorCountry draws a fresh source-country anchor: mostly from the
// family's base affinity set, occasionally a newly recruited country.
func (g *familyGen) pickAnchorCountry() string {
	if len(g.newCountries) > 0 && g.rng.Float64() < 0.03 {
		return g.newCountries[g.rng.Intn(len(g.newCountries))]
	}
	i := WeightedChoice(g.rng, sourceWeights(g.p))
	if i < 0 {
		i = 0
	}
	return g.p.SourceCountries[i].CC
}

// advanceWeeks recruits new countries as simulated weeks pass (Fig 8's
// shift pattern: rare expansions into fresh countries).
func (g *familyGen) advanceWeeks(t time.Time) {
	week := int(t.Sub(g.window.Start).Hours() / (24 * 7))
	for g.lastWeek < week {
		g.lastWeek++
		if g.rng.Float64() < g.p.NewCountryPerWeek {
			n := g.p.BotPoolSize / 200
			if n < 5 {
				n = 5
			}
			if cc, ok := g.pool.RecruitNewCountry(n); ok {
				g.newCountries = append(g.newCountries, cc)
			}
		}
	}
}

// emitAttack creates one attack record. magnitude < 0 means "draw one".
func (g *familyGen) emitAttack(start time.Time, nextID *dataset.DDoSID, botnet dataset.BotnetID, dur time.Duration, magnitude int) *dataset.Attack {
	v := g.pickTarget()
	return g.emitAttackOn(start, nextID, botnet, dur, magnitude, v)
}

func (g *familyGen) emitAttackOn(start time.Time, nextID *dataset.DDoSID, botnet dataset.BotnetID, dur time.Duration, magnitude int, v victim) *dataset.Attack {
	if magnitude < 0 {
		magnitude = g.drawMagnitude()
	}
	symmetric := g.nextSymmetric()
	form := g.pool.Formation(g.curAnchor, magnitude, symmetric, g.p.DispersionTargetKm, start)
	if len(form) == 0 {
		// A pool can never be empty after NewPool, but guard anyway.
		form = []netip.Addr{g.pool.Bots()[0].IP}
	}
	a := &dataset.Attack{
		ID:            *nextID,
		BotnetID:      botnet,
		Family:        g.p.Family,
		Category:      g.drawCategory(),
		TargetIP:      v.ip,
		Start:         start,
		End:           start.Add(dur),
		BotIPs:        form,
		TargetASN:     v.loc.ASN,
		TargetCountry: v.loc.CountryCode,
		TargetCity:    v.loc.City,
		TargetOrg:     v.loc.Org,
		TargetLat:     v.loc.Point.Lat,
		TargetLon:     v.loc.Point.Lon,
	}
	*nextID++
	return a
}

// emitGroup stages an intra-family collaboration: size attacks by distinct
// botnets against one target, launched simultaneously with matched
// durations and equal magnitudes (Fig 15's equal-height bars).
func (g *familyGen) emitGroup(start time.Time, size int, nextID *dataset.DDoSID) []*dataset.Attack {
	v := g.pickTarget()
	baseDur := g.drawDuration()
	magnitude := g.drawMagnitude()
	ids := g.distinctBotnets(size)
	out := make([]*dataset.Attack, 0, size)
	for i := 0; i < size; i++ {
		dur := baseDur + time.Duration(g.rng.Intn(1200)-600)*time.Second
		if dur < time.Minute {
			dur = time.Minute
		}
		out = append(out, g.emitAttackOn(start, nextID, ids[i%len(ids)], dur, magnitude, v))
	}
	return out
}

// pickQuietTarget draws a victim from the cold tail of a country's Zipf
// pool and removes it from the pool: chains get exclusive victims, so no
// unrelated attack interleaves with (and splits) a multistage campaign.
func (g *familyGen) pickQuietTarget() victim {
	ci := WeightedChoice(g.rng, g.countryW)
	if ci < 0 {
		ci = 0
	}
	tc := &g.targets[ci]
	n := len(tc.victims)
	if n == 1 {
		return tc.victims[0]
	}
	span := 3
	if span > n {
		span = n
	}
	idx := n - 1 - g.rng.Intn(span)
	v := tc.victims[idx]
	tc.victims = append(tc.victims[:idx], tc.victims[idx+1:]...)
	tc.victimWeights = ZipfWeights(len(tc.victims), g.p.TargetZipf)
	return v
}

// emitChain stages a multistage attack: back-to-back strikes on one target
// by one botnet, with gaps matching Fig 17 (about 65% within 10 s).
func (g *familyGen) emitChain(start time.Time, size int, nextID *dataset.DDoSID) []*dataset.Attack {
	v := g.pickQuietTarget()
	botnet := g.pickBotnet()
	magnitude := g.drawMagnitude()
	out := make([]*dataset.Attack, 0, size)
	t := start
	for i := 0; i < size; i++ {
		// Chain strikes are short bursts; 22 of them fit in 18 minutes in
		// the paper's record chain.
		durSec := LogNormal(g.rng, 40, 0.7, 300)
		dur := time.Duration(durSec * float64(time.Second))
		out = append(out, g.emitAttackOn(t, nextID, botnet, dur, magnitude, v))
		var gapSec float64
		switch u := g.rng.Float64(); {
		case u < 0.65:
			gapSec = g.rng.Float64() * 10
		case u < 0.80:
			gapSec = 10 + g.rng.Float64()*20
		default:
			gapSec = 30 + g.rng.Float64()*30
		}
		t = t.Add(dur + time.Duration(gapSec*float64(time.Second)))
	}
	return out
}

// distinctBotnets returns up to n distinct generation IDs.
func (g *familyGen) distinctBotnets(n int) []dataset.BotnetID {
	if n > len(g.botnets) {
		n = len(g.botnets)
	}
	// Inline rand.Perm into a reusable buffer. The loop mirrors the
	// standard library exactly — including the i=0 iteration, whose
	// Intn(1) call consumes a draw — so the RNG stream and the resulting
	// permutation are unchanged.
	if cap(g.permBuf) < len(g.botnets) {
		g.permBuf = make([]int, len(g.botnets))
	}
	m := g.permBuf[:len(g.botnets)]
	for i := 0; i < len(m); i++ {
		j := g.rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	out := make([]dataset.BotnetID, n)
	for i, j := range m[:n] {
		out[i] = g.botnets[j].ID
	}
	return out
}

// emitBurst floods one subnet for a day, reproducing the Aug 30 2012 peak.
func (g *familyGen) emitBurst(count int, nextID *dataset.DDoSID) ([]*dataset.Attack, error) {
	spec := g.burst
	dayStart := g.window.Start.Add(time.Duration(spec.DayOffset) * 24 * time.Hour)
	seed, ok := g.db.SampleInfrastructureIP(g.rng, spec.TargetCC)
	if !ok {
		return nil, fmt.Errorf("botnet: burst country %s has no infrastructure", spec.TargetCC)
	}
	raw := seed.As4()
	nTargets := spec.Targets
	if nTargets < 1 {
		nTargets = 8
	}
	victims := make([]victim, 0, nTargets)
	for i := 0; i < nTargets; i++ {
		// Same /16 block: same organization, city, and AS — the paper's
		// "targets located in the same subnet in Russia".
		ip := netip.AddrFrom4([4]byte{raw[0], raw[1], byte(g.rng.Intn(256)), byte(1 + g.rng.Intn(255))})
		loc, lok := g.db.Lookup(ip)
		if !lok {
			continue
		}
		victims = append(victims, victim{ip: ip, loc: loc})
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("botnet: burst produced no resolvable victims")
	}
	ids := g.distinctBotnets(3)
	out := make([]*dataset.Attack, 0, count)
	daySec := 24 * 3600.0
	for i := 0; i < count; i++ {
		offset := time.Duration(daySec / float64(count) * float64(i) * float64(time.Second))
		start := dayStart.Add(offset)
		dur := g.drawDuration()
		if dur > 4*time.Hour {
			dur = 4 * time.Hour
		}
		v := victims[g.rng.Intn(len(victims))]
		out = append(out, g.emitAttackOn(start, nextID, ids[g.rng.Intn(len(ids))], dur, -1, v))
	}
	return out, nil
}
