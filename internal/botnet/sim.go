package botnet

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/geo"
	"botscope/internal/par"
)

// BurstSpec injects a one-day attack storm, reproducing the paper's
// maximum of 983 Dirtjumper attacks on 2012-08-30 against targets in a
// single Russian subnet.
type BurstSpec struct {
	// DayOffset is the day index inside the window (0 = first day).
	DayOffset int
	// Count is the number of burst attacks.
	Count int
	// TargetCC is the victims' country.
	TargetCC string
	// Targets is how many distinct victim IPs share the burst subnet.
	Targets int
}

// InterCollab stages cross-family coordination: Pairs attacks of Partner
// are re-aimed and re-timed to coincide with attacks of Initiator.
// MatchDuration distinguishes the paper's strict collaborations (duration
// difference within 30 minutes, Table VI) from merely concurrent launches
// (§III-B's Dirtjumper+Blackenergy pairs).
type InterCollab struct {
	Initiator     dataset.Family
	Partner       dataset.Family
	Pairs         int
	MatchDuration bool
	// StartFrac/EndFrac confine the coordination to a sub-window of the
	// observation period (both zero means the whole window). The paper's
	// Dirtjumper-Pandora campaign spanned about 16 of the 29 weeks.
	StartFrac float64
	EndFrac   float64
}

// Config parameterizes a simulation run.
type Config struct {
	Seed         int64
	Window       Window
	InterCollabs []InterCollab
	// Workers bounds how many families generate concurrently (0 = all
	// cores, 1 = sequential). The output is identical for every value:
	// each family's RNG stream is derived solely from Seed and the family
	// name, its ID ranges are computed up front, and results merge in
	// profile order.
	Workers int
}

// Output is a complete generated workload in the three Table I schemas.
type Output struct {
	Attacks []*dataset.Attack
	Botnets []*dataset.Botnet
	Bots    []*dataset.Bot
}

// Store wraps the output in an indexed dataset.Store.
func (o *Output) Store() (*dataset.Store, error) {
	return dataset.NewStore(o.Attacks, o.Botnets, o.Bots)
}

// Simulator generates workloads from family profiles.
type Simulator struct {
	cfg      Config
	db       *geo.DB
	profiles []*Profile
	bursts   map[dataset.Family]*BurstSpec
}

// New validates the configuration and builds a simulator.
func New(cfg Config, db *geo.DB, profiles []*Profile) (*Simulator, error) {
	if db == nil {
		return nil, fmt.Errorf("botnet: nil geo DB")
	}
	if !cfg.Window.End.After(cfg.Window.Start) {
		return nil, fmt.Errorf("botnet: empty simulation window")
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("botnet: no profiles")
	}
	seen := make(map[dataset.Family]bool, len(profiles))
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if seen[p.Family] {
			return nil, fmt.Errorf("botnet: duplicate profile for %s", p.Family)
		}
		seen[p.Family] = true
	}
	for _, ic := range cfg.InterCollabs {
		if !seen[ic.Initiator] || !seen[ic.Partner] {
			return nil, fmt.Errorf("botnet: inter-collab references unknown family %s/%s", ic.Initiator, ic.Partner)
		}
		if ic.Pairs <= 0 {
			return nil, fmt.Errorf("botnet: inter-collab %s/%s with non-positive pairs", ic.Initiator, ic.Partner)
		}
	}
	return &Simulator{cfg: cfg, db: db, profiles: profiles, bursts: make(map[dataset.Family]*BurstSpec)}, nil
}

// SetBurst attaches a burst to a family before Run.
func (s *Simulator) SetBurst(f dataset.Family, b *BurstSpec) { s.bursts[f] = b }

// famState carries per-family generation results into the inter-family pass.
type famState struct {
	profile *Profile
	pool    *Pool
	singles []*dataset.Attack // plain attacks, safe to re-time
	rng     *rand.Rand
}

// famOutput is one family's generation result, produced independently of
// every other family.
type famOutput struct {
	state *famState
	res   *genResult
	bots  []*dataset.Bot
	err   error
}

// Run executes the simulation and returns the full workload. Families are
// generated concurrently (see Config.Workers): each family's RNG stream
// depends only on the seed and the family name, each family draws bots
// from its own IP-dedup set, and each family's ID ranges are precomputed
// — gen.run emits exactly p.TotalAttacks() attacks and p.Botnets botnets,
// so the ranges a sequential pass would assign are known up front. Results
// merge in profile order, making the output byte-identical for every
// worker count.
//
// Bot IPs are deduplicated within a family, not across families; the rare
// cross-family duplicate collapses to the first family's record at merge
// time (the record fields are a pure function of the IP, so nothing is
// lost).
func (s *Simulator) Run() (*Output, error) {
	botnetBase := make([]dataset.BotnetID, len(s.profiles))
	ddosBase := make([]dataset.DDoSID, len(s.profiles))
	nextB, nextD := dataset.BotnetID(1), dataset.DDoSID(1)
	for i, p := range s.profiles {
		botnetBase[i], ddosBase[i] = nextB, nextD
		nextB += dataset.BotnetID(p.Botnets)
		nextD += dataset.DDoSID(p.TotalAttacks())
	}

	results := par.Map(s.cfg.Workers, len(s.profiles), func(i int) famOutput {
		p := s.profiles[i]
		rng := rand.New(rand.NewSource(s.cfg.Seed ^ familyHash(p.Family)))
		g := &familyGen{
			p:      p,
			rng:    rng,
			db:     s.db,
			window: s.cfg.Window,
			burst:  s.bursts[p.Family],
		}
		nextBotnetID, nextDDoSID := botnetBase[i], ddosBase[i]
		res, err := g.run(make(map[netip.Addr]bool), &nextBotnetID, &nextDDoSID)
		if err != nil {
			return famOutput{err: fmt.Errorf("botnet: generate %s: %w", p.Family, err)}
		}
		if got := nextBotnetID - botnetBase[i]; int(got) != p.Botnets {
			return famOutput{err: fmt.Errorf("botnet: %s emitted %d botnets, budget %d", p.Family, got, p.Botnets)}
		}
		if got := nextDDoSID - ddosBase[i]; int(got) != p.TotalAttacks() {
			return famOutput{err: fmt.Errorf("botnet: %s emitted %d attacks, budget %d", p.Family, got, p.TotalAttacks())}
		}
		return famOutput{
			state: &famState{profile: p, pool: g.pool, singles: res.singles, rng: rng},
			res:   res,
			bots:  g.pool.Bots(),
		}
	})

	out := &Output{}
	states := make(map[dataset.Family]*famState, len(s.profiles))
	seenBot := make(map[netip.Addr]bool)
	for i, fo := range results {
		if fo.err != nil {
			return nil, fo.err
		}
		out.Attacks = append(out.Attacks, fo.res.attacks...)
		out.Botnets = append(out.Botnets, fo.res.botnets...)
		for _, b := range fo.bots {
			if seenBot[b.IP] {
				continue
			}
			seenBot[b.IP] = true
			out.Bots = append(out.Bots, b)
		}
		states[s.profiles[i].Family] = fo.state
	}

	if err := s.applyInterCollabs(states); err != nil {
		return nil, err
	}

	sort.Slice(out.Attacks, func(i, j int) bool {
		if !out.Attacks[i].Start.Equal(out.Attacks[j].Start) {
			return out.Attacks[i].Start.Before(out.Attacks[j].Start)
		}
		return out.Attacks[i].ID < out.Attacks[j].ID
	})
	return out, nil
}

// applyInterCollabs re-times partner attacks onto initiator attacks.
func (s *Simulator) applyInterCollabs(states map[dataset.Family]*famState) error {
	for _, ic := range s.cfg.InterCollabs {
		init := states[ic.Initiator]
		part := states[ic.Partner]
		if len(init.singles) < ic.Pairs || len(part.singles) < ic.Pairs {
			return fmt.Errorf("botnet: inter-collab %s/%s needs %d pairs, have %d/%d singles",
				ic.Initiator, ic.Partner, ic.Pairs, len(init.singles), len(part.singles))
		}
		rng := part.rng
		// Candidate initiator attacks, confined to the campaign window.
		candidates := make([]int, 0, len(init.singles))
		winDur := s.cfg.Window.Duration().Seconds()
		for i, a := range init.singles {
			if ic.EndFrac > 0 {
				frac := a.Start.Sub(s.cfg.Window.Start).Seconds() / winDur
				if frac < ic.StartFrac || frac > ic.EndFrac {
					continue
				}
			}
			candidates = append(candidates, i)
		}
		if len(candidates) < ic.Pairs {
			// Small workloads can leave the campaign window short of
			// initiator attacks (heavy-tailed gaps punch multi-week holes
			// in a family's timeline); fall back to the whole stream
			// rather than failing the scenario.
			candidates = candidates[:0]
			for i := range init.singles {
				candidates = append(candidates, i)
			}
			if len(candidates) < ic.Pairs {
				return fmt.Errorf("botnet: inter-collab %s/%s has only %d initiator attacks, need %d",
					ic.Initiator, ic.Partner, len(candidates), ic.Pairs)
			}
		}
		candOrder := rng.Perm(len(candidates))[:ic.Pairs]
		ai := make([]int, ic.Pairs)
		for k, ci := range candOrder {
			ai[k] = candidates[ci]
		}
		bi := rng.Perm(len(part.singles))[:ic.Pairs]
		for k := 0; k < ic.Pairs; k++ {
			a := init.singles[ai[k]]
			b := part.singles[bi[k]]
			b.Start = a.Start
			if ic.MatchDuration {
				// Durations matched within the 30-minute collaboration
				// window (Table VI criterion).
				delta := time.Duration(rng.Intn(1200)-600) * time.Second
				d := a.Duration() + delta
				if d < time.Minute {
					d = time.Minute
				}
				b.End = b.Start.Add(d)
			} else {
				// Concurrent but deliberately mismatched in duration so the
				// pair registers in §III-B's concurrency statistics without
				// qualifying as a Table VI collaboration.
				d := a.Duration() + 35*time.Minute + time.Duration(rng.Intn(3600))*time.Second
				b.End = b.Start.Add(d)
			}
			b.TargetIP = a.TargetIP
			b.TargetASN = a.TargetASN
			b.TargetCountry = a.TargetCountry
			b.TargetCity = a.TargetCity
			b.TargetOrg = a.TargetOrg
			b.TargetLat = a.TargetLat
			b.TargetLon = a.TargetLon
			// Near-equal magnitudes, the paper's hallmark of coordination.
			size := len(a.BotIPs)
			anchor := part.profile.SourceCountries[0].CC
			if i := WeightedChoice(rng, sourceWeights(part.profile)); i >= 0 {
				anchor = part.profile.SourceCountries[i].CC
			}
			form := part.pool.Formation(anchor, size,
				rng.Float64() < part.profile.SymmetricProb,
				part.profile.DispersionTargetKm, b.Start)
			if len(form) > 0 {
				b.BotIPs = form
			}
		}
		// Remove the consumed singles from both sides so overlapping
		// InterCollab specs never re-time the same attack twice.
		init.singles = removeIndices(init.singles, ai)
		part.singles = removeIndices(part.singles, bi)
	}
	return nil
}

func removeIndices(xs []*dataset.Attack, idx []int) []*dataset.Attack {
	drop := make(map[int]bool, len(idx))
	for _, i := range idx {
		drop[i] = true
	}
	out := xs[:0]
	for i, x := range xs {
		if !drop[i] {
			out = append(out, x)
		}
	}
	return out
}

func sourceWeights(p *Profile) []float64 {
	w := make([]float64, len(p.SourceCountries))
	for i, sc := range p.SourceCountries {
		w[i] = sc.Weight
	}
	return w
}

func familyHash(f dataset.Family) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(f))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
