package botnet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/geo"
)

// cityCluster is the portion of a family's bot population homed in one
// city. Formations are drawn cluster-first so that the geolocation
// dispersion of an attack is controllable.
type cityCluster struct {
	key     string // cc + "/" + city
	cc      string
	center  geo.LatLon
	centerC geo.CachedPoint // center with precomputed trig, refreshed with it
	bots    []*dataset.Bot
}

// Pool is one family's bot population: bots grouped into city clusters,
// with weekly recruitment of new countries (the shift pattern of Fig 8).
type Pool struct {
	family    dataset.Family
	clusters  []*cityCluster
	byCountry map[string][]*cityCluster
	countries []string // recruitment order, base countries first
	rng       *rand.Rand
	db        *geo.DB
	used      map[netip.Addr]bool // per-family dedup set, owned by this pool
	bots      []*dataset.Bot

	// Per-formation scratch, reused across Formation calls. A pool emits
	// one formation per attack — hundreds of thousands per family at full
	// scale — so the per-call weight/candidate/key slices and the distinct-
	// sampling dedup set are owned by the pool and recycled. None of these
	// touch the RNG stream: they replace allocations, not draws.
	weightBuf []float64
	keyBuf    []float64
	idxBuf    []int
	candBuf   []*dataset.Bot
	pickBuf   []*dataset.Bot
	stamp     []int64 // sampleInto dedup stamps, indexed by cluster position
	epoch     int64
}

// NewPool places size bots into the profile's source countries,
// proportionally to their weights. used deduplicates IPs within the pool's
// family; the simulator passes each family its own set so families can
// generate concurrently (cross-family duplicates collapse at merge time).
func NewPool(rng *rand.Rand, db *geo.DB, p *Profile, size int, used map[netip.Addr]bool) (*Pool, error) {
	pool := &Pool{
		family:    p.Family,
		byCountry: make(map[string][]*cityCluster),
		rng:       rng,
		db:        db,
		used:      used,
	}
	weights := make([]float64, len(p.SourceCountries))
	var total float64
	for i, sc := range p.SourceCountries {
		weights[i] = sc.Weight
		total += sc.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("botnet: pool for %s has no positive source weights", p.Family)
	}
	for i, sc := range p.SourceCountries {
		n := int(float64(size) * weights[i] / total)
		if n < 1 {
			n = 1
		}
		if err := pool.recruit(sc.CC, n); err != nil {
			return nil, err
		}
	}
	return pool, nil
}

// recruit adds n bots in the given country, extending its city clusters.
func (pool *Pool) recruit(cc string, n int) error {
	added := 0
	for attempt := 0; added < n && attempt < n*20; attempt++ {
		ip, ok := pool.db.SampleIPInCountry(pool.rng, cc)
		if !ok {
			return fmt.Errorf("botnet: country %s unknown to geo DB", cc)
		}
		if pool.used[ip] {
			continue
		}
		loc, ok := pool.db.Lookup(ip)
		if !ok {
			continue
		}
		pool.used[ip] = true
		bot := &dataset.Bot{
			IP:          ip,
			ASN:         loc.ASN,
			CountryCode: loc.CountryCode,
			City:        loc.City,
			Org:         loc.Org,
			Lat:         loc.Point.Lat,
			Lon:         loc.Point.Lon,
		}
		pool.bots = append(pool.bots, bot)
		key := loc.CountryCode + "/" + loc.City
		var cluster *cityCluster
		for _, c := range pool.byCountry[cc] {
			if c.key == key {
				cluster = c
				break
			}
		}
		if cluster == nil {
			cluster = &cityCluster{key: key, cc: cc}
			pool.byCountry[cc] = append(pool.byCountry[cc], cluster)
			pool.clusters = append(pool.clusters, cluster)
		}
		cluster.bots = append(cluster.bots, bot)
		added++
	}
	if added == 0 {
		return fmt.Errorf("botnet: could not recruit any bot in %s", cc)
	}
	// Track recruitment order for shift-pattern analysis.
	found := false
	for _, c := range pool.countries {
		if c == cc {
			found = true
			break
		}
	}
	if !found {
		pool.countries = append(pool.countries, cc)
	}
	// Refresh cluster centers.
	for _, c := range pool.byCountry[cc] {
		c.center = clusterCenter(c.bots)
		c.centerC = geo.NewCachedPoint(c.center)
	}
	return nil
}

// RecruitNewCountry expands the pool into a country it has not used yet,
// implementing the rare "new country" shifts of Fig 8. It returns the
// country code, or false when the atlas is exhausted.
func (pool *Pool) RecruitNewCountry(n int) (string, bool) {
	usedCC := make(map[string]bool, len(pool.countries))
	for _, cc := range pool.countries {
		usedCC[cc] = true
	}
	all := pool.db.Countries().Countries()
	// Deterministic scan order from a random start.
	start := pool.rng.Intn(len(all))
	for i := 0; i < len(all); i++ {
		c := all[(start+i)%len(all)]
		if usedCC[c.Code] {
			continue
		}
		if err := pool.recruit(c.Code, n); err != nil {
			continue
		}
		return c.Code, true
	}
	return "", false
}

// Bots returns every bot in the pool.
func (pool *Pool) Bots() []*dataset.Bot { return pool.bots }

// Size returns the pool population.
func (pool *Pool) Size() int { return len(pool.bots) }

// Countries returns the recruitment-ordered country codes.
func (pool *Pool) Countries() []string {
	out := make([]string, len(pool.countries))
	copy(out, pool.countries)
	return out
}

// anchorCluster draws a cluster in cc weighted by population, so the whole
// bot pool participates in attacks over time rather than only each
// country's largest city.
func (pool *Pool) anchorCluster(cc string) *cityCluster {
	clusters := pool.byCountry[cc]
	if len(clusters) == 0 {
		return nil
	}
	weights := pool.weightBuf[:0]
	for _, c := range clusters {
		weights = append(weights, float64(len(c.bots)))
	}
	pool.weightBuf = weights
	i := WeightedChoice(pool.rng, weights)
	if i < 0 {
		i = 0
	}
	return clusters[i]
}

// Formation assembles the source set of one attack.
//
// Symmetric formations draw candidate bots from a single city and pick
// balanced pairs (most-eastern with most-western) so the signed-distance
// sum nearly cancels — the "complete geographical symmetry" the paper
// observed in >40% of Dirtjumper and Pandora attacks. Asymmetric
// formations split bots across two cities chosen so that the formation's
// predicted signed-sum dispersion lands near targetDispKm (the per-family
// means of the paper's Figs 10-11: Pandora ~566 km, Blackenergy ~4,304 km).
func (pool *Pool) Formation(anchorCC string, size int, symmetric bool, targetDispKm float64, when time.Time) []netip.Addr {
	if size < 1 {
		size = 1
	}
	anchor := pool.anchorCluster(anchorCC)
	if anchor == nil && len(pool.clusters) > 0 {
		anchor = pool.clusters[pool.rng.Intn(len(pool.clusters))]
	}
	if anchor == nil {
		return nil
	}
	var picked []*dataset.Bot
	if symmetric {
		picked = pool.symmetricPick(anchor, size)
	} else {
		picked = pool.asymmetricPick(anchor, size, targetDispKm)
	}
	out := make([]netip.Addr, 0, len(picked))
	for _, b := range picked {
		b.LastActive = when
		out = append(out, b.IP)
	}
	return out
}

// symmetricPick selects a signed-distance-balanced subset of one cluster.
func (pool *Pool) symmetricPick(c *cityCluster, size int) []*dataset.Bot {
	if size > len(c.bots) {
		size = len(c.bots)
	}
	if size == 0 {
		return nil
	}
	// Candidate pool: up to 3x the needed size, randomly chosen.
	candN := size * 3
	if candN > len(c.bots) {
		candN = len(c.bots)
	}
	cands := pool.sampleInto(pool.candBuf[:0], c, candN)
	pool.candBuf = cands
	// Sort candidates by their signed distance from the cluster center,
	// computing each key once: the old comparator re-derived two
	// Haversines per comparison, which made the sort the dominant cost of
	// symmetric formations. Sorting an index slice with the same
	// comparison outcomes yields the same permutation sort.Slice produced
	// when it moved the candidates directly.
	keys := pool.keyBuf[:0]
	for _, b := range cands {
		keys = append(keys, geo.SignedDistance(c.center, geo.LatLon{Lat: b.Lat, Lon: b.Lon}))
	}
	pool.keyBuf = keys
	idx := pool.idxBuf[:0]
	for i := range cands {
		idx = append(idx, i)
	}
	pool.idxBuf = idx
	sort.Slice(idx, func(i, j int) bool { return keys[idx[i]] < keys[idx[j]] })
	// Take balanced pairs from the two ends.
	picked := pool.pickBuf[:0]
	lo, hi := 0, len(cands)-1
	for len(picked)+1 < size && lo < hi {
		picked = append(picked, cands[idx[lo]], cands[idx[hi]])
		lo++
		hi--
	}
	if len(picked) < size && lo <= hi {
		picked = append(picked, cands[idx[(lo+hi)/2]])
	}
	pool.pickBuf = picked
	return picked
}

// asymmetricPick homes ~70% of the formation in the anchor cluster and the
// rest in the cluster whose predicted signed-sum dispersion is closest to
// the target.
func (pool *Pool) asymmetricPick(anchor *cityCluster, size int, targetDispKm float64) []*dataset.Bot {
	mainN := size * 7 / 10
	if mainN < 1 {
		mainN = 1
	}
	if mainN > len(anchor.bots) {
		mainN = len(anchor.bots)
	}
	offN := size - mainN
	offset := pool.clusterForDispersion(anchor, mainN, offN, targetDispKm)
	picked := pool.pickFrom(pool.pickBuf[:0], anchor, mainN)
	if offset != nil && offN > 0 {
		picked = pool.pickFrom(picked, offset, offN)
	} else if offN > 0 {
		picked = pool.pickFrom(picked, anchor, offN)
	}
	pool.pickBuf = picked
	return picked
}

// pickFrom appends up to n distinct bots from one cluster to dst.
func (pool *Pool) pickFrom(dst []*dataset.Bot, c *cityCluster, n int) []*dataset.Bot {
	if n > len(c.bots) {
		n = len(c.bots)
	}
	return pool.sampleInto(dst, c, n)
}

// sampleInto appends n distinct bots from a cluster to dst without
// permuting the whole slice (clusters can hold tens of thousands of bots;
// a full Perm per attack would dominate generation time). The rejection
// dedup uses the pool's epoch-stamped scratch array instead of a per-call
// set; the sequence of Intn draws and retries is exactly the old one.
//
//botscope:hotpath
func (pool *Pool) sampleInto(dst []*dataset.Bot, c *cityCluster, n int) []*dataset.Bot {
	if n >= len(c.bots) {
		return append(dst, c.bots...)
	}
	if len(pool.stamp) < len(c.bots) {
		pool.stamp = make([]int64, len(c.bots))
	}
	pool.epoch++
	added := 0
	for added < n {
		i := pool.rng.Intn(len(c.bots))
		if pool.stamp[i] == pool.epoch {
			continue
		}
		pool.stamp[i] = pool.epoch
		dst = append(dst, c.bots[i])
		added++
	}
	return dst
}

// clusterForDispersion finds the offset cluster whose two-cluster formation
// with the anchor (m1 anchor bots, m2 offset bots) has predicted dispersion
// closest to wantKm.
//
//botscope:hotpath
func (pool *Pool) clusterForDispersion(anchor *cityCluster, m1, m2 int, wantKm float64) *cityCluster {
	var (
		best     *cityCluster
		bestDiff float64
	)
	for _, c := range pool.clusters {
		if c == anchor || len(c.bots) == 0 {
			continue
		}
		// Skip clusters nearly due north/south of the anchor: per-bot
		// longitude jitter would flip individual signed-distance signs,
		// making the actual dispersion wildly different from the
		// prediction (and the resulting series unpredictable).
		dLon := c.center.Lon - anchor.center.Lon
		for dLon > 180 {
			dLon -= 360
		}
		for dLon <= -180 {
			dLon += 360
		}
		if dLon < 1.5 && dLon > -1.5 {
			continue
		}
		// Small clusters cannot supply the full offset contingent; predict
		// with what they can actually field so prediction matches reality.
		m2eff := m2
		if len(c.bots) < m2eff {
			m2eff = len(c.bots)
		}
		d := predictDispersionCached(anchor.centerC, c.centerC, m1, m2eff)
		diff := d - wantKm
		if diff < 0 {
			diff = -diff
		}
		if best == nil || diff < bestDiff {
			best, bestDiff = c, diff
		}
	}
	return best
}

// PredictDispersion computes the signed-sum dispersion of an idealized
// two-cluster formation: m1 points exactly at a and m2 points exactly at b.
// It is the proxy the generator uses to hit per-family dispersion targets;
// per-bot jitter adds noise around it but preserves the scale.
func PredictDispersion(a, b geo.LatLon, m1, m2 int) float64 {
	if m1 <= 0 && m2 <= 0 {
		return 0
	}
	center, ok := geo.WeightedCenter(a, b, float64(m1), float64(m2))
	if !ok {
		return 0
	}
	sum := float64(m1)*geo.SignedDistance(center, a) + float64(m2)*geo.SignedDistance(center, b)
	if sum < 0 {
		return -sum
	}
	return sum
}

// predictDispersionCached is PredictDispersion over precomputed cluster
// centers; bit-identical to PredictDispersion(a.Deg, b.Deg, m1, m2). The
// offset-cluster search evaluates every cluster against a fixed anchor per
// attack, so the cached trig halves that loop's math.
//
//botscope:hotpath
func predictDispersionCached(a, b geo.CachedPoint, m1, m2 int) float64 {
	if m1 <= 0 && m2 <= 0 {
		return 0
	}
	center, ok := geo.WeightedCenterCached(a, b, float64(m1), float64(m2))
	if !ok {
		return 0
	}
	sum := float64(m1)*geo.SignedDistanceTo(center, a) + float64(m2)*geo.SignedDistanceTo(center, b)
	if sum < 0 {
		return -sum
	}
	return sum
}

func clusterCenter(bots []*dataset.Bot) geo.LatLon {
	pts := make([]geo.LatLon, len(bots))
	for i, b := range bots {
		pts[i] = geo.LatLon{Lat: b.Lat, Lon: b.Lon}
	}
	c, _ := geo.Center(pts)
	return c
}
