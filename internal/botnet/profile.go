package botnet

import (
	"fmt"
	"time"

	"botscope/internal/dataset"
)

// ProtocolShare assigns an exact attack count to one category, mirroring
// the per-(family, protocol) rows of the paper's Table II.
type ProtocolShare struct {
	Category dataset.Category
	Count    int
}

// CountryShare gives a target or source country a selection weight. For
// target countries the weights are the Table V counts.
type CountryShare struct {
	CC     string
	Weight float64
}

// Profile is the full behavioural parameterization of one botnet family.
// internal/synth builds ten of these calibrated to the paper.
type Profile struct {
	Family dataset.Family

	// ActiveStartFrac/ActiveEndFrac bound the family's activity window as
	// fractions of the overall observation window. Blackenergy, for
	// example, is active for only about a third of the period.
	ActiveStartFrac float64
	ActiveEndFrac   float64

	// Protocols fixes the exact per-category attack counts (Table II).
	// Their sum is the family's total attack count.
	Protocols []ProtocolShare

	// Botnets is the number of generations (distinct botnet IDs).
	Botnets int

	// TargetCountries weights victim-country selection (Table V); the
	// generator tops the list up with extra countries until
	// TargetCountryCount distinct countries are reachable.
	TargetCountries    []CountryShare
	TargetCountryCount int
	// TargetPoolSize is the number of distinct victim IPs the family
	// cycles through; repeat selection is Zipf-concentrated.
	TargetPoolSize int
	// TargetZipf is the Zipf exponent for repeat-victim concentration.
	TargetZipf float64

	// DurationMedianSec/DurationSigma/DurationMaxSec parameterize the
	// lognormal attack-duration law.
	DurationMedianSec float64
	DurationSigma     float64
	DurationMaxSec    float64

	// Intervals is the inter-attack gap mixture.
	Intervals IntervalModel

	// SourceCountries weights bot placement (geolocation affinity).
	SourceCountries []CountryShare
	// BotPoolSize is the number of distinct bot IPs the family commands.
	BotPoolSize int
	// MagnitudeMedian/MagnitudeSigma give the lognormal bots-per-attack law.
	MagnitudeMedian float64
	MagnitudeSigma  float64
	MagnitudeMax    float64
	// NewCountryPerWeek is the expected number of previously unused
	// countries recruited per week (the small right-hand bars of Fig 8).
	NewCountryPerWeek float64

	// SymmetricProb is the fraction of attacks whose bot formation is
	// geographically symmetric (dispersion ~ 0); 76.7% for Pandora and
	// 89.5% for Blackenergy in the paper.
	SymmetricProb float64
	// DispersionTargetKm is the per-family mean of the signed-sum
	// geolocation dispersion for asymmetric formations (Table IV /
	// Figs 10-11 of the paper: 566 km for Pandora, 4,304 km for
	// Blackenergy, ...). The generator picks offset clusters whose
	// predicted dispersion lands near this value.
	DispersionTargetKm float64

	// IntraCollab is the number of intra-family collaboration events to
	// stage (same target, same start, matched durations — Table VI).
	IntraCollab int
	// ConsecutiveChains is the number of multistage attack chains
	// (back-to-back attacks on one target, §V-B).
	ConsecutiveChains int
	// ChainLengthMean is the mean chain length.
	ChainLengthMean float64
	// RecordChainLength, when positive, forces the family's first chain to
	// exactly this length (Ddoser's record chain of 22 strikes).
	RecordChainLength int
}

// TotalAttacks returns the family's calibrated attack count.
func (p *Profile) TotalAttacks() int {
	var n int
	for _, ps := range p.Protocols {
		n += ps.Count
	}
	return n
}

// Validate checks profile consistency before simulation.
func (p *Profile) Validate() error {
	if p.Family == "" {
		return fmt.Errorf("botnet: profile without family")
	}
	if p.TotalAttacks() <= 0 {
		return fmt.Errorf("botnet: profile %s has no attacks", p.Family)
	}
	if p.ActiveStartFrac < 0 || p.ActiveEndFrac > 1 || p.ActiveStartFrac >= p.ActiveEndFrac {
		return fmt.Errorf("botnet: profile %s has invalid activity window [%v, %v]",
			p.Family, p.ActiveStartFrac, p.ActiveEndFrac)
	}
	if p.Botnets <= 0 {
		return fmt.Errorf("botnet: profile %s has no botnets", p.Family)
	}
	if len(p.TargetCountries) == 0 {
		return fmt.Errorf("botnet: profile %s has no target countries", p.Family)
	}
	if p.TargetPoolSize <= 0 {
		return fmt.Errorf("botnet: profile %s has no target pool", p.Family)
	}
	if len(p.SourceCountries) == 0 {
		return fmt.Errorf("botnet: profile %s has no source countries", p.Family)
	}
	if p.BotPoolSize <= 0 {
		return fmt.Errorf("botnet: profile %s has no bot pool", p.Family)
	}
	if p.DurationMedianSec <= 0 || p.DurationSigma <= 0 {
		return fmt.Errorf("botnet: profile %s has invalid duration law", p.Family)
	}
	if p.MagnitudeMedian < 1 {
		return fmt.Errorf("botnet: profile %s has magnitude median < 1", p.Family)
	}
	if len(p.Intervals.Modes) == 0 {
		return fmt.Errorf("botnet: profile %s has no interval modes", p.Family)
	}
	if p.SymmetricProb < 0 || p.SymmetricProb > 1 {
		return fmt.Errorf("botnet: profile %s has invalid symmetric probability %v", p.Family, p.SymmetricProb)
	}
	return nil
}

// Window is the observation window of a simulation.
type Window struct {
	Start time.Time
	End   time.Time
}

// Duration returns the window length.
func (w Window) Duration() time.Duration { return w.End.Sub(w.Start) }

// Days returns the number of whole days in the window.
func (w Window) Days() int { return int(w.Duration().Hours() / 24) }

// PaperWindow is the paper's observation period: 2012-08-29 through
// 2013-03-24, 207 days.
func PaperWindow() Window {
	return Window{
		Start: time.Date(2012, 8, 29, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2013, 3, 24, 0, 0, 0, 0, time.UTC),
	}
}
