package botnet

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogNormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	below := 0
	for i := 0; i < n; i++ {
		if LogNormal(rng, 1000, 1.5, 0) < 1000 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("fraction below median = %v, want about 0.5", frac)
	}
}

func TestLogNormalTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		if v := LogNormal(rng, 1000, 2.5, 50000); v > 50000 {
			t.Fatalf("truncated draw %v exceeds max", v)
		}
	}
}

func TestNormalPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		if v := NormalPositive(rng, 100, 500); v < 0 {
			t.Fatalf("NormalPositive returned %v", v)
		}
	}
}

func TestIntervalModelZeroShare(t *testing.T) {
	m := IntervalModel{
		Modes: []IntervalMode{
			{Weight: 0.4, MedianSec: 0},
			{Weight: 0.6, MedianSec: 600, Sigma: 0.3},
		},
		MaxSec: 1e6,
	}
	if got := m.SimultaneousWeight(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("SimultaneousWeight = %v, want 0.4", got)
	}
	rng := rand.New(rand.NewSource(4))
	zeros := 0
	n := 20000
	for i := 0; i < n; i++ {
		if m.Sample(rng) == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(n)
	if math.Abs(frac-0.4) > 0.02 {
		t.Errorf("zero fraction = %v, want about 0.4", frac)
	}
}

func TestIntervalModelMinClamp(t *testing.T) {
	m := IntervalModel{
		Modes:  []IntervalMode{{Weight: 1, MedianSec: 30, Sigma: 0.5}},
		MinSec: 60,
		MaxSec: 1e6,
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		if v := m.Sample(rng); v < 60 {
			t.Fatalf("sample %v below MinSec", v)
		}
	}
}

func TestIntervalModelEmpty(t *testing.T) {
	m := IntervalModel{MinSec: 42}
	rng := rand.New(rand.NewSource(6))
	if got := m.Sample(rng); got != 42 {
		t.Errorf("empty model sample = %v, want MinSec fallback", got)
	}
	if got := m.SimultaneousWeight(); got != 0 {
		t.Errorf("empty model SimultaneousWeight = %v, want 0", got)
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if got := WeightedChoice(rng, nil); got != -1 {
		t.Errorf("empty weights = %d, want -1", got)
	}
	if got := WeightedChoice(rng, []float64{0, 0}); got != -1 {
		t.Errorf("all-zero weights = %d, want -1", got)
	}
	if got := WeightedChoice(rng, []float64{0, 5, 0}); got != 1 {
		t.Errorf("single positive weight = %d, want 1", got)
	}

	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	n := 30000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(rng, weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("index %d frequency = %v, want about %v", i, got, want)
		}
	}
}

func TestWeightedChoiceSkipsNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		got := WeightedChoice(rng, []float64{-5, 1, -2})
		if got != 1 {
			t.Fatalf("picked index %d with non-positive weight", got)
		}
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	if len(w) != 4 {
		t.Fatalf("len = %d", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Errorf("weights not decreasing at %d: %v", i, w)
		}
	}
	if math.Abs(w[0]-1) > 1e-12 || math.Abs(w[1]-0.5) > 1e-12 {
		t.Errorf("w = %v, want [1, 0.5, ...]", w)
	}
}
