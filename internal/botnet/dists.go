// Package botnet is the simulation substrate of botscope: it models botnet
// families, their generations, bot populations, and campaign scheduling,
// and emits the three workload schemas the paper's monitoring service
// produced. The calibration of each family's behaviour lives in
// internal/synth; this package supplies the mechanics.
package botnet

import (
	"math"
	"math/rand"
)

// LogNormal samples a lognormal value with the given median and log-space
// sigma, optionally truncated to max (ignored when max <= 0). Attack
// durations and magnitudes follow this law: the paper reports median 1,766 s
// against mean 10,308 s — the classic heavy-right-tail signature.
func LogNormal(rng *rand.Rand, median, sigma, max float64) float64 {
	mu := math.Log(median)
	for i := 0; i < 64; i++ {
		v := math.Exp(mu + sigma*rng.NormFloat64())
		if max <= 0 || v <= max {
			return v
		}
	}
	return max
}

// NormalPositive samples |N(mean, std)| — used for dispersion-style
// quantities that are magnitudes by construction.
func NormalPositive(rng *rand.Rand, mean, std float64) float64 {
	return math.Abs(mean + std*rng.NormFloat64())
}

// IntervalMode is one component of the inter-attack interval mixture.
type IntervalMode struct {
	// Weight is the relative probability of this mode.
	Weight float64
	// MedianSec is the mode's central interval; 0 means an exactly
	// simultaneous launch.
	MedianSec float64
	// Sigma is the lognormal spread (ignored for the simultaneous mode).
	Sigma float64
}

// IntervalModel is the mixture distribution of gaps between consecutive
// attacks by one family. Figure 4 of the paper shows three shared modes
// (6-7 min, 20-40 min, 2-3 h) on top of a simultaneous spike and a heavy
// tail; the mixture reproduces exactly that shape.
type IntervalModel struct {
	Modes []IntervalMode
	// MinSec clamps every non-simultaneous draw from below. Aldibot and
	// Optima launch no attacks within 60 s of each other (Fig 5) — their
	// profiles set this to 60.
	MinSec float64
	// MaxSec clamps the tail (the paper's longest observed gap is 59 days).
	MaxSec float64
}

// Sample draws one interval in seconds.
func (m IntervalModel) Sample(rng *rand.Rand) float64 {
	var total float64
	for _, mode := range m.Modes {
		total += mode.Weight
	}
	if total <= 0 {
		return m.MinSec
	}
	u := rng.Float64() * total
	var acc float64
	mode := m.Modes[len(m.Modes)-1]
	for _, cand := range m.Modes {
		acc += cand.Weight
		if u < acc {
			mode = cand
			break
		}
	}
	if mode.MedianSec == 0 {
		return 0
	}
	v := LogNormal(rng, mode.MedianSec, mode.Sigma, m.MaxSec)
	if v < m.MinSec {
		v = m.MinSec
	}
	return v
}

// SimultaneousWeight returns the probability mass of the exact-zero mode.
func (m IntervalModel) SimultaneousWeight() float64 {
	var total, zero float64
	for _, mode := range m.Modes {
		total += mode.Weight
		if mode.MedianSec == 0 {
			zero += mode.Weight
		}
	}
	if total == 0 {
		return 0
	}
	return zero / total
}

// WeightedChoice picks an index of weights proportionally. It returns -1
// for an empty or all-zero weight vector.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	u := rng.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Round-off fell through; return the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// ZipfWeights returns n weights following w_i = 1/(i+1)^s, the concentration
// law used for repeat-victim selection: a few targets soak up most attacks,
// matching the paper's organization-level hotspots.
func ZipfWeights(n int, s float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / math.Pow(float64(i+1), s)
	}
	return out
}
