package botnet

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/geo"
)

// testProfile returns a small, fast profile for one family.
func testProfile(f dataset.Family, attacks int) *Profile {
	return &Profile{
		Family:          f,
		ActiveStartFrac: 0,
		ActiveEndFrac:   1,
		Protocols: []ProtocolShare{
			{Category: dataset.CategoryHTTP, Count: attacks},
		},
		Botnets: 4,
		TargetCountries: []CountryShare{
			{CC: "US", Weight: 5}, {CC: "RU", Weight: 3},
		},
		TargetCountryCount: 5,
		TargetPoolSize:     10,
		TargetZipf:         1.1,
		DurationMedianSec:  1766,
		DurationSigma:      1.5,
		DurationMaxSec:     200000,
		Intervals: IntervalModel{
			Modes: []IntervalMode{
				{Weight: 0.4, MedianSec: 0},
				{Weight: 0.6, MedianSec: 600, Sigma: 0.4},
			},
			MaxSec: 1e6,
		},
		SourceCountries: []CountryShare{
			{CC: "RU", Weight: 5}, {CC: "UA", Weight: 3},
		},
		BotPoolSize:        300,
		MagnitudeMedian:    10,
		MagnitudeSigma:     0.6,
		MagnitudeMax:       40,
		NewCountryPerWeek:  0.5,
		SymmetricProb:      0.5,
		DispersionTargetKm: 2500,
		IntraCollab:        3,
		ConsecutiveChains:  2,
		ChainLengthMean:    4,
	}
}

func testWindow() Window {
	start := time.Date(2012, 8, 29, 0, 0, 0, 0, time.UTC)
	return Window{Start: start, End: start.AddDate(0, 0, 60)}
}

func runSmallSim(t *testing.T, seed int64) *Output {
	t.Helper()
	db := geo.NewDB(geo.DBConfig{Seed: seed})
	profiles := []*Profile{
		testProfile(dataset.Dirtjumper, 300),
		testProfile(dataset.Pandora, 150),
	}
	sim, err := New(Config{
		Seed:   seed,
		Window: testWindow(),
		InterCollabs: []InterCollab{
			{Initiator: dataset.Dirtjumper, Partner: dataset.Pandora, Pairs: 10, MatchDuration: true},
		},
	}, db, profiles)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	db := geo.NewDB(geo.DBConfig{Seed: 1})
	good := []*Profile{testProfile(dataset.Dirtjumper, 10)}
	w := testWindow()

	if _, err := New(Config{Seed: 1, Window: w}, nil, good); err == nil {
		t.Error("nil DB accepted")
	}
	if _, err := New(Config{Seed: 1}, db, good); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := New(Config{Seed: 1, Window: w}, db, nil); err == nil {
		t.Error("no profiles accepted")
	}
	dup := []*Profile{testProfile(dataset.Pandora, 10), testProfile(dataset.Pandora, 10)}
	if _, err := New(Config{Seed: 1, Window: w}, db, dup); err == nil {
		t.Error("duplicate profiles accepted")
	}
	badCollab := Config{Seed: 1, Window: w, InterCollabs: []InterCollab{
		{Initiator: dataset.Dirtjumper, Partner: dataset.Optima, Pairs: 1},
	}}
	if _, err := New(badCollab, db, good); err == nil {
		t.Error("inter-collab with unknown family accepted")
	}
	bad := testProfile(dataset.YZF, 10)
	bad.BotPoolSize = 0
	if _, err := New(Config{Seed: 1, Window: w}, db, []*Profile{bad}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestSimProducesExactCounts(t *testing.T) {
	out := runSmallSim(t, 11)
	byFamily := make(map[dataset.Family]int)
	for _, a := range out.Attacks {
		byFamily[a.Family]++
	}
	if byFamily[dataset.Dirtjumper] != 300 {
		t.Errorf("dirtjumper attacks = %d, want 300", byFamily[dataset.Dirtjumper])
	}
	if byFamily[dataset.Pandora] != 150 {
		t.Errorf("pandora attacks = %d, want 150", byFamily[dataset.Pandora])
	}
	if len(out.Botnets) != 8 {
		t.Errorf("botnets = %d, want 8", len(out.Botnets))
	}
}

func TestSimOutputIsValidStore(t *testing.T) {
	out := runSmallSim(t, 12)
	store, err := out.Store()
	if err != nil {
		t.Fatalf("simulated output rejected by store: %v", err)
	}
	if store.NumAttacks() != len(out.Attacks) {
		t.Errorf("store attacks = %d, want %d", store.NumAttacks(), len(out.Attacks))
	}
	// Every attack must lie within (or at least start within) the window.
	w := testWindow()
	for _, a := range store.Attacks() {
		if a.Start.Before(w.Start) || a.Start.After(w.End) {
			t.Errorf("attack %d starts outside window: %v", a.ID, a.Start)
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	a := runSmallSim(t, 77)
	b := runSmallSim(t, 77)
	if len(a.Attacks) != len(b.Attacks) {
		t.Fatalf("different attack counts: %d vs %d", len(a.Attacks), len(b.Attacks))
	}
	for i := range a.Attacks {
		x, y := a.Attacks[i], b.Attacks[i]
		if x.ID != y.ID || !x.Start.Equal(y.Start) || x.TargetIP != y.TargetIP ||
			len(x.BotIPs) != len(y.BotIPs) {
			t.Fatalf("attack %d differs between identical seeds", i)
		}
	}

	c := runSmallSim(t, 78)
	same := 0
	for i := range a.Attacks {
		if i < len(c.Attacks) && a.Attacks[i].TargetIP == c.Attacks[i].TargetIP {
			same++
		}
	}
	if same == len(a.Attacks) {
		t.Error("different seeds produced identical targeting")
	}
}

func TestSimAttacksSorted(t *testing.T) {
	out := runSmallSim(t, 13)
	for i := 1; i < len(out.Attacks); i++ {
		if out.Attacks[i].Start.Before(out.Attacks[i-1].Start) {
			t.Fatalf("attacks not sorted at %d", i)
		}
	}
}

func TestSimInterCollabPairs(t *testing.T) {
	out := runSmallSim(t, 14)
	// Count Pandora attacks that share start time AND target with a
	// Dirtjumper attack: at least the 10 staged pairs must exist.
	type key struct {
		start  time.Time
		target netip.Addr
	}
	dj := make(map[key]bool)
	for _, a := range out.Attacks {
		if a.Family == dataset.Dirtjumper {
			dj[key{a.Start, a.TargetIP}] = true
		}
	}
	pairs := 0
	for _, a := range out.Attacks {
		if a.Family == dataset.Pandora && dj[key{a.Start, a.TargetIP}] {
			pairs++
		}
	}
	if pairs < 10 {
		t.Errorf("found %d dirtjumper-pandora coincident pairs, want >= 10", pairs)
	}
}

func TestSimIntraCollabGroups(t *testing.T) {
	out := runSmallSim(t, 15)
	// Count same-family groups: same start, same target, >= 2 distinct
	// botnets. Each profile staged 3 of them.
	type key struct {
		fam    dataset.Family
		start  time.Time
		target netip.Addr
	}
	groups := make(map[key]map[dataset.BotnetID]bool)
	for _, a := range out.Attacks {
		k := key{a.Family, a.Start, a.TargetIP}
		if groups[k] == nil {
			groups[k] = make(map[dataset.BotnetID]bool)
		}
		groups[k][a.BotnetID] = true
	}
	count := 0
	for _, botnets := range groups {
		if len(botnets) >= 2 {
			count++
		}
	}
	if count < 4 {
		t.Errorf("found %d intra-family collaboration groups, want >= 4", count)
	}
}

func TestSimChains(t *testing.T) {
	out := runSmallSim(t, 16)
	// A chain shows up as consecutive attacks on one target whose next
	// start is within 60 s of the previous end.
	byTarget := make(map[netip.Addr][]*dataset.Attack)
	for _, a := range out.Attacks {
		byTarget[a.TargetIP] = append(byTarget[a.TargetIP], a)
	}
	chainLinks := 0
	for _, list := range byTarget {
		for i := 1; i < len(list); i++ {
			gap := list[i].Start.Sub(list[i-1].End)
			if gap >= 0 && gap <= 60*time.Second {
				chainLinks++
			}
		}
	}
	if chainLinks < 4 {
		t.Errorf("found %d chain links, want >= 4 (2 chains of ~4 per family)", chainLinks)
	}
}

func TestSimBurst(t *testing.T) {
	db := geo.NewDB(geo.DBConfig{Seed: 9})
	p := testProfile(dataset.Dirtjumper, 400)
	sim, err := New(Config{Seed: 9, Window: testWindow()}, db, []*Profile{p})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetBurst(dataset.Dirtjumper, &BurstSpec{DayOffset: 1, Count: 150, TargetCC: "RU", Targets: 6})
	out, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Attacks) != 400 {
		t.Fatalf("total attacks = %d, want 400 (burst included in budget)", len(out.Attacks))
	}
	// The burst day must dominate the daily histogram.
	w := testWindow()
	daily := make(map[int]int)
	for _, a := range out.Attacks {
		daily[int(a.Start.Sub(w.Start).Hours()/24)]++
	}
	maxDay, maxCount := -1, 0
	for d, c := range daily {
		if c > maxCount {
			maxDay, maxCount = d, c
		}
	}
	if maxDay != 1 {
		t.Errorf("peak day = %d with %d attacks, want day 1", maxDay, maxCount)
	}
	if maxCount < 150 {
		t.Errorf("peak day count = %d, want >= 150", maxCount)
	}
	// Burst victims share one /16: collect RU victims on day 1.
	prefixes := make(map[[2]byte]int)
	for _, a := range out.Attacks {
		day := int(a.Start.Sub(w.Start).Hours() / 24)
		if day == 1 && a.TargetCountry == "RU" {
			raw := a.TargetIP.As4()
			prefixes[[2]byte{raw[0], raw[1]}]++
		}
	}
	best := 0
	for _, c := range prefixes {
		if c > best {
			best = c
		}
	}
	if best < 140 {
		t.Errorf("largest same-/16 burst cluster = %d, want >= 140", best)
	}
}

func TestSimInsufficientSinglesForCollab(t *testing.T) {
	db := geo.NewDB(geo.DBConfig{Seed: 10})
	profiles := []*Profile{
		testProfile(dataset.Dirtjumper, 20),
		testProfile(dataset.Pandora, 20),
	}
	sim, err := New(Config{
		Seed:   10,
		Window: testWindow(),
		InterCollabs: []InterCollab{
			// More pairs than either family has singles.
			{Initiator: dataset.Dirtjumper, Partner: dataset.Pandora, Pairs: 500, MatchDuration: true},
		},
	}, db, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Error("oversubscribed inter-collab succeeded, want error")
	}
}

func TestPoolRecruitment(t *testing.T) {
	db := geo.NewDB(geo.DBConfig{Seed: 20})
	rng := rand.New(rand.NewSource(20))
	p := testProfile(dataset.Optima, 10)
	pool, err := NewPool(rng, db, p, 200, make(map[netip.Addr]bool))
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() < 150 {
		t.Errorf("pool size = %d, want close to 200", pool.Size())
	}
	ccs := pool.Countries()
	if len(ccs) != 2 {
		t.Errorf("countries = %v, want [RU UA]", ccs)
	}
	cc, ok := pool.RecruitNewCountry(10)
	if !ok {
		t.Fatal("RecruitNewCountry failed")
	}
	if cc == "RU" || cc == "UA" {
		t.Errorf("new country %s is not new", cc)
	}
	if len(pool.Countries()) != 3 {
		t.Errorf("countries after recruitment = %v", pool.Countries())
	}
}

func TestPoolSharedDedup(t *testing.T) {
	db := geo.NewDB(geo.DBConfig{Seed: 21})
	used := make(map[netip.Addr]bool)
	rng := rand.New(rand.NewSource(21))
	p := testProfile(dataset.Optima, 10)
	pool1, err := NewPool(rng, db, p, 150, used)
	if err != nil {
		t.Fatal(err)
	}
	pool2, err := NewPool(rng, db, p, 150, used)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[netip.Addr]bool)
	for _, b := range pool1.Bots() {
		seen[b.IP] = true
	}
	for _, b := range pool2.Bots() {
		if seen[b.IP] {
			t.Fatalf("bot %v recruited by both pools", b.IP)
		}
	}
}

func TestFormationSymmetricVsAsymmetric(t *testing.T) {
	db := geo.NewDB(geo.DBConfig{Seed: 22})
	rng := rand.New(rand.NewSource(22))
	p := testProfile(dataset.Pandora, 10)
	p.SourceCountries = []CountryShare{{CC: "RU", Weight: 1}}
	pool, err := NewPool(rng, db, p, 2000, make(map[netip.Addr]bool))
	if err != nil {
		t.Fatal(err)
	}
	when := time.Now()
	dispersionOf := func(symmetric bool) float64 {
		var total float64
		const trials = 30
		for i := 0; i < trials; i++ {
			ips := pool.Formation("RU", 40, symmetric, 2500, when)
			pts := make([]geo.LatLon, 0, len(ips))
			for _, ip := range ips {
				loc, ok := db.Lookup(ip)
				if !ok {
					t.Fatalf("unresolvable formation IP %v", ip)
				}
				pts = append(pts, loc.Point)
			}
			d, ok := geo.Dispersion(pts)
			if !ok {
				t.Fatal("empty formation")
			}
			total += d
		}
		return total / trials
	}
	sym := dispersionOf(true)
	asym := dispersionOf(false)
	if sym >= asym {
		t.Errorf("symmetric dispersion %v not below asymmetric %v", sym, asym)
	}
	if sym > 200 {
		t.Errorf("symmetric dispersion = %v km, want near zero", sym)
	}
}

func TestFormationMarksLastActive(t *testing.T) {
	db := geo.NewDB(geo.DBConfig{Seed: 23})
	rng := rand.New(rand.NewSource(23))
	p := testProfile(dataset.Nitol, 10)
	pool, err := NewPool(rng, db, p, 100, make(map[netip.Addr]bool))
	if err != nil {
		t.Fatal(err)
	}
	when := time.Date(2012, 9, 1, 12, 0, 0, 0, time.UTC)
	ips := pool.Formation("RU", 5, false, 1000, when)
	if len(ips) == 0 {
		t.Fatal("empty formation")
	}
	byIP := make(map[netip.Addr]*dataset.Bot)
	for _, b := range pool.Bots() {
		byIP[b.IP] = b
	}
	for _, ip := range ips {
		if !byIP[ip].LastActive.Equal(when) {
			t.Errorf("bot %v LastActive = %v, want %v", ip, byIP[ip].LastActive, when)
		}
	}
}
