package report

import (
	"fmt"
	"math"
	"strings"

	"botscope/internal/stats"
)

// BarChart renders labeled horizontal bars scaled to maxWidth characters —
// the text analogue of Figs 1, 4, and 8.
func BarChart(title string, labels []string, values []float64, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	if len(labels) == 0 || len(labels) != len(values) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	labelW := 0
	maxV := 0.0
	for i, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
		if values[i] > maxV {
			maxV = values[i]
		}
	}
	for i, l := range labels {
		n := 0
		if maxV > 0 {
			n = int(values[i] / maxV * float64(maxWidth))
		}
		if values[i] > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", labelW, l, strings.Repeat("#", n), FormatFloat(values[i], 0))
	}
	return b.String()
}

// CDFChart renders an ECDF as a fixed-size character grid with a
// log-scaled x axis — the text analogue of the paper's CDF figures
// (Figs 3, 5, 7, 9, 17).
func CDFChart(title string, cdf *stats.ECDF, width, height int) string {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	pts := cdf.LogPoints(width)
	if len(pts) == 0 {
		// Fall back to linear sampling for all-zero or tiny samples.
		pts = cdf.Points(width)
	}
	if len(pts) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, p := range pts {
		if c >= width {
			break
		}
		row := int((1 - p.P) * float64(height-1))
		grid[row][c] = '*'
	}
	for r, line := range grid {
		frac := 1 - float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s\n", frac, string(line))
	}
	b.WriteString("     +" + strings.Repeat("-", width) + "\n")
	lo, hi := pts[0].X, pts[len(pts)-1].X
	fmt.Fprintf(&b, "      x: %s .. %s (log scale)\n", FormatFloat(lo, 1), FormatFloat(hi, 1))
	return b.String()
}

// MultiCDFLandmarks prints one row of CDF landmarks per series: the
// quantiles and threshold masses the paper quotes in its prose.
func MultiCDFLandmarks(title string, names []string, cdfs []*stats.ECDF, thresholds []float64) string {
	headers := []string{"series", "n", "p50", "p80", "p95"}
	for _, th := range thresholds {
		headers = append(headers, fmt.Sprintf("P(x<=%s)", FormatFloat(th, 0)))
	}
	t := NewTable(title, headers...)
	for i := 1; i < len(headers); i++ {
		t.SetAlign(i, AlignRight)
	}
	for i, name := range names {
		if i >= len(cdfs) {
			break
		}
		cdf := cdfs[i]
		row := []string{
			name,
			FormatInt(cdf.N()),
			FormatFloat(cdf.Quantile(0.5), 1),
			FormatFloat(cdf.Quantile(0.8), 1),
			FormatFloat(cdf.Quantile(0.95), 1),
		}
		for _, th := range thresholds {
			row = append(row, fmt.Sprintf("%.3f", cdf.Eval(th)))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// HistogramChart renders a histogram as vertical counts per bin — the
// text analogue of Figs 10-11.
func HistogramChart(title string, h *stats.Histogram, maxWidth int) string {
	labels := make([]string, 0, h.Bins())
	values := make([]float64, 0, h.Bins())
	for i := 0; i < h.Bins(); i++ {
		lo, hi := h.BinEdges(i)
		labels = append(labels, fmt.Sprintf("[%s, %s)", FormatFloat(lo, 0), FormatFloat(hi, 0)))
		values = append(values, float64(h.Count(i)))
	}
	out := BarChart(title, labels, values, maxWidth)
	if h.Underflow() > 0 || h.Overflow() > 0 {
		out += fmt.Sprintf("(underflow %d, overflow %d)\n", h.Underflow(), h.Overflow())
	}
	return out
}

// Sparkline compresses a series into a single line of block characters,
// used for the Fig 2/6/12/13 time-series panels.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}

// SeriesPanel renders a long series as several sparkline rows of at most
// width points each (down-sampled by bucket means when needed).
func SeriesPanel(title string, values []float64, width int) string {
	if width <= 0 {
		width = 72
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	if len(values) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	compact := Downsample(values, width)
	b.WriteString(Sparkline(compact))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "min %s  mean %s  max %s  (n=%s)\n",
		FormatFloat(stats.Min(values), 1),
		FormatFloat(stats.Mean(values), 1),
		FormatFloat(stats.Max(values), 1),
		FormatInt(len(values)))
	return b.String()
}

// Downsample reduces values to at most n points by bucket means.
func Downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(values) / n
		hi := (i + 1) * len(values) / n
		if hi <= lo {
			hi = lo + 1
		}
		out[i] = stats.Mean(values[lo:hi])
	}
	return out
}

// WorldMap renders (lat, lon, weight) marks on a coarse ASCII world grid —
// the text analogue of the Fig 14 hotspot map. Marks are sized by weight:
// '.' for light, 'o' for medium, 'O' for heavy.
func WorldMap(title string, lats, lons, weights []float64, width, height int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 24
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	maxW := 0.0
	for _, w := range weights {
		if w > maxW {
			maxW = w
		}
	}
	for i := range lats {
		if i >= len(lons) {
			break
		}
		col := int((lons[i] + 180) / 360 * float64(width-1))
		row := int((90 - lats[i]) / 180 * float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			continue
		}
		mark := byte('.')
		if maxW > 0 && i < len(weights) {
			switch frac := weights[i] / maxW; {
			case frac > 0.5:
				mark = 'O'
			case frac > 0.1:
				mark = 'o'
			}
		}
		// Heavier marks win cell conflicts.
		if rank(mark) > rank(grid[row][col]) {
			grid[row][col] = mark
		}
	}
	for _, line := range grid {
		b.WriteString("|")
		b.Write(line)
		b.WriteString("|\n")
	}
	return b.String()
}

func rank(c byte) int {
	switch c {
	case 'O':
		return 3
	case 'o':
		return 2
	case '.':
		return 1
	default:
		return 0
	}
}

// PercentString formats a fraction as "12.3%".
func PercentString(frac float64) string {
	if math.IsNaN(frac) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", frac*100)
}
