package report

import (
	"strings"
	"testing"

	"botscope/internal/stats"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "name", "count")
	tbl.SetAlign(1, AlignRight)
	tbl.AddRow("alpha", "10")
	tbl.AddRow("b", "2000")
	out := tbl.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2000") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d, want 5:\n%s", len(lines), out)
	}
	// Right-aligned column: "10" must be padded from the left.
	if !strings.Contains(lines[3], "  10") {
		t.Errorf("right alignment broken: %q", lines[3])
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tbl.NumRows())
	}
}

func TestTableRowShapeHandling(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("only")            // short row
	tbl.AddRow("x", "y", "extra") // long row truncated
	tbl.AddRowf("p\tq")           // tab-split
	out := tbl.String()
	if strings.Contains(out, "extra") {
		t.Error("extra cell not truncated")
	}
	if !strings.Contains(out, "p") || !strings.Contains(out, "q") {
		t.Errorf("AddRowf row missing:\n%s", out)
	}
}

func TestFormatInt(t *testing.T) {
	tests := []struct {
		give int
		want string
	}{
		{give: 0, want: "0"},
		{give: 7, want: "7"},
		{give: 999, want: "999"},
		{give: 1000, want: "1,000"},
		{give: 50704, want: "50,704"},
		{give: 1234567, want: "1,234,567"},
		{give: -50704, want: "-50,704"},
	}
	for _, tt := range tests {
		if got := FormatInt(tt.give); got != tt.want {
			t.Errorf("FormatInt(%d) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		give     float64
		decimals int
		want     string
	}{
		{give: 10308.4, decimals: 1, want: "10,308.4"},
		{give: 0.5, decimals: 0, want: "1"},
		{give: 1766, decimals: 0, want: "1,766"},
		{give: -3.25, decimals: 2, want: "-3.25"},
		{give: 0.999, decimals: 1, want: "1.0"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.give, tt.decimals); got != tt.want {
			t.Errorf("FormatFloat(%v, %d) = %q, want %q", tt.give, tt.decimals, got, tt.want)
		}
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Protocols", []string{"HTTP", "UDP"}, []float64{100, 10}, 20)
	if !strings.Contains(out, "HTTP") || !strings.Contains(out, "#") {
		t.Errorf("bar chart malformed:\n%s", out)
	}
	// Small nonzero values still draw at least one mark.
	out = BarChart("", []string{"a", "b"}, []float64{1000, 1}, 20)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "b") && !strings.Contains(line, "#") {
			t.Errorf("tiny bar dropped: %q", line)
		}
	}
	if out := BarChart("t", nil, nil, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestCDFChart(t *testing.T) {
	cdf := stats.NewECDF([]float64{1, 10, 100, 1000, 10000})
	out := CDFChart("Durations", cdf, 40, 8)
	if !strings.Contains(out, "Durations") || !strings.Contains(out, "*") {
		t.Errorf("CDF chart malformed:\n%s", out)
	}
	if !strings.Contains(out, "log scale") {
		t.Error("missing axis annotation")
	}
	empty := CDFChart("x", stats.NewECDF(nil), 40, 8)
	if !strings.Contains(empty, "no data") {
		t.Errorf("empty CDF chart = %q", empty)
	}
}

func TestMultiCDFLandmarks(t *testing.T) {
	cdfA := stats.NewECDF([]float64{1, 2, 3, 4, 5})
	cdfB := stats.NewECDF([]float64{10, 20, 30})
	out := MultiCDFLandmarks("Intervals", []string{"all", "dirtjumper"},
		[]*stats.ECDF{cdfA, cdfB}, []float64{60})
	if !strings.Contains(out, "P(x<=60)") {
		t.Errorf("threshold column missing:\n%s", out)
	}
	if !strings.Contains(out, "dirtjumper") {
		t.Errorf("series row missing:\n%s", out)
	}
}

func TestHistogramChart(t *testing.T) {
	h, err := stats.NewHistogram(0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{5, 10, 55, 200})
	out := HistogramChart("Dispersion", h, 20)
	if !strings.Contains(out, "[0, 25)") {
		t.Errorf("bin labels missing:\n%s", out)
	}
	if !strings.Contains(out, "overflow 1") {
		t.Errorf("overflow note missing:\n%s", out)
	}
}

func TestSparklineAndPanel(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("Sparkline(nil) = %q", got)
	}
	line := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(line)) != 4 {
		t.Errorf("sparkline length = %d, want 4", len([]rune(line)))
	}
	flat := Sparkline([]float64{5, 5, 5})
	runes := []rune(flat)
	if runes[0] != runes[1] || runes[1] != runes[2] {
		t.Errorf("flat series rendered unevenly: %q", flat)
	}

	panel := SeriesPanel("Daily", []float64{1, 2, 3, 4, 5}, 3)
	if !strings.Contains(panel, "mean") {
		t.Errorf("panel stats missing:\n%s", panel)
	}
	if empty := SeriesPanel("x", nil, 10); !strings.Contains(empty, "no data") {
		t.Errorf("empty panel = %q", empty)
	}
}

func TestDownsample(t *testing.T) {
	vals := []float64{1, 1, 3, 3, 5, 5}
	got := Downsample(vals, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// No-op when already small; result is a copy.
	same := Downsample(vals, 100)
	same[0] = 99
	if vals[0] == 99 {
		t.Error("Downsample aliases input")
	}
}

func TestWorldMap(t *testing.T) {
	out := WorldMap("Targets", []float64{55.7, 40.7}, []float64{37.6, -74.0}, []float64{100, 10}, 40, 12)
	if !strings.Contains(out, "O") {
		t.Errorf("heavy mark missing:\n%s", out)
	}
	if !strings.Contains(out, "o") && !strings.Contains(out, ".") {
		t.Errorf("light mark missing:\n%s", out)
	}
	// Out-of-range coordinates are skipped, not crashed on.
	_ = WorldMap("x", []float64{999}, []float64{999}, []float64{1}, 10, 5)
}

func TestPercentString(t *testing.T) {
	if got := PercentString(0.767); got != "76.7%" {
		t.Errorf("PercentString = %q", got)
	}
}
