// Package report renders botscope analysis results as plain-text tables
// and charts, so cmd/botreport can regenerate every table and figure of
// the paper on a terminal.
package report

import (
	"fmt"
	"strings"
)

// Align controls column alignment in a Table.
type Align int

// Column alignments.
const (
	AlignLeft Align = iota + 1
	AlignRight
)

// Table is a simple text table builder.
type Table struct {
	title   string
	headers []string
	aligns  []Align
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	aligns := make([]Align, len(headers))
	for i := range aligns {
		aligns[i] = AlignLeft
	}
	return &Table{title: title, headers: headers, aligns: aligns}
}

// SetAlign sets the alignment of column i (ignored when out of range).
func (t *Table) SetAlign(i int, a Align) *Table {
	if i >= 0 && i < len(t.aligns) {
		t.aligns[i] = a
	}
	return t
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells are blank.
func (t *Table) AddRow(cells ...string) *Table {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...any) *Table {
	// Split a pre-formatted line on tabs for convenience.
	return t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with a box-drawing-free ASCII layout.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(cell)
			if t.aligns[i] == AlignRight {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				if i < len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatInt renders n with thousands separators (50,704 style), matching
// how the paper prints counts.
func FormatInt(n int) string {
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// FormatFloat renders f with the given decimals and thousands separators.
func FormatFloat(f float64, decimals int) string {
	if f < 0 {
		return "-" + FormatFloat(-f, decimals)
	}
	whole := int(f)
	frac := f - float64(whole)
	if decimals <= 0 {
		return FormatInt(int(f + 0.5))
	}
	fracStr := fmt.Sprintf("%.*f", decimals, frac)
	// fracStr is like "0.46" (or "1.00" after rounding up).
	if strings.HasPrefix(fracStr, "1") {
		whole++
		fracStr = fmt.Sprintf("%.*f", decimals, 0.0)
	}
	return FormatInt(whole) + fracStr[1:]
}
