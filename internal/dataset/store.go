package dataset

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"botscope/internal/par"
)

// Store is an immutable, indexed view over one workload: the attack list
// plus the bot and botnet schemas it references. Construction sorts and
// indexes everything once; queries are then cheap. A Store is safe for
// concurrent readers.
//
// The sorted Families/Targets views and the per-family counts are
// memoized lazily: hot paths call them once per target or family scan,
// and re-sorting the full key set on every call dominated the analysis
// kernels at scale. Each cached slice is built exactly once inside its
// sync.Once and is immutable afterwards, so returning the shared slice to
// concurrent readers is safe.
type Store struct {
	attacks  []*Attack // sorted by (Start, ID)
	botnets  map[BotnetID]*Botnet
	bots     map[netip.Addr]*Bot
	byFamily map[Family][]*Attack
	byTarget map[netip.Addr][]*Attack
	byBotnet map[BotnetID][]*Attack

	famOnce      sync.Once
	families     []Family      // written once inside famOnce.Do; immutable after
	familyCounts []FamilyCount // written once inside famOnce.Do; immutable after
	tgtOnce      sync.Once
	targets      []netip.Addr // written once inside tgtOnce.Do; immutable after
	botOnce      sync.Once
	botIdx       *BotIndex // written once inside botOnce.Do; immutable after
}

// FamilyCount pairs a family with its attack count, ordered by family.
type FamilyCount struct {
	Family  Family
	Attacks int
}

// NewStore validates, sorts, and indexes a workload. Bots and botnets may
// be nil when only attack-level analyses are needed.
func NewStore(attacks []*Attack, botnets []*Botnet, bots []*Bot) (*Store, error) {
	s := &Store{
		attacks:  make([]*Attack, 0, len(attacks)),
		botnets:  make(map[BotnetID]*Botnet, len(botnets)),
		bots:     make(map[netip.Addr]*Bot, len(bots)),
		byFamily: make(map[Family][]*Attack),
		byTarget: make(map[netip.Addr][]*Attack),
		byBotnet: make(map[BotnetID][]*Attack),
	}
	seen := make(map[DDoSID]bool, len(attacks))
	for _, a := range attacks {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if seen[a.ID] {
			return nil, fmt.Errorf("dataset: duplicate ddos_id %d", a.ID)
		}
		seen[a.ID] = true
		s.attacks = append(s.attacks, a)
	}
	sort.Slice(s.attacks, func(i, j int) bool {
		if !s.attacks[i].Start.Equal(s.attacks[j].Start) {
			return s.attacks[i].Start.Before(s.attacks[j].Start)
		}
		return s.attacks[i].ID < s.attacks[j].ID
	})
	for _, a := range s.attacks {
		s.byFamily[a.Family] = append(s.byFamily[a.Family], a)
		s.byTarget[a.TargetIP] = append(s.byTarget[a.TargetIP], a)
		s.byBotnet[a.BotnetID] = append(s.byBotnet[a.BotnetID], a)
	}
	for _, b := range botnets {
		if _, dup := s.botnets[b.ID]; dup {
			return nil, fmt.Errorf("dataset: duplicate botnet_id %d", b.ID)
		}
		s.botnets[b.ID] = b
	}
	for _, b := range bots {
		s.bots[b.IP] = b
	}
	return s, nil
}

// NumAttacks returns the number of attack records.
func (s *Store) NumAttacks() int { return len(s.attacks) }

// Attacks returns all attacks ordered by start time. The slice is shared
// and must not be modified; records themselves are shared too.
//
//botscope:shared
func (s *Store) Attacks() []*Attack { return s.attacks }

// ByFamily returns the family's attacks in start-time order. The slice
// is the shared index bucket and must not be modified.
//
//botscope:shared
func (s *Store) ByFamily(f Family) []*Attack { return s.byFamily[f] }

// ByTarget returns all attacks against one target IP in start-time
// order. The slice is the shared index bucket and must not be modified.
//
//botscope:shared
func (s *Store) ByTarget(ip netip.Addr) []*Attack { return s.byTarget[ip] }

// ByBotnet returns all attacks launched by one botnet in start-time
// order. The slice is the shared index bucket and must not be modified.
//
//botscope:shared
func (s *Store) ByBotnet(id BotnetID) []*Attack { return s.byBotnet[id] }

// Botnet resolves a botnet record.
func (s *Store) Botnet(id BotnetID) (*Botnet, bool) {
	b, ok := s.botnets[id]
	return b, ok
}

// Bot resolves a bot record by IP.
func (s *Store) Bot(ip netip.Addr) (*Bot, bool) {
	b, ok := s.bots[ip]
	return b, ok
}

// NumBots returns the number of Botlist records.
func (s *Store) NumBots() int { return len(s.bots) }

// NumBotnets returns the number of Botnetlist records.
func (s *Store) NumBotnets() int { return len(s.botnets) }

// Families returns every family that launched at least one attack,
// sorted. The slice is computed once and shared: callers must not modify
// it.
//
//botscope:shared
func (s *Store) Families() []Family {
	s.famOnce.Do(s.buildFamilies)
	return s.families
}

// FamilyCounts returns every family with its attack count, sorted by
// family. The slice is computed once and shared: callers must not modify
// it.
//
//botscope:shared
func (s *Store) FamilyCounts() []FamilyCount {
	s.famOnce.Do(s.buildFamilies)
	return s.familyCounts
}

func (s *Store) buildFamilies() {
	fams := make([]Family, 0, len(s.byFamily))
	for f := range s.byFamily {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	counts := make([]FamilyCount, len(fams))
	for i, f := range fams {
		counts[i] = FamilyCount{Family: f, Attacks: len(s.byFamily[f])}
	}
	s.families = fams
	s.familyCounts = counts
}

// Targets returns every attacked IP, sorted. The slice is computed once
// and shared: callers must not modify it.
//
//botscope:shared
func (s *Store) Targets() []netip.Addr {
	s.tgtOnce.Do(func() {
		out := make([]netip.Addr, 0, len(s.byTarget))
		for ip := range s.byTarget {
			out = append(out, ip)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		s.targets = out
	})
	return s.targets
}

// NumTargets returns the number of distinct attacked IPs.
func (s *Store) NumTargets() int { return len(s.byTarget) }

// InRange returns attacks with Start in [from, to), using the start-time
// ordering for a binary-searched slice rather than a scan. The result
// aliases the shared attack list and must not be modified.
//
//botscope:shared
func (s *Store) InRange(from, to time.Time) []*Attack {
	lo := sort.Search(len(s.attacks), func(i int) bool {
		return !s.attacks[i].Start.Before(from)
	})
	hi := sort.Search(len(s.attacks), func(i int) bool {
		return !s.attacks[i].Start.Before(to)
	})
	return s.attacks[lo:hi]
}

// TimeBounds returns the earliest start and the latest end across all
// attacks. ok is false for an empty store.
func (s *Store) TimeBounds() (first, last time.Time, ok bool) {
	if len(s.attacks) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first = s.attacks[0].Start
	for _, a := range s.attacks {
		if a.End.After(last) {
			last = a.End
		}
	}
	return first, last, true
}

// SummaryCounts mirrors the paper's Table III: distinct entities on the
// attacker and victim sides.
type SummaryCounts struct {
	Attacks         int
	Botnets         int
	TrafficTypes    int
	BotIPs          int
	SourceCountries int
	SourceCities    int
	SourceOrgs      int
	SourceASNs      int
	TargetIPs       int
	TargetCountries int
	TargetCities    int
	TargetOrgs      int
	TargetASNs      int
}

// placeKey identifies a city within its country. The old scan keyed city
// sets on the concatenation cc+"/"+city, which allocated a string per
// visit; distinct (cc, city) pairs are exactly the distinct concatenations
// because country codes never contain '/'.
type placeKey struct {
	cc   string
	city string
}

// summaryShard holds the target-side distinct-entity sets of one
// contiguous attack range; shards merge by set union, so the result is
// independent of how the attack list is split. The attacker side no
// longer lives here: bot identity questions are answered by the dense
// BotIndex instead of re-deduplicating millions of references per scan.
type summaryShard struct {
	types     map[Category]struct{}
	tgtCC     map[string]struct{}
	tgtCities map[placeKey]struct{}
	tgtOrgs   map[string]struct{}
	tgtASNs   map[int]struct{}
}

func newSummaryShard() *summaryShard {
	return &summaryShard{
		types:     make(map[Category]struct{}, 8),
		tgtCC:     make(map[string]struct{}, 64),
		tgtCities: make(map[placeKey]struct{}, 256),
		tgtOrgs:   make(map[string]struct{}, 256),
		tgtASNs:   make(map[int]struct{}, 256),
	}
}

func (sh *summaryShard) add(a *Attack) {
	sh.types[a.Category] = struct{}{}
	sh.tgtCC[a.TargetCountry] = struct{}{}
	sh.tgtCities[placeKey{a.TargetCountry, a.TargetCity}] = struct{}{}
	sh.tgtOrgs[a.TargetOrg] = struct{}{}
	sh.tgtASNs[a.TargetASN] = struct{}{}
}

func (sh *summaryShard) merge(o *summaryShard) {
	for k := range o.types {
		sh.types[k] = struct{}{}
	}
	for k := range o.tgtCC {
		sh.tgtCC[k] = struct{}{}
	}
	for k := range o.tgtCities {
		sh.tgtCities[k] = struct{}{}
	}
	for k := range o.tgtOrgs {
		sh.tgtOrgs[k] = struct{}{}
	}
	for k := range o.tgtASNs {
		sh.tgtASNs[k] = struct{}{}
	}
}

// srcShard holds the source-side distinct-entity sets of one contiguous
// dense-id range. Each distinct bot is visited exactly once per summary
// (the BotIndex already deduplicated attack references), so the pass is
// linear in distinct bots rather than in total bot references.
type srcShard struct {
	cc   map[string]struct{}
	city map[placeKey]struct{}
	org  map[string]struct{}
	asn  map[int]struct{}
}

func newSrcShard() *srcShard {
	return &srcShard{
		cc:   make(map[string]struct{}, 64),
		city: make(map[placeKey]struct{}, 1024),
		org:  make(map[string]struct{}, 1024),
		asn:  make(map[int]struct{}, 1024),
	}
}

func (sh *srcShard) merge(o *srcShard) {
	for k := range o.cc {
		sh.cc[k] = struct{}{}
	}
	for k := range o.city {
		sh.city[k] = struct{}{}
	}
	for k := range o.org {
		sh.org[k] = struct{}{}
	}
	for k := range o.asn {
		sh.asn[k] = struct{}{}
	}
}

// Summary computes Table III's counts over the full workload. Source-side
// entity counts come from the Botlist records of the bots that appear in
// attacks; target-side counts come from the attack records. Identity
// counts (attacks, botnets, bot IPs, target IPs) fall out of the store's
// standing indexes; the remaining distinct sets are sharded across
// contiguous ranges and merged by set union, so the counts are identical
// to a sequential pass.
func (s *Store) Summary() SummaryCounts {
	return s.SummaryWorkers(0)
}

// SummaryWorkers is Summary with an explicit worker count (0 = all
// cores, 1 = sequential).
func (s *Store) SummaryWorkers(workers int) SummaryCounts {
	ix := s.BotDense()
	tgtShards := par.ChunkMap(workers, len(s.attacks), func(lo, hi int) *summaryShard {
		sh := newSummaryShard()
		for _, a := range s.attacks[lo:hi] {
			sh.add(a)
		}
		return sh
	})
	srcShards := par.ChunkMap(workers, ix.NumIDs(), func(lo, hi int) *srcShard {
		sh := newSrcShard()
		for _, b := range ix.recs[lo:hi] {
			if b == nil {
				continue
			}
			sh.cc[b.CountryCode] = struct{}{}
			sh.city[placeKey{b.CountryCode, b.City}] = struct{}{}
			sh.org[b.Org] = struct{}{}
			sh.asn[b.ASN] = struct{}{}
		}
		return sh
	})
	tgt := newSummaryShard()
	for _, sh := range tgtShards {
		tgt.merge(sh)
	}
	src := newSrcShard()
	for _, sh := range srcShards {
		src.merge(sh)
	}
	return SummaryCounts{
		Attacks:         len(s.attacks),
		Botnets:         len(s.byBotnet),
		TrafficTypes:    len(tgt.types),
		BotIPs:          ix.NumIDs(),
		SourceCountries: len(src.cc),
		SourceCities:    len(src.city),
		SourceOrgs:      len(src.org),
		SourceASNs:      len(src.asn),
		TargetIPs:       len(s.byTarget),
		TargetCountries: len(tgt.tgtCC),
		TargetCities:    len(tgt.tgtCities),
		TargetOrgs:      len(tgt.tgtOrgs),
		TargetASNs:      len(tgt.tgtASNs),
	}
}
