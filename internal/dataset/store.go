package dataset

import (
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// Store is an immutable, indexed view over one workload: the attack list
// plus the bot and botnet schemas it references. Construction sorts and
// indexes everything once; queries are then cheap. A Store is safe for
// concurrent readers.
type Store struct {
	attacks  []*Attack // sorted by (Start, ID)
	botnets  map[BotnetID]*Botnet
	bots     map[netip.Addr]*Bot
	byFamily map[Family][]*Attack
	byTarget map[netip.Addr][]*Attack
	byBotnet map[BotnetID][]*Attack
}

// NewStore validates, sorts, and indexes a workload. Bots and botnets may
// be nil when only attack-level analyses are needed.
func NewStore(attacks []*Attack, botnets []*Botnet, bots []*Bot) (*Store, error) {
	s := &Store{
		attacks:  make([]*Attack, 0, len(attacks)),
		botnets:  make(map[BotnetID]*Botnet, len(botnets)),
		bots:     make(map[netip.Addr]*Bot, len(bots)),
		byFamily: make(map[Family][]*Attack),
		byTarget: make(map[netip.Addr][]*Attack),
		byBotnet: make(map[BotnetID][]*Attack),
	}
	seen := make(map[DDoSID]bool, len(attacks))
	for _, a := range attacks {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if seen[a.ID] {
			return nil, fmt.Errorf("dataset: duplicate ddos_id %d", a.ID)
		}
		seen[a.ID] = true
		s.attacks = append(s.attacks, a)
	}
	sort.Slice(s.attacks, func(i, j int) bool {
		if !s.attacks[i].Start.Equal(s.attacks[j].Start) {
			return s.attacks[i].Start.Before(s.attacks[j].Start)
		}
		return s.attacks[i].ID < s.attacks[j].ID
	})
	for _, a := range s.attacks {
		s.byFamily[a.Family] = append(s.byFamily[a.Family], a)
		s.byTarget[a.TargetIP] = append(s.byTarget[a.TargetIP], a)
		s.byBotnet[a.BotnetID] = append(s.byBotnet[a.BotnetID], a)
	}
	for _, b := range botnets {
		if _, dup := s.botnets[b.ID]; dup {
			return nil, fmt.Errorf("dataset: duplicate botnet_id %d", b.ID)
		}
		s.botnets[b.ID] = b
	}
	for _, b := range bots {
		s.bots[b.IP] = b
	}
	return s, nil
}

// NumAttacks returns the number of attack records.
func (s *Store) NumAttacks() int { return len(s.attacks) }

// Attacks returns all attacks ordered by start time. The slice is shared
// and must not be modified; records themselves are shared too.
func (s *Store) Attacks() []*Attack { return s.attacks }

// ByFamily returns the family's attacks in start-time order.
func (s *Store) ByFamily(f Family) []*Attack { return s.byFamily[f] }

// ByTarget returns all attacks against one target IP in start-time order.
func (s *Store) ByTarget(ip netip.Addr) []*Attack { return s.byTarget[ip] }

// ByBotnet returns all attacks launched by one botnet in start-time order.
func (s *Store) ByBotnet(id BotnetID) []*Attack { return s.byBotnet[id] }

// Botnet resolves a botnet record.
func (s *Store) Botnet(id BotnetID) (*Botnet, bool) {
	b, ok := s.botnets[id]
	return b, ok
}

// Bot resolves a bot record by IP.
func (s *Store) Bot(ip netip.Addr) (*Bot, bool) {
	b, ok := s.bots[ip]
	return b, ok
}

// NumBots returns the number of Botlist records.
func (s *Store) NumBots() int { return len(s.bots) }

// NumBotnets returns the number of Botnetlist records.
func (s *Store) NumBotnets() int { return len(s.botnets) }

// Families returns every family that launched at least one attack, sorted.
func (s *Store) Families() []Family {
	out := make([]Family, 0, len(s.byFamily))
	for f := range s.byFamily {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Targets returns every attacked IP, sorted.
func (s *Store) Targets() []netip.Addr {
	out := make([]netip.Addr, 0, len(s.byTarget))
	for ip := range s.byTarget {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// InRange returns attacks with Start in [from, to), using the start-time
// ordering for a binary-searched slice rather than a scan.
func (s *Store) InRange(from, to time.Time) []*Attack {
	lo := sort.Search(len(s.attacks), func(i int) bool {
		return !s.attacks[i].Start.Before(from)
	})
	hi := sort.Search(len(s.attacks), func(i int) bool {
		return !s.attacks[i].Start.Before(to)
	})
	return s.attacks[lo:hi]
}

// TimeBounds returns the earliest start and the latest end across all
// attacks. ok is false for an empty store.
func (s *Store) TimeBounds() (first, last time.Time, ok bool) {
	if len(s.attacks) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first = s.attacks[0].Start
	for _, a := range s.attacks {
		if a.End.After(last) {
			last = a.End
		}
	}
	return first, last, true
}

// SummaryCounts mirrors the paper's Table III: distinct entities on the
// attacker and victim sides.
type SummaryCounts struct {
	Attacks         int
	Botnets         int
	TrafficTypes    int
	BotIPs          int
	SourceCountries int
	SourceCities    int
	SourceOrgs      int
	SourceASNs      int
	TargetIPs       int
	TargetCountries int
	TargetCities    int
	TargetOrgs      int
	TargetASNs      int
}

// Summary computes Table III's counts over the full workload. Source-side
// entity counts come from the Botlist records of the bots that appear in
// attacks; target-side counts come from the attack records.
func (s *Store) Summary() SummaryCounts {
	var (
		botIPs    = make(map[netip.Addr]bool)
		botnets   = make(map[BotnetID]bool)
		types     = make(map[Category]bool)
		srcCC     = make(map[string]bool)
		srcCity   = make(map[string]bool)
		srcOrg    = make(map[string]bool)
		srcASN    = make(map[int]bool)
		tgtIPs    = make(map[netip.Addr]bool)
		tgtCC     = make(map[string]bool)
		tgtCities = make(map[string]bool)
		tgtOrgs   = make(map[string]bool)
		tgtASNs   = make(map[int]bool)
	)
	for _, a := range s.attacks {
		botnets[a.BotnetID] = true
		types[a.Category] = true
		tgtIPs[a.TargetIP] = true
		tgtCC[a.TargetCountry] = true
		tgtCities[a.TargetCountry+"/"+a.TargetCity] = true
		tgtOrgs[a.TargetOrg] = true
		tgtASNs[a.TargetASN] = true
		for _, ip := range a.BotIPs {
			if botIPs[ip] {
				continue
			}
			botIPs[ip] = true
			if b, ok := s.bots[ip]; ok {
				srcCC[b.CountryCode] = true
				srcCity[b.CountryCode+"/"+b.City] = true
				srcOrg[b.Org] = true
				srcASN[b.ASN] = true
			}
		}
	}
	return SummaryCounts{
		Attacks:         len(s.attacks),
		Botnets:         len(botnets),
		TrafficTypes:    len(types),
		BotIPs:          len(botIPs),
		SourceCountries: len(srcCC),
		SourceCities:    len(srcCity),
		SourceOrgs:      len(srcOrg),
		SourceASNs:      len(srcASN),
		TargetIPs:       len(tgtIPs),
		TargetCountries: len(tgtCC),
		TargetCities:    len(tgtCities),
		TargetOrgs:      len(tgtOrgs),
		TargetASNs:      len(tgtASNs),
	}
}
