package dataset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"net/netip"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"botscope/internal/par"
)

// Store is an immutable, indexed view over one workload: the attack list
// plus the bot and botnet schemas it references. Construction sorts and
// indexes everything once; queries are then cheap. A Store is safe for
// concurrent readers.
//
// The record slices and index maps are thin views: the canonical storage
// is the columnar core (columns.go), derived lazily from records on the
// NewStore path and decoded directly from the file on the snapshot path.
//
// The sorted Families/Targets views and the per-family counts are
// memoized lazily: hot paths call them once per target or family scan,
// and re-sorting the full key set on every call dominated the analysis
// kernels at scale. Each cached slice is built exactly once inside its
// sync.Once and is immutable afterwards, so returning the shared slice to
// concurrent readers is safe.
type Store struct {
	// fromSnapshot discriminates the store's two construction paths. It
	// is set before the store is published and immutable after: false
	// means NewStore built the record views eagerly (and cols is lazy),
	// true means the snapshot decoder set cols eagerly and the record
	// views below are materialized on demand inside recOnce.
	fromSnapshot bool
	closed       atomic.Bool // set once by Close; the mapping is gone after
	recOnce      sync.Once
	recBuilt     atomic.Bool // set at the end of materializeRecords (always true on the record path)

	attacks  []*Attack // sorted by (Start, ID); lazy on the snapshot path (recOnce)
	byFamily map[Family][]*Attack
	byTarget map[netip.Addr][]*Attack
	byBotnet map[BotnetID][]*Attack

	botnetList []*Botnet // Botnetlist input order; lazy on the snapshot path (recOnce)
	botnets    map[BotnetID]*Botnet
	botList    []*Bot // deduplicated by IP, first-occurrence order, last record wins

	botRowOnce sync.Once
	botRows    map[netip.Addr]int32 // ip -> row in botList; NewStore fills it eagerly, the snapshot path lazily

	colsOnce sync.Once
	cols     *Columns // written once inside colsOnce.Do (or by the snapshot path); immutable after

	famOnce      sync.Once
	families     []Family      // written once inside famOnce.Do; immutable after
	familyCounts []FamilyCount // written once inside famOnce.Do; immutable after
	tgtOnce      sync.Once
	targets      []netip.Addr // written once inside tgtOnce.Do; immutable after
	botOnce      sync.Once
	botIdx       *BotIndex // written once inside botOnce.Do; immutable after

	famRowsOnce sync.Once
	famRows     map[Family][]int32 // family -> ascending attack rows; written once inside famRowsOnce.Do

	tgtRowsOnce sync.Once
	tgtRows     [][]int32 // target id -> ascending attack rows; written once inside tgtRowsOnce.Do
	tgtOrder    []int32   // target ids in ascending address order; written once inside tgtRowsOnce.Do

	recRowsOnce sync.Once
	// recRows is the per-row record memo (snapshot path,
	// pre-materialization). Each slot is published with
	// CompareAndSwap(nil, rec) and re-read with Load so concurrent
	// bridges converge on one canonical record per row.
	//
	//botscope:memo
	recRows []atomic.Pointer[Attack]

	nbOnce         sync.Once
	nAttackBotnets int // distinct botnet ids across attacks; written once inside nbOnce.Do

	boundsOnce     sync.Once
	firstT, lastT  time.Time // written once inside boundsOnce.Do (snapshot path only)
	haveTimeBounds bool

	snapInfo SnapshotInfo // how the snapshot path loaded this store; zero on the record path
}

// records materializes the pointer-rich record views of a snapshot-
// backed store on first use. On the record path (NewStore) it is a
// no-op: the records are the construction input.
func (s *Store) records() {
	if s.fromSnapshot {
		s.recOnce.Do(s.materializeRecords)
	}
}

// RecordsMaterialized reports whether the record views (Attacks,
// ByFamily, Bot, ...) exist. A store built by NewStore always has them;
// a snapshot-loaded store only after some caller touched the record
// face. The column-native analysis kernels keep it false for a full
// report run.
func (s *Store) RecordsMaterialized() bool {
	return !s.fromSnapshot || s.recBuilt.Load()
}

// FamilyCount pairs a family with its attack count, ordered by family.
type FamilyCount struct {
	Family  Family
	Attacks int
}

// sortRec packs an attack's sort key next to its pointer so the sort
// compares plain int64s instead of calling time.Time methods through an
// interface, and moves 32-byte records instead of chasing pointers.
type sortRec struct {
	start int64
	id    uint64
	a     *Attack
}

// NewStore validates, sorts, and indexes a workload. Bots and botnets may
// be nil when only attack-level analyses are needed.
func NewStore(attacks []*Attack, botnets []*Botnet, bots []*Bot) (*Store, error) {
	recs := make([]sortRec, 0, len(attacks))
	seen := make(map[DDoSID]struct{}, len(attacks))
	for _, a := range attacks {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if _, dup := seen[a.ID]; dup {
			return nil, fmt.Errorf("dataset: duplicate ddos_id %d", a.ID)
		}
		seen[a.ID] = struct{}{}
		recs = append(recs, sortRec{start: a.Start.UnixNano(), id: uint64(a.ID), a: a})
	}
	slices.SortFunc(recs, func(x, y sortRec) int {
		if x.start != y.start {
			if x.start < y.start {
				return -1
			}
			return 1
		}
		if x.id < y.id {
			return -1
		}
		return 1
	})
	s := &Store{attacks: make([]*Attack, len(recs))}
	for i := range recs {
		s.attacks[i] = recs[i].a
	}
	scratch := make([]int32, len(s.attacks))
	s.byFamily = buildBuckets(s.attacks, scratch, func(a *Attack) Family { return a.Family })
	s.byTarget = buildBuckets(s.attacks, scratch, func(a *Attack) netip.Addr { return a.TargetIP })
	s.byBotnet = buildBuckets(s.attacks, scratch, func(a *Attack) BotnetID { return a.BotnetID })

	s.botnetList = make([]*Botnet, 0, len(botnets))
	s.botnets = make(map[BotnetID]*Botnet, len(botnets))
	for _, b := range botnets {
		if _, dup := s.botnets[b.ID]; dup {
			return nil, fmt.Errorf("dataset: duplicate botnet_id %d", b.ID)
		}
		s.botnets[b.ID] = b
		s.botnetList = append(s.botnetList, b)
	}

	s.botList = make([]*Bot, 0, len(bots))
	rows := make(map[netip.Addr]int32, len(bots))
	for _, b := range bots {
		if row, ok := rows[b.IP]; ok {
			s.botList[row] = b
			continue
		}
		rows[b.IP] = int32(len(s.botList))
		s.botList = append(s.botList, b)
	}
	s.botRows = rows
	s.recBuilt.Store(true)
	return s, nil
}

// buildBuckets groups the sorted attack list by key into one shared
// arena: one counting pass assigns each key a slot in first-seen order
// and one fill pass places every attack, so each bucket is a contiguous
// subslice in start-time order and the whole index costs two array
// sweeps plus one map lookup per attack instead of per-bucket append
// growth. Buckets are three-index subslices so an append through one
// cannot clobber its neighbor. scratch must have len(attacks) and is
// reused across calls.
func buildBuckets[K comparable](attacks []*Attack, scratch []int32, key func(*Attack) K) map[K][]*Attack {
	slots := make(map[K]int32, 64)
	var keys []K
	var counts []int32
	for i, a := range attacks {
		k := key(a)
		slot, ok := slots[k]
		if !ok {
			slot = int32(len(keys))
			slots[k] = slot
			keys = append(keys, k)
			counts = append(counts, 0)
		}
		scratch[i] = slot
		counts[slot]++
	}
	offs := make([]int32, len(keys)+1)
	for i, cnt := range counts {
		offs[i+1] = offs[i] + cnt
	}
	arena := make([]*Attack, len(attacks))
	next := counts // reuse: counts[slot] becomes the next write position
	copy(next, offs[:len(keys)])
	for i, a := range attacks {
		slot := scratch[i]
		arena[next[slot]] = a
		next[slot]++
	}
	m := make(map[K][]*Attack, len(keys))
	for slot, k := range keys {
		lo, hi := offs[slot], offs[slot+1]
		m[k] = arena[lo:hi:hi]
	}
	return m
}

// botRowsMap returns the ip -> Botlist row map, building it on first use
// on the snapshot path (NewStore produces it as a byproduct of
// deduplication).
func (s *Store) botRowsMap() map[netip.Addr]int32 {
	s.botRowOnce.Do(func() {
		if s.botRows == nil {
			m := make(map[netip.Addr]int32, len(s.botList))
			for i, b := range s.botList {
				if _, ok := m[b.IP]; !ok {
					m[b.IP] = int32(i)
				}
			}
			s.botRows = m
		}
	})
	return s.botRows
}

// NumAttacks returns the number of attack records.
func (s *Store) NumAttacks() int {
	if s.fromSnapshot {
		return len(s.cols.aID)
	}
	return len(s.attacks)
}

// Attacks returns all attacks ordered by start time. The slice is shared
// and must not be modified; records themselves are shared too.
//
//botscope:shared
//botscope:materializes
func (s *Store) Attacks() []*Attack {
	s.records()
	return s.attacks
}

// ByFamily returns the family's attacks in start-time order. The slice
// is the shared index bucket and must not be modified.
//
//botscope:shared
//botscope:materializes
func (s *Store) ByFamily(f Family) []*Attack {
	s.records()
	return s.byFamily[f]
}

// ByTarget returns all attacks against one target IP in start-time
// order. The slice is the shared index bucket and must not be modified.
//
//botscope:shared
//botscope:materializes
func (s *Store) ByTarget(ip netip.Addr) []*Attack {
	s.records()
	return s.byTarget[ip]
}

// ByBotnet returns all attacks launched by one botnet in start-time
// order. The slice is the shared index bucket and must not be modified.
//
//botscope:shared
//botscope:materializes
func (s *Store) ByBotnet(id BotnetID) []*Attack {
	s.records()
	return s.byBotnet[id]
}

// Botnet resolves a botnet record.
//
//botscope:materializes
func (s *Store) Botnet(id BotnetID) (*Botnet, bool) {
	s.records()
	b, ok := s.botnets[id]
	return b, ok
}

// Bot resolves a bot record by IP.
//
//botscope:materializes
func (s *Store) Bot(ip netip.Addr) (*Bot, bool) {
	s.records()
	row, ok := s.botRowsMap()[ip]
	if !ok {
		return nil, false
	}
	return s.botList[row], true
}

// NumBots returns the number of Botlist records.
func (s *Store) NumBots() int {
	if s.fromSnapshot {
		return len(s.cols.bIP)
	}
	return len(s.botList)
}

// NumBotnets returns the number of Botnetlist records.
func (s *Store) NumBotnets() int {
	if s.fromSnapshot {
		return len(s.cols.nID)
	}
	return len(s.botnetList)
}

// Families returns every family that launched at least one attack,
// sorted. The slice is computed once and shared: callers must not modify
// it.
//
//botscope:shared
func (s *Store) Families() []Family {
	s.famOnce.Do(s.buildFamilies)
	return s.families
}

// FamilyCounts returns every family with its attack count, sorted by
// family. The slice is computed once and shared: callers must not modify
// it.
//
//botscope:shared
func (s *Store) FamilyCounts() []FamilyCount {
	s.famOnce.Do(s.buildFamilies)
	return s.familyCounts
}

func (s *Store) buildFamilies() {
	if s.fromSnapshot {
		rows := s.famRowsMap()
		fams := make([]Family, 0, len(rows))
		for f := range rows {
			fams = append(fams, f)
		}
		sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
		counts := make([]FamilyCount, len(fams))
		for i, f := range fams {
			counts[i] = FamilyCount{Family: f, Attacks: len(rows[f])}
		}
		s.families = fams
		s.familyCounts = counts
		return
	}
	fams := make([]Family, 0, len(s.byFamily))
	for f := range s.byFamily {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	counts := make([]FamilyCount, len(fams))
	for i, f := range fams {
		counts[i] = FamilyCount{Family: f, Attacks: len(s.byFamily[f])}
	}
	s.families = fams
	s.familyCounts = counts
}

// famRowsMap returns the family -> ascending-attack-row index over the
// columns, building it once. One counting pass sizes each bucket and one
// fill pass places every row in a shared arena, so the buckets are
// contiguous and the rows within each family stay in (start, id) order.
func (s *Store) famRowsMap() map[Family][]int32 {
	s.famRowsOnce.Do(func() {
		c := s.Cols()
		nStr := len(c.strs)
		counts := make([]int32, nStr)
		for _, f := range c.aFam {
			counts[f]++
		}
		offs := make([]int32, nStr+1) // string id -> arena start
		for i, cnt := range counts {
			offs[i+1] = offs[i] + cnt
		}
		arena := make([]int32, len(c.aFam))
		next := counts // reuse: counts[f] becomes the next write position
		copy(next, offs[:nStr])
		for i, f := range c.aFam {
			arena[next[f]] = int32(i)
			next[f]++
		}
		rows := make(map[Family][]int32, 64)
		for f := 0; f < nStr; f++ {
			lo, hi := offs[f], offs[f+1]
			if lo == hi {
				continue
			}
			rows[Family(c.strs[f])] = arena[lo:hi:hi]
		}
		s.famRows = rows
	})
	return s.famRows
}

// Targets returns every attacked IP, sorted. The slice is computed once
// and shared: callers must not modify it.
//
//botscope:shared
func (s *Store) Targets() []netip.Addr {
	s.tgtOnce.Do(func() {
		if s.fromSnapshot {
			c := s.cols
			out := make([]netip.Addr, 0, len(c.targets))
			for _, tid := range s.targetIDs() {
				out = append(out, c.targets[tid])
			}
			s.targets = out
			return
		}
		out := make([]netip.Addr, 0, len(s.byTarget))
		for ip := range s.byTarget {
			out = append(out, ip)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		s.targets = out
	})
	return s.targets
}

// NumTargets returns the number of distinct attacked IPs.
func (s *Store) NumTargets() int {
	if s.fromSnapshot {
		return len(s.cols.targets)
	}
	return len(s.byTarget)
}

// targetIDs returns the column target ids in ascending address order —
// aligned index-for-index with Targets() on the snapshot path — building
// the per-target row index as a byproduct.
//
//botscope:shared
func (s *Store) targetIDs() []int32 {
	s.buildTargetRows()
	return s.tgtOrder
}

// TargetRows returns the ascending attack rows against one column target
// id. The slice is a shared arena bucket and must not be modified.
//
//botscope:shared
//botscope:mmap
func (s *Store) TargetRows(tid int32) []int32 {
	s.buildTargetRows()
	return s.tgtRows[tid]
}

// TargetIDs returns every column target id, ordered by target address
// (so index i here corresponds to Targets()[i] on the snapshot path).
// The slice is shared and must not be modified.
//
//botscope:shared
//botscope:mmap
func (s *Store) TargetIDs() []int32 { return s.targetIDs() }

// buildTargetRows buckets attack rows by target id in one counting pass
// and one fill pass over a shared arena, and sorts the target ids by
// address so column-native target scans visit targets in the same order
// as the record-face Targets() loop.
func (s *Store) buildTargetRows() {
	s.tgtRowsOnce.Do(func() {
		c := s.Cols()
		nt := len(c.targets)
		counts := make([]int32, nt)
		for _, tid := range c.aTgt {
			counts[tid]++
		}
		offs := make([]int32, nt+1)
		for i, cnt := range counts {
			offs[i+1] = offs[i] + cnt
		}
		arena := make([]int32, len(c.aTgt))
		next := counts // reuse: counts[tid] becomes the next write position
		copy(next, offs[:nt])
		for i, tid := range c.aTgt {
			arena[next[tid]] = int32(i)
			next[tid]++
		}
		rows := make([][]int32, nt)
		for tid := 0; tid < nt; tid++ {
			lo, hi := offs[tid], offs[tid+1]
			rows[tid] = arena[lo:hi:hi]
		}
		order := make([]int32, nt)
		for i := range order {
			order[i] = int32(i)
		}
		zoned := false
		for _, a := range c.targets {
			if a.Zone() != "" {
				zoned = true
				break
			}
		}
		if zoned {
			sort.Slice(order, func(i, j int) bool {
				return c.targets[order[i]].Less(c.targets[order[j]])
			})
		} else {
			// Zone-free addresses (every synth and snapshot workload)
			// order exactly like netip.Addr.Compare: bit length first,
			// then the 128-bit value — which As16 exposes big-endian. The
			// integer keys make the comparator a few register compares
			// instead of Addr.Less calls.
			hi := make([]uint64, nt)
			lo := make([]uint64, nt)
			bl := make([]uint8, nt)
			for i, a := range c.targets {
				b := a.As16()
				hi[i] = binary.BigEndian.Uint64(b[:8])
				lo[i] = binary.BigEndian.Uint64(b[8:])
				bl[i] = uint8(a.BitLen())
			}
			sort.Slice(order, func(i, j int) bool {
				a, b := order[i], order[j]
				if bl[a] != bl[b] {
					return bl[a] < bl[b]
				}
				if hi[a] != hi[b] {
					return hi[a] < hi[b]
				}
				return lo[a] < lo[b]
			})
		}
		s.tgtRows = rows
		s.tgtOrder = order
	})
}

// TargetAddr resolves a column target id to its address.
func (s *Store) TargetAddr(tid int32) netip.Addr { return s.Cols().targets[tid] }

// RowsByFamily returns the ascending attack rows of one family. The
// slice is a shared arena bucket and must not be modified.
//
//botscope:shared
//botscope:mmap
func (s *Store) RowsByFamily(f Family) []int32 { return s.famRowsMap()[f] }

// attackBotnets counts the distinct botnet ids that appear across
// attacks (which may be fewer than the Botnetlist rows), memoized.
func (s *Store) attackBotnets() int {
	s.nbOnce.Do(func() {
		c := s.Cols()
		seen := make(map[uint32]struct{}, 256)
		for _, id := range c.aBotnet {
			seen[id] = struct{}{}
		}
		s.nAttackBotnets = len(seen)
	})
	return s.nAttackBotnets
}

// InRange returns attacks with Start in [from, to), using the start-time
// ordering for a binary-searched slice rather than a scan. The result
// aliases the shared attack list and must not be modified.
//
//botscope:shared
//botscope:materializes
func (s *Store) InRange(from, to time.Time) []*Attack {
	s.records()
	lo := sort.Search(len(s.attacks), func(i int) bool {
		return !s.attacks[i].Start.Before(from)
	})
	hi := sort.Search(len(s.attacks), func(i int) bool {
		return !s.attacks[i].Start.Before(to)
	})
	return s.attacks[lo:hi]
}

// RowsInRange returns the half-open attack row range [lo, hi) whose
// starts fall in [from, to), using the column start ordering.
func (s *Store) RowsInRange(from, to time.Time) (lo, hi int) {
	c := s.Cols()
	fromNS, toNS := from.UnixNano(), to.UnixNano()
	lo = sort.Search(len(c.aStart), func(i int) bool { return c.aStart[i] >= fromNS })
	hi = sort.Search(len(c.aStart), func(i int) bool { return c.aStart[i] >= toNS })
	return lo, hi
}

// TimeBounds returns the earliest start and the latest end across all
// attacks. ok is false for an empty store.
func (s *Store) TimeBounds() (first, last time.Time, ok bool) {
	if s.fromSnapshot {
		s.boundsOnce.Do(func() {
			c := s.cols
			if len(c.aStart) == 0 {
				return
			}
			maxEnd := c.aEnd[0]
			for _, e := range c.aEnd[1:] {
				if e > maxEnd {
					maxEnd = e
				}
			}
			s.firstT, s.lastT = nanoTime(c.aStart[0]), nanoTime(maxEnd)
			s.haveTimeBounds = true
		})
		return s.firstT, s.lastT, s.haveTimeBounds
	}
	if len(s.attacks) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first = s.attacks[0].Start
	for _, a := range s.attacks {
		if a.End.After(last) {
			last = a.End
		}
	}
	return first, last, true
}

// AttackRecordAt returns the attack record for one column row. When the
// record face is already materialized it returns the shared record;
// otherwise it builds a fresh, caller-owned record (including a fresh
// BotIPs slice expanded from the dense layer) without triggering full
// materialization — detection kernels use it to realize only the few
// rows that qualify for an event.
//
//botscope:recordbridge
func (s *Store) AttackRecordAt(row int) *Attack {
	if s.RecordsMaterialized() {
		return s.attacks[row]
	}
	// Per-row memo: detectors that revisit the same rows (the collab
	// phases run detection twice, Table VI a third time) build each
	// record at most once. Slots are CAS-published — concurrent builders
	// of one row produce identical records, and the first one wins.
	s.recRowsOnce.Do(func() {
		s.recRows = make([]atomic.Pointer[Attack], len(s.cols.aID))
	})
	if a := s.recRows[row].Load(); a != nil {
		return a
	}
	c := s.cols
	d := s.denseBots()
	lo, hi := c.aOff[row], c.aOff[row+1]
	ips := make([]netip.Addr, hi-lo)
	for i, id := range d.refs[lo:hi] {
		ips[i] = d.ips[id]
	}
	a := &Attack{
		ID:            DDoSID(c.aID[row]),
		BotnetID:      BotnetID(c.aBotnet[row]),
		Family:        Family(c.strs[c.aFam[row]]),
		Category:      Category(c.aCat[row]),
		TargetIP:      c.targets[c.aTgt[row]],
		Start:         nanoTime(c.aStart[row]),
		End:           nanoTime(c.aEnd[row]),
		BotIPs:        ips,
		TargetASN:     int(c.aASN[row]),
		TargetCountry: c.strs[c.aCC[row]],
		TargetCity:    c.strs[c.aCity[row]],
		TargetOrg:     c.strs[c.aOrg[row]],
		TargetLat:     c.aLat[row],
		TargetLon:     c.aLon[row],
	}
	if !s.recRows[row].CompareAndSwap(nil, a) {
		return s.recRows[row].Load()
	}
	return a
}

// AttackRecords materializes the records of a batch of attack rows,
// sharing one record arena and one BotIPs arena across the batch instead
// of allocating per member. Rows already memoized (or a materialized
// record view) reuse their records; the rest are built and CAS-published
// exactly like AttackRecordAt. Detectors that emit record-rich results
// from a lazy store (collaboration subsets) use this to keep per-member
// allocation off the detection path.
//
//botscope:recordbridge
func (s *Store) AttackRecords(rows []int32) []*Attack {
	out := make([]*Attack, len(rows))
	if s.RecordsMaterialized() {
		for i, row := range rows {
			out[i] = s.attacks[row]
		}
		return out
	}
	s.recRowsOnce.Do(func() {
		s.recRows = make([]atomic.Pointer[Attack], len(s.cols.aID))
	})
	c := s.cols
	need, refs := 0, 0
	for i, row := range rows {
		if a := s.recRows[row].Load(); a != nil {
			out[i] = a
			continue
		}
		need++
		refs += int(c.aOff[row+1] - c.aOff[row])
	}
	if need == 0 {
		return out
	}
	d := s.denseBots()
	arena := make([]Attack, need)
	ipsArena := make([]netip.Addr, refs)
	k, off := 0, 0
	for i, row := range rows {
		if out[i] != nil {
			continue
		}
		lo, hi := c.aOff[row], c.aOff[row+1]
		n := int(hi - lo)
		ips := ipsArena[off : off+n : off+n]
		off += n
		for j, id := range d.refs[lo:hi] {
			ips[j] = d.ips[id]
		}
		a := &arena[k]
		k++
		*a = Attack{
			ID:            DDoSID(c.aID[row]),
			BotnetID:      BotnetID(c.aBotnet[row]),
			Family:        Family(c.strs[c.aFam[row]]),
			Category:      Category(c.aCat[row]),
			TargetIP:      c.targets[c.aTgt[row]],
			Start:         nanoTime(c.aStart[row]),
			End:           nanoTime(c.aEnd[row]),
			BotIPs:        ips,
			TargetASN:     int(c.aASN[row]),
			TargetCountry: c.strs[c.aCC[row]],
			TargetCity:    c.strs[c.aCity[row]],
			TargetOrg:     c.strs[c.aOrg[row]],
			TargetLat:     c.aLat[row],
			TargetLon:     c.aLon[row],
		}
		if !s.recRows[row].CompareAndSwap(nil, a) {
			a = s.recRows[row].Load()
		}
		out[i] = a
	}
	return out
}

// SummaryCounts mirrors the paper's Table III: distinct entities on the
// attacker and victim sides.
type SummaryCounts struct {
	Attacks         int
	Botnets         int
	TrafficTypes    int
	BotIPs          int
	SourceCountries int
	SourceCities    int
	SourceOrgs      int
	SourceASNs      int
	TargetIPs       int
	TargetCountries int
	TargetCities    int
	TargetOrgs      int
	TargetASNs      int
}

// tgtShard holds the victim-side distinct-entity sets of one contiguous
// attack range, expressed over interned ids: countries and orgs are
// stamp arrays indexed by string id, cities key on the packed
// (country id, city id) pair — the columnar form of the old placeKey,
// so a city name shared across countries still counts per country —
// and traffic types are a bitmask over the closed Category set. Shards
// merge by union, so the result is independent of how the attack list
// is split.
type tgtShard struct {
	catBits uint32
	cc      []bool
	org     []bool
	cities  map[uint64]struct{}
	asns    map[int64]struct{}
}

func (sh *tgtShard) merge(o *tgtShard) {
	sh.catBits |= o.catBits
	for i, v := range o.cc {
		if v {
			sh.cc[i] = true
		}
	}
	for i, v := range o.org {
		if v {
			sh.org[i] = true
		}
	}
	for k := range o.cities {
		sh.cities[k] = struct{}{}
	}
	for k := range o.asns {
		sh.asns[k] = struct{}{}
	}
}

// srcShard holds the attacker-side distinct-entity sets of one
// contiguous dense-id range. Each distinct bot is visited exactly once
// per summary (the dense layer already deduplicated attack references),
// so the pass is linear in distinct bots rather than in total bot
// references.
type srcShard struct {
	cc     []bool
	org    []bool
	cities map[uint64]struct{}
	asns   map[int64]struct{}
}

func (sh *srcShard) merge(o *srcShard) {
	for i, v := range o.cc {
		if v {
			sh.cc[i] = true
		}
	}
	for i, v := range o.org {
		if v {
			sh.org[i] = true
		}
	}
	for k := range o.cities {
		sh.cities[k] = struct{}{}
	}
	for k := range o.asns {
		sh.asns[k] = struct{}{}
	}
}

// pairKey packs an interned (country, city) id pair into one map key.
func pairKey(cc, city int32) uint64 {
	return uint64(uint32(cc))<<32 | uint64(uint32(city))
}

// countStamps returns the number of set entries in a stamp array.
func countStamps(stamps []bool) int {
	n := 0
	for _, v := range stamps {
		if v {
			n++
		}
	}
	return n
}

// Summary computes Table III's counts over the full workload. Source-side
// entity counts come from the Botlist records of the bots that appear in
// attacks; target-side counts come from the attack records. Identity
// counts (attacks, botnets, bot IPs, target IPs) fall out of the store's
// standing indexes; the remaining distinct sets are computed over the
// columnar form — interned-id stamp arrays instead of string-keyed hash
// sets — sharded across contiguous ranges and merged by union, so the
// counts are identical to a sequential pass.
func (s *Store) Summary() SummaryCounts {
	return s.SummaryWorkers(0)
}

// SummaryWorkers is Summary with an explicit worker count (0 = all
// cores, 1 = sequential).
func (s *Store) SummaryWorkers(workers int) SummaryCounts {
	c := s.Cols()
	d := s.denseBots()
	nStr := len(c.strs)
	tgtShards := par.ChunkMap(workers, len(c.aID), func(lo, hi int) *tgtShard {
		sh := &tgtShard{
			cc:     make([]bool, nStr),
			org:    make([]bool, nStr),
			cities: make(map[uint64]struct{}, 256),
			asns:   make(map[int64]struct{}, 256),
		}
		for i := lo; i < hi; i++ {
			sh.catBits |= 1 << c.aCat[i]
			sh.cc[c.aCC[i]] = true
			sh.org[c.aOrg[i]] = true
			sh.cities[pairKey(c.aCC[i], c.aCity[i])] = struct{}{}
			sh.asns[c.aASN[i]] = struct{}{}
		}
		return sh
	})
	srcShards := par.ChunkMap(workers, len(d.rec), func(lo, hi int) *srcShard {
		sh := &srcShard{
			cc:     make([]bool, nStr),
			org:    make([]bool, nStr),
			cities: make(map[uint64]struct{}, 1024),
			asns:   make(map[int64]struct{}, 1024),
		}
		for _, row := range d.rec[lo:hi] {
			if row < 0 {
				continue
			}
			sh.cc[c.bCC[row]] = true
			sh.org[c.bOrg[row]] = true
			sh.cities[pairKey(c.bCC[row], c.bCity[row])] = struct{}{}
			sh.asns[c.bASN[row]] = struct{}{}
		}
		return sh
	})
	tgt := &tgtShard{
		cc:     make([]bool, nStr),
		org:    make([]bool, nStr),
		cities: make(map[uint64]struct{}, 256),
		asns:   make(map[int64]struct{}, 256),
	}
	for _, sh := range tgtShards {
		tgt.merge(sh)
	}
	src := &srcShard{
		cc:     make([]bool, nStr),
		org:    make([]bool, nStr),
		cities: make(map[uint64]struct{}, 1024),
		asns:   make(map[int64]struct{}, 1024),
	}
	for _, sh := range srcShards {
		src.merge(sh)
	}
	return SummaryCounts{
		Attacks:         len(c.aID),
		Botnets:         s.attackBotnets(),
		TrafficTypes:    bits.OnesCount32(tgt.catBits),
		BotIPs:          len(d.ips),
		SourceCountries: countStamps(src.cc),
		SourceCities:    len(src.cities),
		SourceOrgs:      countStamps(src.org),
		SourceASNs:      len(src.asns),
		TargetIPs:       len(c.targets),
		TargetCountries: countStamps(tgt.cc),
		TargetCities:    len(tgt.cities),
		TargetOrgs:      countStamps(tgt.org),
		TargetASNs:      len(tgt.asns),
	}
}
