package dataset

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"botscope/internal/par"
)

// Store is an immutable, indexed view over one workload: the attack list
// plus the bot and botnet schemas it references. Construction sorts and
// indexes everything once; queries are then cheap. A Store is safe for
// concurrent readers.
//
// The sorted Families/Targets views and the per-family counts are
// memoized lazily: hot paths call them once per target or family scan,
// and re-sorting the full key set on every call dominated the analysis
// kernels at scale. Each cached slice is built exactly once inside its
// sync.Once and is immutable afterwards, so returning the shared slice to
// concurrent readers is safe.
type Store struct {
	attacks  []*Attack // sorted by (Start, ID)
	botnets  map[BotnetID]*Botnet
	bots     map[netip.Addr]*Bot
	byFamily map[Family][]*Attack
	byTarget map[netip.Addr][]*Attack
	byBotnet map[BotnetID][]*Attack

	famOnce      sync.Once
	families     []Family      // written once inside famOnce.Do; immutable after
	familyCounts []FamilyCount // written once inside famOnce.Do; immutable after
	tgtOnce      sync.Once
	targets      []netip.Addr // written once inside tgtOnce.Do; immutable after
}

// FamilyCount pairs a family with its attack count, ordered by family.
type FamilyCount struct {
	Family  Family
	Attacks int
}

// NewStore validates, sorts, and indexes a workload. Bots and botnets may
// be nil when only attack-level analyses are needed.
func NewStore(attacks []*Attack, botnets []*Botnet, bots []*Bot) (*Store, error) {
	s := &Store{
		attacks:  make([]*Attack, 0, len(attacks)),
		botnets:  make(map[BotnetID]*Botnet, len(botnets)),
		bots:     make(map[netip.Addr]*Bot, len(bots)),
		byFamily: make(map[Family][]*Attack),
		byTarget: make(map[netip.Addr][]*Attack),
		byBotnet: make(map[BotnetID][]*Attack),
	}
	seen := make(map[DDoSID]bool, len(attacks))
	for _, a := range attacks {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if seen[a.ID] {
			return nil, fmt.Errorf("dataset: duplicate ddos_id %d", a.ID)
		}
		seen[a.ID] = true
		s.attacks = append(s.attacks, a)
	}
	sort.Slice(s.attacks, func(i, j int) bool {
		if !s.attacks[i].Start.Equal(s.attacks[j].Start) {
			return s.attacks[i].Start.Before(s.attacks[j].Start)
		}
		return s.attacks[i].ID < s.attacks[j].ID
	})
	for _, a := range s.attacks {
		s.byFamily[a.Family] = append(s.byFamily[a.Family], a)
		s.byTarget[a.TargetIP] = append(s.byTarget[a.TargetIP], a)
		s.byBotnet[a.BotnetID] = append(s.byBotnet[a.BotnetID], a)
	}
	for _, b := range botnets {
		if _, dup := s.botnets[b.ID]; dup {
			return nil, fmt.Errorf("dataset: duplicate botnet_id %d", b.ID)
		}
		s.botnets[b.ID] = b
	}
	for _, b := range bots {
		s.bots[b.IP] = b
	}
	return s, nil
}

// NumAttacks returns the number of attack records.
func (s *Store) NumAttacks() int { return len(s.attacks) }

// Attacks returns all attacks ordered by start time. The slice is shared
// and must not be modified; records themselves are shared too.
func (s *Store) Attacks() []*Attack { return s.attacks }

// ByFamily returns the family's attacks in start-time order.
func (s *Store) ByFamily(f Family) []*Attack { return s.byFamily[f] }

// ByTarget returns all attacks against one target IP in start-time order.
func (s *Store) ByTarget(ip netip.Addr) []*Attack { return s.byTarget[ip] }

// ByBotnet returns all attacks launched by one botnet in start-time order.
func (s *Store) ByBotnet(id BotnetID) []*Attack { return s.byBotnet[id] }

// Botnet resolves a botnet record.
func (s *Store) Botnet(id BotnetID) (*Botnet, bool) {
	b, ok := s.botnets[id]
	return b, ok
}

// Bot resolves a bot record by IP.
func (s *Store) Bot(ip netip.Addr) (*Bot, bool) {
	b, ok := s.bots[ip]
	return b, ok
}

// NumBots returns the number of Botlist records.
func (s *Store) NumBots() int { return len(s.bots) }

// NumBotnets returns the number of Botnetlist records.
func (s *Store) NumBotnets() int { return len(s.botnets) }

// Families returns every family that launched at least one attack,
// sorted. The slice is computed once and shared: callers must not modify
// it.
func (s *Store) Families() []Family {
	s.famOnce.Do(s.buildFamilies)
	return s.families
}

// FamilyCounts returns every family with its attack count, sorted by
// family. The slice is computed once and shared: callers must not modify
// it.
func (s *Store) FamilyCounts() []FamilyCount {
	s.famOnce.Do(s.buildFamilies)
	return s.familyCounts
}

func (s *Store) buildFamilies() {
	fams := make([]Family, 0, len(s.byFamily))
	for f := range s.byFamily {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	counts := make([]FamilyCount, len(fams))
	for i, f := range fams {
		counts[i] = FamilyCount{Family: f, Attacks: len(s.byFamily[f])}
	}
	s.families = fams
	s.familyCounts = counts
}

// Targets returns every attacked IP, sorted. The slice is computed once
// and shared: callers must not modify it.
func (s *Store) Targets() []netip.Addr {
	s.tgtOnce.Do(func() {
		out := make([]netip.Addr, 0, len(s.byTarget))
		for ip := range s.byTarget {
			out = append(out, ip)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		s.targets = out
	})
	return s.targets
}

// NumTargets returns the number of distinct attacked IPs.
func (s *Store) NumTargets() int { return len(s.byTarget) }

// InRange returns attacks with Start in [from, to), using the start-time
// ordering for a binary-searched slice rather than a scan.
func (s *Store) InRange(from, to time.Time) []*Attack {
	lo := sort.Search(len(s.attacks), func(i int) bool {
		return !s.attacks[i].Start.Before(from)
	})
	hi := sort.Search(len(s.attacks), func(i int) bool {
		return !s.attacks[i].Start.Before(to)
	})
	return s.attacks[lo:hi]
}

// TimeBounds returns the earliest start and the latest end across all
// attacks. ok is false for an empty store.
func (s *Store) TimeBounds() (first, last time.Time, ok bool) {
	if len(s.attacks) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first = s.attacks[0].Start
	for _, a := range s.attacks {
		if a.End.After(last) {
			last = a.End
		}
	}
	return first, last, true
}

// SummaryCounts mirrors the paper's Table III: distinct entities on the
// attacker and victim sides.
type SummaryCounts struct {
	Attacks         int
	Botnets         int
	TrafficTypes    int
	BotIPs          int
	SourceCountries int
	SourceCities    int
	SourceOrgs      int
	SourceASNs      int
	TargetIPs       int
	TargetCountries int
	TargetCities    int
	TargetOrgs      int
	TargetASNs      int
}

// summaryShard holds the distinct-entity sets of one contiguous attack
// range; shards merge by set union, so the result is independent of how
// the attack list is split.
type summaryShard struct {
	botIPs    map[netip.Addr]bool
	botnets   map[BotnetID]bool
	types     map[Category]bool
	srcCC     map[string]bool
	srcCity   map[string]bool
	srcOrg    map[string]bool
	srcASN    map[int]bool
	tgtIPs    map[netip.Addr]bool
	tgtCC     map[string]bool
	tgtCities map[string]bool
	tgtOrgs   map[string]bool
	tgtASNs   map[int]bool
}

func newSummaryShard() *summaryShard {
	return &summaryShard{
		botIPs:    make(map[netip.Addr]bool),
		botnets:   make(map[BotnetID]bool),
		types:     make(map[Category]bool),
		srcCC:     make(map[string]bool),
		srcCity:   make(map[string]bool),
		srcOrg:    make(map[string]bool),
		srcASN:    make(map[int]bool),
		tgtIPs:    make(map[netip.Addr]bool),
		tgtCC:     make(map[string]bool),
		tgtCities: make(map[string]bool),
		tgtOrgs:   make(map[string]bool),
		tgtASNs:   make(map[int]bool),
	}
}

func (sh *summaryShard) add(s *Store, a *Attack) {
	sh.botnets[a.BotnetID] = true
	sh.types[a.Category] = true
	sh.tgtIPs[a.TargetIP] = true
	sh.tgtCC[a.TargetCountry] = true
	sh.tgtCities[a.TargetCountry+"/"+a.TargetCity] = true
	sh.tgtOrgs[a.TargetOrg] = true
	sh.tgtASNs[a.TargetASN] = true
	for _, ip := range a.BotIPs {
		if sh.botIPs[ip] {
			continue
		}
		sh.botIPs[ip] = true
		if b, ok := s.bots[ip]; ok {
			sh.srcCC[b.CountryCode] = true
			sh.srcCity[b.CountryCode+"/"+b.City] = true
			sh.srcOrg[b.Org] = true
			sh.srcASN[b.ASN] = true
		}
	}
}

func (sh *summaryShard) merge(o *summaryShard) {
	union := func(dst, src map[string]bool) {
		for k := range src {
			dst[k] = true
		}
	}
	for k := range o.botIPs {
		sh.botIPs[k] = true
	}
	for k := range o.botnets {
		sh.botnets[k] = true
	}
	for k := range o.types {
		sh.types[k] = true
	}
	for k := range o.tgtIPs {
		sh.tgtIPs[k] = true
	}
	for k := range o.srcASN {
		sh.srcASN[k] = true
	}
	for k := range o.tgtASNs {
		sh.tgtASNs[k] = true
	}
	union(sh.srcCC, o.srcCC)
	union(sh.srcCity, o.srcCity)
	union(sh.srcOrg, o.srcOrg)
	union(sh.tgtCC, o.tgtCC)
	union(sh.tgtCities, o.tgtCities)
	union(sh.tgtOrgs, o.tgtOrgs)
}

// Summary computes Table III's counts over the full workload. Source-side
// entity counts come from the Botlist records of the bots that appear in
// attacks; target-side counts come from the attack records. The scan is
// sharded across contiguous attack ranges and merged by set union, so the
// counts are identical to a sequential pass.
func (s *Store) Summary() SummaryCounts {
	return s.SummaryWorkers(0)
}

// SummaryWorkers is Summary with an explicit worker count (0 = all
// cores, 1 = sequential).
func (s *Store) SummaryWorkers(workers int) SummaryCounts {
	shards := par.ChunkMap(workers, len(s.attacks), func(lo, hi int) *summaryShard {
		sh := newSummaryShard()
		for _, a := range s.attacks[lo:hi] {
			sh.add(s, a)
		}
		return sh
	})
	total := newSummaryShard()
	for _, sh := range shards {
		total.merge(sh)
	}
	return SummaryCounts{
		Attacks:         len(s.attacks),
		Botnets:         len(total.botnets),
		TrafficTypes:    len(total.types),
		BotIPs:          len(total.botIPs),
		SourceCountries: len(total.srcCC),
		SourceCities:    len(total.srcCity),
		SourceOrgs:      len(total.srcOrg),
		SourceASNs:      len(total.srcASN),
		TargetIPs:       len(total.tgtIPs),
		TargetCountries: len(total.tgtCC),
		TargetCities:    len(total.tgtCities),
		TargetOrgs:      len(total.tgtOrgs),
		TargetASNs:      len(total.tgtASNs),
	}
}
