package dataset

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

// randomAttack generates a structurally valid random attack.
func randomAttack(rng *rand.Rand, id DDoSID) *Attack {
	families := AllFamilies()
	cities := []string{"Moscow", "New York", "Sao Paulo", "a b c", "x,y"}
	orgs := []string{"Org One", "Hosting, Inc", `Quote"Org`, "Plain"}
	nBots := 1 + rng.Intn(6)
	bots := make([]netip.Addr, nBots)
	for i := range bots {
		bots[i] = netip.AddrFrom4([4]byte{
			byte(1 + rng.Intn(220)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(250)),
		})
	}
	start := time.Date(2012, 8, 29, 0, 0, 0, 0, time.UTC).
		Add(time.Duration(rng.Intn(200*24)) * time.Hour)
	return &Attack{
		ID:            id,
		BotnetID:      BotnetID(1 + rng.Intn(600)),
		Family:        families[rng.Intn(len(families))],
		Category:      Categories[rng.Intn(len(Categories))],
		TargetIP:      netip.AddrFrom4([4]byte{byte(1 + rng.Intn(220)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(250))}),
		Start:         start,
		End:           start.Add(time.Duration(rng.Intn(100000)) * time.Second),
		BotIPs:        bots,
		TargetASN:     1 + rng.Intn(60000),
		TargetCountry: []string{"US", "RU", "DE", "CN"}[rng.Intn(4)],
		TargetCity:    cities[rng.Intn(len(cities))],
		TargetOrg:     orgs[rng.Intn(len(orgs))],
		TargetLat:     rng.Float64()*180 - 90,
		TargetLon:     rng.Float64()*360 - 180,
	}
}

// equalAttack compares the round-trippable fields of two attacks.
func equalAttack(a, b *Attack) bool {
	if a.ID != b.ID || a.BotnetID != b.BotnetID || a.Family != b.Family ||
		a.Category != b.Category || a.TargetIP != b.TargetIP ||
		!a.Start.Equal(b.Start) || !a.End.Equal(b.End) ||
		a.TargetASN != b.TargetASN || a.TargetCountry != b.TargetCountry ||
		a.TargetCity != b.TargetCity || a.TargetOrg != b.TargetOrg {
		return false
	}
	// Coordinates survive with 6-decimal CSV precision.
	if diff := a.TargetLat - b.TargetLat; diff > 1e-5 || diff < -1e-5 {
		return false
	}
	if diff := a.TargetLon - b.TargetLon; diff > 1e-5 || diff < -1e-5 {
		return false
	}
	if len(a.BotIPs) != len(b.BotIPs) {
		return false
	}
	for i := range a.BotIPs {
		if a.BotIPs[i] != b.BotIPs[i] {
			return false
		}
	}
	return true
}

// Property: any batch of random valid attacks survives a CSV round trip,
// including cities with spaces/commas and organizations with quotes.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 1
		attacks := make([]*Attack, n)
		for i := range attacks {
			attacks[i] = randomAttack(rng, DDoSID(i+1))
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, attacks); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if !equalAttack(got[i], attacks[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the same holds for the JSONL codec.
func TestJSONLRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 1
		attacks := make([]*Attack, n)
		for i := range attacks {
			attacks[i] = randomAttack(rng, DDoSID(i+1))
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, attacks); err != nil {
			return false
		}
		got, err := ReadJSONL(&buf)
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if !equalAttack(got[i], attacks[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: random valid attacks always index into a store whose queries
// agree with direct scans.
func TestStoreIndexConsistencyProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 1
		attacks := make([]*Attack, n)
		for i := range attacks {
			attacks[i] = randomAttack(rng, DDoSID(i+1))
		}
		s, err := NewStore(attacks, nil, nil)
		if err != nil {
			return false
		}
		// Per-family index totals must sum to the store size.
		sum := 0
		for _, fam := range s.Families() {
			sum += len(s.ByFamily(fam))
		}
		if sum != n {
			return false
		}
		// Per-target index totals too.
		sum = 0
		for _, ip := range s.Targets() {
			sum += len(s.ByTarget(ip))
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
