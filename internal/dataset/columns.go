package dataset

// columns.go holds the struct-of-arrays columnar core behind Store. The
// pointer-rich record API (Attack/Bot/Botnet) stays the package's public
// face, but the canonical storage of a workload is a set of flat typed
// arrays: every string lives once in an interned table and is referenced
// by int32 id, every timestamp is an int64 of UTC nanoseconds, and every
// attack's source set is a span into one shared reference arena. The
// columns are what the binary snapshot codec (snapshot.go) serializes,
// what the analysis kernels iterate through the cursor API (cursor.go),
// and what the dense BotIndex is derived from.
//
// Columns are built on one of two paths:
//
//   - record path: NewStore keeps the caller's records; Columns are
//     derived lazily (Store.Cols) the first time a columnar consumer —
//     the summary scan, the dense index, the snapshot encoder — needs
//     them.
//   - snapshot path: the decoder produces Columns directly from the
//     file, validateColumns re-checks every store invariant over the
//     flat arrays, and the record views stay unbuilt until a caller
//     actually asks for *Attack/*Bot pointers (Store.records). A full
//     column-native analysis run never pays for them.
//
// Either way the columns are immutable once published and safe for
// concurrent readers.

import (
	"fmt"
	"net/netip"
	"sync"
	"time"
)

// interner assigns dense int32 ids to strings in first-seen order. Id 0
// is always the empty string so a zero-valued column cell is meaningful.
type interner struct {
	ids  map[string]int32
	strs []string
}

func newInterner(sizeHint int) *interner {
	in := &interner{
		ids:  make(map[string]int32, sizeHint),
		strs: make([]string, 0, sizeHint),
	}
	in.id("")
	return in
}

func (in *interner) id(s string) int32 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := int32(len(in.strs))
	in.ids[s] = id
	in.strs = append(in.strs, s)
	return id
}

// Columns is the struct-of-arrays form of one workload. Attack columns
// are aligned with the store's sorted attack order; bot columns with the
// deduplicated Botlist row order; botnet columns with Botnetlist input
// order. All slices are written once during construction (columnize or
// the snapshot decoder) and immutable after.
type Columns struct {
	strs    []string     // interned string table; strs[0] == ""
	targets []netip.Addr // distinct target IPs in first-seen attack order

	// Attack columns, sorted by (Start, ID).
	aID     []uint64 // ddos_id
	aBotnet []uint32 // botnet_id
	aFam    []int32  // family, interned
	aCat    []uint8  // Category value; may alias a mapped snapshot (see mmap)
	aTgt    []int32  // index into targets
	aStart  []int64  // Start, UTC nanoseconds
	aEnd    []int64  // End, UTC nanoseconds
	aASN    []int64  // target ASN
	aCC     []int32  // target country, interned
	aCity   []int32  // target city, interned
	aOrg    []int32  // target org, interned
	aLat    []float64
	aLon    []float64
	aOff    []int64 // len n+1; attack i's sources are span [aOff[i], aOff[i+1])

	// refIPs expands the reference spans to addresses. The record path
	// fills it during columnize; the snapshot path derives it on demand
	// from the dense layer (refArena), since column-native consumers only
	// ever need the dense ids.
	refsOnce sync.Once
	refIPs   []netip.Addr // all attacks' source IPs, concatenated in attack order

	// Bot columns (Botlist rows, deduplicated by IP, first-occurrence
	// order, last record wins).
	bIP   []netip.Addr
	bASN  []int64
	bCC   []int32 // interned
	bCity []int32 // interned
	bOrg  []int32 // interned
	bLat  []float64
	bLon  []float64
	bLast []int64 // LastActive, UTC nanoseconds

	// Botnet columns (Botnetlist input order).
	nID    []uint32
	nFam   []int32 // interned
	nHash  []int32 // interned
	nCtrl  []netip.Addr
	nFirst []int64
	nLast  []int64

	nRowOnce sync.Once
	nRowByID map[uint32]int32 // botnet id -> row; written once inside nRowOnce.Do

	denseOnce sync.Once
	dense     *denseBots // written once inside denseOnce.Do (or by the decoder); immutable after

	// mmap pins the mapped snapshot region alive for as long as any
	// column that aliases it (aCat) is reachable. nil when the snapshot
	// was decoded from a heap buffer or the store was columnized from
	// records.
	mmap *mmapRegion
}

// NumAttacks returns the number of attack rows.
func (c *Columns) NumAttacks() int { return len(c.aID) }

// NumBots returns the number of Botlist rows.
func (c *Columns) NumBots() int { return len(c.bIP) }

// NumBotnets returns the number of Botnetlist rows.
func (c *Columns) NumBotnets() int { return len(c.nID) }

// NumRefs returns the total number of source-IP references across all
// attacks (the length of the shared reference arena).
func (c *Columns) NumRefs() int {
	if len(c.aOff) == 0 {
		return 0
	}
	return int(c.aOff[len(c.aOff)-1])
}

// NumStrings returns the size of the interned string table.
func (c *Columns) NumStrings() int { return len(c.strs) }

// refArena returns the expanded source-IP arena, deriving it from the
// dense layer on first use. The record path pre-fills it in columnize,
// so there the call is free; on the snapshot path it is the one big
// allocation the lazy load defers until a record view is materialized.
func (c *Columns) refArena() []netip.Addr {
	c.refsOnce.Do(func() {
		if c.refIPs != nil || c.dense == nil {
			return
		}
		ips := make([]netip.Addr, len(c.dense.refs))
		for i, id := range c.dense.refs {
			ips[i] = c.dense.ips[id]
		}
		c.refIPs = ips
	})
	return c.refIPs
}

// botnetRow resolves a botnet id to its column row. The reverse map is
// built lazily: most analyses only walk attack columns.
func (c *Columns) botnetRow(id uint32) (int32, bool) {
	c.nRowOnce.Do(func() {
		m := make(map[uint32]int32, len(c.nID))
		for i, v := range c.nID {
			if _, ok := m[v]; !ok {
				m[v] = int32(i)
			}
		}
		c.nRowByID = m
	})
	row, ok := c.nRowByID[id]
	return row, ok
}

// denseBots is the dense addressing layer over the reference arena:
// every distinct source IP gets one int32 id assigned at its first
// appearance in attack order, so the numbering is deterministic for a
// given workload. rec maps a dense id to its Botlist row, -1 when the IP
// never resolved in the Botlist.
type denseBots struct {
	ips  []netip.Addr // id -> address
	refs []int32      // refIPs re-expressed as dense ids, same order
	rec  []int32      // id -> bot row, or -1
}

// buildDense derives the dense layer from the reference arena. rows maps
// a bot IP to its Botlist row.
func buildDense(refIPs []netip.Addr, nBotsHint int, rows map[netip.Addr]int32) *denseBots {
	ids := make(map[netip.Addr]int32, nBotsHint)
	ips := make([]netip.Addr, 0, nBotsHint)
	refs := make([]int32, len(refIPs))
	for i, ip := range refIPs {
		id, ok := ids[ip]
		if !ok {
			id = int32(len(ips))
			ids[ip] = id
			ips = append(ips, ip)
		}
		refs[i] = id
	}
	rec := make([]int32, len(ips))
	for i, ip := range ips {
		if row, ok := rows[ip]; ok {
			rec[i] = row
		} else {
			rec[i] = -1
		}
	}
	return &denseBots{ips: ips, refs: refs, rec: rec}
}

// Cols returns the store's columnar form, deriving it from the records
// on first use. The snapshot path pre-populates it, so there the call is
// free. The returned columns are shared and immutable.
//
//botscope:mmap
func (s *Store) Cols() *Columns {
	s.colsOnce.Do(func() {
		if s.cols == nil {
			s.cols = s.columnize()
		}
	})
	return s.cols
}

// denseBots returns the dense source-IP layer, deriving it from the
// reference arena on first use. The snapshot path decodes it from the
// file instead.
func (s *Store) denseBots() *denseBots {
	c := s.Cols()
	c.denseOnce.Do(func() {
		if c.dense == nil {
			c.dense = buildDense(c.refIPs, len(s.botList), s.botRowsMap())
		}
	})
	return c.dense
}

// columnize flattens the store's records into columns. Attack rows
// follow the sorted attack order, bot rows the deduplicated Botlist
// order, botnet rows the input order — all deterministic, so the columns
// (and the snapshot bytes derived from them) are identical across runs.
func (s *Store) columnize() *Columns {
	n := len(s.attacks)
	totalRefs := 0
	for _, a := range s.attacks {
		totalRefs += len(a.BotIPs)
	}
	c := &Columns{
		aID:     make([]uint64, n),
		aBotnet: make([]uint32, n),
		aFam:    make([]int32, n),
		aCat:    make([]uint8, n),
		aTgt:    make([]int32, n),
		aStart:  make([]int64, n),
		aEnd:    make([]int64, n),
		aASN:    make([]int64, n),
		aCC:     make([]int32, n),
		aCity:   make([]int32, n),
		aOrg:    make([]int32, n),
		aLat:    make([]float64, n),
		aLon:    make([]float64, n),
		aOff:    make([]int64, n+1),
		refIPs:  make([]netip.Addr, totalRefs),
	}
	in := newInterner(1024 + len(s.botList)/64)
	tgtIDs := make(map[netip.Addr]int32, len(s.byTarget))
	c.targets = make([]netip.Addr, 0, len(s.byTarget))
	off := int64(0)
	for i, a := range s.attacks {
		c.aID[i] = uint64(a.ID)
		c.aBotnet[i] = uint32(a.BotnetID)
		c.aFam[i] = in.id(string(a.Family))
		c.aCat[i] = uint8(a.Category)
		tid, ok := tgtIDs[a.TargetIP]
		if !ok {
			tid = int32(len(c.targets))
			tgtIDs[a.TargetIP] = tid
			c.targets = append(c.targets, a.TargetIP)
		}
		c.aTgt[i] = tid
		c.aStart[i] = a.Start.UnixNano()
		c.aEnd[i] = a.End.UnixNano()
		c.aASN[i] = int64(a.TargetASN)
		c.aCC[i] = in.id(a.TargetCountry)
		c.aCity[i] = in.id(a.TargetCity)
		c.aOrg[i] = in.id(a.TargetOrg)
		c.aLat[i] = a.TargetLat
		c.aLon[i] = a.TargetLon
		c.aOff[i] = off
		off += int64(copy(c.refIPs[off:], a.BotIPs))
	}
	c.aOff[n] = off

	nb := len(s.botList)
	c.bIP = make([]netip.Addr, nb)
	c.bASN = make([]int64, nb)
	c.bCC = make([]int32, nb)
	c.bCity = make([]int32, nb)
	c.bOrg = make([]int32, nb)
	c.bLat = make([]float64, nb)
	c.bLon = make([]float64, nb)
	c.bLast = make([]int64, nb)
	for i, b := range s.botList {
		c.bIP[i] = b.IP
		c.bASN[i] = int64(b.ASN)
		c.bCC[i] = in.id(b.CountryCode)
		c.bCity[i] = in.id(b.City)
		c.bOrg[i] = in.id(b.Org)
		c.bLat[i] = b.Lat
		c.bLon[i] = b.Lon
		c.bLast[i] = b.LastActive.UnixNano()
	}

	nn := len(s.botnetList)
	c.nID = make([]uint32, nn)
	c.nFam = make([]int32, nn)
	c.nHash = make([]int32, nn)
	c.nCtrl = make([]netip.Addr, nn)
	c.nFirst = make([]int64, nn)
	c.nLast = make([]int64, nn)
	for i, b := range s.botnetList {
		c.nID[i] = uint32(b.ID)
		c.nFam[i] = in.id(string(b.Family))
		c.nHash[i] = in.id(b.Hash)
		c.nCtrl[i] = b.ControllerIP
		c.nFirst[i] = b.FirstSeen.UnixNano()
		c.nLast[i] = b.LastSeen.UnixNano()
	}

	c.strs = in.strs
	return c
}

// nanoTime converts a column timestamp back to a UTC time.Time. All
// workload times are UTC wall-clock values (the paper window), so the
// round trip preserves instants and RFC 3339 formatting exactly.
func nanoTime(ns int64) time.Time { return time.Unix(0, ns).UTC() }

// Column timestamps must sit inside the UnixNano-representable range the
// record-path Validate enforces (years 1678..2261), expressed here as
// nanosecond bounds so validation never has to construct a time.Time on
// the happy path.
var (
	minValidNano = time.Date(1678, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	maxValidNano = time.Date(2262, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano() - 1
)

// validateColumns re-checks every Store invariant directly over decoded
// columns — the column-native equivalent of running Attack.Validate plus
// the duplicate-id, sort-order, and dense cross-checks the old eager
// materializer performed — so a hostile snapshot cannot construct a
// Store that violates the package's invariants, and the record views can
// later be materialized without any re-validation.
func validateColumns(c *Columns) error {
	seenStr := make(map[string]struct{}, len(c.strs))
	for i, str := range c.strs {
		if _, dup := seenStr[str]; dup {
			return fmt.Errorf("dataset: snapshot string table has duplicate entry %q at id %d", str, i)
		}
		seenStr[str] = struct{}{}
	}

	seenNet := make(map[uint32]struct{}, len(c.nID))
	for _, id := range c.nID {
		if _, dup := seenNet[id]; dup {
			return fmt.Errorf("dataset: snapshot has duplicate botnet_id %d", id)
		}
		seenNet[id] = struct{}{}
	}

	var catValid [256]bool
	for _, cat := range Categories {
		catValid[uint8(cat)] = true
	}

	n := len(c.aID)
	tgtSeen := make([]bool, len(c.targets))
	seen := make(map[uint64]struct{}, n)
	for i := 0; i < n; i++ {
		id := c.aID[i]
		if id == 0 {
			return fmt.Errorf("dataset: snapshot attack row %d: dataset: attack has zero ddos_id", i)
		}
		if c.aBotnet[i] == 0 {
			return fmt.Errorf("dataset: snapshot attack row %d: dataset: attack %d has zero botnet_id", i, id)
		}
		if c.strs[c.aFam[i]] == "" {
			return fmt.Errorf("dataset: snapshot attack row %d: dataset: attack %d has empty family", i, id)
		}
		if !catValid[c.aCat[i]] {
			return fmt.Errorf("dataset: snapshot attack row %d: dataset: attack %d has invalid category %d", i, id, c.aCat[i])
		}
		if !c.targets[c.aTgt[i]].IsValid() {
			return fmt.Errorf("dataset: snapshot attack row %d: dataset: attack %d has invalid target IP", i, id)
		}
		tgtSeen[c.aTgt[i]] = true
		if c.aEnd[i] < c.aStart[i] {
			return fmt.Errorf("dataset: snapshot attack row %d: dataset: attack %d ends (%v) before it starts (%v)",
				i, id, nanoTime(c.aEnd[i]), nanoTime(c.aStart[i]))
		}
		if c.aStart[i] < minValidNano || c.aStart[i] > maxValidNano {
			return fmt.Errorf("dataset: snapshot attack row %d: dataset: attack %d start year %d outside representable range",
				i, id, nanoTime(c.aStart[i]).Year())
		}
		if c.aEnd[i] < minValidNano || c.aEnd[i] > maxValidNano {
			return fmt.Errorf("dataset: snapshot attack row %d: dataset: attack %d end year %d outside representable range",
				i, id, nanoTime(c.aEnd[i]).Year())
		}
		if c.aOff[i+1] == c.aOff[i] {
			return fmt.Errorf("dataset: snapshot attack row %d: dataset: attack %d has no source IPs", i, id)
		}
		if lat, lon := c.aLat[i], c.aLon[i]; lat < -90 || lat > 90 || lon < -180 || lon > 180 {
			return fmt.Errorf("dataset: snapshot attack row %d: dataset: attack %d has out-of-range coordinates (%v, %v)",
				i, id, lat, lon)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("dataset: snapshot has duplicate ddos_id %d", id)
		}
		seen[id] = struct{}{}
		if i > 0 {
			if c.aStart[i] < c.aStart[i-1] ||
				(c.aStart[i] == c.aStart[i-1] && c.aID[i] <= c.aID[i-1]) {
				return fmt.Errorf("dataset: snapshot attack rows not sorted by (start, id) at row %d", i)
			}
		}
	}
	for tid, ok := range tgtSeen {
		if !ok {
			return fmt.Errorf("dataset: snapshot target %d is never referenced by an attack", tid)
		}
	}

	if d := c.dense; d != nil {
		for id, row := range d.rec {
			if row >= 0 && d.ips[id] != c.bIP[row] {
				return fmt.Errorf("dataset: snapshot dense id %d resolves to bot row %d with mismatched IP", id, row)
			}
		}
	}
	return nil
}

// newLazyStore wraps validated columns in a Store whose record views are
// materialized on demand (Store.records). validate is skipped when the
// snapshot's section checksums were already validated by an earlier load
// in this process (see the v2 CRC layout in snapshot.go).
func newLazyStore(c *Columns, validate bool) (*Store, error) {
	if validate {
		if err := validateColumns(c); err != nil {
			return nil, err
		}
	}
	return &Store{fromSnapshot: true, cols: c}, nil
}

// materializeRecords builds the record views and record-keyed indexes
// over already-validated columns: arena-allocated Attack/Bot/Botnet
// structs whose strings come from the interned table and whose BotIPs
// alias the shared reference arena. It runs at most once per store,
// inside Store.recOnce, and only when a caller actually asks for the
// record face — a column-native analysis pass never gets here.
func (s *Store) materializeRecords() {
	c := s.cols
	refIPs := c.refArena()

	nb := len(c.bIP)
	botArena := make([]Bot, nb)
	botList := make([]*Bot, nb)
	for i := range botArena {
		b := &botArena[i]
		b.IP = c.bIP[i]
		b.ASN = int(c.bASN[i])
		b.CountryCode = c.strs[c.bCC[i]]
		b.City = c.strs[c.bCity[i]]
		b.Org = c.strs[c.bOrg[i]]
		b.Lat = c.bLat[i]
		b.Lon = c.bLon[i]
		b.LastActive = nanoTime(c.bLast[i])
		botList[i] = b
	}

	nn := len(c.nID)
	netArena := make([]Botnet, nn)
	botnetList := make([]*Botnet, nn)
	botnets := make(map[BotnetID]*Botnet, nn)
	for i := range netArena {
		b := &netArena[i]
		b.ID = BotnetID(c.nID[i])
		b.Family = Family(c.strs[c.nFam[i]])
		b.Hash = c.strs[c.nHash[i]]
		b.ControllerIP = c.nCtrl[i]
		b.FirstSeen = nanoTime(c.nFirst[i])
		b.LastSeen = nanoTime(c.nLast[i])
		botnets[b.ID] = b
		botnetList[i] = b
	}

	n := len(c.aID)
	arena := make([]Attack, n)
	attacks := make([]*Attack, n)
	for i := range arena {
		a := &arena[i]
		a.ID = DDoSID(c.aID[i])
		a.BotnetID = BotnetID(c.aBotnet[i])
		a.Family = Family(c.strs[c.aFam[i]])
		a.Category = Category(c.aCat[i])
		a.TargetIP = c.targets[c.aTgt[i]]
		a.Start = nanoTime(c.aStart[i])
		a.End = nanoTime(c.aEnd[i])
		lo, hi := c.aOff[i], c.aOff[i+1]
		a.BotIPs = refIPs[lo:hi:hi]
		a.TargetASN = int(c.aASN[i])
		a.TargetCountry = c.strs[c.aCC[i]]
		a.TargetCity = c.strs[c.aCity[i]]
		a.TargetOrg = c.strs[c.aOrg[i]]
		a.TargetLat = c.aLat[i]
		a.TargetLon = c.aLon[i]
		attacks[i] = a
	}

	s.botnetList = botnetList
	s.botnets = botnets
	s.botList = botList
	s.attacks = attacks
	scratch := make([]int32, n)
	s.byFamily = buildBuckets(attacks, scratch, func(a *Attack) Family { return a.Family })
	s.byTarget = buildBuckets(attacks, scratch, func(a *Attack) netip.Addr { return a.TargetIP })
	s.byBotnet = buildBuckets(attacks, scratch, func(a *Attack) BotnetID { return a.BotnetID })
	s.recBuilt.Store(true)
}
