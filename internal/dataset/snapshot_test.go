package dataset

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// snapFixtureStore builds a small workload that exercises the codec's
// corner cases: IPv4 and IPv6 sources and targets, a zero controller
// address, start-time ties, bots referenced by attacks but missing from
// the Botlist, Botlist entries never referenced, duplicate Botlist input
// rows, and empty string attributes.
func snapFixtureStore(t testing.TB) *Store {
	t.Helper()
	base := time.Date(2012, 9, 1, 0, 0, 0, 0, time.UTC)
	ip := func(s string) netip.Addr { return netip.MustParseAddr(s) }
	attacks := []*Attack{
		{
			ID: 3, BotnetID: 7, Family: Optima, Category: CategoryHTTP,
			TargetIP: ip("192.0.2.1"), Start: base, End: base.Add(time.Hour),
			BotIPs:    []netip.Addr{ip("198.51.100.1"), ip("198.51.100.2"), ip("2001:db8::10")},
			TargetASN: 64500, TargetCountry: "US", TargetCity: "Seattle",
			TargetOrg: "Example, Inc", TargetLat: 47.6, TargetLon: -122.3,
		},
		{
			// Same start as attack 3 but a higher id: sorts after it.
			ID: 5, BotnetID: 7, Family: Optima, Category: CategorySYN,
			TargetIP: ip("2001:db8::1"), Start: base, End: base.Add(5 * time.Minute),
			BotIPs:    []netip.Addr{ip("198.51.100.2")},
			TargetASN: 64501, TargetCountry: "CN", TargetCity: "", TargetOrg: "",
			TargetLat: 39.9, TargetLon: 116.4,
		},
		{
			ID: 1, BotnetID: 9, Family: Dirtjumper, Category: CategoryUDP,
			TargetIP: ip("192.0.2.1"), Start: base.Add(time.Minute), End: base.Add(2 * time.Hour),
			BotIPs:    []netip.Addr{ip("203.0.113.9"), ip("198.51.100.1")},
			TargetASN: 64500, TargetCountry: "US", TargetCity: "Seattle",
			TargetOrg: "Example, Inc", TargetLat: 47.6, TargetLon: -122.3,
		},
	}
	botnets := []*Botnet{
		{ID: 7, Family: Optima, Hash: "aabbccdd", ControllerIP: ip("203.0.113.1"),
			FirstSeen: base.Add(-24 * time.Hour), LastSeen: base.Add(48 * time.Hour)},
		{ID: 9, Family: Dirtjumper, Hash: "", ControllerIP: netip.Addr{},
			FirstSeen: base, LastSeen: base},
	}
	bots := []*Bot{
		{IP: ip("198.51.100.1"), ASN: 64496, CountryCode: "DE", City: "Berlin",
			Org: "BotOrg", Lat: 52.5, Lon: 13.4, LastActive: base.Add(30 * time.Minute)},
		{IP: ip("198.51.100.2"), ASN: 64497, CountryCode: "FR", City: "Paris",
			Org: "", Lat: 48.8, Lon: 2.3, LastActive: base},
		// Duplicate Botlist row for the same IP: the later record wins.
		{IP: ip("198.51.100.1"), ASN: 64499, CountryCode: "DE", City: "Hamburg",
			Org: "BotOrg", Lat: 53.5, Lon: 10.0, LastActive: base.Add(time.Hour)},
		// Never referenced by any attack.
		{IP: ip("203.0.113.200"), ASN: 64498, CountryCode: "BR", City: "Recife",
			Org: "IdleOrg", Lat: -8.05, Lon: -34.9, LastActive: base},
	}
	s, err := NewStore(attacks, botnets, bots)
	if err != nil {
		t.Fatalf("fixture store: %v", err)
	}
	return s
}

// csvBytes renders the store's attack list through the CSV codec — the
// repo's canonical record formatting — so two stores can be compared for
// byte-identical record content.
func csvBytes(t testing.TB, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s.Attacks()); err != nil {
		t.Fatalf("write csv: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := snapFixtureStore(t)
	data := EncodeSnapshot(s)
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	if !bytes.Equal(csvBytes(t, s), csvBytes(t, got)) {
		t.Fatalf("attack records differ after snapshot round trip")
	}
	if got.NumAttacks() != s.NumAttacks() || got.NumBots() != s.NumBots() ||
		got.NumBotnets() != s.NumBotnets() || got.NumTargets() != s.NumTargets() {
		t.Fatalf("counts differ: got (%d,%d,%d,%d), want (%d,%d,%d,%d)",
			got.NumAttacks(), got.NumBots(), got.NumBotnets(), got.NumTargets(),
			s.NumAttacks(), s.NumBots(), s.NumBotnets(), s.NumBotnets())
	}
	if got.Summary() != s.Summary() {
		t.Fatalf("summary differs:\n got %+v\nwant %+v", got.Summary(), s.Summary())
	}

	for _, id := range []BotnetID{7, 9} {
		wb, ok1 := s.Botnet(id)
		gb, ok2 := got.Botnet(id)
		if !ok1 || !ok2 {
			t.Fatalf("botnet %d missing: %v vs %v", id, ok1, ok2)
		}
		if wb.ID != gb.ID || wb.Family != gb.Family || wb.Hash != gb.Hash ||
			wb.ControllerIP != gb.ControllerIP ||
			!wb.FirstSeen.Equal(gb.FirstSeen) || !wb.LastSeen.Equal(gb.LastSeen) {
			t.Fatalf("botnet %d differs: got %+v, want %+v", id, gb, wb)
		}
	}
	for _, ipStr := range []string{"198.51.100.1", "198.51.100.2", "203.0.113.200", "203.0.113.9"} {
		ip := netip.MustParseAddr(ipStr)
		wb, ok1 := s.Bot(ip)
		gb, ok2 := got.Bot(ip)
		if ok1 != ok2 {
			t.Fatalf("bot %s presence differs: %v vs %v", ip, ok1, ok2)
		}
		if !ok1 {
			continue
		}
		if wb.IP != gb.IP || wb.ASN != gb.ASN || wb.CountryCode != gb.CountryCode ||
			wb.City != gb.City || wb.Org != gb.Org || wb.Lat != gb.Lat || wb.Lon != gb.Lon ||
			!wb.LastActive.Equal(gb.LastActive) {
			t.Fatalf("bot %s differs: got %+v, want %+v", ip, gb, wb)
		}
	}
}

// TestSnapshotDensePreserved pins that the reloaded store carries the
// identical dense bot numbering — ids, reference spans, and record
// resolution — without re-deriving it from the reference arena.
func TestSnapshotDensePreserved(t *testing.T) {
	s := snapFixtureStore(t)
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want, have := s.BotDense(), got.BotDense()
	if want.NumIDs() != have.NumIDs() {
		t.Fatalf("dense id count differs: %d vs %d", want.NumIDs(), have.NumIDs())
	}
	for id := int32(0); id < int32(want.NumIDs()); id++ {
		if want.IP(id) != have.IP(id) {
			t.Fatalf("dense id %d maps to %v vs %v", id, want.IP(id), have.IP(id))
		}
		wr, hr := want.Rec(id), have.Rec(id)
		if (wr == nil) != (hr == nil) {
			t.Fatalf("dense id %d resolution differs", id)
		}
		if wr != nil && (wr.IP != hr.IP || wr.ASN != hr.ASN) {
			t.Fatalf("dense id %d resolves to different records", id)
		}
	}
	for wi, a := range s.Attacks() {
		ga := got.Attacks()[wi]
		wRefs, hRefs := want.Refs(a), have.Refs(ga)
		if len(wRefs) != len(hRefs) {
			t.Fatalf("attack %d ref span length differs", a.ID)
		}
		for j := range wRefs {
			if wRefs[j] != hRefs[j] {
				t.Fatalf("attack %d ref %d differs: %d vs %d", a.ID, j, wRefs[j], hRefs[j])
			}
		}
	}
}

// TestSnapshotDeterministic pins that encoding is a pure function of the
// workload: two encodes of the same store are byte-identical, and an
// encode of the reloaded store is byte-identical to the original bytes.
func TestSnapshotDeterministic(t *testing.T) {
	s := snapFixtureStore(t)
	e1 := EncodeSnapshot(s)
	e2 := EncodeSnapshot(s)
	if !bytes.Equal(e1, e2) {
		t.Fatalf("two encodes of the same store differ")
	}
	got, err := DecodeSnapshot(e1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	e3 := EncodeSnapshot(got)
	if !bytes.Equal(e1, e3) {
		t.Fatalf("encode(decode(x)) != x: %d vs %d bytes", len(e1), len(e3))
	}
}

// TestSnapshotSubsetAfterReload exercises the record views of a decoded
// store through the filter path, which touches Bot(), Botnet(), and
// NewStore re-construction from arena-backed records.
func TestSnapshotSubsetAfterReload(t *testing.T) {
	s := snapFixtureStore(t)
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want, err := s.Subset(Filter{Families: []Family{Optima}})
	if err != nil {
		t.Fatalf("subset original: %v", err)
	}
	have, err := got.Subset(Filter{Families: []Family{Optima}})
	if err != nil {
		t.Fatalf("subset reloaded: %v", err)
	}
	if !bytes.Equal(csvBytes(t, want), csvBytes(t, have)) {
		t.Fatalf("subset records differ after reload")
	}
	if want.NumBots() != have.NumBots() || want.NumBotnets() != have.NumBotnets() {
		t.Fatalf("subset carry-over counts differ")
	}
}

func TestSnapshotRejectsCorrupt(t *testing.T) {
	valid := EncodeSnapshot(snapFixtureStore(t))

	cases := map[string][]byte{
		"empty":            {},
		"short magic":      []byte("BS"),
		"bad magic":        []byte("BSCX\x01\x00\x00\x00"),
		"bad version":      append([]byte(snapMagic), 99),
		"overlong varint":  append([]byte{'B', 'S', 'C', 'S'}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF),
		"huge count":       append(append([]byte(snapMagic), 1), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
		"trailing garbage": append(append([]byte{}, valid...), 0xAB),
	}
	for name, data := range cases {
		if _, err := DecodeSnapshot(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}

	// Every truncation of a valid snapshot must be rejected cleanly.
	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := DecodeSnapshot(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(valid))
		}
	}
}

// TestSnapshotVersionGate pins that a future-version snapshot is refused
// with ErrSnapshotVersion rather than misread.
func TestSnapshotVersionGate(t *testing.T) {
	valid := EncodeSnapshot(snapFixtureStore(t))
	bumped := append([]byte{}, valid...)
	bumped[len(snapMagic)] = snapVersion + 1
	_, err := DecodeSnapshot(bumped)
	if err == nil {
		t.Fatalf("future version accepted")
	}
}

// FuzzDecodeSnapshot asserts the snapshot decoder never panics on
// arbitrary input, and that anything it accepts reaches a stable
// fixpoint: re-encoding the decoded store succeeds, re-decodes, and
// re-encodes to the identical bytes with identical entity counts.
func FuzzDecodeSnapshot(f *testing.F) {
	for _, seed := range snapshotSeedCorpus(f) {
		f.Add(seed.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return // malformed input rejected cleanly; nothing more to check
		}
		e1 := EncodeSnapshot(s)
		s2, err := DecodeSnapshot(e1)
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if s2.NumAttacks() != s.NumAttacks() || s2.NumBots() != s.NumBots() ||
			s2.NumBotnets() != s.NumBotnets() || s2.NumTargets() != s.NumTargets() {
			t.Fatalf("round trip changed entity counts")
		}
		e2 := EncodeSnapshot(s2)
		if !bytes.Equal(e1, e2) {
			t.Fatalf("re-encode is not a fixpoint: %d vs %d bytes", len(e1), len(e2))
		}
	})
}

// snapshotSeed is one named seed input for FuzzDecodeSnapshot.
type snapshotSeed struct {
	name string
	data []byte
}

// snapshotSeedCorpus builds the seed inputs: valid snapshots of
// different shapes plus structurally-targeted malformed frames
// (truncations, bad version, overlong varints, dangling int32 refs).
// The same set is written to testdata/fuzz/FuzzDecodeSnapshot by
// TestRegenSnapshotCorpus.
func snapshotSeedCorpus(t testing.TB) []snapshotSeed {
	t.Helper()
	valid := EncodeSnapshot(snapFixtureStore(t))

	empty, err := NewStore(nil, nil, nil)
	if err != nil {
		t.Fatalf("empty store: %v", err)
	}
	validEmpty := EncodeSnapshot(empty)

	// A single-attack store with only IPv4 and no bots/botnets.
	one, err := NewStore([]*Attack{{
		ID: 1, BotnetID: 1, Family: Nitol, Category: CategoryTCP,
		TargetIP:  netip.MustParseAddr("192.0.2.9"),
		Start:     time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC),
		End:       time.Date(2012, 10, 1, 0, 30, 0, 0, time.UTC),
		BotIPs:    []netip.Addr{netip.MustParseAddr("198.51.100.77")},
		TargetLat: 1, TargetLon: 2, TargetCountry: "US", TargetCity: "X", TargetOrg: "Y",
	}}, nil, nil)
	if err != nil {
		t.Fatalf("one-attack store: %v", err)
	}
	validOne := EncodeSnapshot(one)

	// danglingStrID: a v2 frame sequence whose first botnet family id
	// points past the string table.
	dangling := func() []byte {
		buf := []byte(snapMagic)
		buf = append(buf, snapVersion)
		buf = append(buf, v2Section(secStrings, func(w *snapWriter) {
			w.uvarint(1) // one string
			w.str("")
		})...)
		buf = append(buf, v2Section(secTargets, func(w *snapWriter) {
			w.uvarint(0) // no targets
		})...)
		buf = append(buf, v2Section(secBotnets, func(w *snapWriter) {
			w.uvarint(1) // one botnet
			w.uvarint(7) // id
			w.uvarint(5) // family id 5: out of range
			w.uvarint(0)
			w.addr(netip.Addr{})
			w.varint(0)
			w.varint(0)
		})...)
		return buf
	}()

	// danglingDenseRef: a valid-prefix v2 frame sequence whose dense ref
	// indexes past the dense table.
	danglingDense := func() []byte {
		buf := []byte(snapMagic)
		buf = append(buf, snapVersion)
		buf = append(buf, v2Section(secStrings, func(w *snapWriter) {
			w.uvarint(4)
			for _, s := range []string{"", "nitol", "US", "X"} {
				w.str(s)
			}
		})...)
		buf = append(buf, v2Section(secTargets, func(w *snapWriter) {
			w.uvarint(1)
			w.addr(netip.MustParseAddr("192.0.2.9"))
		})...)
		buf = append(buf, v2Section(secBotnets, func(w *snapWriter) {
			w.uvarint(0) // no botnets
		})...)
		buf = append(buf, v2Section(secBots, func(w *snapWriter) {
			w.uvarint(0) // no bots
		})...)
		buf = append(buf, v2Section(secAttacks, func(w *snapWriter) {
			w.uvarint(1) // one attack
			w.uvarint(1) // one ref
			w.uvarint(1) // id
			w.uvarint(1) // botnet
			w.uvarint(1) // family
			w.buf = append(w.buf, byte(CategoryTCP))
			w.uvarint(0) // target
			w.varint(time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC).UnixNano())
			w.uvarint(uint64(30 * time.Minute))
			w.varint(0)  // asn
			w.uvarint(2) // cc
			w.uvarint(3) // city
			w.uvarint(0) // org
			w.f64(1)
			w.f64(2)
			w.uvarint(1) // span length
		})...)
		buf = append(buf, v2Section(secDense, func(w *snapWriter) {
			w.uvarint(1) // one dense id
			w.addr(netip.MustParseAddr("198.51.100.77"))
			w.uvarint(9) // ref -> dense id 9: out of range
			w.uvarint(0) // rec
		})...)
		return buf
	}()

	// crcMismatch: a valid snapshot with one payload byte flipped, so the
	// strings section checksum no longer matches.
	crcMismatch := append([]byte{}, validOne...)
	crcMismatch[len(snapMagic)+1+13] ^= 0xFF

	overlong := append([]byte(snapMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	badVersion := append([]byte(snapMagic), 0x63)
	hugeCount := append(append([]byte(snapMagic), 1), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)

	return []snapshotSeed{
		{"valid", valid},
		{"valid-empty", validEmpty},
		{"valid-one-attack", validOne},
		{"valid-v1", encodeSnapshotV1(snapFixtureStore(t))},
		{"empty-input", []byte{}},
		{"bad-magic", []byte("BSCXjunkjunk")},
		{"bad-version", badVersion},
		{"truncated-half", append([]byte{}, valid[:len(valid)/2]...)},
		{"truncated-header", append([]byte{}, valid[:6]...)},
		{"overlong-varint", overlong},
		{"huge-count", hugeCount},
		{"dangling-string-id", dangling},
		{"dangling-dense-ref", danglingDense},
		{"crc-mismatch", crcMismatch},
		{"trailing-garbage", append(append([]byte{}, validOne...), 0xAB)},
	}
}

// v2Section frames one section payload the way EncodeSnapshot does:
// id byte, payload length, CRC-32C, payload.
func v2Section(id byte, build func(w *snapWriter)) []byte {
	w := &snapWriter{}
	build(w)
	hdr := make([]byte, 13)
	hdr[0] = id
	binary.BigEndian.PutUint64(hdr[1:9], uint64(len(w.buf)))
	binary.BigEndian.PutUint32(hdr[9:13], crc32.Checksum(w.buf, castagnoli))
	return append(hdr, w.buf...)
}

// encodeSnapshotV1 emits the legacy flat layout — the same six section
// payloads with no frame headers — for backward-compatibility tests.
func encodeSnapshotV1(s *Store) []byte {
	c := s.Cols()
	d := s.denseBots()
	w := &snapWriter{}
	w.buf = append(w.buf, snapMagic...)
	w.uvarint(snapVersionV1)
	encStrings(w, c)
	encTargets(w, c)
	encBotnets(w, c)
	encBots(w, c)
	encAttacks(w, c)
	encDense(w, d)
	return w.buf
}

// TestSnapshotV1Compat pins that the legacy v1 flat layout still decodes
// to the identical store, and that re-encoding it upgrades to the current
// framed format.
func TestSnapshotV1Compat(t *testing.T) {
	s := snapFixtureStore(t)
	got, err := DecodeSnapshot(encodeSnapshotV1(s))
	if err != nil {
		t.Fatalf("decode v1: %v", err)
	}
	if got.SnapshotInfo().Version != snapVersionV1 {
		t.Fatalf("v1 decode reports version %d", got.SnapshotInfo().Version)
	}
	if !bytes.Equal(csvBytes(t, s), csvBytes(t, got)) {
		t.Fatalf("attack records differ after v1 decode")
	}
	if got.Summary() != s.Summary() {
		t.Fatalf("summary differs after v1 decode")
	}
	if !bytes.Equal(EncodeSnapshot(got), EncodeSnapshot(s)) {
		t.Fatalf("re-encode of a v1-loaded store is not byte-identical to the v2 encode")
	}
}

// TestSnapshotTruncatedTyped pins the typed decode error: every
// truncation reports ErrSnapshotTruncated, and once the header survives,
// a *SnapshotError naming the section being parsed with an offset inside
// the truncated input.
func TestSnapshotTruncatedTyped(t *testing.T) {
	valid := EncodeSnapshot(snapFixtureStore(t))

	// Recover each section's frame bounds from the encoded headers.
	type frameSpan struct {
		name         string
		hdr, payload int // offsets of the header and payload start
		plen         int
	}
	var frames []frameSpan
	off := len(snapMagic) + 1
	for sec := byte(secStrings); sec <= secDense; sec++ {
		plen := int(binary.BigEndian.Uint64(valid[off+1 : off+9]))
		frames = append(frames, frameSpan{snapSectionName[sec], off, off + 13, plen})
		off += 13 + plen
	}
	if off != len(valid) {
		t.Fatalf("frame walk covered %d of %d bytes", off, len(valid))
	}

	cases := []struct {
		name    string
		cut     int
		section string // "" = no SnapshotError expected (bare sentinel)
	}{
		{"mid-magic", 2, ""},
		{"magic-only", len(snapMagic), "header"},
	}
	for _, f := range frames {
		cases = append(cases,
			struct {
				name    string
				cut     int
				section string
			}{f.name + "-mid-header", f.hdr + 5, f.name},
			struct {
				name    string
				cut     int
				section string
			}{f.name + "-mid-payload", f.payload + f.plen/2, f.name},
		)
	}
	for _, tc := range cases {
		_, err := DecodeSnapshot(valid[:tc.cut])
		if err == nil {
			t.Fatalf("%s: truncation at %d accepted", tc.name, tc.cut)
		}
		if !errors.Is(err, ErrSnapshotTruncated) {
			t.Fatalf("%s: error %v is not ErrSnapshotTruncated", tc.name, err)
		}
		if tc.section == "" {
			continue
		}
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("%s: error %v carries no *SnapshotError", tc.name, err)
		}
		if se.Section != tc.section {
			t.Fatalf("%s: error names section %q, want %q", tc.name, se.Section, tc.section)
		}
		if se.Offset < 0 || se.Offset > int64(tc.cut) {
			t.Fatalf("%s: offset %d outside truncated input (%d bytes)", tc.name, se.Offset, tc.cut)
		}
	}
}

// TestSnapshotChecksumTyped pins that a payload bit flip is caught by the
// section CRC and reported as a corrupt-snapshot error naming the
// section.
func TestSnapshotChecksumTyped(t *testing.T) {
	valid := EncodeSnapshot(snapFixtureStore(t))
	bad := append([]byte{}, valid...)
	bad[len(snapMagic)+1+13] ^= 0xFF // first byte of the strings payload
	_, err := DecodeSnapshot(bad)
	if err == nil {
		t.Fatal("corrupted payload accepted")
	}
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("error %v is not ErrSnapshotCorrupt", err)
	}
	var se *SnapshotError
	if !errors.As(err, &se) {
		t.Fatalf("error %v carries no *SnapshotError", err)
	}
	if se.Section != "strings" {
		t.Fatalf("error names section %q, want strings", se.Section)
	}
}

// TestRegenSnapshotCorpus rewrites the committed seed corpus under
// testdata/fuzz/FuzzDecodeSnapshot. Gated behind BOTSCOPE_REGEN_CORPUS=1
// so a codec change regenerates the files deliberately, never as a test
// side effect.
func TestRegenSnapshotCorpus(t *testing.T) {
	if os.Getenv("BOTSCOPE_REGEN_CORPUS") == "" {
		t.Skip("set BOTSCOPE_REGEN_CORPUS=1 to rewrite the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSnapshot")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range snapshotSeedCorpus(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed.data)
		name := fmt.Sprintf("seed-%02d-%s", i, seed.name)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotSeedCorpusCommitted pins that every generated seed exists
// on disk and decodes (or is rejected) without panicking, so the corpus
// cannot drift from the generator.
func TestSnapshotSeedCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSnapshot")
	seeds := snapshotSeedCorpus(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (run BOTSCOPE_REGEN_CORPUS=1 go test): %v", err)
	}
	if len(entries) < len(seeds) {
		t.Fatalf("seed corpus has %d files, generator produces %d", len(entries), len(seeds))
	}
	for _, seed := range seeds {
		_, _ = DecodeSnapshot(seed.data)
	}
}
