package dataset

import (
	"net/netip"
	"testing"
	"time"
)

// filterFixture builds a store with varied attacks for filter tests.
func filterFixture(t *testing.T) *Store {
	t.Helper()
	bot := &Bot{IP: netip.MustParseAddr("9.9.9.9"), CountryCode: "RU", City: "m", Org: "o", ASN: 1}
	a1 := validAttack(1) // dirtjumper HTTP, RU target, t0
	a1.BotIPs = []netip.Addr{bot.IP}
	a2 := validAttack(2)
	a2.Family = Pandora
	a2.Category = CategoryUDP
	a2.Start = t0.AddDate(0, 0, 10)
	a2.End = a2.Start.Add(time.Hour)
	a2.TargetCountry = "US"
	a3 := validAttack(3)
	a3.Family = Pandora
	a3.Start = t0.AddDate(0, 0, 20)
	a3.End = a3.Start.Add(time.Hour)
	a3.BotIPs = []netip.Addr{
		netip.MustParseAddr("9.9.9.9"),
		netip.MustParseAddr("9.9.9.10"),
	}
	botnets := []*Botnet{{ID: 1, Family: Dirtjumper}}
	s, err := NewStore([]*Attack{a1, a2, a3}, botnets, []*Bot{bot})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSubsetByFamily(t *testing.T) {
	s := filterFixture(t)
	sub, err := s.Subset(Filter{Families: []Family{Pandora}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttacks() != 2 {
		t.Errorf("attacks = %d, want 2", sub.NumAttacks())
	}
	for _, a := range sub.Attacks() {
		if a.Family != Pandora {
			t.Errorf("leaked family %s", a.Family)
		}
	}
}

func TestSubsetByCategoryAndCountry(t *testing.T) {
	s := filterFixture(t)
	sub, err := s.Subset(Filter{Categories: []Category{CategoryUDP}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttacks() != 1 || sub.Attacks()[0].ID != 2 {
		t.Errorf("UDP filter = %d attacks", sub.NumAttacks())
	}

	sub, err = s.Subset(Filter{TargetCountry: "US"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttacks() != 1 || sub.Attacks()[0].ID != 2 {
		t.Errorf("US filter = %d attacks", sub.NumAttacks())
	}
}

func TestSubsetByTime(t *testing.T) {
	s := filterFixture(t)
	sub, err := s.Subset(Filter{From: t0.AddDate(0, 0, 5), To: t0.AddDate(0, 0, 15)})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttacks() != 1 || sub.Attacks()[0].ID != 2 {
		t.Errorf("time filter = %d attacks", sub.NumAttacks())
	}
}

func TestSubsetByMagnitude(t *testing.T) {
	s := filterFixture(t)
	sub, err := s.Subset(Filter{MinMagnitude: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttacks() != 1 || sub.Attacks()[0].ID != 3 {
		t.Errorf("magnitude filter = %d attacks", sub.NumAttacks())
	}
}

func TestSubsetCarriesReferencedRecords(t *testing.T) {
	s := filterFixture(t)
	sub, err := s.Subset(Filter{Families: []Family{Dirtjumper}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sub.Botnet(1); !ok {
		t.Error("botnet record dropped")
	}
	if _, ok := sub.Bot(netip.MustParseAddr("9.9.9.9")); !ok {
		t.Error("referenced bot dropped")
	}
}

func TestSubsetEmptyResult(t *testing.T) {
	s := filterFixture(t)
	if _, err := s.Subset(Filter{Families: []Family{Optima}}); err == nil {
		t.Error("empty subset succeeded")
	}
}

func TestSubsetEverything(t *testing.T) {
	s := filterFixture(t)
	sub, err := s.Subset(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttacks() != s.NumAttacks() {
		t.Errorf("identity filter = %d attacks, want %d", sub.NumAttacks(), s.NumAttacks())
	}
}
