package dataset

import (
	"net/netip"
	"sync"
	"testing"
	"time"
)

func denseFixture(t *testing.T) *Store {
	t.Helper()
	bots := make([]*Bot, 0, 40)
	for i := 0; i < 40; i++ {
		bots = append(bots, &Bot{
			IP:          netip.AddrFrom4([4]byte{10, 0, byte(i), 1}),
			ASN:         100 + i%7,
			CountryCode: []string{"BR", "TR", "US"}[i%3],
			City:        []string{"Sao Paulo", "Istanbul", "Ashburn"}[i%3],
			Org:         "Org",
			Lat:         float64(i) - 20,
			Lon:         float64(2 * i),
		})
	}
	attacks := make([]*Attack, 0, 30)
	for i := 0; i < 30; i++ {
		a := validAttack(DDoSID(i + 1))
		a.Start = t0.Add(time.Duration(i) * time.Minute)
		a.End = a.Start.Add(time.Hour)
		a.BotIPs = nil
		for j := 0; j < 5; j++ {
			// Overlapping source sets across attacks, plus one IP per
			// attack that never resolves in the Botlist.
			a.BotIPs = append(a.BotIPs, bots[(i*3+j*7)%len(bots)].IP)
		}
		a.BotIPs = append(a.BotIPs, netip.AddrFrom4([4]byte{172, 16, byte(i), 1}))
		attacks = append(attacks, a)
	}
	s, err := NewStore(attacks, nil, bots)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBotIndexMatchesMaps pins the dense index to the maps it replaces:
// every attack's Refs span aligns with its BotIPs, ids round-trip through
// ID/IP, and Rec agrees with Store.Bot for resolved and unresolved IPs.
func TestBotIndexMatchesMaps(t *testing.T) {
	s := denseFixture(t)
	ix := s.BotDense()

	distinct := make(map[netip.Addr]bool)
	for _, a := range s.Attacks() {
		refs := ix.Refs(a)
		if len(refs) != len(a.BotIPs) {
			t.Fatalf("attack %d: Refs len %d, BotIPs len %d", a.ID, len(refs), len(a.BotIPs))
		}
		for i, id := range refs {
			if ix.IP(id) != a.BotIPs[i] {
				t.Fatalf("attack %d ref %d: IP(%d) = %v, want %v", a.ID, i, id, ix.IP(id), a.BotIPs[i])
			}
			got, ok := ix.ID(a.BotIPs[i])
			if !ok || got != id {
				t.Fatalf("ID(%v) = %d,%v, want %d", a.BotIPs[i], got, ok, id)
			}
			rec, resolved := s.Bot(a.BotIPs[i])
			if resolved != (ix.Rec(id) != nil) || (resolved && ix.Rec(id) != rec) {
				t.Fatalf("Rec(%d) disagrees with Store.Bot(%v)", id, a.BotIPs[i])
			}
			distinct[a.BotIPs[i]] = true
		}
	}
	if ix.NumIDs() != len(distinct) {
		t.Fatalf("NumIDs = %d, want %d distinct attack-referenced IPs", ix.NumIDs(), len(distinct))
	}
	if unknown := validAttack(9999); ix.Refs(unknown) != nil {
		t.Error("Refs on a foreign attack returned a span, want nil")
	}
}

// TestBotDenseConcurrent races first-time index construction under -race.
func TestBotDenseConcurrent(t *testing.T) {
	s := denseFixture(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ix := s.BotDense()
			if ix.NumIDs() == 0 {
				t.Error("BotDense returned an empty index")
			}
		}()
	}
	wg.Wait()
}
