package dataset

import (
	"net/netip"
	"sync"
	"testing"
	"time"
)

// buildAttack creates a valid attack with the given knobs.
func buildAttack(id DDoSID, botnet BotnetID, family Family, target string, start time.Time, dur time.Duration) *Attack {
	a := validAttack(id)
	a.BotnetID = botnet
	a.Family = family
	a.TargetIP = netip.MustParseAddr(target)
	a.Start = start
	a.End = start.Add(dur)
	return a
}

func TestNewStoreSortsAndIndexes(t *testing.T) {
	attacks := []*Attack{
		buildAttack(3, 2, Pandora, "5.5.5.5", t0.Add(2*time.Hour), time.Hour),
		buildAttack(1, 1, Dirtjumper, "5.5.5.5", t0, time.Hour),
		buildAttack(2, 1, Dirtjumper, "6.6.6.6", t0.Add(time.Hour), time.Hour),
	}
	s, err := NewStore(attacks, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAttacks() != 3 {
		t.Fatalf("NumAttacks = %d, want 3", s.NumAttacks())
	}
	all := s.Attacks()
	for i := 1; i < len(all); i++ {
		if all[i].Start.Before(all[i-1].Start) {
			t.Errorf("attacks not sorted at %d", i)
		}
	}
	if got := len(s.ByFamily(Dirtjumper)); got != 2 {
		t.Errorf("ByFamily(dirtjumper) = %d, want 2", got)
	}
	if got := len(s.ByTarget(netip.MustParseAddr("5.5.5.5"))); got != 2 {
		t.Errorf("ByTarget(5.5.5.5) = %d, want 2", got)
	}
	if got := len(s.ByBotnet(1)); got != 2 {
		t.Errorf("ByBotnet(1) = %d, want 2", got)
	}
	if got := s.Families(); len(got) != 2 || got[0] != Dirtjumper || got[1] != Pandora {
		t.Errorf("Families = %v", got)
	}
	if got := s.Targets(); len(got) != 2 {
		t.Errorf("Targets = %v", got)
	}
}

func TestNewStoreRejectsDuplicates(t *testing.T) {
	attacks := []*Attack{validAttack(1), validAttack(1)}
	if _, err := NewStore(attacks, nil, nil); err == nil {
		t.Error("duplicate ddos_id accepted")
	}
	botnets := []*Botnet{{ID: 1, Family: Dirtjumper}, {ID: 1, Family: Pandora}}
	if _, err := NewStore(nil, botnets, nil); err == nil {
		t.Error("duplicate botnet_id accepted")
	}
}

func TestNewStoreRejectsInvalid(t *testing.T) {
	bad := validAttack(1)
	bad.BotIPs = nil
	if _, err := NewStore([]*Attack{bad}, nil, nil); err == nil {
		t.Error("invalid attack accepted")
	}
}

func TestStoreInRange(t *testing.T) {
	var attacks []*Attack
	for i := 0; i < 10; i++ {
		attacks = append(attacks, buildAttack(DDoSID(i+1), 1, Dirtjumper, "5.5.5.5",
			t0.Add(time.Duration(i)*time.Hour), 30*time.Minute))
	}
	s, err := NewStore(attacks, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		from time.Time
		to   time.Time
		want int
	}{
		{name: "all", from: t0, to: t0.Add(11 * time.Hour), want: 10},
		{name: "middle", from: t0.Add(2 * time.Hour), to: t0.Add(5 * time.Hour), want: 3},
		{name: "empty window", from: t0.Add(100 * time.Hour), to: t0.Add(200 * time.Hour), want: 0},
		{name: "half-open excludes to", from: t0, to: t0.Add(time.Hour), want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := len(s.InRange(tt.from, tt.to)); got != tt.want {
				t.Errorf("InRange = %d attacks, want %d", got, tt.want)
			}
		})
	}
}

func TestStoreTimeBounds(t *testing.T) {
	s, err := NewStore(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.TimeBounds(); ok {
		t.Error("TimeBounds on empty store reported ok")
	}

	attacks := []*Attack{
		buildAttack(1, 1, Dirtjumper, "5.5.5.5", t0, 10*time.Hour), // ends latest
		buildAttack(2, 1, Dirtjumper, "5.5.5.5", t0.Add(time.Hour), time.Hour),
	}
	s, err = NewStore(attacks, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	first, last, ok := s.TimeBounds()
	if !ok {
		t.Fatal("not ok")
	}
	if !first.Equal(t0) {
		t.Errorf("first = %v, want %v", first, t0)
	}
	if !last.Equal(t0.Add(10 * time.Hour)) {
		t.Errorf("last = %v, want %v", last, t0.Add(10*time.Hour))
	}
}

func TestStoreBotAndBotnetLookup(t *testing.T) {
	botnets := []*Botnet{{ID: 7, Family: Pandora, Hash: "abc123"}}
	bots := []*Bot{{IP: netip.MustParseAddr("9.9.9.9"), ASN: 42, CountryCode: "US", City: "Ashburn", Org: "Ashburn Hosting 1"}}
	s, err := NewStore(nil, botnets, bots)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := s.Botnet(7); !ok || b.Family != Pandora {
		t.Errorf("Botnet(7) = %+v, %v", b, ok)
	}
	if _, ok := s.Botnet(8); ok {
		t.Error("Botnet(8) resolved, want miss")
	}
	if b, ok := s.Bot(netip.MustParseAddr("9.9.9.9")); !ok || b.ASN != 42 {
		t.Errorf("Bot lookup = %+v, %v", b, ok)
	}
	if _, ok := s.Bot(netip.MustParseAddr("1.1.1.1")); ok {
		t.Error("unknown bot resolved")
	}
	if s.NumBots() != 1 || s.NumBotnets() != 1 {
		t.Errorf("NumBots/NumBotnets = %d/%d, want 1/1", s.NumBots(), s.NumBotnets())
	}
}

func TestStoreSummary(t *testing.T) {
	botIP1 := netip.MustParseAddr("9.9.9.9")
	botIP2 := netip.MustParseAddr("9.9.9.10")
	a1 := validAttack(1)
	a1.BotIPs = []netip.Addr{botIP1, botIP2}
	a2 := validAttack(2)
	a2.BotnetID = 2
	a2.Category = CategoryUDP
	a2.TargetIP = netip.MustParseAddr("7.7.7.7")
	a2.TargetCountry = "US"
	a2.TargetCity = "Ashburn"
	a2.TargetOrg = "Ashburn Hosting 1"
	a2.TargetASN = 999
	a2.BotIPs = []netip.Addr{botIP1} // shared bot counted once

	bots := []*Bot{
		{IP: botIP1, ASN: 100, CountryCode: "BR", City: "Sao Paulo", Org: "Sao Paulo Net 1"},
		{IP: botIP2, ASN: 101, CountryCode: "TR", City: "Istanbul", Org: "Istanbul Telecom 1"},
	}
	s, err := NewStore([]*Attack{a1, a2}, nil, bots)
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if sum.Attacks != 2 || sum.Botnets != 2 || sum.TrafficTypes != 2 {
		t.Errorf("Attacks/Botnets/Types = %d/%d/%d, want 2/2/2", sum.Attacks, sum.Botnets, sum.TrafficTypes)
	}
	if sum.BotIPs != 2 {
		t.Errorf("BotIPs = %d, want 2 (dedup across attacks)", sum.BotIPs)
	}
	if sum.SourceCountries != 2 || sum.SourceASNs != 2 || sum.SourceOrgs != 2 {
		t.Errorf("source entities = %+v, want 2 each", sum)
	}
	if sum.TargetIPs != 2 || sum.TargetCountries != 2 || sum.TargetASNs != 2 {
		t.Errorf("target entities = %+v, want 2 each", sum)
	}
}

func TestStoreSummaryCityDisambiguation(t *testing.T) {
	// Same city name in different countries must count twice.
	a1 := validAttack(1)
	a1.TargetCountry = "US"
	a1.TargetCity = "Springfield"
	a2 := validAttack(2)
	a2.TargetIP = netip.MustParseAddr("7.7.7.7")
	a2.TargetCountry = "CA"
	a2.TargetCity = "Springfield"
	s, err := NewStore([]*Attack{a1, a2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Summary().TargetCities; got != 2 {
		t.Errorf("TargetCities = %d, want 2 (same name, different countries)", got)
	}
}

// TestStoreMemoizedAccessors checks the lazily-built Families/FamilyCounts/
// Targets views: correct content, canonical order, and a shared backing
// array across repeat calls.
func TestStoreMemoizedAccessors(t *testing.T) {
	attacks := []*Attack{
		buildAttack(1, 1, Pandora, "6.6.6.6", t0, time.Hour),
		buildAttack(2, 1, Dirtjumper, "5.5.5.5", t0.Add(time.Hour), time.Hour),
		buildAttack(3, 2, Dirtjumper, "7.7.7.7", t0.Add(2*time.Hour), time.Hour),
	}
	s, err := NewStore(attacks, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fams := s.Families()
	if len(fams) != 2 || fams[0] != Dirtjumper || fams[1] != Pandora {
		t.Fatalf("Families() = %v, want sorted [dirtjumper pandora]", fams)
	}
	counts := s.FamilyCounts()
	if len(counts) != 2 || counts[0] != (FamilyCount{Family: Dirtjumper, Attacks: 2}) ||
		counts[1] != (FamilyCount{Family: Pandora, Attacks: 1}) {
		t.Fatalf("FamilyCounts() = %+v", counts)
	}
	targets := s.Targets()
	if len(targets) != 3 || s.NumTargets() != 3 {
		t.Fatalf("Targets() = %v, NumTargets = %d", targets, s.NumTargets())
	}
	for i := 1; i < len(targets); i++ {
		if !targets[i-1].Less(targets[i]) {
			t.Fatalf("Targets() not sorted: %v", targets)
		}
	}
	if again := s.Families(); &again[0] != &fams[0] {
		t.Error("Families() rebuilt its slice on a repeat call; memoization is not working")
	}
	if again := s.Targets(); &again[0] != &targets[0] {
		t.Error("Targets() rebuilt its slice on a repeat call; memoization is not working")
	}
}

// TestStoreAccessorsConcurrent races many first-time readers of the
// memoized accessors and the sharded summary under -race.
func TestStoreAccessorsConcurrent(t *testing.T) {
	attacks := make([]*Attack, 0, 300)
	for i := 0; i < 300; i++ {
		fam := Dirtjumper
		if i%3 == 0 {
			fam = Pandora
		}
		ip := netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 9})
		attacks = append(attacks, buildAttack(DDoSID(i+1), BotnetID(i%7+1), fam, ip.String(), t0.Add(time.Duration(i)*time.Minute), time.Hour))
	}
	s, err := NewStore(attacks, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				if got := len(s.Families()); got != 2 {
					t.Errorf("Families() = %d families, want 2", got)
				}
				if got := len(s.FamilyCounts()); got != 2 {
					t.Errorf("FamilyCounts() = %d rows, want 2", got)
				}
				if got := len(s.Targets()); got != 300 {
					t.Errorf("Targets() = %d, want 300", got)
				}
				if sum := s.SummaryWorkers(4); sum.Attacks != 300 || sum.TargetIPs != 300 {
					t.Errorf("SummaryWorkers = %+v", sum)
				}
			}
		}()
	}
	wg.Wait()
}

// TestStoreSummaryWorkersMatchesSequential pins the shard-merge
// invariant: any worker count yields the sequential counts.
func TestStoreSummaryWorkersMatchesSequential(t *testing.T) {
	attacks := make([]*Attack, 0, 100)
	for i := 0; i < 100; i++ {
		ip := netip.AddrFrom4([4]byte{10, 1, byte(i % 50), 9})
		attacks = append(attacks, buildAttack(DDoSID(i+1), BotnetID(i%5+1), Dirtjumper, ip.String(), t0.Add(time.Duration(i)*time.Minute), time.Hour))
	}
	s, err := NewStore(attacks, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := s.SummaryWorkers(1)
	for _, workers := range []int{0, 2, 3, 16} {
		if got := s.SummaryWorkers(workers); got != want {
			t.Fatalf("SummaryWorkers(%d) = %+v, want %+v", workers, got, want)
		}
	}
}
