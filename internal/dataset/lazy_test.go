package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// TestSnapshotLazyRecords pins the tentpole property of the lazy load
// path: a snapshot-loaded store answers every column-native consumer —
// counts, summary, families, targets, time bounds, the dense bot index,
// and cursor reads — without ever materializing the record view, and the
// first record-face call flips it over with identical content.
func TestSnapshotLazyRecords(t *testing.T) {
	s := snapFixtureStore(t)
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.RecordsMaterialized() {
		t.Fatal("decode materialized the record view")
	}
	if !s.RecordsMaterialized() {
		t.Fatal("record-built store reports unmaterialized records")
	}

	// Column-native surface: none of these may touch the record face.
	if got.NumAttacks() != s.NumAttacks() || got.NumBots() != s.NumBots() ||
		got.NumBotnets() != s.NumBotnets() || got.NumTargets() != s.NumTargets() {
		t.Fatal("lazy counts differ from the record-built store")
	}
	if got.Summary() != s.Summary() {
		t.Fatalf("lazy summary differs:\n got %+v\nwant %+v", got.Summary(), s.Summary())
	}
	if len(got.Families()) != len(s.Families()) {
		t.Fatal("lazy family list differs")
	}
	gf, gl, _ := got.TimeBounds()
	wf, wl, _ := s.TimeBounds()
	if !gf.Equal(wf) || !gl.Equal(wl) {
		t.Fatal("lazy time bounds differ")
	}
	ix := got.BotDense()
	if ix.NumIDs() != s.BotDense().NumIDs() {
		t.Fatal("lazy dense index differs")
	}
	want := s.Attacks()
	for i, n := 0, got.AttackRows(); i < n; i++ {
		v, w := got.AttackAt(i), want[i]
		if v.ID() != w.ID || v.BotnetID() != w.BotnetID || v.Family() != w.Family ||
			v.Category() != w.Category || v.TargetIP() != w.TargetIP ||
			!v.Start().Equal(w.Start) || !v.End().Equal(w.End) ||
			v.Magnitude() != w.Magnitude() ||
			v.TargetASN() != w.TargetASN || v.TargetCountry() != w.TargetCountry ||
			v.TargetCity() != w.TargetCity || v.TargetOrg() != w.TargetOrg ||
			v.TargetLat() != w.TargetLat || v.TargetLon() != w.TargetLon {
			t.Fatalf("cursor row %d differs from record %+v", i, w)
		}
		if len(ix.RefsRow(i)) != len(w.BotIPs) {
			t.Fatalf("cursor row %d ref span length differs", i)
		}
	}
	if got.RecordsMaterialized() {
		t.Fatal("column-native reads materialized the record view")
	}

	// First record-face touch: identical content, flag flips.
	if !bytes.Equal(csvBytes(t, s), csvBytes(t, got)) {
		t.Fatal("materialized records differ from the original store")
	}
	if !got.RecordsMaterialized() {
		t.Fatal("Attacks() did not materialize the record view")
	}
}

// TestAttackRecordAtMatchesRecords pins that the per-row record bridge
// used by the chain/collaboration detectors builds records identical to
// the materialized arena — without itself triggering materialization.
func TestAttackRecordAtMatchesRecords(t *testing.T) {
	s := snapFixtureStore(t)
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := s.Attacks()
	for i := range want {
		a, w := got.AttackRecordAt(i), want[i]
		if a.ID != w.ID || a.BotnetID != w.BotnetID || a.Family != w.Family ||
			a.Category != w.Category || a.TargetIP != w.TargetIP ||
			!a.Start.Equal(w.Start) || !a.End.Equal(w.End) ||
			a.TargetASN != w.TargetASN || a.TargetCountry != w.TargetCountry ||
			a.TargetCity != w.TargetCity || a.TargetOrg != w.TargetOrg ||
			a.TargetLat != w.TargetLat || a.TargetLon != w.TargetLon {
			t.Fatalf("ephemeral record %d differs: got %+v, want %+v", i, a, w)
		}
		if len(a.BotIPs) != len(w.BotIPs) {
			t.Fatalf("record %d has %d bot IPs, want %d", i, len(a.BotIPs), len(w.BotIPs))
		}
		for j := range a.BotIPs {
			if a.BotIPs[j] != w.BotIPs[j] {
				t.Fatalf("record %d bot ip %d differs", i, j)
			}
		}
	}
	if got.RecordsMaterialized() {
		t.Fatal("AttackRecordAt materialized the record view")
	}
	// After materialization the bridge must return the shared records.
	_ = got.Attacks()
	for i := range want {
		if got.AttackRecordAt(i) != got.Attacks()[i] {
			t.Fatalf("post-materialization AttackRecordAt(%d) is not the shared record", i)
		}
	}
}

// TestSnapshotConcurrentMaterialize hammers first-touch of the lazy
// record view from many goroutines under -race: every reader must see a
// fully built, identical record arena regardless of who wins the Once.
func TestSnapshotConcurrentMaterialize(t *testing.T) {
	s := snapFixtureStore(t)
	data := EncodeSnapshot(s)
	want := csvBytes(t, s)
	for round := 0; round < 10; round++ {
		got, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				switch g % 4 {
				case 0:
					if len(got.Attacks()) != s.NumAttacks() {
						errs <- "short attack list"
					}
				case 1:
					for _, f := range got.Families() {
						if len(got.ByFamily(f)) == 0 {
							errs <- "empty family bucket"
						}
					}
				case 2:
					for i := 0; i < got.AttackRows(); i++ {
						if got.AttackRecordAt(i) == nil {
							errs <- "nil record"
						}
					}
				case 3:
					ix := got.BotDense()
					for id := int32(0); id < int32(ix.NumIDs()); id++ {
						_ = ix.Rec(id)
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for msg := range errs {
			t.Fatal(msg)
		}
		if !bytes.Equal(want, csvBytes(t, got)) {
			t.Fatalf("round %d: concurrent materialization corrupted records", round)
		}
	}
}

// TestReadSnapshotMmapInfo pins the load-path provenance and the lazy
// contract across every load path in one table: a regular file takes the
// mmap path (where the platform supports it), BOTSCOPE_NO_MMAP forces the
// io.ReadAll fallback, a non-file reader never maps — and on all three
// the store arrives with no record arena, stays column-native until the
// first record-face touch, and produces identical records after it.
func TestReadSnapshotMmapInfo(t *testing.T) {
	s := snapFixtureStore(t)
	want := csvBytes(t, s)
	path := filepath.Join(t.TempDir(), "fixture.bscs")
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	mmapSupported := false
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "illumos":
		mmapSupported = true
	}

	fromFile := func(t *testing.T) *Store {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		got, err := ReadSnapshot(f)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return got
	}

	cases := []struct {
		name       string
		noMmapEnv  bool
		load       func(t *testing.T) *Store
		wantMapped bool
	}{
		{name: "file", load: fromFile, wantMapped: mmapSupported},
		{name: "no-mmap-env", noMmapEnv: true, load: fromFile, wantMapped: false},
		{name: "non-file-reader", wantMapped: false,
			load: func(t *testing.T) *Store {
				got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				return got
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.noMmapEnv {
				t.Setenv("BOTSCOPE_NO_MMAP", "1")
			}
			got := tc.load(t)
			info := got.SnapshotInfo()
			if info.Version != snapVersion || info.Bytes != int64(buf.Len()) {
				t.Fatalf("info = %+v, want version %d over %d bytes", info, snapVersion, buf.Len())
			}
			if info.Mapped != tc.wantMapped {
				t.Fatalf("info.Mapped = %t, want %t", info.Mapped, tc.wantMapped)
			}
			if got.RecordsMaterialized() {
				t.Fatal("store arrived with the record arena already built")
			}
			// Column-native reads must not flip the lazy record view.
			if got.NumAttacks() != s.NumAttacks() {
				t.Fatalf("NumAttacks = %d, want %d", got.NumAttacks(), s.NumAttacks())
			}
			for i, n := 0, got.AttackRows(); i < n; i++ {
				_ = got.AttackAt(i).Family()
			}
			if got.RecordsMaterialized() {
				t.Fatal("column-native reads materialized the record view")
			}
			// First record-face touch: flag flips, content identical.
			if !bytes.Equal(want, csvBytes(t, got)) {
				t.Fatalf("%s store differs from the record-built store", tc.name)
			}
			if !got.RecordsMaterialized() {
				t.Fatal("record-face touch did not materialize the record view")
			}
		})
	}
}
