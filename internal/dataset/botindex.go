package dataset

import (
	"net/netip"
	"sync"

	"botscope/internal/geo"
)

// BotIndex is the store's dense bot addressing layer: every IP that
// appears in any attack's source set gets one int32 id, assigned in
// attack order (deterministic, since attacks are sorted). The analysis
// kernels that used to resolve map[netip.Addr]*Bot per bot reference —
// dispersion scans, Table III's distinct-entity counts, Figure 8's weekly
// dedup, the blacklist builder — instead walk flat arrays indexed by id:
// a hash lookup per 24-byte key becomes an array load, and per-bot
// geolocation trigonometry is precomputed once for the store's lifetime.
//
// The id numbering and reference spans come straight from the columnar
// core: on the record path they are derived from the reference arena, on
// the snapshot path they are decoded from the file, so a reloaded store
// carries the identical dense addressing without re-walking 10M+
// references.
//
// All fields except the lazy reverse map are written once inside
// Store.botOnce and immutable after, so an index is safe for concurrent
// readers; returned slices are shared and must not be modified.
type BotIndex struct {
	ips  []netip.Addr      // id -> ip (shared with the columnar dense layer)
	recs []*Bot            // id -> Botlist record; nil when unresolved
	pts  []geo.CachedPoint // id -> cached location; zero when unresolved
	refs []int32           // per-attack id spans, concatenated in attack order
	offs map[DDoSID]int    // attack -> offset of its span in refs

	idsOnce sync.Once
	ids     map[netip.Addr]int32 // ip -> dense id; written once inside idsOnce.Do, immutable after
}

// BotDense returns the store's dense bot index, building it on first use.
func (s *Store) BotDense() *BotIndex {
	s.botOnce.Do(s.buildBotIndex)
	return s.botIdx
}

func (s *Store) buildBotIndex() {
	c := s.Cols()
	d := s.denseBots()
	ix := &BotIndex{
		ips:  d.ips,
		refs: d.refs,
		offs: make(map[DDoSID]int, len(s.attacks)),
		recs: make([]*Bot, len(d.ips)),
		pts:  make([]geo.CachedPoint, len(d.ips)),
	}
	for i, a := range s.attacks {
		ix.offs[a.ID] = int(c.aOff[i])
	}
	for id, row := range d.rec {
		if row < 0 {
			continue
		}
		b := s.botList[row]
		ix.recs[id] = b
		ix.pts[id] = botPoint(b)
	}
	s.botIdx = ix
}

// NumIDs returns the number of distinct bot IPs across all attacks.
func (ix *BotIndex) NumIDs() int { return len(ix.ips) }

// ID resolves an IP to its dense id. The reverse map is built lazily on
// first call: the hot kernels only ever go id -> record, so most stores
// never pay for it.
func (ix *BotIndex) ID(ip netip.Addr) (int32, bool) {
	ix.idsOnce.Do(func() {
		m := make(map[netip.Addr]int32, len(ix.ips))
		for i, a := range ix.ips {
			m[a] = int32(i)
		}
		ix.ids = m
	})
	id, ok := ix.ids[ip]
	return id, ok
}

// IP returns the address of a dense id.
func (ix *BotIndex) IP(id int32) netip.Addr { return ix.ips[id] }

// Rec returns the Botlist record of a dense id, or nil when the IP never
// resolved in the Botlist.
func (ix *BotIndex) Rec(id int32) *Bot { return ix.recs[id] }

// Point returns the precomputed location of a resolved dense id. The
// value is meaningful only when Rec(id) != nil.
func (ix *BotIndex) Point(id int32) geo.CachedPoint { return ix.pts[id] }

// Refs returns the attack's source set as dense ids, aligned with
// a.BotIPs. It returns nil for attacks not belonging to this store. The
// span aliases the index's shared refs array and must not be modified.
//
//botscope:shared
func (ix *BotIndex) Refs(a *Attack) []int32 {
	off, ok := ix.offs[a.ID]
	if !ok {
		return nil
	}
	return ix.refs[off : off+len(a.BotIPs)]
}
