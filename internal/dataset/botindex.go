package dataset

import (
	"net/netip"
	"sync"

	"botscope/internal/geo"
)

// BotIndex is the store's dense bot addressing layer: every IP that
// appears in any attack's source set gets one int32 id, assigned in
// attack order (deterministic, since attacks are sorted). The analysis
// kernels that used to resolve map[netip.Addr]*Bot per bot reference —
// dispersion scans, Table III's distinct-entity counts, Figure 8's weekly
// dedup, the blacklist builder — instead walk flat arrays indexed by id:
// a hash lookup per 24-byte key becomes an array load, and per-bot
// geolocation trigonometry is precomputed once for the store's lifetime.
//
// The id numbering and reference spans come straight from the columnar
// core: on the record path they are derived from the reference arena, on
// the snapshot path they are decoded from the file, so a reloaded store
// carries the identical dense addressing without re-walking 10M+
// references. Everything the column-native kernels touch (ips, rows,
// pts, row-addressed spans, interned attributes) is built from the
// columns alone; the record-facing conveniences — Rec and the
// DDoSID-keyed Refs — materialize their inputs lazily, so an index over
// a snapshot-loaded store stays record-free until one of those is
// called.
//
// All eager fields are written once inside Store.botOnce and immutable
// after, so an index is safe for concurrent readers; returned slices
// are shared and must not be modified.
type BotIndex struct {
	s    *Store
	cols *Columns
	ips  []netip.Addr      // id -> ip (shared with the columnar dense layer)
	rows []int32           // id -> Botlist row, -1 when unresolved
	pts  []geo.CachedPoint // id -> cached location; zero when unresolved
	refs []int32           // per-attack id spans, concatenated in attack order

	offsOnce sync.Once
	offs     map[DDoSID]int // attack -> offset of its span in refs; written once inside offsOnce.Do

	recsOnce sync.Once
	recs     []*Bot // id -> Botlist record; written once inside recsOnce.Do

	idsOnce sync.Once
	ids     map[netip.Addr]int32 // ip -> dense id; written once inside idsOnce.Do, immutable after
}

// BotDense returns the store's dense bot index, building it on first use.
func (s *Store) BotDense() *BotIndex {
	s.botOnce.Do(s.buildBotIndex)
	return s.botIdx
}

func (s *Store) buildBotIndex() {
	c := s.Cols()
	d := s.denseBots()
	ix := &BotIndex{
		s:    s,
		cols: c,
		ips:  d.ips,
		rows: d.rec,
		refs: d.refs,
		pts:  make([]geo.CachedPoint, len(d.ips)),
	}
	for id, row := range d.rec {
		if row < 0 {
			continue
		}
		ix.pts[id] = geo.NewCachedPoint(geo.LatLon{Lat: c.bLat[row], Lon: c.bLon[row]})
	}
	s.botIdx = ix
}

// NumIDs returns the number of distinct bot IPs across all attacks.
func (ix *BotIndex) NumIDs() int { return len(ix.ips) }

// ID resolves an IP to its dense id. The reverse map is built lazily on
// first call: the hot kernels only ever go id -> record, so most stores
// never pay for it.
func (ix *BotIndex) ID(ip netip.Addr) (int32, bool) {
	ix.idsOnce.Do(func() {
		m := make(map[netip.Addr]int32, len(ix.ips))
		for i, a := range ix.ips {
			m[a] = int32(i)
		}
		ix.ids = m
	})
	id, ok := ix.ids[ip]
	return id, ok
}

// IP returns the address of a dense id.
func (ix *BotIndex) IP(id int32) netip.Addr { return ix.ips[id] }

// Resolved reports whether a dense id has a Botlist row.
func (ix *BotIndex) Resolved(id int32) bool { return ix.rows[id] >= 0 }

// Bot returns a cursor over the Botlist row of a resolved dense id. ok
// is false when the IP never resolved in the Botlist. The view reads the
// store's columns in place and must not outlive it.
//
//botscope:mmap
func (ix *BotIndex) Bot(id int32) (BotView, bool) {
	row := ix.rows[id]
	if row < 0 {
		return BotView{}, false
	}
	return ix.cols.BotRow(row), true
}

// CountryOf returns the country code of a dense id's Botlist row, or ""
// when unresolved — the column-native form of Rec(id).CountryCode that
// the monitor kernels use without materializing records.
func (ix *BotIndex) CountryOf(id int32) string {
	row := ix.rows[id]
	if row < 0 {
		return ""
	}
	return ix.cols.strs[ix.cols.bCC[row]]
}

// Rec returns the Botlist record of a dense id, or nil when the IP never
// resolved in the Botlist. This is the record face of the index: on a
// snapshot-loaded store the first call materializes the Bot records.
func (ix *BotIndex) Rec(id int32) *Bot {
	ix.recsOnce.Do(func() {
		ix.s.records()
		recs := make([]*Bot, len(ix.ips))
		for i, row := range ix.rows {
			if row >= 0 {
				recs[i] = ix.s.botList[row]
			}
		}
		ix.recs = recs
	})
	return ix.recs[id]
}

// Point returns the precomputed location of a resolved dense id. The
// value is meaningful only when Resolved(id).
func (ix *BotIndex) Point(id int32) geo.CachedPoint { return ix.pts[id] }

// RefsRow returns attack row i's source set as dense ids. The span
// aliases the index's shared refs array and must not be modified.
//
//botscope:shared
//botscope:mmap
func (ix *BotIndex) RefsRow(i int) []int32 {
	lo, hi := ix.cols.aOff[i], ix.cols.aOff[i+1]
	return ix.refs[lo:hi:hi]
}

// Refs returns the attack's source set as dense ids, aligned with
// a.BotIPs. It returns nil for attacks not belonging to this store. The
// span aliases the index's shared refs array and must not be modified.
//
//botscope:shared
//botscope:mmap
func (ix *BotIndex) Refs(a *Attack) []int32 {
	ix.offsOnce.Do(func() {
		c := ix.cols
		offs := make(map[DDoSID]int, len(c.aID))
		for i, id := range c.aID {
			offs[DDoSID(id)] = int(c.aOff[i])
		}
		ix.offs = offs
	})
	off, ok := ix.offs[a.ID]
	if !ok {
		return nil
	}
	return ix.refs[off : off+len(a.BotIPs)]
}
