package dataset

// cursor.go is the column-cursor API: tiny value-type views that let
// analysis kernels read one attack/bot/botnet row straight out of the
// columnar arrays without materializing pointer-rich records. A view is
// two words (columns pointer + row); every accessor is a direct array
// load, so cursor loops are allocation-free and safe to use inside
// //botscope:hotpath functions. Views are read-only and remain valid as
// long as the owning Store/Columns is reachable.

import (
	"net/netip"
	"time"
)

// AttackView is a cursor over one attack row.
type AttackView struct {
	c   *Columns
	row int32
}

// Attack returns a cursor over attack row i (the store's sorted attack
// order).
//
//botscope:mmap
func (c *Columns) Attack(i int) AttackView { return AttackView{c: c, row: int32(i)} }

// AttackRows returns the number of attack rows, for cursor loops.
func (s *Store) AttackRows() int { return len(s.Cols().aID) }

// AttackAt returns a cursor over attack row i without touching the
// record face.
//
//botscope:mmap
func (s *Store) AttackAt(i int) AttackView { return s.Cols().Attack(i) }

// Row returns the view's attack row.
func (v AttackView) Row() int { return int(v.row) }

// ID returns the attack's ddos_id.
func (v AttackView) ID() DDoSID { return DDoSID(v.c.aID[v.row]) }

// BotnetID returns the launching botnet's id.
func (v AttackView) BotnetID() BotnetID { return BotnetID(v.c.aBotnet[v.row]) }

// Family returns the malware family.
func (v AttackView) Family() Family { return Family(v.c.strs[v.c.aFam[v.row]]) }

// Category returns the traffic category.
func (v AttackView) Category() Category { return Category(v.c.aCat[v.row]) }

// TargetID returns the column target id (index into the target table).
func (v AttackView) TargetID() int32 { return v.c.aTgt[v.row] }

// TargetIP returns the victim address.
func (v AttackView) TargetIP() netip.Addr { return v.c.targets[v.c.aTgt[v.row]] }

// Start returns the attack start time.
func (v AttackView) Start() time.Time { return nanoTime(v.c.aStart[v.row]) }

// End returns the attack end time.
func (v AttackView) End() time.Time { return nanoTime(v.c.aEnd[v.row]) }

// StartNano returns the start as UTC nanoseconds, for comparisons that
// should not construct a time.Time.
func (v AttackView) StartNano() int64 { return v.c.aStart[v.row] }

// EndNano returns the end as UTC nanoseconds.
func (v AttackView) EndNano() int64 { return v.c.aEnd[v.row] }

// Duration returns End minus Start. Identical to End().Sub(Start())
// because both timestamps are exact nanosecond instants.
func (v AttackView) Duration() time.Duration {
	return time.Duration(v.c.aEnd[v.row] - v.c.aStart[v.row])
}

// Magnitude returns the number of source IPs, i.e. the reference-span
// length — the cursor form of Attack.Magnitude.
func (v AttackView) Magnitude() int {
	return int(v.c.aOff[v.row+1] - v.c.aOff[v.row])
}

// TargetASN returns the victim ASN.
func (v AttackView) TargetASN() int { return int(v.c.aASN[v.row]) }

// TargetCountry returns the victim country code.
func (v AttackView) TargetCountry() string { return v.c.strs[v.c.aCC[v.row]] }

// TargetCity returns the victim city.
func (v AttackView) TargetCity() string { return v.c.strs[v.c.aCity[v.row]] }

// TargetOrg returns the victim organization.
func (v AttackView) TargetOrg() string { return v.c.strs[v.c.aOrg[v.row]] }

// TargetLat returns the victim latitude.
func (v AttackView) TargetLat() float64 { return v.c.aLat[v.row] }

// TargetLon returns the victim longitude.
func (v AttackView) TargetLon() float64 { return v.c.aLon[v.row] }

// BotView is a cursor over one Botlist row.
type BotView struct {
	c   *Columns
	row int32
}

// BotRow returns a cursor over Botlist row i.
//
//botscope:mmap
func (c *Columns) BotRow(i int32) BotView { return BotView{c: c, row: i} }

// IP returns the bot's address.
func (v BotView) IP() netip.Addr { return v.c.bIP[v.row] }

// ASN returns the bot's ASN.
func (v BotView) ASN() int { return int(v.c.bASN[v.row]) }

// CountryCode returns the bot's country code.
func (v BotView) CountryCode() string { return v.c.strs[v.c.bCC[v.row]] }

// City returns the bot's city.
func (v BotView) City() string { return v.c.strs[v.c.bCity[v.row]] }

// Org returns the bot's organization.
func (v BotView) Org() string { return v.c.strs[v.c.bOrg[v.row]] }

// Lat returns the bot's latitude.
func (v BotView) Lat() float64 { return v.c.bLat[v.row] }

// Lon returns the bot's longitude.
func (v BotView) Lon() float64 { return v.c.bLon[v.row] }

// LastActive returns the bot's last-active time.
func (v BotView) LastActive() time.Time { return nanoTime(v.c.bLast[v.row]) }

// BotnetView is a cursor over one Botnetlist row.
type BotnetView struct {
	c   *Columns
	row int32
}

// BotnetRow returns a cursor over Botnetlist row i.
//
//botscope:mmap
func (c *Columns) BotnetRow(i int32) BotnetView { return BotnetView{c: c, row: i} }

// BotnetByID returns a cursor over the botnet with the given id. ok is
// false when the id has no Botnetlist row.
//
//botscope:mmap
func (s *Store) BotnetByID(id BotnetID) (BotnetView, bool) {
	c := s.Cols()
	row, ok := c.botnetRow(uint32(id))
	if !ok {
		return BotnetView{}, false
	}
	return BotnetView{c: c, row: row}, true
}

// ID returns the botnet id.
func (v BotnetView) ID() BotnetID { return BotnetID(v.c.nID[v.row]) }

// Family returns the botnet's malware family.
func (v BotnetView) Family() Family { return Family(v.c.strs[v.c.nFam[v.row]]) }

// Hash returns the botnet's sample hash.
func (v BotnetView) Hash() string { return v.c.strs[v.c.nHash[v.row]] }

// ControllerIP returns the C2 controller address.
func (v BotnetView) ControllerIP() netip.Addr { return v.c.nCtrl[v.row] }

// FirstSeen returns the botnet's first-seen time.
func (v BotnetView) FirstSeen() time.Time { return nanoTime(v.c.nFirst[v.row]) }

// LastSeen returns the botnet's last-seen time.
func (v BotnetView) LastSeen() time.Time { return nanoTime(v.c.nLast[v.row]) }
