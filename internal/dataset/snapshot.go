package dataset

// snapshot.go is the versioned binary columnar snapshot codec ("BSCS").
// A snapshot serializes the columnar core (columns.go) — interned string
// table, attack/bot/botnet columns, and the dense source-IP layer — so a
// generated workload reloads in seconds instead of being regenerated and
// re-indexed. The encoding reuses the discipline of internal/cluster's
// BSCW wire codec: unsigned varints everywhere, zigzag varints for
// signed values, IEEE-754 bit patterns for floats (bit-exact round
// trips), length-prefixed strings, tagged 0/4/16-byte addresses, and a
// sticky-error reader whose collection counts are sanity-checked against
// the bytes remaining so a corrupt length cannot force an arbitrary
// allocation.
//
// Format versioning rules: the magic never changes; the version byte
// bumps on any layout change (there is no in-place migration — a
// snapshot is a cache of a reproducible workload, so "regenerate and
// re-snapshot" is always safe); decoders reject unknown versions rather
// than guessing. Writers emit the current version; readers accept both
// v2 and the legacy v1 layout. Within a version, decode is strict: every
// interned-id and row reference is bounds-checked, attack rows must
// arrive sorted by (Start, ID) with unique ids, dense ids must be
// numbered in first-appearance order, and trailing bytes (in the stream,
// and in v2 inside each section frame) are an error. A decoded store
// therefore satisfies exactly the invariants NewStore enforces.
//
// Layout (version 2):
//
//	"BSCS" | version uvarint
//	6 section frames, in fixed order (strings, targets, botnets, bots,
//	attacks, dense), each:
//	    section id byte (1..6) |
//	    payload length uint64 BE |
//	    payload crc32 (Castagnoli) uint32 BE |
//	    payload
//
// The fixed-width frame header lets the encoder emit each payload
// straight into the output buffer and backfill length + checksum, and
// lets a reader verify or skip a section without parsing it. Payload
// encodings are byte-identical to the v1 section bodies:
//
//	strings:  count | (len | bytes)*
//	targets:  count | addr*
//	botnets:  count | id* | fam* | hash* | ctrl* | first* | last*
//	bots:     count | ip* | asn* | cc* | city* | org* | lat* | lon* | lastΔ*
//	attacks:  count | nRefs | id* | botnet* | fam* | cat* | tgt* |
//	          startΔ* | endΔ* | asn* | cc* | city* | org* | lat* | lon* | span*
//	dense:    count | ip* | ref* | rec*
//
// Version 1 is the same six payloads concatenated with no frame headers.
//
// Sections are column-major: each column is one contiguous run, which
// keeps related varints adjacent. Attack starts are deltas from the
// previous row (the sort makes them small and non-negative), ends are
// deltas from their own start, bot LastActive values are zigzag deltas
// from the previous row (clustered inside the paper window).
//
// The per-section checksums also feed a process-local validation cache:
// when a snapshot whose six (length, crc) pairs were already fully
// validated by an earlier load is decoded again, the structural parse
// still runs (it is what builds the columns) but the semantic
// re-validation (validateColumns) is skipped.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/netip"
	"os"
	"sync"
)

// Snapshot codec constants.
const (
	snapMagic     = "BSCS"
	snapVersion   = 2
	snapVersionV1 = 1
)

// Section ids of the v2 frame layout, in stream order.
const (
	secStrings = 1
	secTargets = 2
	secBotnets = 3
	secBots    = 4
	secAttacks = 5
	secDense   = 6
)

// snapSectionName names each section for typed decode errors; index 0 is
// the pre-section header.
var snapSectionName = [...]string{"header", "strings", "targets", "botnets", "bots", "attacks", "dense"}

// castagnoli is the CRC-32C table used for section checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot codec errors.
var (
	ErrSnapshotMagic     = errors.New("dataset: bad snapshot magic")
	ErrSnapshotVersion   = errors.New("dataset: unsupported snapshot version")
	ErrSnapshotTruncated = errors.New("dataset: truncated snapshot")
	ErrSnapshotCorrupt   = errors.New("dataset: corrupt snapshot")
)

// SnapshotError locates a decode failure: which section the reader was
// in and the absolute byte offset (from the start of the snapshot) where
// it gave up. It wraps the underlying cause, so
// errors.Is(err, ErrSnapshotTruncated) and friends keep working.
type SnapshotError struct {
	Section string // section being parsed ("header", "strings", ..., "dense")
	Offset  int64  // absolute offset into the snapshot bytes
	Err     error
}

func (e *SnapshotError) Error() string {
	return fmt.Sprintf("%v (in %s section at offset %d)", e.Err, e.Section, e.Offset)
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// validatedSnapshots caches the (length, crc) frame headers of v2
// snapshots that fully passed validateColumns in this process, so
// re-loading a byte-identical snapshot skips semantic re-validation.
var validatedSnapshots sync.Map // string (concatenated frame headers) -> struct{}

// SnapshotInfo describes how a store's snapshot was loaded.
type SnapshotInfo struct {
	Version int   // snapshot format version (0 for stores not loaded from a snapshot)
	Bytes   int64 // encoded size in bytes
	Mapped  bool  // true when the columns alias a memory-mapped file
}

// SnapshotInfo reports how this store was loaded. The zero value means
// the store was built from records, not a snapshot.
func (s *Store) SnapshotInfo() SnapshotInfo { return s.snapInfo }

// snapWriter appends primitives to a growing buffer, mirroring the wire
// codec's value discipline.
type snapWriter struct {
	buf []byte
}

func (w *snapWriter) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *snapWriter) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *snapWriter) f64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *snapWriter) str(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// addr encodes a netip.Addr as a 1-byte tag (0 = zero value, 4, or 16)
// plus raw bytes. Unlike attack targets, bot and controller addresses
// may legitimately be the zero Addr, which As16 would silently turn into
// IPv6 "::" — the 0 tag preserves it.
func (w *snapWriter) addr(a netip.Addr) {
	if !a.IsValid() {
		w.buf = append(w.buf, 0)
		return
	}
	if a.Is4() {
		b := a.As4()
		w.buf = append(w.buf, 4)
		w.buf = append(w.buf, b[:]...)
		return
	}
	b := a.As16()
	w.buf = append(w.buf, 16)
	w.buf = append(w.buf, b[:]...)
}

// snapReader consumes primitives with a sticky error, so decode paths
// read linearly and check once per section. section and end track where
// the reader is for typed errors: end is the absolute offset (from the
// start of the snapshot) of the last byte of buf, so the current
// position is end - len(buf).
type snapReader struct {
	buf     []byte
	err     error
	section string
	end     int64
}

// off returns the reader's absolute offset into the snapshot bytes.
func (r *snapReader) off() int64 { return r.end - int64(len(r.buf)) }

func (r *snapReader) fail() {
	if r.err == nil {
		r.err = &SnapshotError{Section: r.section, Offset: r.off(), Err: ErrSnapshotTruncated}
	}
}

func (r *snapReader) failf(format string, args ...any) {
	if r.err == nil {
		r.err = &SnapshotError{
			Section: r.section,
			Offset:  r.off(),
			Err:     fmt.Errorf("%w: "+format, append([]any{ErrSnapshotCorrupt}, args...)...),
		}
	}
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *snapReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *snapReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v
}

func (r *snapReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.fail()
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *snapReader) addr() netip.Addr {
	if r.err != nil {
		return netip.Addr{}
	}
	if len(r.buf) < 1 {
		r.fail()
		return netip.Addr{}
	}
	n := int(r.buf[0])
	r.buf = r.buf[1:]
	switch n {
	case 0:
		return netip.Addr{}
	case 4, 16:
	default:
		r.fail()
		return netip.Addr{}
	}
	if len(r.buf) < n {
		r.fail()
		return netip.Addr{}
	}
	var a netip.Addr
	if n == 4 {
		a = netip.AddrFrom4([4]byte(r.buf[:4]))
	} else {
		a = netip.AddrFrom16([16]byte(r.buf[:16]))
	}
	r.buf = r.buf[n:]
	return a
}

// count reads a collection length and sanity-checks it against the bytes
// remaining (every element costs at least minBytes somewhere later in
// the stream — in v2, later in the same section payload), so a corrupt
// count cannot force an arbitrary allocation.
func (r *snapReader) count(minBytes int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(len(r.buf)/minBytes) {
		r.fail()
		return 0
	}
	return int(n)
}

// strID reads an interned string id and bounds-checks it.
func (r *snapReader) strID(nStr int) int32 {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v >= uint64(nStr) {
		r.failf("string id %d out of range (%d interned)", v, nStr)
		return 0
	}
	return int32(v)
}

// WriteSnapshot writes the store's BSCS snapshot to w. It returns
// ErrStoreClosed for a closed store: encoding reads the columns, and on
// a mapped store those bytes were released by Close.
func WriteSnapshot(w io.Writer, s *Store) error {
	if s.Closed() {
		return ErrStoreClosed
	}
	_, err := w.Write(EncodeSnapshot(s))
	return err
}

// ReadSnapshot reads one BSCS snapshot from r and returns a lazy store
// over the decoded columns. When r is a regular file (and mmap is
// supported and not disabled via BOTSCOPE_NO_MMAP), the snapshot bytes
// are memory-mapped rather than read into the heap, and the columns that
// the codec stores as raw bytes decode zero-copy over the mapping; any
// mmap failure falls back to the plain read path. The record views of
// the returned store are materialized on demand (see Store.records); a
// column-native analysis run never builds them.
func ReadSnapshot(r io.Reader) (*Store, error) {
	if f, ok := r.(*os.File); ok && os.Getenv("BOTSCOPE_NO_MMAP") == "" {
		if s, err, done := readSnapshotMapped(f); done {
			return s, err
		}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// The buffer is private to this call, so columns may alias it.
	return decodeSnapshot(data, true, false)
}

// readSnapshotMapped maps the rest of f and decodes over the mapping.
// done is false when the mapped path is unavailable (not a regular file,
// empty remainder, mmap failure) and the caller should fall back to the
// read path; when done is true the decode outcome — success or a decode
// error identical to the one the read path would produce — is final.
func readSnapshotMapped(f *os.File) (s *Store, err error, done bool) {
	pos, err := f.Seek(0, io.SeekCurrent)
	if err != nil || pos < 0 {
		return nil, nil, false
	}
	fi, err := f.Stat()
	if err != nil || !fi.Mode().IsRegular() {
		return nil, nil, false
	}
	size := fi.Size()
	if size <= pos {
		return nil, nil, false
	}
	m, err := mmapFile(f, size)
	if err != nil {
		return nil, nil, false
	}
	s, err = decodeSnapshot(m.data[pos:], true, true)
	if err != nil {
		m.close()
		return nil, err, true
	}
	// Consume the reader like io.ReadAll would, so callers that share the
	// file handle see the same position either way.
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		m.close()
		return nil, err, true
	}
	s.cols.mmap = m
	return s, nil, true
}

// EncodeSnapshot serializes the store's columnar form (deriving it from
// the records first if this store was never columnized) in the current
// (v2) frame layout.
func EncodeSnapshot(s *Store) []byte {
	c := s.Cols()
	d := s.denseBots()
	strBytes := 0
	for _, str := range c.strs {
		strBytes += len(str) + 2
	}
	hint := 160 + strBytes +
		21*(len(c.targets)+len(d.ips)+len(c.nID)) +
		64*len(c.bIP) + 80*len(c.aID) + 5*c.NumRefs() + 2*len(d.rec)
	w := &snapWriter{buf: make([]byte, 0, hint)}
	w.buf = append(w.buf, snapMagic...)
	w.uvarint(snapVersion)

	frame := func(id byte, enc func()) {
		w.buf = append(w.buf, id)
		hdr := len(w.buf)
		w.buf = append(w.buf, make([]byte, 12)...)
		start := len(w.buf)
		enc()
		payload := w.buf[start:]
		binary.BigEndian.PutUint64(w.buf[hdr:hdr+8], uint64(len(payload)))
		binary.BigEndian.PutUint32(w.buf[hdr+8:hdr+12], crc32.Checksum(payload, castagnoli))
	}
	frame(secStrings, func() { encStrings(w, c) })
	frame(secTargets, func() { encTargets(w, c) })
	frame(secBotnets, func() { encBotnets(w, c) })
	frame(secBots, func() { encBots(w, c) })
	frame(secAttacks, func() { encAttacks(w, c) })
	frame(secDense, func() { encDense(w, d) })
	return w.buf
}

// The enc* functions emit one section payload each; both the v2 encoder
// and the test-only v1 encoder compose them, which is what keeps the two
// layouts byte-compatible at the payload level.

//botvet:codec encode strings
func encStrings(w *snapWriter, c *Columns) {
	w.uvarint(uint64(len(c.strs)))
	for _, str := range c.strs {
		w.str(str)
	}
}

//botvet:codec encode targets
func encTargets(w *snapWriter, c *Columns) {
	w.uvarint(uint64(len(c.targets)))
	for _, a := range c.targets {
		w.addr(a)
	}
}

//botvet:codec encode botnets
func encBotnets(w *snapWriter, c *Columns) {
	w.uvarint(uint64(len(c.nID)))
	for _, v := range c.nID {
		w.uvarint(uint64(v))
	}
	for _, v := range c.nFam {
		w.uvarint(uint64(v))
	}
	for _, v := range c.nHash {
		w.uvarint(uint64(v))
	}
	for _, a := range c.nCtrl {
		w.addr(a)
	}
	for _, v := range c.nFirst {
		w.varint(v)
	}
	for _, v := range c.nLast {
		w.varint(v)
	}
}

//botvet:codec encode bots
func encBots(w *snapWriter, c *Columns) {
	w.uvarint(uint64(len(c.bIP)))
	for _, a := range c.bIP {
		w.addr(a)
	}
	for _, v := range c.bASN {
		w.varint(v)
	}
	for _, v := range c.bCC {
		w.uvarint(uint64(v))
	}
	for _, v := range c.bCity {
		w.uvarint(uint64(v))
	}
	for _, v := range c.bOrg {
		w.uvarint(uint64(v))
	}
	for _, v := range c.bLat {
		w.f64(v)
	}
	for _, v := range c.bLon {
		w.f64(v)
	}
	prev := int64(0)
	for _, v := range c.bLast {
		w.varint(v - prev)
		prev = v
	}
}

//botvet:codec encode attacks
func encAttacks(w *snapWriter, c *Columns) {
	n := len(c.aID)
	w.uvarint(uint64(n))
	w.uvarint(uint64(c.NumRefs()))
	for _, v := range c.aID {
		w.uvarint(v)
	}
	for _, v := range c.aBotnet {
		w.uvarint(uint64(v))
	}
	for _, v := range c.aFam {
		w.uvarint(uint64(v))
	}
	w.buf = append(w.buf, c.aCat...)
	for _, v := range c.aTgt {
		w.uvarint(uint64(v))
	}
	prev := int64(0)
	for i, v := range c.aStart {
		if i == 0 {
			w.varint(v)
		} else {
			w.uvarint(uint64(v - prev)) // sorted: non-negative
		}
		prev = v
	}
	for i, v := range c.aEnd {
		w.uvarint(uint64(v - c.aStart[i])) // validated: End >= Start
	}
	for _, v := range c.aASN {
		w.varint(v)
	}
	for _, v := range c.aCC {
		w.uvarint(uint64(v))
	}
	for _, v := range c.aCity {
		w.uvarint(uint64(v))
	}
	for _, v := range c.aOrg {
		w.uvarint(uint64(v))
	}
	for _, v := range c.aLat {
		w.f64(v)
	}
	for _, v := range c.aLon {
		w.f64(v)
	}
	for i := 0; i < n; i++ {
		w.uvarint(uint64(c.aOff[i+1] - c.aOff[i]))
	}
}

//botvet:codec encode dense
func encDense(w *snapWriter, d *denseBots) {
	w.uvarint(uint64(len(d.ips)))
	for _, a := range d.ips {
		w.addr(a)
	}
	for _, v := range d.refs {
		w.uvarint(uint64(v))
	}
	for _, row := range d.rec {
		w.uvarint(uint64(row + 1)) // 0 = unresolved
	}
}

// DecodeSnapshot parses a BSCS snapshot and returns a lazy store over
// the decoded columns, validating every column invariant, so a corrupt
// or hostile snapshot yields an error rather than a malformed store.
// This is the fuzzer's entry point. The caller keeps ownership of data:
// nothing in the returned store aliases it.
func DecodeSnapshot(data []byte) (*Store, error) {
	return decodeSnapshot(data, false, false)
}

// decodeSnapshot is the shared decode core. alias permits columns to
// reference data directly (the caller guarantees data is immutable and
// outlives the store); mapped records provenance in SnapshotInfo.
func decodeSnapshot(data []byte, alias, mapped bool) (*Store, error) {
	c, version, crcKey, err := decodeColumns(data, alias)
	if err != nil {
		return nil, err
	}
	validate := true
	if crcKey != "" {
		if _, ok := validatedSnapshots.Load(crcKey); ok {
			validate = false
		}
	}
	s, err := newLazyStore(c, validate)
	if err != nil {
		return nil, err
	}
	if validate && crcKey != "" {
		validatedSnapshots.Store(crcKey, struct{}{})
	}
	s.snapInfo = SnapshotInfo{Version: version, Bytes: int64(len(data)), Mapped: mapped}
	return s, nil
}

// decodeColumns parses either snapshot layout into columns. It returns
// the format version and, for v2, the concatenated frame headers as the
// validation-cache key ("" for v1: without checksums there is no safe
// identity to cache under).
func decodeColumns(data []byte, alias bool) (*Columns, int, string, error) {
	if len(data) < len(snapMagic) {
		return nil, 0, "", ErrSnapshotTruncated
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, "", ErrSnapshotMagic
	}
	r := &snapReader{buf: data[len(snapMagic):], end: int64(len(data)), section: "header"}
	v := r.uvarint()
	if r.err != nil {
		return nil, 0, "", r.err
	}
	switch v {
	case snapVersionV1:
		c, err := decodeColumnsV1(r, alias)
		return c, snapVersionV1, "", err
	case snapVersion:
		c, key, err := decodeColumnsV2(r, alias)
		return c, snapVersion, key, err
	default:
		return nil, 0, "", fmt.Errorf("%w: got %d, want <= %d", ErrSnapshotVersion, v, snapVersion)
	}
}

// decodeColumnsV1 parses the legacy flat layout: the six section
// payloads concatenated with no frame headers.
func decodeColumnsV1(r *snapReader, alias bool) (*Columns, error) {
	c := &Columns{}
	nStr := parseStrings(r, c)
	nTgt := parseTargets(r, c)
	parseBotnets(r, c, nStr)
	nb := parseBots(r, c, nStr)
	nRefs := parseAttacks(r, c, nStr, nTgt, alias)
	parseDense(r, c, nRefs, nb)
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, &SnapshotError{
			Section: r.section,
			Offset:  r.off(),
			Err:     fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(r.buf)),
		}
	}
	return c, nil
}

// decodeColumnsV2 parses the framed layout: six checksummed sections in
// fixed order.
func decodeColumnsV2(r *snapReader, alias bool) (*Columns, string, error) {
	c := &Columns{}
	key := make([]byte, 0, 6*13)
	var nStr, nTgt, nb, nRefs int
	for sec := byte(secStrings); sec <= secDense; sec++ {
		r.section = snapSectionName[sec]
		if len(r.buf) < 13 {
			r.fail()
			return nil, "", r.err
		}
		if r.buf[0] != sec {
			r.failf("section id %d, want %d (%s)", r.buf[0], sec, snapSectionName[sec])
			return nil, "", r.err
		}
		plen := binary.BigEndian.Uint64(r.buf[1:9])
		sum := binary.BigEndian.Uint32(r.buf[9:13])
		key = append(key, r.buf[:13]...)
		r.buf = r.buf[13:]
		if uint64(len(r.buf)) < plen {
			r.fail()
			return nil, "", r.err
		}
		payload := r.buf[:plen]
		if crc32.Checksum(payload, castagnoli) != sum {
			r.failf("%s section checksum mismatch", snapSectionName[sec])
			return nil, "", r.err
		}
		base := r.off()
		r.buf = r.buf[plen:]
		sr := &snapReader{buf: payload, end: base + int64(plen), section: snapSectionName[sec]}
		switch sec {
		case secStrings:
			nStr = parseStrings(sr, c)
		case secTargets:
			nTgt = parseTargets(sr, c)
		case secBotnets:
			parseBotnets(sr, c, nStr)
		case secBots:
			nb = parseBots(sr, c, nStr)
		case secAttacks:
			nRefs = parseAttacks(sr, c, nStr, nTgt, alias)
		case secDense:
			parseDense(sr, c, nRefs, nb)
		}
		if sr.err != nil {
			return nil, "", sr.err
		}
		if len(sr.buf) != 0 {
			return nil, "", &SnapshotError{
				Section: snapSectionName[sec],
				Offset:  sr.off(),
				Err:     fmt.Errorf("%w: %d trailing bytes in %s section", ErrSnapshotCorrupt, len(sr.buf), snapSectionName[sec]),
			}
		}
	}
	if len(r.buf) != 0 {
		return nil, "", &SnapshotError{
			Section: "trailer",
			Offset:  r.off(),
			Err:     fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(r.buf)),
		}
	}
	return c, string(key), nil
}

// The parse* functions consume one section payload each; the v1 decoder
// runs them back to back over one reader, the v2 decoder gives each its
// own framed sub-reader. Each sets the reader's section name so sticky
// errors carry their location.

//botvet:codec decode strings
func parseStrings(r *snapReader, c *Columns) int {
	r.section = snapSectionName[secStrings]
	nStr := r.count(1)
	c.strs = make([]string, nStr)
	for i := range c.strs {
		c.strs[i] = r.str()
	}
	if r.err == nil && (nStr == 0 || c.strs[0] != "") {
		r.failf("string table must start with the empty string")
	}
	return nStr
}

//botvet:codec decode targets
func parseTargets(r *snapReader, c *Columns) int {
	r.section = snapSectionName[secTargets]
	nTgt := r.count(1)
	c.targets = make([]netip.Addr, nTgt)
	for i := range c.targets {
		c.targets[i] = r.addr()
	}
	return nTgt
}

//botvet:codec decode botnets
func parseBotnets(r *snapReader, c *Columns, nStr int) {
	r.section = snapSectionName[secBotnets]
	// Botnet rows cost at least 1 byte in each of 6 columns.
	nn := r.count(6)
	c.nID = make([]uint32, nn)
	for i := range c.nID {
		v := r.uvarint()
		if r.err == nil && v > math.MaxUint32 {
			r.failf("botnet id %d overflows uint32", v)
		}
		c.nID[i] = uint32(v)
	}
	c.nFam = make([]int32, nn)
	for i := range c.nFam {
		c.nFam[i] = r.strID(nStr)
	}
	c.nHash = make([]int32, nn)
	for i := range c.nHash {
		c.nHash[i] = r.strID(nStr)
	}
	c.nCtrl = make([]netip.Addr, nn)
	for i := range c.nCtrl {
		c.nCtrl[i] = r.addr()
	}
	c.nFirst = make([]int64, nn)
	for i := range c.nFirst {
		c.nFirst[i] = r.varint()
	}
	c.nLast = make([]int64, nn)
	for i := range c.nLast {
		c.nLast[i] = r.varint()
	}
}

//botvet:codec decode bots
func parseBots(r *snapReader, c *Columns, nStr int) int {
	r.section = snapSectionName[secBots]
	// Bot rows cost at least 1+1+1+1+1+8+8+1 = 22 bytes across columns.
	nb := r.count(22)
	c.bIP = make([]netip.Addr, nb)
	for i := range c.bIP {
		c.bIP[i] = r.addr()
	}
	c.bASN = make([]int64, nb)
	for i := range c.bASN {
		c.bASN[i] = r.varint()
	}
	c.bCC = make([]int32, nb)
	for i := range c.bCC {
		c.bCC[i] = r.strID(nStr)
	}
	c.bCity = make([]int32, nb)
	for i := range c.bCity {
		c.bCity[i] = r.strID(nStr)
	}
	c.bOrg = make([]int32, nb)
	for i := range c.bOrg {
		c.bOrg[i] = r.strID(nStr)
	}
	c.bLat = make([]float64, nb)
	for i := range c.bLat {
		c.bLat[i] = r.f64()
	}
	c.bLon = make([]float64, nb)
	for i := range c.bLon {
		c.bLon[i] = r.f64()
	}
	c.bLast = make([]int64, nb)
	prev := int64(0)
	for i := range c.bLast {
		prev += r.varint()
		c.bLast[i] = prev
	}
	return nb
}

//botvet:codec decode attacks
func parseAttacks(r *snapReader, c *Columns, nStr, nTgt int, alias bool) int {
	r.section = snapSectionName[secAttacks]
	// Attack rows cost at least 1 byte in each of 12 varint/byte columns
	// plus 8 each for the two float columns: 28 bytes.
	n := r.count(28)
	// The references themselves live in the dense section, so nRefs is
	// only sanity-bounded here (the span sum must hit it exactly below,
	// and the dense parser re-bounds it against its own payload before
	// allocating).
	nRefs64 := r.uvarint()
	if r.err == nil && nRefs64 > math.MaxInt64/4 {
		r.failf("reference count %d implausibly large", nRefs64)
	}
	nRefs := int(nRefs64)
	c.aID = make([]uint64, n)
	for i := range c.aID {
		c.aID[i] = r.uvarint()
	}
	c.aBotnet = make([]uint32, n)
	for i := range c.aBotnet {
		v := r.uvarint()
		if r.err == nil && v > math.MaxUint32 {
			r.failf("attack botnet id %d overflows uint32", v)
		}
		c.aBotnet[i] = uint32(v)
	}
	c.aFam = make([]int32, n)
	for i := range c.aFam {
		c.aFam[i] = r.strID(nStr)
	}
	if r.err == nil && len(r.buf) < n {
		r.fail()
	}
	if r.err == nil {
		if alias {
			// The category column is stored as raw bytes, so over a mapped
			// snapshot it can alias the file instead of being copied; the
			// columns pin the mapping (Columns.mmap).
			c.aCat = r.buf[:n:n]
		} else {
			c.aCat = make([]uint8, n)
			copy(c.aCat, r.buf[:n])
		}
		r.buf = r.buf[n:]
	} else {
		c.aCat = make([]uint8, n)
	}
	c.aTgt = make([]int32, n)
	for i := range c.aTgt {
		v := r.uvarint()
		if r.err == nil && v >= uint64(nTgt) {
			r.failf("attack target id %d out of range (%d targets)", v, nTgt)
		}
		c.aTgt[i] = int32(v)
	}
	c.aStart = make([]int64, n)
	prev := int64(0)
	for i := range c.aStart {
		if i == 0 {
			prev = r.varint()
		} else {
			prev += int64(r.uvarint())
		}
		c.aStart[i] = prev
	}
	c.aEnd = make([]int64, n)
	for i := range c.aEnd {
		c.aEnd[i] = c.aStart[i] + int64(r.uvarint())
	}
	c.aASN = make([]int64, n)
	for i := range c.aASN {
		c.aASN[i] = r.varint()
	}
	c.aCC = make([]int32, n)
	for i := range c.aCC {
		c.aCC[i] = r.strID(nStr)
	}
	c.aCity = make([]int32, n)
	for i := range c.aCity {
		c.aCity[i] = r.strID(nStr)
	}
	c.aOrg = make([]int32, n)
	for i := range c.aOrg {
		c.aOrg[i] = r.strID(nStr)
	}
	c.aLat = make([]float64, n)
	for i := range c.aLat {
		c.aLat[i] = r.f64()
	}
	c.aLon = make([]float64, n)
	for i := range c.aLon {
		c.aLon[i] = r.f64()
	}
	c.aOff = make([]int64, n+1)
	off := int64(0)
	for i := 0; i < n; i++ {
		c.aOff[i] = off
		off += int64(r.uvarint())
		if r.err == nil && off > int64(nRefs) {
			r.failf("attack spans exceed declared reference count %d", nRefs)
		}
	}
	c.aOff[n] = off
	if r.err == nil && off != int64(nRefs) {
		r.failf("attack spans cover %d references, header declares %d", off, nRefs)
	}
	return nRefs
}

//botvet:codec decode dense
func parseDense(r *snapReader, c *Columns, nRefs, nb int) {
	r.section = snapSectionName[secDense]
	nDense := r.count(2)
	ips := make([]netip.Addr, nDense)
	for i := range ips {
		ips[i] = r.addr()
	}
	// Every reference costs at least 1 byte in the refs column, which
	// bounds the allocation below even though nRefs was declared back in
	// the attacks section.
	if r.err == nil && uint64(nRefs) > uint64(len(r.buf)) {
		r.fail()
	}
	if r.err != nil {
		return
	}
	refs := make([]int32, nRefs)
	nextID := int32(0)
	for i := range refs {
		v := r.uvarint()
		if r.err != nil {
			break
		}
		if v >= uint64(nDense) {
			r.failf("dense ref %d out of range (%d ids)", v, nDense)
			break
		}
		id := int32(v)
		// Dense ids are canonical: id k must first appear only after ids
		// 0..k-1 have, which pins the numbering to first appearance in
		// attack order — the same numbering the record path derives.
		if id > nextID {
			r.failf("dense id %d appears before id %d", id, nextID)
			break
		}
		if id == nextID {
			nextID++
		}
		refs[i] = id
	}
	if r.err == nil && nextID != int32(nDense) {
		r.failf("dense table has %d ids but only %d are referenced", nDense, nextID)
	}
	rec := make([]int32, nDense)
	for i := range rec {
		v := r.uvarint()
		if r.err != nil {
			break
		}
		if v == 0 {
			rec[i] = -1
			continue
		}
		if v-1 >= uint64(nb) {
			r.failf("dense record row %d out of range (%d bots)", v-1, nb)
			break
		}
		rec[i] = int32(v - 1)
	}
	if r.err != nil {
		return
	}
	c.dense = &denseBots{ips: ips, refs: refs, rec: rec}
}
