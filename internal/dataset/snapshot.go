package dataset

// snapshot.go is the versioned binary columnar snapshot codec ("BSCS").
// A snapshot serializes the columnar core (columns.go) — interned string
// table, attack/bot/botnet columns, and the dense source-IP layer — so a
// generated workload reloads in seconds instead of being regenerated and
// re-indexed. The encoding reuses the discipline of internal/cluster's
// BSCW wire codec: unsigned varints everywhere, zigzag varints for
// signed values, IEEE-754 bit patterns for floats (bit-exact round
// trips), length-prefixed strings, tagged 0/4/16-byte addresses, and a
// sticky-error reader whose collection counts are sanity-checked against
// the bytes remaining so a corrupt length cannot force an arbitrary
// allocation.
//
// Format versioning rules: the magic never changes; the version byte
// bumps on any layout change (there is no in-place migration — a
// snapshot is a cache of a reproducible workload, so "regenerate and
// re-snapshot" is always safe); decoders reject unknown versions rather
// than guessing. Within a version, decode is strict: every interned-id
// and row reference is bounds-checked, attack rows must arrive sorted by
// (Start, ID) with unique ids, dense ids must be numbered in first-
// appearance order, and trailing bytes are an error. A decoded store
// therefore satisfies exactly the invariants NewStore enforces.
//
// Layout (version 1), all sections in one stream:
//
//	"BSCS" | version uvarint
//	strings:  count | (len | bytes)*
//	targets:  count | addr*
//	botnets:  count | id* | fam* | hash* | ctrl* | first* | last*
//	bots:     count | ip* | asn* | cc* | city* | org* | lat* | lon* | lastΔ*
//	attacks:  count | nRefs | id* | botnet* | fam* | cat* | tgt* |
//	          startΔ* | endΔ* | asn* | cc* | city* | org* | lat* | lon* | span*
//	dense:    count | ip* | ref* | rec*
//
// Sections are column-major: each column is one contiguous run, which
// keeps related varints adjacent. Attack starts are deltas from the
// previous row (the sort makes them small and non-negative), ends are
// deltas from their own start, bot LastActive values are zigzag deltas
// from the previous row (clustered inside the paper window).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/netip"
)

// Snapshot codec constants.
const (
	snapMagic   = "BSCS"
	snapVersion = 1
)

// Snapshot codec errors.
var (
	ErrSnapshotMagic     = errors.New("dataset: bad snapshot magic")
	ErrSnapshotVersion   = errors.New("dataset: unsupported snapshot version")
	ErrSnapshotTruncated = errors.New("dataset: truncated snapshot")
	ErrSnapshotCorrupt   = errors.New("dataset: corrupt snapshot")
)

// snapWriter appends primitives to a growing buffer, mirroring the wire
// codec's value discipline.
type snapWriter struct {
	buf []byte
}

func (w *snapWriter) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *snapWriter) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *snapWriter) f64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *snapWriter) str(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// addr encodes a netip.Addr as a 1-byte tag (0 = zero value, 4, or 16)
// plus raw bytes. Unlike attack targets, bot and controller addresses
// may legitimately be the zero Addr, which As16 would silently turn into
// IPv6 "::" — the 0 tag preserves it.
func (w *snapWriter) addr(a netip.Addr) {
	if !a.IsValid() {
		w.buf = append(w.buf, 0)
		return
	}
	if a.Is4() {
		b := a.As4()
		w.buf = append(w.buf, 4)
		w.buf = append(w.buf, b[:]...)
		return
	}
	b := a.As16()
	w.buf = append(w.buf, 16)
	w.buf = append(w.buf, b[:]...)
}

// snapReader consumes primitives with a sticky error, so decode paths
// read linearly and check once per section.
type snapReader struct {
	buf []byte
	err error
}

func (r *snapReader) fail() {
	if r.err == nil {
		r.err = ErrSnapshotTruncated
	}
}

func (r *snapReader) failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrSnapshotCorrupt}, args...)...)
	}
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *snapReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *snapReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v
}

func (r *snapReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.fail()
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *snapReader) addr() netip.Addr {
	if r.err != nil {
		return netip.Addr{}
	}
	if len(r.buf) < 1 {
		r.fail()
		return netip.Addr{}
	}
	n := int(r.buf[0])
	r.buf = r.buf[1:]
	switch n {
	case 0:
		return netip.Addr{}
	case 4, 16:
	default:
		r.fail()
		return netip.Addr{}
	}
	if len(r.buf) < n {
		r.fail()
		return netip.Addr{}
	}
	var a netip.Addr
	if n == 4 {
		a = netip.AddrFrom4([4]byte(r.buf[:4]))
	} else {
		a = netip.AddrFrom16([16]byte(r.buf[:16]))
	}
	r.buf = r.buf[n:]
	return a
}

// count reads a collection length and sanity-checks it against the bytes
// remaining (every element costs at least minBytes somewhere later in
// the stream), so a corrupt count cannot force an arbitrary allocation.
func (r *snapReader) count(minBytes int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(len(r.buf)/minBytes) {
		r.fail()
		return 0
	}
	return int(n)
}

// strID reads an interned string id and bounds-checks it.
func (r *snapReader) strID(nStr int) int32 {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v >= uint64(nStr) {
		r.failf("string id %d out of range (%d interned)", v, nStr)
		return 0
	}
	return int32(v)
}

// WriteSnapshot writes the store's BSCS snapshot to w.
func WriteSnapshot(w io.Writer, s *Store) error {
	_, err := w.Write(EncodeSnapshot(s))
	return err
}

// ReadSnapshot reads one BSCS snapshot from r and materializes the
// store.
func ReadSnapshot(r io.Reader) (*Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}

// EncodeSnapshot serializes the store's columnar form (deriving it from
// the records first if this store was never columnized).
func EncodeSnapshot(s *Store) []byte {
	c := s.Cols()
	d := s.denseBots()
	strBytes := 0
	for _, str := range c.strs {
		strBytes += len(str) + 2
	}
	hint := 64 + strBytes +
		21*(len(c.targets)+len(d.ips)+len(c.nID)) +
		64*len(c.bIP) + 80*len(c.aID) + 5*len(c.refIPs) + 2*len(d.rec)
	w := &snapWriter{buf: make([]byte, 0, hint)}
	w.buf = append(w.buf, snapMagic...)
	w.uvarint(snapVersion)

	w.uvarint(uint64(len(c.strs)))
	for _, str := range c.strs {
		w.str(str)
	}

	w.uvarint(uint64(len(c.targets)))
	for _, a := range c.targets {
		w.addr(a)
	}

	w.uvarint(uint64(len(c.nID)))
	for _, v := range c.nID {
		w.uvarint(uint64(v))
	}
	for _, v := range c.nFam {
		w.uvarint(uint64(v))
	}
	for _, v := range c.nHash {
		w.uvarint(uint64(v))
	}
	for _, a := range c.nCtrl {
		w.addr(a)
	}
	for _, v := range c.nFirst {
		w.varint(v)
	}
	for _, v := range c.nLast {
		w.varint(v)
	}

	w.uvarint(uint64(len(c.bIP)))
	for _, a := range c.bIP {
		w.addr(a)
	}
	for _, v := range c.bASN {
		w.varint(v)
	}
	for _, v := range c.bCC {
		w.uvarint(uint64(v))
	}
	for _, v := range c.bCity {
		w.uvarint(uint64(v))
	}
	for _, v := range c.bOrg {
		w.uvarint(uint64(v))
	}
	for _, v := range c.bLat {
		w.f64(v)
	}
	for _, v := range c.bLon {
		w.f64(v)
	}
	prev := int64(0)
	for _, v := range c.bLast {
		w.varint(v - prev)
		prev = v
	}

	n := len(c.aID)
	w.uvarint(uint64(n))
	w.uvarint(uint64(len(c.refIPs)))
	for _, v := range c.aID {
		w.uvarint(v)
	}
	for _, v := range c.aBotnet {
		w.uvarint(uint64(v))
	}
	for _, v := range c.aFam {
		w.uvarint(uint64(v))
	}
	w.buf = append(w.buf, c.aCat...)
	for _, v := range c.aTgt {
		w.uvarint(uint64(v))
	}
	prev = 0
	for i, v := range c.aStart {
		if i == 0 {
			w.varint(v)
		} else {
			w.uvarint(uint64(v - prev)) // sorted: non-negative
		}
		prev = v
	}
	for i, v := range c.aEnd {
		w.uvarint(uint64(v - c.aStart[i])) // validated: End >= Start
	}
	for _, v := range c.aASN {
		w.varint(v)
	}
	for _, v := range c.aCC {
		w.uvarint(uint64(v))
	}
	for _, v := range c.aCity {
		w.uvarint(uint64(v))
	}
	for _, v := range c.aOrg {
		w.uvarint(uint64(v))
	}
	for _, v := range c.aLat {
		w.f64(v)
	}
	for _, v := range c.aLon {
		w.f64(v)
	}
	for i := 0; i < n; i++ {
		w.uvarint(uint64(c.aOff[i+1] - c.aOff[i]))
	}

	w.uvarint(uint64(len(d.ips)))
	for _, a := range d.ips {
		w.addr(a)
	}
	for _, v := range d.refs {
		w.uvarint(uint64(v))
	}
	for _, row := range d.rec {
		w.uvarint(uint64(row + 1)) // 0 = unresolved
	}
	return w.buf
}

// DecodeSnapshot parses a BSCS snapshot and materializes the store,
// re-validating every record and invariant, so a corrupt or hostile
// snapshot yields an error rather than a malformed store. This is the
// fuzzer's entry point.
func DecodeSnapshot(data []byte) (*Store, error) {
	c, err := decodeColumns(data)
	if err != nil {
		return nil, err
	}
	return storeFromColumns(c)
}

func decodeColumns(data []byte) (*Columns, error) {
	if len(data) < len(snapMagic) {
		return nil, ErrSnapshotTruncated
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, ErrSnapshotMagic
	}
	r := &snapReader{buf: data[len(snapMagic):]}
	if v := r.uvarint(); r.err == nil && v != snapVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrSnapshotVersion, v, snapVersion)
	}

	c := &Columns{}
	nStr := r.count(1)
	c.strs = make([]string, nStr)
	for i := range c.strs {
		c.strs[i] = r.str()
	}
	if r.err == nil && (nStr == 0 || c.strs[0] != "") {
		r.failf("string table must start with the empty string")
	}

	nTgt := r.count(1)
	c.targets = make([]netip.Addr, nTgt)
	for i := range c.targets {
		c.targets[i] = r.addr()
	}

	// Botnet rows cost at least 1 byte in each of 6 columns.
	nn := r.count(6)
	c.nID = make([]uint32, nn)
	for i := range c.nID {
		v := r.uvarint()
		if r.err == nil && v > math.MaxUint32 {
			r.failf("botnet id %d overflows uint32", v)
		}
		c.nID[i] = uint32(v)
	}
	c.nFam = make([]int32, nn)
	for i := range c.nFam {
		c.nFam[i] = r.strID(nStr)
	}
	c.nHash = make([]int32, nn)
	for i := range c.nHash {
		c.nHash[i] = r.strID(nStr)
	}
	c.nCtrl = make([]netip.Addr, nn)
	for i := range c.nCtrl {
		c.nCtrl[i] = r.addr()
	}
	c.nFirst = make([]int64, nn)
	for i := range c.nFirst {
		c.nFirst[i] = r.varint()
	}
	c.nLast = make([]int64, nn)
	for i := range c.nLast {
		c.nLast[i] = r.varint()
	}

	// Bot rows cost at least 1+1+1+1+1+8+8+1 = 22 bytes across columns.
	nb := r.count(22)
	c.bIP = make([]netip.Addr, nb)
	for i := range c.bIP {
		c.bIP[i] = r.addr()
	}
	c.bASN = make([]int64, nb)
	for i := range c.bASN {
		c.bASN[i] = r.varint()
	}
	c.bCC = make([]int32, nb)
	for i := range c.bCC {
		c.bCC[i] = r.strID(nStr)
	}
	c.bCity = make([]int32, nb)
	for i := range c.bCity {
		c.bCity[i] = r.strID(nStr)
	}
	c.bOrg = make([]int32, nb)
	for i := range c.bOrg {
		c.bOrg[i] = r.strID(nStr)
	}
	c.bLat = make([]float64, nb)
	for i := range c.bLat {
		c.bLat[i] = r.f64()
	}
	c.bLon = make([]float64, nb)
	for i := range c.bLon {
		c.bLon[i] = r.f64()
	}
	c.bLast = make([]int64, nb)
	prev := int64(0)
	for i := range c.bLast {
		prev += r.varint()
		c.bLast[i] = prev
	}

	// Attack rows cost at least 1 byte in each of 12 varint/byte columns
	// plus 8 each for the two float columns: 28 bytes.
	n := r.count(28)
	nRefs := r.count(1)
	c.aID = make([]uint64, n)
	for i := range c.aID {
		c.aID[i] = r.uvarint()
	}
	c.aBotnet = make([]uint32, n)
	for i := range c.aBotnet {
		v := r.uvarint()
		if r.err == nil && v > math.MaxUint32 {
			r.failf("attack botnet id %d overflows uint32", v)
		}
		c.aBotnet[i] = uint32(v)
	}
	c.aFam = make([]int32, n)
	for i := range c.aFam {
		c.aFam[i] = r.strID(nStr)
	}
	if r.err == nil && len(r.buf) < n {
		r.fail()
	}
	c.aCat = make([]uint8, n)
	if r.err == nil {
		copy(c.aCat, r.buf[:n])
		r.buf = r.buf[n:]
	}
	c.aTgt = make([]int32, n)
	for i := range c.aTgt {
		v := r.uvarint()
		if r.err == nil && v >= uint64(nTgt) {
			r.failf("attack target id %d out of range (%d targets)", v, nTgt)
		}
		c.aTgt[i] = int32(v)
	}
	c.aStart = make([]int64, n)
	prev = 0
	for i := range c.aStart {
		if i == 0 {
			prev = r.varint()
		} else {
			prev += int64(r.uvarint())
		}
		c.aStart[i] = prev
	}
	c.aEnd = make([]int64, n)
	for i := range c.aEnd {
		c.aEnd[i] = c.aStart[i] + int64(r.uvarint())
	}
	c.aASN = make([]int64, n)
	for i := range c.aASN {
		c.aASN[i] = r.varint()
	}
	c.aCC = make([]int32, n)
	for i := range c.aCC {
		c.aCC[i] = r.strID(nStr)
	}
	c.aCity = make([]int32, n)
	for i := range c.aCity {
		c.aCity[i] = r.strID(nStr)
	}
	c.aOrg = make([]int32, n)
	for i := range c.aOrg {
		c.aOrg[i] = r.strID(nStr)
	}
	c.aLat = make([]float64, n)
	for i := range c.aLat {
		c.aLat[i] = r.f64()
	}
	c.aLon = make([]float64, n)
	for i := range c.aLon {
		c.aLon[i] = r.f64()
	}
	c.aOff = make([]int64, n+1)
	off := int64(0)
	for i := 0; i < n; i++ {
		c.aOff[i] = off
		off += int64(r.uvarint())
		if r.err == nil && off > int64(nRefs) {
			r.failf("attack spans exceed declared reference count %d", nRefs)
		}
	}
	c.aOff[n] = off
	if r.err == nil && off != int64(nRefs) {
		r.failf("attack spans cover %d references, header declares %d", off, nRefs)
	}

	nDense := r.count(2)
	ips := make([]netip.Addr, nDense)
	for i := range ips {
		ips[i] = r.addr()
	}
	refs := make([]int32, nRefs)
	nextID := int32(0)
	for i := range refs {
		v := r.uvarint()
		if r.err != nil {
			break
		}
		if v >= uint64(nDense) {
			r.failf("dense ref %d out of range (%d ids)", v, nDense)
			break
		}
		id := int32(v)
		// Dense ids are canonical: id k must first appear only after ids
		// 0..k-1 have, which pins the numbering to first appearance in
		// attack order — the same numbering the record path derives.
		if id > nextID {
			r.failf("dense id %d appears before id %d", id, nextID)
			break
		}
		if id == nextID {
			nextID++
		}
		refs[i] = id
	}
	if r.err == nil && nextID != int32(nDense) {
		r.failf("dense table has %d ids but only %d are referenced", nDense, nextID)
	}
	rec := make([]int32, nDense)
	for i := range rec {
		v := r.uvarint()
		if r.err != nil {
			break
		}
		if v == 0 {
			rec[i] = -1
			continue
		}
		if v-1 >= uint64(nb) {
			r.failf("dense record row %d out of range (%d bots)", v-1, nb)
			break
		}
		rec[i] = int32(v - 1)
	}

	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(r.buf))
	}

	c.refIPs = make([]netip.Addr, nRefs)
	for i, id := range refs {
		c.refIPs[i] = ips[id]
	}
	c.dense = &denseBots{ips: ips, refs: refs, rec: rec}
	return c, nil
}
