package dataset

import (
	"fmt"
	"time"
)

// Filter selects a sub-workload. Zero-valued fields select everything.
type Filter struct {
	// Families restricts attacks to these families.
	Families []Family
	// Categories restricts attacks to these protocol categories.
	Categories []Category
	// From/To restrict attacks by start time to [From, To).
	From time.Time
	To   time.Time
	// TargetCountry restricts to one victim country (ISO code).
	TargetCountry string
	// MinMagnitude drops attacks with fewer source IPs.
	MinMagnitude int
}

// match reports whether the attack passes the filter.
func (f *Filter) match(a *Attack) bool {
	if len(f.Families) > 0 {
		ok := false
		for _, fam := range f.Families {
			if a.Family == fam {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Categories) > 0 {
		ok := false
		for _, c := range f.Categories {
			if a.Category == c {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if !f.From.IsZero() && a.Start.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !a.Start.Before(f.To) {
		return false
	}
	if f.TargetCountry != "" && a.TargetCountry != f.TargetCountry {
		return false
	}
	if f.MinMagnitude > 0 && a.Magnitude() < f.MinMagnitude {
		return false
	}
	return true
}

// Subset builds a new Store containing the attacks that pass the filter,
// carrying over the botnet records and the Botlist entries of bots that
// still appear in at least one kept attack. It returns an error when the
// filter keeps nothing — an empty analysis is almost always a mistake.
func (s *Store) Subset(f Filter) (*Store, error) {
	s.records()
	var kept []*Attack
	for _, a := range s.attacks {
		if f.match(a) {
			kept = append(kept, a)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("dataset: filter keeps no attacks")
	}
	var botnets []*Botnet
	seenBotnets := make(map[BotnetID]bool)
	var bots []*Bot
	seenBots := make(map[string]bool)
	for _, a := range kept {
		if !seenBotnets[a.BotnetID] {
			seenBotnets[a.BotnetID] = true
			if b, ok := s.botnets[a.BotnetID]; ok {
				botnets = append(botnets, b)
			}
		}
		for _, ip := range a.BotIPs {
			key := ip.String()
			if seenBots[key] {
				continue
			}
			seenBots[key] = true
			if b, ok := s.Bot(ip); ok {
				bots = append(bots, b)
			}
		}
	}
	return NewStore(kept, botnets, bots)
}
