package dataset

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// csvHeader is the column layout of the attack CSV format, mirroring the
// field names of Table I (with `org` added for the organization-level
// analysis and `family` added for attribution).
var csvHeader = []string{
	"ddos_id", "botnet_id", "family", "category", "target_ip",
	"timestamp", "end_time", "botnet_ips", "asn", "cc", "city", "org",
	"latitude", "longitude",
}

// WriteCSV encodes attacks to w in the Table I CSV layout. Bot IPs are
// semicolon-joined inside one column.
func WriteCSV(w io.Writer, attacks []*Attack) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for _, a := range attacks {
		ips := make([]string, len(a.BotIPs))
		for i, ip := range a.BotIPs {
			ips[i] = ip.String()
		}
		row[0] = strconv.FormatUint(uint64(a.ID), 10)
		row[1] = strconv.FormatUint(uint64(a.BotnetID), 10)
		row[2] = string(a.Family)
		row[3] = a.Category.String()
		row[4] = a.TargetIP.String()
		row[5] = a.Start.UTC().Format(time.RFC3339)
		row[6] = a.End.UTC().Format(time.RFC3339)
		row[7] = strings.Join(ips, ";")
		row[8] = strconv.Itoa(a.TargetASN)
		row[9] = a.TargetCountry
		row[10] = a.TargetCity
		row[11] = a.TargetOrg
		row[12] = strconv.FormatFloat(a.TargetLat, 'f', 6, 64)
		row[13] = strconv.FormatFloat(a.TargetLon, 'f', 6, 64)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv row for attack %d: %w", a.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ErrStop, returned from a Decode* callback, stops decoding early without
// error — the streaming analogue of breaking out of a range loop.
var ErrStop = errors.New("dataset: stop decoding")

// DecodeCSV streams attacks written by WriteCSV, invoking fn for each
// record as it is parsed, without materializing the full slice. A non-nil
// error from fn aborts decoding and is returned as-is (ErrStop aborts and
// returns nil).
func DecodeCSV(r io.Reader, fn func(*Attack) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("dataset: read csv header: %w", err)
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return fmt.Errorf("dataset: csv header mismatch at column %d: got %q, want %q", i, header[i], col)
		}
	}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("dataset: read csv line %d: %w", line, err)
		}
		a, err := parseCSVRow(row)
		if err != nil {
			return fmt.Errorf("dataset: csv line %d: %w", line, err)
		}
		if err := fn(a); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
}

// ReadCSV decodes attacks written by WriteCSV.
func ReadCSV(r io.Reader) ([]*Attack, error) {
	var attacks []*Attack
	err := DecodeCSV(r, func(a *Attack) error {
		attacks = append(attacks, a)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return attacks, nil
}

func parseCSVRow(row []string) (*Attack, error) {
	id, err := strconv.ParseUint(row[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("ddos_id: %w", err)
	}
	botnetID, err := strconv.ParseUint(row[1], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("botnet_id: %w", err)
	}
	cat, err := ParseCategory(row[3])
	if err != nil {
		return nil, err
	}
	target, err := netip.ParseAddr(row[4])
	if err != nil {
		return nil, fmt.Errorf("target_ip: %w", err)
	}
	start, err := time.Parse(time.RFC3339, row[5])
	if err != nil {
		return nil, fmt.Errorf("timestamp: %w", err)
	}
	end, err := time.Parse(time.RFC3339, row[6])
	if err != nil {
		return nil, fmt.Errorf("end_time: %w", err)
	}
	var botIPs []netip.Addr
	if row[7] != "" {
		parts := strings.Split(row[7], ";")
		botIPs = make([]netip.Addr, 0, len(parts))
		for _, p := range parts {
			ip, ipErr := netip.ParseAddr(p)
			if ipErr != nil {
				return nil, fmt.Errorf("botnet_ips: %w", ipErr)
			}
			botIPs = append(botIPs, ip)
		}
	}
	asn, err := strconv.Atoi(row[8])
	if err != nil {
		return nil, fmt.Errorf("asn: %w", err)
	}
	lat, err := strconv.ParseFloat(row[12], 64)
	if err != nil {
		return nil, fmt.Errorf("latitude: %w", err)
	}
	lon, err := strconv.ParseFloat(row[13], 64)
	if err != nil {
		return nil, fmt.Errorf("longitude: %w", err)
	}
	return &Attack{
		ID:            DDoSID(id),
		BotnetID:      BotnetID(botnetID),
		Family:        Family(row[2]),
		Category:      cat,
		TargetIP:      target,
		Start:         start,
		End:           end,
		BotIPs:        botIPs,
		TargetASN:     asn,
		TargetCountry: row[9],
		TargetCity:    row[10],
		TargetOrg:     row[11],
		TargetLat:     lat,
		TargetLon:     lon,
	}, nil
}

// attackJSON is the stable wire form of an Attack for JSON-lines export.
type attackJSON struct {
	ID        uint64   `json:"ddos_id"`
	BotnetID  uint32   `json:"botnet_id"`
	Family    string   `json:"family"`
	Category  string   `json:"category"`
	TargetIP  string   `json:"target_ip"`
	Timestamp string   `json:"timestamp"`
	EndTime   string   `json:"end_time"`
	BotIPs    []string `json:"botnet_ips"`
	ASN       int      `json:"asn"`
	CC        string   `json:"cc"`
	City      string   `json:"city"`
	Org       string   `json:"org"`
	Latitude  float64  `json:"latitude"`
	Longitude float64  `json:"longitude"`
}

// WriteJSONL encodes attacks as one JSON object per line.
func WriteJSONL(w io.Writer, attacks []*Attack) error {
	enc := json.NewEncoder(w)
	for _, a := range attacks {
		ips := make([]string, len(a.BotIPs))
		for i, ip := range a.BotIPs {
			ips[i] = ip.String()
		}
		rec := attackJSON{
			ID:        uint64(a.ID),
			BotnetID:  uint32(a.BotnetID),
			Family:    string(a.Family),
			Category:  a.Category.String(),
			TargetIP:  a.TargetIP.String(),
			Timestamp: a.Start.UTC().Format(time.RFC3339),
			EndTime:   a.End.UTC().Format(time.RFC3339),
			BotIPs:    ips,
			ASN:       a.TargetASN,
			CC:        a.TargetCountry,
			City:      a.TargetCity,
			Org:       a.TargetOrg,
			Latitude:  a.TargetLat,
			Longitude: a.TargetLon,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("dataset: encode attack %d: %w", a.ID, err)
		}
	}
	return nil
}

// DecodeJSONL streams attacks written by WriteJSONL, invoking fn for each
// record as it is parsed, without materializing the full slice — the
// ingestion path for live feeds of arbitrary length. A non-nil error from
// fn aborts decoding and is returned as-is (ErrStop aborts and returns
// nil).
func DecodeJSONL(r io.Reader, fn func(*Attack) error) error {
	dec := json.NewDecoder(r)
	for n := 1; ; n++ {
		var rec attackJSON
		if err := dec.Decode(&rec); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("dataset: decode jsonl record %d: %w", n, err)
		}
		a, err := rec.attack()
		if err != nil {
			return fmt.Errorf("dataset: jsonl record %d: %w", n, err)
		}
		if err := fn(a); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
}

// attack converts the wire form back into an Attack.
func (rec *attackJSON) attack() (*Attack, error) {
	cat, err := ParseCategory(rec.Category)
	if err != nil {
		return nil, err
	}
	target, err := netip.ParseAddr(rec.TargetIP)
	if err != nil {
		return nil, fmt.Errorf("target_ip: %w", err)
	}
	start, err := time.Parse(time.RFC3339, rec.Timestamp)
	if err != nil {
		return nil, fmt.Errorf("timestamp: %w", err)
	}
	end, err := time.Parse(time.RFC3339, rec.EndTime)
	if err != nil {
		return nil, fmt.Errorf("end_time: %w", err)
	}
	botIPs := make([]netip.Addr, 0, len(rec.BotIPs))
	for _, s := range rec.BotIPs {
		ip, ipErr := netip.ParseAddr(s)
		if ipErr != nil {
			return nil, fmt.Errorf("botnet_ips: %w", ipErr)
		}
		botIPs = append(botIPs, ip)
	}
	return &Attack{
		ID:            DDoSID(rec.ID),
		BotnetID:      BotnetID(rec.BotnetID),
		Family:        Family(rec.Family),
		Category:      cat,
		TargetIP:      target,
		Start:         start,
		End:           end,
		BotIPs:        botIPs,
		TargetASN:     rec.ASN,
		TargetCountry: rec.CC,
		TargetCity:    rec.City,
		TargetOrg:     rec.Org,
		TargetLat:     rec.Latitude,
		TargetLon:     rec.Longitude,
	}, nil
}

// ReadJSONL decodes attacks written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]*Attack, error) {
	var attacks []*Attack
	err := DecodeJSONL(r, func(a *Attack) error {
		attacks = append(attacks, a)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return attacks, nil
}
