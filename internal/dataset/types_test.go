package dataset

import (
	"net/netip"
	"testing"
	"time"
)

var t0 = time.Date(2012, 8, 29, 0, 0, 0, 0, time.UTC)

// validAttack builds a minimal valid attack for mutation in tests.
func validAttack(id DDoSID) *Attack {
	return &Attack{
		ID:            id,
		BotnetID:      1,
		Family:        Dirtjumper,
		Category:      CategoryHTTP,
		TargetIP:      netip.MustParseAddr("5.5.5.5"),
		Start:         t0,
		End:           t0.Add(time.Hour),
		BotIPs:        []netip.Addr{netip.MustParseAddr("6.6.6.6")},
		TargetASN:     1234,
		TargetCountry: "RU",
		TargetCity:    "Moscow",
		TargetOrg:     "Moscow Hosting 1",
		TargetLat:     55.76,
		TargetLon:     37.62,
	}
}

func TestCategoryString(t *testing.T) {
	tests := []struct {
		cat  Category
		want string
	}{
		{cat: CategoryHTTP, want: "HTTP"},
		{cat: CategoryTCP, want: "TCP"},
		{cat: CategoryUDP, want: "UDP"},
		{cat: CategoryUndetermined, want: "UNDETERMINED"},
		{cat: CategoryICMP, want: "ICMP"},
		{cat: CategoryUnknown, want: "UNKNOWN"},
		{cat: CategorySYN, want: "SYN"},
		{cat: Category(0), want: "Category(0)"},
	}
	for _, tt := range tests {
		if got := tt.cat.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.cat), got, tt.want)
		}
	}
}

func TestParseCategoryRoundTrip(t *testing.T) {
	for _, c := range Categories {
		got, err := ParseCategory(c.String())
		if err != nil {
			t.Errorf("ParseCategory(%q): %v", c.String(), err)
			continue
		}
		if got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
	if _, err := ParseCategory("BOGUS"); err == nil {
		t.Error("ParseCategory(BOGUS) succeeded, want error")
	}
}

func TestConnectionOriented(t *testing.T) {
	oriented := []Category{CategoryHTTP, CategoryTCP, CategorySYN}
	for _, c := range oriented {
		if !c.ConnectionOriented() {
			t.Errorf("%v should be connection oriented", c)
		}
	}
	for _, c := range []Category{CategoryUDP, CategoryICMP, CategoryUnknown, CategoryUndetermined} {
		if c.ConnectionOriented() {
			t.Errorf("%v should not be connection oriented", c)
		}
	}
}

func TestFamilies(t *testing.T) {
	if len(ActiveFamilies) != 10 {
		t.Errorf("len(ActiveFamilies) = %d, want 10 (the paper's active set)", len(ActiveFamilies))
	}
	if got := len(AllFamilies()); got != 23 {
		t.Errorf("len(AllFamilies) = %d, want 23 (the paper's tracked set)", got)
	}
	if !Dirtjumper.IsActive() {
		t.Error("dirtjumper must be active")
	}
	if Family("zemra").IsActive() {
		t.Error("zemra must be inactive")
	}
	seen := make(map[Family]bool)
	for _, f := range AllFamilies() {
		if seen[f] {
			t.Errorf("duplicate family %q", f)
		}
		seen[f] = true
	}
}

func TestAttackDurationAndMagnitude(t *testing.T) {
	a := validAttack(1)
	if got := a.Duration(); got != time.Hour {
		t.Errorf("Duration = %v, want 1h", got)
	}
	if got := a.Magnitude(); got != 1 {
		t.Errorf("Magnitude = %d, want 1", got)
	}
}

func TestAttackValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Attack)
	}{
		{name: "zero id", mutate: func(a *Attack) { a.ID = 0 }},
		{name: "zero botnet", mutate: func(a *Attack) { a.BotnetID = 0 }},
		{name: "empty family", mutate: func(a *Attack) { a.Family = "" }},
		{name: "bad category", mutate: func(a *Attack) { a.Category = Category(42) }},
		{name: "invalid target", mutate: func(a *Attack) { a.TargetIP = netip.Addr{} }},
		{name: "end before start", mutate: func(a *Attack) { a.End = a.Start.Add(-time.Second) }},
		{name: "no sources", mutate: func(a *Attack) { a.BotIPs = nil }},
		{name: "bad latitude", mutate: func(a *Attack) { a.TargetLat = 91 }},
		{name: "bad longitude", mutate: func(a *Attack) { a.TargetLon = -181 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := validAttack(1)
			tt.mutate(a)
			if err := a.Validate(); err == nil {
				t.Error("Validate succeeded, want error")
			}
		})
	}
	if err := validAttack(1).Validate(); err != nil {
		t.Errorf("valid attack rejected: %v", err)
	}
	// Zero-duration (simultaneous start/end) attacks are legal.
	a := validAttack(2)
	a.End = a.Start
	if err := a.Validate(); err != nil {
		t.Errorf("zero-duration attack rejected: %v", err)
	}
}
