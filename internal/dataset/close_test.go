package dataset

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestStoreClose pins the deterministic unmap contract: Close releases a
// mapped store's region immediately (not at finalizer time), is
// idempotent, and flips every later snapshot write into ErrStoreClosed.
func TestStoreClose(t *testing.T) {
	s := snapFixtureStore(t)
	path := filepath.Join(t.TempDir(), "fixture.bscs")
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadSnapshot(f)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	switch runtime.GOOS {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "illumos":
		if got.cols.mmap == nil || !got.cols.mmap.mapped() {
			t.Fatal("fixture load did not map the file; the test would prove nothing")
		}
	}

	if got.Closed() {
		t.Fatal("fresh store reports closed")
	}
	if err := got.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !got.Closed() {
		t.Fatal("Closed() is false after Close")
	}
	if got.cols.mmap != nil && got.cols.mmap.mapped() {
		t.Fatal("Close left the snapshot region mapped")
	}
	if err := got.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := WriteSnapshot(io.Discard, got); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("WriteSnapshot on closed store: err = %v, want ErrStoreClosed", err)
	}
}

// TestStoreCloseUnmapped pins that Close is safe (and still marks the
// store closed) on stores that never owned a mapping.
func TestStoreCloseUnmapped(t *testing.T) {
	s := snapFixtureStore(t)
	if err := s.Close(); err != nil {
		t.Fatalf("close of record-built store: %v", err)
	}
	if err := WriteSnapshot(io.Discard, s); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("WriteSnapshot on closed store: err = %v, want ErrStoreClosed", err)
	}

	heap, err := DecodeSnapshot(EncodeSnapshot(snapFixtureStore(t)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := heap.Close(); err != nil {
		t.Fatalf("close of heap-decoded store: %v", err)
	}
	if !heap.Closed() {
		t.Fatal("heap-decoded store not marked closed")
	}
}
