package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeedAttacks returns a small deterministic corpus of encoded datasets
// so the fuzzers start from well-formed inputs and mutate outward.
func fuzzSeedAttacks(t testing.TB) []*Attack {
	t.Helper()
	attacks, err := ReadCSV(strings.NewReader(sampleCSV(t)))
	if err != nil {
		t.Fatalf("seed corpus: %v", err)
	}
	return attacks
}

// sampleCSV builds a tiny valid CSV document covering the corner cases the
// decoder branches on: empty bot-IP column, IPv6 targets, quoted org names.
func sampleCSV(t testing.TB) string {
	t.Helper()
	return strings.Join([]string{
		"ddos_id,botnet_id,family,category,target_ip,timestamp,end_time,botnet_ips,asn,cc,city,org,latitude,longitude",
		`1,7,optima,HTTP,192.0.2.1,2012-08-01T00:00:00Z,2012-08-01T01:00:00Z,198.51.100.1;198.51.100.2,64500,US,Seattle,"Example, Inc",47.600000,-122.300000`,
		"2,9,dirtjumper,SYN,2001:db8::1,2012-08-02T00:00:00Z,2012-08-02T00:05:00Z,,64501,CN,Beijing,ExampleNet,39.900000,116.400000",
	}, "\n") + "\n"
}

// FuzzDecodeCSV asserts DecodeCSV never panics on arbitrary input, and that
// any input it accepts survives a write/decode round trip.
func FuzzDecodeCSV(f *testing.F) {
	f.Add(sampleCSV(f))
	f.Add("")
	f.Add("ddos_id,botnet_id\n1,2\n")
	f.Add("\xff\xfe\x00garbage")
	var buf bytes.Buffer
	if err := WriteCSV(&buf, fuzzSeedAttacks(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())

	f.Fuzz(func(t *testing.T, data string) {
		var decoded []*Attack
		err := DecodeCSV(strings.NewReader(data), func(a *Attack) error {
			decoded = append(decoded, a)
			return nil
		})
		if err != nil {
			return // malformed input rejected cleanly; nothing more to check
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, decoded); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		var again []*Attack
		if err := DecodeCSV(&out, func(a *Attack) error {
			again = append(again, a)
			return nil
		}); err != nil {
			t.Fatalf("decode of re-encoded output failed: %v", err)
		}
		if len(again) != len(decoded) {
			t.Fatalf("round trip changed attack count: %d -> %d", len(decoded), len(again))
		}
	})
}

// FuzzDecodeJSONL asserts DecodeJSONL never panics on arbitrary input, and
// that accepted input survives a write/decode round trip.
func FuzzDecodeJSONL(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fuzzSeedAttacks(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("{}\n")
	f.Add("{\"ddos_id\":1}\nnot json\n")
	f.Add("null\n")

	f.Fuzz(func(t *testing.T, data string) {
		var decoded []*Attack
		err := DecodeJSONL(strings.NewReader(data), func(a *Attack) error {
			decoded = append(decoded, a)
			return nil
		})
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteJSONL(&out, decoded); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		var again []*Attack
		if err := DecodeJSONL(&out, func(a *Attack) error {
			again = append(again, a)
			return nil
		}); err != nil {
			t.Fatalf("decode of re-encoded output failed: %v", err)
		}
		if len(again) != len(decoded) {
			t.Fatalf("round trip changed attack count: %d -> %d", len(decoded), len(again))
		}
	})
}
