//go:build !unix

package dataset

import (
	"errors"
	"os"
)

// mmapRegion is the stub region for platforms without mmap support; the
// snapshot reader falls back to io.ReadAll there.
type mmapRegion struct {
	data []byte
}

func mmapFile(_ *os.File, _ int64) (*mmapRegion, error) {
	return nil, errors.New("dataset: mmap unsupported on this platform")
}

func (m *mmapRegion) close() {}

func (m *mmapRegion) release() {}

func (m *mmapRegion) mapped() bool { return false }
