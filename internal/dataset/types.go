// Package dataset defines the three schemas of the paper's workload
// (Table I): the Botlist, the Botnetlist, and the DDoSAttack list, plus an
// indexed in-memory store and CSV/JSON codecs.
//
// Every analysis in botscope consumes these records and nothing else, so a
// calibrated synthetic workload (internal/synth) can stand in for the
// paper's proprietary monitoring feed.
package dataset

import (
	"fmt"
	"net/netip"
	"time"
)

// Category is the nature of a DDoS attack, classified by the protocol used
// to launch it (paper §II-D). The Undetermined/Unknown distinction is the
// paper's: Undetermined means multiple protocols, Unknown means traffic of
// unknown type.
//
// Category values cross the cluster wire inside ingest payloads, so the
// set is closed and botvet's wireframe analyzer keeps every switch over it
// exhaustive: a category added for a new paper figure cannot silently fall
// through classification code.
//
//botvet:wire
type Category int

// Attack categories as enumerated in the paper.
const (
	CategoryHTTP Category = iota + 1
	CategoryTCP
	CategoryUDP
	CategoryUndetermined
	CategoryICMP
	CategoryUnknown
	CategorySYN
)

// Categories lists every category in display order (Figure 1).
var Categories = []Category{
	CategoryHTTP, CategoryTCP, CategoryUDP, CategoryUndetermined,
	CategoryICMP, CategoryUnknown, CategorySYN,
}

// String returns the paper's label for the category.
func (c Category) String() string {
	switch c {
	case CategoryHTTP:
		return "HTTP"
	case CategoryTCP:
		return "TCP"
	case CategoryUDP:
		return "UDP"
	case CategoryUndetermined:
		return "UNDETERMINED"
	case CategoryICMP:
		return "ICMP"
	case CategoryUnknown:
		return "UNKNOWN"
	case CategorySYN:
		return "SYN"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// ParseCategory converts a label back to a Category.
func ParseCategory(s string) (Category, error) {
	for _, c := range Categories {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("dataset: unknown category %q", s)
}

// ConnectionOriented reports whether the category rides a connection-
// oriented transport. The paper leans on this to rule out IP spoofing:
// most observed attacks are HTTP/TCP/SYN, where spoofing is impractical.
func (c Category) ConnectionOriented() bool {
	switch c {
	case CategoryHTTP, CategoryTCP, CategorySYN:
		return true
	case CategoryUDP, CategoryUndetermined, CategoryICMP, CategoryUnknown:
		return false
	}
	return false
}

// Family is a botnet malware family name, lower-cased as in the paper.
type Family string

// The ten active families the paper analyzes in depth.
const (
	Aldibot     Family = "aldibot"
	Blackenergy Family = "blackenergy"
	Colddeath   Family = "colddeath"
	Darkshell   Family = "darkshell"
	Ddoser      Family = "ddoser"
	Dirtjumper  Family = "dirtjumper"
	Nitol       Family = "nitol"
	Optima      Family = "optima"
	Pandora     Family = "pandora"
	YZF         Family = "yzf"
)

// ActiveFamilies lists the 10 families the paper's Section III focuses on.
var ActiveFamilies = []Family{
	Aldibot, Blackenergy, Colddeath, Darkshell, Ddoser,
	Dirtjumper, Nitol, Optima, Pandora, YZF,
}

// InactiveFamilies are the remaining 13 of the paper's 23 tracked families.
// They appear in the Botnetlist but launch no attacks during the window.
var InactiveFamilies = []Family{
	"armageddon", "athena", "madness", "drive", "gbot", "illusion",
	"infinity", "russkill", "solarbot", "tornado", "vertexnet", "warbot",
	"zemra",
}

// AllFamilies returns all 23 tracked families.
func AllFamilies() []Family {
	out := make([]Family, 0, len(ActiveFamilies)+len(InactiveFamilies))
	out = append(out, ActiveFamilies...)
	out = append(out, InactiveFamilies...)
	return out
}

// IsActive reports whether f is one of the 10 active families.
func (f Family) IsActive() bool {
	for _, a := range ActiveFamilies {
		if f == a {
			return true
		}
	}
	return false
}

// DDoSID is the globally unique identifier of one DDoS attack.
type DDoSID uint64

// BotnetID identifies one botnet (a generation of a family, marked by a
// unique binary hash in the source data).
type BotnetID uint32

// Bot is one record of the Botlist schema: an infected host with its
// network and geolocation attributes.
type Bot struct {
	IP          netip.Addr
	ASN         int
	CountryCode string
	City        string
	Org         string
	Lat         float64
	Lon         float64
	// LastActive is the timestamp of the last observed bot activity,
	// driving the 24-hour cumulative snapshot window of §II-B.
	LastActive time.Time
}

// Botnet is one record of the Botnetlist schema.
type Botnet struct {
	ID     BotnetID
	Family Family
	// Hash is the MD5-style fingerprint of the malware generation.
	Hash string
	// ControllerIP is the C&C host used to control the botnet.
	ControllerIP netip.Addr
	FirstSeen    time.Time
	LastSeen     time.Time
}

// Attack is one record of the DDoSAttack schema (Table I).
type Attack struct {
	ID       DDoSID
	BotnetID BotnetID
	// Family is the malware family attribution of the launching botnet.
	Family   Family
	Category Category
	TargetIP netip.Addr
	// Start is the paper's `timestamp` field; End is `end_time`.
	Start time.Time
	End   time.Time
	// BotIPs are the attacking sources; the paper uses their count as the
	// attack-magnitude measure (no spoofing, §III-B).
	BotIPs []netip.Addr

	// Target geolocation attributes (asn, cc, city, latitude, longitude,
	// plus the organization used in Fig 14's org-level analysis).
	TargetASN     int
	TargetCountry string
	TargetCity    string
	TargetOrg     string
	TargetLat     float64
	TargetLon     float64
}

// Duration returns End - Start.
func (a *Attack) Duration() time.Duration { return a.End.Sub(a.Start) }

// Magnitude returns the number of source IPs, the paper's proxy for attack
// strength.
func (a *Attack) Magnitude() int { return len(a.BotIPs) }

// Validate checks the structural invariants a well-formed record obeys.
func (a *Attack) Validate() error {
	if a.ID == 0 {
		return fmt.Errorf("dataset: attack has zero ddos_id")
	}
	if a.BotnetID == 0 {
		return fmt.Errorf("dataset: attack %d has zero botnet_id", a.ID)
	}
	if a.Family == "" {
		return fmt.Errorf("dataset: attack %d has empty family", a.ID)
	}
	found := false
	for _, c := range Categories {
		if a.Category == c {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("dataset: attack %d has invalid category %d", a.ID, int(a.Category))
	}
	if !a.TargetIP.IsValid() {
		return fmt.Errorf("dataset: attack %d has invalid target IP", a.ID)
	}
	if a.End.Before(a.Start) {
		return fmt.Errorf("dataset: attack %d ends (%v) before it starts (%v)", a.ID, a.End, a.Start)
	}
	// The columnar core stores timestamps as int64 UTC nanoseconds, so a
	// record must sit inside the UnixNano-representable range (years
	// 1678..2261) to survive the column and snapshot round trips exactly.
	if y := a.Start.Year(); y < 1678 || y > 2261 {
		return fmt.Errorf("dataset: attack %d start year %d outside representable range", a.ID, y)
	}
	if y := a.End.Year(); y < 1678 || y > 2261 {
		return fmt.Errorf("dataset: attack %d end year %d outside representable range", a.ID, y)
	}
	if len(a.BotIPs) == 0 {
		return fmt.Errorf("dataset: attack %d has no source IPs", a.ID)
	}
	if a.TargetLat < -90 || a.TargetLat > 90 || a.TargetLon < -180 || a.TargetLon > 180 {
		return fmt.Errorf("dataset: attack %d has out-of-range coordinates (%v, %v)", a.ID, a.TargetLat, a.TargetLon)
	}
	return nil
}
