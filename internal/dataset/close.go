package dataset

import "errors"

// ErrStoreClosed is returned by operations on a store whose mapping was
// released with Close.
var ErrStoreClosed = errors.New("dataset: store is closed")

// Close releases the store's memory-mapped snapshot region, if any,
// deterministically instead of waiting for the finalizer. It is
// idempotent and safe to call on stores that were never mapped (NewStore
// stores, heap-decoded snapshots), where it only marks the store closed.
//
// After Close, no mmap-scoped value derived from the store — column
// views, cursor slices, anything handed out by a //botscope:mmap
// producer — may be used: the bytes they alias are gone. Operations that
// would re-read the columns through the public API report ErrStoreClosed.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.cols != nil && s.cols.mmap != nil {
		s.cols.mmap.release()
	}
	return nil
}

// Closed reports whether Close has been called on this store.
func (s *Store) Closed() bool { return s.closed.Load() }
