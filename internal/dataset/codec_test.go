package dataset

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"
)

// errSentinel exercises callback-error propagation in the Decode* tests.
var errSentinel = errors.New("sentinel")

func sampleAttacks() []*Attack {
	a1 := validAttack(1)
	a2 := validAttack(2)
	a2.Family = Pandora
	a2.Category = CategoryUDP
	a2.BotnetID = 9
	a2.TargetIP = netip.MustParseAddr("7.7.7.7")
	a2.Start = t0.Add(3 * time.Hour)
	a2.End = a2.Start.Add(45 * time.Minute)
	a2.BotIPs = []netip.Addr{
		netip.MustParseAddr("6.6.6.6"),
		netip.MustParseAddr("6.6.6.7"),
		netip.MustParseAddr("6.6.6.8"),
	}
	return []*Attack{a1, a2}
}

func attacksEqual(t *testing.T, got, want []*Attack) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.BotnetID != w.BotnetID || g.Family != w.Family ||
			g.Category != w.Category || g.TargetIP != w.TargetIP {
			t.Errorf("record %d identity mismatch: %+v vs %+v", i, g, w)
		}
		if !g.Start.Equal(w.Start) || !g.End.Equal(w.End) {
			t.Errorf("record %d time mismatch: %v-%v vs %v-%v", i, g.Start, g.End, w.Start, w.End)
		}
		if len(g.BotIPs) != len(w.BotIPs) {
			t.Errorf("record %d bot IPs = %d, want %d", i, len(g.BotIPs), len(w.BotIPs))
			continue
		}
		for j := range w.BotIPs {
			if g.BotIPs[j] != w.BotIPs[j] {
				t.Errorf("record %d bot IP %d = %v, want %v", i, j, g.BotIPs[j], w.BotIPs[j])
			}
		}
		if g.TargetASN != w.TargetASN || g.TargetCountry != w.TargetCountry ||
			g.TargetCity != w.TargetCity || g.TargetOrg != w.TargetOrg {
			t.Errorf("record %d geo mismatch", i)
		}
		if g.TargetLat != w.TargetLat || g.TargetLon != w.TargetLon {
			t.Errorf("record %d coords = (%v,%v), want (%v,%v)", i, g.TargetLat, g.TargetLon, w.TargetLat, w.TargetLon)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	want := sampleAttacks()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	attacksEqual(t, got, want)
}

func TestCSVHeaderValidation(t *testing.T) {
	bad := "wrong,header,entirely,a,b,c,d,e,f,g,h,i,j,k\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCSVBadRows(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleAttacks()); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	lines := strings.Split(strings.TrimSpace(good), "\n")

	tests := []struct {
		name string
		row  string
	}{
		{name: "bad id", row: strings.Replace(lines[1], "1,", "xx,", 1)},
		{name: "bad category", row: strings.Replace(lines[1], "HTTP", "BOGUS", 1)},
		{name: "bad ip", row: strings.Replace(lines[1], "5.5.5.5", "not-an-ip", 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			input := lines[0] + "\n" + tt.row + "\n"
			if _, err := ReadCSV(strings.NewReader(input)); err == nil {
				t.Error("malformed row accepted")
			}
		})
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	want := sampleAttacks()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(want) {
		t.Errorf("JSONL lines = %d, want %d", lines, len(want))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	attacksEqual(t, got, want)
}

func TestJSONLBadInput(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{name: "garbage", input: "{not json}\n"},
		{name: "bad category", input: `{"ddos_id":1,"botnet_id":1,"family":"x","category":"NOPE","target_ip":"1.2.3.4","timestamp":"2012-08-29T00:00:00Z","end_time":"2012-08-29T01:00:00Z","botnet_ips":["5.6.7.8"],"asn":1,"cc":"US","city":"a","org":"b","latitude":1,"longitude":2}` + "\n"},
		{name: "bad target ip", input: `{"ddos_id":1,"botnet_id":1,"family":"x","category":"HTTP","target_ip":"zzz","timestamp":"2012-08-29T00:00:00Z","end_time":"2012-08-29T01:00:00Z","botnet_ips":[],"asn":1,"cc":"US","city":"a","org":"b","latitude":1,"longitude":2}` + "\n"},
		{name: "bad timestamp", input: `{"ddos_id":1,"botnet_id":1,"family":"x","category":"HTTP","target_ip":"1.2.3.4","timestamp":"yesterday","end_time":"2012-08-29T01:00:00Z","botnet_ips":[],"asn":1,"cc":"US","city":"a","org":"b","latitude":1,"longitude":2}` + "\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSONL(strings.NewReader(tt.input)); err == nil {
				t.Error("bad input accepted")
			}
		})
	}
}

func TestJSONLEmptyInput(t *testing.T) {
	got, err := ReadJSONL(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records from empty input", len(got))
	}
}

func TestDecodeJSONLStreaming(t *testing.T) {
	want := sampleAttacks()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	var got []*Attack
	if err := DecodeJSONL(&buf, func(a *Attack) error {
		got = append(got, a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	attacksEqual(t, got, want)
}

func TestDecodeJSONLCallbackError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleAttacks()); err != nil {
		t.Fatal(err)
	}
	sentinel := strings.NewReader(buf.String())
	calls := 0
	err := DecodeJSONL(sentinel, func(*Attack) error {
		calls++
		return errSentinel
	})
	if err != errSentinel {
		t.Errorf("callback error = %v, want sentinel passed through", err)
	}
	if calls != 1 {
		t.Errorf("decoding continued after callback error: %d calls", calls)
	}
}

func TestDecodeJSONLErrStop(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleAttacks()); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err := DecodeJSONL(&buf, func(*Attack) error {
		calls++
		return ErrStop
	})
	if err != nil {
		t.Errorf("ErrStop surfaced as error: %v", err)
	}
	if calls != 1 {
		t.Errorf("decoding continued after ErrStop: %d calls", calls)
	}
}

func TestDecodeCSVStreaming(t *testing.T) {
	want := sampleAttacks()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	var got []*Attack
	if err := DecodeCSV(&buf, func(a *Attack) error {
		got = append(got, a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	attacksEqual(t, got, want)
}

func TestDecodeCSVErrStop(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleAttacks()); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := DecodeCSV(&buf, func(*Attack) error {
		calls++
		return ErrStop
	}); err != nil {
		t.Errorf("ErrStop surfaced as error: %v", err)
	}
	if calls != 1 {
		t.Errorf("decoding continued after ErrStop: %d calls", calls)
	}
}
