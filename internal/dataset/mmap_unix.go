//go:build unix

package dataset

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// mmapRegion owns one read-only file mapping. Columns that alias the
// mapping hold a pointer to the region (Columns.mmap), which keeps it
// reachable; the finalizer unmaps once nothing references it. close is
// idempotent so error paths can unmap eagerly.
type mmapRegion struct {
	data []byte
}

// mmapFile maps the first size bytes of f read-only and shared. The
// mapping is independent of the file descriptor's lifetime: closing f
// afterwards is safe.
func mmapFile(f *os.File, size int64) (*mmapRegion, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("dataset: cannot mmap %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("dataset: mmap: %w", err)
	}
	m := &mmapRegion{data: data}
	runtime.SetFinalizer(m, (*mmapRegion).close)
	return m, nil
}

func (m *mmapRegion) close() {
	if m.data != nil {
		_ = syscall.Munmap(m.data)
		m.data = nil
	}
}

// release unmaps eagerly on behalf of Store.Close: the finalizer is
// cleared first so the region is not unmapped a second time when it
// becomes unreachable.
func (m *mmapRegion) release() {
	runtime.SetFinalizer(m, nil)
	m.close()
}

// mapped reports whether the region still holds a live mapping.
func (m *mmapRegion) mapped() bool { return m.data != nil }
