// Producer half of the cross-package lazymat fixture: the record-face
// directives live here, on the dataset-like store, and their facts
// travel to importers.
package ds

type Attack struct{ ID uint64 }

type Store struct{ recs []*Attack }

// Attacks materializes the full record arena.
//
//botscope:materializes
func (s *Store) Attacks() []*Attack { return s.recs }

// AttackRecordAt is the per-row CAS-memo bridge.
//
//botscope:recordbridge
func (s *Store) AttackRecordAt(i int) *Attack { return s.recs[i] }
