// Consumer half of the cross-package lazymat fixture: a column-native
// package calling the imported record face.
package core

import ds "botscope/internal/dataset/fix"

func sweep(s *ds.Store) int {
	return len(s.Attacks()) // want `materializes the attack record arena`
}

// perRow is a plain function on the bridge: allowed.
func perRow(s *ds.Store) *ds.Attack {
	return s.AttackRecordAt(3)
}

// hotK is a hot kernel.
//
//botscope:hotpath
func hotK(s *ds.Store) uint64 {
	return s.AttackRecordAt(0).ID // want `record-face bridge AttackRecordAt`
}
